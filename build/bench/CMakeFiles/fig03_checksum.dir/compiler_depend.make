# Empty compiler generated dependencies file for fig03_checksum.
# This may be replaced when dependencies are built.
