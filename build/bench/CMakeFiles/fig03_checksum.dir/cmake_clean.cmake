file(REMOVE_RECURSE
  "CMakeFiles/fig03_checksum.dir/fig03_checksum.cc.o"
  "CMakeFiles/fig03_checksum.dir/fig03_checksum.cc.o.d"
  "fig03_checksum"
  "fig03_checksum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_checksum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
