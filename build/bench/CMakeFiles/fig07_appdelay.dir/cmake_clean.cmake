file(REMOVE_RECURSE
  "CMakeFiles/fig07_appdelay.dir/fig07_appdelay.cc.o"
  "CMakeFiles/fig07_appdelay.dir/fig07_appdelay.cc.o.d"
  "fig07_appdelay"
  "fig07_appdelay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_appdelay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
