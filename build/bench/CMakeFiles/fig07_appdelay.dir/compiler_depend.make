# Empty compiler generated dependencies file for fig07_appdelay.
# This may be replaced when dependencies are built.
