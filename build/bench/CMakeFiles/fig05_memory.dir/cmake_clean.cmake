file(REMOVE_RECURSE
  "CMakeFiles/fig05_memory.dir/fig05_memory.cc.o"
  "CMakeFiles/fig05_memory.dir/fig05_memory.cc.o.d"
  "fig05_memory"
  "fig05_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
