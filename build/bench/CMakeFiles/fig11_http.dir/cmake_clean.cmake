file(REMOVE_RECURSE
  "CMakeFiles/fig11_http.dir/fig11_http.cc.o"
  "CMakeFiles/fig11_http.dir/fig11_http.cc.o.d"
  "fig11_http"
  "fig11_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
