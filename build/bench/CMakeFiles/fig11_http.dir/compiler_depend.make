# Empty compiler generated dependencies file for fig11_http.
# This may be replaced when dependencies are built.
