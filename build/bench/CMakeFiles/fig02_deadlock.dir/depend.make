# Empty dependencies file for fig02_deadlock.
# This may be replaced when dependencies are built.
