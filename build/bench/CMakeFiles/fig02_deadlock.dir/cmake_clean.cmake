file(REMOVE_RECURSE
  "CMakeFiles/fig02_deadlock.dir/fig02_deadlock.cc.o"
  "CMakeFiles/fig02_deadlock.dir/fig02_deadlock.cc.o.d"
  "fig02_deadlock"
  "fig02_deadlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
