file(REMOVE_RECURSE
  "CMakeFiles/fig04_rcvbuffer.dir/fig04_rcvbuffer.cc.o"
  "CMakeFiles/fig04_rcvbuffer.dir/fig04_rcvbuffer.cc.o.d"
  "fig04_rcvbuffer"
  "fig04_rcvbuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_rcvbuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
