# Empty compiler generated dependencies file for fig04_rcvbuffer.
# This may be replaced when dependencies are built.
