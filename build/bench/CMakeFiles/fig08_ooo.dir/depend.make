# Empty dependencies file for fig08_ooo.
# This may be replaced when dependencies are built.
