file(REMOVE_RECURSE
  "CMakeFiles/fig08_ooo.dir/fig08_ooo.cc.o"
  "CMakeFiles/fig08_ooo.dir/fig08_ooo.cc.o.d"
  "fig08_ooo"
  "fig08_ooo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_ooo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
