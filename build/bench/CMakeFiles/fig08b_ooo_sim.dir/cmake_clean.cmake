file(REMOVE_RECURSE
  "CMakeFiles/fig08b_ooo_sim.dir/fig08b_ooo_sim.cc.o"
  "CMakeFiles/fig08b_ooo_sim.dir/fig08b_ooo_sim.cc.o.d"
  "fig08b_ooo_sim"
  "fig08b_ooo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08b_ooo_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
