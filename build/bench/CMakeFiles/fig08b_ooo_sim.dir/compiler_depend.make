# Empty compiler generated dependencies file for fig08b_ooo_sim.
# This may be replaced when dependencies are built.
