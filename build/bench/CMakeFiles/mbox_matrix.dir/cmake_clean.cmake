file(REMOVE_RECURSE
  "CMakeFiles/mbox_matrix.dir/mbox_matrix.cc.o"
  "CMakeFiles/mbox_matrix.dir/mbox_matrix.cc.o.d"
  "mbox_matrix"
  "mbox_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbox_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
