# Empty dependencies file for mbox_matrix.
# This may be replaced when dependencies are built.
