file(REMOVE_RECURSE
  "CMakeFiles/fig10_setup.dir/fig10_setup.cc.o"
  "CMakeFiles/fig10_setup.dir/fig10_setup.cc.o.d"
  "fig10_setup"
  "fig10_setup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_setup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
