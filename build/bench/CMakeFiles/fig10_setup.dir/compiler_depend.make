# Empty compiler generated dependencies file for fig10_setup.
# This may be replaced when dependencies are built.
