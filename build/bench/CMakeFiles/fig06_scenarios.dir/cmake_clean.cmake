file(REMOVE_RECURSE
  "CMakeFiles/fig06_scenarios.dir/fig06_scenarios.cc.o"
  "CMakeFiles/fig06_scenarios.dir/fig06_scenarios.cc.o.d"
  "fig06_scenarios"
  "fig06_scenarios.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_scenarios.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
