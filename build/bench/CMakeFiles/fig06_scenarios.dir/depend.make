# Empty dependencies file for fig06_scenarios.
# This may be replaced when dependencies are built.
