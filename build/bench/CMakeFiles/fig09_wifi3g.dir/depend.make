# Empty dependencies file for fig09_wifi3g.
# This may be replaced when dependencies are built.
