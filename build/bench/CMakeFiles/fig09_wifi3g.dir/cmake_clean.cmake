file(REMOVE_RECURSE
  "CMakeFiles/fig09_wifi3g.dir/fig09_wifi3g.cc.o"
  "CMakeFiles/fig09_wifi3g.dir/fig09_wifi3g.cc.o.d"
  "fig09_wifi3g"
  "fig09_wifi3g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_wifi3g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
