# Empty dependencies file for mptcp_tests.
# This may be replaced when dependencies are built.
