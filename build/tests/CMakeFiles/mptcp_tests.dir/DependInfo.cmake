
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_api_contract.cc" "tests/CMakeFiles/mptcp_tests.dir/test_api_contract.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_api_contract.cc.o.d"
  "/root/repo/tests/test_apps.cc" "tests/CMakeFiles/mptcp_tests.dir/test_apps.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_apps.cc.o.d"
  "/root/repo/tests/test_apps_robustness.cc" "tests/CMakeFiles/mptcp_tests.dir/test_apps_robustness.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_apps_robustness.cc.o.d"
  "/root/repo/tests/test_buffers.cc" "tests/CMakeFiles/mptcp_tests.dir/test_buffers.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_buffers.cc.o.d"
  "/root/repo/tests/test_cc.cc" "tests/CMakeFiles/mptcp_tests.dir/test_cc.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_cc.cc.o.d"
  "/root/repo/tests/test_codec_fuzz.cc" "tests/CMakeFiles/mptcp_tests.dir/test_codec_fuzz.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_codec_fuzz.cc.o.d"
  "/root/repo/tests/test_combined_stress.cc" "tests/CMakeFiles/mptcp_tests.dir/test_combined_stress.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_combined_stress.cc.o.d"
  "/root/repo/tests/test_crypto.cc" "tests/CMakeFiles/mptcp_tests.dir/test_crypto.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_crypto.cc.o.d"
  "/root/repo/tests/test_dss.cc" "tests/CMakeFiles/mptcp_tests.dir/test_dss.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_dss.cc.o.d"
  "/root/repo/tests/test_extensions.cc" "tests/CMakeFiles/mptcp_tests.dir/test_extensions.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_extensions.cc.o.d"
  "/root/repo/tests/test_invariants.cc" "tests/CMakeFiles/mptcp_tests.dir/test_invariants.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_invariants.cc.o.d"
  "/root/repo/tests/test_mechanisms.cc" "tests/CMakeFiles/mptcp_tests.dir/test_mechanisms.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_mechanisms.cc.o.d"
  "/root/repo/tests/test_meta_recv.cc" "tests/CMakeFiles/mptcp_tests.dir/test_meta_recv.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_meta_recv.cc.o.d"
  "/root/repo/tests/test_middlebox.cc" "tests/CMakeFiles/mptcp_tests.dir/test_middlebox.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_middlebox.cc.o.d"
  "/root/repo/tests/test_middlebox_units.cc" "tests/CMakeFiles/mptcp_tests.dir/test_middlebox_units.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_middlebox_units.cc.o.d"
  "/root/repo/tests/test_mptcp_basic.cc" "tests/CMakeFiles/mptcp_tests.dir/test_mptcp_basic.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_mptcp_basic.cc.o.d"
  "/root/repo/tests/test_mptcp_more.cc" "tests/CMakeFiles/mptcp_tests.dir/test_mptcp_more.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_mptcp_more.cc.o.d"
  "/root/repo/tests/test_mptcp_protocol.cc" "tests/CMakeFiles/mptcp_tests.dir/test_mptcp_protocol.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_mptcp_protocol.cc.o.d"
  "/root/repo/tests/test_pcap.cc" "tests/CMakeFiles/mptcp_tests.dir/test_pcap.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_pcap.cc.o.d"
  "/root/repo/tests/test_property_sweeps.cc" "tests/CMakeFiles/mptcp_tests.dir/test_property_sweeps.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_property_sweeps.cc.o.d"
  "/root/repo/tests/test_sim.cc" "tests/CMakeFiles/mptcp_tests.dir/test_sim.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_sim.cc.o.d"
  "/root/repo/tests/test_syn_fallback.cc" "tests/CMakeFiles/mptcp_tests.dir/test_syn_fallback.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_syn_fallback.cc.o.d"
  "/root/repo/tests/test_tcp_basic.cc" "tests/CMakeFiles/mptcp_tests.dir/test_tcp_basic.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_tcp_basic.cc.o.d"
  "/root/repo/tests/test_tcp_invariants.cc" "tests/CMakeFiles/mptcp_tests.dir/test_tcp_invariants.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_tcp_invariants.cc.o.d"
  "/root/repo/tests/test_tcp_states.cc" "tests/CMakeFiles/mptcp_tests.dir/test_tcp_states.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_tcp_states.cc.o.d"
  "/root/repo/tests/test_wire.cc" "tests/CMakeFiles/mptcp_tests.dir/test_wire.cc.o" "gcc" "tests/CMakeFiles/mptcp_tests.dir/test_wire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/mptcp_app.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mptcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/middlebox/CMakeFiles/mptcp_middlebox.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/mptcp_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mptcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mptcp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
