
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/middlebox_gauntlet.cpp" "examples/CMakeFiles/middlebox_gauntlet.dir/middlebox_gauntlet.cpp.o" "gcc" "examples/CMakeFiles/middlebox_gauntlet.dir/middlebox_gauntlet.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/app/CMakeFiles/mptcp_app.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mptcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/middlebox/CMakeFiles/mptcp_middlebox.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/mptcp_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mptcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mptcp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
