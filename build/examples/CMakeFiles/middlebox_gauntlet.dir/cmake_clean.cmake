file(REMOVE_RECURSE
  "CMakeFiles/middlebox_gauntlet.dir/middlebox_gauntlet.cpp.o"
  "CMakeFiles/middlebox_gauntlet.dir/middlebox_gauntlet.cpp.o.d"
  "middlebox_gauntlet"
  "middlebox_gauntlet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/middlebox_gauntlet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
