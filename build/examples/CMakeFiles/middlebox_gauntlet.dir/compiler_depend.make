# Empty compiler generated dependencies file for middlebox_gauntlet.
# This may be replaced when dependencies are built.
