# Empty dependencies file for mptcpsim.
# This may be replaced when dependencies are built.
