file(REMOVE_RECURSE
  "CMakeFiles/mptcpsim.dir/mptcpsim.cpp.o"
  "CMakeFiles/mptcpsim.dir/mptcpsim.cpp.o.d"
  "mptcpsim"
  "mptcpsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mptcpsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
