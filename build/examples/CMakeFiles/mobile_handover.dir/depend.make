# Empty dependencies file for mobile_handover.
# This may be replaced when dependencies are built.
