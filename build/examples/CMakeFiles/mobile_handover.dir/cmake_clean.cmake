file(REMOVE_RECURSE
  "CMakeFiles/mobile_handover.dir/mobile_handover.cpp.o"
  "CMakeFiles/mobile_handover.dir/mobile_handover.cpp.o.d"
  "mobile_handover"
  "mobile_handover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_handover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
