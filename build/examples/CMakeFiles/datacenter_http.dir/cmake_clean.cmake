file(REMOVE_RECURSE
  "CMakeFiles/datacenter_http.dir/datacenter_http.cpp.o"
  "CMakeFiles/datacenter_http.dir/datacenter_http.cpp.o.d"
  "datacenter_http"
  "datacenter_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datacenter_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
