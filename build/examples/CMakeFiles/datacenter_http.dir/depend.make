# Empty dependencies file for datacenter_http.
# This may be replaced when dependencies are built.
