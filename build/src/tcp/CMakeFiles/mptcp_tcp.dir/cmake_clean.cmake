file(REMOVE_RECURSE
  "CMakeFiles/mptcp_tcp.dir/tcp_buffers.cc.o"
  "CMakeFiles/mptcp_tcp.dir/tcp_buffers.cc.o.d"
  "CMakeFiles/mptcp_tcp.dir/tcp_connection.cc.o"
  "CMakeFiles/mptcp_tcp.dir/tcp_connection.cc.o.d"
  "libmptcp_tcp.a"
  "libmptcp_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mptcp_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
