# Empty dependencies file for mptcp_tcp.
# This may be replaced when dependencies are built.
