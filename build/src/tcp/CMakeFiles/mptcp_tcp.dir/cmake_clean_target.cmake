file(REMOVE_RECURSE
  "libmptcp_tcp.a"
)
