
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tcp/tcp_buffers.cc" "src/tcp/CMakeFiles/mptcp_tcp.dir/tcp_buffers.cc.o" "gcc" "src/tcp/CMakeFiles/mptcp_tcp.dir/tcp_buffers.cc.o.d"
  "/root/repo/src/tcp/tcp_connection.cc" "src/tcp/CMakeFiles/mptcp_tcp.dir/tcp_connection.cc.o" "gcc" "src/tcp/CMakeFiles/mptcp_tcp.dir/tcp_connection.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mptcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mptcp_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
