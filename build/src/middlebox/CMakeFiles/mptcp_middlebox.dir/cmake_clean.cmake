file(REMOVE_RECURSE
  "CMakeFiles/mptcp_middlebox.dir/nat.cc.o"
  "CMakeFiles/mptcp_middlebox.dir/nat.cc.o.d"
  "CMakeFiles/mptcp_middlebox.dir/option_stripper.cc.o"
  "CMakeFiles/mptcp_middlebox.dir/option_stripper.cc.o.d"
  "CMakeFiles/mptcp_middlebox.dir/payload_modifier.cc.o"
  "CMakeFiles/mptcp_middlebox.dir/payload_modifier.cc.o.d"
  "CMakeFiles/mptcp_middlebox.dir/proactive_acker.cc.o"
  "CMakeFiles/mptcp_middlebox.dir/proactive_acker.cc.o.d"
  "CMakeFiles/mptcp_middlebox.dir/segment_coalescer.cc.o"
  "CMakeFiles/mptcp_middlebox.dir/segment_coalescer.cc.o.d"
  "CMakeFiles/mptcp_middlebox.dir/segment_splitter.cc.o"
  "CMakeFiles/mptcp_middlebox.dir/segment_splitter.cc.o.d"
  "CMakeFiles/mptcp_middlebox.dir/seq_rewriter.cc.o"
  "CMakeFiles/mptcp_middlebox.dir/seq_rewriter.cc.o.d"
  "libmptcp_middlebox.a"
  "libmptcp_middlebox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mptcp_middlebox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
