# Empty compiler generated dependencies file for mptcp_middlebox.
# This may be replaced when dependencies are built.
