file(REMOVE_RECURSE
  "libmptcp_middlebox.a"
)
