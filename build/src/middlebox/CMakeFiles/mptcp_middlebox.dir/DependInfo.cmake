
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/middlebox/nat.cc" "src/middlebox/CMakeFiles/mptcp_middlebox.dir/nat.cc.o" "gcc" "src/middlebox/CMakeFiles/mptcp_middlebox.dir/nat.cc.o.d"
  "/root/repo/src/middlebox/option_stripper.cc" "src/middlebox/CMakeFiles/mptcp_middlebox.dir/option_stripper.cc.o" "gcc" "src/middlebox/CMakeFiles/mptcp_middlebox.dir/option_stripper.cc.o.d"
  "/root/repo/src/middlebox/payload_modifier.cc" "src/middlebox/CMakeFiles/mptcp_middlebox.dir/payload_modifier.cc.o" "gcc" "src/middlebox/CMakeFiles/mptcp_middlebox.dir/payload_modifier.cc.o.d"
  "/root/repo/src/middlebox/proactive_acker.cc" "src/middlebox/CMakeFiles/mptcp_middlebox.dir/proactive_acker.cc.o" "gcc" "src/middlebox/CMakeFiles/mptcp_middlebox.dir/proactive_acker.cc.o.d"
  "/root/repo/src/middlebox/segment_coalescer.cc" "src/middlebox/CMakeFiles/mptcp_middlebox.dir/segment_coalescer.cc.o" "gcc" "src/middlebox/CMakeFiles/mptcp_middlebox.dir/segment_coalescer.cc.o.d"
  "/root/repo/src/middlebox/segment_splitter.cc" "src/middlebox/CMakeFiles/mptcp_middlebox.dir/segment_splitter.cc.o" "gcc" "src/middlebox/CMakeFiles/mptcp_middlebox.dir/segment_splitter.cc.o.d"
  "/root/repo/src/middlebox/seq_rewriter.cc" "src/middlebox/CMakeFiles/mptcp_middlebox.dir/seq_rewriter.cc.o" "gcc" "src/middlebox/CMakeFiles/mptcp_middlebox.dir/seq_rewriter.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mptcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mptcp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/mptcp_tcp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
