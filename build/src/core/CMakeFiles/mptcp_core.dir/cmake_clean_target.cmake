file(REMOVE_RECURSE
  "libmptcp_core.a"
)
