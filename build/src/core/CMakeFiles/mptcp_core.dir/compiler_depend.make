# Empty compiler generated dependencies file for mptcp_core.
# This may be replaced when dependencies are built.
