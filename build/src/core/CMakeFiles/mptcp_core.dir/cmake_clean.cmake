file(REMOVE_RECURSE
  "CMakeFiles/mptcp_core.dir/coupled_cc.cc.o"
  "CMakeFiles/mptcp_core.dir/coupled_cc.cc.o.d"
  "CMakeFiles/mptcp_core.dir/dss.cc.o"
  "CMakeFiles/mptcp_core.dir/dss.cc.o.d"
  "CMakeFiles/mptcp_core.dir/keys.cc.o"
  "CMakeFiles/mptcp_core.dir/keys.cc.o.d"
  "CMakeFiles/mptcp_core.dir/meta_recv.cc.o"
  "CMakeFiles/mptcp_core.dir/meta_recv.cc.o.d"
  "CMakeFiles/mptcp_core.dir/mptcp_connection.cc.o"
  "CMakeFiles/mptcp_core.dir/mptcp_connection.cc.o.d"
  "CMakeFiles/mptcp_core.dir/mptcp_stack.cc.o"
  "CMakeFiles/mptcp_core.dir/mptcp_stack.cc.o.d"
  "CMakeFiles/mptcp_core.dir/scheduler.cc.o"
  "CMakeFiles/mptcp_core.dir/scheduler.cc.o.d"
  "CMakeFiles/mptcp_core.dir/subflow.cc.o"
  "CMakeFiles/mptcp_core.dir/subflow.cc.o.d"
  "libmptcp_core.a"
  "libmptcp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mptcp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
