
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/coupled_cc.cc" "src/core/CMakeFiles/mptcp_core.dir/coupled_cc.cc.o" "gcc" "src/core/CMakeFiles/mptcp_core.dir/coupled_cc.cc.o.d"
  "/root/repo/src/core/dss.cc" "src/core/CMakeFiles/mptcp_core.dir/dss.cc.o" "gcc" "src/core/CMakeFiles/mptcp_core.dir/dss.cc.o.d"
  "/root/repo/src/core/keys.cc" "src/core/CMakeFiles/mptcp_core.dir/keys.cc.o" "gcc" "src/core/CMakeFiles/mptcp_core.dir/keys.cc.o.d"
  "/root/repo/src/core/meta_recv.cc" "src/core/CMakeFiles/mptcp_core.dir/meta_recv.cc.o" "gcc" "src/core/CMakeFiles/mptcp_core.dir/meta_recv.cc.o.d"
  "/root/repo/src/core/mptcp_connection.cc" "src/core/CMakeFiles/mptcp_core.dir/mptcp_connection.cc.o" "gcc" "src/core/CMakeFiles/mptcp_core.dir/mptcp_connection.cc.o.d"
  "/root/repo/src/core/mptcp_stack.cc" "src/core/CMakeFiles/mptcp_core.dir/mptcp_stack.cc.o" "gcc" "src/core/CMakeFiles/mptcp_core.dir/mptcp_stack.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "src/core/CMakeFiles/mptcp_core.dir/scheduler.cc.o" "gcc" "src/core/CMakeFiles/mptcp_core.dir/scheduler.cc.o.d"
  "/root/repo/src/core/subflow.cc" "src/core/CMakeFiles/mptcp_core.dir/subflow.cc.o" "gcc" "src/core/CMakeFiles/mptcp_core.dir/subflow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tcp/CMakeFiles/mptcp_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mptcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mptcp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
