file(REMOVE_RECURSE
  "libmptcp_net.a"
)
