# Empty compiler generated dependencies file for mptcp_net.
# This may be replaced when dependencies are built.
