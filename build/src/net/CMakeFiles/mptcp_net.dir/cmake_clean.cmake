file(REMOVE_RECURSE
  "CMakeFiles/mptcp_net.dir/checksum.cc.o"
  "CMakeFiles/mptcp_net.dir/checksum.cc.o.d"
  "CMakeFiles/mptcp_net.dir/segment.cc.o"
  "CMakeFiles/mptcp_net.dir/segment.cc.o.d"
  "CMakeFiles/mptcp_net.dir/sha1.cc.o"
  "CMakeFiles/mptcp_net.dir/sha1.cc.o.d"
  "CMakeFiles/mptcp_net.dir/wire.cc.o"
  "CMakeFiles/mptcp_net.dir/wire.cc.o.d"
  "libmptcp_net.a"
  "libmptcp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mptcp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
