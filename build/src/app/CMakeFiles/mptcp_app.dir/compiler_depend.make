# Empty compiler generated dependencies file for mptcp_app.
# This may be replaced when dependencies are built.
