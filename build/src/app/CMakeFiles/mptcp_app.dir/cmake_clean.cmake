file(REMOVE_RECURSE
  "CMakeFiles/mptcp_app.dir/bulk_app.cc.o"
  "CMakeFiles/mptcp_app.dir/bulk_app.cc.o.d"
  "CMakeFiles/mptcp_app.dir/harness.cc.o"
  "CMakeFiles/mptcp_app.dir/harness.cc.o.d"
  "CMakeFiles/mptcp_app.dir/http_app.cc.o"
  "CMakeFiles/mptcp_app.dir/http_app.cc.o.d"
  "libmptcp_app.a"
  "libmptcp_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mptcp_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
