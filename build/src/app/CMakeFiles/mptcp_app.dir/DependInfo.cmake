
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/bulk_app.cc" "src/app/CMakeFiles/mptcp_app.dir/bulk_app.cc.o" "gcc" "src/app/CMakeFiles/mptcp_app.dir/bulk_app.cc.o.d"
  "/root/repo/src/app/harness.cc" "src/app/CMakeFiles/mptcp_app.dir/harness.cc.o" "gcc" "src/app/CMakeFiles/mptcp_app.dir/harness.cc.o.d"
  "/root/repo/src/app/http_app.cc" "src/app/CMakeFiles/mptcp_app.dir/http_app.cc.o" "gcc" "src/app/CMakeFiles/mptcp_app.dir/http_app.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mptcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/mptcp_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mptcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mptcp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
