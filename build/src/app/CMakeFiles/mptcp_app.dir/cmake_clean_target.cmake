file(REMOVE_RECURSE
  "libmptcp_app.a"
)
