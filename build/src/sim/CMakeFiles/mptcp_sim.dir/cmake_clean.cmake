file(REMOVE_RECURSE
  "CMakeFiles/mptcp_sim.dir/event_loop.cc.o"
  "CMakeFiles/mptcp_sim.dir/event_loop.cc.o.d"
  "CMakeFiles/mptcp_sim.dir/link.cc.o"
  "CMakeFiles/mptcp_sim.dir/link.cc.o.d"
  "CMakeFiles/mptcp_sim.dir/network.cc.o"
  "CMakeFiles/mptcp_sim.dir/network.cc.o.d"
  "CMakeFiles/mptcp_sim.dir/pcap.cc.o"
  "CMakeFiles/mptcp_sim.dir/pcap.cc.o.d"
  "libmptcp_sim.a"
  "libmptcp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mptcp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
