# Empty compiler generated dependencies file for mptcp_sim.
# This may be replaced when dependencies are built.
