file(REMOVE_RECURSE
  "libmptcp_sim.a"
)
