// Extension features: scheduler policies, MP_PRIO, the precomputed key
// pool, and delayed-ACK behaviour.
#include <gtest/gtest.h>

#include <memory>

#include "app/bulk_app.h"
#include "app/harness.h"
#include "core/mptcp_stack.h"
#include "tcp/tcp_connection.h"

namespace mptcp {
namespace {

struct SchedRig {
  explicit SchedRig(SchedulerPolicy policy) {
    rig.add_path(wifi_path());
    rig.add_path(threeg_path());
    MptcpConfig cfg;
    cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 300 * 1000;
    cfg.scheduler = policy;
    cs = std::make_unique<MptcpStack>(rig.client(), cfg);
    ss = std::make_unique<MptcpStack>(rig.server(), cfg);
    ss->listen(80, [this](MptcpConnection& c) {
      rx = std::make_unique<BulkReceiver>(c);
    });
    cc = &cs->connect(rig.client_addr(0), {rig.server_addr(), 80});
    tx = std::make_unique<BulkSender>(*cc, 0);
  }
  TwoHostRig rig;
  std::unique_ptr<MptcpStack> cs, ss;
  MptcpConnection* cc = nullptr;
  std::unique_ptr<BulkSender> tx;
  std::unique_ptr<BulkReceiver> rx;
};

TEST(Scheduler, RedundantDuplicatesEveryByte) {
  SchedRig r(SchedulerPolicy::kRedundant);
  r.rig.loop().run_until(5 * kSecond);
  // The 3G subflow's sent bytes are nearly all duplicates of data also
  // sent on WiFi.
  EXPECT_GT(r.cc->meta_stats().reinjected_bytes, 1000u * 1000u);
  EXPECT_TRUE(r.rx->pattern_ok());
  // Goodput approximates the best single path, not the sum.
  const double mbps = static_cast<double>(r.rx->bytes_received()) * 8 / 5e6;
  EXPECT_GT(mbps, 5.0);
  EXPECT_LT(mbps, 8.5);
}

TEST(Scheduler, RoundRobinStillDeliversIntact) {
  SchedRig r(SchedulerPolicy::kRoundRobin);
  r.rig.loop().run_until(5 * kSecond);
  EXPECT_GT(r.rx->bytes_received(), 1000u * 1000u);
  EXPECT_TRUE(r.rx->pattern_ok());
}

TEST(Scheduler, LowestRttPrefersTheFastPath) {
  SchedRig r(SchedulerPolicy::kLowestRtt);
  r.rig.loop().run_until(5 * kSecond);
  ASSERT_EQ(r.cc->subflow_count(), 2u);
  // WiFi (subflow 0) must carry several times the 3G volume.
  EXPECT_GT(r.cc->subflow(0)->stats().bytes_sent,
            3 * r.cc->subflow(1)->stats().bytes_sent);
}

TEST(MpPrio, PeerRequestDemotesOurSending) {
  SchedRig r(SchedulerPolicy::kLowestRtt);
  r.rig.loop().run_until(1 * kSecond);
  // Server demotes the 3G subflow: it sends MP_PRIO; the *client* must
  // stop scheduling new data there.
  MptcpConnection* sconn = nullptr;
  // Find the server connection through the receiver's socket: re-listen
  // is awkward, so locate via the stack: the only live connection.
  // (Simpler: issue from client side using the public API and verify the
  // server side demotes.)
  r.cc->set_subflow_backup(1, true);
  const uint64_t sent_at_demote = r.cc->subflow(1)->stats().bytes_sent;
  r.rig.loop().run_until(5 * kSecond);
  EXPECT_LT(r.cc->subflow(1)->stats().bytes_sent - sent_at_demote,
            60u * 1000u);
  // WiFi continues at full rate.
  EXPECT_GT(r.rx->bytes_received(), 2u * 1000u * 1000u);
  (void)sconn;
}

TEST(KeyPool, PooledKeysAreUniqueAndRegistered) {
  TokenTable table(3);
  table.prefill_pool(64);
  EXPECT_EQ(table.pool_size(), 64u);
  std::vector<uint32_t> tokens;
  for (int i = 0; i < 64; ++i) {
    auto kt = table.generate_and_register(nullptr);
    EXPECT_EQ(kt.token, mptcp_token_from_key(kt.key));
    EXPECT_EQ(kt.idsn, mptcp_idsn_from_key(kt.key));
    tokens.push_back(kt.token);
  }
  EXPECT_EQ(table.pool_size(), 0u);
  EXPECT_EQ(table.size(), 64u);
  // All unique.
  std::sort(tokens.begin(), tokens.end());
  EXPECT_EQ(std::adjacent_find(tokens.begin(), tokens.end()), tokens.end());
  // Pool exhausted: generation still works and registers.
  auto kt = table.generate_and_register(nullptr);
  EXPECT_EQ(kt.token, mptcp_token_from_key(kt.key));
  EXPECT_EQ(table.size(), 65u);
}

TEST(KeyPool, PooledKeyCollidingWithLiveTokenIsSkipped) {
  TokenTable table(3);
  table.prefill_pool(2);
  // Register the first pooled candidate's token out from under the pool.
  auto first = table.generate_and_register(nullptr);  // consumes pool[0]
  table.prefill_pool(1);  // deterministic RNG continues; no collision here,
                          // but the dedup path is the emplace() check --
                          // force it by re-inserting the same key.
  EXPECT_FALSE(table.register_key(first.key, nullptr));
  table.unregister(first.token);
  EXPECT_TRUE(table.register_key(first.key, nullptr));
}

TEST(DelayedAck, RoughlyHalvesPureAckCount) {
  auto run_transfer = [](bool delayed) {
    TwoHostRig rig;
    rig.add_path(wifi_path());
    TcpConfig cfg;
    cfg.delayed_ack = delayed;
    std::unique_ptr<TcpConnection> sconn;
    std::unique_ptr<BulkReceiver> rx;
    TcpListener lis(rig.server(), 80, [&](const TcpSegment& syn) {
      sconn = std::make_unique<TcpConnection>(rig.server(), cfg,
                                              syn.tuple.dst, syn.tuple.src);
      rx = std::make_unique<BulkReceiver>(*sconn, false);
      sconn->accept_syn(syn);
    });
    TcpConnection cli(rig.client(), cfg, {rig.client_addr(0), 40000},
                      {rig.server_addr(), 80});
    BulkSender tx(cli, 500 * 1000);
    cli.connect();
    rig.loop().run_until(10 * kSecond);
    EXPECT_EQ(rx->bytes_received(), 500u * 1000u);
    return sconn->stats().segments_sent;
  };
  const uint64_t with = run_transfer(true);
  const uint64_t without = run_transfer(false);
  EXPECT_LT(with, without * 7 / 10);  // clearly fewer ACK segments
}

TEST(DelayedAck, TimerFlushesTrailingSegment) {
  // A single odd segment must still be acknowledged within the delack
  // timeout (otherwise the sender would need an RTO).
  TwoHostRig rig;
  rig.add_path(wifi_path());
  TcpConfig cfg;
  std::unique_ptr<TcpConnection> sconn;
  TcpListener lis(rig.server(), 80, [&](const TcpSegment& syn) {
    sconn = std::make_unique<TcpConnection>(rig.server(), cfg, syn.tuple.dst,
                                            syn.tuple.src);
    sconn->accept_syn(syn);
  });
  TcpConnection cli(rig.client(), cfg, {rig.client_addr(0), 40000},
                    {rig.server_addr(), 80});
  cli.connect();
  rig.loop().run_until(200 * kMillisecond);
  std::vector<uint8_t> one(100, 7);
  cli.write(one);
  rig.loop().run_until(400 * kMillisecond);
  // Acked without retransmission: the delack timer fired.
  EXPECT_EQ(cli.stats().retransmits, 0u);
  EXPECT_EQ(cli.flight_size(), 0u);
}

}  // namespace
}  // namespace mptcp
