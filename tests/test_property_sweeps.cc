// Parameterized property sweeps across path-characteristic grids
// (the paper's section 4.2.1 "sensitivity analysis"): for every
// combination, transfers must complete with integrity and MPTCP must not
// collapse below what TCP on the best path would get.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "app/bulk_app.h"
#include "app/harness.h"
#include "core/mptcp_stack.h"
#include "tcp/tcp_connection.h"

namespace mptcp {
namespace {

PathSpec make_path(double rate_bps, SimTime rtt, SimTime buf_delay,
                   double loss, uint64_t seed) {
  PathSpec s;
  s.name = "sweep";
  s.up.rate_bps = s.down.rate_bps = rate_bps;
  s.up.prop_delay = s.down.prop_delay = rtt / 2;
  s.up.buffer_bytes = s.down.buffer_bytes = std::max<size_t>(
      LinkConfig::buffer_for_delay(rate_bps, buf_delay), 3000);
  s.up.loss_prob = s.down.loss_prob = loss;
  s.up.loss_seed = seed;
  s.down.loss_seed = seed ^ 0xff;
  return s;
}

// --- TCP integrity under a (rate, rtt, loss) grid ----------------------------

using TcpGridParam = std::tuple<double /*Mbps*/, int /*rtt ms*/,
                                double /*loss*/>;

class TcpGrid : public ::testing::TestWithParam<TcpGridParam> {};

TEST_P(TcpGrid, TransferCompletesWithIntegrity) {
  const auto [mbps, rtt_ms, loss] = GetParam();
  TwoHostRig rig;
  rig.add_path(make_path(mbps * 1e6, rtt_ms * kMillisecond,
                         100 * kMillisecond, loss, 42));
  TcpConfig cfg;
  cfg.snd_buf_max = cfg.rcv_buf_max = 256 * 1024;
  std::unique_ptr<TcpConnection> sconn;
  std::unique_ptr<BulkReceiver> rx;
  TcpListener lis(rig.server(), 80, [&](const TcpSegment& syn) {
    sconn = std::make_unique<TcpConnection>(rig.server(), cfg, syn.tuple.dst,
                                            syn.tuple.src);
    rx = std::make_unique<BulkReceiver>(*sconn);
    sconn->accept_syn(syn);
  });
  TcpConnection cli(rig.client(), cfg, {rig.client_addr(0), 40000},
                    {rig.server_addr(), 80});
  BulkSender tx(cli, 400 * 1000);
  cli.connect();
  rig.loop().run_until(120 * kSecond);
  EXPECT_EQ(rx->bytes_received(), 400u * 1000u);
  EXPECT_TRUE(rx->pattern_ok());
  EXPECT_TRUE(rx->saw_eof());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TcpGrid,
    ::testing::Combine(::testing::Values(1.0, 10.0, 100.0),
                       ::testing::Values(5, 50, 300),
                       ::testing::Values(0.0, 0.005, 0.03)));

// --- MPTCP vs best-path TCP across asymmetric path pairs ----------------------

struct PairCase {
  const char* name;
  PathSpec a;
  PathSpec b;
};

class MptcpPairGrid : public ::testing::TestWithParam<int> {
 public:
  static std::vector<PairCase> cases() {
    return {
        {"wifi+3g", wifi_path(), threeg_path()},
        {"symmetric-10M",
         make_path(10e6, 40 * kMillisecond, 100 * kMillisecond, 0, 1),
         make_path(10e6, 40 * kMillisecond, 100 * kMillisecond, 0, 2)},
        {"rate-asym-20x",
         make_path(20e6, 30 * kMillisecond, 60 * kMillisecond, 0, 3),
         make_path(1e6, 30 * kMillisecond, 60 * kMillisecond, 0, 4)},
        {"rtt-asym-10x",
         make_path(8e6, 10 * kMillisecond, 50 * kMillisecond, 0, 5),
         make_path(8e6, 100 * kMillisecond, 200 * kMillisecond, 0, 6)},
        {"lossy-secondary", wifi_path(),
         make_path(4e6, 80 * kMillisecond, 300 * kMillisecond, 0.02, 7)},
        {"both-lossy",
         make_path(6e6, 30 * kMillisecond, 80 * kMillisecond, 0.005, 8),
         make_path(6e6, 60 * kMillisecond, 80 * kMillisecond, 0.005, 9)},
    };
  }
};

TEST_P(MptcpPairGrid, IntegrityAndNoCollapseBelowHalfBestTcp) {
  const PairCase c = cases()[static_cast<size_t>(GetParam())];
  // Measure best single-path TCP.
  auto tcp_goodput = [&](size_t idx) {
    TwoHostRig rig(99);
    rig.add_path(c.a);
    rig.add_path(c.b);
    TcpConfig cfg;
    cfg.snd_buf_max = cfg.rcv_buf_max = 512 * 1024;
    std::unique_ptr<TcpConnection> sconn;
    std::unique_ptr<BulkReceiver> rx;
    TcpListener lis(rig.server(), 80, [&](const TcpSegment& syn) {
      sconn = std::make_unique<TcpConnection>(rig.server(), cfg,
                                              syn.tuple.dst, syn.tuple.src);
      rx = std::make_unique<BulkReceiver>(*sconn, false);
      sconn->accept_syn(syn);
    });
    TcpConnection cli(rig.client(), cfg, {rig.client_addr(idx), 40000},
                      {rig.server_addr(), 80});
    BulkSender tx(cli, 0);
    cli.connect();
    rig.loop().run_until(4 * kSecond);
    const uint64_t b0 = rx->bytes_received();
    rig.loop().run_until(16 * kSecond);
    return static_cast<double>(rx->bytes_received() - b0) * 8.0 / 12.0;
  };
  const double best_tcp = std::max(tcp_goodput(0), tcp_goodput(1));

  TwoHostRig rig(99);
  rig.add_path(c.a);
  rig.add_path(c.b);
  MptcpConfig cfg;
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 512 * 1024;
  MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
  MptcpConnection* sconn = nullptr;
  std::unique_ptr<BulkReceiver> rx;
  ss.listen(80, [&](MptcpConnection& conn) {
    sconn = &conn;
    rx = std::make_unique<BulkReceiver>(conn);
  });
  MptcpConnection& cli =
      cs.connect(rig.client_addr(0), Endpoint{rig.server_addr(), 80});
  BulkSender tx(cli, 0);
  rig.loop().run_until(4 * kSecond);
  const uint64_t b0 = rx->bytes_received();
  rig.loop().run_until(16 * kSecond);
  const double mptcp_goodput =
      static_cast<double>(rx->bytes_received() - b0) * 8.0 / 12.0;

  EXPECT_TRUE(rx->pattern_ok()) << c.name;
  // The paper's target is >= best TCP; we assert a generous floor so the
  // sweep flags real collapses without being brittle to CC noise.
  EXPECT_GT(mptcp_goodput, 0.5 * best_tcp) << c.name;
}

INSTANTIATE_TEST_SUITE_P(Pairs, MptcpPairGrid, ::testing::Range(0, 6));

// --- buffer-size sweep: integrity at every buffer size -------------------------

class BufferSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(BufferSweep, MptcpDeliversExactlyAtEveryBufferSize) {
  TwoHostRig rig;
  rig.add_path(wifi_path());
  rig.add_path(threeg_path());
  MptcpConfig cfg;
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = GetParam();
  MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
  std::unique_ptr<BulkReceiver> rx;
  ss.listen(80, [&](MptcpConnection& conn) {
    rx = std::make_unique<BulkReceiver>(conn);
  });
  MptcpConnection& cli =
      cs.connect(rig.client_addr(0), Endpoint{rig.server_addr(), 80});
  BulkSender tx(cli, 600 * 1000);
  rig.loop().run_until(60 * kSecond);
  EXPECT_EQ(rx->bytes_received(), 600u * 1000u) << GetParam();
  EXPECT_TRUE(rx->pattern_ok());
  EXPECT_TRUE(rx->saw_eof());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BufferSweep,
                         ::testing::Values(16 * 1024, 50 * 1000, 100 * 1000,
                                           250 * 1000, 500 * 1000,
                                           1000 * 1000, 4 * 1000 * 1000));

// --- receive algorithm sweep: every algorithm end to end -----------------------

class RecvAlgoSweep : public ::testing::TestWithParam<RecvAlgo> {};

TEST_P(RecvAlgoSweep, EndToEndIntegrityWithEachAlgorithm) {
  TwoHostRig rig;
  rig.add_path(wifi_path());
  rig.add_path(threeg_path());
  MptcpConfig cfg;
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 512 * 1024;
  cfg.recv_algo = GetParam();
  MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
  std::unique_ptr<BulkReceiver> rx;
  MptcpConnection* sconn = nullptr;
  ss.listen(80, [&](MptcpConnection& conn) {
    sconn = &conn;
    rx = std::make_unique<BulkReceiver>(conn);
  });
  MptcpConnection& cli =
      cs.connect(rig.client_addr(0), Endpoint{rig.server_addr(), 80});
  BulkSender tx(cli, 1000 * 1000);
  rig.loop().run_until(30 * kSecond);
  EXPECT_EQ(rx->bytes_received(), 1000u * 1000u);
  EXPECT_TRUE(rx->pattern_ok());
  // The interleaved paths must actually exercise the ooo queue.
  EXPECT_GT(sconn->recv_queue_stats().inserts, 10u);
}

INSTANTIATE_TEST_SUITE_P(Algos, RecvAlgoSweep,
                         ::testing::Values(RecvAlgo::kRegular, RecvAlgo::kTree,
                                           RecvAlgo::kShortcuts,
                                           RecvAlgo::kAllShortcuts));

}  // namespace
}  // namespace mptcp
