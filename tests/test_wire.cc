// Wire codec tests: every option must survive a serialize/parse round
// trip byte-exactly, sizes must match option_wire_size, and the TCP
// checksum must validate and detect corruption.
#include <gtest/gtest.h>

#include "net/checksum.h"
#include "net/wire.h"

namespace mptcp {
namespace {

FourTuple test_tuple() {
  return FourTuple{{IpAddr(10, 0, 0, 1), 40000}, {IpAddr(10, 99, 0, 1), 80}};
}

class OptionRoundTrip : public ::testing::TestWithParam<TcpOption> {};

TEST_P(OptionRoundTrip, SurvivesSerializeParse) {
  const TcpOption original = GetParam();
  const auto bytes = serialize_options({original});
  EXPECT_EQ(bytes.size() % 4, 0u) << "options must pad to 32-bit words";
  const auto parsed = parse_options(bytes);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], original);
}

TEST_P(OptionRoundTrip, WireSizeMatchesEncodedSize) {
  const TcpOption opt = GetParam();
  const auto bytes = serialize_options({opt});
  const size_t padded = (option_wire_size(opt) + 3) & ~size_t{3};
  EXPECT_EQ(bytes.size(), padded);
}

INSTANTIATE_TEST_SUITE_P(
    AllOptions, OptionRoundTrip,
    ::testing::Values(
        TcpOption{MssOption{1460}}, TcpOption{WindowScaleOption{7}},
        TcpOption{SackPermittedOption{}},
        TcpOption{SackOption{{{1000, 2460}, {5000, 7920}}}},
        TcpOption{TimestampOption{123456789, 987654321}},
        // MP_CAPABLE in its three handshake forms.
        TcpOption{MpCapableOption{0, true, 0x0123456789abcdefULL,
                                  std::nullopt}},
        TcpOption{MpCapableOption{0, false, 0x1111222233334444ULL,
                                  std::nullopt}},
        TcpOption{MpCapableOption{0, true, 0xaaaabbbbccccddddULL,
                                  0xeeeeffff00001111ULL}},
        // MP_JOIN in its three phases.
        TcpOption{MpJoinOption{JoinPhase::kSyn, 3, false, 0xdeadbeef,
                               0xcafe1234, 0}},
        TcpOption{MpJoinOption{JoinPhase::kSyn, 1, true, 0x01020304,
                               0x05060708, 0}},
        TcpOption{MpJoinOption{JoinPhase::kSynAck, 2, false, 0, 0x99887766,
                               0x1122334455667788ULL}},
        TcpOption{MpJoinOption{JoinPhase::kAck, 0, false, 0, 0,
                               0xfedcba9876543210ULL}},
        // DSS in several shapes.
        TcpOption{DssOption{0x1000, std::nullopt, false, 0}},
        TcpOption{DssOption{std::nullopt,
                            DssMapping{0x12345678, 1001, 1460, 0xabcd},
                            false, 0}},
        TcpOption{DssOption{0x2000,
                            DssMapping{0x1000000000ULL, 1, 11680,
                                       std::nullopt},
                            false, 0}},
        TcpOption{DssOption{0x2000, DssMapping{77, 1, 1460, 0x1111}, true,
                            0}},
        TcpOption{DssOption{0x2000, std::nullopt, true, 0x424242}},
        TcpOption{AddAddrOption{4, IpAddr(192, 168, 7, 9), std::nullopt}},
        TcpOption{AddAddrOption{9, IpAddr(172, 16, 0, 1), Port{8080}}},
        TcpOption{RemoveAddrOption{6}},
        TcpOption{MpPrioOption{true, std::nullopt}},
        TcpOption{MpPrioOption{false, uint8_t{5}}},
        TcpOption{MpFastcloseOption{0x123456789abcdef0ULL}}));

TEST(WireCodec, MultipleOptionsRoundTrip) {
  std::vector<TcpOption> opts = {
      TimestampOption{1, 2},
      DssOption{42, DssMapping{100, 1, 500, 0x7777}, false, 0},
      SackOption{{{10, 20}}},
  };
  const auto bytes = serialize_options(opts);
  const auto parsed = parse_options(bytes);
  ASSERT_EQ(parsed.size(), opts.size());
  for (size_t i = 0; i < opts.size(); ++i) EXPECT_EQ(parsed[i], opts[i]);
}

TEST(WireCodec, SegmentRoundTripWithPayload) {
  TcpSegment seg;
  seg.tuple = test_tuple();
  seg.seq = 0xdeadbeef;
  seg.ack = 0x12345678;
  seg.syn = false;
  seg.ack_flag = true;
  seg.psh = true;
  seg.window = 0x7fff;
  seg.options.push_back(TimestampOption{111, 222});
  seg.options.push_back(
      DssOption{55, DssMapping{1000, 1, 6, 0xbeef}, false, 0});
  seg.payload = {'h', 'e', 'l', 'l', 'o', '!'};

  const auto bytes = serialize_segment(seg);
  const auto parsed = parse_segment(bytes, seg.tuple);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seq, seg.seq);
  EXPECT_EQ(parsed->ack, seg.ack);
  EXPECT_EQ(parsed->ack_flag, seg.ack_flag);
  EXPECT_EQ(parsed->psh, seg.psh);
  EXPECT_EQ(parsed->window, seg.window);
  EXPECT_EQ(parsed->payload, seg.payload);
  ASSERT_EQ(parsed->options.size(), 2u);
  EXPECT_EQ(parsed->options[0], seg.options[0]);
  EXPECT_EQ(parsed->options[1], seg.options[1]);
}

TEST(WireCodec, SerializedSegmentChecksumValidates) {
  TcpSegment seg;
  seg.tuple = test_tuple();
  seg.seq = 1;
  seg.ack_flag = true;
  seg.payload = {1, 2, 3, 4, 5};
  auto bytes = serialize_segment(seg);
  // Verifying: checksum over the full segment including the stored
  // checksum folds to 0xffff (sum + complement = all-ones).
  ChecksumAccumulator acc;
  acc.add_u32(seg.tuple.src.addr.value);
  acc.add_u32(seg.tuple.dst.addr.value);
  acc.add_word(6);
  acc.add_word(static_cast<uint16_t>(bytes.size()));
  acc.add_bytes(bytes);
  EXPECT_EQ(acc.fold(), 0xffff);
}

TEST(WireCodec, ChecksumDetectsPayloadCorruption) {
  TcpSegment seg;
  seg.tuple = test_tuple();
  seg.payload = {1, 2, 3, 4, 5, 6};
  auto bytes = serialize_segment(seg);
  bytes[bytes.size() - 2] ^= 0x40;  // corrupt payload
  ChecksumAccumulator acc;
  acc.add_u32(seg.tuple.src.addr.value);
  acc.add_u32(seg.tuple.dst.addr.value);
  acc.add_word(6);
  acc.add_word(static_cast<uint16_t>(bytes.size()));
  acc.add_bytes(bytes);
  EXPECT_NE(acc.fold(), 0xffff);
}

TEST(WireCodec, ParseRejectsTruncatedHeader) {
  std::vector<uint8_t> bytes(10, 0);
  EXPECT_FALSE(parse_segment(bytes, test_tuple()).has_value());
}

TEST(WireCodec, ParseRejectsBogusDataOffset) {
  TcpSegment seg;
  seg.tuple = test_tuple();
  auto bytes = serialize_segment(seg);
  bytes[12] = 0xF0;  // data offset = 60 bytes > segment size
  EXPECT_FALSE(parse_segment(bytes, seg.tuple).has_value());
}

TEST(WireCodec, UnknownOptionsAreSkippedLiberally) {
  // kind=200, len=6 unknown option followed by a real MSS option.
  std::vector<uint8_t> bytes = {200, 6, 1, 2, 3, 4, 2, 4, 0x05, 0xb4, 1, 1};
  const auto parsed = parse_options(bytes);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0], TcpOption{MssOption{1460}});
}

TEST(WireCodec, DataFinWithoutMappingUsesSyntheticMapping) {
  DssOption dss;
  dss.data_ack = 999;
  dss.data_fin = true;
  dss.data_fin_dsn = 0x42424242;
  const auto bytes = serialize_options({TcpOption{dss}});
  const auto parsed = parse_options(bytes);
  ASSERT_EQ(parsed.size(), 1u);
  const auto* out = std::get_if<DssOption>(&parsed[0]);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->data_fin);
  EXPECT_FALSE(out->mapping.has_value());
  EXPECT_EQ(out->data_fin_dsn, 0x42424242u);
}

TEST(WireCodec, OptionSpaceOfTypicalDataSegmentFits) {
  // TS + DSS with mapping and checksum must fit the 40-byte budget.
  std::vector<TcpOption> opts = {
      TimestampOption{1, 2},
      DssOption{100, DssMapping{200, 1, 1460, 0x1234}, false, 0},
  };
  EXPECT_LE(serialize_options(opts).size(), kMaxTcpOptionSpace);
}

TEST(WireCodec, WireSizeAccountsForOptionsAndHeaders) {
  TcpSegment seg;
  seg.payload.assign(1000, 0);
  seg.options.push_back(TimestampOption{});
  // 20 IP + 20 TCP + 12 (TS padded) + payload.
  EXPECT_EQ(seg.wire_size(), 20u + 20u + 12u + 1000u);
}

}  // namespace
}  // namespace mptcp
