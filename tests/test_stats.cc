// Observability layer: the stats registry itself, the counters the
// simulator / TCP / MPTCP layers publish into it, and the determinism
// digest built on top.
//
// The scenario tests deliberately assert *exact* counter values: every
// instrumented code path pairs its registry increment with the per-
// connection stats struct it always updated, so the registry totals must
// equal the struct sums -- that equality is the exactly-once proof.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "app/bulk_app.h"
#include "app/digest.h"
#include "app/harness.h"
#include "core/mptcp_stack.h"
#include "net/stats.h"

namespace mptcp {
namespace {

// ---------------------------------------------------------------------------
// Registry unit tests.
// ---------------------------------------------------------------------------

TEST(StatsRegistry, CounterGaugeHistogramBasics) {
  StatsRegistry reg;
  Counter& c = reg.counter("a.count");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(&reg.counter("a.count"), &c);  // create-on-first-use is stable

  Gauge& g = reg.gauge("a.level");
  g.set(10);
  g.add(-3);
  EXPECT_EQ(g.value(), 7);

  Histogram& h = reg.histogram("a.sizes");
  h.record(0);
  h.record(1);
  h.record(5);
  h.record(1500);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 1506u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1500u);
  EXPECT_EQ(h.bucket(0), 1u);  // the zero
  EXPECT_EQ(h.bucket(1), 1u);  // 1 in [1,2)
  EXPECT_EQ(h.bucket(3), 1u);  // 5 in [4,8)
  EXPECT_EQ(h.bucket(11), 1u);  // 1500 in [1024,2048)
  EXPECT_EQ(h.approx_percentile(1.0), 2048u);
}

TEST(StatsRegistry, SampledValuesAreLazy) {
  StatsRegistry reg;
  int calls = 0;
  reg.sampled("lazy.value", [&calls] {
    ++calls;
    return 3.5;
  });
  EXPECT_EQ(calls, 0);  // registration alone never samples
  EXPECT_DOUBLE_EQ(reg.value("lazy.value"), 3.5);
  EXPECT_EQ(calls, 1);
  (void)reg.flatten();
  EXPECT_EQ(calls, 2);
}

TEST(StatsRegistry, UniqueScopeAndHashSiblingRemoval) {
  StatsRegistry reg;
  const std::string s1 = reg.unique_scope("mptcp.client");
  const std::string s2 = reg.unique_scope("mptcp.client");
  EXPECT_EQ(s1, "mptcp.client");
  EXPECT_EQ(s2, "mptcp.client#2");

  reg.counter(s1 + ".picks").inc();
  reg.counter(s2 + ".picks").inc(5);
  reg.counter("mptcp.clientele");  // shares a prefix but is NOT a child

  // Removing the first instance's scope must not touch the second
  // instance ('#' sorts before '.', so "#2" entries interleave) nor the
  // lookalike prefix.
  EXPECT_EQ(reg.remove_scope(s1), 1u);
  EXPECT_FALSE(reg.contains(s1 + ".picks"));
  EXPECT_TRUE(reg.contains(s2 + ".picks"));
  EXPECT_TRUE(reg.contains("mptcp.clientele"));
  EXPECT_EQ(reg.value(s2 + ".picks"), 5.0);
}

TEST(StatsRegistry, SampledGroupExpandsLazilyAndRemovesAsOneEntry) {
  StatsRegistry reg;
  int calls = 0;
  uint64_t picks = 3;
  reg.sampled_group("mptcp.client", [&](SampleSink& out) {
    ++calls;
    out.emit("scheduler_picks", static_cast<double>(picks));
    out.emit("fallbacks", 1.0);
  });
  EXPECT_EQ(calls, 0);  // registration alone never samples
  EXPECT_EQ(reg.size(), 1u);  // the whole scope is ONE map entry

  // value() resolves "<scope>.<suffix>" through the group.
  EXPECT_DOUBLE_EQ(reg.value("mptcp.client.scheduler_picks"), 3.0);
  picks = 9;
  EXPECT_DOUBLE_EQ(reg.value("mptcp.client.scheduler_picks"), 9.0);
  EXPECT_DOUBLE_EQ(reg.value("mptcp.client.no_such_suffix"), 0.0);

  // flatten() expands the group into per-suffix keys.
  const auto flat = reg.flatten();
  EXPECT_DOUBLE_EQ(flat.at("mptcp.client.scheduler_picks"), 9.0);
  EXPECT_DOUBLE_EQ(flat.at("mptcp.client.fallbacks"), 1.0);
  EXPECT_EQ(flat.count("mptcp.client"), 0u);  // the scope itself is no key

  // remove_scope() drops the group with its single entry.
  EXPECT_EQ(reg.remove_scope("mptcp.client"), 1u);
  EXPECT_DOUBLE_EQ(reg.value("mptcp.client.scheduler_picks"), 0.0);
  EXPECT_EQ(reg.flatten().count("mptcp.client.scheduler_picks"), 0u);
}

TEST(StatsRegistry, JsonRoundTripsAndOmitsUnregistered) {
  StatsRegistry reg;
  reg.counter("z.count").inc(7);
  reg.gauge("a.gauge").set(-4);
  reg.histogram("m.hist").record(100);
  reg.sampled("s.val", [] { return 0.125; });

  const std::string json = reg.to_json();
  EXPECT_EQ(json.find("never_registered"), std::string::npos);

  const auto parsed = StatsRegistry::parse_flat_json(json);
  EXPECT_EQ(parsed, reg.flatten());
  EXPECT_DOUBLE_EQ(parsed.at("z.count"), 7.0);
  EXPECT_DOUBLE_EQ(parsed.at("a.gauge"), -4.0);
  EXPECT_DOUBLE_EQ(parsed.at("m.hist.count"), 1.0);
  EXPECT_DOUBLE_EQ(parsed.at("m.hist.sum"), 100.0);
  EXPECT_DOUBLE_EQ(parsed.at("s.val"), 0.125);
  // Unregistered names read as 0 and are absent from the export.
  EXPECT_DOUBLE_EQ(reg.value("never_registered"), 0.0);
  EXPECT_EQ(parsed.count("never_registered"), 0u);
}

// ---------------------------------------------------------------------------
// Simulator-layer counters.
// ---------------------------------------------------------------------------

TEST(StatsSim, EventLoopCountsScheduleCancelFire) {
  EventLoop loop;
  int fired = 0;
  loop.schedule_at(10, [&] { ++fired; });
  const auto id = loop.schedule_at(20, [&] { ++fired; });
  loop.schedule_at(30, [&] { ++fired; });
  loop.cancel(id);
  loop.run();

  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.events_scheduled(), 3u);
  EXPECT_EQ(loop.events_cancelled(), 1u);
  EXPECT_EQ(loop.events_fired(), 2u);
  // The registry's sampled views read the same fields.
  EXPECT_DOUBLE_EQ(loop.stats().value("sim.events_scheduled"), 3.0);
  EXPECT_DOUBLE_EQ(loop.stats().value("sim.events_cancelled"), 1.0);
  EXPECT_DOUBLE_EQ(loop.stats().value("sim.events_fired"), 2.0);
}

TEST(StatsSim, LinksRegisterScopedStats) {
  TwoHostRig rig;
  rig.add_path(wifi_path());
  EXPECT_TRUE(rig.stats().contains("sim.link.wifi-up.delivered_pkts"));
  EXPECT_TRUE(rig.stats().contains("sim.link.wifi-down.delivered_pkts"));
  EXPECT_EQ(rig.up_link(0).stats_scope(), "sim.link.wifi-up");
}

// ---------------------------------------------------------------------------
// End-to-end counter semantics over a deterministic two-subflow run.
// ---------------------------------------------------------------------------

MptcpConfig default_cfg() {
  MptcpConfig cfg;
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 1024 * 1024;
  return cfg;
}

struct TwoSubflowRun {
  TwoSubflowRun(std::vector<PathSpec> paths, uint64_t transfer_bytes,
                SimTime duration, MptcpConfig cfg = default_cfg()) {
    for (const auto& p : paths) rig.add_path(p);
    client_stack = std::make_unique<MptcpStack>(rig.client(), cfg);
    server_stack = std::make_unique<MptcpStack>(rig.server(), cfg);
    server_stack->listen(80, [this](MptcpConnection& c) {
      server_conn = &c;
      receiver = std::make_unique<BulkReceiver>(c);
    });
    client_conn = &client_stack->connect(rig.client_addr(0),
                                         Endpoint{rig.server_addr(), 80});
    sender = std::make_unique<BulkSender>(*client_conn, transfer_bytes);
    rig.loop().run_until(duration);
  }

  uint64_t subflow_sum(MptcpConnection& conn,
                       uint64_t TcpConnection::Stats::*field) const {
    uint64_t sum = 0;
    for (size_t i = 0; i < conn.subflow_count(); ++i) {
      sum += conn.subflow(i)->stats().*field;
    }
    return sum;
  }

  TwoHostRig rig;
  std::unique_ptr<MptcpStack> client_stack;
  std::unique_ptr<MptcpStack> server_stack;
  MptcpConnection* client_conn = nullptr;
  MptcpConnection* server_conn = nullptr;
  std::unique_ptr<BulkSender> sender;
  std::unique_ptr<BulkReceiver> receiver;
};

TEST(StatsMptcp, LosslessTwoSubflowRunHasExactCounters) {
  constexpr uint64_t kBytes = 400 * 1000;
  // A 64 KB shared window keeps the wifi queue well below its 80 KB
  // drop-tail buffer, so the run is genuinely loss-free end to end; M1/M2
  // are off so no duplicate copies are ever injected.
  MptcpConfig cfg = default_cfg();
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 64 * 1024;
  cfg.opportunistic_retransmit = false;
  cfg.penalize_slow_subflows = false;
  // Initial subflow on the slow 3G path: its cwnd cannot swallow the
  // whole 64 KB window before the wifi join completes, so both subflows
  // are guaranteed to carry data.
  TwoSubflowRun f({threeg_path(), wifi_path()}, kBytes, 10 * kSecond, cfg);
  ASSERT_NE(f.server_conn, nullptr);
  ASSERT_EQ(f.receiver->bytes_received(), kBytes);
  StatsRegistry& reg = f.rig.stats();

  // Loss-free run: not a single drop, retransmission or RTO anywhere,
  // and no fallback. Exact zeros, not bounds.
  EXPECT_DOUBLE_EQ(reg.value("sim.link.wifi-up.dropped_overflow") +
                       reg.value("sim.link.wifi-down.dropped_overflow") +
                       reg.value("sim.link.3g-up.dropped_overflow") +
                       reg.value("sim.link.3g-down.dropped_overflow"),
                   0.0);
  EXPECT_DOUBLE_EQ(reg.value("tcp.retransmits"), 0.0);
  EXPECT_DOUBLE_EQ(reg.value("tcp.fast_retransmits"), 0.0);
  EXPECT_DOUBLE_EQ(reg.value("tcp.rto_firings"), 0.0);
  EXPECT_DOUBLE_EQ(reg.value("mptcp.client.fallbacks"), 0.0);
  EXPECT_DOUBLE_EQ(reg.value("mptcp.client.checksum_failures"), 0.0);

  // The server's meta socket delivered exactly the bytes the app wrote.
  EXPECT_DOUBLE_EQ(reg.value("mptcp.server.delivered_bytes"),
                   static_cast<double>(kBytes));

  // Scheduler picks == mappings emitted (no M1 reinjections without loss),
  // and the per-subflow counters sum to the connection total.
  const double picks = reg.value("mptcp.client.scheduler_picks");
  const double maps = reg.value("mptcp.client.dss_mappings_emitted");
  EXPECT_GT(picks, 0.0);
  EXPECT_DOUBLE_EQ(picks, maps);
  EXPECT_DOUBLE_EQ(reg.value("mptcp.client.sf0.scheduler_picks") +
                       reg.value("mptcp.client.sf1.scheduler_picks"),
                   picks);
  EXPECT_DOUBLE_EQ(reg.value("mptcp.client.sf0.dss_mappings_emitted") +
                       reg.value("mptcp.client.sf1.dss_mappings_emitted"),
                   maps);
  // Both subflows actually carried data.
  EXPECT_GT(reg.value("mptcp.client.sf0.scheduler_picks"), 0.0);
  EXPECT_GT(reg.value("mptcp.client.sf1.scheduler_picks"), 0.0);

  // DATA_ACKs advanced over the whole stream (+1 for the DATA_FIN).
  EXPECT_DOUBLE_EQ(reg.value("mptcp.client.data_acked_bytes"),
                   static_cast<double>(kBytes + 1));

  // Exactly-once pairing: the registry's loop-global TCP aggregates must
  // equal the sums of the per-connection stats structs (all four
  // subflows: two per side).
  const uint64_t sent =
      f.subflow_sum(*f.client_conn, &TcpConnection::Stats::segments_sent) +
      f.subflow_sum(*f.server_conn, &TcpConnection::Stats::segments_sent);
  const uint64_t received =
      f.subflow_sum(*f.client_conn,
                    &TcpConnection::Stats::segments_received) +
      f.subflow_sum(*f.server_conn, &TcpConnection::Stats::segments_received);
  EXPECT_DOUBLE_EQ(reg.value("tcp.segments_sent"),
                   static_cast<double>(sent));
  EXPECT_DOUBLE_EQ(reg.value("tcp.segments_received"),
                   static_cast<double>(received));

  // The simulator saw every one of those segments cross a link.
  EXPECT_DOUBLE_EQ(
      reg.value("sim.link.wifi-up.delivered_pkts") +
          reg.value("sim.link.wifi-down.delivered_pkts") +
          reg.value("sim.link.3g-up.delivered_pkts") +
          reg.value("sim.link.3g-down.delivered_pkts"),
      static_cast<double>(sent));
}

TEST(StatsMptcp, LossyRunPairsRetransmitCountersExactly) {
  // 2% loss on the weak 3G path forces real retransmissions; the registry
  // totals must still match the per-connection structs exactly -- each
  // instrumented site increments both, once.
  TwoSubflowRun f({wifi_path(), weak_threeg_path(0.02)}, 0, 8 * kSecond);
  ASSERT_NE(f.server_conn, nullptr);
  StatsRegistry& reg = f.rig.stats();

  const uint64_t rtx =
      f.subflow_sum(*f.client_conn, &TcpConnection::Stats::retransmits) +
      f.subflow_sum(*f.server_conn, &TcpConnection::Stats::retransmits);
  const uint64_t rto =
      f.subflow_sum(*f.client_conn, &TcpConnection::Stats::timeouts) +
      f.subflow_sum(*f.server_conn, &TcpConnection::Stats::timeouts);
  EXPECT_GT(rtx, 0u);  // the loss model did its job
  EXPECT_DOUBLE_EQ(reg.value("tcp.retransmits"), static_cast<double>(rtx));
  EXPECT_DOUBLE_EQ(reg.value("tcp.rto_firings"), static_cast<double>(rto));

  // Dead connections must deregister: destroying the client stack drops
  // every mptcp.client* export but leaves the loop-global ones.
  EXPECT_GT(reg.value("mptcp.client.scheduler_picks"), 0.0);
  EXPECT_GT(f.rig.stats().flatten().count("mptcp.client.sf0.scheduler_picks"),
            0u);
  f.sender.reset();
  f.client_stack.reset();
  EXPECT_DOUBLE_EQ(reg.value("mptcp.client.scheduler_picks"), 0.0);
  EXPECT_DOUBLE_EQ(reg.value("mptcp.client.sf0.scheduler_picks"), 0.0);
  for (const auto& [name, v] : f.rig.stats().flatten()) {
    EXPECT_TRUE(name.rfind("mptcp.client", 0) != 0) << name;
  }
  EXPECT_TRUE(reg.contains("tcp.retransmits"));
}

TEST(StatsMptcp, DumpStatsRoundTrips) {
  TwoSubflowRun f({wifi_path(), threeg_path()}, 50 * 1000, 5 * kSecond);
  const std::string json = f.rig.dump_stats();
  const auto parsed = StatsRegistry::parse_flat_json(json);
  EXPECT_EQ(parsed, f.rig.stats().flatten());
  EXPECT_GT(parsed.at("sim.events_fired"), 0.0);
}

// ---------------------------------------------------------------------------
// Determinism digest.
// ---------------------------------------------------------------------------

TEST(StatsDigest, SameSeedSameDigest) {
  DigestConfig cfg;
  cfg.duration = 2 * kSecond;
  const DigestResult a = run_digest_scenario(cfg);
  const DigestResult b = run_digest_scenario(cfg);
  EXPECT_GT(a.packets_hashed, 0u);
  EXPECT_GT(a.bytes_delivered, 0u);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.packets_hashed, b.packets_hashed);
  EXPECT_EQ(a.stats_json, b.stats_json);
}

TEST(StatsDigest, DifferentSeedDifferentDigest) {
  DigestConfig a, b;
  a.duration = b.duration = 2 * kSecond;
  a.seed = 1;
  b.seed = 2;
  EXPECT_NE(run_digest_scenario(a).digest, run_digest_scenario(b).digest);
}

}  // namespace
}  // namespace mptcp
