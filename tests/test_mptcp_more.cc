// Additional MPTCP behaviours: many subflows, streaming reads under
// pressure, receive algorithms at the connection level, and the fallback
// write-through path.
#include <gtest/gtest.h>

#include <memory>

#include "app/bulk_app.h"
#include "app/harness.h"
#include "core/mptcp_stack.h"

namespace mptcp {
namespace {

TEST(MptcpScale, FourPathsAggregateAndDeliverIntact) {
  TwoHostRig rig;
  for (int i = 0; i < 4; ++i) {
    rig.add_path(ethernet_path(50e6, 10 * kMillisecond, 40 * kMillisecond));
  }
  MptcpConfig cfg;
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 2 * 1000 * 1000;
  MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
  MptcpConnection* sconn = nullptr;
  std::unique_ptr<BulkReceiver> rx;
  ss.listen(80, [&](MptcpConnection& c) {
    sconn = &c;
    rx = std::make_unique<BulkReceiver>(c);
  });
  MptcpConnection& cc =
      cs.connect(rig.client_addr(0), {rig.server_addr(), 80});
  BulkSender tx(cc, 0);
  rig.loop().run_until(2 * kSecond);
  EXPECT_EQ(cc.subflow_count(), 4u);
  const uint64_t at2 = rx->bytes_received();
  rig.loop().run_until(10 * kSecond);
  const double mbps =
      static_cast<double>(rx->bytes_received() - at2) * 8 / 8e6;
  // Four 50 Mbps paths: clearly beyond any single one.
  EXPECT_GT(mbps, 100.0);
  EXPECT_TRUE(rx->pattern_ok());
  // All four subflows carried meaningful traffic.
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_GT(cc.subflow(i)->stats().bytes_sent, 5u * 1000u * 1000u) << i;
  }
}

TEST(MptcpScale, ReceiverMemoryBoundedByConfiguredBuffer) {
  TwoHostRig rig;
  rig.add_path(wifi_path());
  rig.add_path(threeg_path());
  MptcpConfig cfg;
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 200 * 1000;
  MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
  MptcpConnection* sconn = nullptr;
  std::unique_ptr<BulkReceiver> rx;
  ss.listen(80, [&](MptcpConnection& c) {
    sconn = &c;
    rx = std::make_unique<BulkReceiver>(c, false);
  });
  MptcpConnection& cc =
      cs.connect(rig.client_addr(0), {rig.server_addr(), 80});
  BulkSender tx(cc, 0);
  double peak = 0;
  PeriodicSampler sampler(rig.loop(), 10 * kMillisecond, [&](SimTime) {
    if (sconn != nullptr) {
      peak = std::max(peak, static_cast<double>(sconn->receiver_memory()));
    }
  });
  rig.loop().run_until(15 * kSecond);
  // Reordering memory can never exceed the connection-level window plus
  // one segment of slack per subflow.
  EXPECT_LE(peak, 200e3 + 2 * 1460 + 1000);
  EXPECT_GT(rx->bytes_received(), 5u * 1000u * 1000u);
}

TEST(MptcpScale, SlowReaderThrottlesSenderViaMetaWindow) {
  TwoHostRig rig;
  rig.add_path(wifi_path());
  rig.add_path(threeg_path());
  MptcpConfig cfg;
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 100 * 1000;
  MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
  MptcpConnection* sconn = nullptr;
  ss.listen(80, [&](MptcpConnection& c) { sconn = &c; });
  MptcpConnection& cc =
      cs.connect(rig.client_addr(0), {rig.server_addr(), 80});
  BulkSender tx(cc, 0);

  // The app reads only 20 KB/s: goodput must match the reader, not the
  // paths, and unread data must never exceed the configured buffer.
  uint64_t total_read = 0;
  uint8_t buf[2000];
  PeriodicSampler reader(rig.loop(), 100 * kMillisecond, [&](SimTime) {
    if (sconn != nullptr) total_read += sconn->read(buf);
  });
  rig.loop().run_until(20 * kSecond);
  EXPECT_LE(sconn->readable_bytes(), 100u * 1000u);
  // ~2 KB per 100 ms = 20 KB/s; 20 s => ~400 KB total.
  EXPECT_NEAR(static_cast<double>(total_read), 400e3, 60e3);
  // And the sender really was throttled: nothing like path capacity.
  EXPECT_LT(cc.data_acked() - (cc.idsn_local() + 1), 700u * 1000u);
}

TEST(MptcpFallback, WriteThroughPathPreservesOrderingUnderPressure) {
  // In fallback mode write() passes straight to the subflow; mixed
  // full/partial writes must keep byte order.
  TwoHostRig rig;
  rig.add_path(wifi_path());
  MptcpConfig tcp_only;
  tcp_only.enabled = false;
  tcp_only.tcp.snd_buf_max = 32 * 1024;  // force partial writes
  MptcpStack cs(rig.client(), tcp_only), ss(rig.server(), tcp_only);
  MptcpConnection* sconn = nullptr;
  std::unique_ptr<BulkReceiver> rx;
  ss.listen(80, [&](MptcpConnection& c) {
    sconn = &c;
    rx = std::make_unique<BulkReceiver>(c);
  });
  MptcpConnection& cc =
      cs.connect(rig.client_addr(0), {rig.server_addr(), 80});
  BulkSender tx(cc, 2 * 1000 * 1000);
  rig.loop().run_until(10 * kSecond);
  EXPECT_EQ(rx->bytes_received(), 2u * 1000u * 1000u);
  EXPECT_TRUE(rx->pattern_ok());
  EXPECT_TRUE(rx->saw_eof());
}

TEST(MptcpScale, ManySequentialConnectionsReuseCleanly) {
  // 50 sequential connections on one stack pair: tokens must never
  // collide or leak.
  TwoHostRig rig;
  rig.add_path(ethernet_path(1e9));
  MptcpConfig cfg;
  cfg.tcp.time_wait = 1 * kMillisecond;
  MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
  uint64_t transfers_ok = 0;
  std::unique_ptr<BulkReceiver> rx;
  uint64_t got = 0;
  bool pattern_ok = false;
  ss.listen(80, [&](MptcpConnection& c) {
    c.set_auto_destroy(true);
    rx = std::make_unique<BulkReceiver>(c);
    rx->on_eof = [&c] { c.close(); };  // finish the reverse direction
    // The receiver references the connection, so it must not outlive an
    // auto-destroyed one: snapshot its counters and drop it on close.
    c.on_closed = [&] {
      if (rx) {
        got = rx->bytes_received();
        pattern_ok = rx->pattern_ok();
        rx.reset();
      }
    };
  });
  for (int i = 0; i < 50; ++i) {
    got = 0;
    pattern_ok = false;
    MptcpConnection& cc =
        cs.connect(rig.client_addr(0), {rig.server_addr(), 80});
    BulkSender tx(cc, 50 * 1000);
    const SimTime deadline = rig.loop().now() + 2 * kSecond;
    rig.loop().run_until(deadline);
    if (got == 50u * 1000u && pattern_ok) ++transfers_ok;
    rx.reset();  // transfer failed: the connection is still alive here
  }
  EXPECT_EQ(transfers_ok, 50u);
  EXPECT_LE(cs.tokens().size(), 2u);  // all unregistered after teardown
  EXPECT_LE(ss.tokens().size(), 2u);
}

}  // namespace
}  // namespace mptcp
