// Shared-payload semantics: refcounted views, zero-copy slicing,
// copy-on-write, and the cached folded checksum -- including the
// end-to-end property that a payload-rewriting middlebox cannot corrupt
// the sender's retransmit buffer through the shared bytes.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/meta_recv.h"
#include "middlebox/payload_modifier.h"
#include "net/checksum.h"
#include "net/payload.h"
#include "net/segment.h"
#include "tcp/tcp_buffers.h"

namespace mptcp {
namespace {

std::vector<uint8_t> pattern(size_t n) {
  std::vector<uint8_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = static_cast<uint8_t>(i * 7 + 3);
  return out;
}

TEST(Payload, CopySharesTheBuffer) {
  Payload a(pattern(100));
  Payload b = a;
  EXPECT_TRUE(a.shares_buffer_with(b));
  EXPECT_EQ(a.buffer_refs(), 2u);
  EXPECT_EQ(a, b);
}

TEST(Payload, SubviewSharesAndSeesTheRightBytes) {
  Payload a(pattern(100));
  Payload s = a.subview(10, 20);
  EXPECT_TRUE(s.shares_buffer_with(a));
  ASSERT_EQ(s.size(), 20u);
  for (size_t i = 0; i < 20; ++i) EXPECT_EQ(s[i], a[10 + i]);
}

TEST(Payload, RemovePrefixAndTruncateAreZeroCopy) {
  Payload a(pattern(50));
  Payload v = a;
  v.remove_prefix(10);
  v.truncate(20);
  EXPECT_TRUE(v.shares_buffer_with(a));
  ASSERT_EQ(v.size(), 20u);
  for (size_t i = 0; i < 20; ++i) EXPECT_EQ(v[i], a[10 + i]);
}

TEST(Payload, MutableDataOnUnsharedBufferDoesNotCopy) {
  Payload a(pattern(10));
  const uint8_t* before = a.data();
  EXPECT_EQ(a.buffer_refs(), 1u);
  uint8_t* w = a.mutable_data();
  EXPECT_EQ(w, before);  // sole owner: written in place
}

TEST(Payload, MutableDataOnSharedBufferCopiesOnWrite) {
  Payload a(pattern(64));
  Payload b = a;
  b.mutable_data()[0] = 0xEE;
  EXPECT_FALSE(a.shares_buffer_with(b));  // b unshared itself
  EXPECT_EQ(a[0], pattern(64)[0]);        // a untouched
  EXPECT_EQ(b[0], 0xEE);
}

TEST(Payload, FoldedSumIsCachedAndMatchesDirectComputation) {
  Payload a(pattern(1460));
  EXPECT_FALSE(a.sum_cached());
  const uint16_t s = a.folded_sum();
  EXPECT_TRUE(a.sum_cached());
  EXPECT_EQ(s, ones_complement_sum(a.span()));
  // Copies inherit the cache; subviews of a partial range do not.
  Payload b = a;
  EXPECT_TRUE(b.sum_cached());
  Payload v = a.subview(1, 10);
  EXPECT_FALSE(v.sum_cached());
  EXPECT_EQ(v.folded_sum(), ones_complement_sum(v.span()));
}

TEST(Payload, MutableDataInvalidatesCachedSum) {
  Payload a(pattern(100));
  const uint16_t before = a.folded_sum();
  ASSERT_TRUE(a.sum_cached());
  a.mutable_data()[50] ^= 0xA5;
  EXPECT_FALSE(a.sum_cached());
  const uint16_t after = a.folded_sum();
  EXPECT_NE(before, after);
  EXPECT_EQ(after, ones_complement_sum(a.span()));
}

TEST(Payload, ConcatSharesSinglePartAndAssemblesMany) {
  const std::vector<uint8_t> bytes = pattern(300);
  Payload whole(bytes);
  const Payload one_part[] = {whole};
  Payload one = Payload::concat(one_part);
  EXPECT_TRUE(one.shares_buffer_with(whole));  // no copy for one fragment

  const Payload parts[] = {whole.subview(0, 100), Payload(),
                           whole.subview(100, 200)};
  Payload two = Payload::concat(parts);
  EXPECT_EQ(two, whole);
  EXPECT_FALSE(two.shares_buffer_with(whole));  // assembled fresh

  EXPECT_TRUE(Payload::concat(std::span<const Payload>{}).empty());
}

TEST(PayloadPool, ResetZeroesStatsAndRecyclesHotSizes) {
  Payload::pool_reset();
  EXPECT_EQ(Payload::pool_stats().hits, 0u);
  EXPECT_EQ(Payload::pool_stats().misses, 0u);
  { Payload a(1460, 0x11); }  // small class block, freed to the pool
  Payload b(2048, 0x22);      // same class: recycled when the pool is on
  const Payload::PoolStats& s = Payload::pool_stats();
  // Under sanitizers the pool is compiled out and both counters stay 0;
  // otherwise the first allocation misses and the second reuses its block.
  if (s.misses != 0) {
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_GE(b.buffer_capacity(), 2048u);  // rounded up to the size class
  }
  Payload::pool_reset();
  EXPECT_EQ(Payload::pool_stats().hits, 0u);
  EXPECT_EQ(Payload::pool_stats().misses, 0u);
}

// --- The COW property the retransmit path depends on ------------------------

class CapturingSink : public PacketSink {
 public:
  std::vector<TcpSegment> segs;
  void deliver(TcpSegment seg) override { segs.push_back(std::move(seg)); }
};

TEST(PayloadCow, ModifierRewriteLeavesSendBufferIntact) {
  // A segment carved from the send buffer shares its bytes; a
  // payload-rewriting middlebox (ALG) must trigger copy-on-write rather
  // than corrupt the copy the sender would retransmit from.
  SendBuffer snd(0);
  const std::vector<uint8_t> original = pattern(1000);
  snd.append(original, original.size());

  TcpSegment seg;
  seg.tuple = {{IpAddr(10, 0, 0, 1), 1}, {IpAddr(10, 0, 0, 2), 2}};
  seg.payload = snd.slice_out(0, 500);
  const uint16_t clean_sum = seg.payload.folded_sum();
  ASSERT_TRUE(seg.payload.shares_buffer_with(snd.slice_out(0, 500)));

  PayloadModifier alg;
  CapturingSink sink;
  alg.set_downstream(&sink);
  alg.deliver(std::move(seg));
  ASSERT_EQ(alg.segments_modified(), 1u);
  ASSERT_EQ(sink.segs.size(), 1u);

  const Payload& mangled = sink.segs[0].payload;
  EXPECT_EQ(mangled[250], static_cast<uint8_t>(original[250] ^ 0xA5));
  EXPECT_NE(mangled.folded_sum(), clean_sum);  // recomputed post-rewrite

  // The retransmission reads the same range again: bytes and cached sum
  // are those of the original data, not the middlebox's rewrite.
  const Payload rtx = snd.slice_out(0, 500);
  EXPECT_FALSE(rtx.shares_buffer_with(mangled));
  EXPECT_EQ(rtx.folded_sum(), clean_sum);
  for (size_t i = 0; i < 500; ++i) {
    ASSERT_EQ(rtx[i], original[i]) << "retransmit buffer corrupted at " << i;
  }
}

TEST(PayloadCow, MiddleboxRewriteCannotReachAnyQueueSharingTheBytes) {
  // One wire payload fans out into every structure that can hold it at
  // once on the zero-copy receive path: the sender's retransmit buffer,
  // a subflow reassembly queue, the connection-level out-of-order queue,
  // and the in-order app queue. A middlebox rewriting the in-flight copy
  // must not be visible through any of them.
  const std::vector<uint8_t> original = pattern(1460);
  Payload wire{std::span<const uint8_t>(original)};

  SendBuffer snd(1000);
  ASSERT_EQ(snd.append_shared(wire, size_t{1} << 20), wire.size());
  ReassemblyQueue reasm;
  reasm.insert(5000, wire);
  MetaReceiveQueue meta(RecvAlgo::kShortcuts);
  meta.insert(9000, wire, /*subflow_id=*/0, /*floor=*/0);
  RecvQueue app;
  app.push(wire);

  TcpSegment seg;
  seg.tuple = {{IpAddr(10, 0, 0, 1), 1}, {IpAddr(10, 0, 0, 2), 2}};
  seg.payload = wire;
  PayloadModifier alg;
  CapturingSink sink;
  alg.set_downstream(&sink);
  alg.deliver(std::move(seg));
  ASSERT_EQ(alg.segments_modified(), 1u);
  const Payload& mangled = sink.segs[0].payload;
  EXPECT_NE(mangled[730], original[730]);

  const Payload want{std::span<const uint8_t>(original)};
  EXPECT_EQ(snd.slice_out(1000, 1460), want);
  auto popped = reasm.pop_ready(5000);
  ASSERT_TRUE(popped.has_value());
  EXPECT_EQ(popped->second, want);
  auto chunk = meta.pop_ready(9000);
  ASSERT_TRUE(chunk.has_value());
  EXPECT_EQ(chunk->bytes, want);
  std::vector<uint8_t> out(original.size());
  ASSERT_EQ(app.read(out), original.size());
  EXPECT_TRUE(std::equal(out.begin(), out.end(), original.begin()));
  EXPECT_EQ(wire, want);  // the shared view itself is untouched
}

}  // namespace
}  // namespace mptcp
