// Unit tests for individual middlebox elements (integration coverage
// lives in test_middlebox.cc; these pin the per-element mechanics).
#include <gtest/gtest.h>

#include <vector>

#include "middlebox/nat.h"
#include "middlebox/option_stripper.h"
#include "middlebox/payload_modifier.h"
#include "middlebox/proactive_acker.h"
#include "middlebox/segment_coalescer.h"
#include "middlebox/segment_splitter.h"
#include "middlebox/seq_rewriter.h"

namespace mptcp {
namespace {

struct Capture : PacketSink {
  std::vector<TcpSegment> got;
  void deliver(TcpSegment seg) override { got.push_back(std::move(seg)); }
};

TcpSegment data_seg(uint32_t seq, size_t len, bool syn = false) {
  TcpSegment seg;
  seg.tuple = {{IpAddr(10, 0, 0, 2), 1111}, {IpAddr(10, 99, 0, 1), 80}};
  seg.seq = seq;
  seg.syn = syn;
  seg.ack_flag = !syn;
  seg.payload.assign(len, 0xAB);
  return seg;
}

// --- OptionStripper -----------------------------------------------------------

TEST(OptionStripperUnit, SynOnlyScopeLeavesDataSegmentsAlone) {
  OptionStripper strip(OptionStripper::Scope::kSynOnly,
                       OptionStripper::What::kAllMptcp);
  Capture out;
  strip.set_downstream(&out);

  TcpSegment syn = data_seg(1, 0, true);
  syn.options.push_back(MpCapableOption{0, true, 42ULL, std::nullopt});
  syn.options.push_back(MssOption{1460});
  strip.deliver(syn);

  TcpSegment data = data_seg(2, 100);
  data.options.push_back(DssOption{1, std::nullopt, false, 0});
  strip.deliver(data);

  ASSERT_EQ(out.got.size(), 2u);
  EXPECT_EQ(find_option<MpCapableOption>(out.got[0].options), nullptr);
  EXPECT_NE(find_option<MssOption>(out.got[0].options), nullptr);
  EXPECT_NE(find_option<DssOption>(out.got[1].options), nullptr);
  EXPECT_EQ(strip.options_removed(), 1u);
}

TEST(OptionStripperUnit, AllUnknownKeepsStandardOptions) {
  OptionStripper strip(OptionStripper::Scope::kAllSegments,
                       OptionStripper::What::kAllUnknown);
  Capture out;
  strip.set_downstream(&out);
  TcpSegment seg = data_seg(1, 10);
  seg.options = {TimestampOption{1, 2}, SackOption{{{5, 9}}},
                 DssOption{7, std::nullopt, false, 0},
                 AddAddrOption{1, IpAddr(1, 2, 3, 4), std::nullopt}};
  strip.deliver(seg);
  ASSERT_EQ(out.got.size(), 1u);
  EXPECT_EQ(out.got[0].options.size(), 2u);
  EXPECT_NE(find_option<TimestampOption>(out.got[0].options), nullptr);
  EXPECT_NE(find_option<SackOption>(out.got[0].options), nullptr);
}

// --- SeqRewriter ------------------------------------------------------------------

TEST(SeqRewriterUnit, ForwardShiftsConsistentlyAndReverseUndoes) {
  SeqRewriter rw(7);
  Capture fwd, rev;
  rw.forward_sink().set_downstream(&fwd);
  rw.reverse_sink().set_downstream(&rev);

  TcpSegment syn = data_seg(1000, 0, true);
  rw.forward_sink().deliver(syn);
  TcpSegment d1 = data_seg(1001, 100);
  rw.forward_sink().deliver(d1);
  ASSERT_EQ(fwd.got.size(), 2u);
  const uint32_t delta = fwd.got[0].seq - 1000;
  EXPECT_EQ(fwd.got[1].seq, 1001 + delta);

  // Reverse: ack and SACK blocks shifted back.
  TcpSegment ack;
  ack.tuple = syn.tuple.reversed();
  ack.ack_flag = true;
  ack.ack = 1101 + delta;
  ack.options.push_back(SackOption{{{2000 + delta, 2100 + delta}}});
  rw.reverse_sink().deliver(ack);
  ASSERT_EQ(rev.got.size(), 1u);
  EXPECT_EQ(rev.got[0].ack, 1101u);
  const auto* sack = find_option<SackOption>(rev.got[0].options);
  ASSERT_NE(sack, nullptr);
  EXPECT_EQ(sack->blocks[0].begin, 2000u);
  EXPECT_EQ(sack->blocks[0].end, 2100u);
}

TEST(SeqRewriterUnit, MidFlowSegmentsWithoutSynPassUntouched) {
  SeqRewriter rw(7);
  Capture fwd;
  rw.forward_sink().set_downstream(&fwd);
  rw.forward_sink().deliver(data_seg(5000, 10));
  ASSERT_EQ(fwd.got.size(), 1u);
  EXPECT_EQ(fwd.got[0].seq, 5000u);
}

// --- Nat -------------------------------------------------------------------------

TEST(NatUnit, StableMappingPerPrivateEndpoint) {
  Nat nat(IpAddr(192, 0, 2, 1));
  Capture fwd, rev;
  nat.forward_sink().set_downstream(&fwd);
  nat.reverse_sink().set_downstream(&rev);

  nat.forward_sink().deliver(data_seg(1, 0, true));
  nat.forward_sink().deliver(data_seg(2, 10));
  ASSERT_EQ(fwd.got.size(), 2u);
  EXPECT_EQ(fwd.got[0].tuple.src.addr, IpAddr(192, 0, 2, 1));
  EXPECT_EQ(fwd.got[0].tuple.src, fwd.got[1].tuple.src);
  EXPECT_EQ(nat.mappings(), 1u);

  // Return traffic to the public endpoint maps back.
  TcpSegment back;
  back.tuple = {fwd.got[0].tuple.dst, fwd.got[0].tuple.src};
  nat.reverse_sink().deliver(back);
  ASSERT_EQ(rev.got.size(), 1u);
  EXPECT_EQ(rev.got[0].tuple.dst, (Endpoint{IpAddr(10, 0, 0, 2), 1111}));
}

TEST(NatUnit, UnknownInboundIsDropped) {
  Nat nat(IpAddr(192, 0, 2, 1));
  Capture rev;
  nat.reverse_sink().set_downstream(&rev);
  TcpSegment stray;
  stray.tuple = {{IpAddr(8, 8, 8, 8), 53}, {IpAddr(192, 0, 2, 1), 7777}};
  nat.reverse_sink().deliver(stray);
  EXPECT_TRUE(rev.got.empty());
}

// --- SegmentSplitter ---------------------------------------------------------------

TEST(SplitterUnit, CopiesOptionsToEveryPartAndAdjustsSeq) {
  SegmentSplitter split(400);
  Capture out;
  split.set_downstream(&out);
  TcpSegment big = data_seg(1000, 1000);
  big.options.push_back(
      DssOption{5, DssMapping{99, 1, 1000, 0x1234}, false, 0});
  big.fin = true;
  split.deliver(big);

  ASSERT_EQ(out.got.size(), 3u);
  EXPECT_EQ(out.got[0].seq, 1000u);
  EXPECT_EQ(out.got[1].seq, 1400u);
  EXPECT_EQ(out.got[2].seq, 1800u);
  EXPECT_EQ(out.got[2].payload.size(), 200u);
  for (const auto& part : out.got) {
    const auto* dss = find_option<DssOption>(part.options);
    ASSERT_NE(dss, nullptr);
    EXPECT_EQ(dss->mapping->dsn, 99u);  // identical copies, as TSO does
  }
  EXPECT_FALSE(out.got[0].fin);
  EXPECT_TRUE(out.got[2].fin);  // FIN rides the last part
}

TEST(SplitterUnit, SmallSegmentsPassThrough) {
  SegmentSplitter split(1460);
  Capture out;
  split.set_downstream(&out);
  split.deliver(data_seg(1, 500));
  ASSERT_EQ(out.got.size(), 1u);
  EXPECT_EQ(split.splits(), 0u);
}

// --- SegmentCoalescer ---------------------------------------------------------------

TEST(CoalescerUnit, MergesContiguousPairKeepingFirstOptions) {
  EventLoop loop;
  SegmentCoalescer co(loop, 10 * kMillisecond, 2);
  Capture out;
  co.set_downstream(&out);

  TcpSegment a = data_seg(1000, 100);
  a.options.push_back(DssOption{1, DssMapping{10, 1, 100, 0x1}, false, 0});
  TcpSegment b = data_seg(1100, 100);
  b.options.push_back(DssOption{2, DssMapping{110, 101, 100, 0x2}, false, 0});
  co.deliver(a);
  co.deliver(b);
  loop.run();

  ASSERT_EQ(out.got.size(), 1u);
  EXPECT_EQ(out.got[0].payload.size(), 200u);
  const auto* dss = find_option<DssOption>(out.got[0].options);
  ASSERT_NE(dss, nullptr);
  EXPECT_EQ(dss->mapping->dsn, 10u);  // the second mapping is lost
  EXPECT_EQ(co.coalesced(), 1u);
}

TEST(CoalescerUnit, NonContiguousFlushesHeldSegment) {
  EventLoop loop;
  SegmentCoalescer co(loop, 10 * kMillisecond, 2);
  Capture out;
  co.set_downstream(&out);
  co.deliver(data_seg(1000, 100));
  co.deliver(data_seg(5000, 100));  // gap: first must flush unmerged
  loop.run();
  ASSERT_EQ(out.got.size(), 2u);
  EXPECT_EQ(out.got[0].seq, 1000u);
  EXPECT_EQ(out.got[0].payload.size(), 100u);
}

TEST(CoalescerUnit, HoldTimerFlushesLoneSegment) {
  EventLoop loop;
  SegmentCoalescer co(loop, 10 * kMillisecond, 2);
  Capture out;
  co.set_downstream(&out);
  co.deliver(data_seg(1000, 100));
  loop.run_until(5 * kMillisecond);
  EXPECT_TRUE(out.got.empty());  // still held
  loop.run_until(20 * kMillisecond);
  ASSERT_EQ(out.got.size(), 1u);
}

// --- ProactiveAcker ------------------------------------------------------------------

TEST(ProactiveAckerUnit, ForgesContiguousAcksOnly) {
  ProactiveAcker proxy;
  Capture fwd, rev;
  proxy.forward_sink().set_downstream(&fwd);
  proxy.reverse_sink().set_downstream(&rev);

  proxy.forward_sink().deliver(data_seg(1000, 0, true));  // SYN
  proxy.forward_sink().deliver(data_seg(1001, 100));
  ASSERT_EQ(rev.got.size(), 1u);
  EXPECT_EQ(rev.got[0].ack, 1101u);
  // A gap: the forged ACK must not advance.
  proxy.forward_sink().deliver(data_seg(1301, 100));
  ASSERT_EQ(rev.got.size(), 2u);
  EXPECT_EQ(rev.got[1].ack, 1101u);
  // Forged ACKs carry no MPTCP options (a middlebox speaks plain TCP).
  for (const auto& ack : rev.got) {
    for (const auto& o : ack.options) EXPECT_FALSE(is_mptcp_option(o));
  }
}

TEST(ProactiveAckerUnit, CorrectsAcksBeyondObserved) {
  ProactiveAcker proxy(ProactiveAcker::AckPolicy::kCorrectUnseen);
  Capture fwd, rev;
  proxy.forward_sink().set_downstream(&fwd);
  proxy.reverse_sink().set_downstream(&rev);
  proxy.forward_sink().deliver(data_seg(1000, 0, true));
  proxy.forward_sink().deliver(data_seg(1001, 100));
  // The real receiver acks data the proxy never saw.
  TcpSegment ack;
  ack.tuple = data_seg(0, 0).tuple.reversed();
  ack.ack_flag = true;
  ack.ack = 9999;
  proxy.reverse_sink().deliver(ack);
  ASSERT_GE(rev.got.size(), 2u);
  EXPECT_EQ(rev.got.back().ack, 1101u);  // "corrected" down
}

// --- PayloadModifier / HoleDropper ------------------------------------------------------

TEST(PayloadModifierUnit, FlipsBytesAtConfiguredInterval) {
  PayloadModifier alg(2);
  Capture out;
  alg.set_downstream(&out);
  for (int i = 0; i < 4; ++i) alg.deliver(data_seg(1000 + i * 100, 100));
  EXPECT_EQ(alg.segments_modified(), 2u);
  EXPECT_EQ(out.got[0].payload[50], 0xAB);         // untouched
  EXPECT_EQ(out.got[1].payload[50], 0xAB ^ 0xA5);  // modified
}

TEST(HoleDropperUnit, DropsDataAfterGapUntilFilled) {
  HoleDropper hd;
  Capture out;
  hd.set_downstream(&out);
  hd.deliver(data_seg(1000, 0, true));   // SYN: expect 1001
  hd.deliver(data_seg(1001, 100));       // ok
  hd.deliver(data_seg(1201, 100));       // hole at 1101: dropped
  EXPECT_EQ(hd.holes_dropped(), 1u);
  hd.deliver(data_seg(1101, 100));       // fills the hole
  hd.deliver(data_seg(1201, 100));       // retransmission passes now
  ASSERT_EQ(out.got.size(), 4u);
  EXPECT_EQ(out.got.back().seq, 1201u);
}

}  // namespace
}  // namespace mptcp
