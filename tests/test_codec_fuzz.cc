// Robustness of the wire codec against arbitrary bytes: a liberal TCP
// receiver must parse-or-reject, never crash, never read out of bounds,
// and round-trip whatever it accepts.
#include <gtest/gtest.h>

#include "net/rng.h"
#include "net/wire.h"

namespace mptcp {
namespace {

FourTuple t() {
  return {{IpAddr(10, 0, 0, 1), 1}, {IpAddr(10, 0, 0, 2), 2}};
}

class CodecFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecFuzz, RandomBytesNeverCrashParser) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    const size_t n = rng.next_below(120);
    std::vector<uint8_t> bytes(n);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.next_u64());
    // Must not crash; result may be nullopt or an arbitrary segment.
    auto seg = parse_segment(bytes, t());
    if (seg) {
      // Whatever parsed must re-serialize without issue.
      auto re = serialize_segment(*seg);
      EXPECT_GE(re.size(), kTcpHeaderSize);
    }
    // Option parser on raw noise.
    auto opts = parse_options(bytes);
    for (const auto& o : opts) {
      EXPECT_GT(option_wire_size(o), 0u);
    }
  }
}

TEST_P(CodecFuzz, BitFlippedValidSegmentsParseOrReject) {
  Rng rng(GetParam() ^ 0xF00D);
  TcpSegment seg;
  seg.tuple = t();
  seg.seq = 1234;
  seg.ack = 5678;
  seg.ack_flag = true;
  seg.options = {TimestampOption{9, 8},
                 DssOption{77, DssMapping{100, 1, 64, 0xbeef}, false, 0},
                 SackOption{{{10, 20}, {30, 40}}}};
  seg.payload.assign(64, 0x5A);
  const auto base = serialize_segment(seg);

  for (int trial = 0; trial < 500; ++trial) {
    auto bytes = base;
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.next_below(bytes.size())] ^=
          static_cast<uint8_t>(1u << rng.next_below(8));
    }
    auto parsed = parse_segment(bytes, t());
    if (parsed) {
      auto re = serialize_segment(*parsed);
      EXPECT_GE(re.size(), kTcpHeaderSize);
    }
  }
}

TEST_P(CodecFuzz, TruncatedValidSegmentsParseOrReject) {
  Rng rng(GetParam() ^ 0xCAFE);
  TcpSegment seg;
  seg.tuple = t();
  seg.syn = true;
  seg.options = {MssOption{1460}, WindowScaleOption{7},
                 SackPermittedOption{}, TimestampOption{1, 0},
                 MpCapableOption{0, true, 0x1122334455667788ULL,
                                 std::nullopt}};
  const auto base = serialize_segment(seg);
  for (size_t cut = 0; cut < base.size(); ++cut) {
    std::vector<uint8_t> bytes(base.begin(), base.begin() + cut);
    auto parsed = parse_segment(bytes, t());  // must not crash
    (void)parsed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Range<uint64_t>(1, 9));

TEST(CodecFuzzOnce, OptionsTruncatedMidOptionAreSkipped) {
  // kind=30 (MPTCP), length says 20 but only 6 bytes follow.
  std::vector<uint8_t> bytes = {30, 20, 0x00, 0x80, 1, 2};
  auto opts = parse_options(bytes);  // must not crash or over-read
  EXPECT_TRUE(opts.empty() || opts.size() == 1);
}

TEST(CodecFuzzOnce, ZeroLengthOptionTerminates) {
  std::vector<uint8_t> bytes = {2, 0, 99, 99};  // MSS with bogus len 0
  auto opts = parse_options(bytes);
  EXPECT_TRUE(opts.empty());
}

}  // namespace
}  // namespace mptcp
