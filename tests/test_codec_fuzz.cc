// Robustness of the wire codec against arbitrary bytes: a liberal TCP
// receiver must parse-or-reject, never crash, never read out of bounds,
// and round-trip whatever it accepts.
#include <gtest/gtest.h>

#include "net/checksum.h"
#include "net/rng.h"
#include "net/wire.h"

namespace mptcp {
namespace {

FourTuple t() {
  return {{IpAddr(10, 0, 0, 1), 1}, {IpAddr(10, 0, 0, 2), 2}};
}

class CodecFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CodecFuzz, RandomBytesNeverCrashParser) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    const size_t n = rng.next_below(120);
    std::vector<uint8_t> bytes(n);
    for (auto& b : bytes) b = static_cast<uint8_t>(rng.next_u64());
    // Must not crash; result may be nullopt or an arbitrary segment.
    auto seg = parse_segment(bytes, t());
    if (seg) {
      // Whatever parsed must re-serialize without issue.
      auto re = serialize_segment(*seg);
      EXPECT_GE(re.size(), kTcpHeaderSize);
    }
    // Option parser on raw noise.
    auto opts = parse_options(bytes);
    for (const auto& o : opts) {
      EXPECT_GT(option_wire_size(o), 0u);
    }
  }
}

TEST_P(CodecFuzz, BitFlippedValidSegmentsParseOrReject) {
  Rng rng(GetParam() ^ 0xF00D);
  TcpSegment seg;
  seg.tuple = t();
  seg.seq = 1234;
  seg.ack = 5678;
  seg.ack_flag = true;
  seg.options = {TimestampOption{9, 8},
                 DssOption{77, DssMapping{100, 1, 64, 0xbeef}, false, 0},
                 SackOption{{{10, 20}, {30, 40}}}};
  seg.payload.assign(64, 0x5A);
  const auto base = serialize_segment(seg);

  for (int trial = 0; trial < 500; ++trial) {
    auto bytes = base;
    const int flips = 1 + static_cast<int>(rng.next_below(4));
    for (int f = 0; f < flips; ++f) {
      bytes[rng.next_below(bytes.size())] ^=
          static_cast<uint8_t>(1u << rng.next_below(8));
    }
    auto parsed = parse_segment(bytes, t());
    if (parsed) {
      auto re = serialize_segment(*parsed);
      EXPECT_GE(re.size(), kTcpHeaderSize);
    }
  }
}

TEST_P(CodecFuzz, TruncatedValidSegmentsParseOrReject) {
  Rng rng(GetParam() ^ 0xCAFE);
  TcpSegment seg;
  seg.tuple = t();
  seg.syn = true;
  seg.options = {MssOption{1460}, WindowScaleOption{7},
                 SackPermittedOption{}, TimestampOption{1, 0},
                 MpCapableOption{0, true, 0x1122334455667788ULL,
                                 std::nullopt}};
  const auto base = serialize_segment(seg);
  for (size_t cut = 0; cut < base.size(); ++cut) {
    std::vector<uint8_t> bytes(base.begin(), base.begin() + cut);
    auto parsed = parse_segment(bytes, t());  // must not crash
    (void)parsed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzz, ::testing::Range<uint64_t>(1, 9));

// --- Checksum kernel ----------------------------------------------------------
//
// The production kernel sums 8 bytes at a time; this is the obviously
// correct RFC 1071 reference it must match bit-for-bit: big-endian 16-bit
// words, odd trailing byte zero-padded, end-around carry fold.
uint16_t reference_folded_sum(std::span<const uint8_t> data) {
  uint64_t sum = 0;
  size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<uint16_t>((data[i] << 8) | data[i + 1]);
  }
  if (i < data.size()) sum += static_cast<uint16_t>(data[i] << 8);
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<uint16_t>(sum);
}

TEST(ChecksumProperty, WordwiseKernelMatchesBytewiseReference) {
  Rng rng(0x5eed);
  // Every length 0..64 covers the scalar tail, the 8/16-byte loop entry
  // conditions, and odd tails; 200 random lengths cover bigger blocks.
  for (size_t len = 0; len <= 64; ++len) {
    std::vector<uint8_t> data(len);
    for (auto& b : data) b = static_cast<uint8_t>(rng.next_u64());
    ASSERT_EQ(ones_complement_sum(data), reference_folded_sum(data))
        << "len=" << len;
  }
  for (int trial = 0; trial < 200; ++trial) {
    const size_t len = rng.next_below(9000);
    std::vector<uint8_t> data(len);
    for (auto& b : data) b = static_cast<uint8_t>(rng.next_u64());
    ASSERT_EQ(ones_complement_sum(data), reference_folded_sum(data))
        << "len=" << len;
  }
}

TEST(ChecksumProperty, AllOnesAndAllZeroBlocks) {
  // Degenerate sums: all-zero data folds to 0; 0xffff-multiples fold to
  // 0xffff (the two representations of zero in ones-complement).
  for (size_t len : {1u, 2u, 7u, 8u, 15u, 16u, 31u, 32u, 63u, 64u, 1460u}) {
    std::vector<uint8_t> zeros(len, 0);
    EXPECT_EQ(ones_complement_sum(zeros), reference_folded_sum(zeros));
    std::vector<uint8_t> ones(len, 0xff);
    EXPECT_EQ(ones_complement_sum(ones), reference_folded_sum(ones));
  }
}

TEST(ChecksumProperty, SplitAccumulationMatchesWholeSpan) {
  // add_bytes called on even-length prefixes then a final tail must equal
  // one whole-span call (the pattern the wire codec uses).
  Rng rng(0xacc);
  std::vector<uint8_t> data(1000);
  for (auto& b : data) b = static_cast<uint8_t>(rng.next_u64());
  for (size_t cut : {0u, 2u, 20u, 400u, 998u, 1000u}) {
    ChecksumAccumulator split;
    split.add_bytes(std::span(data).first(cut));
    split.add_bytes(std::span(data).subspan(cut));
    ChecksumAccumulator whole;
    whole.add_bytes(data);
    EXPECT_EQ(split.finish(), whole.finish()) << "cut=" << cut;
  }
}

TEST(ChecksumProperty, SerializeParseRoundTripPreservesSegment) {
  // The zero-copy payload path and the shared folded-sum checksum must not
  // change a single wire byte: serialize -> parse -> serialize is a fixed
  // point and the parsed segment matches the original.
  Rng rng(0x0d0d);
  for (int trial = 0; trial < 100; ++trial) {
    TcpSegment seg;
    seg.tuple = t();
    seg.seq = rng.next_u32();
    seg.ack = rng.next_u32();
    seg.ack_flag = true;
    seg.psh = rng.chance(0.5);
    seg.window = static_cast<uint16_t>(rng.next_u64());
    seg.options = {TimestampOption{rng.next_u32(), rng.next_u32()},
                   DssOption{rng.next_u64(),
                             DssMapping{rng.next_u64(), rng.next_u32(),
                                        512, 0x1234},
                             false, 0}};
    const size_t len = 1 + rng.next_below(1460);
    std::vector<uint8_t> payload(len);
    for (auto& b : payload) b = static_cast<uint8_t>(rng.next_u64());
    seg.payload = Payload(payload);

    const auto wire1 = serialize_segment(seg);
    auto parsed = parse_segment(wire1, seg.tuple);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->payload, seg.payload);
    EXPECT_EQ(parsed->seq, seg.seq);
    EXPECT_EQ(parsed->ack, seg.ack);
    const auto wire2 = serialize_segment(*parsed);
    EXPECT_EQ(wire1, wire2);
  }
}

TEST(CodecFuzzOnce, OptionsTruncatedMidOptionAreSkipped) {
  // kind=30 (MPTCP), length says 20 but only 6 bytes follow.
  std::vector<uint8_t> bytes = {30, 20, 0x00, 0x80, 1, 2};
  auto opts = parse_options(bytes);  // must not crash or over-read
  EXPECT_TRUE(opts.empty() || opts.size() == 1);
}

TEST(CodecFuzzOnce, ZeroLengthOptionTerminates) {
  std::vector<uint8_t> bytes = {2, 0, 99, 99};  // MSS with bogus len 0
  auto opts = parse_options(bytes);
  EXPECT_TRUE(opts.empty());
}

}  // namespace
}  // namespace mptcp
