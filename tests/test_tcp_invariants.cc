// Plain-TCP wire invariants over sniffed traffic.
#include <gtest/gtest.h>

#include <memory>

#include "app/bulk_app.h"
#include "app/harness.h"
#include "middlebox/middlebox.h"
#include "tcp/tcp_connection.h"

namespace mptcp {
namespace {

class Sniffer final : public SimpleMiddlebox {
 public:
  std::vector<TcpSegment> log;

 protected:
  void process(TcpSegment seg) override {
    log.push_back(seg);
    emit(std::move(seg));
  }
};

TEST(TcpInvariants, AckAndWindowRightEdgeMonotone) {
  TwoHostRig rig;
  rig.add_path(wifi_path());
  Sniffer down;
  rig.splice_down(0, down);
  TcpConfig cfg;
  cfg.rcv_buf_max = 512 * 1024;  // wscale 3
  cfg.snd_buf_max = 512 * 1024;
  std::unique_ptr<TcpConnection> sconn;
  std::unique_ptr<BulkReceiver> rx;
  TcpListener lis(rig.server(), 80, [&](const TcpSegment& syn) {
    sconn = std::make_unique<TcpConnection>(rig.server(), cfg, syn.tuple.dst,
                                            syn.tuple.src);
    rx = std::make_unique<BulkReceiver>(*sconn, false);
    sconn->accept_syn(syn);
  });
  TcpConnection cli(rig.client(), cfg, {rig.client_addr(0), 40000},
                    {rig.server_addr(), 80});
  BulkSender tx(cli, 0);
  cli.connect();
  rig.loop().run_until(8 * kSecond);
  ASSERT_GT(rx->bytes_received(), 4u * 1000u * 1000u);

  uint64_t last_ack = 0;
  uint64_t edge = 0;
  for (const auto& seg : down.log) {
    if (!seg.ack_flag || seg.rst) continue;
    const uint64_t ack = seq_unwrap(last_ack, seg.ack);
    EXPECT_GE(ack, last_ack) << "cumulative ACK retreated";
    last_ack = ack;
    if (seg.syn) continue;  // unscaled window on SYN/ACK
    const uint64_t e = ack + (uint64_t{seg.window} << 3);
    EXPECT_GE(e, edge) << "RFC 793: window right edge shrunk";
    if (e > edge) edge = e;
  }
}

TEST(TcpInvariants, SackBlocksAlwaysAboveCumulativeAck) {
  TwoHostRig rig;
  PathSpec lossy = wifi_path();
  lossy.up.loss_prob = 0.02;
  rig.add_path(lossy);
  Sniffer down;
  rig.splice_down(0, down);
  TcpConfig cfg;
  std::unique_ptr<TcpConnection> sconn;
  std::unique_ptr<BulkReceiver> rx;
  TcpListener lis(rig.server(), 80, [&](const TcpSegment& syn) {
    sconn = std::make_unique<TcpConnection>(rig.server(), cfg, syn.tuple.dst,
                                            syn.tuple.src);
    rx = std::make_unique<BulkReceiver>(*sconn, false);
    sconn->accept_syn(syn);
  });
  TcpConnection cli(rig.client(), cfg, {rig.client_addr(0), 40000},
                    {rig.server_addr(), 80});
  BulkSender tx(cli, 0);
  cli.connect();
  rig.loop().run_until(10 * kSecond);

  size_t sacked_segments = 0;
  for (const auto& seg : down.log) {
    const auto* sack = find_option<SackOption>(seg.options);
    if (sack == nullptr) continue;
    ++sacked_segments;
    for (const auto& b : sack->blocks) {
      // Each block sits strictly above the cumulative ACK and is
      // non-empty (32-bit wrap-aware).
      EXPECT_TRUE(seq32_lt(seg.ack, b.begin)) << "block below ack";
      EXPECT_TRUE(seq32_lt(b.begin, b.end)) << "empty/inverted block";
    }
  }
  EXPECT_GT(sacked_segments, 10u);  // loss must have produced SACKs
}

}  // namespace
}  // namespace mptcp
