// Combined-stress scenarios: multiple hostile conditions at once, across
// every receive algorithm -- the kind of compound case a deployment hits.
#include <gtest/gtest.h>

#include <memory>

#include "app/bulk_app.h"
#include "app/harness.h"
#include "core/mptcp_stack.h"
#include "middlebox/segment_splitter.h"
#include "middlebox/seq_rewriter.h"

namespace mptcp {
namespace {

class StressAlgo : public ::testing::TestWithParam<RecvAlgo> {};

TEST_P(StressAlgo, TsoPlusRewriterPlusLossPlusEveryAlgorithm) {
  // TSO resegmentation (duplicate mapping copies), ISN rewriting
  // (relative-offset mappings), 1% loss (subflow-level recovery), and the
  // chosen connection-level receive algorithm, simultaneously.
  TwoHostRig rig;
  PathSpec wifi = wifi_path();
  wifi.up.loss_prob = 0.01;
  rig.add_path(wifi);
  rig.add_path(threeg_path());

  SegmentSplitter split(536);
  SeqRewriter rewriter;
  rig.splice_up(0, split);
  rig.splice_up(0, rewriter.forward_sink());
  rig.splice_down(0, rewriter.reverse_sink());

  MptcpConfig cfg;
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 400 * 1000;
  cfg.recv_algo = GetParam();
  MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
  std::unique_ptr<BulkReceiver> rx;
  ss.listen(80, [&](MptcpConnection& c) {
    rx = std::make_unique<BulkReceiver>(c);
  });
  MptcpConnection& cc =
      cs.connect(rig.client_addr(0), {rig.server_addr(), 80});
  BulkSender tx(cc, 2 * 1000 * 1000);
  rig.loop().run_until(60 * kSecond);

  EXPECT_EQ(cc.mode(), MptcpMode::kMptcp);
  EXPECT_GT(split.splits(), 100u);
  EXPECT_EQ(rx->bytes_received(), 2u * 1000u * 1000u);
  EXPECT_TRUE(rx->pattern_ok());
  EXPECT_TRUE(rx->saw_eof());
}

INSTANTIATE_TEST_SUITE_P(Algos, StressAlgo,
                         ::testing::Values(RecvAlgo::kRegular,
                                           RecvAlgo::kTree,
                                           RecvAlgo::kShortcuts,
                                           RecvAlgo::kAllShortcuts));

TEST(CombinedStress, RepeatedPathFlapping) {
  // The 3G path flaps up and down every 3 seconds; the stream must keep
  // flowing on WiFi and the flapping subflow must never corrupt it.
  TwoHostRig rig;
  rig.add_path(wifi_path());
  rig.add_path(threeg_path());
  MptcpConfig cfg;
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 400 * 1000;
  MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
  std::unique_ptr<BulkReceiver> rx;
  ss.listen(80, [&](MptcpConnection& c) {
    rx = std::make_unique<BulkReceiver>(c);
  });
  MptcpConnection& cc =
      cs.connect(rig.client_addr(0), {rig.server_addr(), 80});
  BulkSender tx(cc, 0);
  for (int flap = 0; flap < 6; ++flap) {
    rig.loop().schedule_in((3 + 3 * flap) * kSecond,
                           [&rig, flap] { rig.set_path_up(1, flap % 2); });
  }
  rig.loop().run_until(25 * kSecond);
  EXPECT_GT(rx->bytes_received(), 12u * 1000u * 1000u);  // ~WiFi rate min
  EXPECT_TRUE(rx->pattern_ok());
}

TEST(CombinedStress, BothDirectionsUnderLossAndSmallBuffers) {
  TwoHostRig rig;
  PathSpec a = wifi_path(), b = threeg_path();
  a.up.loss_prob = a.down.loss_prob = 0.005;
  b.up.loss_prob = b.down.loss_prob = 0.005;
  rig.add_path(a);
  rig.add_path(b);
  MptcpConfig cfg;
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 120 * 1000;
  MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
  MptcpConnection* sconn = nullptr;
  std::unique_ptr<BulkReceiver> srv_rx;
  std::unique_ptr<BulkSender> srv_tx;
  ss.listen(80, [&](MptcpConnection& c) {
    sconn = &c;
    srv_rx = std::make_unique<BulkReceiver>(c);
    srv_tx = std::make_unique<BulkSender>(c, 1000 * 1000);
    srv_tx->start();
  });
  MptcpConnection& cc =
      cs.connect(rig.client_addr(0), {rig.server_addr(), 80});
  BulkReceiver cli_rx(cc);
  BulkSender cli_tx(cc, 1000 * 1000);
  rig.loop().run_until(60 * kSecond);
  EXPECT_EQ(cli_rx.bytes_received(), 1000u * 1000u);
  EXPECT_EQ(srv_rx->bytes_received(), 1000u * 1000u);
  EXPECT_TRUE(cli_rx.pattern_ok());
  EXPECT_TRUE(srv_rx->pattern_ok());
}

}  // namespace
}  // namespace mptcp
