// Congestion-control unit tests: NewReno mechanics, the penalization
// guard (Mechanism 2), inflight capping (Mechanism 4), and the Linked
// Increases coupling invariants.
#include <gtest/gtest.h>

#include "core/coupled_cc.h"
#include "tcp/cc.h"
#include "tcp/rtt.h"

namespace mptcp {
namespace {

constexpr uint32_t kMss = 1460;

TEST(NewReno, SlowStartDoublesPerRtt) {
  NewRenoCc cc;
  cc.init(kMss, 10);
  const uint64_t w0 = cc.cwnd();
  // Ack a full window: slow start adds acked bytes.
  cc.on_ack(w0, 0, 0);
  EXPECT_EQ(cc.cwnd(), 2 * w0);
}

TEST(NewReno, CongestionAvoidanceAddsOneMssPerRtt) {
  NewRenoCc cc;
  cc.init(kMss, 10);
  cc.on_timeout(10 * kMss);       // ssthresh = 5 MSS, cwnd = 1 MSS
  // Grow back to ssthresh, then ack exactly one window in CA.
  while (cc.in_slow_start()) cc.on_ack(cc.cwnd(), 0, 0);
  const uint64_t w = cc.cwnd();
  cc.on_ack(w, 0, 0);
  EXPECT_NEAR(static_cast<double>(cc.cwnd()),
              static_cast<double>(w + kMss), 2.0);
}

TEST(NewReno, EnterRecoveryHalvesToFlight) {
  NewRenoCc cc;
  cc.init(kMss, 10);
  cc.on_enter_recovery(/*flight=*/20 * kMss);
  EXPECT_EQ(cc.ssthresh(), 10u * kMss);
  EXPECT_EQ(cc.cwnd(), 10u * kMss + 3u * kMss);
  cc.on_exit_recovery();
  EXPECT_EQ(cc.cwnd(), 10u * kMss);
}

TEST(NewReno, TimeoutCollapsesToOneMss) {
  NewRenoCc cc;
  cc.init(kMss, 10);
  cc.on_timeout(20 * kMss);
  EXPECT_EQ(cc.cwnd(), kMss);
  EXPECT_EQ(cc.ssthresh(), 10u * kMss);
}

TEST(NewReno, SsthreshNeverBelowTwoMss) {
  NewRenoCc cc;
  cc.init(kMss, 10);
  cc.on_timeout(kMss);
  EXPECT_GE(cc.ssthresh(), 2u * kMss);
}

TEST(NewReno, PenalizeHalvesAndSetsSsthresh) {
  NewRenoCc cc;
  cc.init(kMss, 20);
  const uint64_t w0 = cc.cwnd();
  cc.penalize();
  EXPECT_EQ(cc.cwnd(), w0 / 2);
  EXPECT_EQ(cc.ssthresh(), cc.cwnd());
}

TEST(NewReno, PenalizeGuardPreventsRepeatedCrushing) {
  NewRenoCc cc;
  cc.init(kMss, 20);
  cc.penalize();
  const uint64_t after_first = cc.cwnd();
  cc.penalize();  // guard: cwnd == ssthresh, no further reduction
  EXPECT_EQ(cc.cwnd(), after_first);
  // After growth above ssthresh, penalization applies again.
  cc.on_ack(after_first, 0, 0);
  cc.on_ack(cc.cwnd(), 0, 0);
  const uint64_t grown = cc.cwnd();
  ASSERT_GT(grown, cc.ssthresh());
  cc.penalize();
  EXPECT_LT(cc.cwnd(), grown);
}

TEST(NewReno, InflightCapShrinksWindowUnderBloat) {
  NewRenoCc::Options opts;
  opts.cap_inflight = true;
  NewRenoCc cc(opts);
  cc.init(kMss, 100);
  const uint64_t w0 = cc.cwnd();
  // Smoothed RTT is 5x the base RTT: deep queueing; cwnd must shrink.
  cc.on_ack(kMss, /*srtt=*/500 * kMillisecond, /*min_rtt=*/100 * kMillisecond);
  EXPECT_LT(cc.cwnd(), w0);
}

TEST(NewReno, InflightCapInertWithoutBloat) {
  NewRenoCc::Options opts;
  opts.cap_inflight = true;
  NewRenoCc cc(opts);
  cc.init(kMss, 10);
  const uint64_t w0 = cc.cwnd();
  cc.on_ack(kMss, /*srtt=*/110 * kMillisecond, /*min_rtt=*/100 * kMillisecond);
  EXPECT_GE(cc.cwnd(), w0);  // normal slow-start growth
}

// --- LIA ------------------------------------------------------------------------

struct LiaPair {
  CoupledGroup group;
  std::unique_ptr<LiaCc> a;
  std::unique_ptr<LiaCc> b;
  LiaPair() {
    NewRenoCc::Options opts;
    a = std::make_unique<LiaCc>(group, opts);
    b = std::make_unique<LiaCc>(group, opts);
    a->init(kMss, 10);
    b->init(kMss, 10);
  }
  /// Pushes a subflow out of slow start.
  static void to_ca(LiaCc& cc) { cc.on_timeout(10 * kMss); }
};

TEST(Lia, NeverMoreAggressiveThanTcp) {
  LiaPair p;
  LiaPair::to_ca(*p.a);
  LiaPair::to_ca(*p.b);
  // Grow both out of the post-timeout floor.
  for (int i = 0; i < 50; ++i) {
    p.a->on_ack(kMss, 100 * kMillisecond, 90 * kMillisecond);
    p.b->on_ack(kMss, 200 * kMillisecond, 180 * kMillisecond);
  }
  // One RTT worth of acks in congestion avoidance must add at most one
  // MSS (the min() clamp in the linked increase).
  const uint64_t w = p.a->cwnd();
  const uint64_t acked = w;
  const double before = static_cast<double>(p.a->cwnd());
  p.a->on_ack(acked, 100 * kMillisecond, 90 * kMillisecond);
  EXPECT_LE(static_cast<double>(p.a->cwnd()) - before,
            static_cast<double>(kMss) * acked / w + 1.0);
}

TEST(Lia, CoupledIncreaseSlowerThanUncoupled) {
  // A coupled pair in congestion avoidance should collectively grow no
  // faster than two independent NewReno flows.
  LiaPair p;
  LiaPair::to_ca(*p.a);
  LiaPair::to_ca(*p.b);
  NewRenoCc solo;
  solo.init(kMss, 10);
  solo.on_timeout(10 * kMss);

  for (int i = 0; i < 200; ++i) {
    p.a->on_ack(kMss, 100 * kMillisecond, 90 * kMillisecond);
    p.b->on_ack(kMss, 100 * kMillisecond, 90 * kMillisecond);
    solo.on_ack(kMss, 100 * kMillisecond, 90 * kMillisecond);
  }
  EXPECT_LE(p.a->cwnd() + p.b->cwnd(), 2 * solo.cwnd());
  // But the pair must still make progress.
  EXPECT_GT(p.a->cwnd() + p.b->cwnd(), 2u * kMss);
}

TEST(Lia, AlphaFavoursLowRttSubflow) {
  // With equal cwnds, the lower-RTT subflow has the better cwnd/rtt^2 and
  // alpha reflects the best path (load moves off the congested one).
  LiaPair p;
  LiaPair::to_ca(*p.a);
  LiaPair::to_ca(*p.b);
  for (int i = 0; i < 100; ++i) {
    p.a->on_ack(kMss, 20 * kMillisecond, 20 * kMillisecond);
    p.b->on_ack(kMss, 200 * kMillisecond, 200 * kMillisecond);
  }
  // The fast subflow should have grown more per unit time is trivially
  // true; the invariant worth pinning: group alpha stays within (0, n].
  const double alpha = p.group.alpha();
  EXPECT_GT(alpha, 0.0);
  EXPECT_LE(alpha, 2.05);
}

TEST(Lia, SlowStartIsUncoupled) {
  LiaPair p;
  const uint64_t w0 = p.a->cwnd();
  p.a->on_ack(w0, 100 * kMillisecond, 90 * kMillisecond);
  EXPECT_EQ(p.a->cwnd(), 2 * w0);
}

TEST(Lia, MemberRemovalLeavesGroupConsistent) {
  CoupledGroup group;
  NewRenoCc::Options opts;
  auto a = std::make_unique<LiaCc>(group, opts);
  a->init(kMss, 10);
  {
    LiaCc b(group, opts);
    b.init(kMss, 10);
    EXPECT_GE(group.total_cwnd(), 2u * 10u * kMss);
  }
  // b destroyed: group must not reference it.
  EXPECT_EQ(group.total_cwnd(), a->cwnd());
  a->on_ack(kMss, 100 * kMillisecond, 90 * kMillisecond);
}

// --- RTT estimator ----------------------------------------------------------------

TEST(RttEstimator, FirstSampleInitializes) {
  RttEstimator rtt(1 * kSecond, 200 * kMillisecond, 60 * kSecond);
  EXPECT_EQ(rtt.rto(), 1 * kSecond);
  rtt.add_sample(100 * kMillisecond);
  EXPECT_EQ(rtt.srtt(), 100 * kMillisecond);
  EXPECT_EQ(rtt.rttvar(), 50 * kMillisecond);
  EXPECT_EQ(rtt.rto(), 300 * kMillisecond);  // srtt + 4*var
}

TEST(RttEstimator, ConvergesTowardStableRtt) {
  RttEstimator rtt(1 * kSecond, 1, 60 * kSecond);
  for (int i = 0; i < 100; ++i) rtt.add_sample(80 * kMillisecond);
  EXPECT_NEAR(static_cast<double>(rtt.srtt()), 80e6, 1e6);
  EXPECT_LT(rtt.rttvar(), 5 * kMillisecond);
}

TEST(RttEstimator, BackoffDoublesAndResets) {
  RttEstimator rtt(1 * kSecond, 200 * kMillisecond, 60 * kSecond);
  rtt.add_sample(100 * kMillisecond);
  const SimTime base = rtt.rto();
  rtt.on_timeout();
  EXPECT_EQ(rtt.rto(), 2 * base);
  rtt.on_timeout();
  EXPECT_EQ(rtt.rto(), 4 * base);
  // A fresh sample resets the backoff (variance may have shrunk, so the
  // new RTO can be at or below the original).
  rtt.add_sample(100 * kMillisecond);
  EXPECT_LE(rtt.rto(), base);
  EXPECT_GE(rtt.rto(), 200 * kMillisecond);
}

TEST(RttEstimator, MinRttTracksFloor) {
  RttEstimator rtt(1 * kSecond, 1, 60 * kSecond);
  rtt.add_sample(100 * kMillisecond);
  rtt.add_sample(40 * kMillisecond);
  rtt.add_sample(300 * kMillisecond);
  EXPECT_EQ(rtt.min_rtt(), 40 * kMillisecond);
}

TEST(RttEstimator, RtoClampedToBounds) {
  RttEstimator rtt(1 * kSecond, 200 * kMillisecond, 2 * kSecond);
  rtt.add_sample(1 * kMicrosecond);
  EXPECT_EQ(rtt.rto(), 200 * kMillisecond);
  for (int i = 0; i < 20; ++i) rtt.on_timeout();
  EXPECT_EQ(rtt.rto(), 2 * kSecond);
}

}  // namespace
}  // namespace mptcp
