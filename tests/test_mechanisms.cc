// Behavioural tests for the paper's sender-side mechanisms (section 4.2):
// each mechanism must fire under the condition it was designed for and
// produce its intended effect.
#include <gtest/gtest.h>

#include <memory>

#include "app/bulk_app.h"
#include "app/harness.h"
#include "core/mptcp_stack.h"

namespace mptcp {
namespace {

struct MechRig {
  MechRig(MptcpConfig cfg, std::vector<PathSpec> paths) {
    for (const auto& p : paths) rig.add_path(p);
    cs = std::make_unique<MptcpStack>(rig.client(), cfg);
    ss = std::make_unique<MptcpStack>(rig.server(), cfg);
    ss->listen(80, [this](MptcpConnection& c) {
      sconn = &c;
      rx = std::make_unique<BulkReceiver>(c, false);
    });
    cc = &cs->connect(rig.client_addr(0), {rig.server_addr(), 80});
    tx = std::make_unique<BulkSender>(*cc, 0);
  }
  TwoHostRig rig;
  std::unique_ptr<MptcpStack> cs, ss;
  MptcpConnection* cc = nullptr;
  MptcpConnection* sconn = nullptr;
  std::unique_ptr<BulkSender> tx;
  std::unique_ptr<BulkReceiver> rx;
};

MptcpConfig small_buf(size_t kb) {
  MptcpConfig cfg;
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = kb * 1000;
  return cfg;
}

TEST(Mechanism1, FiresUnderWindowStallsAndObeysItsSwitch) {
  // Tight buffers: stalls occur and M1 must fire.
  MechRig tight(small_buf(150), {wifi_path(), threeg_path()});
  tight.rig.loop().run_until(10 * kSecond);
  EXPECT_GT(tight.cc->meta_stats().opportunistic_retransmits, 0u);

  // With the mechanism disabled it must never fire, whatever happens.
  MptcpConfig off = small_buf(150);
  off.opportunistic_retransmit = false;
  MechRig disabled(off, {wifi_path(), threeg_path()});
  disabled.rig.loop().run_until(10 * kSecond);
  EXPECT_EQ(disabled.cc->meta_stats().opportunistic_retransmits, 0u);
}

TEST(Mechanism1, ReinjectedBytesAreDuplicatesNotCorruption) {
  MptcpConfig cfg = small_buf(150);
  cfg.penalize_slow_subflows = false;  // isolate M1
  MechRig r(cfg, {wifi_path(), threeg_path()});
  r.rig.loop().run_until(10 * kSecond);
  EXPECT_GT(r.cc->meta_stats().reinjected_bytes, 0u);
  // The duplicate copies were recognized and dropped at the receiver
  // (either at the meta queue or before it), never delivered twice.
  EXPECT_GT(r.sconn->meta_stats().rx_duplicate_bytes +
                r.sconn->recv_queue_stats().duplicate_bytes,
            0u);
}

TEST(Mechanism2, PenalizesTheBlockingSubflowOnly) {
  MptcpConfig cfg = small_buf(200);
  MechRig r(cfg, {wifi_path(), threeg_path()});
  r.rig.loop().run_until(12 * kSecond);
  EXPECT_GT(r.cc->meta_stats().penalizations, 0u);
  // The 3G subflow (slow, deep-buffered) must end up with the smaller
  // congestion window; WiFi must be allowed to run.
  ASSERT_EQ(r.cc->subflow_count(), 2u);
  EXPECT_LT(r.cc->subflow(1)->cwnd(), 80u * 1000u);
  const double wifi_mbps =
      static_cast<double>(r.cc->subflow(0)->stats().bytes_sent) * 8 / 12e6;
  EXPECT_GT(wifi_mbps, 6.0);
}

TEST(Mechanism2, RateLimitedToOncePerRtt) {
  MptcpConfig cfg = small_buf(150);
  MechRig r(cfg, {wifi_path(), threeg_path()});
  r.rig.loop().run_until(10 * kSecond);
  // 10 s of 3G RTTs (>=150 ms each) bounds penalization count.
  EXPECT_LE(r.cc->meta_stats().penalizations, 10u * 1000u / 150u + 5u);
}

TEST(Mechanism3, AutotuneGrowsMetaBuffersTowardDemand) {
  MptcpConfig cfg;
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 1000 * 1000;
  cfg.meta_autotune = true;
  cfg.tcp.autotune = true;
  MechRig r(cfg, {wifi_path(), threeg_path()});
  const size_t snd0 = r.cc->meta_snd_capacity();
  r.rig.loop().run_until(15 * kSecond);
  // Grew from the small initial allocation...
  EXPECT_GT(r.cc->meta_snd_capacity(), snd0);
  EXPECT_GT(r.sconn->meta_rcv_capacity(), 64u * 1024u);
  // ...but not to silly sizes: 2 * sum(rate) * rtt_max with 3G queueing
  // stays well under a megabyte here.
  EXPECT_LE(r.cc->meta_snd_capacity(), 1000u * 1000u);
  // And throughput beats what the initial buffers alone could carry.
  const double mbps = static_cast<double>(r.rx->bytes_received()) * 8 / 15e6;
  EXPECT_GT(mbps, 4.0);
}

TEST(Mechanism4, CapBoundsSubflowQueueingDelay) {
  MptcpConfig uncapped = small_buf(1000);
  uncapped.opportunistic_retransmit = false;
  uncapped.penalize_slow_subflows = false;  // isolate the cap
  MptcpConfig capped = uncapped;
  capped.cap_subflow_cwnd = true;

  MechRig a(uncapped, {wifi_path(), threeg_path()});
  a.rig.loop().run_until(15 * kSecond);
  MechRig b(capped, {wifi_path(), threeg_path()});
  b.rig.loop().run_until(15 * kSecond);

  // Without the cap the 3G subflow's smoothed RTT inflates far past its
  // 150 ms base; the cap must keep it within a small multiple.
  const SimTime uncapped_srtt = a.cc->subflow(1)->srtt();
  const SimTime capped_srtt = b.cc->subflow(1)->srtt();
  EXPECT_LT(capped_srtt, 450 * kMillisecond);
  EXPECT_LT(capped_srtt, uncapped_srtt);
}

TEST(MetaRtoMechanism, RecoversDataStrandedOnStalledPath) {
  // Disable M1/M2 so only the connection-level retransmission timer can
  // rescue data stranded on a path that silently dies.
  MptcpConfig cfg = small_buf(300);
  cfg.opportunistic_retransmit = false;
  cfg.penalize_slow_subflows = false;
  MechRig r(cfg, {wifi_path(), threeg_path()});
  r.rig.loop().schedule_in(2 * kSecond, [&] { r.rig.set_path_up(1, false); });
  r.rig.loop().run_until(30 * kSecond);
  EXPECT_GT(r.cc->meta_stats().meta_rtx_timeouts, 0u);
  // WiFi keeps the stream flowing after the rescue.
  const uint64_t at30 = r.rx->bytes_received();
  r.rig.loop().run_until(35 * kSecond);
  EXPECT_GT(r.rx->bytes_received(), at30 + 3u * 1000u * 1000u);
}

TEST(Bidirectional, SimultaneousBlockStreamsBothDirections) {
  MptcpConfig cfg = small_buf(300);
  TwoHostRig rig;
  rig.add_path(wifi_path());
  rig.add_path(threeg_path());
  MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
  MptcpConnection* sconn = nullptr;
  std::unique_ptr<BlockReceiver> srv_rx;
  std::unique_ptr<BlockSender> srv_tx;
  ss.listen(80, [&](MptcpConnection& c) {
    sconn = &c;
    srv_rx = std::make_unique<BlockReceiver>(rig.loop(), c);
    srv_tx = std::make_unique<BlockSender>(rig.loop(), c);
  });
  MptcpConnection& cc = cs.connect(rig.client_addr(0),
                                   {rig.server_addr(), 80});
  BlockReceiver cli_rx(rig.loop(), cc);
  BlockSender cli_tx(rig.loop(), cc);
  rig.loop().run_until(500 * kMillisecond);
  ASSERT_NE(sconn, nullptr);
  srv_tx->fill_now();
  rig.loop().run_until(15 * kSecond);
  EXPECT_GT(srv_rx->blocks_completed(), 300u);
  EXPECT_GT(cli_rx.blocks_completed(), 300u);
}

}  // namespace
}  // namespace mptcp
