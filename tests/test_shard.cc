// Sharded simulation engine: the SPSC handoff ring, the cross-shard
// channel (FIFO + spill backpressure), the deterministic merge of
// per-shard stats partitions, and the engine-level determinism contracts:
//
//   * a fixed shard count reproduces the same digest run over run;
//   * the ping-pong scenario's digest is identical across shard counts
//     (the epoch-barrier lockstep proof: a cross-shard link must behave
//     exactly like the same link inside one loop);
//   * a cell-local workload's merged simulated metrics are bit-identical
//     between a single-shard and a multi-shard execution.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "app/digest.h"
#include "app/workload.h"
#include "net/stats.h"
#include "sim/event_loop.h"
#include "sim/node.h"
#include "sim/shard.h"
#include "sim/spsc.h"
#include "sim/topology.h"

namespace mptcp {
namespace {

// ---------------------------------------------------------------------------
// SpscRing.
// ---------------------------------------------------------------------------

TEST(SpscRing, CapacityAndBackpressure) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 4; ++i) {
    int v = i;
    EXPECT_TRUE(ring.try_push(std::move(v))) << i;
  }
  EXPECT_EQ(ring.size(), 4u);
  int extra = 99;
  EXPECT_FALSE(ring.try_push(std::move(extra)));  // full: push refused
  EXPECT_EQ(extra, 99);                           // and operand untouched
  int out = -1;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(ring.try_push(std::move(extra)));  // slot freed by the pop
}

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> ring(5);  // bit_ceil(5) = 8
  for (int i = 0; i < 8; ++i) {
    int v = i;
    EXPECT_TRUE(ring.try_push(std::move(v))) << i;
  }
  int v = 8;
  EXPECT_FALSE(ring.try_push(std::move(v)));
}

TEST(SpscRing, FifoOrder) {
  SpscRing<int> ring(16);
  for (int i = 0; i < 10; ++i) {
    int v = i;
    ASSERT_TRUE(ring.try_push(std::move(v)));
  }
  for (int i = 0; i < 10; ++i) {
    int out = -1;
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, CrossThreadVisibilityAndOrder) {
  constexpr int kItems = 20000;
  SpscRing<int> ring(64);
  std::thread producer([&ring] {
    for (int i = 0; i < kItems; ++i) {
      int v = i;
      while (!ring.try_push(std::move(v))) {
        // spin: the consumer is draining concurrently
      }
    }
  });
  for (int expect = 0; expect < kItems; ++expect) {
    int out = -1;
    while (!ring.try_pop(out)) {
      // spin until the producer catches up
    }
    ASSERT_EQ(out, expect);
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// ---------------------------------------------------------------------------
// ShardChannel.
// ---------------------------------------------------------------------------

/// Records the seq of every delivered segment.
class SeqCollector : public PacketSink {
 public:
  void deliver(TcpSegment seg) override { seqs.push_back(seg.seq); }
  std::vector<uint32_t> seqs;
};

TEST(ShardChannel, DrainDeliversInOrderAtArrivalTime) {
  EventLoop loop;
  ShardChannel ch(/*src_shard=*/0, /*dst_shard=*/1, loop,
                  /*ring_capacity=*/16);
  SeqCollector sink;
  ch.set_target(&sink);

  for (uint32_t i = 0; i < 5; ++i) {
    TcpSegment seg;
    seg.seq = i;
    ch.send(/*arrival=*/kMillisecond + i, std::move(seg));
  }
  EXPECT_EQ(ch.pushed(), 5u);
  EXPECT_EQ(ch.drain(), 5u);
  EXPECT_TRUE(sink.seqs.empty());  // scheduled, not yet executed
  loop.run_until(2 * kMillisecond);
  ASSERT_EQ(sink.seqs.size(), 5u);
  for (uint32_t i = 0; i < 5; ++i) EXPECT_EQ(sink.seqs[i], i);
  EXPECT_EQ(ch.delivered(), 5u);
}

TEST(ShardChannel, OverflowSpillPreservesFifo) {
  EventLoop loop;
  ShardChannel ch(0, 1, loop, /*ring_capacity=*/4);
  SeqCollector sink;
  ch.set_target(&sink);

  // 10 sends into a 4-slot ring: 4 land in the ring, 6 spill to the
  // producer-side overflow. Drain must restore the original order.
  for (uint32_t i = 0; i < 10; ++i) {
    TcpSegment seg;
    seg.seq = i;
    ch.send(kMillisecond, std::move(seg));
  }
  EXPECT_EQ(ch.pushed(), 10u);
  EXPECT_EQ(ch.spilled(), 6u);
  EXPECT_EQ(ch.drain(), 10u);
  loop.run_until(2 * kMillisecond);
  ASSERT_EQ(sink.seqs.size(), 10u);
  for (uint32_t i = 0; i < 10; ++i) EXPECT_EQ(sink.seqs[i], i);
}

// ---------------------------------------------------------------------------
// Deterministic stats merge.
// ---------------------------------------------------------------------------

TEST(StatsMerge, ScalarsSumAndHistogramsFoldByBucket) {
  StatsRegistry a;
  StatsRegistry b;
  a.counter("pkts").inc(10);
  b.counter("pkts").inc(32);
  a.gauge("depth").set(3);
  b.gauge("depth").set(4);
  a.histogram("fct").record(8);
  a.histogram("fct").record(100);
  b.histogram("fct").record(2);
  b.histogram("fct").record(5000);
  b.counter("only_b").inc(7);

  const StatsRegistry* parts[] = {&a, &b};
  const std::map<std::string, double> m =
      StatsRegistry::merged_flatten(parts);
  EXPECT_EQ(m.at("pkts"), 42.0);
  EXPECT_EQ(m.at("depth"), 7.0);
  EXPECT_EQ(m.at("only_b"), 7.0);
  EXPECT_EQ(m.at("fct.count"), 4.0);
  EXPECT_EQ(m.at("fct.sum"), 5110.0);
  EXPECT_EQ(m.at("fct.min"), 2.0);
  EXPECT_EQ(m.at("fct.max"), 5000.0);
  EXPECT_EQ(m.at("fct.mean"), 5110.0 / 4.0);
}

TEST(StatsMerge, ResultIndependentOfPartitionFillOrder) {
  // Shard threads finish in arbitrary order; the merged export folds the
  // partitions in the caller's fixed shard order, so two merges of the
  // same contents must be byte-identical no matter which registry was
  // populated (or finished) first.
  auto fill_x = [](StatsRegistry& r) {
    r.counter("x.pkts").inc(5);
    r.histogram("x.fct").record(10);
  };
  auto fill_y = [](StatsRegistry& r) {
    r.counter("y.pkts").inc(9);
    r.histogram("x.fct").record(20);
  };
  StatsRegistry a1, b1;
  fill_x(a1);
  fill_y(b1);
  StatsRegistry b2, a2;
  fill_y(b2);  // populated before its sibling this time
  fill_x(a2);

  const StatsRegistry* first[] = {&a1, &b1};
  const StatsRegistry* second[] = {&a2, &b2};
  EXPECT_EQ(StatsRegistry::merged_to_json(first),
            StatsRegistry::merged_to_json(second));
}

TEST(StatsMerge, HistogramMergeFromHandlesEmptySides) {
  Histogram empty;
  Histogram h;
  h.record(7);
  h.merge_from(empty);  // no-op
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 7u);
  Histogram dst;
  dst.merge_from(h);  // empty destination adopts source min/max
  EXPECT_EQ(dst.count(), 1u);
  EXPECT_EQ(dst.min(), 7u);
  EXPECT_EQ(dst.max(), 7u);
}

// ---------------------------------------------------------------------------
// Engine-level determinism contracts.
// ---------------------------------------------------------------------------

DigestResult pingpong(size_t shards) {
  DigestConfig cfg;
  cfg.scenario = DigestScenario::kPingPong;
  cfg.shards = shards;
  cfg.duration = 2 * kSecond;
  cfg.seed = 7;
  return run_digest_scenario(cfg);
}

TEST(ShardedEngine, PingPongDigestIdenticalAcrossShardCounts) {
  // The lockstep proof: with shards=2 every packet crosses an SPSC
  // channel and an epoch barrier; the digest (packet headers + payload
  // bytes, in delivery order, per direction) must still equal the
  // single-loop reference exactly.
  const DigestResult one = pingpong(1);
  const DigestResult two = pingpong(2);
  EXPECT_GT(one.bytes_delivered, 0u);
  EXPECT_EQ(one.digest, two.digest);
  EXPECT_EQ(one.packets_hashed, two.packets_hashed);
  EXPECT_EQ(one.bytes_delivered, two.bytes_delivered);
}

TEST(ShardedEngine, ShardedCapacityDigestStableForFixedShardCount) {
  DigestConfig cfg;
  cfg.scenario = DigestScenario::kCapacity;
  cfg.shards = 2;
  cfg.duration = 1 * kSecond;
  cfg.seed = 3;
  const DigestResult first = run_digest_scenario(cfg);
  const DigestResult second = run_digest_scenario(cfg);
  EXPECT_GT(first.bytes_delivered, 0u);
  EXPECT_EQ(first.digest, second.digest);
  EXPECT_EQ(first.stats_json, second.stats_json);
}

/// Shard-count-invariant view of a merged export. Three kinds of key:
///   * execution-dependent (thread-local allocator pools, per-loop
///     scheduler bookkeeping under sim.* minus links/routers): dropped;
///   * per-connection live scopes (mptcp.client#N / mptcp.server#N):
///     the #N instance suffix is allocated per registry, so the same
///     connection gets different numbers under different shard splits --
///     compared as sorted value multisets with the suffix stripped,
///     which is exact and permutation-invariant;
///   * everything else (link/router counters, workload metrics, summed
///     tcp.* counters): compared exactly.
struct Canonical {
  std::map<std::string, double> exact;
  std::map<std::string, std::vector<double>> per_conn;
};

Canonical canonicalize(const std::map<std::string, double>& merged) {
  Canonical c;
  for (const auto& [raw_key, value] : merged) {
    if (raw_key.rfind("payload.pool.", 0) == 0) continue;
    if (raw_key.rfind("sim.", 0) == 0 &&
        raw_key.rfind("sim.link.", 0) != 0 &&
        raw_key.rfind("sim.router.", 0) != 0) {
      continue;
    }
    // Strip the per-shard scope tag ("@s<k>", possibly fused with a
    // "#<n>" instance counter): merged exports shard-qualify scope
    // names, but the quantities are shard-count-invariant.
    std::string key = raw_key;
    const size_t at = key.find('@');
    if (at != std::string::npos) {
      const size_t dot = key.find('.', at);
      key.erase(at, (dot == std::string::npos ? key.size() : dot) - at);
    }
    if (key.rfind("mptcp.client", 0) == 0 ||
        key.rfind("mptcp.server", 0) == 0) {
      // Per-connection scopes: also drop the "#<n>" instance counter
      // (allocated per registry, so it depends on the shard split) and
      // compare as value multisets.
      const size_t hash = key.find('#');
      if (hash != std::string::npos) {
        const size_t dot = key.find('.', hash);
        key.erase(hash, (dot == std::string::npos ? key.size() : dot) - hash);
      }
      c.per_conn[key].push_back(value);
      continue;
    }
    c.exact[key] = value;
  }
  for (auto& [key, values] : c.per_conn) {
    std::sort(values.begin(), values.end());
  }
  return c;
}

std::map<std::string, double> run_cells(size_t shards) {
  ShardedCapacitySpec spec;
  spec.cells = 2;
  spec.cell.clients = 2;
  spec.cell.servers = 1;
  spec.cell.bottleneck_rate_bps = 100e6;
  ShardedCapacity net = build_sharded_capacity(spec, /*seed=*/5, shards);

  FlowClass local;
  local.name = "bulk";
  local.persistent_per_client = 3;
  local.arrival_rate_hz = 5.0;
  local.size_dist = FlowClass::SizeDist::kExponential;
  local.mean_size = 20 * 1000;
  local.transport.mptcp.tcp.seed = 5;
  FlowClass off;
  off.arrival_rate_hz = 0;
  off.persistent_per_client = 0;

  ShardedCapacityWorkload workload(net, local, off, /*seed=*/5);
  workload.start();
  ShardedEngine engine(*net.topo);
  engine.run_until(800 * kMillisecond);
  EXPECT_GT(workload.bytes_received(), 0u);

  return StatsRegistry::merged_flatten(net.topo->shard_stats());
}

TEST(ShardedEngine, CellLocalWorkloadMetricsMatchSingleShard) {
  // Cells are pinned round-robin to shards and all traffic stays inside
  // its cell, so the simulated system is the same regardless of how the
  // cells are split across threads: every link/router counter, workload
  // metric and FCT histogram must agree bit for bit, and the live
  // per-connection scopes must agree as value multisets.
  const Canonical one = canonicalize(run_cells(1));
  const Canonical two = canonicalize(run_cells(2));
  EXPECT_FALSE(one.exact.empty());
  EXPECT_FALSE(one.per_conn.empty());
  EXPECT_EQ(one.exact, two.exact);
  EXPECT_EQ(one.per_conn, two.per_conn);
}

TEST(ShardedEngine, CrossShardTrafficMovesThroughChannels) {
  ShardedCapacitySpec spec;
  spec.cells = 2;
  spec.cell.clients = 2;
  spec.cell.servers = 1;
  spec.cell.bottleneck_rate_bps = 100e6;
  ShardedCapacity net = build_sharded_capacity(spec, /*seed=*/9,
                                               /*shards=*/2);
  ASSERT_FALSE(net.ring_links.empty());
  ASSERT_FALSE(net.topo->channels().empty());

  FlowClass local;
  local.persistent_per_client = 0;
  local.arrival_rate_hz = 0;
  FlowClass cross;
  cross.name = "cross";
  cross.persistent_per_client = 2;
  cross.arrival_rate_hz = 5.0;
  cross.size_dist = FlowClass::SizeDist::kExponential;
  cross.mean_size = 10 * 1000;
  cross.transport.mptcp.tcp.seed = 9;

  ShardedCapacityWorkload workload(net, local, cross, /*seed=*/9);
  workload.start();
  ShardedEngine engine(*net.topo);
  engine.run_until(800 * kMillisecond);

  EXPECT_GT(engine.handoff_packets(), 0u);
  EXPECT_GT(workload.bytes_received(), 0u);
  EXPECT_GT(engine.epochs(), 1u);
}

}  // namespace
}  // namespace mptcp
