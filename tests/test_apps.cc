// Workload-layer tests: HTTP closed loop, block latency app, bonding.
#include <gtest/gtest.h>

#include <memory>

#include "app/bulk_app.h"
#include "app/harness.h"
#include "app/http_app.h"
#include "bond/bonding.h"
#include "app/socket_factory.h"
#include "core/mptcp_stack.h"

namespace mptcp {
namespace {

TEST(HttpApp, ClosedLoopServesRequestsOverMptcp) {
  TwoHostRig rig;
  rig.add_path(ethernet_path(1e9));
  rig.add_path(ethernet_path(1e9));
  TransportConfig cfg;
  cfg.mptcp.meta_snd_buf_max = cfg.mptcp.meta_rcv_buf_max = 256 * 1024;
  SocketFactory cs(rig.client(), cfg), ss(rig.server(), cfg);
  HttpServer server(ss, 80);
  HttpClientPool pool(cs, rig.client_addr(0), Endpoint{rig.server_addr(), 80},
                      /*clients=*/10, /*response_size=*/20 * 1000);
  pool.start();
  rig.loop().run_until(2 * kSecond);
  EXPECT_GT(pool.completed(), 100u);
  EXPECT_EQ(pool.errors(), 0u);
  // The server may have finished responses the clients are still reading.
  EXPECT_GE(server.requests_served(), pool.completed());
  EXPECT_LE(server.requests_served(), pool.completed() + 10);
}

TEST(HttpApp, WorksOverPlainTcpFallback) {
  TwoHostRig rig;
  rig.add_path(ethernet_path(1e9));
  TransportConfig cfg;
  cfg.kind = TransportKind::kTcp;  // plain TCP on both sides
  SocketFactory cs(rig.client(), cfg), ss(rig.server(), cfg);
  HttpServer server(ss, 80);
  HttpClientPool pool(cs, rig.client_addr(0), Endpoint{rig.server_addr(), 80},
                      5, 50 * 1000);
  pool.start();
  rig.loop().run_until(2 * kSecond);
  EXPECT_GT(pool.completed(), 50u);
  EXPECT_EQ(pool.errors(), 0u);
}

TEST(HttpApp, LargeResponsesUseBothPaths) {
  TwoHostRig rig;
  rig.add_path(ethernet_path(1e9));
  rig.add_path(ethernet_path(1e9));
  TransportConfig cfg;
  cfg.mptcp.meta_snd_buf_max = cfg.mptcp.meta_rcv_buf_max = 512 * 1024;
  SocketFactory cs(rig.client(), cfg), ss(rig.server(), cfg);
  HttpServer server(ss, 80);
  HttpClientPool pool(cs, rig.client_addr(0), Endpoint{rig.server_addr(), 80},
                      20, 300 * 1000);
  pool.start();
  rig.loop().run_until(2 * kSecond);
  EXPECT_GT(pool.completed(), 100u);
  // Both paths must carry response traffic (the first subflow dominates
  // short LAN transfers; the join spills over under contention).
  EXPECT_GT(rig.down_link(0).stats().delivered_bytes, 10u * 1000 * 1000);
  EXPECT_GT(rig.down_link(1).stats().delivered_bytes, 1u * 1000 * 1000);
}

TEST(BlockApp, MeasuresApplicationDelay) {
  TwoHostRig rig;
  rig.add_path(wifi_path());
  MptcpConfig cfg;
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 200 * 1024;
  MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
  MptcpConnection* sconn = nullptr;
  std::unique_ptr<BlockReceiver> rx;
  ss.listen(80, [&](MptcpConnection& c) {
    sconn = &c;
    rx = std::make_unique<BlockReceiver>(rig.loop(), c);
  });
  auto& cc = cs.connect(rig.client_addr(0), Endpoint{rig.server_addr(), 80});
  BlockSender tx(rig.loop(), cc);
  rig.loop().run_until(10 * kSecond);
  ASSERT_GT(rx->blocks_completed(), 100u);
  // Delay must be at least the one-way propagation (10 ms) and is
  // expected to include queueing in the 200 KB send buffer.
  EXPECT_GT(rx->delays().min(), 0.010);
  EXPECT_LT(rx->delays().percentile(0.5), 1.0);
}

TEST(Bonding, RoundRobinStripesPacketsEvenly) {
  EventLoop loop;
  NullSink a, b;
  BondDevice bond;
  bond.add_leg(&a);
  bond.add_leg(&b);
  for (int i = 0; i < 100; ++i) {
    TcpSegment seg;
    seg.payload.assign(100, 0);
    bond.deliver(std::move(seg));
  }
  EXPECT_EQ(a.dropped(), 50u);
  EXPECT_EQ(b.dropped(), 50u);
}

TEST(Bonding, SingleTcpConnectionAggregatesTwoLinksDespiteReordering) {
  // One TCP connection over a 2 x 100 Mbps round-robin bond: throughput
  // should exceed one leg's rate. (DupACK-based fast retransmit tolerates
  // the mild reordering of equal legs.)
  EventLoop loop;
  Network net;
  Host client(loop, "client"), server(loop, "server");
  const IpAddr caddr(10, 0, 0, 2), saddr(10, 99, 0, 1);

  LinkConfig leg_cfg;
  leg_cfg.rate_bps = 100e6;
  leg_cfg.prop_delay = 50 * kMicrosecond;
  leg_cfg.buffer_bytes = 250 * 1000;
  Link up1(loop, leg_cfg, "up1"), up2(loop, leg_cfg, "up2");
  Link down1(loop, leg_cfg, "down1"), down2(loop, leg_cfg, "down2");
  up1.set_target(&net);
  up2.set_target(&net);
  down1.set_target(&net);
  down2.set_target(&net);

  BondDevice client_bond, server_bond;
  client_bond.add_leg(&up1);
  client_bond.add_leg(&up2);
  server_bond.add_leg(&down1);
  server_bond.add_leg(&down2);

  client.add_interface(caddr, &client_bond);
  server.add_interface(saddr, &server_bond);
  net.attach(caddr, &client);
  net.attach(saddr, &server);

  TcpConfig cfg;
  cfg.snd_buf_max = cfg.rcv_buf_max = 2 * 1024 * 1024;
  std::unique_ptr<TcpConnection> sconn;
  std::unique_ptr<BulkReceiver> rx;
  TcpListener listener(server, 80, [&](const TcpSegment& syn) {
    sconn = std::make_unique<TcpConnection>(server, cfg, syn.tuple.dst,
                                            syn.tuple.src);
    rx = std::make_unique<BulkReceiver>(*sconn);
    sconn->accept_syn(syn);
  });
  TcpConnection cli(client, cfg, Endpoint{caddr, 40000},
                    Endpoint{saddr, 80});
  BulkSender tx(cli, 0);
  cli.connect();

  loop.run_until(1 * kSecond);
  const uint64_t at1 = rx->bytes_received();
  loop.run_until(3 * kSecond);
  const double bps = static_cast<double>(rx->bytes_received() - at1) * 8 / 2;
  EXPECT_GT(bps, 120e6);  // clearly more than one 100 Mbps leg
  EXPECT_TRUE(rx->pattern_ok());
}

}  // namespace
}  // namespace mptcp
