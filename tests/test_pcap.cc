// Pcap writer: files must carry the correct headers and every forwarded
// packet, with valid wire-format TCP inside.
#include <gtest/gtest.h>

#include <cstdio>

#include "app/bulk_app.h"
#include "app/harness.h"
#include "core/mptcp_stack.h"
#include "net/wire.h"
#include "sim/pcap.h"

namespace mptcp {
namespace {

std::vector<uint8_t> slurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::vector<uint8_t> out;
  uint8_t buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  std::fclose(f);
  return out;
}

uint32_t u32le(const std::vector<uint8_t>& b, size_t off) {
  return b[off] | (b[off + 1] << 8) | (b[off + 2] << 16) |
         (uint32_t{b[off + 3]} << 24);
}

TEST(Pcap, CapturesAnMptcpTransferInValidFormat) {
  const std::string path = "/tmp/mptcplib_test.pcap";
  {
    TwoHostRig rig;
    rig.add_path(wifi_path());
    PcapWriter writer(path);
    ASSERT_TRUE(writer.ok());
    PcapTap tap(rig.loop(), writer);
    rig.splice_up(0, tap);

    MptcpConfig cfg;
    MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
    std::unique_ptr<BulkReceiver> rx;
    ss.listen(80, [&](MptcpConnection& c) {
      rx = std::make_unique<BulkReceiver>(c);
    });
    MptcpConnection& cc =
        cs.connect(rig.client_addr(0), {rig.server_addr(), 80});
    BulkSender tx(cc, 30 * 1000);
    rig.loop().run_until(3 * kSecond);
    EXPECT_EQ(rx->bytes_received(), 30u * 1000u);
    EXPECT_GT(writer.packets_written(), 20u);
  }

  const auto bytes = slurp(path);
  ASSERT_GT(bytes.size(), 24u);
  // Global header: nanosecond magic, version 2.4, LINKTYPE_RAW.
  EXPECT_EQ(u32le(bytes, 0), 0xa1b23c4du);
  EXPECT_EQ(u32le(bytes, 4), 0x00040002u);
  EXPECT_EQ(u32le(bytes, 20), 101u);

  // Walk all records: lengths must chain exactly to EOF, and every
  // record must contain a parseable IPv4+TCP packet whose TCP part our
  // own parser accepts.
  size_t off = 24;
  size_t packets = 0;
  uint64_t last_ts = 0;
  while (off < bytes.size()) {
    ASSERT_LE(off + 16, bytes.size());
    const uint64_t ts =
        uint64_t{u32le(bytes, off)} * 1000000000ull + u32le(bytes, off + 4);
    EXPECT_GE(ts, last_ts);  // timestamps are monotonic
    last_ts = ts;
    const uint32_t incl = u32le(bytes, off + 8);
    ASSERT_EQ(incl, u32le(bytes, off + 12));
    off += 16;
    ASSERT_LE(off + incl, bytes.size());
    // IPv4 header sanity.
    EXPECT_EQ(bytes[off] >> 4, 4);          // version
    EXPECT_EQ(bytes[off + 9], 6);           // TCP
    const size_t ihl = (bytes[off] & 0xf) * 4;
    FourTuple t;
    t.src.addr = IpAddr((uint32_t{bytes[off + 12]} << 24) |
                        (bytes[off + 13] << 16) | (bytes[off + 14] << 8) |
                        bytes[off + 15]);
    t.dst.addr = IpAddr((uint32_t{bytes[off + 16]} << 24) |
                        (bytes[off + 17] << 16) | (bytes[off + 18] << 8) |
                        bytes[off + 19]);
    const std::span<const uint8_t> tcp{bytes.data() + off + ihl,
                                       incl - ihl};
    EXPECT_TRUE(parse_segment(tcp, t).has_value());
    off += incl;
    ++packets;
  }
  EXPECT_GT(packets, 20u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mptcp
