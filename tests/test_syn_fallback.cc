// Section 3.1's last resort: some hosts/paths never answer a SYN carrying
// unknown options (the companion study found 15 of the Alexa top 10,000
// did not respond). After a few unanswered SYNs the client must retry
// *without* MP_CAPABLE and carry on as plain TCP.
#include <gtest/gtest.h>

#include <memory>

#include "app/bulk_app.h"
#include "app/harness.h"
#include "core/mptcp_stack.h"
#include "middlebox/middlebox.h"

namespace mptcp {
namespace {

/// Drops SYNs that carry any MPTCP option (modelling a host or box that
/// black-holes them); everything else passes.
class MptcpSynBlackhole final : public SimpleMiddlebox {
 public:
  uint64_t dropped = 0;

 protected:
  void process(TcpSegment seg) override {
    if (seg.syn) {
      for (const auto& o : seg.options) {
        if (is_mptcp_option(o)) {
          ++dropped;
          return;
        }
      }
    }
    emit(std::move(seg));
  }
};

TEST(SynFallback, RetransmittedSynOmitsMpCapableAndConnects) {
  TwoHostRig rig;
  rig.add_path(wifi_path());
  MptcpSynBlackhole hole;
  rig.splice_up(0, hole);

  MptcpConfig cfg;
  cfg.tcp.syn_option_fallback_after = 2;  // drop options from the 2nd rtx on
  MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
  MptcpConnection* sconn = nullptr;
  std::unique_ptr<BulkReceiver> rx;
  ss.listen(80, [&](MptcpConnection& c) {
    sconn = &c;
    rx = std::make_unique<BulkReceiver>(c);
  });
  MptcpConnection& cc =
      cs.connect(rig.client_addr(0), {rig.server_addr(), 80});
  BulkSender tx(cc, 100 * 1000);
  rig.loop().run_until(60 * kSecond);

  EXPECT_GE(hole.dropped, 1u);
  ASSERT_NE(sconn, nullptr) << "option-less SYN retry never connected";
  EXPECT_EQ(cc.mode(), MptcpMode::kFallbackTcp);
  EXPECT_EQ(rx->bytes_received(), 100u * 1000u);
  EXPECT_TRUE(rx->pattern_ok());
  EXPECT_TRUE(rx->saw_eof());
}

TEST(SynFallback, NoFallbackNeededWhenPathIsClean) {
  TwoHostRig rig;
  rig.add_path(wifi_path());
  MptcpConfig cfg;
  MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
  std::unique_ptr<BulkReceiver> rx;
  ss.listen(80, [&](MptcpConnection& c) {
    rx = std::make_unique<BulkReceiver>(c);
  });
  MptcpConnection& cc =
      cs.connect(rig.client_addr(0), {rig.server_addr(), 80});
  BulkSender tx(cc, 10 * 1000);
  rig.loop().run_until(2 * kSecond);
  // No SYN retransmissions, MPTCP on, no fallback.
  EXPECT_EQ(cc.subflow(0)->stats().timeouts, 0u);
  EXPECT_EQ(cc.mode(), MptcpMode::kMptcp);
}

}  // namespace
}  // namespace mptcp
