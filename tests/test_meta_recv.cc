// The connection-level out-of-order queue: all four insertion algorithms
// must produce identical streams; instrumentation must reflect their
// asymptotic behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/meta_recv.h"
#include "net/rng.h"

namespace mptcp {
namespace {

Payload fill(uint64_t dsn, size_t n) {
  std::vector<uint8_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = static_cast<uint8_t>(dsn + i);
  return Payload(out);
}

uint64_t drain(MetaReceiveQueue& q, uint64_t rcv_nxt) {
  while (auto c = q.pop_ready(rcv_nxt)) {
    EXPECT_EQ(c->dsn, rcv_nxt);
    for (size_t i = 0; i < c->bytes.size(); ++i) {
      EXPECT_EQ(c->bytes[i], static_cast<uint8_t>(rcv_nxt + i));
    }
    rcv_nxt += c->bytes.size();
  }
  return rcv_nxt;
}

const RecvAlgo kAllAlgos[] = {RecvAlgo::kRegular, RecvAlgo::kTree,
                              RecvAlgo::kShortcuts, RecvAlgo::kAllShortcuts};

class PerAlgo : public ::testing::TestWithParam<RecvAlgo> {};

TEST_P(PerAlgo, BasicInterleavedInsertAndDrain) {
  MetaReceiveQueue q(GetParam());
  // Two subflows delivering alternating batches out of order.
  q.insert(100, fill(100, 50), 1, 0);
  q.insert(0, fill(0, 50), 0, 0);
  q.insert(150, fill(150, 50), 1, 0);
  q.insert(50, fill(50, 50), 0, 0);
  EXPECT_EQ(drain(q, 0), 200u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.ooo_bytes(), 0u);
}

TEST_P(PerAlgo, DuplicateReinjectionsAreDiscarded) {
  MetaReceiveQueue q(GetParam());
  q.insert(100, fill(100, 50), 1, 0);
  q.insert(100, fill(100, 50), 0, 0);  // re-injection from another subflow
  EXPECT_EQ(q.ooo_bytes(), 50u);
  EXPECT_EQ(q.stats().duplicate_bytes, 50u);
  q.insert(0, fill(0, 100), 0, 0);
  EXPECT_EQ(drain(q, 0), 150u);
}

TEST_P(PerAlgo, BelowFloorDataIsDropped) {
  MetaReceiveQueue q(GetParam());
  q.insert(0, fill(0, 100), 0, /*floor=*/50);
  EXPECT_EQ(q.ooo_bytes(), 50u);  // only [50,100) kept
  EXPECT_EQ(drain(q, 50), 100u);
}

TEST_P(PerAlgo, SpanningChunkSplitsAroundExisting) {
  MetaReceiveQueue q(GetParam());
  q.insert(40, fill(40, 20), 0, 0);   // [40,60)
  q.insert(0, fill(0, 100), 1, 0);    // covers it
  EXPECT_EQ(drain(q, 0), 100u);
}

TEST_P(PerAlgo, PartialOverlapAtFloorPopsTrimmed) {
  MetaReceiveQueue q(GetParam());
  q.insert(10, fill(10, 30), 0, 0);
  // rcv_nxt has advanced past the chunk's head (delivered via another
  // subflow): pop must trim.
  EXPECT_EQ(drain(q, 20), 40u);
}

/// Property: all four algorithms produce byte-identical streams for the
/// same randomized multipath arrival pattern.
class AlgoEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlgoEquivalence, AllAlgorithmsProduceSameStream) {
  struct Arrival {
    uint64_t dsn;
    size_t len;
    size_t sf;
  };
  Rng rng(GetParam());
  // Build a randomized allocation across 4 subflows in batches, then a
  // skewed arrival order with duplicates.
  std::vector<Arrival> arrivals;
  uint64_t dsn = 0;
  std::vector<std::vector<Arrival>> per_sf(4);
  while (dsn < 60000) {
    const size_t sf = rng.next_below(4);
    const size_t batch = 1 + rng.next_below(8);
    for (size_t i = 0; i < batch; ++i) {
      const size_t len = 100 + rng.next_below(1400);
      per_sf[sf].push_back({dsn, len, sf});
      dsn += len;
    }
  }
  // Interleave: repeatedly pick a subflow and emit its next segment.
  std::vector<size_t> cursor(4, 0);
  while (true) {
    bool any = false;
    const size_t sf = rng.next_below(4);
    for (size_t probe = 0; probe < 4; ++probe) {
      const size_t s = (sf + probe) % 4;
      if (cursor[s] < per_sf[s].size()) {
        arrivals.push_back(per_sf[s][cursor[s]++]);
        if (rng.chance(0.1)) arrivals.push_back(arrivals.back());  // dup
        any = true;
        break;
      }
    }
    if (!any) break;
  }

  std::vector<uint64_t> final_rcv;
  for (RecvAlgo algo : kAllAlgos) {
    MetaReceiveQueue q(algo);
    uint64_t rcv_nxt = 0;
    for (const auto& a : arrivals) {
      if (a.dsn == rcv_nxt) {
        // fast path bypass, as the connection does
        rcv_nxt += a.len;
      } else {
        q.insert(a.dsn, fill(a.dsn, a.len), a.sf, rcv_nxt);
      }
      rcv_nxt = drain(q, rcv_nxt);
    }
    rcv_nxt = drain(q, rcv_nxt);
    EXPECT_TRUE(q.empty());
    final_rcv.push_back(rcv_nxt);
  }
  for (uint64_t v : final_rcv) EXPECT_EQ(v, final_rcv[0]);
  EXPECT_EQ(final_rcv[0], dsn);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgoEquivalence,
                         ::testing::Range<uint64_t>(1, 16));

/// Property: under arbitrary overlapping arrivals, every algorithm keeps
/// exactly the union of the inserted ranges above rcv_nxt (trimmed chunks
/// are pairwise disjoint) and advances rcv_nxt through the contiguous
/// prefix -- checked step by step against an interval-set reference model.
class OverlapSweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OverlapSweep, MatchesIntervalUnionReferenceModel) {
  struct Arrival {
    uint64_t dsn;
    size_t len;
    size_t sf;
  };
  Rng rng(GetParam());
  std::vector<Arrival> arrivals;
  for (int i = 0; i < 300; ++i) {
    arrivals.push_back({rng.next_below(30000), 1 + rng.next_below(2000),
                        rng.next_below(4)});
  }

  for (RecvAlgo algo : kAllAlgos) {
    MetaReceiveQueue q(algo);
    std::map<uint64_t, uint64_t> model;  // merged received intervals
    auto add_interval = [&model](uint64_t lo, uint64_t hi) {
      auto it = model.upper_bound(lo);
      if (it != model.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= lo) {
          lo = prev->first;
          hi = std::max(hi, prev->second);
          model.erase(prev);
        }
      }
      while (it != model.end() && it->first <= hi) {
        hi = std::max(hi, it->second);
        it = model.erase(it);
      }
      model[lo] = hi;
    };
    uint64_t rcv_nxt = 0;
    for (const Arrival& a : arrivals) {
      q.insert(a.dsn, fill(a.dsn, a.len), a.sf, rcv_nxt);
      const uint64_t lo = std::max(a.dsn, rcv_nxt);
      const uint64_t hi = a.dsn + a.len;
      if (lo < hi) add_interval(lo, hi);
      const uint64_t before = rcv_nxt;
      rcv_nxt = drain(q, rcv_nxt);
      // Model rcv_nxt: the end of the merged interval covering the old one.
      uint64_t want_nxt = before;
      if (auto it = model.upper_bound(before); it != model.begin()) {
        auto prev = std::prev(it);
        if (prev->first <= before && prev->second > before) {
          want_nxt = prev->second;
        }
      }
      ASSERT_EQ(rcv_nxt, want_nxt) << "algo " << static_cast<int>(algo);
      uint64_t stored = 0;
      for (const auto& [ilo, ihi] : model) {
        if (ihi > rcv_nxt) stored += ihi - std::max(ilo, rcv_nxt);
      }
      ASSERT_EQ(q.ooo_bytes(), stored) << "algo " << static_cast<int>(algo);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlapSweep,
                         ::testing::Range<uint64_t>(1, 13));

INSTANTIATE_TEST_SUITE_P(Algos, PerAlgo, ::testing::ValuesIn(kAllAlgos));

TEST(MetaRecvStats, ShortcutsHitOnContiguousBatches) {
  MetaReceiveQueue q(RecvAlgo::kShortcuts);
  // A far-ahead batch from subflow 1 arriving segment by segment: first
  // insert misses, the rest hit the per-subflow shortcut.
  for (int i = 0; i < 8; ++i) {
    q.insert(10000 + i * 100, fill(10000 + i * 100, 100), 1, 0);
  }
  EXPECT_EQ(q.stats().shortcut_hits, 7u);
  EXPECT_EQ(q.stats().shortcut_misses, 1u);
}

TEST(MetaRecvStats, TreeDoesLogarithmicWork) {
  // Inserting N far-apart chunks in reverse order: linear scan pays O(N)
  // per insert from the tail (it scans all the way); the tree pays O(log).
  constexpr int kN = 256;
  MetaReceiveQueue lin(RecvAlgo::kRegular);
  MetaReceiveQueue tree(RecvAlgo::kTree);
  for (int i = kN; i >= 1; --i) {
    lin.insert(static_cast<uint64_t>(i) * 1000, fill(0, 10), 0, 0);
    tree.insert(static_cast<uint64_t>(i) * 1000, fill(0, 10), 0, 0);
  }
  EXPECT_GT(lin.stats().comparisons, tree.stats().comparisons * 4);
}

TEST(MetaRecvStats, AllShortcutsScansBatchesNotSegments) {
  // Three established batches of 32 segments each, then an insert between
  // batches: AllShortcuts iterates ~3 batch heads, Regular scans segments.
  auto build = [](RecvAlgo algo) {
    MetaReceiveQueue q(algo);
    for (uint64_t b = 0; b < 3; ++b) {
      for (uint64_t i = 0; i < 32; ++i) {
        const uint64_t dsn = 1000000 + b * 100000 + i * 100;
        q.insert(dsn, fill(dsn, 100), b, 0);
      }
    }
    return q;
  };
  MetaReceiveQueue reg = build(RecvAlgo::kRegular);
  MetaReceiveQueue all = build(RecvAlgo::kAllShortcuts);
  const uint64_t reg_before = reg.stats().comparisons;
  const uint64_t all_before = all.stats().comparisons;
  // Insert at the very head region (worst case for tail-first scan),
  // from a fresh subflow so the shortcut misses.
  reg.insert(500, fill(500, 50), 9, 0);
  all.insert(500, fill(500, 50), 9, 0);
  const uint64_t reg_cost = reg.stats().comparisons - reg_before;
  const uint64_t all_cost = all.stats().comparisons - all_before;
  EXPECT_GT(reg_cost, 90u);   // scanned ~96 segments
  EXPECT_LT(all_cost, 10u);   // iterated ~3 batch heads
}

}  // namespace
}  // namespace mptcp
