// Multi-host topology engine and workload engine: routing correctness,
// router accounting, per-address path pinning, and the registry-hygiene
// contract under heavy connection churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>

#include "app/bulk_app.h"
#include "app/workload.h"

namespace mptcp {
namespace {

LinkConfig fast_link() {
  LinkConfig cfg;
  cfg.rate_bps = 100e6;
  cfg.prop_delay = 1 * kMillisecond;
  cfg.buffer_bytes = 64 * 1024;
  return cfg;
}

TransportConfig small_transport(TransportKind kind) {
  TransportConfig tc;
  tc.kind = kind;
  tc.mptcp.meta_snd_buf_max = tc.mptcp.meta_rcv_buf_max = 64 * 1024;
  tc.mptcp.tcp.snd_buf_max = tc.mptcp.tcp.rcv_buf_max = 32 * 1024;
  return tc;
}

/// Data crosses a two-router chain in both directions: every hop must have
/// a route to both endpoint addresses.
TEST(Topology, MultiHopChainDeliversBothWays) {
  Topology topo(7);
  const NodeId a = topo.add_host("a");
  const NodeId r1 = topo.add_router("r1");
  const NodeId r2 = topo.add_router("r2");
  const NodeId b = topo.add_host("b");
  topo.connect(a, r1, fast_link(), fast_link());
  topo.connect(r1, r2, fast_link(), fast_link());
  topo.connect(r2, b, fast_link(), fast_link());
  topo.build_routes();

  SocketFactory cf(topo.host(a), small_transport(TransportKind::kTcp));
  SocketFactory sf(topo.host(b), small_transport(TransportKind::kTcp));
  std::unique_ptr<BulkReceiver> rx;
  sf.listen(80, [&](StreamSocket& s) {
    rx = std::make_unique<BulkReceiver>(s, /*verify=*/true);
  });
  StreamSocket& c = cf.connect(topo.addr(a), {topo.addr(b), 80});
  BulkSender tx(c, 200 * 1000);

  topo.loop().run_until(2 * kSecond);
  ASSERT_NE(rx, nullptr);
  EXPECT_EQ(rx->bytes_received(), 200u * 1000u);
  EXPECT_TRUE(rx->pattern_ok());
  EXPECT_TRUE(rx->saw_eof());
  // Both routers carried both directions (data + ACKs).
  EXPECT_GT(topo.router(r1).forwarded(), 100u);
  EXPECT_GT(topo.router(r2).forwarded(), 100u);
  EXPECT_EQ(topo.router(r1).dropped_no_route(), 0u);
  EXPECT_EQ(topo.router(r2).dropped_no_route(), 0u);
}

/// Hosts gain one address per access link, in connect() order, and every
/// address in the topology is distinct.
TEST(Topology, AddressAssignmentIsPerLinkAndUnique) {
  Topology topo;
  const NodeId h = topo.add_host("h");
  const NodeId r = topo.add_router("r");
  const NodeId g = topo.add_host("g");
  topo.connect(h, r, fast_link(), fast_link());
  topo.connect(h, r, fast_link(), fast_link());  // second interface
  topo.connect(r, g, fast_link(), fast_link());

  ASSERT_EQ(topo.addrs(h).size(), 2u);
  ASSERT_EQ(topo.addrs(g).size(), 1u);
  EXPECT_TRUE(topo.addrs(r).empty()) << "routers are not addressed";
  std::set<uint32_t> all;
  for (NodeId n : {h, g}) {
    for (IpAddr a : topo.addrs(n)) all.insert(a.value);
  }
  EXPECT_EQ(all.size(), 3u) << "addresses must be globally distinct";
}

/// A router with no matching route and no default drops and counts.
TEST(Topology, RouterCountsUnroutablePackets) {
  EventLoop loop;
  Router r(loop, "lonely");
  TcpSegment seg;
  seg.tuple.src = {IpAddr(10, 0, 0, 1), 1000};
  seg.tuple.dst = {IpAddr(10, 9, 9, 9), 80};
  r.deliver(seg);
  EXPECT_EQ(r.forwarded(), 0u);
  EXPECT_EQ(r.dropped_no_route(), 1u);
  EXPECT_EQ(loop.stats().value("sim.router.lonely.dropped_no_route"), 1.0);

  NullSink sink;
  r.set_default_route(&sink);
  r.deliver(seg);
  EXPECT_EQ(r.forwarded(), 1u);
  EXPECT_EQ(sink.dropped(), 1u);
}

/// Dual-homed client in the capacity topology: MPTCP's full mesh must put
/// traffic on BOTH aggregation routers -- per-address routing keeps the
/// second subflow pinned to the second access link end to end.
TEST(Topology, CapacitySubflowsUseBothBottlenecks) {
  CapacitySpec spec;
  spec.clients = 1;
  spec.servers = 1;
  spec.bottleneck_rate_bps = 100e6;
  CapacityTopology cap = build_capacity_topology(spec, /*seed=*/3);
  Topology& topo = *cap.topo;

  SocketFactory cf(topo.host(cap.clients[0]),
                   small_transport(TransportKind::kMptcp));
  SocketFactory sf(topo.host(cap.servers[0]),
                   small_transport(TransportKind::kMptcp));
  std::unique_ptr<BulkReceiver> rx;
  sf.listen(80, [&](StreamSocket& s) {
    rx = std::make_unique<BulkReceiver>(s, /*verify=*/true);
  });
  StreamSocket& c = cf.connect(topo.addr(cap.clients[0], 0),
                               {topo.addr(cap.servers[0]), 80});
  BulkSender tx(c, 2 * 1000 * 1000);
  topo.loop().run_until(3 * kSecond);

  ASSERT_NE(rx, nullptr);
  EXPECT_EQ(rx->bytes_received(), 2u * 1000u * 1000u);
  EXPECT_TRUE(rx->pattern_ok());
  MptcpConnection* m = cf.as_mptcp(c);
  ASSERT_NE(m, nullptr);
  EXPECT_GE(m->subflow_count(), 2u);
  EXPECT_GT(topo.router(cap.agg_a).forwarded(), 100u);
  EXPECT_GT(topo.router(cap.agg_b).forwarded(), 100u);
}

/// Taking a link down severs the path; bringing it back restores it.
TEST(Topology, LinkDownStopsDelivery) {
  Topology topo;
  const NodeId a = topo.add_host("a");
  const NodeId r = topo.add_router("r");
  const NodeId b = topo.add_host("b");
  const size_t l0 = topo.connect(a, r, fast_link(), fast_link());
  topo.connect(r, b, fast_link(), fast_link());
  topo.build_routes();

  SocketFactory cf(topo.host(a), small_transport(TransportKind::kTcp));
  SocketFactory sf(topo.host(b), small_transport(TransportKind::kTcp));
  std::unique_ptr<BulkReceiver> rx;
  sf.listen(80, [&](StreamSocket& s) {
    rx = std::make_unique<BulkReceiver>(s, /*verify=*/false);
  });
  StreamSocket& c = cf.connect(topo.addr(a), {topo.addr(b), 80});
  BulkSender tx(c, 0);  // unlimited

  topo.loop().run_until(1 * kSecond);
  ASSERT_NE(rx, nullptr);
  const uint64_t before = rx->bytes_received();
  EXPECT_GT(before, 0u);

  topo.set_link_up(l0, false);
  topo.loop().run_until(2 * kSecond);
  const uint64_t during = rx->bytes_received();
  topo.loop().run_until(3 * kSecond);
  EXPECT_EQ(rx->bytes_received(), during) << "no delivery while down";

  topo.set_link_up(l0, true);
  topo.loop().run_until(6 * kSecond);
  EXPECT_GT(rx->bytes_received(), during) << "recovered after link up";
}

/// Middleboxes spliced into a topology link nest: each new splice inserts
/// directly after the link, so the most recent one sees packets first.
class OrderTap final : public Middlebox {
 public:
  OrderTap(int id, std::vector<int>& order) : id_(id), order_(order) {}
  void deliver(TcpSegment seg) override {
    order_.push_back(id_);
    emit(std::move(seg));
  }

 private:
  int id_;
  std::vector<int>& order_;
};

TEST(Topology, SplicedMiddleboxesChainInCallOrder) {
  Topology topo;
  const NodeId a = topo.add_host("a");
  const NodeId b = topo.add_host("b");
  const size_t l = topo.connect(a, b, fast_link(), fast_link());
  topo.build_routes();

  std::vector<int> order;
  OrderTap first(1, order), second(2, order);
  topo.splice_ab(l, first);
  topo.splice_ab(l, second);

  SocketFactory cf(topo.host(a), small_transport(TransportKind::kTcp));
  SocketFactory sf(topo.host(b), small_transport(TransportKind::kTcp));
  sf.listen(80, [&](StreamSocket&) {});
  StreamSocket& c = cf.connect(topo.addr(a), {topo.addr(b), 80});
  topo.loop().run_until(500 * kMillisecond);
  EXPECT_TRUE(c.established());

  ASSERT_GE(order.size(), 4u);
  ASSERT_EQ(order.size() % 2, 0u);
  for (size_t i = 0; i < order.size(); i += 2) {
    EXPECT_EQ(order[i], 2) << "most recently spliced tap sees packets first";
    EXPECT_EQ(order[i + 1], 1);
  }
}

/// The workload engine drives real flows over a capacity topology and
/// exports completion-time percentiles through the registry.
TEST(Workload, EngineCompletesFlowsAndExportsPercentiles) {
  CapacitySpec spec;
  spec.clients = 2;
  spec.servers = 1;
  spec.bottleneck_rate_bps = 200e6;
  CapacityTopology cap = build_capacity_topology(spec, /*seed=*/5);
  Topology& topo = *cap.topo;

  WorkloadConfig wc;
  wc.clients = cap.clients;
  wc.servers = cap.servers;
  wc.seed = 5;
  FlowClass churn;
  churn.name = "test-churn";
  churn.arrival_rate_hz = 50.0;
  churn.mean_size = 20 * 1000;  // kFixed
  churn.persistent_per_client = 3;
  churn.transport = small_transport(TransportKind::kMptcp);
  wc.classes.push_back(churn);

  WorkloadEngine engine(topo, wc);
  engine.start();
  topo.loop().run_until(3 * kSecond);

  EXPECT_GE(engine.peak_concurrent(), 6u) << "persistent flows all open";
  EXPECT_GT(engine.completed(0), 20u);
  EXPECT_EQ(engine.errors(0), 0u);
  EXPECT_GT(engine.bytes_received(0), 0u);
  EXPECT_GT(topo.stats().value("workload.test-churn.fct_p50_us"), 0.0);
  EXPECT_GE(topo.stats().value("workload.test-churn.fct_p99_us"),
            topo.stats().value("workload.test-churn.fct_p50_us"));
}

std::set<std::string> registry_keys(StatsRegistry& reg) {
  std::set<std::string> keys;
  for (const auto& [name, value] : reg.flatten()) keys.insert(name);
  return keys;
}

/// The registry-hygiene contract at scale: after a churn of 1000+
/// short-lived connections fully drains, the registry's key set is
/// exactly what it was before the churn -- every per-connection and
/// per-subflow scope was removed, including for connections that died
/// abortively (server RST on a port nobody listens on).
TEST(Workload, RegistryReturnsToBaselineAfterThousandConnectionChurn) {
  CapacitySpec spec;
  spec.clients = 2;
  spec.servers = 1;
  spec.bottleneck_rate_bps = 400e6;
  CapacityTopology cap = build_capacity_topology(spec, /*seed=*/11);
  Topology& topo = *cap.topo;

  TransportConfig tc = small_transport(TransportKind::kMptcp);
  tc.mptcp.tcp.seed = 11;

  // Prime every lazily-created loop-global aggregate (tcp.*, mptcp.*)
  // with one throwaway connection + one abortive attempt, then drain.
  {
    SocketFactory cf(topo.host(cap.clients[0]), tc);
    SocketFactory sf(topo.host(cap.servers[0]), tc);
    HttpServer server(sf, 80);
    StreamSocket& s = cf.connect(topo.addr(cap.clients[0]),
                                 {topo.addr(cap.servers[0]), 80});
    cf.release_when_closed(s);
    s.on_connected = [&s] { s.write(make_http_request(1000)); };
    s.on_readable = [&s] {
      uint8_t buf[4096];
      while (s.read(buf) > 0) {
      }
      if (s.at_eof()) s.close();
    };
    // Abortive teardown: RST while the first subflow is still in
    // SYN_SENT. The server side sees SYN then RST and must also unwind
    // its half-created connection scopes.
    StreamSocket& dead = cf.connect(topo.addr(cap.clients[0], 1),
                                    {topo.addr(cap.servers[0]), 80});
    cf.release_when_closed(dead);
    topo.loop().schedule_in(10 * kMicrosecond,
                            [&cf, &dead] { cf.as_mptcp(dead)->abort(); });
    topo.loop().run_until(topo.loop().now() + 2 * kSecond);
    EXPECT_EQ(cf.live_sockets(), 0u) << "both sockets reaped";
  }
  topo.loop().run_until(topo.loop().now() + kSecond);

  const std::set<std::string> baseline = registry_keys(topo.stats());
  ASSERT_FALSE(baseline.empty());

  // Churn >= 1000 short flows through the workload engine.
  uint64_t churned = 0;
  {
    WorkloadConfig wc;
    wc.clients = cap.clients;
    wc.servers = cap.servers;
    wc.seed = 11;
    FlowClass churn;
    churn.name = "churn1k";
    churn.arrival_rate_hz = 400.0;  // x2 clients = 800 flows/s
    churn.mean_size = 4000;         // kFixed, fast turnaround
    churn.transport = tc;
    wc.classes.push_back(churn);

    WorkloadEngine engine(topo, wc);
    engine.start();
    while (engine.total_completed() < 1000) {
      const SimTime horizon = topo.loop().now() + kSecond;
      topo.loop().run_until(horizon);
      ASSERT_LT(topo.loop().now() / kSecond, 60) << "churn stalled";
    }
    churned = engine.total_completed();
    engine.stop();
    // Let in-flight flows finish and deferred destructions run.
    topo.loop().run_until(topo.loop().now() + 5 * kSecond);
    EXPECT_EQ(engine.concurrent(), 0u);
  }
  topo.loop().run_until(topo.loop().now() + kSecond);

  EXPECT_GE(churned, 1000u);
  const std::set<std::string> after = registry_keys(topo.stats());
  std::set<std::string> leaked, lost;
  std::set_difference(after.begin(), after.end(), baseline.begin(),
                      baseline.end(), std::inserter(leaked, leaked.end()));
  std::set_difference(baseline.begin(), baseline.end(), after.begin(),
                      after.end(), std::inserter(lost, lost.end()));
  EXPECT_TRUE(leaked.empty()) << "leaked keys, e.g. " << *leaked.begin();
  EXPECT_TRUE(lost.empty()) << "lost keys, e.g. " << *lost.begin();

  // Per-subflow scheduler state obeys the same hygiene contract at the
  // subflow level: a redundant-policy connection keeps one stream cursor
  // per subflow (core/scheduler.h state_entries()), and subflow churn on
  // a long-lived connection must return the cursor count to its
  // pre-churn baseline -- subflow ids are never reused, so a missed
  // erase would grow that map for the life of the connection.
  {
    TransportConfig rc = tc;
    rc.with_scheduler(SchedulerPolicy::kRedundant);
    SocketFactory cf(topo.host(cap.clients[0]), rc);
    SocketFactory sf(topo.host(cap.servers[0]), rc);
    HttpServer server(sf, 81);
    StreamSocket& s = cf.connect(topo.addr(cap.clients[0]),
                                 {topo.addr(cap.servers[0]), 81});
    // An effectively endless response keeps the scheduler running for
    // the whole phase.
    s.on_connected = [&s] { s.write(make_http_request(1'000'000'000)); };
    s.on_readable = [&s] {
      uint8_t buf[4096];
      while (s.read(buf) > 0) {
      }
    };
    topo.loop().run_until(topo.loop().now() + 2 * kSecond);
    MptcpConnection* conn = cf.as_mptcp(s);
    ASSERT_NE(conn, nullptr);
    ASSERT_EQ(conn->mode(), MptcpMode::kMptcp);
    ASSERT_EQ(conn->subflow_count(), 2u);  // dual-homed full mesh
    const size_t cursors_before = conn->scheduler().state_entries();
    EXPECT_EQ(cursors_before, 2u) << "one cursor per usable subflow";

    // Subflow churn: a third subflow joins, carries duplicates, dies.
    MptcpSubflow* extra = conn->open_subflow(
        topo.addr(cap.clients[0], 1), {topo.addr(cap.servers[0]), 81});
    ASSERT_NE(extra, nullptr);
    topo.loop().run_until(topo.loop().now() + 2 * kSecond);
    EXPECT_EQ(conn->scheduler().state_entries(), cursors_before + 1);
    extra->abort();
    topo.loop().run_until(topo.loop().now() + kSecond);
    EXPECT_EQ(conn->scheduler().state_entries(), cursors_before)
        << "per-subflow scheduler state leaked across subflow teardown";
  }
}

}  // namespace
}  // namespace mptcp
