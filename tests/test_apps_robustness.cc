// Workload robustness: the HTTP closed loop under packet loss and path
// failure, plus harness utility coverage.
#include <gtest/gtest.h>

#include <memory>

#include "app/bulk_app.h"
#include "app/harness.h"
#include "app/http_app.h"
#include "app/socket_factory.h"

namespace mptcp {
namespace {

TEST(HttpRobustness, ClosedLoopSurvivesRandomLoss) {
  TwoHostRig rig;
  PathSpec p = ethernet_path(100e6, 2 * kMillisecond, 10 * kMillisecond);
  p.up.loss_prob = 0.01;
  p.down.loss_prob = 0.01;
  rig.add_path(p);
  TransportConfig cfg;
  cfg.mptcp.meta_snd_buf_max = cfg.mptcp.meta_rcv_buf_max = 128 * 1024;
  SocketFactory cs(rig.client(), cfg), ss(rig.server(), cfg);
  HttpServer server(ss, 80);
  HttpClientPool pool(cs, rig.client_addr(0), {rig.server_addr(), 80},
                      /*clients=*/8, /*size=*/40 * 1000);
  pool.start();
  rig.loop().run_until(10 * kSecond);
  // Requests complete despite loss; every completed response was intact
  // (the pool verifies exact byte counts).
  EXPECT_GT(pool.completed(), 200u);
  EXPECT_EQ(pool.errors(), 0u);
}

TEST(HttpRobustness, ServerSurvivesClientPathFailureMidResponse) {
  TwoHostRig rig;
  rig.add_path(wifi_path());
  rig.add_path(threeg_path());
  TransportConfig cfg;
  cfg.mptcp.meta_snd_buf_max = cfg.mptcp.meta_rcv_buf_max = 256 * 1024;
  SocketFactory cs(rig.client(), cfg), ss(rig.server(), cfg);
  HttpServer server(ss, 80);
  HttpClientPool pool(cs, rig.client_addr(0), {rig.server_addr(), 80},
                      /*clients=*/3, /*size=*/400 * 1000);
  pool.start();
  // Kill WiFi mid-stream; responses continue over 3G.
  rig.loop().schedule_in(700 * kMillisecond,
                         [&] { rig.set_path_up(0, false); });
  rig.loop().run_until(60 * kSecond);
  EXPECT_GT(pool.completed(), 10u);
  EXPECT_EQ(pool.errors(), 0u);
}

TEST(HttpRobustness, ManySmallRequestsChurnConnectionsCleanly) {
  // Thousands of connections through the stack: auto-destroy must reap
  // them (live_connections stays bounded by the client count).
  TwoHostRig rig;
  rig.add_path(ethernet_path(1e9));
  TransportConfig cfg;
  cfg.mptcp.meta_snd_buf_max = cfg.mptcp.meta_rcv_buf_max = 64 * 1024;
  cfg.mptcp.tcp.time_wait = 5 * kMillisecond;
  SocketFactory cs(rig.client(), cfg), ss(rig.server(), cfg);
  HttpServer server(ss, 80);
  HttpClientPool pool(cs, rig.client_addr(0), {rig.server_addr(), 80},
                      /*clients=*/20, /*size=*/2000);
  pool.start();
  rig.loop().run_until(2 * kSecond);
  EXPECT_GT(pool.completed(), 2000u);
  // Live connections = the in-flight requests plus the TIME_WAIT tail,
  // which is churn-rate * TIME_WAIT duration. Anything well beyond that
  // bound would be a leak.
  const double churn_per_sec = static_cast<double>(pool.completed()) / 2.0;
  const size_t tw_tail =
      static_cast<size_t>(churn_per_sec * to_seconds(cfg.mptcp.tcp.time_wait));
  EXPECT_LE(cs.live_sockets(), 3 * (20 + tw_tail));
  EXPECT_LE(ss.live_sockets(), 3 * (20 + tw_tail));
}

TEST(HarnessUtil, PatternBytesAreDeterministicAndOffsetExact) {
  const auto a = pattern_bytes(1000, 64);
  const auto b = pattern_bytes(1032, 32);
  ASSERT_EQ(a.size(), 64u);
  for (size_t i = 0; i < 32; ++i) EXPECT_EQ(a[32 + i], b[i]);
  EXPECT_EQ(a[0], pattern_byte(1000));
}

TEST(HarnessUtil, PathFactoriesMatchPaperParameters) {
  const PathSpec wifi = wifi_path();
  EXPECT_DOUBLE_EQ(wifi.up.rate_bps, 8e6);
  EXPECT_EQ(wifi.up.prop_delay + wifi.down.prop_delay,
            20 * kMillisecond);  // 20 ms RTT
  EXPECT_EQ(wifi.up.buffer_bytes, 80000u);  // 80 ms at 8 Mbps

  const PathSpec tg = threeg_path();
  EXPECT_DOUBLE_EQ(tg.up.rate_bps, 2e6);
  EXPECT_EQ(tg.up.prop_delay + tg.down.prop_delay, 150 * kMillisecond);
  EXPECT_EQ(tg.up.buffer_bytes, 500000u);  // 2 s at 2 Mbps
}

TEST(HarnessUtil, RigAssignsDistinctClientAddressesPerPath) {
  TwoHostRig rig;
  rig.add_path(wifi_path());
  rig.add_path(threeg_path());
  rig.add_path(ethernet_path(1e9));
  EXPECT_NE(rig.client_addr(0), rig.client_addr(1));
  EXPECT_NE(rig.client_addr(1), rig.client_addr(2));
  EXPECT_TRUE(rig.client().owns_address(rig.client_addr(2)));
  EXPECT_TRUE(rig.server().owns_address(rig.server_addr()));
}

TEST(SegmentBrief, MentionsKeyFields) {
  TcpSegment seg;
  seg.tuple = {{IpAddr(10, 0, 0, 2), 1111}, {IpAddr(10, 99, 0, 1), 80}};
  seg.syn = true;
  seg.seq = 42;
  seg.options.push_back(MpCapableOption{0, true, 7ULL, std::nullopt});
  const std::string s = seg.brief();
  EXPECT_NE(s.find("SYN"), std::string::npos);
  EXPECT_NE(s.find("MP_CAPABLE"), std::string::npos);
  EXPECT_NE(s.find("10.0.0.2"), std::string::npos);

  TcpSegment data;
  data.tuple = seg.tuple;
  data.ack_flag = true;
  data.options.push_back(
      DssOption{99, DssMapping{1000, 1, 100, std::nullopt}, true, 0});
  const std::string d = data.brief();
  EXPECT_NE(d.find("DSS"), std::string::npos);
  EXPECT_NE(d.find("DFIN"), std::string::npos);
}

}  // namespace
}  // namespace mptcp
