// Scheduler subsystem tests (core/scheduler.h).
//
// Two halves:
//  * The equivalence suite: fixed-seed determinism digests for every
//    pre-existing policy, in both digest scenarios, pinned to the values
//    the monolithic (pre-extraction) scheduler produced. These constants
//    are the refactoring safety net -- a send-path change that claims to
//    be behavior-preserving must reproduce every one of them bit for bit.
//    (The constants hold across gcc/clang and Debug/Release: the build
//    uses no -march/-ffast-math, so IEEE double arithmetic is identical.)
//  * Behavior tests for the backup-aware policy, the one policy the old
//    monolith could not express: MP_PRIO priorities still rank the paths,
//    but data spills to a backup whenever every primary is blocked.
#include <gtest/gtest.h>

#include <memory>

#include "app/bulk_app.h"
#include "app/digest.h"
#include "app/harness.h"
#include "app/workload.h"
#include "core/mptcp_stack.h"
#include "core/scheduler.h"

// The pinned digest constants hold only for uninstrumented builds: under
// ASan the payload block pool is compiled out (net/payload.cc), its
// payload.pool.* counters change, and the digest folds the full stats
// export. The sanitize CI job gets its coverage from the behavior tests
// below; run-twice digest equality is a separate CI job on Release.
#if defined(__SANITIZE_ADDRESS__)
#define MPTCP_DIGEST_CONSTANTS_HOLD 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MPTCP_DIGEST_CONSTANTS_HOLD 0
#endif
#endif
#ifndef MPTCP_DIGEST_CONSTANTS_HOLD
#define MPTCP_DIGEST_CONSTANTS_HOLD 1
#endif

namespace mptcp {
namespace {

// --- equivalence suite ------------------------------------------------------

void expect_digest(DigestScenario scenario, SchedulerPolicy policy,
                   uint64_t digest, uint64_t packets) {
#if !MPTCP_DIGEST_CONSTANTS_HOLD
  GTEST_SKIP() << "digest constants are defined for uninstrumented builds";
#endif
  DigestConfig cfg;  // seed 1, 5 s -- the recorded baseline configuration
  cfg.scenario = scenario;
  cfg.scheduler = policy;
  const DigestResult r = run_digest_scenario(cfg);
  EXPECT_EQ(digest_hex(r.digest), digest_hex(digest))
      << "packet stream diverged from the pre-refactor scheduler under "
      << to_string(policy);
  EXPECT_EQ(r.packets_hashed, packets);
  EXPECT_GT(r.bytes_delivered, 0u);
}

TEST(SchedulerEquivalence, TwoHostLowestRtt) {
  expect_digest(DigestScenario::kTwoHost, SchedulerPolicy::kLowestRtt,
                0xff62aafcdb096721ULL, 4917);
}

TEST(SchedulerEquivalence, TwoHostRoundRobin) {
  // Identical to the lowest-RTT digest: on this seed the weak 3G subflow
  // never has window space at pick time, so both policies make the same
  // choices. The capacity scenario below does tell them apart.
  expect_digest(DigestScenario::kTwoHost, SchedulerPolicy::kRoundRobin,
                0xff62aafcdb096721ULL, 4917);
}

TEST(SchedulerEquivalence, TwoHostRedundant) {
  expect_digest(DigestScenario::kTwoHost, SchedulerPolicy::kRedundant,
                0xbce2aaaffb747ec1ULL, 4975);
}

TEST(SchedulerEquivalence, CapacityLowestRtt) {
  expect_digest(DigestScenario::kCapacity, SchedulerPolicy::kLowestRtt,
                0x750a7b8fc64e1ddcULL, 250516);
}

TEST(SchedulerEquivalence, CapacityRoundRobin) {
  expect_digest(DigestScenario::kCapacity, SchedulerPolicy::kRoundRobin,
                0x7395210a02d8ea4fULL, 250409);
}

TEST(SchedulerEquivalence, CapacityRedundant) {
  expect_digest(DigestScenario::kCapacity, SchedulerPolicy::kRedundant,
                0x930dc3c110a26cbfULL, 254137);
}

// --- policy objects ---------------------------------------------------------

TEST(SchedulerFactory, MakesEveryPolicy) {
  for (SchedulerPolicy p :
       {SchedulerPolicy::kLowestRtt, SchedulerPolicy::kRoundRobin,
        SchedulerPolicy::kRedundant, SchedulerPolicy::kBackupAware}) {
    auto s = Scheduler::make(p);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->policy(), p);
    EXPECT_EQ(s->picks(), 0u);
    EXPECT_EQ(s->allocs(), 0u);
    EXPECT_EQ(s->state_entries(), 0u);
    EXPECT_NE(to_string(p), "?");
  }
}

// --- backup-aware policy ----------------------------------------------------

struct BackupRig {
  explicit BackupRig(SchedulerPolicy policy) {
    rig.add_path(wifi_path());
    rig.add_path(threeg_path());
    MptcpConfig cfg;
    cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 300 * 1000;
    cfg.scheduler = policy;
    cs = std::make_unique<MptcpStack>(rig.client(), cfg);
    ss = std::make_unique<MptcpStack>(rig.server(), cfg);
    ss->listen(80, [this](MptcpConnection& c) {
      rx = std::make_unique<BulkReceiver>(c);
    });
    cc = &cs->connect(rig.client_addr(0), {rig.server_addr(), 80});
    tx = std::make_unique<BulkSender>(*cc, 0);
  }

  /// Demotes every subflow except subflow 0 (the WiFi path) to backup.
  void demote_secondary() {
    for (size_t i = 1; i < cc->subflow_count(); ++i) {
      cc->set_subflow_backup(i, true);
    }
  }

  TwoHostRig rig;
  std::unique_ptr<MptcpStack> cs, ss;
  MptcpConnection* cc = nullptr;
  std::unique_ptr<BulkSender> tx;
  std::unique_ptr<BulkReceiver> rx;
};

TEST(BackupAware, NeverPicksBackupWhileAPrimaryHasSpace) {
  // The connection itself runs lowest-RTT, which parks the demoted 3G
  // subflow -- so at every sampled instant the backup's window is open
  // while the cwnd-limited WiFi primary's is typically full. Probing a
  // standalone backup-aware policy against that live state exercises
  // both sides of its decision.
  BackupRig r(SchedulerPolicy::kLowestRtt);
  r.rig.loop().run_until(1 * kSecond);
  ASSERT_EQ(r.cc->subflow_count(), 2u);
  r.demote_secondary();

  // Sample the policy's selection at many instants of live send state:
  // whenever it picks a backup subflow, every usable primary must be out
  // of congestion window -- the invariant separating "spill on block"
  // from "ignore priorities".
  auto policy = Scheduler::make(SchedulerPolicy::kBackupAware);
  SchedulerHost& host = r.cc->scheduler_host();
  int backup_picks = 0;
  for (int step = 0; step < 400; ++step) {
    r.rig.loop().run_until(r.rig.loop().now() + 10 * kMillisecond);
    MptcpSubflow* sf = policy->pick(host, 1);
    if (sf == nullptr || !sf->backup()) continue;
    ++backup_picks;
    for (size_t i = 0; i < r.cc->subflow_count(); ++i) {
      MptcpSubflow* other = r.cc->subflow(i);
      if (!other->mptcp_usable() || other->backup()) continue;
      EXPECT_EQ(other->cwnd_space(), 0u)
          << "picked a backup while primary " << i << " had window space";
    }
  }
  // The WiFi primary is cwnd-limited on this path shape, so spills do
  // happen; a test that never exercised the branch would prove nothing.
  EXPECT_GT(backup_picks, 0);
}

TEST(BackupAware, SpillsToBackupWhereLowestRttIdlesIt) {
  // Same scenario under both policies: 3G demoted to backup early on.
  // lowest-RTT parks the backup entirely (only pre-demotion and control
  // bytes); backup-aware keeps it carrying data whenever WiFi's window
  // is full, so it must move strictly more data and deliver more bytes.
  uint64_t backup_bytes[2] = {0, 0};
  uint64_t delivered[2] = {0, 0};
  const SchedulerPolicy policies[2] = {SchedulerPolicy::kLowestRtt,
                                       SchedulerPolicy::kBackupAware};
  for (int i = 0; i < 2; ++i) {
    BackupRig r(policies[i]);
    r.rig.loop().run_until(500 * kMillisecond);
    ASSERT_EQ(r.cc->subflow_count(), 2u);
    r.demote_secondary();
    const uint64_t at_demote = r.cc->subflow(1)->stats().bytes_sent;
    r.rig.loop().run_until(10 * kSecond);
    backup_bytes[i] = r.cc->subflow(1)->stats().bytes_sent - at_demote;
    delivered[i] = r.rx->bytes_received();
    EXPECT_TRUE(r.rx->pattern_ok());
  }
  EXPECT_LT(backup_bytes[0], 60u * 1000u);   // lowest-RTT: backup idle
  EXPECT_GT(backup_bytes[1], 500u * 1000u);  // backup-aware: real spill
  EXPECT_GT(delivered[1], delivered[0]);
}

TEST(BackupAware, SelectableThroughTransportConfigAndWorkloadEngine) {
  // End-to-end: a workload class selects the policy purely through
  // TransportConfig; the gated per-policy stats scope proves the policy
  // object actually drove the send path of the engine's connections.
  CapacitySpec spec;
  spec.clients = 2;
  spec.servers = 1;
  spec.bottleneck_rate_bps = 200e6;
  CapacityTopology cap = build_capacity_topology(spec, /*seed=*/7);
  Topology& topo = *cap.topo;

  WorkloadConfig wc;
  wc.clients = cap.clients;
  wc.servers = cap.servers;
  wc.seed = 7;
  FlowClass cls;
  cls.name = "backup-aware";
  cls.arrival_rate_hz = 0;
  cls.persistent_per_client = 2;
  cls.transport.with_scheduler(SchedulerPolicy::kBackupAware);
  cls.transport.mptcp.sched_stats = true;
  cls.transport.mptcp.tcp.seed = 7;
  wc.classes.push_back(cls);

  WorkloadEngine engine(topo, wc);
  engine.start();
  topo.loop().run_until(3 * kSecond);

  EXPECT_GT(engine.bytes_received(0), 0u);
  double policy_picks = 0;
  bool scope_seen = false;
  for (const auto& [name, value] : topo.stats().flatten()) {
    if (name.find(".sched.backup-aware.picks") != std::string::npos) {
      scope_seen = true;
      policy_picks += value;
    }
    EXPECT_EQ(name.find(".sched.lowest-rtt."), std::string::npos)
        << "a connection ran the default policy instead: " << name;
  }
  EXPECT_TRUE(scope_seen) << "no per-policy scheduler scope registered";
  EXPECT_GT(policy_picks, 0.0);
}

TEST(CongestionControl, FactorySelectsUncoupledNewReno) {
  // cc_algo is plumbed end to end: an uncoupled connection still moves
  // data, and the fluent selector writes the right field.
  TransportConfig tc;
  tc.with_cc(CcAlgo::kNewReno).with_scheduler(SchedulerPolicy::kLowestRtt);
  EXPECT_EQ(tc.mptcp.cc_algo, CcAlgo::kNewReno);
  EXPECT_EQ(to_string(tc.mptcp.cc_algo), "new-reno");
  EXPECT_EQ(to_string(CcAlgo::kLia), "lia");

  TwoHostRig rig;
  rig.add_path(wifi_path());
  rig.add_path(threeg_path());
  MptcpStack cs(rig.client(), tc.mptcp), ss(rig.server(), tc.mptcp);
  std::unique_ptr<BulkReceiver> rx;
  ss.listen(80, [&](MptcpConnection& c) {
    rx = std::make_unique<BulkReceiver>(c);
  });
  MptcpConnection& cc =
      cs.connect(rig.client_addr(0), {rig.server_addr(), 80});
  BulkSender tx(cc, 0);
  rig.loop().run_until(3 * kSecond);
  EXPECT_GT(rx->bytes_received(), 500u * 1000u);
  EXPECT_TRUE(rx->pattern_ok());
}

}  // namespace
}  // namespace mptcp
