// TCP state-machine and negotiation edge cases.
#include <gtest/gtest.h>

#include <memory>

#include "app/bulk_app.h"
#include "app/harness.h"
#include "tcp/tcp_connection.h"

namespace mptcp {
namespace {

struct Pair {
  explicit Pair(TcpConfig ccfg = {}, TcpConfig scfg = {},
                PathSpec path = wifi_path()) {
    idx = rig.add_path(path);
    listener = std::make_unique<TcpListener>(
        rig.server(), 80, [this, scfg](const TcpSegment& syn) {
          server = std::make_unique<TcpConnection>(rig.server(), scfg,
                                                   syn.tuple.dst,
                                                   syn.tuple.src);
          server->accept_syn(syn);
        });
    client = std::make_unique<TcpConnection>(
        rig.client(), ccfg, Endpoint{rig.client_addr(idx), 40000},
        Endpoint{rig.server_addr(), 80});
  }
  TwoHostRig rig;
  size_t idx;
  std::unique_ptr<TcpListener> listener;
  std::unique_ptr<TcpConnection> client;
  std::unique_ptr<TcpConnection> server;
};

std::vector<uint8_t> bytes(size_t n, uint8_t v = 7) {
  return std::vector<uint8_t>(n, v);
}

TEST(TcpStates, HalfCloseAllowsReverseData) {
  Pair p;
  p.client->connect();
  p.rig.loop().run_until(200 * kMillisecond);
  ASSERT_TRUE(p.client->established());

  // Client closes its direction immediately.
  p.client->close();
  p.rig.loop().run_until(400 * kMillisecond);
  EXPECT_EQ(p.server->state(), TcpState::kCloseWait);
  EXPECT_EQ(p.client->state(), TcpState::kFinWait2);

  // Server can still send data on its half of the connection.
  p.server->write(bytes(5000));
  p.rig.loop().run_until(1 * kSecond);
  EXPECT_EQ(p.client->readable_bytes(), 5000u);

  p.server->close();
  p.rig.loop().run_until(3 * kSecond);
  EXPECT_EQ(p.server->state(), TcpState::kClosed);
  EXPECT_EQ(p.client->state(), TcpState::kClosed);  // via TIME_WAIT
}

TEST(TcpStates, SimultaneousCloseReachesClosed) {
  Pair p;
  p.client->connect();
  p.rig.loop().run_until(200 * kMillisecond);
  // Both sides close at the same instant: FINs cross in flight.
  p.client->close();
  p.server->close();
  p.rig.loop().run_until(5 * kSecond);
  EXPECT_EQ(p.client->state(), TcpState::kClosed);
  EXPECT_EQ(p.server->state(), TcpState::kClosed);
}

TEST(TcpStates, MssNegotiatesToMinimum) {
  TcpConfig small;
  small.mss = 536;
  Pair p(TcpConfig{}, small);
  p.client->connect();
  p.rig.loop().run_until(200 * kMillisecond);
  EXPECT_EQ(p.client->config().mss, 536u);
  EXPECT_EQ(p.server->config().mss, 536u);
}

TEST(TcpStates, WindowScaleDisabledWhenEitherSideRefuses) {
  TcpConfig no_ws;
  no_ws.window_scale = false;
  no_ws.rcv_buf_max = 1 << 20;
  TcpConfig big;
  big.rcv_buf_max = 1 << 20;
  big.snd_buf_max = 1 << 20;
  Pair p(no_ws, big);
  std::unique_ptr<BulkReceiver> rx;
  p.client->connect();
  p.rig.loop().run_until(200 * kMillisecond);
  ASSERT_TRUE(p.client->established());
  // Without scaling the server can never grant more than 64 KB.
  BulkSender tx(*p.client, 0);
  tx.start();
  p.rig.loop().run_until(2 * kSecond);
  EXPECT_LE(p.client->peer_window(), 65535u);
}

TEST(TcpStates, DuplicateFinInTimeWaitIsReAcked) {
  TcpConfig long_tw;
  long_tw.time_wait = 10 * kSecond;  // keep TIME_WAIT alive for the probe
  Pair p(long_tw, long_tw);
  p.client->connect();
  p.rig.loop().run_until(200 * kMillisecond);
  p.client->close();
  p.rig.loop().run_until(300 * kMillisecond);
  p.server->close();
  p.rig.loop().run_until(400 * kMillisecond);
  // Client should now be in TIME_WAIT (it closed first).
  EXPECT_EQ(p.client->state(), TcpState::kTimeWait);
  const uint64_t acks_before = p.client->stats().segments_sent;
  // Replay the server's FIN (as if its last ACK were lost).
  TcpSegment fin;
  fin.tuple = {p.server->local(), p.server->remote()};
  fin.seq = seq_wrap(p.server->snd_nxt() - 1);
  fin.ack = seq_wrap(p.server->rcv_nxt());
  fin.ack_flag = true;
  fin.fin = true;
  p.client->on_segment(fin);
  EXPECT_GT(p.client->stats().segments_sent, acks_before);
}

TEST(TcpStates, SynToClosedPortIsIgnoredNotCrash) {
  TwoHostRig rig;
  rig.add_path(wifi_path());
  TcpConfig cfg;
  cfg.max_syn_retries = 2;
  TcpConnection client(rig.client(), cfg, {rig.client_addr(0), 40000},
                       {rig.server_addr(), 9999});  // nobody listens
  bool closed = false;
  client.on_closed = [&] { closed = true; };
  client.connect();
  rig.loop().run_until(30 * kSecond);
  EXPECT_TRUE(closed);  // gave up after SYN retries
  EXPECT_GT(rig.server().demux_misses(), 0u);
}

TEST(TcpStates, PersistProbesSurviveLostWindowUpdate) {
  // Receiver never reads until late; loss on the ACK path may eat the
  // window update, and the persist probe must recover it.
  TwoHostRig rig;
  PathSpec path = wifi_path();
  path.down.loss_prob = 0.15;  // lossy ACK path
  rig.add_path(path);
  TcpConfig cfg;
  cfg.rcv_buf_max = 10 * 1000;
  cfg.snd_buf_max = 100 * 1000;
  std::unique_ptr<TcpConnection> server;
  TcpListener lis(rig.server(), 80, [&](const TcpSegment& syn) {
    server = std::make_unique<TcpConnection>(rig.server(), cfg, syn.tuple.dst,
                                             syn.tuple.src);
    server->accept_syn(syn);
  });
  TcpConnection client(rig.client(), cfg, {rig.client_addr(0), 40000},
                       {rig.server_addr(), 80});
  BulkSender tx(client, 50 * 1000);
  client.connect();
  rig.loop().run_until(3 * kSecond);
  // Window closed; nothing read yet.
  ASSERT_GE(server->readable_bytes(), 8u * 1000u);
  // Now the app drains periodically; despite ACK loss, the transfer must
  // finish (persist probes re-elicit window updates).
  uint8_t buf[4096];
  uint64_t total = 0;
  PeriodicSampler reader(rig.loop(), 20 * kMillisecond, [&](SimTime) {
    for (;;) {
      const size_t n = server->read(buf);
      total += n;
      if (n == 0) break;
    }
  });
  rig.loop().run_until(60 * kSecond);
  EXPECT_EQ(total, 50u * 1000u);
}

TEST(TcpStates, ReceiveAutotuneGrowsBufferUnderLoad) {
  TcpConfig cfg;
  cfg.autotune = true;
  cfg.buf_initial = 8 * 1024;
  cfg.rcv_buf_max = 512 * 1024;
  cfg.snd_buf_max = 512 * 1024;
  Pair p(cfg, cfg, threeg_path());  // high BDP path needs a big window
  std::unique_ptr<BulkReceiver> rx;
  p.client->connect();
  BulkSender tx(*p.client, 0);
  p.rig.loop().run_until(200 * kMillisecond);
  rx = std::make_unique<BulkReceiver>(*p.server, false);
  p.rig.loop().run_until(20 * kSecond);
  EXPECT_GT(p.server->rcv_buf_capacity(), 8u * 1024u);
  // And throughput is not stuck at the initial window's ceiling
  // (8 KB / 150 ms would be ~0.4 Mbps).
  const double mbps = static_cast<double>(rx->bytes_received()) * 8 / 20e6;
  EXPECT_GT(mbps, 1.0);
}

TEST(TcpStates, AbortDuringHandshakeLeavesNoState) {
  Pair p;
  p.client->connect();
  // Abort before the SYN/ACK can arrive.
  p.client->abort();
  p.rig.loop().run_until(5 * kSecond);
  EXPECT_EQ(p.client->state(), TcpState::kClosed);
  // The server side (if created) must not linger established: it gets a
  // RST when it retransmits its SYN/ACK into a closed port... or times
  // out its handshake. Either way it must not be ESTABLISHED.
  if (p.server) {
    EXPECT_NE(p.server->state(), TcpState::kEstablished);
  }
}

}  // namespace
}  // namespace mptcp
