// Data-sequence mapping bookkeeping and DSS checksum behaviour
// (sections 3.3.4-3.3.6).
#include <gtest/gtest.h>

#include "core/dss.h"
#include "net/rng.h"

namespace mptcp {
namespace {

std::vector<uint8_t> fill(uint64_t seed, size_t n) {
  std::vector<uint8_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = static_cast<uint8_t>(seed + i * 3);
  return out;
}

MappingRecord make_rec(uint64_t ssn, uint64_t dsn, uint32_t len,
                       const std::vector<uint8_t>* payload = nullptr) {
  MappingRecord rec;
  rec.ssn_begin = ssn;
  rec.ssn_rel = static_cast<uint32_t>(ssn & 0xffffffff);
  rec.dsn = dsn;
  rec.length = len;
  if (payload != nullptr) {
    rec.checksum = dss_checksum(dsn, rec.ssn_rel,
                                static_cast<uint16_t>(len), *payload);
  }
  return rec;
}

// --- checksum ----------------------------------------------------------------

TEST(DssChecksum, DetectsSingleBitFlip) {
  auto payload = fill(1, 1000);
  const uint16_t c = dss_checksum(500, 7, 1000, payload);
  payload[400] ^= 0x01;
  EXPECT_NE(dss_checksum(500, 7, 1000, payload), c);
}

TEST(DssChecksum, CoversPseudoHeaderFields) {
  const auto payload = fill(1, 100);
  const uint16_t base = dss_checksum(500, 7, 100, payload);
  EXPECT_NE(dss_checksum(501, 7, 100, payload), base);
  EXPECT_NE(dss_checksum(500, 8, 100, payload), base);
  EXPECT_NE(dss_checksum(500, 7, 99, {payload.data(), 99}), base);
}

TEST(DssChecksum, PartialFormMatchesDirectForm) {
  const auto payload = fill(9, 777);
  EXPECT_EQ(dss_checksum(123, 456, 777, payload),
            dss_checksum_from_partial(123, 456, 777,
                                      ones_complement_sum(payload)));
}

// --- SenderMappings ------------------------------------------------------------

TEST(SenderMappings, FindLocatesCoveringMapping) {
  SenderMappings m;
  m.add(make_rec(1000, 50000, 500));
  m.add(make_rec(1500, 90000, 300));
  ASSERT_NE(m.find(1000), nullptr);
  EXPECT_EQ(m.find(1000)->dsn, 50000u);
  ASSERT_NE(m.find(1499), nullptr);
  EXPECT_EQ(m.find(1499)->dsn_for(1499), 50499u);
  ASSERT_NE(m.find(1500), nullptr);
  EXPECT_EQ(m.find(1500)->dsn, 90000u);
  EXPECT_EQ(m.find(999), nullptr);
  EXPECT_EQ(m.find(1800), nullptr);
}

TEST(SenderMappings, ReleaseBelowDropsFullyAckedOnly) {
  SenderMappings m;
  m.add(make_rec(1000, 1, 500));
  m.add(make_rec(1500, 501, 500));
  m.release_below(1500);
  EXPECT_EQ(m.find(1000), nullptr);
  EXPECT_NE(m.find(1600), nullptr);
  // Partially acked mapping must be retained (retransmission needs it).
  m.release_below(1700);
  EXPECT_NE(m.find(1600), nullptr);
}

// --- ReceiverMappings ------------------------------------------------------------

TEST(ReceiverMappings, InOrderFeedDeliversMappedData) {
  ReceiverMappings m;
  const auto payload = fill(0, 1000);
  m.add(make_rec(5000, 777000, 1000, &payload));
  auto out = m.feed(5000, Payload(payload), /*verify=*/true);
  ASSERT_EQ(out.deliver.size(), 1u);
  EXPECT_EQ(out.deliver[0].first, 777000u);
  EXPECT_EQ(out.deliver[0].second, Payload(payload));
  EXPECT_TRUE(out.checksum_failures.empty());
}

TEST(ReceiverMappings, SegmentedFeedHeldUntilMappingCompletes) {
  ReceiverMappings m;
  const auto payload = fill(0, 3000);
  m.add(make_rec(1000, 50, 3000, &payload));
  auto out1 = m.feed(1000, Payload({payload.data(), 1460}), true);
  EXPECT_TRUE(out1.deliver.empty());
  EXPECT_EQ(m.held_bytes(), 1460u);
  auto out2 = m.feed(2460, Payload({payload.data() + 1460, 1540}), true);
  ASSERT_EQ(out2.deliver.size(), 1u);
  EXPECT_EQ(out2.deliver[0].second.size(), 3000u);
  EXPECT_EQ(m.held_bytes(), 0u);
}

TEST(ReceiverMappings, CorruptedMappingReportedNotDelivered) {
  ReceiverMappings m;
  auto payload = fill(0, 500);
  m.add(make_rec(1000, 9000, 500, &payload));
  payload[100] ^= 0xff;  // middlebox modification
  auto out = m.feed(1000, Payload(payload), true);
  EXPECT_TRUE(out.deliver.empty());
  ASSERT_EQ(out.checksum_failures.size(), 1u);
  EXPECT_EQ(out.checksum_failures[0].first.dsn, 9000u);
  // The modified bytes ride along for fallback delivery.
  EXPECT_EQ(out.checksum_failures[0].second.size(), 500u);
}

TEST(ReceiverMappings, UnmappedBytesAreDroppedAndCounted) {
  ReceiverMappings m;
  const auto mapped = fill(0, 500);
  m.add(make_rec(2000, 70000, 500, &mapped));
  // 300 unmapped bytes (a coalescer ate their DSS), then mapped data.
  std::vector<uint8_t> wire = fill(7, 300);
  wire.insert(wire.end(), mapped.begin(), mapped.end());
  auto out = m.feed(1700, Payload(wire), true);
  ASSERT_EQ(out.deliver.size(), 1u);
  EXPECT_EQ(out.deliver[0].first, 70000u);
  EXPECT_EQ(m.unmapped_bytes(), 300u);
}

TEST(ReceiverMappings, ChecksumsDisabledDeliversImmediately) {
  ReceiverMappings m;
  const auto payload = fill(0, 2920);
  m.add(make_rec(1000, 10, 2920));  // no checksum
  auto out = m.feed(1000, Payload({payload.data(), 1460}), false);
  ASSERT_EQ(out.deliver.size(), 1u);
  EXPECT_EQ(out.deliver[0].first, 10u);
  EXPECT_EQ(out.deliver[0].second.size(), 1460u);
}

TEST(ReceiverMappings, DuplicateMappingIsIdempotent) {
  ReceiverMappings m;
  EXPECT_TRUE(m.add(make_rec(1000, 5, 100)));
  EXPECT_TRUE(m.add(make_rec(1000, 5, 100)));  // TSO copy
  EXPECT_FALSE(m.add(make_rec(1000, 99, 100)));  // conflicting
  EXPECT_EQ(m.size(), 1u);
}

TEST(ReceiverMappings, FeedSpanningTwoMappings) {
  ReceiverMappings m;
  const auto p1 = fill(1, 400);
  const auto p2 = fill(2, 600);
  m.add(make_rec(1000, 100, 400, &p1));
  m.add(make_rec(1400, 500, 600, &p2));
  std::vector<uint8_t> wire = p1;
  wire.insert(wire.end(), p2.begin(), p2.end());
  auto out = m.feed(1000, Payload(wire), true);
  ASSERT_EQ(out.deliver.size(), 2u);
  EXPECT_EQ(out.deliver[0].first, 100u);
  EXPECT_EQ(out.deliver[1].first, 500u);
}

TEST(ReceiverMappings, ReleaseBelowReclaimsHeldBytes) {
  ReceiverMappings m;
  const auto payload = fill(0, 1000);
  m.add(make_rec(1000, 50, 1000, &payload));
  m.feed(1000, Payload({payload.data(), 500}), true);  // half fed, half held
  EXPECT_EQ(m.held_bytes(), 500u);
  m.release_below(2000);
  EXPECT_EQ(m.held_bytes(), 0u);
  EXPECT_EQ(m.size(), 0u);
}

}  // namespace
}  // namespace mptcp
