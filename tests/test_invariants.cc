// Wire-level protocol invariants, asserted over sniffed traffic.
#include <gtest/gtest.h>

#include <memory>

#include "app/bulk_app.h"
#include "app/harness.h"
#include "core/mptcp_stack.h"
#include "middlebox/middlebox.h"
#include "middlebox/payload_modifier.h"

namespace mptcp {
namespace {

class Sniffer final : public SimpleMiddlebox {
 public:
  std::vector<TcpSegment> log;

 protected:
  void process(TcpSegment seg) override {
    log.push_back(seg);
    emit(std::move(seg));
  }
};

struct SniffedRig {
  SniffedRig() {
    rig.add_path(wifi_path());
    rig.add_path(threeg_path());
    rig.splice_down(0, down0);
    rig.splice_down(1, down1);
    rig.splice_up(0, up0);
    MptcpConfig cfg;
    cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 512 * 1024;
    cs = std::make_unique<MptcpStack>(rig.client(), cfg);
    ss = std::make_unique<MptcpStack>(rig.server(), cfg);
    ss->listen(80, [this](MptcpConnection& c) {
      sconn = &c;
      rx = std::make_unique<BulkReceiver>(c, false);
    });
    cc = &cs->connect(rig.client_addr(0), {rig.server_addr(), 80});
    tx = std::make_unique<BulkSender>(*cc, 0);
  }
  TwoHostRig rig;
  Sniffer down0, down1, up0;
  std::unique_ptr<MptcpStack> cs, ss;
  MptcpConnection* cc = nullptr;
  MptcpConnection* sconn = nullptr;
  std::unique_ptr<BulkSender> tx;
  std::unique_ptr<BulkReceiver> rx;
};

/// Scans a path's segments: per-segment (data_ack, scaled window).
void check_meta_right_edge_monotone(const std::vector<TcpSegment>& log,
                                    unsigned wscale) {
  uint64_t edge = 0;
  uint64_t last_data_ack = 0;
  for (const auto& seg : log) {
    const auto* dss = find_option<DssOption>(seg.options);
    if (dss == nullptr || !dss->data_ack) continue;
    // DATA_ACK is cumulative: never retreats on one path.
    EXPECT_GE(*dss->data_ack, last_data_ack);
    last_data_ack = *dss->data_ack;
    // Section 3.3.1: the receive window is interpreted against the data
    // sequence space; its right edge (DATA_ACK + window) must never be
    // rescinded.
    const uint64_t e = *dss->data_ack + (uint64_t{seg.window} << wscale);
    EXPECT_GE(e + 1460, edge) << "window right edge retreated";
    if (e > edge) edge = e;
  }
}

TEST(Invariants, MetaWindowRightEdgeNeverRetreats) {
  SniffedRig r;
  r.rig.loop().run_until(8 * kSecond);
  ASSERT_GT(r.rx->bytes_received(), 1000u * 1000u);
  // rcv_buf_max 512 KB -> wscale 3 (65535 << 3 > 512000).
  check_meta_right_edge_monotone(r.down0.log, 3);
  check_meta_right_edge_monotone(r.down1.log, 3);
}

TEST(Invariants, DataAcksConsistentAcrossSubflows) {
  SniffedRig r;
  r.rig.loop().run_until(8 * kSecond);
  // The max DATA_ACK seen on either path equals delivered bytes plus the
  // initial data sequence offset.
  uint64_t max_ack = 0;
  for (const auto* log : {&r.down0.log, &r.down1.log}) {
    for (const auto& seg : *log) {
      const auto* dss = find_option<DssOption>(seg.options);
      if (dss != nullptr && dss->data_ack) {
        max_ack = std::max(max_ack, *dss->data_ack);
      }
    }
  }
  // ACKs still in flight upstream of the sniffer may lag delivery by a
  // window's worth; the max sniffed DATA_ACK can never exceed delivery.
  EXPECT_LE(max_ack, r.cc->idsn_local() + 1 + r.rx->bytes_received());
  EXPECT_GE(max_ack + 128 * 1024,
            r.cc->idsn_local() + 1 + r.rx->bytes_received());
}

TEST(Invariants, MappingsCoverPayloadExactlyOnEachSegment) {
  SniffedRig r;
  r.rig.loop().run_until(3 * kSecond);
  size_t data_segments = 0;
  for (const auto& seg : r.up0.log) {
    if (seg.payload.empty() || seg.syn) continue;
    ++data_segments;
    const auto* dss = find_option<DssOption>(seg.options);
    ASSERT_NE(dss, nullptr);
    ASSERT_TRUE(dss->mapping.has_value());
    // The segment's payload must lie inside its mapping: [ssn, ssn+len).
    // (TSO splitting may make the mapping wider than one segment, never
    // narrower at origination.)
    EXPECT_GE(seg.payload.size(), 1u);
    EXPECT_LE(seg.payload.size(), dss->mapping->length);
  }
  EXPECT_GT(data_segments, 100u);
}

TEST(Invariants, OptionBudgetRespectedOnEveryEmittedSegment) {
  SniffedRig r;
  r.rig.loop().run_until(3 * kSecond);
  for (const auto* log : {&r.up0.log, &r.down0.log, &r.down1.log}) {
    for (const auto& seg : *log) {
      EXPECT_LE(seg.options_wire_size(), kMaxTcpOptionSpace)
          << seg.brief();
    }
  }
}

TEST(Invariants, NoNewSubflowsAfterChecksumFailure) {
  // After a checksum-triggered subflow reset, the connection must not
  // open or accept further subflows (the path environment is hostile).
  TwoHostRig rig;
  rig.add_path(wifi_path());
  rig.add_path(threeg_path());
  PayloadModifier alg(3);
  rig.splice_up(1, alg);
  MptcpConfig cfg;
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 512 * 1024;
  MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
  MptcpConnection* sconn = nullptr;
  std::unique_ptr<BulkReceiver> rx;
  ss.listen(80, [&](MptcpConnection& c) {
    if (!sconn) {
      sconn = &c;
      rx = std::make_unique<BulkReceiver>(c);
    }
  });
  MptcpConnection& cc = cs.connect(rig.client_addr(0),
                                   {rig.server_addr(), 80});
  BulkSender tx(cc, 0);
  rig.loop().run_until(5 * kSecond);
  ASSERT_GE(sconn->meta_stats().subflow_resets, 1u);
  const size_t subflows_after_reset = sconn->subflow_count();
  // The client cannot know *why* the subflow was reset, so it may try
  // again -- but the server, which detected the content modification,
  // refuses the join: the new subflow never becomes usable and the
  // server-side subflow set does not grow.
  MptcpSubflow* retry =
      cc.open_subflow(rig.client_addr(1), {rig.server_addr(), 80});
  rig.loop().run_until(8 * kSecond);
  if (retry != nullptr) {
    EXPECT_FALSE(retry->mptcp_usable());
  }
  EXPECT_EQ(sconn->subflow_count(), subflows_after_reset);
  EXPECT_TRUE(rx->pattern_ok());
}

TEST(Invariants, ChecksumRequiredIfEitherSideRequests) {
  // One side configured without checksums, the other with: the OR rule
  // means both must use them.
  TwoHostRig rig;
  rig.add_path(wifi_path());
  MptcpConfig on, off;
  on.dss_checksum = true;
  off.dss_checksum = false;
  MptcpStack cs(rig.client(), off), ss(rig.server(), on);
  MptcpConnection* sconn = nullptr;
  ss.listen(80, [&](MptcpConnection& c) { sconn = &c; });
  MptcpConnection& cc = cs.connect(rig.client_addr(0),
                                   {rig.server_addr(), 80});
  BulkSender tx(cc, 10 * 1000);
  rig.loop().run_until(2 * kSecond);
  EXPECT_TRUE(cc.dss_checksum_enabled());
  EXPECT_TRUE(sconn->dss_checksum_enabled());
}

TEST(Invariants, FastcloseOptionAppearsOnWire) {
  SniffedRig r;
  r.rig.loop().run_until(1 * kSecond);
  r.cc->abort();
  r.rig.loop().run_until(2 * kSecond);
  bool saw_fastclose = false;
  for (const auto& seg : r.up0.log) {
    if (find_option<MpFastcloseOption>(seg.options) != nullptr) {
      saw_fastclose = true;
    }
  }
  EXPECT_TRUE(saw_fastclose);
}

}  // namespace
}  // namespace mptcp
