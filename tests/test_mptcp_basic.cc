// End-to-end MPTCP tests: negotiation, joins, striping, fallback,
// teardown.
#include <gtest/gtest.h>

#include <memory>

#include "app/bulk_app.h"
#include "app/harness.h"
#include "core/mptcp_stack.h"

namespace mptcp {
namespace {

struct MptcpFixture {
  MptcpFixture(std::vector<PathSpec> paths, MptcpConfig client_cfg,
               MptcpConfig server_cfg, uint64_t transfer_bytes = 0) {
    for (const auto& p : paths) rig.add_path(p);
    client_stack = std::make_unique<MptcpStack>(rig.client(), client_cfg);
    server_stack = std::make_unique<MptcpStack>(rig.server(), server_cfg);
    server_stack->listen(80, [this](MptcpConnection& c) {
      server_conn = &c;
      receiver = std::make_unique<BulkReceiver>(c);
    });
    client_conn = &client_stack->connect(rig.client_addr(0),
                                         Endpoint{rig.server_addr(), 80});
    sender = std::make_unique<BulkSender>(*client_conn, transfer_bytes);
  }

  TwoHostRig rig;
  std::unique_ptr<MptcpStack> client_stack;
  std::unique_ptr<MptcpStack> server_stack;
  MptcpConnection* client_conn = nullptr;
  MptcpConnection* server_conn = nullptr;
  std::unique_ptr<BulkSender> sender;
  std::unique_ptr<BulkReceiver> receiver;
};

MptcpConfig default_cfg() {
  MptcpConfig cfg;
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 1024 * 1024;
  return cfg;
}

TEST(MptcpBasic, NegotiatesAndJoinsSecondSubflow) {
  MptcpFixture f({wifi_path(), threeg_path()}, default_cfg(), default_cfg(),
                 /*transfer_bytes=*/0);  // continuous: keep subflows busy
  f.rig.loop().run_until(2 * kSecond);
  ASSERT_NE(f.server_conn, nullptr);
  EXPECT_EQ(f.client_conn->mode(), MptcpMode::kMptcp);
  EXPECT_EQ(f.server_conn->mode(), MptcpMode::kMptcp);
  EXPECT_EQ(f.client_conn->subflow_count(), 2u);
  EXPECT_EQ(f.server_conn->subflow_count(), 2u);
  EXPECT_EQ(f.client_conn->usable_subflow_count(), 2u);
  EXPECT_EQ(f.client_conn->remote_token(), f.server_conn->local_token());
  EXPECT_EQ(f.client_conn->local_token(), f.server_conn->remote_token());
}

TEST(MptcpBasic, TransfersWithIntegrityAcrossTwoPaths) {
  MptcpFixture f({wifi_path(), threeg_path()}, default_cfg(), default_cfg(),
                 2 * 1000 * 1000);
  f.rig.loop().run_until(10 * kSecond);
  ASSERT_NE(f.receiver, nullptr);
  EXPECT_EQ(f.receiver->bytes_received(), 2u * 1000u * 1000u);
  EXPECT_TRUE(f.receiver->pattern_ok());
  EXPECT_TRUE(f.receiver->saw_eof());
  // Both subflows must actually carry data (aggregation, not failover).
  EXPECT_GT(f.client_conn->subflow(0)->stats().bytes_sent, 100u * 1000u);
  EXPECT_GT(f.client_conn->subflow(1)->stats().bytes_sent, 100u * 1000u);
}

TEST(MptcpBasic, AggregatesBandwidthOfBothPaths) {
  // WiFi 8 Mbps + 3G 2 Mbps: with ample buffers MPTCP should clearly
  // exceed what the best single path could deliver.
  MptcpFixture f({wifi_path(), threeg_path()}, default_cfg(), default_cfg());
  // Skip the slow-start / buffer-fill transient, then average 10 seconds.
  f.rig.loop().run_until(5 * kSecond);
  const uint64_t at5 = f.receiver->bytes_received();
  f.rig.loop().run_until(15 * kSecond);
  const double bps =
      static_cast<double>(f.receiver->bytes_received() - at5) * 8.0 / 10.0;
  EXPECT_GT(bps, 8.2e6);   // clearly more than WiFi alone (~7.7)
  EXPECT_LT(bps, 10.1e6);  // can't beat the sum
}

TEST(MptcpBasic, FallsBackWhenServerSpeaksOnlyTcp) {
  MptcpConfig tcp_only = default_cfg();
  tcp_only.enabled = false;
  MptcpFixture f({wifi_path(), threeg_path()}, default_cfg(), tcp_only,
                 200 * 1000);
  f.rig.loop().run_until(5 * kSecond);
  EXPECT_EQ(f.client_conn->mode(), MptcpMode::kFallbackTcp);
  EXPECT_EQ(f.receiver->bytes_received(), 200u * 1000u);
  EXPECT_TRUE(f.receiver->pattern_ok());
  EXPECT_TRUE(f.receiver->saw_eof());
  // No joins should have been attempted.
  EXPECT_EQ(f.client_conn->subflow_count(), 1u);
}

TEST(MptcpBasic, FallsBackWhenClientSpeaksOnlyTcp) {
  MptcpConfig tcp_only = default_cfg();
  tcp_only.enabled = false;
  MptcpFixture f({wifi_path()}, tcp_only, default_cfg(), 200 * 1000);
  f.rig.loop().run_until(5 * kSecond);
  ASSERT_NE(f.server_conn, nullptr);
  EXPECT_EQ(f.server_conn->mode(), MptcpMode::kFallbackTcp);
  EXPECT_EQ(f.receiver->bytes_received(), 200u * 1000u);
  EXPECT_TRUE(f.receiver->saw_eof());
}

TEST(MptcpBasic, DataFinTeardownClosesAllSubflows) {
  MptcpFixture f({wifi_path(), threeg_path()}, default_cfg(), default_cfg(),
                 100 * 1000);
  bool client_closed = false;
  f.client_conn->on_closed = [&] { client_closed = true; };
  f.rig.loop().run_until(2 * kSecond);
  ASSERT_TRUE(f.receiver->saw_eof());
  f.server_conn->close();  // close the reverse direction too
  f.rig.loop().run_until(10 * kSecond);
  EXPECT_TRUE(client_closed);
  for (size_t i = 0; i < f.client_conn->subflow_count(); ++i) {
    EXPECT_EQ(f.client_conn->subflow(i)->state(), TcpState::kClosed)
        << "subflow " << i;
  }
}

TEST(MptcpBasic, ServerToClientTransferWorks) {
  MptcpFixture f({wifi_path(), threeg_path()}, default_cfg(), default_cfg(),
                 0);
  std::unique_ptr<BulkSender> srv_sender;
  std::unique_ptr<BulkReceiver> cli_receiver;
  cli_receiver = std::make_unique<BulkReceiver>(*f.client_conn);
  f.rig.loop().run_until(500 * kMillisecond);
  ASSERT_NE(f.server_conn, nullptr);
  srv_sender = std::make_unique<BulkSender>(*f.server_conn, 1000 * 1000);
  // The server socket is already connected; kick the sender manually.
  srv_sender->start();
  f.rig.loop().run_until(8 * kSecond);
  EXPECT_EQ(cli_receiver->bytes_received(), 1000u * 1000u);
  EXPECT_TRUE(cli_receiver->pattern_ok());
}

TEST(MptcpBasic, SingleSubflowWhenOnlyOnePath) {
  MptcpFixture f({wifi_path()}, default_cfg(), default_cfg(), 300 * 1000);
  f.rig.loop().run_until(3 * kSecond);
  EXPECT_EQ(f.client_conn->mode(), MptcpMode::kMptcp);
  EXPECT_EQ(f.client_conn->subflow_count(), 1u);
  EXPECT_EQ(f.receiver->bytes_received(), 300u * 1000u);
  EXPECT_TRUE(f.receiver->pattern_ok());
}

TEST(MptcpBasic, ChecksumsCanBeDisabled) {
  MptcpConfig no_csum = default_cfg();
  no_csum.dss_checksum = false;
  MptcpFixture f({wifi_path(), threeg_path()}, no_csum, no_csum, 500 * 1000);
  f.rig.loop().run_until(5 * kSecond);
  EXPECT_FALSE(f.client_conn->dss_checksum_enabled());
  EXPECT_EQ(f.receiver->bytes_received(), 500u * 1000u);
  EXPECT_TRUE(f.receiver->pattern_ok());
}

TEST(MptcpBasic, SubflowLossDoesNotCorruptStream) {
  PathSpec lossy3g = threeg_path();
  lossy3g.up.loss_prob = 0.02;
  lossy3g.down.loss_prob = 0.02;
  MptcpFixture f({wifi_path(), lossy3g}, default_cfg(), default_cfg(),
                 1000 * 1000);
  f.rig.loop().run_until(20 * kSecond);
  EXPECT_EQ(f.receiver->bytes_received(), 1000u * 1000u);
  EXPECT_TRUE(f.receiver->pattern_ok());
  EXPECT_TRUE(f.receiver->saw_eof());
}

TEST(MptcpBasic, PathFailureMidTransferSurvivesOnOtherPath) {
  MptcpFixture f({wifi_path(), threeg_path()}, default_cfg(), default_cfg(),
                 2 * 1000 * 1000);
  // Kill the WiFi path (path 0, carrying most traffic) after 1 s.
  f.rig.loop().schedule_in(1 * kSecond, [&] { f.rig.set_path_up(0, false); });
  f.rig.loop().run_until(60 * kSecond);
  EXPECT_EQ(f.receiver->bytes_received(), 2u * 1000u * 1000u);
  EXPECT_TRUE(f.receiver->pattern_ok());
  EXPECT_TRUE(f.receiver->saw_eof());
}

}  // namespace
}  // namespace mptcp
