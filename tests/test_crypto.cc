// SHA-1 / HMAC-SHA1 against the RFC test vectors, plus the MPTCP key
// derivations (token, IDSN, MP_JOIN MACs).
#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "net/checksum.h"
#include "net/sha1.h"

namespace mptcp {
namespace {

std::string hex(std::span<const uint8_t> d) {
  static const char* k = "0123456789abcdef";
  std::string out;
  for (uint8_t b : d) {
    out += k[b >> 4];
    out += k[b & 0xf];
  }
  return out;
}

std::span<const uint8_t> bytes_of(const std::string& s) {
  return {reinterpret_cast<const uint8_t*>(s.data()), s.size()};
}

// --- RFC 3174 test vectors -------------------------------------------------

TEST(Sha1, Rfc3174Vector1) {
  EXPECT_EQ(hex(Sha1::hash(bytes_of("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, Rfc3174Vector2) {
  EXPECT_EQ(hex(Sha1::hash(bytes_of(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, EmptyInput) {
  EXPECT_EQ(hex(Sha1::hash({})),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, MillionAs) {
  Sha1 h;
  const std::string a(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(bytes_of(a));
  EXPECT_EQ(hex(h.digest()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const std::string msg =
      "The quick brown fox jumps over the lazy dog multiple times";
  Sha1 inc;
  for (char c : msg) {
    const uint8_t b = static_cast<uint8_t>(c);
    inc.update({&b, 1});
  }
  EXPECT_EQ(hex(inc.digest()), hex(Sha1::hash(bytes_of(msg))));
}

// Boundary lengths around the 64-byte block size (padding edge cases).
class Sha1Boundary : public ::testing::TestWithParam<size_t> {};

TEST_P(Sha1Boundary, SplitUpdateMatchesOneShot) {
  const size_t n = GetParam();
  std::vector<uint8_t> msg(n);
  for (size_t i = 0; i < n; ++i) msg[i] = static_cast<uint8_t>(i * 7);
  Sha1 split;
  const size_t half = n / 2;
  split.update({msg.data(), half});
  split.update({msg.data() + half, n - half});
  EXPECT_EQ(hex(split.digest()), hex(Sha1::hash(msg)));
}

INSTANTIATE_TEST_SUITE_P(BlockEdges, Sha1Boundary,
                         ::testing::Values(1, 54, 55, 56, 57, 63, 64, 65,
                                           119, 120, 121, 127, 128, 129));

// --- RFC 2202 HMAC-SHA1 test vectors ---------------------------------------

TEST(HmacSha1, Rfc2202Case1) {
  std::vector<uint8_t> key(20, 0x0b);
  EXPECT_EQ(hex(hmac_sha1(key, bytes_of("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1, Rfc2202Case2) {
  EXPECT_EQ(hex(hmac_sha1(bytes_of("Jefe"),
                          bytes_of("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacSha1, Rfc2202Case3) {
  std::vector<uint8_t> key(20, 0xaa);
  std::vector<uint8_t> msg(50, 0xdd);
  EXPECT_EQ(hex(hmac_sha1(key, msg)),
            "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(HmacSha1, Rfc2202Case6LongKey) {
  std::vector<uint8_t> key(80, 0xaa);
  EXPECT_EQ(hex(hmac_sha1(key, bytes_of("Test Using Larger Than Block-Size "
                                        "Key - Hash Key First"))),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

// --- MPTCP derivations ------------------------------------------------------

TEST(MptcpKeys, TokenIsTop32BitsOfKeyHash) {
  const uint64_t key = 0x0102030405060708ULL;
  const uint8_t key_be[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto d = Sha1::hash(key_be);
  const uint32_t expect = (uint32_t{d[0]} << 24) | (uint32_t{d[1]} << 16) |
                          (uint32_t{d[2]} << 8) | d[3];
  EXPECT_EQ(mptcp_token_from_key(key), expect);
}

TEST(MptcpKeys, IdsnIsBottom64BitsOfKeyHash) {
  const uint64_t key = 0xfeedfacecafebeefULL;
  const uint64_t idsn = mptcp_idsn_from_key(key);
  // Independent derivation.
  uint8_t be[8];
  for (int i = 0; i < 8; ++i) be[i] = static_cast<uint8_t>(key >> (56 - 8 * i));
  const auto d = Sha1::hash(be);
  uint64_t expect = 0;
  for (int i = 12; i < 20; ++i) expect = (expect << 8) | d[i];
  EXPECT_EQ(idsn, expect);
}

TEST(MptcpKeys, DistinctKeysYieldDistinctTokens) {
  // Not guaranteed in theory, overwhelmingly likely in practice; a
  // regression here would indicate broken hashing.
  EXPECT_NE(mptcp_token_from_key(1), mptcp_token_from_key(2));
  EXPECT_NE(mptcp_token_from_key(0xffffffffffffffffULL),
            mptcp_token_from_key(0xfffffffffffffffeULL));
}

TEST(MptcpKeys, JoinMacIsDirectional) {
  const uint64_t ka = 0x1111, kb = 0x2222;
  const uint32_t ra = 0x3333, rb = 0x4444;
  // HMAC-A (client->server) and HMAC-B (server->client) must differ.
  EXPECT_NE(mptcp_join_mac64(ka, kb, ra, rb),
            mptcp_join_mac64(kb, ka, rb, ra));
}

TEST(MptcpKeys, JoinMacDependsOnEveryInput) {
  const uint64_t base = mptcp_join_mac64(1, 2, 3, 4);
  EXPECT_NE(base, mptcp_join_mac64(9, 2, 3, 4));
  EXPECT_NE(base, mptcp_join_mac64(1, 9, 3, 4));
  EXPECT_NE(base, mptcp_join_mac64(1, 2, 9, 4));
  EXPECT_NE(base, mptcp_join_mac64(1, 2, 3, 9));
}

// --- RFC 1071 checksum ------------------------------------------------------

TEST(Checksum, KnownVector) {
  // Classic example from RFC 1071 section 3.
  const uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(ones_complement_sum(data), 0xddf2);
  EXPECT_EQ(internet_checksum(data), static_cast<uint16_t>(~0xddf2));
}

TEST(Checksum, OddLengthPadsWithZero) {
  const uint8_t data[] = {0x12, 0x34, 0x56};
  // 0x1234 + 0x5600 = 0x6834.
  EXPECT_EQ(ones_complement_sum(data), 0x6834);
}

TEST(Checksum, CarryWrapsAround) {
  const uint8_t data[] = {0xff, 0xff, 0x00, 0x02};
  // 0xffff + 0x0002 = 0x10001 -> fold -> 0x0002.
  EXPECT_EQ(ones_complement_sum(data), 0x0002);
}

TEST(Checksum, AccumulatorMatchesOneShot) {
  std::vector<uint8_t> data(1000);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>(i * 13);
  }
  ChecksumAccumulator acc;
  acc.add_bytes({data.data(), 500});
  acc.add_bytes({data.data() + 500, 500});
  EXPECT_EQ(acc.fold(), ones_complement_sum(data));
}

TEST(Checksum, PartialSumSharing) {
  // The section 3.3.6 trick: a block's folded sum can be added into a
  // larger accumulation and match summing the bytes directly.
  std::vector<uint8_t> head = {1, 2, 3, 4};
  std::vector<uint8_t> tail = {5, 6, 7, 8, 9, 10};
  ChecksumAccumulator direct;
  direct.add_bytes(head);
  direct.add_bytes(tail);

  ChecksumAccumulator shared;
  shared.add_bytes(head);
  shared.add_partial(ones_complement_sum(tail));
  EXPECT_EQ(shared.fold(), direct.fold());
}

}  // namespace
}  // namespace mptcp
