// StreamSocket API contracts: what a downstream application may rely on.
#include <gtest/gtest.h>

#include <memory>
#include <type_traits>

#include "app/bulk_app.h"
#include "app/harness.h"
#include "app/http_app.h"
#include "app/workload.h"
#include "core/mptcp_stack.h"

namespace mptcp {
namespace {

// --- compile-time layering contract ------------------------------------
// Both transports are StreamSockets; the application classes accept the
// abstract socket (or a factory), never a concrete transport. This is the
// "no app-layer code names TcpConnection/MptcpConnection" rule, checked
// where the compiler can see it.
static_assert(std::is_abstract_v<StreamSocket>);
static_assert(std::is_base_of_v<StreamSocket, TcpConnection>);
static_assert(std::is_base_of_v<StreamSocket, MptcpConnection>);
static_assert(std::is_constructible_v<BulkSender, StreamSocket&>);
static_assert(std::is_constructible_v<BulkReceiver, StreamSocket&>);
static_assert(std::is_constructible_v<HttpServer, SocketFactory&, Port>);
static_assert(!std::is_constructible_v<BulkSender, MptcpStack&>,
              "apps take sockets, not stacks");

struct ApiRig {
  ApiRig() {
    rig.add_path(wifi_path());
    MptcpConfig cfg;
    cs = std::make_unique<MptcpStack>(rig.client(), cfg);
    ss = std::make_unique<MptcpStack>(rig.server(), cfg);
    ss->listen(80, [this](MptcpConnection& c) { sconn = &c; });
    cconn = &cs->connect(rig.client_addr(0), {rig.server_addr(), 80});
  }
  TwoHostRig rig;
  std::unique_ptr<MptcpStack> cs, ss;
  MptcpConnection* cconn = nullptr;
  MptcpConnection* sconn = nullptr;
};

TEST(ApiContract, WriteBeforeEstablishmentIsBuffered) {
  ApiRig r;
  // Nothing has flowed yet; writes must be accepted into the buffer.
  const auto data = pattern_bytes(0, 10000);
  EXPECT_EQ(r.cconn->write(data), 10000u);
  r.rig.loop().run_until(1 * kSecond);
  ASSERT_NE(r.sconn, nullptr);
  EXPECT_EQ(r.sconn->readable_bytes(), 10000u);
}

TEST(ApiContract, ReadOnEmptySocketReturnsZero) {
  ApiRig r;
  r.rig.loop().run_until(500 * kMillisecond);
  uint8_t buf[64];
  EXPECT_EQ(r.sconn->read(buf), 0u);
  EXPECT_FALSE(r.sconn->at_eof());
}

TEST(ApiContract, WriteAfterCloseReturnsZero) {
  ApiRig r;
  r.rig.loop().run_until(500 * kMillisecond);
  r.cconn->close();
  const auto data = pattern_bytes(0, 100);
  EXPECT_EQ(r.cconn->write(data), 0u);
}

TEST(ApiContract, EofOnlyAfterAllDataRead) {
  ApiRig r;
  const auto data = pattern_bytes(0, 5000);
  r.cconn->write(data);
  r.cconn->close();
  r.rig.loop().run_until(1 * kSecond);
  ASSERT_NE(r.sconn, nullptr);
  EXPECT_FALSE(r.sconn->at_eof()) << "unread data pending";
  uint8_t buf[8192];
  size_t total = 0;
  for (;;) {
    const size_t n = r.sconn->read(buf);
    if (n == 0) break;
    total += n;
  }
  EXPECT_EQ(total, 5000u);
  EXPECT_TRUE(r.sconn->at_eof());
}

TEST(ApiContract, OnReadableFiresForEofAloneToo) {
  ApiRig r;
  r.rig.loop().run_until(500 * kMillisecond);
  ASSERT_NE(r.sconn, nullptr);
  int readable_events = 0;
  r.sconn->on_readable = [&] { ++readable_events; };
  r.cconn->close();  // no data at all, just EOF
  r.rig.loop().run_until(1 * kSecond);
  EXPECT_GT(readable_events, 0);
  EXPECT_TRUE(r.sconn->at_eof());
}

TEST(ApiContract, OnSendSpaceFiresWhenBufferDrains) {
  TwoHostRig rig;
  rig.add_path(wifi_path());
  MptcpConfig cfg;
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 20 * 1000;
  MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
  std::unique_ptr<BulkReceiver> rx;
  ss.listen(80, [&](MptcpConnection& c) {
    rx = std::make_unique<BulkReceiver>(c, false);
  });
  MptcpConnection& cc = cs.connect(rig.client_addr(0),
                                   {rig.server_addr(), 80});
  // Fill the buffer completely.
  const auto big = pattern_bytes(0, 40 * 1000);
  const size_t first = cc.write(big);
  EXPECT_LE(first, 20u * 1000u);
  int space_events = 0;
  cc.on_send_space = [&] { ++space_events; };
  rig.loop().run_until(2 * kSecond);
  EXPECT_GT(space_events, 0);
}

TEST(ApiContract, CallbacksClearableWithoutCrash) {
  ApiRig r;
  r.cconn->on_connected = nullptr;
  r.cconn->on_readable = nullptr;
  r.cconn->on_send_space = nullptr;
  r.cconn->on_closed = nullptr;
  const auto data = pattern_bytes(0, 1000);
  r.cconn->write(data);
  r.cconn->close();
  r.rig.loop().run_until(2 * kSecond);  // must not crash
  SUCCEED();
}

TEST(ApiContract, ZeroByteWriteIsANoOp) {
  ApiRig r;
  EXPECT_EQ(r.cconn->write({}), 0u);
  r.rig.loop().run_until(500 * kMillisecond);
  EXPECT_TRUE(r.cconn->established());
}

// --- SocketFactory: one app, either transport ---------------------------

/// The same application code, byte for byte, runs over both transports;
/// only the TransportConfig differs.
void exercise_transport(TransportKind kind) {
  Topology topo(21);
  const NodeId a = topo.add_host("a");
  const NodeId b = topo.add_host("b");
  LinkConfig link;
  link.rate_bps = 50e6;
  link.prop_delay = 2 * kMillisecond;
  link.buffer_bytes = 64 * 1024;
  topo.connect(a, b, link, link);
  topo.build_routes();

  TransportConfig tc;
  tc.kind = kind;
  SocketFactory cf(topo.host(a), tc);
  SocketFactory sf(topo.host(b), tc);
  ASSERT_EQ(cf.kind(), kind);

  std::unique_ptr<BulkReceiver> rx;
  sf.listen(80, [&](StreamSocket& s) {
    rx = std::make_unique<BulkReceiver>(s, /*verify=*/true);
  });
  StreamSocket& c = cf.connect(topo.addr(a), {topo.addr(b), 80});
  BulkSender tx(c, 100 * 1000);
  topo.loop().run_until(2 * kSecond);

  ASSERT_NE(rx, nullptr);
  EXPECT_EQ(rx->bytes_received(), 100u * 1000u);
  EXPECT_TRUE(rx->pattern_ok());
  EXPECT_TRUE(rx->saw_eof());
  // The typed escape hatches agree with the configured kind.
  if (kind == TransportKind::kMptcp) {
    EXPECT_NE(cf.as_mptcp(c), nullptr);
    EXPECT_NE(cf.mptcp_stack(), nullptr);
  } else {
    EXPECT_EQ(cf.as_mptcp(c), nullptr);
    EXPECT_NE(cf.as_tcp(c), nullptr);
    EXPECT_EQ(cf.mptcp_stack(), nullptr);
  }
}

TEST(ApiContract, SocketFactoryRunsAppOverTcp) {
  exercise_transport(TransportKind::kTcp);
}

TEST(ApiContract, SocketFactoryRunsAppOverMptcp) {
  exercise_transport(TransportKind::kMptcp);
}

TEST(ApiContract, ReleasedSocketsLeaveTheFactory) {
  Topology topo;
  const NodeId a = topo.add_host("a");
  const NodeId b = topo.add_host("b");
  LinkConfig link;
  link.rate_bps = 50e6;
  link.prop_delay = 1 * kMillisecond;
  link.buffer_bytes = 64 * 1024;
  topo.connect(a, b, link, link);
  topo.build_routes();

  for (TransportKind kind : {TransportKind::kTcp, TransportKind::kMptcp}) {
    TransportConfig tc;
    tc.kind = kind;
    SocketFactory cf(topo.host(a), tc);
    SocketFactory sf(topo.host(b), tc);
    HttpServer server(sf, 80);
    StreamSocket& c = cf.connect(topo.addr(a), {topo.addr(b), 80});
    cf.release_when_closed(c);
    c.on_connected = [&c] { c.write(make_http_request(5000)); };
    c.on_readable = [&c] {
      uint8_t buf[4096];
      while (c.read(buf) > 0) {
      }
      if (c.at_eof()) c.close();
    };
    EXPECT_EQ(cf.live_sockets(), 1u);
    topo.loop().run_until(topo.loop().now() + 3 * kSecond);
    EXPECT_EQ(cf.live_sockets(), 0u)
        << "closed+released socket still owned (kind "
        << static_cast<int>(kind) << ")";
    EXPECT_EQ(server.requests_served(), 1u);
  }
}

// --- Topology construction contract -------------------------------------

TEST(ApiContract, TopologyNamesAndLinksAreQueryable) {
  Topology topo;
  const NodeId h = topo.add_host("alpha");
  const NodeId r = topo.add_router("beta");
  LinkConfig link;
  const size_t l = topo.connect(h, r, link, link);
  EXPECT_EQ(topo.node_count(), 2u);
  EXPECT_EQ(topo.link_count(), 1u);
  EXPECT_FALSE(topo.is_router(h));
  EXPECT_TRUE(topo.is_router(r));
  EXPECT_EQ(topo.node_name(h), "alpha");
  EXPECT_EQ(topo.node_name(r), "beta");
  EXPECT_EQ(topo.link_node_a(l), h);
  EXPECT_EQ(topo.link_node_b(l), r);
  EXPECT_EQ(topo.addrs(h).size(), 1u);
}

}  // namespace
}  // namespace mptcp
