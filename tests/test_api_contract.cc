// StreamSocket API contracts: what a downstream application may rely on.
#include <gtest/gtest.h>

#include <memory>

#include "app/bulk_app.h"
#include "app/harness.h"
#include "core/mptcp_stack.h"

namespace mptcp {
namespace {

struct ApiRig {
  ApiRig() {
    rig.add_path(wifi_path());
    MptcpConfig cfg;
    cs = std::make_unique<MptcpStack>(rig.client(), cfg);
    ss = std::make_unique<MptcpStack>(rig.server(), cfg);
    ss->listen(80, [this](MptcpConnection& c) { sconn = &c; });
    cconn = &cs->connect(rig.client_addr(0), {rig.server_addr(), 80});
  }
  TwoHostRig rig;
  std::unique_ptr<MptcpStack> cs, ss;
  MptcpConnection* cconn = nullptr;
  MptcpConnection* sconn = nullptr;
};

TEST(ApiContract, WriteBeforeEstablishmentIsBuffered) {
  ApiRig r;
  // Nothing has flowed yet; writes must be accepted into the buffer.
  const auto data = pattern_bytes(0, 10000);
  EXPECT_EQ(r.cconn->write(data), 10000u);
  r.rig.loop().run_until(1 * kSecond);
  ASSERT_NE(r.sconn, nullptr);
  EXPECT_EQ(r.sconn->readable_bytes(), 10000u);
}

TEST(ApiContract, ReadOnEmptySocketReturnsZero) {
  ApiRig r;
  r.rig.loop().run_until(500 * kMillisecond);
  uint8_t buf[64];
  EXPECT_EQ(r.sconn->read(buf), 0u);
  EXPECT_FALSE(r.sconn->at_eof());
}

TEST(ApiContract, WriteAfterCloseReturnsZero) {
  ApiRig r;
  r.rig.loop().run_until(500 * kMillisecond);
  r.cconn->close();
  const auto data = pattern_bytes(0, 100);
  EXPECT_EQ(r.cconn->write(data), 0u);
}

TEST(ApiContract, EofOnlyAfterAllDataRead) {
  ApiRig r;
  const auto data = pattern_bytes(0, 5000);
  r.cconn->write(data);
  r.cconn->close();
  r.rig.loop().run_until(1 * kSecond);
  ASSERT_NE(r.sconn, nullptr);
  EXPECT_FALSE(r.sconn->at_eof()) << "unread data pending";
  uint8_t buf[8192];
  size_t total = 0;
  for (;;) {
    const size_t n = r.sconn->read(buf);
    if (n == 0) break;
    total += n;
  }
  EXPECT_EQ(total, 5000u);
  EXPECT_TRUE(r.sconn->at_eof());
}

TEST(ApiContract, OnReadableFiresForEofAloneToo) {
  ApiRig r;
  r.rig.loop().run_until(500 * kMillisecond);
  ASSERT_NE(r.sconn, nullptr);
  int readable_events = 0;
  r.sconn->on_readable = [&] { ++readable_events; };
  r.cconn->close();  // no data at all, just EOF
  r.rig.loop().run_until(1 * kSecond);
  EXPECT_GT(readable_events, 0);
  EXPECT_TRUE(r.sconn->at_eof());
}

TEST(ApiContract, OnSendSpaceFiresWhenBufferDrains) {
  TwoHostRig rig;
  rig.add_path(wifi_path());
  MptcpConfig cfg;
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 20 * 1000;
  MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
  std::unique_ptr<BulkReceiver> rx;
  ss.listen(80, [&](MptcpConnection& c) {
    rx = std::make_unique<BulkReceiver>(c, false);
  });
  MptcpConnection& cc = cs.connect(rig.client_addr(0),
                                   {rig.server_addr(), 80});
  // Fill the buffer completely.
  const auto big = pattern_bytes(0, 40 * 1000);
  const size_t first = cc.write(big);
  EXPECT_LE(first, 20u * 1000u);
  int space_events = 0;
  cc.on_send_space = [&] { ++space_events; };
  rig.loop().run_until(2 * kSecond);
  EXPECT_GT(space_events, 0);
}

TEST(ApiContract, CallbacksClearableWithoutCrash) {
  ApiRig r;
  r.cconn->on_connected = nullptr;
  r.cconn->on_readable = nullptr;
  r.cconn->on_send_space = nullptr;
  r.cconn->on_closed = nullptr;
  const auto data = pattern_bytes(0, 1000);
  r.cconn->write(data);
  r.cconn->close();
  r.rig.loop().run_until(2 * kSecond);  // must not crash
  SUCCEED();
}

TEST(ApiContract, ZeroByteWriteIsANoOp) {
  ApiRig r;
  EXPECT_EQ(r.cconn->write({}), 0u);
  r.rig.loop().run_until(500 * kMillisecond);
  EXPECT_TRUE(r.cconn->established());
}

}  // namespace
}  // namespace mptcp
