// The section 4.1 interoperability matrix: MPTCP through every middlebox
// the paper models. For each element the expected outcome is one of
// "works as MPTCP", "falls back to TCP", or "loses the affected subflow
// but the connection survives" -- never a broken transfer.
#include <gtest/gtest.h>

#include <memory>

#include "app/bulk_app.h"
#include "app/harness.h"
#include "core/mptcp_stack.h"
#include "middlebox/nat.h"
#include "middlebox/option_stripper.h"
#include "middlebox/payload_modifier.h"
#include "middlebox/proactive_acker.h"
#include "middlebox/segment_coalescer.h"
#include "middlebox/segment_splitter.h"
#include "middlebox/seq_rewriter.h"

namespace mptcp {
namespace {

constexpr uint64_t kTransfer = 400 * 1000;

struct MboxFixture {
  explicit MboxFixture(size_t n_paths = 2) {
    for (size_t i = 0; i < n_paths; ++i) {
      rig.add_path(i == 0 ? wifi_path() : threeg_path());
    }
  }

  /// Call after splicing middleboxes; starts the transfer.
  void start(uint64_t transfer = kTransfer) {
    MptcpConfig cfg;
    cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 512 * 1024;
    client_stack = std::make_unique<MptcpStack>(rig.client(), cfg);
    server_stack = std::make_unique<MptcpStack>(rig.server(), cfg);
    server_stack->listen(80, [this](MptcpConnection& c) {
      if (server_conn != nullptr) return;  // e.g. a stripped MP_JOIN SYN
      server_conn = &c;
      receiver = std::make_unique<BulkReceiver>(c);
    });
    client_conn = &client_stack->connect(rig.client_addr(0),
                                         Endpoint{rig.server_addr(), 80});
    sender = std::make_unique<BulkSender>(*client_conn, transfer);
  }

  void run(SimTime t = 30 * kSecond) { rig.loop().run_until(t); }

  TwoHostRig rig;
  std::unique_ptr<MptcpStack> client_stack, server_stack;
  MptcpConnection* client_conn = nullptr;
  MptcpConnection* server_conn = nullptr;
  std::unique_ptr<BulkSender> sender;
  std::unique_ptr<BulkReceiver> receiver;
};

// ---------------------------------------------------------------------------
// Option strippers (section 3.1).
// ---------------------------------------------------------------------------

TEST(Middlebox, McCapableStrippedFromSynFallsBackCleanly) {
  MboxFixture f;
  OptionStripper strip(OptionStripper::Scope::kSynOnly,
                       OptionStripper::What::kMpCapable);
  f.rig.splice_up(0, strip);
  f.start();
  f.run();
  EXPECT_EQ(f.client_conn->mode(), MptcpMode::kFallbackTcp);
  EXPECT_EQ(f.server_conn->mode(), MptcpMode::kFallbackTcp);
  EXPECT_EQ(f.receiver->bytes_received(), kTransfer);
  EXPECT_TRUE(f.receiver->pattern_ok());
  EXPECT_TRUE(f.receiver->saw_eof());
}

TEST(Middlebox, McCapableStrippedFromSynAckFallsBackCleanly) {
  MboxFixture f;
  OptionStripper strip(OptionStripper::Scope::kSynOnly,
                       OptionStripper::What::kMpCapable);
  f.rig.splice_down(0, strip);
  f.start();
  f.run();
  // The server believed MPTCP was on until the first data packet arrived
  // without options (the client, having fallen back, sends none).
  EXPECT_EQ(f.client_conn->mode(), MptcpMode::kFallbackTcp);
  EXPECT_EQ(f.server_conn->mode(), MptcpMode::kFallbackTcp);
  EXPECT_EQ(f.receiver->bytes_received(), kTransfer);
  EXPECT_TRUE(f.receiver->pattern_ok());
}

TEST(Middlebox, OptionsStrippedFromDataSegmentsFallsBack) {
  // SYN options pass but data options are dropped: negotiation succeeds
  // and both ends must then detect the stripping and fall back.
  MboxFixture f(1);
  OptionStripper up(OptionStripper::Scope::kNonSynOnly,
                    OptionStripper::What::kAllMptcp);
  OptionStripper down(OptionStripper::Scope::kNonSynOnly,
                      OptionStripper::What::kAllMptcp);
  f.rig.splice_up(0, up);
  f.rig.splice_down(0, down);
  f.start();
  f.run();
  EXPECT_EQ(f.client_conn->mode(), MptcpMode::kFallbackTcp);
  EXPECT_EQ(f.server_conn->mode(), MptcpMode::kFallbackTcp);
  EXPECT_EQ(f.receiver->bytes_received(), kTransfer);
  EXPECT_TRUE(f.receiver->pattern_ok());
}

TEST(Middlebox, MpJoinStrippedLosesSubflowNotConnection) {
  MboxFixture f;
  OptionStripper strip(OptionStripper::Scope::kSynOnly,
                       OptionStripper::What::kMpJoin);
  f.rig.splice_up(1, strip);
  f.start();
  f.run();
  EXPECT_EQ(f.client_conn->mode(), MptcpMode::kMptcp);
  // The join on path 1 failed; data flowed on path 0 only.
  EXPECT_EQ(f.client_conn->usable_subflow_count(), 0u)
      << "transfer finished; subflows closed";
  EXPECT_EQ(f.receiver->bytes_received(), kTransfer);
  EXPECT_TRUE(f.receiver->pattern_ok());
}

// ---------------------------------------------------------------------------
// Sequence rewriting and NAT (sections 3.2 / 3.3.4).
// ---------------------------------------------------------------------------

TEST(Middlebox, SequenceRewritingIsHarmless) {
  MboxFixture f;
  SeqRewriter rewriter;
  f.rig.splice_up(0, rewriter.forward_sink());
  f.rig.splice_down(0, rewriter.reverse_sink());
  f.start();
  f.run();
  EXPECT_EQ(f.client_conn->mode(), MptcpMode::kMptcp);
  EXPECT_GT(rewriter.flows_tracked(), 0u);
  EXPECT_EQ(f.receiver->bytes_received(), kTransfer);
  EXPECT_TRUE(f.receiver->pattern_ok());
  EXPECT_EQ(f.client_conn->meta_stats().fallbacks, 0u);
}

TEST(Middlebox, NatOnJoinPathStillJoinsByToken) {
  MboxFixture f;
  Nat nat(IpAddr(192, 0, 2, 1));
  f.rig.splice_up(1, nat.forward_sink());
  // Return traffic to the public address must route through the NAT: the
  // server sends via the 3G downlink, whose far end (the network) hands
  // it to the NAT's reverse side, which rewrites and re-injects.
  f.rig.route_server_to(nat.public_addr(), 1);
  f.rig.network().attach(nat.public_addr(), &nat.reverse_sink());
  nat.reverse_sink().set_downstream(&f.rig.network());
  f.start();
  f.run();
  EXPECT_EQ(f.client_conn->mode(), MptcpMode::kMptcp);
  EXPECT_GT(nat.mappings(), 0u);
  EXPECT_EQ(f.receiver->bytes_received(), kTransfer);
  EXPECT_TRUE(f.receiver->pattern_ok());
}

// ---------------------------------------------------------------------------
// Resegmentation (sections 3.3.4 / 3.3.5).
// ---------------------------------------------------------------------------

TEST(Middlebox, TsoSplitterCopiesOptionsAndMappingsSurvive) {
  MboxFixture f;
  // Endpoints send 1460-byte segments; the splitter re-cuts them to 536.
  SegmentSplitter split(536);
  f.rig.splice_up(0, split);
  f.start();
  f.run();
  EXPECT_EQ(f.client_conn->mode(), MptcpMode::kMptcp);
  EXPECT_GT(split.splits(), 0u);
  EXPECT_EQ(f.receiver->bytes_received(), kTransfer);
  EXPECT_TRUE(f.receiver->pattern_ok());
}

TEST(Middlebox, CoalescerLosesMappingsButConnectionRecovers) {
  MboxFixture f;
  // Hold long enough to span back-to-back segment spacing at 8 Mbps.
  SegmentCoalescer coalesce(f.rig.loop(), 5 * kMillisecond);
  f.rig.splice_up(0, coalesce);
  f.start(150 * 1000);
  f.run(60 * kSecond);
  EXPECT_GT(coalesce.coalesced(), 0u);
  // Unmapped bytes are dropped at the data level and repaired by
  // connection-level retransmission: slower, never corrupt.
  EXPECT_EQ(f.receiver->bytes_received(), 150u * 1000u);
  EXPECT_TRUE(f.receiver->pattern_ok());
  EXPECT_TRUE(f.receiver->saw_eof());
}

// ---------------------------------------------------------------------------
// Pro-active ACKing proxies (section 3.3.5).
// ---------------------------------------------------------------------------

TEST(Middlebox, ProactiveAckerDoesNotCorruptTransfer) {
  MboxFixture f;
  ProactiveAcker proxy;
  f.rig.splice_up(0, proxy.forward_sink());
  proxy.reverse_sink().set_downstream(&f.rig.network());
  f.start();
  f.run();
  EXPECT_GT(proxy.forged_acks(), 0u);
  EXPECT_EQ(f.receiver->bytes_received(), kTransfer);
  EXPECT_TRUE(f.receiver->pattern_ok());
  EXPECT_TRUE(f.receiver->saw_eof());
}

TEST(Middlebox, AckCorrectionSurvivedByDataAck) {
  MboxFixture f;
  ProactiveAcker proxy(ProactiveAcker::AckPolicy::kCorrectUnseen);
  f.rig.splice_up(0, proxy.forward_sink());
  f.rig.splice_down(0, proxy.reverse_sink());
  f.start();
  f.run();
  EXPECT_EQ(f.receiver->bytes_received(), kTransfer);
  EXPECT_TRUE(f.receiver->pattern_ok());
}

// ---------------------------------------------------------------------------
// Content-modifying middleboxes (section 3.3.6).
// ---------------------------------------------------------------------------

TEST(Middlebox, PayloadModifierOnOneOfTwoPathsResetsThatSubflow) {
  MboxFixture f;
  PayloadModifier alg(/*interval=*/3);
  f.rig.splice_up(1, alg);
  f.start();
  f.run();
  EXPECT_GT(alg.segments_modified(), 0u);
  EXPECT_GE(f.server_conn->meta_stats().checksum_failures, 1u);
  EXPECT_GE(f.server_conn->meta_stats().subflow_resets, 1u);
  // The modified data was rejected; everything arrived intact via path 0.
  EXPECT_EQ(f.receiver->bytes_received(), kTransfer);
  EXPECT_TRUE(f.receiver->pattern_ok());
  EXPECT_TRUE(f.receiver->saw_eof());
}

TEST(Middlebox, PayloadModifierOnOnlyPathFallsBackAndDelivers) {
  MboxFixture f(1);
  PayloadModifier alg(/*interval=*/5);
  f.rig.splice_up(0, alg);
  f.start();
  f.run();
  EXPECT_GE(f.server_conn->meta_stats().checksum_failures, 1u);
  EXPECT_GE(f.server_conn->meta_stats().fallbacks, 1u);
  // Fallback semantics: the middlebox may rewrite; data flows, modified.
  EXPECT_EQ(f.receiver->bytes_received(), kTransfer);
  EXPECT_GT(f.receiver->pattern_errors(), 0u);
  EXPECT_TRUE(f.receiver->saw_eof());
}

TEST(Middlebox, ChecksumDisabledMissesModification) {
  // Negative control: with DSS checksums off, the modification sails
  // through -- the exact trade the paper allows for datacenters.
  MboxFixture f(1);
  PayloadModifier alg(/*interval=*/5);
  f.rig.splice_up(0, alg);
  MptcpConfig cfg;
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 512 * 1024;
  cfg.dss_checksum = false;
  f.client_stack = std::make_unique<MptcpStack>(f.rig.client(), cfg);
  f.server_stack = std::make_unique<MptcpStack>(f.rig.server(), cfg);
  f.server_stack->listen(80, [&f](MptcpConnection& c) {
    f.server_conn = &c;
    f.receiver = std::make_unique<BulkReceiver>(c);
  });
  f.client_conn = &f.client_stack->connect(f.rig.client_addr(0),
                                           Endpoint{f.rig.server_addr(), 80});
  f.sender = std::make_unique<BulkSender>(*f.client_conn, kTransfer);
  f.run();
  EXPECT_EQ(f.server_conn->meta_stats().checksum_failures, 0u);
  EXPECT_EQ(f.receiver->bytes_received(), kTransfer);
  EXPECT_GT(f.receiver->pattern_errors(), 0u);  // corruption undetected
}

// ---------------------------------------------------------------------------
// Hole-sensitive proxies (section 3.3).
// ---------------------------------------------------------------------------

TEST(Middlebox, SubflowStreamsPresentNoHolesToHoleDroppers) {
  // The design claim: per-subflow contiguous sequence spaces never show a
  // hole to a middlebox on a loss-free path segment, so proxies that
  // refuse data-after-hole are harmless.
  MboxFixture f;
  HoleDropper dropper;
  f.rig.splice_up(0, dropper);
  // Keep the path loss-free: bound outstanding data below the link buffer
  // so slow-start bursts cannot overflow it (holes from packet loss are a
  // different phenomenon from the design-induced holes of striping).
  MptcpConfig cfg;
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 64 * 1024;
  f.client_stack = std::make_unique<MptcpStack>(f.rig.client(), cfg);
  f.server_stack = std::make_unique<MptcpStack>(f.rig.server(), cfg);
  f.server_stack->listen(80, [&f](MptcpConnection& c) {
    f.server_conn = &c;
    f.receiver = std::make_unique<BulkReceiver>(c);
  });
  f.client_conn = &f.client_stack->connect(f.rig.client_addr(0),
                                           Endpoint{f.rig.server_addr(), 80});
  f.sender = std::make_unique<BulkSender>(*f.client_conn, kTransfer);
  f.run();
  EXPECT_EQ(dropper.holes_dropped(), 0u);
  EXPECT_EQ(f.receiver->bytes_received(), kTransfer);
  EXPECT_TRUE(f.receiver->pattern_ok());
}

}  // namespace
}  // namespace mptcp
