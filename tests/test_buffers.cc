// SendBuffer and ReassemblyQueue tests, including randomized
// property-style checks of reassembly under arbitrary arrival orders.
#include <gtest/gtest.h>

#include <algorithm>

#include "net/rng.h"
#include "tcp/tcp_buffers.h"

namespace mptcp {
namespace {

// --- SendBuffer ----------------------------------------------------------------

TEST(SendBuffer, AppendRespectsCapacity) {
  SendBuffer buf(1000);
  std::vector<uint8_t> data(100, 7);
  EXPECT_EQ(buf.append(data, 150), 100u);
  EXPECT_EQ(buf.append(data, 150), 50u);
  EXPECT_EQ(buf.append(data, 150), 0u);
  EXPECT_EQ(buf.size(), 150u);
  EXPECT_EQ(buf.end_seq(), 1150u);
}

TEST(SendBuffer, SliceOutReturnsCorrectRange) {
  SendBuffer buf(500);
  std::vector<uint8_t> data(26);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<uint8_t>('a' + i);
  }
  buf.append(data, 100);
  EXPECT_EQ(buf.slice_out(505, 3), (Payload{'f', 'g', 'h'}));
}

TEST(SendBuffer, SliceOutWithinOneChunkSharesTheBuffer) {
  SendBuffer buf(0);
  std::vector<uint8_t> data(100, 9);
  buf.append(data, 100);
  const Payload a = buf.slice_out(10, 20);
  const Payload b = buf.slice_out(30, 20);
  EXPECT_TRUE(a.shares_buffer_with(b));  // both views of the one chunk
}

TEST(SendBuffer, SliceOutAcrossChunksAssembles) {
  SendBuffer buf(0);
  std::vector<uint8_t> data(50);
  for (size_t i = 0; i < 50; ++i) data[i] = static_cast<uint8_t>(i);
  buf.append(std::span(data).first(20), 100);   // chunk [0,20)
  buf.append(std::span(data).subspan(20), 100);  // chunk [20,50)
  const Payload out = buf.slice_out(15, 10);
  ASSERT_EQ(out.size(), 10u);
  for (size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(out[i], static_cast<uint8_t>(15 + i));
  }
}

TEST(SendBuffer, FreeThroughAdvancesBase) {
  SendBuffer buf(0);
  std::vector<uint8_t> data(100);
  for (size_t i = 0; i < 100; ++i) data[i] = static_cast<uint8_t>(i);
  buf.append(data, 100);
  buf.free_through(40);
  EXPECT_EQ(buf.base_seq(), 40u);
  EXPECT_EQ(buf.size(), 60u);
  EXPECT_EQ(buf.slice_out(40, 2), (Payload{40, 41}));
  // Freeing below base is a no-op.
  buf.free_through(10);
  EXPECT_EQ(buf.base_seq(), 40u);
}

// --- ReassemblyQueue -------------------------------------------------------------

Payload fill(uint64_t seq, size_t n) {
  std::vector<uint8_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = static_cast<uint8_t>(seq + i);
  return Payload(out);
}

/// Pops everything that is ready and checks content correctness.
uint64_t drain_and_verify(ReassemblyQueue& q, uint64_t rcv_nxt) {
  while (auto ready = q.pop_ready(rcv_nxt)) {
    EXPECT_EQ(ready->first, rcv_nxt);
    for (size_t i = 0; i < ready->second.size(); ++i) {
      EXPECT_EQ(ready->second[i], static_cast<uint8_t>(rcv_nxt + i));
    }
    rcv_nxt += ready->second.size();
  }
  return rcv_nxt;
}

TEST(ReassemblyQueue, InOrderChunksPopImmediately) {
  ReassemblyQueue q;
  q.insert(0, fill(0, 10));
  EXPECT_EQ(drain_and_verify(q, 0), 10u);
  EXPECT_TRUE(q.empty());
}

TEST(ReassemblyQueue, GapHoldsDataUntilFilled) {
  ReassemblyQueue q;
  q.insert(10, fill(10, 10));
  EXPECT_FALSE(q.pop_ready(0).has_value());
  q.insert(0, fill(0, 10));
  EXPECT_EQ(drain_and_verify(q, 0), 20u);
}

TEST(ReassemblyQueue, OverlapsAreTrimmedFirstArrivalWins) {
  ReassemblyQueue q;
  q.insert(5, fill(5, 10));   // [5,15)
  q.insert(0, fill(0, 10));   // [0,10) -> tail overlaps, trimmed to [0,5)
  q.insert(12, fill(12, 10)); // [12,22) -> head trimmed to [15,22)
  EXPECT_EQ(drain_and_verify(q, 0), 22u);
  EXPECT_EQ(q.ooo_bytes(), 0u);
}

TEST(ReassemblyQueue, ChunkSpanningExistingChunkIsSplit) {
  ReassemblyQueue q;
  q.insert(10, fill(10, 5));  // [10,15)
  q.insert(0, fill(0, 30));   // spans it: [0,10) + [15,30)
  EXPECT_EQ(drain_and_verify(q, 0), 30u);
}

TEST(ReassemblyQueue, ExactDuplicateIsDropped) {
  ReassemblyQueue q;
  q.insert(10, fill(10, 10));
  const size_t before = q.ooo_bytes();
  q.insert(10, fill(10, 10));
  EXPECT_EQ(q.ooo_bytes(), before);
}

TEST(ReassemblyQueue, SackRangesMergeContiguousChunks) {
  ReassemblyQueue q;
  q.insert(10, fill(10, 5));
  q.insert(15, fill(15, 5));  // contiguous with previous
  q.insert(30, fill(30, 5));
  const auto ranges = q.sack_ranges(3);
  ASSERT_EQ(ranges.size(), 2u);
  // Most recent arrival ([30,35)) first, per RFC 2018.
  EXPECT_EQ(ranges[0], (std::pair<uint64_t, uint64_t>{30, 35}));
  EXPECT_EQ(ranges[1], (std::pair<uint64_t, uint64_t>{10, 20}));
}

TEST(ReassemblyQueue, SackRangesRespectLimit) {
  ReassemblyQueue q;
  for (uint64_t i = 0; i < 10; ++i) q.insert(i * 100, fill(i * 100, 10));
  EXPECT_EQ(q.sack_ranges(3).size(), 3u);
}

/// Property: any permutation of segments reassembles to the exact stream.
class ReassemblyShuffle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReassemblyShuffle, RandomArrivalOrderReassemblesExactly) {
  Rng rng(GetParam());
  constexpr size_t kSegments = 200;
  constexpr size_t kSegLen = 17;  // deliberately odd
  std::vector<uint64_t> seqs;
  for (size_t i = 0; i < kSegments; ++i) seqs.push_back(i * kSegLen);
  // Fisher-Yates with our deterministic RNG.
  for (size_t i = seqs.size() - 1; i > 0; --i) {
    std::swap(seqs[i], seqs[rng.next_below(i + 1)]);
  }
  ReassemblyQueue q;
  uint64_t rcv_nxt = 0;
  for (uint64_t seq : seqs) {
    // Occasionally deliver duplicates and overlapping extents.
    q.insert(seq, fill(seq, kSegLen));
    if (rng.chance(0.3)) q.insert(seq, fill(seq, kSegLen));
    if (rng.chance(0.2) && seq >= kSegLen) {
      q.insert(seq - 5, fill(seq - 5, 10));
    }
    rcv_nxt = drain_and_verify(q, rcv_nxt);
  }
  EXPECT_EQ(rcv_nxt, kSegments * kSegLen);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.ooo_bytes(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReassemblyShuffle,
                         ::testing::Range<uint64_t>(1, 21));

// --- RecvQueue -----------------------------------------------------------------

std::vector<uint8_t> seq_bytes(size_t start, size_t n) {
  std::vector<uint8_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = static_cast<uint8_t>(start + i);
  return out;
}

TEST(RecvQueue, ReadCrossesChunkBoundaries) {
  RecvQueue q;
  q.push(Payload(seq_bytes(0, 10)));
  q.push(Payload(seq_bytes(10, 10)));
  q.push(Payload(seq_bytes(20, 10)));
  EXPECT_EQ(q.size(), 30u);
  uint8_t buf[17];
  ASSERT_EQ(q.read(buf), 17u);
  for (size_t i = 0; i < 17; ++i) EXPECT_EQ(buf[i], i);
  EXPECT_EQ(q.size(), 13u);
  ASSERT_EQ(q.read(buf), 13u);  // short read drains the rest
  for (size_t i = 0; i < 13; ++i) EXPECT_EQ(buf[i], 17 + i);
  EXPECT_TRUE(q.empty());
}

TEST(RecvQueue, PeekViewsExposeStoredBytesWithoutCopy) {
  RecvQueue q;
  Payload a(seq_bytes(0, 8));
  Payload b(seq_bytes(8, 8));
  q.push(a);
  q.push(b);
  std::span<const uint8_t> views[4];
  ASSERT_EQ(q.peek_views(views), 2u);
  EXPECT_EQ(views[0].data(), a.data());  // the queue's chunk IS the payload
  EXPECT_EQ(views[1].data(), b.data());
  EXPECT_EQ(views[0].size() + views[1].size(), q.size());
  // A smaller destination gets the front views only.
  std::span<const uint8_t> one[1];
  ASSERT_EQ(q.peek_views(one), 1u);
  EXPECT_EQ(one[0].data(), a.data());
}

TEST(RecvQueue, ConsumeDropsPartialChunksAndKeepsOrder) {
  RecvQueue q;
  q.push(Payload(seq_bytes(0, 10)));
  q.push(Payload(seq_bytes(10, 10)));
  q.consume(4);  // into the first chunk
  EXPECT_EQ(q.size(), 16u);
  uint8_t buf[16];
  ASSERT_EQ(q.read(buf), 16u);
  for (size_t i = 0; i < 16; ++i) EXPECT_EQ(buf[i], 4 + i);
  q.consume(0);  // no-op on empty
  EXPECT_TRUE(q.empty());
}

TEST(RecvQueue, EmptyPushIsIgnoredAndClearResets) {
  RecvQueue q;
  q.push(Payload());
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.chunk_count(), 0u);
  q.push(Payload(seq_bytes(0, 5)));
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace mptcp
