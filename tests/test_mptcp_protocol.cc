// Protocol-level MPTCP tests: what actually goes on the wire during
// handshakes, authentication failure handling, path management, and
// teardown signalling. A sniffer element records traffic for inspection.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "app/bulk_app.h"
#include "app/harness.h"
#include "core/mptcp_stack.h"
#include "middlebox/middlebox.h"

namespace mptcp {
namespace {

/// Records copies of everything that passes, then forwards.
class Sniffer final : public SimpleMiddlebox {
 public:
  std::vector<TcpSegment> log;

 protected:
  void process(TcpSegment seg) override {
    log.push_back(seg);
    emit(std::move(seg));
  }
};

/// Corrupts the MAC of MP_JOIN SYN/ACKs (a blind-spoof stand-in).
class JoinMacCorrupter final : public SimpleMiddlebox {
 public:
  uint64_t corrupted = 0;

 protected:
  void process(TcpSegment seg) override {
    if (auto* mpj = find_option<MpJoinOption>(seg.options)) {
      if (mpj->phase == JoinPhase::kSynAck) {
        mpj->mac ^= 0xdeadbeef;
        ++corrupted;
      }
    }
    emit(std::move(seg));
  }
};

struct Rig2 {
  Rig2(MptcpConfig ccfg, MptcpConfig scfg, size_t paths = 2) {
    rig.add_path(wifi_path());
    if (paths > 1) rig.add_path(threeg_path());
    cs = std::make_unique<MptcpStack>(rig.client(), ccfg);
    ss = std::make_unique<MptcpStack>(rig.server(), scfg);
    ss->listen(80, [this](MptcpConnection& c) {
      if (sconn == nullptr) {
        sconn = &c;
        rx = std::make_unique<BulkReceiver>(c);
      }
    });
  }
  void connect(uint64_t transfer = 100 * 1000) {
    cconn = &cs->connect(rig.client_addr(0), {rig.server_addr(), 80});
    tx = std::make_unique<BulkSender>(*cconn, transfer);
  }
  TwoHostRig rig;
  std::unique_ptr<MptcpStack> cs, ss;
  MptcpConnection* cconn = nullptr;
  MptcpConnection* sconn = nullptr;
  std::unique_ptr<BulkSender> tx;
  std::unique_ptr<BulkReceiver> rx;
};

MptcpConfig cfg1m() {
  MptcpConfig c;
  c.meta_snd_buf_max = c.meta_rcv_buf_max = 1024 * 1024;
  return c;
}

// ---------------------------------------------------------------------------
// Handshake wire format (section 3.1 / 3.2).
// ---------------------------------------------------------------------------

TEST(MptcpWire, HandshakeCarriesKeysAndEcho) {
  Rig2 r(cfg1m(), cfg1m(), 1);
  Sniffer up, down;
  r.rig.splice_up(0, up);
  r.rig.splice_down(0, down);
  r.connect();
  r.rig.loop().run_until(5 * kSecond);

  // SYN: MP_CAPABLE with the client key only.
  ASSERT_FALSE(up.log.empty());
  const auto* syn_mpc = find_option<MpCapableOption>(up.log[0].options);
  ASSERT_TRUE(up.log[0].syn);
  ASSERT_NE(syn_mpc, nullptr);
  ASSERT_TRUE(syn_mpc->sender_key.has_value());
  EXPECT_EQ(*syn_mpc->sender_key, r.cconn->local_key());
  EXPECT_FALSE(syn_mpc->receiver_key.has_value());

  // SYN/ACK: MP_CAPABLE with the server key.
  ASSERT_FALSE(down.log.empty());
  const auto* synack_mpc = find_option<MpCapableOption>(down.log[0].options);
  ASSERT_TRUE(down.log[0].syn && down.log[0].ack_flag);
  ASSERT_NE(synack_mpc, nullptr);
  EXPECT_EQ(*synack_mpc->sender_key, r.sconn->local_key());

  // Third ACK: MP_CAPABLE echo with both keys (section 3.1: repeated
  // until the peer demonstrably has it).
  ASSERT_GE(up.log.size(), 2u);
  const auto* echo = find_option<MpCapableOption>(up.log[1].options);
  ASSERT_NE(echo, nullptr);
  EXPECT_EQ(*echo->sender_key, r.cconn->local_key());
  ASSERT_TRUE(echo->receiver_key.has_value());
  EXPECT_EQ(*echo->receiver_key, r.sconn->local_key());
}

TEST(MptcpWire, TokensAreSha1OfKeys) {
  Rig2 r(cfg1m(), cfg1m(), 1);
  r.connect();
  r.rig.loop().run_until(1 * kSecond);
  EXPECT_EQ(r.cconn->local_token(),
            mptcp_token_from_key(r.cconn->local_key()));
  EXPECT_EQ(r.cconn->remote_token(),
            mptcp_token_from_key(r.sconn->local_key()));
}

TEST(MptcpWire, JoinSynCarriesServerTokenAndFreshNonce) {
  Rig2 r(cfg1m(), cfg1m(), 2);
  Sniffer join_path;
  r.rig.splice_up(1, join_path);
  r.connect();
  r.rig.loop().run_until(2 * kSecond);

  ASSERT_FALSE(join_path.log.empty());
  const TcpSegment& jsyn = join_path.log[0];
  ASSERT_TRUE(jsyn.syn);
  const auto* mpj = find_option<MpJoinOption>(jsyn.options);
  ASSERT_NE(mpj, nullptr);
  EXPECT_EQ(mpj->phase, JoinPhase::kSyn);
  // The token names the *receiver's* (server's) key.
  EXPECT_EQ(mpj->token, r.sconn->local_token());
}

TEST(MptcpWire, DataSegmentsCarryDssWithRelativeMappings) {
  Rig2 r(cfg1m(), cfg1m(), 1);
  Sniffer up;
  r.rig.splice_up(0, up);
  r.connect(50 * 1000);
  r.rig.loop().run_until(5 * kSecond);

  size_t data_segments = 0, with_mapping = 0;
  for (const auto& seg : up.log) {
    if (seg.payload.empty()) continue;
    ++data_segments;
    const auto* dss = find_option<DssOption>(seg.options);
    if (dss == nullptr || !dss->mapping) continue;
    ++with_mapping;
    EXPECT_TRUE(dss->data_ack.has_value());
    // Relative subflow sequence numbers start at 1 (ISN+1 is byte one).
    EXPECT_GE(dss->mapping->ssn_rel, 1u);
    EXPECT_LE(dss->mapping->ssn_rel, 60u * 1000u);
    EXPECT_TRUE(dss->mapping->checksum.has_value());
  }
  EXPECT_GT(data_segments, 10u);
  EXPECT_EQ(data_segments, with_mapping);
}

TEST(MptcpWire, DataFinSignaledInDss) {
  Rig2 r(cfg1m(), cfg1m(), 1);
  Sniffer up;
  r.rig.splice_up(0, up);
  r.connect(10 * 1000);
  r.rig.loop().run_until(5 * kSecond);
  bool saw_data_fin = false;
  for (const auto& seg : up.log) {
    const auto* dss = find_option<DssOption>(seg.options);
    if (dss != nullptr && dss->data_fin) saw_data_fin = true;
  }
  EXPECT_TRUE(saw_data_fin);
  EXPECT_TRUE(r.rx->saw_eof());
}

// ---------------------------------------------------------------------------
// Authentication (section 3.2).
// ---------------------------------------------------------------------------

TEST(MptcpAuth, CorruptedJoinMacRejectsSubflow) {
  Rig2 r(cfg1m(), cfg1m(), 2);
  JoinMacCorrupter corrupter;
  r.rig.splice_down(1, corrupter);
  r.connect(200 * 1000);
  r.rig.loop().run_until(10 * kSecond);

  EXPECT_GT(corrupter.corrupted, 0u);
  // The join was aborted; data still flows on the initial subflow.
  EXPECT_EQ(r.rx->bytes_received(), 200u * 1000u);
  EXPECT_TRUE(r.rx->pattern_ok());
  // The corrupted-MAC subflow must never become usable.
  for (size_t i = 0; i < r.cconn->subflow_count(); ++i) {
    if (r.cconn->subflow(i)->kind() == SubflowKind::kJoinActive) {
      EXPECT_FALSE(r.cconn->subflow(i)->mptcp_usable());
    }
  }
}

TEST(MptcpAuth, JoinToUnknownTokenIsIgnored) {
  // A join SYN whose token matches nothing must not crash or create
  // connections; the stack silently drops it.
  TwoHostRig rig;
  rig.add_path(wifi_path());
  MptcpStack ss(rig.server(), cfg1m());
  size_t accepted = 0;
  ss.listen(80, [&](MptcpConnection&) { ++accepted; });

  TcpSegment syn;
  syn.tuple = {{rig.client_addr(0), 5555}, {rig.server_addr(), 80}};
  syn.syn = true;
  syn.seq = 1000;
  MpJoinOption mpj;
  mpj.phase = JoinPhase::kSyn;
  mpj.token = 0xdeadbeef;
  mpj.nonce = 42;
  syn.options.push_back(mpj);
  rig.server().deliver(syn);
  rig.loop().run_until(1 * kSecond);
  EXPECT_EQ(accepted, 0u);
  EXPECT_EQ(ss.live_connections(), 0u);
}

// ---------------------------------------------------------------------------
// Path management (sections 3.2 / 3.4).
// ---------------------------------------------------------------------------

TEST(MptcpPaths, RemoveAddrClosesMatchingSubflows) {
  Rig2 r(cfg1m(), cfg1m(), 2);
  r.connect(/*continuous*/ 0);
  r.rig.loop().run_until(2 * kSecond);
  ASSERT_EQ(r.cconn->usable_subflow_count(), 2u);

  r.rig.set_path_up(1, false);
  r.cconn->remove_local_address(r.rig.client_addr(1));
  r.rig.loop().run_until(4 * kSecond);

  // Server side dropped its half of the 3G subflow.
  size_t server_open = 0;
  for (size_t i = 0; i < r.sconn->subflow_count(); ++i) {
    if (r.sconn->subflow(i)->state() != TcpState::kClosed) ++server_open;
  }
  EXPECT_EQ(server_open, 1u);
  // And the transfer keeps running on WiFi.
  const uint64_t before = r.rx->bytes_received();
  r.rig.loop().run_until(6 * kSecond);
  EXPECT_GT(r.rx->bytes_received(), before + 500 * 1000);
}

TEST(MptcpPaths, FastcloseAbortsEverything) {
  Rig2 r(cfg1m(), cfg1m(), 2);
  r.connect(0);
  r.rig.loop().run_until(2 * kSecond);
  bool server_closed = false;
  r.sconn->on_closed = [&] { server_closed = true; };
  r.cconn->abort();
  r.rig.loop().run_until(3 * kSecond);
  EXPECT_TRUE(server_closed);
  for (size_t i = 0; i < r.sconn->subflow_count(); ++i) {
    EXPECT_EQ(r.sconn->subflow(i)->state(), TcpState::kClosed);
  }
}

TEST(MptcpPaths, BackupSubflowCarriesNothingWhilePrimaryHealthy) {
  Rig2 r(cfg1m(), cfg1m(), 2);
  r.connect(0);
  r.rig.loop().run_until(500 * kMillisecond);
  // Mark the 3G subflow backup after establishment.
  for (size_t i = 0; i < r.cconn->subflow_count(); ++i) {
    if (r.cconn->subflow(i)->kind() == SubflowKind::kJoinActive) {
      r.cconn->subflow(i)->set_backup(true);
    }
  }
  const uint64_t sent_before =
      r.cconn->subflow(1) ? r.cconn->subflow(1)->stats().bytes_sent : 0;
  r.rig.loop().run_until(5 * kSecond);
  const uint64_t sent_after = r.cconn->subflow(1)->stats().bytes_sent;
  // A healthy primary means the backup gets (almost) nothing new.
  EXPECT_LT(sent_after - sent_before, 100u * 1000u);
}

// ---------------------------------------------------------------------------
// ADD_ADDR with a multihomed server.
// ---------------------------------------------------------------------------

TEST(MptcpPaths, ServerAddAddrTriggersClientJoin) {
  // Custom topology: single-homed client, dual-homed server.
  EventLoop loop;
  Network net;
  Host client(loop, "client"), server(loop, "server");
  const IpAddr caddr(10, 0, 0, 2);
  const IpAddr saddr1(10, 99, 0, 1), saddr2(10, 99, 1, 1);

  LinkConfig lc = wifi_path().up;
  Link up1(loop, lc, "up1"), down1(loop, wifi_path().down, "down1");
  Link up2(loop, threeg_path().up, "up2"),
      down2(loop, threeg_path().down, "down2");
  up1.set_target(&net);
  up2.set_target(&net);
  down1.set_target(&net);
  down2.set_target(&net);

  // Client routes to saddr1 via path 1, to saddr2 via path 2.
  Classifier client_out;
  client_out.add_route(saddr1, &up1);
  client_out.add_route(saddr2, &up2);
  client.add_interface(caddr, &client_out);
  server.add_interface(saddr1, &down1);
  server.add_interface(saddr2, &down2);
  net.attach(caddr, &client);
  net.attach(saddr1, &server);
  net.attach(saddr2, &server);

  MptcpStack cs(client, cfg1m()), ss(server, cfg1m());
  MptcpConnection* sconn = nullptr;
  std::unique_ptr<BulkReceiver> rx;
  ss.listen(80, [&](MptcpConnection& c) {
    sconn = &c;
    rx = std::make_unique<BulkReceiver>(c);
  });
  MptcpConnection& cc = cs.connect(caddr, {saddr1, 80});
  BulkSender tx(cc, 0);
  loop.run_until(5 * kSecond);

  // The server advertised saddr2; the client joined toward it.
  ASSERT_NE(sconn, nullptr);
  EXPECT_EQ(cc.subflow_count(), 2u);
  EXPECT_EQ(cc.usable_subflow_count(), 2u);
  bool has_second = false;
  for (size_t i = 0; i < cc.subflow_count(); ++i) {
    if (cc.subflow(i)->remote().addr == saddr2) has_second = true;
  }
  EXPECT_TRUE(has_second);
  EXPECT_TRUE(rx->pattern_ok());
}

// ---------------------------------------------------------------------------
// Sequence unwrap helper.
// ---------------------------------------------------------------------------

TEST(SeqUnwrap, NearbyValuesResolveCorrectly) {
  EXPECT_EQ(seq_unwrap(1000, 1200), 1200u);
  EXPECT_EQ(seq_unwrap(1000, 800), 800u);
}

TEST(SeqUnwrap, CrossesWrapBoundaryUpward) {
  const uint64_t ref = 0xfffffff0ULL;
  EXPECT_EQ(seq_unwrap(ref, 0x00000010), 0x100000010ULL);
}

TEST(SeqUnwrap, CrossesWrapBoundaryDownward) {
  const uint64_t ref = 0x100000010ULL;
  EXPECT_EQ(seq_unwrap(ref, 0xfffffff0), 0xfffffff0ULL);
}

TEST(SeqUnwrap, DeepIntoStreamStaysMonotonic) {
  uint64_t seq = 0x2fff0000;  // ~800 MB in
  for (int i = 0; i < 1000; ++i) {
    const uint64_t next = seq + 1460;
    EXPECT_EQ(seq_unwrap(seq, seq_wrap(next)), next);
    seq = next;
  }
}

}  // namespace
}  // namespace mptcp
