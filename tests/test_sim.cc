// Simulator substrate tests: event loop semantics, link timing math,
// drop-tail behaviour, routing/demux, and the CPU model.
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_loop.h"
#include "sim/link.h"
#include "sim/network.h"
#include "sim/trace.h"

namespace mptcp {
namespace {

TcpSegment make_seg(size_t payload = 0) {
  TcpSegment seg;
  seg.tuple = {{IpAddr(10, 0, 0, 1), 1}, {IpAddr(10, 0, 0, 2), 2}};
  seg.payload.assign(payload, 0);
  return seg;
}

// --- EventLoop ---------------------------------------------------------------

TEST(EventLoop, FiresInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventLoop, SameTimeFiresInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    loop.schedule_at(100, [&order, i] { order.push_back(i); });
  }
  loop.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool fired = false;
  auto id = loop.schedule_at(10, [&] { fired = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, RunUntilAdvancesTimeWithoutOverrunning) {
  EventLoop loop;
  int count = 0;
  loop.schedule_at(10, [&] { ++count; });
  loop.schedule_at(50, [&] { ++count; });
  loop.run_until(20);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(loop.now(), 20);
  loop.run_until(100);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(loop.now(), 100);
}

TEST(EventLoop, EventsScheduledFromEventsRun) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) loop.schedule_in(10, recurse);
  };
  loop.schedule_in(10, recurse);
  loop.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(loop.now(), 50);
}

TEST(EventLoop, PastTimesClampToNow) {
  EventLoop loop;
  loop.run_until(100);
  SimTime fired_at = -1;
  loop.schedule_at(10, [&] { fired_at = loop.now(); });
  loop.run();
  EXPECT_EQ(fired_at, 100);
}

TEST(Timer, RearmReplacesDeadline) {
  EventLoop loop;
  int fired = 0;
  Timer t(loop, [&] { ++fired; });
  t.arm_in(100);
  t.arm_in(200);  // replaces, does not duplicate
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.now(), 200);
}

TEST(EventLoop, RepeatedTimerRearmKeepsHeapBounded) {
  // Regression: cancel() used to leave the old entry in the priority
  // queue, so RTO-style timers re-armed on every segment grew the heap
  // without bound. Cancelled entries must now be reclaimed.
  EventLoop loop;
  int fired = 0;
  Timer t(loop, [&] { ++fired; });
  for (int i = 0; i < 100000; ++i) {
    t.arm_in(1000 + i);  // each arm cancels the previous deadline
  }
  EXPECT_EQ(loop.pending_count(), 1u);
  EXPECT_LE(loop.heap_size(), 256u);  // dead entries compacted away
  loop.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.pending_count(), 0u);
  EXPECT_FALSE(loop.has_pending());
}

TEST(EventLoop, ScheduleCancelChurnReusesSlots) {
  EventLoop loop;
  bool fired = false;
  for (int i = 0; i < 100000; ++i) {
    auto id = loop.schedule_at(10 + i, [&] { fired = true; });
    loop.cancel(id);
    loop.cancel(id);  // double-cancel is a no-op (generation mismatch)
  }
  EXPECT_EQ(loop.pending_count(), 0u);
  EXPECT_LE(loop.heap_size(), 256u);
  loop.run();
  EXPECT_FALSE(fired);
}

TEST(EventLoop, StaleIdCannotCancelSlotReuser) {
  EventLoop loop;
  bool fired = false;
  auto id = loop.schedule_at(10, [] {});
  loop.cancel(id);
  // The freed slot is reused by the next schedule; the stale id's
  // generation no longer matches, so cancelling it must be a no-op.
  loop.schedule_at(20, [&] { fired = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_TRUE(fired);
}

// --- Link ---------------------------------------------------------------------

struct Collector : PacketSink {
  std::vector<std::pair<SimTime, size_t>> arrivals;
  EventLoop* loop = nullptr;
  void deliver(TcpSegment seg) override {
    arrivals.emplace_back(loop->now(), seg.wire_size());
  }
};

TEST(Link, SerializationPlusPropagationDelay) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.rate_bps = 8e6;  // 1 byte per microsecond
  cfg.prop_delay = 5 * kMillisecond;
  cfg.buffer_bytes = 100000;
  Link link(loop, cfg);
  Collector sink;
  sink.loop = &loop;
  link.set_target(&sink);

  auto seg = make_seg(960);  // wire size 1000 bytes = 1 ms at 8 Mbps
  ASSERT_EQ(seg.wire_size(), 1000u);
  link.deliver(std::move(seg));
  loop.run();
  ASSERT_EQ(sink.arrivals.size(), 1u);
  EXPECT_EQ(sink.arrivals[0].first, 1 * kMillisecond + 5 * kMillisecond);
}

TEST(Link, BackToBackPacketsSpacedBySerialization) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.rate_bps = 8e6;
  cfg.prop_delay = 0;
  cfg.buffer_bytes = 100000;
  Link link(loop, cfg);
  Collector sink;
  sink.loop = &loop;
  link.set_target(&sink);
  for (int i = 0; i < 3; ++i) link.deliver(make_seg(960));
  loop.run();
  ASSERT_EQ(sink.arrivals.size(), 3u);
  EXPECT_EQ(sink.arrivals[1].first - sink.arrivals[0].first,
            1 * kMillisecond);
  EXPECT_EQ(sink.arrivals[2].first - sink.arrivals[1].first,
            1 * kMillisecond);
}

TEST(Link, DropTailWhenBufferFull) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.rate_bps = 8e6;
  cfg.prop_delay = 0;
  cfg.buffer_bytes = 2500;  // fits two 1000-byte frames plus change
  Link link(loop, cfg);
  Collector sink;
  sink.loop = &loop;
  link.set_target(&sink);
  for (int i = 0; i < 5; ++i) link.deliver(make_seg(960));
  loop.run();
  EXPECT_EQ(sink.arrivals.size(), 2u);
  EXPECT_EQ(link.stats().dropped_overflow, 3u);
}

TEST(Link, FirstPacketAdmittedEvenIfBufferTiny) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.buffer_bytes = 10;  // smaller than any frame
  Link link(loop, cfg);
  Collector sink;
  sink.loop = &loop;
  link.set_target(&sink);
  link.deliver(make_seg(960));
  loop.run();
  EXPECT_EQ(sink.arrivals.size(), 1u);
}

TEST(Link, LossIsDeterministicPerSeed) {
  auto run_once = [](uint64_t seed) {
    EventLoop loop;
    LinkConfig cfg;
    cfg.loss_prob = 0.3;
    cfg.loss_seed = seed;
    cfg.buffer_bytes = 1 << 20;
    Link link(loop, cfg);
    Collector sink;
    sink.loop = &loop;
    link.set_target(&sink);
    for (int i = 0; i < 200; ++i) link.deliver(make_seg(100));
    loop.run();
    return sink.arrivals.size();
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));  // overwhelmingly likely
}

TEST(Link, DownLinkDropsEverything) {
  EventLoop loop;
  Link link(loop, LinkConfig{});
  Collector sink;
  sink.loop = &loop;
  link.set_target(&sink);
  link.set_up(false);
  link.deliver(make_seg(100));
  loop.run();
  EXPECT_TRUE(sink.arrivals.empty());
  EXPECT_EQ(link.stats().dropped_down, 1u);
}

TEST(Link, BufferForDelayHelper) {
  // 8 Mbps * 80 ms = 80 KB.
  EXPECT_EQ(LinkConfig::buffer_for_delay(8e6, 80 * kMillisecond), 80000u);
}

// --- Host / Network -----------------------------------------------------------

struct RecordingHandler : SegmentHandler {
  std::vector<TcpSegment> got;
  void on_segment(const TcpSegment& seg) override { got.push_back(seg); }
};

struct RecordingListener : ListenHandler {
  std::vector<TcpSegment> syns;
  void on_syn(const TcpSegment& seg) override { syns.push_back(seg); }
};

TEST(Host, DemuxesByFourTupleThenListener) {
  EventLoop loop;
  Host host(loop, "h");
  RecordingHandler conn;
  RecordingListener listener;
  const Endpoint local{IpAddr(10, 0, 0, 1), 80};
  const Endpoint remote{IpAddr(10, 0, 0, 9), 1234};
  host.bind(local, remote, &conn);
  host.listen(80, &listener);

  TcpSegment for_conn = make_seg(1);
  for_conn.tuple = {remote, local};
  host.deliver(for_conn);

  TcpSegment new_syn = make_seg(0);
  new_syn.syn = true;
  new_syn.tuple = {{IpAddr(10, 0, 0, 7), 555}, local};
  host.deliver(new_syn);

  loop.run();
  EXPECT_EQ(conn.got.size(), 1u);
  EXPECT_EQ(listener.syns.size(), 1u);
}

TEST(Host, SendRoutesBySourceAddressAndHonoursDown) {
  EventLoop loop;
  Host host(loop, "h");
  NullSink a, b;
  host.add_interface(IpAddr(10, 0, 0, 1), &a);
  host.add_interface(IpAddr(10, 0, 1, 1), &b);

  TcpSegment via_b = make_seg(0);
  via_b.tuple.src = {IpAddr(10, 0, 1, 1), 1};
  host.send(via_b);
  EXPECT_EQ(b.dropped(), 1u);
  EXPECT_EQ(a.dropped(), 0u);

  host.set_interface_up(IpAddr(10, 0, 1, 1), false);
  host.send(via_b);
  EXPECT_EQ(b.dropped(), 1u);  // not delivered
  EXPECT_EQ(host.send_drops(), 1u);
}

TEST(Host, CpuModelSerializesProcessing) {
  EventLoop loop;
  Host host(loop, "h");
  Host::CpuConfig cpu;
  cpu.per_segment = 10 * kMicrosecond;
  host.set_cpu(cpu);

  RecordingHandler conn;
  std::vector<SimTime> times;
  struct TimedHandler : SegmentHandler {
    EventLoop* loop;
    std::vector<SimTime>* times;
    void on_segment(const TcpSegment&) override {
      times->push_back(loop->now());
    }
  } timed;
  timed.loop = &loop;
  timed.times = &times;
  const Endpoint local{IpAddr(10, 0, 0, 1), 80};
  const Endpoint remote{IpAddr(10, 0, 0, 9), 1234};
  host.bind(local, remote, &timed);

  for (int i = 0; i < 3; ++i) {
    TcpSegment seg = make_seg(0);
    seg.tuple = {remote, local};
    host.deliver(seg);
  }
  loop.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], 10 * kMicrosecond);
  EXPECT_EQ(times[1], 20 * kMicrosecond);
  EXPECT_EQ(times[2], 30 * kMicrosecond);
}

TEST(Classifier, RoutesByDestinationWithDefault) {
  NullSink a, b, dflt;
  Classifier c;
  c.add_route(IpAddr(10, 0, 0, 1), &a);
  c.add_route(IpAddr(10, 0, 0, 2), &b);
  c.set_default(&dflt);

  TcpSegment to_a = make_seg(0);
  to_a.tuple.dst.addr = IpAddr(10, 0, 0, 1);
  c.deliver(to_a);
  TcpSegment elsewhere = make_seg(0);
  elsewhere.tuple.dst.addr = IpAddr(1, 2, 3, 4);
  c.deliver(elsewhere);

  EXPECT_EQ(a.dropped(), 1u);
  EXPECT_EQ(b.dropped(), 0u);
  EXPECT_EQ(dflt.dropped(), 1u);
}

// --- Trace utilities -----------------------------------------------------------

TEST(Trace, DistributionStatistics) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) d.add(i);
  EXPECT_DOUBLE_EQ(d.mean(), 50.5);
  EXPECT_EQ(d.min(), 1);
  EXPECT_EQ(d.max(), 100);
  EXPECT_NEAR(d.percentile(0.5), 51, 1);
  const auto h = d.histogram(0, 100, 10);
  double total = 0;
  for (double f : h) total += f;
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Trace, TimeSeriesMeanAfterSkipsWarmup) {
  TimeSeries ts;
  ts.record(0, 100);
  ts.record(10, 1);
  ts.record(20, 3);
  EXPECT_DOUBLE_EQ(ts.mean_after(5), 2.0);
}

TEST(Trace, PeriodicSamplerTicksAtPeriod) {
  EventLoop loop;
  std::vector<SimTime> ticks;
  PeriodicSampler sampler(loop, 10, [&](SimTime t) { ticks.push_back(t); });
  loop.run_until(35);
  sampler.stop();
  EXPECT_EQ(ticks, (std::vector<SimTime>{10, 20, 30}));
}

}  // namespace
}  // namespace mptcp
