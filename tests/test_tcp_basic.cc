// End-to-end tests of the plain TCP stack over the simulator.
#include <gtest/gtest.h>

#include <memory>

#include "app/bulk_app.h"
#include "app/harness.h"
#include "tcp/tcp_connection.h"

namespace mptcp {
namespace {

/// Spawns a passive TCP endpoint per SYN and runs a bulk transfer from
/// client to server.
struct TcpBulkFixture {
  explicit TcpBulkFixture(const PathSpec& path, TcpConfig cfg = {},
                          uint64_t total = 0) {
    path_idx = rig.add_path(path);
    server_listener = std::make_unique<TcpListener>(
        rig.server(), kPort, [this, cfg](const TcpSegment& syn) {
          server_conn = std::make_unique<TcpConnection>(
              rig.server(), cfg, syn.tuple.dst, syn.tuple.src);
          receiver = std::make_unique<BulkReceiver>(*server_conn);
          server_conn->accept_syn(syn);
        });
    client_conn = std::make_unique<TcpConnection>(
        rig.client(), cfg, Endpoint{rig.client_addr(path_idx), 40000},
        Endpoint{rig.server_addr(), kPort});
    sender = std::make_unique<BulkSender>(*client_conn, total);
    client_conn->connect();
  }

  static constexpr Port kPort = 80;
  TwoHostRig rig;
  size_t path_idx;
  std::unique_ptr<TcpListener> server_listener;
  std::unique_ptr<TcpConnection> client_conn;
  std::unique_ptr<TcpConnection> server_conn;
  std::unique_ptr<BulkSender> sender;
  std::unique_ptr<BulkReceiver> receiver;
};

TEST(TcpBasic, HandshakeEstablishesBothEnds) {
  TcpBulkFixture f(wifi_path(), {}, 1000);
  f.rig.loop().run_until(200 * kMillisecond);
  ASSERT_NE(f.server_conn, nullptr);
  EXPECT_GE(f.receiver->bytes_received(), 1000u);
}

TEST(TcpBasic, TransfersExactByteCountWithIntegrity) {
  TcpBulkFixture f(wifi_path(), {}, 300 * 1000);
  f.rig.loop().run_until(3 * kSecond);
  ASSERT_NE(f.receiver, nullptr);
  EXPECT_EQ(f.receiver->bytes_received(), 300u * 1000u);
  EXPECT_TRUE(f.receiver->pattern_ok());
  EXPECT_TRUE(f.receiver->saw_eof());
}

TEST(TcpBasic, GracefulCloseReachesClosedOnBothEnds) {
  TcpBulkFixture f(wifi_path(), {}, 10 * 1000);
  // Server closes its direction once it has seen EOF.
  f.rig.loop().run_until(1 * kSecond);
  ASSERT_TRUE(f.receiver->saw_eof());
  f.server_conn->close();
  f.rig.loop().run_until(3 * kSecond);
  EXPECT_EQ(f.client_conn->state(), TcpState::kClosed);
  EXPECT_EQ(f.server_conn->state(), TcpState::kClosed);
}

TEST(TcpBasic, GoodputApproachesLinkRateOnWifi) {
  TcpConfig cfg;
  cfg.snd_buf_max = cfg.rcv_buf_max = 256 * 1024;
  TcpBulkFixture f(wifi_path(), cfg, 0);
  f.rig.loop().run_until(1 * kSecond);
  const uint64_t at_1s = f.receiver->bytes_received();
  f.rig.loop().run_until(11 * kSecond);
  const double bps =
      static_cast<double>(f.receiver->bytes_received() - at_1s) * 8.0 / 10.0;
  // 8 Mbps link; expect at least 85% utilization.
  EXPECT_GT(bps, 0.85 * 8e6);
  EXPECT_LT(bps, 8e6);
}

TEST(TcpBasic, GoodputOn3GIsRttLimitedWithSmallBuffer) {
  TcpConfig cfg;
  cfg.snd_buf_max = cfg.rcv_buf_max = 16 * 1024;  // ~0.43 BDP of 3G
  TcpBulkFixture f(threeg_path(), cfg, 0);
  f.rig.loop().run_until(11 * kSecond);
  const double bps =
      static_cast<double>(f.receiver->bytes_received()) * 8.0 / 11.0;
  // Window-limited: 16KB / 150ms ~ 0.87 Mbps, far below the 2 Mbps line.
  EXPECT_LT(bps, 1.2e6);
  EXPECT_GT(bps, 0.4e6);
}

TEST(TcpBasic, SurvivesRandomLoss) {
  PathSpec lossy = wifi_path();
  lossy.up.loss_prob = 0.01;
  lossy.down.loss_prob = 0.01;
  TcpBulkFixture f(lossy, {}, 500 * 1000);
  f.rig.loop().run_until(20 * kSecond);
  EXPECT_EQ(f.receiver->bytes_received(), 500u * 1000u);
  EXPECT_TRUE(f.receiver->pattern_ok());
  EXPECT_GT(f.client_conn->stats().retransmits, 0u);
}

TEST(TcpBasic, FastRetransmitPreferredOverTimeoutAtLowLoss) {
  PathSpec lossy = wifi_path();
  lossy.up.loss_prob = 0.005;
  TcpBulkFixture f(lossy, {}, 2 * 1000 * 1000);
  f.rig.loop().run_until(30 * kSecond);
  ASSERT_EQ(f.receiver->bytes_received(), 2000u * 1000u);
  EXPECT_GT(f.client_conn->stats().fast_retransmits, 0u);
  // Most recoveries should avoid the RTO.
  EXPECT_GT(f.client_conn->stats().fast_retransmits,
            f.client_conn->stats().timeouts);
}

TEST(TcpBasic, ZeroWindowThenPersistProbeRecovers) {
  // Receiver app never reads -> window closes; then it starts reading.
  TwoHostRig rig;
  const size_t p = rig.add_path(wifi_path());
  TcpConfig cfg;
  cfg.rcv_buf_max = 20 * 1000;
  cfg.snd_buf_max = 200 * 1000;
  std::unique_ptr<TcpConnection> server_conn;
  TcpListener listener(rig.server(), 80, [&](const TcpSegment& syn) {
    server_conn = std::make_unique<TcpConnection>(rig.server(), cfg,
                                                  syn.tuple.dst, syn.tuple.src);
    server_conn->accept_syn(syn);
  });
  TcpConnection client(rig.client(), cfg, Endpoint{rig.client_addr(p), 40000},
                       Endpoint{rig.server_addr(), 80});
  BulkSender sender(client, 100 * 1000);
  client.connect();

  rig.loop().run_until(2 * kSecond);
  ASSERT_NE(server_conn, nullptr);
  // Window must be exhausted: receiver holds ~rcv_buf of unread data.
  EXPECT_GE(server_conn->readable_bytes(), 19u * 1000u);
  EXPECT_LT(server_conn->readable_bytes(), 100u * 1000u);

  // Now drain everything.
  uint64_t total_read = 0;
  uint8_t buf[4096];
  PeriodicSampler reader(rig.loop(), 5 * kMillisecond, [&](SimTime) {
    for (;;) {
      const size_t n = server_conn->read(buf);
      total_read += n;
      if (n == 0) break;
    }
  });
  rig.loop().run_until(10 * kSecond);
  EXPECT_EQ(total_read, 100u * 1000u);
}

TEST(TcpBasic, AbortSendsRstAndPeerCloses) {
  TcpBulkFixture f(wifi_path(), {}, 0);
  f.rig.loop().run_until(500 * kMillisecond);
  ASSERT_NE(f.server_conn, nullptr);
  bool closed = false;
  f.server_conn->on_closed = [&] { closed = true; };
  f.client_conn->abort();
  f.rig.loop().run_until(1 * kSecond);
  EXPECT_TRUE(closed);
  EXPECT_EQ(f.server_conn->state(), TcpState::kClosed);
}

TEST(TcpBasic, BidirectionalTransfer) {
  TwoHostRig rig;
  const size_t p = rig.add_path(wifi_path());
  TcpConfig cfg;
  std::unique_ptr<TcpConnection> server_conn;
  std::unique_ptr<BulkReceiver> srv_rx;
  std::unique_ptr<BulkSender> srv_tx;
  TcpListener listener(rig.server(), 80, [&](const TcpSegment& syn) {
    server_conn = std::make_unique<TcpConnection>(rig.server(), cfg,
                                                  syn.tuple.dst, syn.tuple.src);
    srv_rx = std::make_unique<BulkReceiver>(*server_conn);
    srv_tx = std::make_unique<BulkSender>(*server_conn, 200 * 1000);
    server_conn->accept_syn(syn);
  });
  TcpConnection client(rig.client(), cfg, Endpoint{rig.client_addr(p), 40000},
                       Endpoint{rig.server_addr(), 80});
  BulkReceiver cli_rx(client);
  BulkSender cli_tx(client, 200 * 1000);
  client.connect();
  rig.loop().run_until(5 * kSecond);
  EXPECT_EQ(cli_rx.bytes_received(), 200u * 1000u);
  EXPECT_EQ(srv_rx->bytes_received(), 200u * 1000u);
  EXPECT_TRUE(cli_rx.pattern_ok());
  EXPECT_TRUE(srv_rx->pattern_ok());
}

TEST(TcpBasic, SynRetransmissionEstablishesOnLossySyns) {
  PathSpec p = wifi_path();
  p.up.loss_prob = 0.9;  // most SYNs die; retries must get through
  TcpBulkFixture f(p, {}, 1000);
  // After establishment remove the loss so data flows.
  f.rig.loop().schedule_in(10 * kSecond,
                           [&] { f.rig.up_link(0).set_loss_prob(0.0); });
  f.rig.loop().run_until(60 * kSecond);
  EXPECT_TRUE(f.client_conn->established() ||
              f.client_conn->state() == TcpState::kFinWait1 ||
              f.client_conn->state() == TcpState::kFinWait2 ||
              f.client_conn->state() == TcpState::kTimeWait ||
              f.client_conn->state() == TcpState::kClosed);
  ASSERT_NE(f.receiver, nullptr);
  EXPECT_GE(f.receiver->bytes_received(), 1000u);
}

}  // namespace
}  // namespace mptcp
