// Shared TCP definitions: states, sequence arithmetic, configuration.
//
// Internally the stack tracks sequence numbers as unwrapped 64-bit values
// (so multi-gigabyte transfers and MPTCP mapping bookkeeping never worry
// about 32-bit wrap); the 32-bit wire form is produced/consumed only at
// segment build/parse boundaries.
#pragma once

#include <cstdint>
#include <string_view>

#include "sim/event_loop.h"

namespace mptcp {

enum class TcpState : uint8_t {
  kClosed,
  kListen,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kClosing,
  kLastAck,
  kTimeWait,
};

std::string_view to_string(TcpState s);

/// 32-bit wrap-aware comparisons (RFC 793 style).
inline bool seq32_lt(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a - b) < 0;
}
inline bool seq32_leq(uint32_t a, uint32_t b) {
  return static_cast<int32_t>(a - b) <= 0;
}

/// Reconstructs the unwrapped 64-bit value of a 32-bit wire sequence
/// number, choosing the candidate closest to `ref` (a nearby unwrapped
/// value such as rcv_nxt or snd_una).
inline uint64_t seq_unwrap(uint64_t ref, uint32_t wire) {
  const uint64_t base = ref & ~uint64_t{0xffffffff};
  uint64_t best = base | wire;
  // Consider the neighbouring 2^32 epochs and pick the closest.
  const uint64_t candidates[3] = {best - 0x100000000ULL, best,
                                  best + 0x100000000ULL};
  uint64_t best_dist = ~uint64_t{0};
  for (uint64_t c : candidates) {
    if (c > 0xffffffffffffffffULL - 0x100000000ULL) continue;
    const uint64_t d = c > ref ? c - ref : ref - c;
    if (d < best_dist) {
      best_dist = d;
      best = c;
    }
  }
  return best;
}

inline uint32_t seq_wrap(uint64_t seq) {
  return static_cast<uint32_t>(seq & 0xffffffff);
}

/// Endpoint configuration knobs (sysctl-style defaults).
struct TcpConfig {
  uint32_t mss = 1460;  ///< maximum payload bytes per segment

  // Buffer sizing. When autotuning is on, buffers start at the initial
  // size and grow on demand up to the maximum; otherwise they are fixed at
  // the maximum.
  size_t snd_buf_max = 256 * 1024;
  size_t rcv_buf_max = 256 * 1024;
  bool autotune = false;
  size_t buf_initial = 16 * 1024;

  bool window_scale = true;
  bool timestamps = true;
  bool sack = true;

  /// Delayed ACKs (RFC 1122): ACK every second in-order segment or after
  /// `delack_timeout`; out-of-order, duplicate and FIN segments are ACKed
  /// immediately so loss recovery is never delayed.
  bool delayed_ack = true;
  SimTime delack_timeout = 40 * kMillisecond;

  SimTime min_rto = 200 * kMillisecond;
  SimTime initial_rto = 1 * kSecond;
  SimTime max_rto = 60 * kSecond;
  SimTime time_wait = 60 * kMillisecond;  ///< shortened 2*MSL for simulation
  int max_syn_retries = 6;
  /// Consecutive retransmission timeouts before the connection is
  /// declared dead (Linux tcp_retries2-style bound, sized for simulation).
  int max_data_retries = 10;

  /// After this many unanswered SYNs carrying new TCP options, retransmit
  /// without them (section 3.1: "follow the retransmitted SYN with one
  /// that omits MP_CAPABLE").
  int syn_option_fallback_after = 2;

  /// Initial congestion window in segments (RFC 6928 default).
  uint32_t initial_cwnd_segments = 10;

  uint64_t seed = 42;  ///< for ISN / key / nonce generation
};

}  // namespace mptcp
