#include "tcp/tcp_connection.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace mptcp {

namespace {

/// Chooses a window-scale shift so that `buf_max` is representable.
uint8_t choose_wscale(size_t buf_max) {
  uint8_t shift = 0;
  while (shift < 14 && (uint64_t{65535} << shift) < buf_max) ++shift;
  return shift;
}

}  // namespace

std::string_view to_string(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kListen: return "LISTEN";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynReceived: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

TcpConnection::TcpConnection(Host& host, TcpConfig config, Endpoint local,
                             Endpoint remote,
                             std::unique_ptr<CongestionControl> cc)
    : host_(host),
      config_(config),
      local_(local),
      remote_(remote),
      rng_(config.seed ^ std::hash<FourTuple>{}(FourTuple{local, remote})),
      cc_(cc ? std::move(cc) : std::make_unique<NewRenoCc>()),
      rtt_(config.initial_rto, config.min_rto, config.max_rto),
      rto_timer_(host.loop(), [this] { on_rto(); }),
      persist_timer_(host.loop(), [this] { on_persist(); }),
      time_wait_timer_(host.loop(), [this] { finish_close(false); }),
      delack_timer_(host.loop(), [this] {
        if (delack_pending_ > 0) send_ack();
      }) {
  cc_->init(config_.mss, config_.initial_cwnd_segments);
  snd_buf_capacity_ = config_.autotune ? config_.buf_initial
                                       : config_.snd_buf_max;
  rcv_buf_capacity_ = config_.autotune ? config_.buf_initial
                                       : config_.rcv_buf_max;

  StatsRegistry& reg = host_.loop().stats();
  ct_segments_sent_ = &reg.counter("tcp.segments_sent");
  ct_segments_received_ = &reg.counter("tcp.segments_received");
  ct_retransmits_ = &reg.counter("tcp.retransmits");
  ct_fast_retransmits_ = &reg.counter("tcp.fast_retransmits");
  ct_rto_firings_ = &reg.counter("tcp.rto_firings");
  ct_persist_probes_ = &reg.counter("tcp.persist_probes");
  ct_rwnd_stalls_ = &reg.counter("tcp.rwnd_stalls");
  hist_cwnd_ = &reg.histogram("tcp.cwnd_bytes");
  hist_ssthresh_ = &reg.histogram("tcp.ssthresh_bytes");
}

TcpConnection::~TcpConnection() {
  if (bound_) host_.unbind(local_, remote_);
}

// --------------------------------------------------------------------------
// Opening.
// --------------------------------------------------------------------------

void TcpConnection::connect() {
  assert(state_ == TcpState::kClosed);
  active_open_ = true;
  iss_ = rng_.next_u32();
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;  // SYN occupies one
  snd_max_ = snd_nxt_;
  snd_buf_.reset(iss_ + 1);
  host_.bind(local_, remote_, this);
  bound_ = true;
  enter_state(TcpState::kSynSent);
  rtt_sample_pending_ = true;
  rtt_sample_end_seq_ = snd_nxt_;
  rtt_sample_sent_at_ = loop().now();
  send_syn(/*with_options=*/true);
  rto_timer_.arm_in(rtt_.rto());
}

void TcpConnection::accept_syn(const TcpSegment& syn) {
  assert(state_ == TcpState::kClosed);
  assert(syn.syn && !syn.ack_flag);
  active_open_ = false;
  host_.charge_cpu(syn_processing_cost());
  irs_ = syn.seq;  // epoch 0 of the unwrapped space
  rcv_nxt_ = irs_ + 1;
  iss_ = rng_.next_u32();
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  snd_max_ = snd_nxt_;
  snd_buf_.reset(iss_ + 1);
  snd_wnd_ = syn.window;  // unscaled on SYN

  if (const auto* mss = find_option<MssOption>(syn.options)) {
    config_.mss = std::min(config_.mss, uint32_t{mss->mss});
    cc_->init(config_.mss, config_.initial_cwnd_segments);
  }
  if (const auto* ws = find_option<WindowScaleOption>(syn.options);
      ws != nullptr && config_.window_scale) {
    snd_wscale_ = ws->shift;
    rcv_wscale_ = choose_wscale(config_.rcv_buf_max);
    ws_negotiated_ = true;
  }
  if (const auto* ts = find_option<TimestampOption>(syn.options)) {
    ts_recent_ = ts->tsval;
  }
  sack_ok_ = config_.sack &&
             find_option<SackPermittedOption>(syn.options) != nullptr;

  host_.bind(local_, remote_, this);
  bound_ = true;
  enter_state(TcpState::kSynReceived);
  process_incoming_options(syn);
  send_synack();
  rto_timer_.arm_in(rtt_.rto());
}

void TcpConnection::send_syn(bool with_options) {
  TcpSegment seg;
  seg.tuple = {local_, remote_};
  seg.seq = seq_wrap(iss_);
  seg.syn = true;
  seg.window = static_cast<uint16_t>(
      std::min<uint64_t>(65535, rcv_buf_capacity_));
  seg.options.push_back(MssOption{static_cast<uint16_t>(config_.mss)});
  if (config_.window_scale) {
    rcv_wscale_ = choose_wscale(config_.rcv_buf_max);
    seg.options.push_back(WindowScaleOption{rcv_wscale_});
  }
  if (config_.sack) seg.options.push_back(SackPermittedOption{});
  if (config_.timestamps) {
    seg.options.push_back(TimestampOption{current_tsval(), 0});
  }
  if (with_options) build_syn_options(seg.options);
  send_segment(std::move(seg));
}

void TcpConnection::send_synack() {
  TcpSegment seg;
  seg.tuple = {local_, remote_};
  seg.seq = seq_wrap(iss_);
  seg.ack = seq_wrap(rcv_nxt_);
  seg.syn = true;
  seg.ack_flag = true;
  seg.window = static_cast<uint16_t>(
      std::min<uint64_t>(65535, rcv_buf_capacity_));
  seg.options.push_back(MssOption{static_cast<uint16_t>(config_.mss)});
  if (ws_negotiated_) {
    seg.options.push_back(WindowScaleOption{rcv_wscale_});
  }
  if (sack_ok_) seg.options.push_back(SackPermittedOption{});
  if (config_.timestamps) {
    seg.options.push_back(TimestampOption{current_tsval(), ts_recent_});
  }
  // Subclasses see the original SYN via the stash made in accept_syn's
  // process_incoming_options; they only need to append their options here.
  build_synack_options(seg.options, TcpSegment{});
  send_segment(std::move(seg));
}

// --------------------------------------------------------------------------
// Application API.
// --------------------------------------------------------------------------

size_t TcpConnection::write(std::span<const uint8_t> bytes) {
  if (fin_pending_ || fin_sent_) return 0;
  const size_t n = snd_buf_.append(bytes, snd_buf_capacity_);
  try_send();
  return n;
}

size_t TcpConnection::write_shared(Payload bytes) {
  if (fin_pending_ || fin_sent_) return 0;
  const size_t n = snd_buf_.append_shared(std::move(bytes), snd_buf_capacity_);
  try_send();
  return n;
}

size_t TcpConnection::read(std::span<uint8_t> out) {
  const size_t n = app_rx_.read(out);
  if (n > 0) maybe_send_window_update();
  return n;
}

void TcpConnection::consume(size_t n) {
  n = std::min(n, app_rx_.size());
  if (n == 0) return;
  app_rx_.consume(n);
  maybe_send_window_update();
}

void TcpConnection::close() {
  if (fin_pending_ || fin_sent_) return;
  if (state_ == TcpState::kClosed || state_ == TcpState::kSynSent) {
    finish_close(false);
    return;
  }
  fin_pending_ = true;
  try_send();
}

void TcpConnection::abort() {
  if (state_ == TcpState::kClosed) return;
  send_rst();
  finish_close(true);
}

void TcpConnection::send_rst() {
  TcpSegment seg;
  seg.tuple = {local_, remote_};
  seg.seq = seq_wrap(snd_nxt_);
  seg.ack = seq_wrap(rcv_nxt_);
  seg.ack_flag = true;
  seg.rst = true;
  send_segment(std::move(seg));
}

// --------------------------------------------------------------------------
// Segment arrival.
// --------------------------------------------------------------------------

void TcpConnection::on_segment(const TcpSegment& seg) {
  ++stats_.segments_received;
  ct_segments_received_->inc();
  if (state_ == TcpState::kClosed) return;

  if (const auto* ts = find_option<TimestampOption>(seg.options)) {
    ts_recent_ = ts->tsval;
    if (ts->tsecr != 0 && !seg.payload.empty()) {
      // Receiver-side RTT: our tsval came back on a data segment.
      const SimTime sample =
          loop().now() - static_cast<SimTime>(ts->tsecr - 1) * kMicrosecond;
      if (sample > 0 && sample < 10 * kSecond) {
        rcv_rtt_ = rcv_rtt_ == 0 ? sample : (3 * rcv_rtt_ + sample) / 4;
      }
    }
  }

  switch (state_) {
    case TcpState::kSynSent:
      handle_syn_sent(seg);
      return;
    case TcpState::kSynReceived:
      handle_syn_received(seg);
      return;
    default:
      handle_synchronized(seg);
      return;
  }
}

void TcpConnection::handle_syn_sent(const TcpSegment& seg) {
  if (seg.rst) {
    if (seg.ack_flag && seq_unwrap(snd_nxt_, seg.ack) == snd_nxt_) {
      finish_close(true);
    }
    return;
  }
  if (!seg.syn || !seg.ack_flag) return;
  if (seq_unwrap(snd_nxt_, seg.ack) != snd_nxt_) return;  // bogus ack

  irs_ = seg.seq;
  rcv_nxt_ = irs_ + 1;
  snd_una_ = snd_nxt_;
  snd_wnd_ = seg.window;  // unscaled on SYN/ACK
  snd_wl1_ = irs_;
  snd_wl2_ = snd_una_;

  if (const auto* mss = find_option<MssOption>(seg.options)) {
    config_.mss = std::min(config_.mss, uint32_t{mss->mss});
    cc_->init(config_.mss, config_.initial_cwnd_segments);
  }
  if (const auto* ws = find_option<WindowScaleOption>(seg.options);
      ws != nullptr && config_.window_scale) {
    snd_wscale_ = ws->shift;
    // rcv_wscale_ already chosen when the SYN was built.
  } else {
    snd_wscale_ = 0;
    rcv_wscale_ = 0;
  }
  sack_ok_ = config_.sack &&
             find_option<SackPermittedOption>(seg.options) != nullptr;

  rto_timer_.cancel();
  if (rtt_sample_pending_) {
    rtt_.add_sample(loop().now() - rtt_sample_sent_at_);  // handshake RTT
    rtt_sample_pending_ = false;
  }

  enter_state(TcpState::kEstablished);
  process_incoming_options(seg);  // MP_CAPABLE on the SYN/ACK
  if (state_ == TcpState::kClosed) return;  // options handler aborted us
  send_ack();                     // third ACK (carries subclass options)
  on_established();
  if (on_connected) on_connected();
  try_send();
}

void TcpConnection::handle_syn_received(const TcpSegment& seg) {
  if (seg.rst) {
    finish_close(true);
    return;
  }
  if (seg.syn && !seg.ack_flag) {
    // Retransmitted SYN: our SYN/ACK was lost.
    send_synack();
    return;
  }
  if (!seg.ack_flag) return;
  if (seq_unwrap(snd_nxt_, seg.ack) != snd_nxt_) return;

  snd_una_ = snd_nxt_;
  snd_wnd_ = uint64_t{seg.window} << snd_wscale_;
  snd_wl1_ = seq_unwrap(rcv_nxt_, seg.seq);
  snd_wl2_ = snd_una_;
  rto_timer_.cancel();

  enter_state(TcpState::kEstablished);
  process_incoming_options(seg);  // third-ACK options
  if (state_ == TcpState::kClosed) return;  // options handler aborted us
  on_established();
  if (on_connected) on_connected();

  // The third ACK may carry data; process it through the normal path
  // (options were already consumed above, so bypass double-processing by
  // handling payload/FIN directly).
  if (!seg.payload.empty() || seg.fin) {
    process_payload(seg);
  }
  try_send();
}

void TcpConnection::handle_synchronized(const TcpSegment& seg) {
  if (seg.rst) {
    reset_from_peer();
    return;
  }
  if (seg.syn && seg.ack_flag && state_ == TcpState::kEstablished &&
      !active_open_) {
    // Our third-ACK was lost and the peer retransmitted the SYN/ACK
    // (passive side never does this) -- or, on the active side, the
    // SYN/ACK was duplicated. Re-ack it.
    send_ack();
    return;
  }

  process_incoming_options(seg);
  if (state_ == TcpState::kClosed) return;  // options handler aborted us
  if (seg.ack_flag) process_ack(seg);
  if (state_ == TcpState::kClosed) return;
  if (!seg.payload.empty() || seg.fin) {
    process_payload(seg);
  }
}

uint64_t TcpConnection::merge_sack_blocks(const SackOption& sack) {
  uint64_t newly = 0;
  for (const auto& blk : sack.blocks) {
    uint64_t b = seq_unwrap(snd_una_, blk.begin);
    uint64_t e = seq_unwrap(snd_una_, blk.end);
    if (e <= b) continue;
    b = std::max(b, snd_una_);
    e = std::min(e, snd_max_);
    if (e <= b) continue;
    // Insert [b, e), merging with existing ranges.
    uint64_t absorbed = 0;
    auto it = sacked_.upper_bound(b);
    if (it != sacked_.begin()) {
      auto prev = std::prev(it);
      if (prev->second >= b) {
        b = prev->first;
        e = std::max(e, prev->second);
        absorbed += prev->second - prev->first;
        sacked_.erase(prev);
      }
    }
    it = sacked_.lower_bound(b);
    while (it != sacked_.end() && it->first <= e) {
      e = std::max(e, it->second);
      absorbed += it->second - it->first;
      it = sacked_.erase(it);
    }
    sacked_.emplace(b, e);
    sacked_bytes_ += (e - b) - absorbed;
    newly += (e - b) - absorbed;
    high_sacked_ = std::max(high_sacked_, e);
  }
  return newly;
}

void TcpConnection::sack_retransmit() {
  // RFC 6675-style hole filling: retransmit unsacked runs below the
  // highest sacked sequence while the pipe has room. At least one
  // retransmission is always attempted per invocation so recovery keeps
  // making progress even when the window has been squeezed (e.g. by
  // MPTCP's penalization mechanism).
  int guard = 1024;
  bool first = true;
  while ((first || cc_flight() < cc_->cwnd()) && --guard > 0) {
    first = false;
    uint64_t hole = std::max(snd_una_, rtx_next_hint_);
    // Skip over sacked ranges.
    for (;;) {
      auto it = sacked_.upper_bound(hole);
      if (it == sacked_.begin()) break;
      auto prev = std::prev(it);
      if (prev->second > hole) {
        hole = prev->second;
      } else {
        break;
      }
    }
    if (hole >= high_sacked_ || hole >= snd_buf_.end_seq()) return;
    // Hole extends to the next sacked range (or high_sacked_).
    auto next = sacked_.lower_bound(hole);
    const uint64_t hole_end =
        next != sacked_.end() ? next->first : high_sacked_;
    size_t len = static_cast<size_t>(std::min<uint64_t>(
        {config_.mss, hole_end - hole, snd_buf_.end_seq() - hole}));
    len = clamp_segment_len(hole, len);
    if (len == 0) return;
    send_data_segment(hole, len, /*retransmission=*/true);
    rtx_next_hint_ = hole + len;
  }
}

void TcpConnection::process_ack(const TcpSegment& seg) {
  const uint64_t ack64 = seq_unwrap(snd_una_, seg.ack);
  // Validate against the highest sequence ever sent (snd_max), not
  // snd_nxt: after a timeout's go-back-N rollback, ACKs for data sent
  // before the rollback are still perfectly valid.
  if (ack64 > snd_max_) {
    send_ack();  // acks data we never sent; re-synchronize
    return;
  }
  if (ack64 > snd_nxt_) snd_nxt_ = ack64;

  // Congestion-window validation (RFC 7661 / Linux tcp_is_cwnd_limited):
  // cwnd may only grow off ACKs for flights that actually used it --
  // otherwise a flow whose sending is limited elsewhere (the application,
  // or MPTCP's connection-level allocation) inflates cwnd without bound.
  const uint64_t pipe_at_ack = cc_flight();
  const bool was_cwnd_limited =
      cc_->in_slow_start() ? 2 * pipe_at_ack >= cc_->cwnd()
                           : pipe_at_ack + config_.mss >= cc_->cwnd();

  uint64_t new_sacked = 0;
  if (sack_ok_) {
    if (const auto* sack = find_option<SackOption>(seg.options)) {
      new_sacked = merge_sack_blocks(*sack);
    }
  }

  // Window update check (RFC 793).
  const uint64_t seg_seq = seq_unwrap(rcv_nxt_, seg.seq);
  const uint64_t new_wnd = uint64_t{seg.window} << snd_wscale_;
  bool window_changed = false;
  if (snd_wl1_ < seg_seq || (snd_wl1_ == seg_seq && snd_wl2_ <= ack64)) {
    window_changed = new_wnd != snd_wnd_;
    snd_wnd_ = new_wnd;
    snd_wl1_ = seg_seq;
    snd_wl2_ = ack64;
  }

  if (ack64 > snd_una_) {
    // Payload bytes newly acked (exclude SYN/FIN sequence slots).
    uint64_t span = ack64 - snd_una_;
    if (fin_sent_ && ack64 > fin_seq_) span -= 1;
    stats_.bytes_acked += span;

    take_rtt_sample_if_valid(ack64);
    snd_buf_.free_through(std::min(ack64, snd_buf_.end_seq()));
    dupack_count_ = 0;
    consecutive_timeouts_ = 0;
    // Retransmitted bytes are assumed to be what the cumulative ACK just
    // covered (a standard pipe approximation). The estimate can only
    // over-count (a range retransmitted twice is acked once), so clamp it
    // to the true outstanding span -- otherwise phantom pipe could block
    // transmission with nothing actually in flight.
    const uint64_t advanced = ack64 - snd_una_;
    rtx_out_ = rtx_out_ > advanced ? rtx_out_ - advanced : 0;
    rtx_out_ = std::min(rtx_out_, snd_nxt_ > ack64 ? snd_nxt_ - ack64 : 0);

    // Scrub scoreboard entries now cumulatively acknowledged.
    for (auto it = sacked_.begin(); it != sacked_.end();) {
      if (it->second <= ack64) {
        sacked_bytes_ -= it->second - it->first;
        it = sacked_.erase(it);
      } else if (it->first < ack64) {
        const uint64_t e = it->second;
        sacked_bytes_ -= ack64 - it->first;
        sacked_.erase(it);
        it = sacked_.emplace(ack64, e).first;
        break;
      } else {
        break;
      }
    }
    rtx_next_hint_ = std::max(rtx_next_hint_, ack64);

    if (in_recovery_) {
      if (ack64 >= recovery_point_) {
        cc_->on_exit_recovery();
        in_recovery_ = false;
      } else if (sack_ok_) {
        // SACK recovery: the scoreboard drives retransmissions; no
        // NewReno inflation/deflation games.
        snd_una_ = ack64;
        sack_retransmit();
      } else {
        cc_->on_partial_ack(span);
        // NewReno: retransmit the segment right after the partial ack.
        snd_una_ = ack64;
        const uint64_t data_end = snd_buf_.end_seq();
        if (ack64 < data_end) {
          size_t len = static_cast<size_t>(
              std::min<uint64_t>(config_.mss, data_end - ack64));
          len = clamp_segment_len(ack64, len);
          if (len > 0) send_data_segment(ack64, len, /*retransmission=*/true);
        }
      }
    } else if (was_cwnd_limited) {
      cc_->on_ack(span, rtt_.srtt(), rtt_.min_rtt());
    }

    snd_una_ = ack64;

    if (config_.autotune) {
      const size_t target = std::min<size_t>(
          config_.snd_buf_max, static_cast<size_t>(2 * cc_->cwnd()));
      if (target > snd_buf_capacity_) snd_buf_capacity_ = target;
    }

    if (fin_sent_ && ack64 > fin_seq_) {
      // Our FIN is acknowledged.
      if (state_ == TcpState::kFinWait1) {
        enter_state(TcpState::kFinWait2);
      } else if (state_ == TcpState::kClosing) {
        enter_time_wait();
      } else if (state_ == TcpState::kLastAck) {
        finish_close(false);
        return;
      }
    }

    if (flight_size() > 0 || (fin_sent_ && snd_una_ <= fin_seq_)) {
      rto_timer_.arm_in(rtt_.rto());
    } else {
      rto_timer_.cancel();
    }

    on_bytes_acked(snd_una_);
    if (on_send_space && snd_buf_space() > 0) on_send_space();
  } else if (ack64 == snd_una_ && seg.is_pure_ack() && flight_size() > 0) {
    // A duplicate ACK signals reordering or loss; fresh SACK information
    // counts even when the window field moved.
    const bool dup_signal = new_sacked > 0 || !window_changed;
    if (dup_signal) {
      ++dupack_count_;
      ++stats_.dupacks_received;
      if (!in_recovery_ &&
          (dupack_count_ >= 3 ||
           (sack_ok_ && sacked_bytes_ > 3ull * config_.mss))) {
        in_recovery_ = true;
        recovery_point_ = snd_nxt_;
        cc_->on_enter_recovery(cc_flight());
        ++stats_.fast_retransmits;
        ct_fast_retransmits_->inc();
        hist_ssthresh_->record(cc_->ssthresh());
        rtx_next_hint_ = snd_una_;
        const uint64_t data_end = snd_buf_.end_seq();
        if (snd_una_ < data_end) {
          size_t len = static_cast<size_t>(
              std::min<uint64_t>(config_.mss, data_end - snd_una_));
          len = clamp_segment_len(snd_una_, len);
          if (len > 0) {
            send_data_segment(snd_una_, len, /*retransmission=*/true);
            rtx_next_hint_ = snd_una_ + len;
          }
          if (sack_ok_) sack_retransmit();
        } else if (fin_sent_ && snd_una_ == fin_seq_) {
          maybe_send_fin();  // retransmit FIN
        }
      } else if (in_recovery_) {
        if (sack_ok_) {
          sack_retransmit();
        } else {
          cc_->on_dupack_in_recovery();
        }
      }
    }
  }

  try_send();
}

void TcpConnection::process_payload(const TcpSegment& seg) {
  uint64_t seq64 = seq_unwrap(rcv_nxt_, seg.seq);
  Payload payload = seg.payload;  // shares the buffer; trims below are views
  // Anything other than clean in-order data is ACKed immediately: gaps
  // need dupacks, duplicates need re-acks, FINs need prompt answers.
  bool ack_now = !config_.delayed_ack || seg.fin || !reassembly_.empty() ||
                 seq64 != rcv_nxt_;

  if (seg.fin) {
    fin_received_ = true;
    peer_fin_seq_ = seq64 + payload.size();
  }

  const uint64_t end = seq64 + payload.size();
  if (!payload.empty()) {
    if (end <= rcv_nxt_) {
      send_ack();  // complete duplicate
      return;
    }
    // Enforce our advertised buffer: trim anything beyond what we can hold.
    const uint64_t max_accept = rcv_nxt_ + advertised_window_bytes() +
                                config_.mss;  // slack for in-flight updates
    if (seq64 >= max_accept) {
      send_ack();
      return;
    }
    if (end > max_accept) {
      payload.truncate(static_cast<size_t>(max_accept - seq64));
    }

    if (seq64 <= rcv_nxt_) {
      if (seq64 < rcv_nxt_) {
        payload.remove_prefix(static_cast<size_t>(rcv_nxt_ - seq64));
        seq64 = rcv_nxt_;
      }
      rcv_nxt_ += payload.size();
      rate_window_bytes_ += payload.size();
      deliver_data(seq64, std::move(payload));
      // Drain anything now in order.
      while (auto ready = reassembly_.pop_ready(rcv_nxt_)) {
        rcv_nxt_ += ready->second.size();
        rate_window_bytes_ += ready->second.size();
        deliver_data(ready->first, std::move(ready->second));
      }
    } else {
      reassembly_.insert(seq64, std::move(payload));
    }
  }

  if (fin_received_ && !fin_delivered_ && rcv_nxt_ == peer_fin_seq_) {
    rcv_nxt_ = peer_fin_seq_ + 1;
    fin_delivered_ = true;
    on_peer_fin();
    if (state_ == TcpState::kEstablished) {
      enter_state(TcpState::kCloseWait);
    } else if (state_ == TcpState::kFinWait1) {
      // Our FIN not yet acked: simultaneous close.
      enter_state(TcpState::kClosing);
    } else if (state_ == TcpState::kFinWait2) {
      enter_time_wait();
    }
    if (on_readable) on_readable();  // EOF is readable
  }

  if (config_.autotune) autotune_rcv_buf();

  if (!ack_now && ++delack_pending_ < 2) {
    if (!delack_timer_.armed()) delack_timer_.arm_in(config_.delack_timeout);
    return;
  }
  send_ack();
}

// --------------------------------------------------------------------------
// Sending.
// --------------------------------------------------------------------------

void TcpConnection::try_send() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kFinWait1 && state_ != TcpState::kClosing &&
      state_ != TcpState::kLastAck) {
    return;
  }

  const uint64_t data_end = snd_buf_.end_seq();
  const uint64_t fc = flow_control_limit();
  // Saturating: MPTCP subflows report an unlimited window (flow control is
  // enforced at the connection level, section 3.3.1).
  const uint64_t fc_limit =
      fc > UINT64_MAX - snd_una_ ? UINT64_MAX : snd_una_ + fc;
  const uint64_t limit = std::min(data_end, fc_limit);

  while (snd_nxt_ < limit && cc_flight() < cc_->cwnd()) {
    size_t len = static_cast<size_t>(
        std::min<uint64_t>(config_.mss, limit - snd_nxt_));
    len = clamp_segment_len(snd_nxt_, len);
    if (len == 0) break;
    send_data_segment(snd_nxt_, len, /*retransmission=*/false);
    snd_nxt_ += len;
  }

  maybe_send_fin();

  // Persist: flow control has us fully blocked with nothing in flight --
  // probe so a lost window update cannot deadlock the connection.
  if (snd_nxt_ < data_end && snd_nxt_ >= fc_limit && flight_size() == 0 &&
      !persist_timer_.armed() && flow_control_limit() != UINT64_MAX) {
    // The peer's advertised window (not cwnd) is what is stopping us.
    ct_rwnd_stalls_->inc();
    persist_timer_.arm_in(rtt_.rto());
  }
}

void TcpConnection::maybe_send_fin() {
  if (!fin_pending_ || fin_sent_) return;
  if (snd_nxt_ < snd_buf_.end_seq()) return;  // data still unsent
  // FIN consumes one sequence number.
  fin_seq_ = snd_buf_.end_seq();
  fin_sent_ = true;
  fin_pending_ = false;
  TcpSegment seg;
  seg.tuple = {local_, remote_};
  seg.seq = seq_wrap(fin_seq_);
  seg.ack = seq_wrap(rcv_nxt_);
  seg.ack_flag = true;
  seg.fin = true;
  seg.window = static_cast<uint16_t>(
      std::min<uint64_t>(65535, advertised_window_bytes() >> rcv_wscale_));
  if (config_.timestamps) {
    seg.options.push_back(TimestampOption{current_tsval(), ts_recent_});
  }
  build_segment_options(seg.options, fin_seq_, 0);
  snd_nxt_ = fin_seq_ + 1;
  snd_max_ = std::max(snd_max_, snd_nxt_);
  send_segment(std::move(seg));
  if (state_ == TcpState::kEstablished) {
    enter_state(TcpState::kFinWait1);
  } else if (state_ == TcpState::kCloseWait) {
    enter_state(TcpState::kLastAck);
  }
  rto_timer_.arm_in(rtt_.rto());
}

void TcpConnection::send_data_segment(uint64_t seq, size_t len,
                                      bool retransmission) {
  TcpSegment seg;
  seg.tuple = {local_, remote_};
  seg.seq = seq_wrap(seq);
  seg.ack = seq_wrap(rcv_nxt_);
  seg.ack_flag = true;
  seg.psh = true;
  seg.window = static_cast<uint16_t>(
      std::min<uint64_t>(65535, advertised_window_bytes() >> rcv_wscale_));
  seg.payload = snd_buf_.slice_out(seq, len);
  if (config_.timestamps) {
    seg.options.push_back(TimestampOption{current_tsval(), ts_recent_});
  }
  build_segment_options(seg.options, seq, len);

  if (retransmission) {
    ++stats_.retransmits;
    ct_retransmits_->inc();
    rtx_out_ += len;
    // Karn: invalidate any RTT sample overlapping this range.
    if (rtt_sample_pending_ && rtt_sample_end_seq_ > seq) {
      rtt_sample_pending_ = false;
    }
  } else if (!rtt_sample_pending_ && seq + len > snd_max_) {
    // Only genuinely new data is sampled (post-timeout go-back-N resends
    // travel through the "new data" path but must not be timed).
    rtt_sample_pending_ = true;
    rtt_sample_end_seq_ = seq + len;
    rtt_sample_sent_at_ = loop().now();
  }
  snd_max_ = std::max(snd_max_, seq + len);

  stats_.bytes_sent += len;
  delack_pending_ = 0;  // the piggybacked ACK field covers pending data
  delack_timer_.cancel();
  send_segment(std::move(seg));
  if (!rto_timer_.armed()) rto_timer_.arm_in(rtt_.rto());
  last_advertised_window_ = advertised_window_bytes();
}

void TcpConnection::send_ack() {
  TcpSegment seg;
  seg.tuple = {local_, remote_};
  seg.seq = seq_wrap(snd_nxt_);
  seg.ack = seq_wrap(rcv_nxt_);
  seg.ack_flag = true;
  seg.window = static_cast<uint16_t>(
      std::min<uint64_t>(65535, advertised_window_bytes() >> rcv_wscale_));
  if (config_.timestamps) {
    seg.options.push_back(TimestampOption{current_tsval(), ts_recent_});
  }
  if (sack_ok_ && !reassembly_.empty()) {
    // At most two blocks: pure ACKs also carry MPTCP DSS options, and the
    // 40-byte option budget is tight (the same compromise real MPTCP
    // stacks make).
    SackOption sack;
    for (const auto& [b, e] : reassembly_.sack_ranges(2)) {
      sack.blocks.push_back({seq_wrap(b), seq_wrap(e)});
    }
    seg.options.push_back(std::move(sack));
  }
  build_segment_options(seg.options, snd_nxt_, 0);
  last_advertised_window_ = advertised_window_bytes();
  delack_pending_ = 0;
  delack_timer_.cancel();
  send_segment(std::move(seg));
}

void TcpConnection::send_segment(TcpSegment seg) {
  // Enforce the 40-byte TCP option budget. Drop the least critical
  // options first: SACK blocks are advisory, timestamps are next; the
  // handshake and MPTCP signalling options must survive.
  while (seg.options_wire_size() > kMaxTcpOptionSpace) {
    if (auto* sack = find_option<SackOption>(seg.options)) {
      if (sack->blocks.size() > 1) {
        sack->blocks.pop_back();
      } else {
        remove_options<SackOption>(seg.options);
      }
      continue;
    }
    if (remove_options<TimestampOption>(seg.options) > 0) continue;
    break;  // nothing droppable left; carry the oversized set in-sim
  }
  ++stats_.segments_sent;
  ct_segments_sent_->inc();
  host_.send(std::move(seg));
}

void TcpConnection::maybe_send_window_update() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kFinWait1 &&
      state_ != TcpState::kFinWait2) {
    return;
  }
  const uint64_t wnd = advertised_window_bytes();
  if (wnd > last_advertised_window_ &&
      wnd - last_advertised_window_ >= config_.mss) {
    send_ack();
  }
}

// --------------------------------------------------------------------------
// Timers.
// --------------------------------------------------------------------------

void TcpConnection::on_rto() {
  if (state_ == TcpState::kSynSent) {
    if (++syn_retries_ > config_.max_syn_retries) {
      finish_close(false);
      return;
    }
    // Section 3.1: after repeated losses, retry without the new options in
    // case a middlebox is dropping SYNs that carry them.
    const bool with_options =
        syn_retries_ < config_.syn_option_fallback_after;
    rtt_.on_timeout();
    rtt_sample_pending_ = false;  // Karn: retransmitted SYN is not sampled
    ++stats_.timeouts;
    ct_rto_firings_->inc();
    send_syn(with_options);
    rto_timer_.arm_in(rtt_.rto());
    return;
  }
  if (state_ == TcpState::kSynReceived) {
    if (++syn_retries_ > config_.max_syn_retries) {
      finish_close(false);
      return;
    }
    rtt_.on_timeout();
    ++stats_.timeouts;
    ct_rto_firings_->inc();
    send_synack();
    rto_timer_.arm_in(rtt_.rto());
    return;
  }

  const bool data_outstanding = snd_una_ < snd_buf_.end_seq();
  const bool fin_outstanding = fin_sent_ && snd_una_ <= fin_seq_;
  if (!data_outstanding && !fin_outstanding) return;

  if (++consecutive_timeouts_ > config_.max_data_retries) {
    // The path is dead; give up so upper layers can fail over.
    finish_close(true);
    return;
  }

  ++stats_.timeouts;
  ct_rto_firings_->inc();
  rtt_.on_timeout();
  cc_->on_timeout(flight_size());
  hist_ssthresh_->record(cc_->ssthresh());
  in_recovery_ = false;
  dupack_count_ = 0;
  rtt_sample_pending_ = false;
  // RFC 6675: discard the scoreboard on RTO (the SACK info may be stale).
  sacked_.clear();
  sacked_bytes_ = 0;
  high_sacked_ = 0;
  rtx_next_hint_ = snd_una_;
  rtx_out_ = 0;

  // Go-back-N restart: everything past snd_una is presumed lost and will
  // be retransmitted as cwnd allows.
  snd_nxt_ = snd_una_;
  if (fin_sent_ && snd_nxt_ <= fin_seq_) {
    // The FIN must be retransmitted through the normal path again.
    fin_sent_ = false;
    fin_pending_ = true;
  }

  if (data_outstanding) {
    size_t len = static_cast<size_t>(std::min<uint64_t>(
        config_.mss, snd_buf_.end_seq() - snd_una_));
    len = std::max<size_t>(clamp_segment_len(snd_una_, len), 1);
    send_data_segment(snd_una_, len, /*retransmission=*/true);
    snd_nxt_ = snd_una_ + len;
  } else {
    // Only the FIN is outstanding: resend it through the normal path.
    ++stats_.retransmits;
    ct_retransmits_->inc();
    maybe_send_fin();
  }
  rto_timer_.arm_in(rtt_.rto());
}

void TcpConnection::on_persist() {
  if (snd_nxt_ >= snd_buf_.end_seq()) return;  // nothing left to probe with
  if (snd_nxt_ < snd_una_ + flow_control_limit()) {
    try_send();  // window opened meanwhile
    return;
  }
  ++stats_.persist_probes;
  ct_persist_probes_->inc();
  // Send one byte beyond the window; the peer will re-ack with its
  // current window.
  send_data_segment(snd_nxt_, 1, /*retransmission=*/false);
  snd_nxt_ += 1;
  persist_timer_.arm_in(std::min(2 * rtt_.rto(), config_.max_rto));
}

// --------------------------------------------------------------------------
// State management.
// --------------------------------------------------------------------------

void TcpConnection::enter_state(TcpState s) { state_ = s; }

void TcpConnection::enter_time_wait() {
  enter_state(TcpState::kTimeWait);
  rto_timer_.cancel();
  persist_timer_.cancel();
  time_wait_timer_.arm_in(config_.time_wait);
}

void TcpConnection::reset_from_peer() { finish_close(true); }

void TcpConnection::finish_close(bool reset) {
  rto_timer_.cancel();
  persist_timer_.cancel();
  time_wait_timer_.cancel();
  enter_state(TcpState::kClosed);
  if (bound_) {
    host_.unbind(local_, remote_);
    bound_ = false;
  }
  if (!closed_notified_) {
    closed_notified_ = true;
    on_connection_closed(reset);
    if (on_closed) on_closed();
  }
}

// --------------------------------------------------------------------------
// Hooks (default implementations).
// --------------------------------------------------------------------------

void TcpConnection::build_syn_options(std::vector<TcpOption>&) {}
void TcpConnection::build_synack_options(std::vector<TcpOption>&,
                                         const TcpSegment&) {}
void TcpConnection::build_segment_options(std::vector<TcpOption>&, uint64_t,
                                          size_t) {}
void TcpConnection::process_incoming_options(const TcpSegment&) {}
void TcpConnection::on_established() {}

void TcpConnection::deliver_data(uint64_t, Payload bytes) {
  stats_.bytes_delivered += bytes.size();
  app_rx_.push(std::move(bytes));
  if (on_readable) on_readable();
}

void TcpConnection::on_bytes_acked(uint64_t) {}
void TcpConnection::on_peer_fin() {}
void TcpConnection::on_connection_closed(bool) {}

uint64_t TcpConnection::advertised_window_bytes() const {
  // Only unread *in-order* data consumes window: out-of-order chunks sit
  // within the window already granted (counting them would shrink the
  // window's right edge, which RFC 793 forbids and which would turn
  // legitimate dupacks into apparent window updates).
  const size_t used = app_rx_.size();
  return rcv_buf_capacity_ > used ? rcv_buf_capacity_ - used : 0;
}

uint64_t TcpConnection::flow_control_limit() const { return snd_wnd_; }

// --------------------------------------------------------------------------
// Misc.
// --------------------------------------------------------------------------

void TcpConnection::take_rtt_sample_if_valid(uint64_t acked_through) {
  if (rtt_sample_pending_ && acked_through >= rtt_sample_end_seq_) {
    rtt_.add_sample(loop().now() - rtt_sample_sent_at_);
    rtt_sample_pending_ = false;
    // One cwnd sample per successful RTT measurement: frequent enough to
    // trace window dynamics, rare enough to stay off the per-ACK path.
    hist_cwnd_->record(cc_->cwnd());
  }
}

uint32_t TcpConnection::current_tsval() const {
  // Microsecond timestamp clock, offset so 0 means "no echo".
  return static_cast<uint32_t>(host_.loop().now() / kMicrosecond) + 1;
}

double TcpConnection::delivery_rate_bps() const { return delivery_rate_bps_; }

void TcpConnection::autotune_rcv_buf() {
  // Dynamic right-sizing: measure delivered bytes over one receiver-RTT
  // window and size the buffer at twice that (Linux-style DRS).
  const SimTime rtt = rcv_rtt_ > 0 ? rcv_rtt_ : 100 * kMillisecond;
  const SimTime now = loop().now();
  if (rate_window_start_ == 0) {
    rate_window_start_ = now;
    rate_window_bytes_ = 0;
    return;
  }
  const SimTime elapsed = now - rate_window_start_;
  if (elapsed < rtt) return;
  delivery_rate_bps_ = static_cast<double>(rate_window_bytes_) * 8.0 *
                       kSecond / static_cast<double>(elapsed);
  const size_t target = std::min<size_t>(
      config_.rcv_buf_max, 2 * static_cast<size_t>(rate_window_bytes_ *
                                                   rtt / elapsed));
  if (target > rcv_buf_capacity_) set_rcv_buf_capacity(target);
  rate_window_start_ = now;
  rate_window_bytes_ = 0;
}

void TcpConnection::set_rcv_buf_capacity(size_t bytes) {
  rcv_buf_capacity_ = std::max(rcv_buf_capacity_, bytes);
}

void TcpConnection::set_snd_buf_capacity(size_t bytes) {
  snd_buf_capacity_ = std::max(snd_buf_capacity_, bytes);
}

}  // namespace mptcp
