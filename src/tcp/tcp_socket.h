// The byte-stream interface applications program against.
//
// This is the paper's deployability requirement made concrete (section 2):
// applications see the same reliable, in-order byte-stream service whether
// the transport underneath is single-path TCP, MPTCP, or TCP over a bonded
// link. All workloads in src/app are written against this interface only.
#pragma once

#include <cstddef>
#include <functional>
#include <span>

namespace mptcp {

class StreamSocket {
 public:
  virtual ~StreamSocket() = default;

  /// Queues bytes for transmission; returns how many were accepted.
  virtual size_t write(std::span<const uint8_t> bytes) = 0;

  /// Reads up to out.size() in-order bytes; returns bytes read.
  virtual size_t read(std::span<uint8_t> out) = 0;

  /// Zero-copy read, scatter form: fills `out` with views of the buffered
  /// in-order data (front first) and returns how many views were written.
  /// The views borrow the receive queue's storage -- valid only until the
  /// next consume()/read(). Pair with consume() to release what was used.
  virtual size_t peek_views(std::span<std::span<const uint8_t>> out) const = 0;

  /// Discards the first `n` readable bytes (n <= readable_bytes()),
  /// opening receive window just like read() does.
  virtual void consume(size_t n) = 0;

  virtual size_t readable_bytes() const = 0;

  /// True once the peer has finished sending and all data has been read.
  virtual bool at_eof() const = 0;

  /// Graceful close of the send direction.
  virtual void close() = 0;

  /// True while data transfer is possible.
  virtual bool established() const = 0;

  // Application callbacks. Assigned directly; all optional.
  std::function<void()> on_connected;   ///< stream is established
  std::function<void()> on_readable;    ///< new data or EOF available
  std::function<void()> on_send_space;  ///< write() would accept more
  std::function<void()> on_closed;      ///< stream fully closed or reset
};

}  // namespace mptcp
