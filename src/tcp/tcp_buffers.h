// Send-side and receive-side data structures, 64-bit sequence based.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <vector>

namespace mptcp {

/// Byte buffer anchored at an (unwrapped) sequence number. Holds
/// [base_seq, end_seq): data written by the application but not yet
/// cumulatively acknowledged. Freed from the front as ACKs advance.
class SendBuffer {
 public:
  explicit SendBuffer(uint64_t base_seq = 0) : base_seq_(base_seq) {}

  void reset(uint64_t base_seq) {
    base_seq_ = base_seq;
    data_.clear();
  }

  /// Appends up to `capacity - size()` bytes; returns bytes accepted.
  size_t append(std::span<const uint8_t> bytes, size_t capacity) {
    const size_t space = capacity > data_.size() ? capacity - data_.size() : 0;
    const size_t n = std::min(space, bytes.size());
    data_.insert(data_.end(), bytes.begin(), bytes.begin() + n);
    return n;
  }

  /// Copies `len` bytes starting at sequence `seq` into `out`. The range
  /// must be within [base_seq, end_seq).
  void copy_out(uint64_t seq, size_t len, std::vector<uint8_t>& out) const {
    const size_t off = static_cast<size_t>(seq - base_seq_);
    out.assign(data_.begin() + off, data_.begin() + off + len);
  }

  /// Releases all bytes below `seq` (cumulative ACK).
  void free_through(uint64_t seq) {
    if (seq <= base_seq_) return;
    const size_t n =
        std::min(static_cast<size_t>(seq - base_seq_), data_.size());
    data_.erase(data_.begin(), data_.begin() + n);
    base_seq_ += n;
  }

  uint64_t base_seq() const { return base_seq_; }
  uint64_t end_seq() const { return base_seq_ + data_.size(); }
  size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

 private:
  uint64_t base_seq_;
  std::deque<uint8_t> data_;
};

/// Out-of-order reassembly queue keyed by unwrapped sequence number.
/// Overlapping inserts are trimmed so stored chunks are disjoint.
class ReassemblyQueue {
 public:
  /// Inserts a chunk; overlaps with existing chunks are discarded from the
  /// new chunk (first-arrival wins, like most stacks).
  void insert(uint64_t seq, std::vector<uint8_t> bytes);

  /// If the chunk at the head starts at or below `rcv_nxt`, pops it
  /// (trimmed to start exactly at rcv_nxt). Returns nullopt otherwise.
  std::optional<std::pair<uint64_t, std::vector<uint8_t>>> pop_ready(
      uint64_t rcv_nxt);

  size_t ooo_bytes() const { return ooo_bytes_; }
  size_t chunk_count() const { return chunks_.size(); }
  bool empty() const { return chunks_.empty(); }

  /// Up to `max_n` disjoint received ranges for SACK generation, with the
  /// range containing the most recent arrival first (RFC 2018 ordering),
  /// then the remaining ranges in ascending order.
  std::vector<std::pair<uint64_t, uint64_t>> sack_ranges(size_t max_n) const;

  /// Drops everything (connection reset).
  void clear() {
    chunks_.clear();
    ooo_bytes_ = 0;
  }

 private:
  std::map<uint64_t, std::vector<uint8_t>> chunks_;
  size_t ooo_bytes_ = 0;
  uint64_t last_insert_seq_ = 0;
};

}  // namespace mptcp
