// Send-side and receive-side data structures, 64-bit sequence based.
//
// Both sides store refcounted Payload chunks rather than flat byte
// arrays: the send buffer keeps each application write (or each mapped
// chunk pushed down by the MPTCP meta level) as one shared chunk, so
// carving an MSS-sized segment -- including every retransmission of it --
// is a zero-copy subview; the reassembly queue likewise holds the
// segment payloads it was handed without duplicating them.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "net/payload.h"

namespace mptcp {

/// Byte buffer anchored at an (unwrapped) sequence number. Holds
/// [base_seq, end_seq): data written by the application but not yet
/// cumulatively acknowledged. Freed from the front as ACKs advance.
class SendBuffer {
 public:
  explicit SendBuffer(uint64_t base_seq = 0) : base_seq_(base_seq) {}

  void reset(uint64_t base_seq) {
    base_seq_ = base_seq;
    chunks_.clear();
    size_ = 0;
  }

  /// Appends up to `capacity - size()` bytes; returns bytes accepted.
  /// The accepted bytes are copied once into a fresh chunk (the
  /// application keeps ownership of its span).
  size_t append(std::span<const uint8_t> bytes, size_t capacity) {
    const size_t space = capacity > size_ ? capacity - size_ : 0;
    const size_t n = std::min(space, bytes.size());
    if (n == 0) return 0;
    push_chunk(Payload(bytes.first(n)));
    return n;
  }

  /// Appends an already-refcounted chunk without copying (truncated to
  /// the available space); returns bytes accepted. This is how mapped
  /// data pushed from the MPTCP meta level shares one buffer all the way
  /// to the wire.
  size_t append_shared(Payload bytes, size_t capacity) {
    const size_t space = capacity > size_ ? capacity - size_ : 0;
    const size_t n = std::min(space, bytes.size());
    if (n == 0) return 0;
    bytes.truncate(n);
    push_chunk(std::move(bytes));
    return n;
  }

  /// Returns `len` bytes starting at sequence `seq` as a shared view.
  /// Zero-copy when the range lies within one stored chunk (the common
  /// case: segments never straddle an application write or an MPTCP
  /// mapping); assembles a fresh buffer otherwise. The range must be
  /// within [base_seq, end_seq).
  Payload slice_out(uint64_t seq, size_t len) const;

  /// Releases all bytes below `seq` (cumulative ACK).
  void free_through(uint64_t seq);

  uint64_t base_seq() const { return base_seq_; }
  uint64_t end_seq() const { return base_seq_ + size_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Number of stored chunks (diagnostics).
  size_t chunk_count() const { return chunks_.size(); }

 private:
  struct Chunk {
    uint64_t start;  ///< unwrapped sequence of bytes[0]
    Payload bytes;
  };

  void push_chunk(Payload bytes) {
    const uint64_t start = end_seq();
    size_ += bytes.size();
    chunks_.push_back(Chunk{start, std::move(bytes)});
  }

  using ChunkIter = std::deque<Chunk>::const_iterator;

  /// The chunk containing `seq` (binary search; chunks are sorted and
  /// contiguous).
  ChunkIter find_chunk(uint64_t seq) const;

  uint64_t base_seq_;
  size_t size_ = 0;
  std::deque<Chunk> chunks_;  ///< contiguous, sorted by start
};

/// In-order receive queue between reassembly and the application: a deque
/// of delivered Payload views. read() copies into the caller's span and
/// advances by trimming view prefixes -- O(bytes read), never a memmove of
/// what stays buffered. peek_views()/consume() expose the same bytes as a
/// scatter list so zero-copy consumers (bulk/http sinks, the workload
/// engine) can count or parse without any copy at all.
class RecvQueue {
 public:
  void push(Payload bytes) {
    if (bytes.empty()) return;
    bytes_ += bytes.size();
    chunks_.push_back(std::move(bytes));
  }

  /// Copies up to `out.size()` bytes into `out`; returns bytes copied.
  size_t read(std::span<uint8_t> out);

  /// Fills `out` with views of the queued chunks, front first; returns
  /// how many views were written. The views stay valid until the next
  /// consume()/read().
  size_t peek_views(std::span<std::span<const uint8_t>> out) const;

  /// Drops the first `n` queued bytes (n <= size()).
  void consume(size_t n);

  size_t size() const { return bytes_; }
  bool empty() const { return bytes_ == 0; }
  size_t chunk_count() const { return chunks_.size(); }

  void clear() {
    chunks_.clear();
    bytes_ = 0;
  }

 private:
  std::deque<Payload> chunks_;
  size_t bytes_ = 0;
};

/// Out-of-order reassembly queue keyed by unwrapped sequence number.
/// Overlapping inserts are trimmed so stored chunks are disjoint; trims
/// are zero-copy subviews of the arriving payload.
class ReassemblyQueue {
 public:
  /// Inserts a chunk; overlaps with existing chunks are discarded from the
  /// new chunk (first-arrival wins, like most stacks).
  void insert(uint64_t seq, Payload bytes);

  /// If the chunk at the head starts at or below `rcv_nxt`, pops it
  /// (trimmed to start exactly at rcv_nxt). Returns nullopt otherwise.
  std::optional<std::pair<uint64_t, Payload>> pop_ready(uint64_t rcv_nxt);

  size_t ooo_bytes() const { return ooo_bytes_; }
  size_t chunk_count() const { return chunks_.size(); }
  bool empty() const { return chunks_.empty(); }

  /// Up to `max_n` disjoint received ranges for SACK generation, with the
  /// range containing the most recent arrival first (RFC 2018 ordering),
  /// then the remaining ranges in ascending order.
  std::vector<std::pair<uint64_t, uint64_t>> sack_ranges(size_t max_n) const;

  /// Drops everything (connection reset).
  void clear() {
    chunks_.clear();
    ooo_bytes_ = 0;
  }

 private:
  std::map<uint64_t, Payload> chunks_;
  size_t ooo_bytes_ = 0;
  uint64_t last_insert_seq_ = 0;
};

}  // namespace mptcp
