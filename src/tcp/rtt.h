// RTT estimation and RTO computation per RFC 6298 (Jacobson/Karels).
#pragma once

#include <algorithm>

#include "sim/event_loop.h"

namespace mptcp {

class RttEstimator {
 public:
  RttEstimator(SimTime initial_rto, SimTime min_rto, SimTime max_rto)
      : rto_(initial_rto), min_rto_(min_rto), max_rto_(max_rto) {}

  /// Feeds a new RTT measurement (Karn's rule: callers must not sample
  /// retransmitted segments).
  void add_sample(SimTime rtt) {
    if (rtt <= 0) rtt = 1;
    if (!has_sample_) {
      srtt_ = rtt;
      rttvar_ = rtt / 2;
      has_sample_ = true;
    } else {
      const SimTime err = rtt > srtt_ ? rtt - srtt_ : srtt_ - rtt;
      rttvar_ = (3 * rttvar_ + err) / 4;
      srtt_ = (7 * srtt_ + rtt) / 8;
    }
    min_rtt_ = min_rtt_ == 0 ? rtt : std::min(min_rtt_, rtt);
    rto_ = std::clamp(srtt_ + std::max(SimTime{1}, 4 * rttvar_), min_rto_,
                      max_rto_);
    backoff_ = 1;
  }

  /// Doubles the RTO after a retransmission timeout (exponential backoff).
  void on_timeout() {
    backoff_ = std::min(backoff_ * 2, 64);
  }

  SimTime rto() const {
    return std::min(rto_ * backoff_, max_rto_);
  }

  bool has_sample() const { return has_sample_; }
  SimTime srtt() const { return srtt_; }
  SimTime rttvar() const { return rttvar_; }
  /// Lowest RTT ever observed: the "base RTT" used by cwnd capping (M4).
  SimTime min_rtt() const { return min_rtt_; }

 private:
  bool has_sample_ = false;
  SimTime srtt_ = 0;
  SimTime rttvar_ = 0;
  SimTime min_rtt_ = 0;
  SimTime rto_;
  SimTime min_rto_;
  SimTime max_rto_;
  int backoff_ = 1;
};

}  // namespace mptcp
