#include "tcp/tcp_buffers.h"

namespace mptcp {

void ReassemblyQueue::insert(uint64_t seq, std::vector<uint8_t> bytes) {
  if (bytes.empty()) return;
  last_insert_seq_ = seq;
  uint64_t end = seq + bytes.size();

  // Trim against the predecessor (chunk starting at or before seq).
  auto it = chunks_.upper_bound(seq);
  if (it != chunks_.begin()) {
    auto prev = std::prev(it);
    const uint64_t prev_end = prev->first + prev->second.size();
    if (prev_end >= end) return;  // fully covered
    if (prev_end > seq) {
      bytes.erase(bytes.begin(),
                  bytes.begin() + static_cast<size_t>(prev_end - seq));
      seq = prev_end;
    }
  }

  // Trim against successors.
  while (it != chunks_.end() && it->first < end) {
    const uint64_t next_start = it->first;
    const uint64_t next_end = next_start + it->second.size();
    if (next_start <= seq) {
      // Successor covers our head.
      if (next_end >= end) return;
      bytes.erase(bytes.begin(),
                  bytes.begin() + static_cast<size_t>(next_end - seq));
      seq = next_end;
      it = chunks_.upper_bound(seq);
      continue;
    }
    // Successor starts inside our range: keep only our head up to it,
    // insert, and continue with the tail beyond the successor.
    std::vector<uint8_t> head(bytes.begin(),
                              bytes.begin() +
                                  static_cast<size_t>(next_start - seq));
    ooo_bytes_ += head.size();
    chunks_.emplace(seq, std::move(head));
    bytes.erase(bytes.begin(),
                bytes.begin() + static_cast<size_t>(
                                    std::min(next_end, end) - seq));
    seq = next_end;
    if (seq >= end) return;
    it = chunks_.upper_bound(seq);
  }

  if (!bytes.empty() && seq < end) {
    ooo_bytes_ += bytes.size();
    chunks_.emplace(seq, std::move(bytes));
  }
}

std::vector<std::pair<uint64_t, uint64_t>> ReassemblyQueue::sack_ranges(
    size_t max_n) const {
  // Merge adjacent chunks into maximal ranges.
  std::vector<std::pair<uint64_t, uint64_t>> merged;
  for (const auto& [seq, bytes] : chunks_) {
    const uint64_t end = seq + bytes.size();
    if (!merged.empty() && merged.back().second == seq) {
      merged.back().second = end;
    } else {
      merged.emplace_back(seq, end);
    }
  }
  std::vector<std::pair<uint64_t, uint64_t>> out;
  // The range containing the most recent arrival goes first so the sender
  // learns fresh information even if earlier ACKs were lost.
  for (const auto& r : merged) {
    if (last_insert_seq_ >= r.first && last_insert_seq_ < r.second) {
      out.push_back(r);
      break;
    }
  }
  for (const auto& r : merged) {
    if (out.size() >= max_n) break;
    if (!out.empty() && r == out.front()) continue;
    out.push_back(r);
  }
  return out;
}

std::optional<std::pair<uint64_t, std::vector<uint8_t>>>
ReassemblyQueue::pop_ready(uint64_t rcv_nxt) {
  while (!chunks_.empty()) {
    auto it = chunks_.begin();
    const uint64_t seq = it->first;
    const uint64_t end = seq + it->second.size();
    if (seq > rcv_nxt) return std::nullopt;
    std::vector<uint8_t> bytes = std::move(it->second);
    ooo_bytes_ -= bytes.size();
    chunks_.erase(it);
    if (end <= rcv_nxt) continue;  // stale chunk, already delivered
    if (seq < rcv_nxt) {
      bytes.erase(bytes.begin(),
                  bytes.begin() + static_cast<size_t>(rcv_nxt - seq));
      return std::make_pair(rcv_nxt, std::move(bytes));
    }
    return std::make_pair(seq, std::move(bytes));
  }
  return std::nullopt;
}

}  // namespace mptcp
