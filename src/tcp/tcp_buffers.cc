#include "tcp/tcp_buffers.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace mptcp {

// ---------------------------------------------------------------------------
// RecvQueue
// ---------------------------------------------------------------------------

size_t RecvQueue::read(std::span<uint8_t> out) {
  size_t copied = 0;
  while (copied < out.size() && !chunks_.empty()) {
    Payload& front = chunks_.front();
    const size_t n = std::min(out.size() - copied, front.size());
    std::memcpy(out.data() + copied, front.data(), n);
    copied += n;
    if (n == front.size()) {
      chunks_.pop_front();
    } else {
      front.remove_prefix(n);
    }
  }
  bytes_ -= copied;
  return copied;
}

size_t RecvQueue::peek_views(std::span<std::span<const uint8_t>> out) const {
  size_t n = 0;
  for (const Payload& c : chunks_) {
    if (n == out.size()) break;
    out[n++] = c.span();
  }
  return n;
}

void RecvQueue::consume(size_t n) {
  assert(n <= bytes_ && "consume past the buffered bytes");
  bytes_ -= n;
  while (n > 0) {
    Payload& front = chunks_.front();
    if (front.size() <= n) {
      n -= front.size();
      chunks_.pop_front();
    } else {
      front.remove_prefix(n);
      n = 0;
    }
  }
}

// ---------------------------------------------------------------------------
// SendBuffer
// ---------------------------------------------------------------------------

SendBuffer::ChunkIter SendBuffer::find_chunk(uint64_t seq) const {
  // Chunks are contiguous and sorted; binary search for the last chunk
  // with start <= seq.
  auto it = std::upper_bound(
      chunks_.begin(), chunks_.end(), seq,
      [](uint64_t s, const Chunk& c) { return s < c.start; });
  assert(it != chunks_.begin() && "sequence below the buffered range");
  return std::prev(it);
}

Payload SendBuffer::slice_out(uint64_t seq, size_t len) const {
  assert(seq >= base_seq_ && seq + len <= end_seq() &&
         "slice_out outside buffered range");
  if (len == 0) return Payload();
  ChunkIter it = find_chunk(seq);
  const size_t off = static_cast<size_t>(seq - it->start);
  if (off + len <= it->bytes.size()) {
    // Common case: the segment lies inside one application write / one
    // mapped chunk. Share the bytes.
    return it->bytes.subview(off, len);
  }
  // Straddles chunk boundaries: assemble once.
  std::vector<uint8_t> flat;
  flat.reserve(len);
  uint64_t at = seq;
  while (flat.size() < len) {
    const size_t coff = static_cast<size_t>(at - it->start);
    const size_t n = std::min(len - flat.size(), it->bytes.size() - coff);
    const uint8_t* p = it->bytes.data() + coff;
    flat.insert(flat.end(), p, p + n);
    at += n;
    ++it;  // contiguous: the next chunk starts exactly at `at`
  }
  return Payload(flat);
}

void SendBuffer::free_through(uint64_t seq) {
  if (seq <= base_seq_) return;
  size_t n = std::min(static_cast<size_t>(seq - base_seq_), size_);
  base_seq_ += n;
  size_ -= n;
  while (n > 0 && !chunks_.empty()) {
    Chunk& front = chunks_.front();
    if (front.bytes.size() <= n) {
      n -= front.bytes.size();
      chunks_.pop_front();
    } else {
      front.bytes.remove_prefix(n);
      front.start += n;
      n = 0;
    }
  }
}

// ---------------------------------------------------------------------------
// ReassemblyQueue
// ---------------------------------------------------------------------------

void ReassemblyQueue::insert(uint64_t seq, Payload bytes) {
  if (bytes.empty()) return;
  last_insert_seq_ = seq;
  const uint64_t end = seq + bytes.size();

  // Trim against the predecessor (chunk starting at or before seq).
  auto it = chunks_.upper_bound(seq);
  if (it != chunks_.begin()) {
    auto prev = std::prev(it);
    const uint64_t prev_end = prev->first + prev->second.size();
    if (prev_end >= end) return;  // fully covered
    if (prev_end > seq) {
      bytes.remove_prefix(static_cast<size_t>(prev_end - seq));
      seq = prev_end;
    }
  }

  // Trim against successors.
  while (it != chunks_.end() && it->first < end) {
    const uint64_t next_start = it->first;
    const uint64_t next_end = next_start + it->second.size();
    if (next_start <= seq) {
      // Successor covers our head.
      if (next_end >= end) return;
      bytes.remove_prefix(static_cast<size_t>(next_end - seq));
      seq = next_end;
      it = chunks_.upper_bound(seq);
      continue;
    }
    // Successor starts inside our range: keep only our head up to it,
    // insert, and continue with the tail beyond the successor.
    const size_t head_len = static_cast<size_t>(next_start - seq);
    Payload head = bytes.subview(0, head_len);
    ooo_bytes_ += head.size();
    chunks_.emplace(seq, std::move(head));
    bytes.remove_prefix(static_cast<size_t>(std::min(next_end, end) - seq));
    seq = next_end;
    if (seq >= end) return;
    it = chunks_.upper_bound(seq);
  }

  if (!bytes.empty() && seq < end) {
    ooo_bytes_ += bytes.size();
    chunks_.emplace(seq, std::move(bytes));
  }
}

std::vector<std::pair<uint64_t, uint64_t>> ReassemblyQueue::sack_ranges(
    size_t max_n) const {
  // Merge adjacent chunks into maximal ranges.
  std::vector<std::pair<uint64_t, uint64_t>> merged;
  for (const auto& [seq, bytes] : chunks_) {
    const uint64_t end = seq + bytes.size();
    if (!merged.empty() && merged.back().second == seq) {
      merged.back().second = end;
    } else {
      merged.emplace_back(seq, end);
    }
  }
  std::vector<std::pair<uint64_t, uint64_t>> out;
  // The range containing the most recent arrival goes first so the sender
  // learns fresh information even if earlier ACKs were lost.
  for (const auto& r : merged) {
    if (last_insert_seq_ >= r.first && last_insert_seq_ < r.second) {
      out.push_back(r);
      break;
    }
  }
  for (const auto& r : merged) {
    if (out.size() >= max_n) break;
    if (!out.empty() && r == out.front()) continue;
    out.push_back(r);
  }
  return out;
}

std::optional<std::pair<uint64_t, Payload>> ReassemblyQueue::pop_ready(
    uint64_t rcv_nxt) {
  while (!chunks_.empty()) {
    auto it = chunks_.begin();
    const uint64_t seq = it->first;
    const uint64_t end = seq + it->second.size();
    if (seq > rcv_nxt) return std::nullopt;
    Payload bytes = std::move(it->second);
    ooo_bytes_ -= bytes.size();
    chunks_.erase(it);
    if (end <= rcv_nxt) continue;  // stale chunk, already delivered
    if (seq < rcv_nxt) {
      bytes.remove_prefix(static_cast<size_t>(rcv_nxt - seq));
      return std::make_pair(rcv_nxt, std::move(bytes));
    }
    return std::make_pair(seq, std::move(bytes));
  }
  return std::nullopt;
}

}  // namespace mptcp
