// A userspace TCP endpoint running over the simulated network.
//
// Implements the five mechanisms the paper lists as TCP's core (section
// 3): connection setup (3-way handshake + state machine), reliable
// transmission and acknowledgment (cumulative ACKs, RTO with backoff, fast
// retransmit / NewReno recovery), congestion control (pluggable, NewReno
// by default), flow control (advertised window with window scaling,
// persist probing, receive-buffer autotuning), and teardown
// (FIN/FIN-ACK/ACK with TIME_WAIT, RST).
//
// MPTCP subflows subclass this and override the protected hooks: option
// construction, option processing, data delivery, window interpretation.
// The base class knows nothing about MPTCP.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "net/rng.h"
#include "net/segment.h"
#include "sim/network.h"
#include "tcp/cc.h"
#include "tcp/rtt.h"
#include "tcp/tcp_buffers.h"
#include "tcp/tcp_socket.h"
#include "tcp/tcp_types.h"

namespace mptcp {

class TcpConnection : public SegmentHandler, public StreamSocket {
 public:
  struct Stats {
    uint64_t segments_sent = 0;
    uint64_t segments_received = 0;
    uint64_t bytes_sent = 0;        ///< payload bytes incl. retransmissions
    uint64_t bytes_acked = 0;       ///< payload bytes cumulatively acked
    uint64_t bytes_delivered = 0;   ///< payload bytes handed up in order
    uint64_t retransmits = 0;
    uint64_t fast_retransmits = 0;
    uint64_t timeouts = 0;
    uint64_t dupacks_received = 0;
    uint64_t persist_probes = 0;
  };

  TcpConnection(Host& host, TcpConfig config, Endpoint local, Endpoint remote,
                std::unique_ptr<CongestionControl> cc = nullptr);
  ~TcpConnection() override;

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  // --- application API ----------------------------------------------------
  /// Active open: sends the SYN.
  void connect();

  /// Passive open from a listener-delivered SYN.
  void accept_syn(const TcpSegment& syn);

  /// Queues bytes for transmission; returns how many were accepted
  /// (bounded by send-buffer space).
  size_t write(std::span<const uint8_t> bytes) override;

  /// Like write(), but shares an already-refcounted buffer instead of
  /// copying (used by MPTCP to push mapped data down to subflows).
  size_t write_shared(Payload bytes);

  /// Reads up to out.size() in-order bytes; returns bytes read.
  size_t read(std::span<uint8_t> out) override;
  /// Zero-copy scatter read over the receive queue's chunks.
  size_t peek_views(std::span<std::span<const uint8_t>> out) const override {
    return app_rx_.peek_views(out);
  }
  void consume(size_t n) override;
  size_t readable_bytes() const override { return app_rx_.size(); }
  /// True once the peer's FIN has been delivered and the queue is drained.
  bool at_eof() const override { return fin_delivered_ && app_rx_.empty(); }

  /// Graceful close of the send direction (FIN after queued data).
  void close() override;
  /// Abortive close (RST).
  void abort();

  // --- introspection ----------------------------------------------------------
  TcpState state() const { return state_; }
  bool established() const override {
    return state_ == TcpState::kEstablished;
  }
  /// True while this end may still transmit data (the peer's FIN only
  /// closes its direction).
  bool can_send_data() const {
    return state_ == TcpState::kEstablished ||
           state_ == TcpState::kCloseWait;
  }
  /// True in any synchronized state where emitting an ACK is legal.
  bool can_send_ack() const {
    switch (state_) {
      case TcpState::kEstablished:
      case TcpState::kFinWait1:
      case TcpState::kFinWait2:
      case TcpState::kCloseWait:
      case TcpState::kClosing:
      case TcpState::kLastAck:
        return true;
      default:
        return false;
    }
  }
  const Stats& stats() const { return stats_; }
  const TcpConfig& config() const { return config_; }
  Endpoint local() const { return local_; }
  Endpoint remote() const { return remote_; }
  Host& host() { return host_; }

  SimTime srtt() const { return rtt_.srtt(); }
  SimTime min_rtt() const { return rtt_.min_rtt(); }
  SimTime rto() const { return rtt_.rto(); }
  uint64_t cwnd() const { return cc_->cwnd(); }
  CongestionControl& congestion_control() { return *cc_; }
  uint64_t flight_size() const { return snd_nxt_ - snd_una_; }
  uint64_t snd_una() const { return snd_una_; }
  uint64_t snd_nxt() const { return snd_nxt_; }
  uint64_t rcv_nxt() const { return rcv_nxt_; }
  uint64_t iss() const { return iss_; }
  uint64_t irs() const { return irs_; }
  /// Peer's current receive window as interpreted by this class.
  uint64_t peer_window() const { return snd_wnd_; }

  /// Send-buffer occupancy in bytes (memory accounting, Fig. 5).
  size_t snd_buf_in_use() const { return snd_buf_.size(); }
  /// Receive-side memory: out-of-order chunks + unread in-order data.
  size_t rcv_buf_in_use() const {
    return reassembly_.ooo_bytes() + app_rx_.size();
  }
  size_t snd_buf_capacity() const { return snd_buf_capacity_; }
  size_t rcv_buf_capacity() const { return rcv_buf_capacity_; }
  size_t snd_buf_space() const {
    return snd_buf_capacity_ > snd_buf_.size()
               ? snd_buf_capacity_ - snd_buf_.size()
               : 0;
  }

  /// Receiver-side RTT estimate (from echoed timestamps), used by
  /// receive-buffer autotuning.
  SimTime receiver_rtt() const { return rcv_rtt_; }
  /// Receiver-side delivery-rate estimate in bytes/sec.
  double delivery_rate_bps() const;

  // --- SegmentHandler -----------------------------------------------------
  void on_segment(const TcpSegment& seg) override;

  /// Pushes any sendable data/control segments (called internally after
  /// every state change; public so schedulers can kick the connection).
  void try_send();

 protected:
  // --- hooks for MPTCP subflows -------------------------------------------
  /// Adds options to an outgoing SYN (active open).
  virtual void build_syn_options(std::vector<TcpOption>& opts);
  /// Adds options to an outgoing SYN/ACK; `syn` is the SYN being answered.
  virtual void build_synack_options(std::vector<TcpOption>& opts,
                                    const TcpSegment& syn);
  /// Adds options to every outgoing non-SYN segment. `payload_seq` is the
  /// unwrapped sequence of the first payload byte (snd_nxt for pure ACKs),
  /// `payload_len` the payload length.
  virtual void build_segment_options(std::vector<TcpOption>& opts,
                                     uint64_t payload_seq,
                                     size_t payload_len);
  /// Called for every acceptable incoming segment, before data processing.
  virtual void process_incoming_options(const TcpSegment& seg);
  /// Called when the connection reaches ESTABLISHED (both roles).
  virtual void on_established();
  /// Delivers in-order payload. `seq` is the unwrapped subflow sequence of
  /// bytes[0]. Default: append to the application receive queue.
  virtual void deliver_data(uint64_t seq, Payload bytes);
  /// Called when snd_una advances (subflow-level acknowledgment).
  virtual void on_bytes_acked(uint64_t new_snd_una);
  /// Called when the peer's FIN is consumed (end of subflow stream).
  virtual void on_peer_fin();
  /// Called on RST or on reaching CLOSED.
  virtual void on_connection_closed(bool reset);
  /// The receive window in bytes this endpoint advertises. Default: local
  /// receive-buffer headroom. MPTCP subflows return the meta window.
  virtual uint64_t advertised_window_bytes() const;
  /// Upper bound, in bytes beyond snd_una, that flow control permits us to
  /// send. Default: the peer's advertised window. MPTCP subflows return
  /// "unlimited" because allocation is governed at the meta level.
  virtual uint64_t flow_control_limit() const;
  /// Extra CPU charged at the host per received SYN (connection-setup cost
  /// model for Fig. 10/11); default none, MPTCP overrides.
  virtual SimTime syn_processing_cost() const { return 0; }
  /// Lets subclasses shorten an outgoing segment so it does not straddle
  /// an MPTCP mapping boundary (a packet can carry only one DSS option).
  virtual size_t clamp_segment_len(uint64_t /*seq*/, size_t len) const {
    return len;
  }

  // Internals available to subclasses.
  void enter_state(TcpState s);
  void send_segment(TcpSegment seg);
  /// Emits a pure ACK now (used by subflows to push DATA_ACK updates).
  void send_ack();
  void send_rst();
  void reset_from_peer();
  uint32_t effective_mss() const { return config_.mss; }
  /// Scale shift applied to incoming raw window fields (peer's wscale).
  uint8_t incoming_window_scale() const { return snd_wscale_; }
  EventLoop& loop() { return host_.loop(); }
  Rng& rng() { return rng_; }
  bool fin_received() const { return fin_received_; }

  /// Grows the receive buffer (autotuning); never shrinks.
  void set_rcv_buf_capacity(size_t bytes);
  void set_snd_buf_capacity(size_t bytes);

 private:
  void handle_syn_sent(const TcpSegment& seg);
  void handle_syn_received(const TcpSegment& seg);
  void handle_synchronized(const TcpSegment& seg);
  void process_ack(const TcpSegment& seg);
  void process_payload(const TcpSegment& seg);
  void maybe_send_window_update();
  void send_syn(bool with_options);
  void send_synack();
  void send_data_segment(uint64_t seq, size_t len, bool retransmission);
  void maybe_send_fin();
  void on_rto();
  void on_persist();
  void arm_rto();
  /// Merges SACK blocks into the scoreboard; returns newly-sacked bytes.
  uint64_t merge_sack_blocks(const SackOption& sack);
  /// The RFC 6675 "pipe" estimate: bytes believed in flight. Sacked bytes
  /// were delivered; unsacked holes below the highest SACK are presumed
  /// lost (they have >= 3 SACKed segments above them). Both leave the
  /// pipe; retransmissions re-enter it. Without SACK this degenerates to
  /// the plain flight size.
  uint64_t cc_flight() const {
    const uint64_t lower =
        std::max(snd_una_, std::min(high_sacked_, snd_nxt_));
    return (snd_nxt_ - lower) + rtx_out_;
  }
  /// Retransmits scoreboard holes while the window allows (SACK recovery).
  void sack_retransmit();
  void enter_time_wait();
  void finish_close(bool reset);
  void take_rtt_sample_if_valid(uint64_t acked_through);
  void autotune_rcv_buf();
  uint32_t current_tsval() const;

  Host& host_;
  TcpConfig config_;
  Endpoint local_;
  Endpoint remote_;
  Rng rng_;
  std::unique_ptr<CongestionControl> cc_;
  RttEstimator rtt_;
  Timer rto_timer_;
  Timer persist_timer_;
  Timer time_wait_timer_;
  Timer delack_timer_;
  int delack_pending_ = 0;  ///< in-order data segments not yet ACKed

  TcpState state_ = TcpState::kClosed;
  bool active_open_ = false;

  // Send side (unwrapped 64-bit sequence space).
  uint64_t iss_ = 0;
  uint64_t snd_una_ = 0;
  uint64_t snd_nxt_ = 0;
  uint64_t snd_max_ = 0;  ///< highest sequence ever sent (BSD snd_max)
  uint64_t snd_wnd_ = 0;       ///< peer window in bytes (scaled)
  uint64_t snd_wl1_ = 0;       ///< seq of segment used for last window update
  uint64_t snd_wl2_ = 0;       ///< ack of segment used for last window update
  uint8_t snd_wscale_ = 0;     ///< shift to apply to incoming window fields
  bool ws_negotiated_ = false;
  SendBuffer snd_buf_;
  size_t snd_buf_capacity_ = 0;
  bool fin_pending_ = false;   ///< close() called; FIN after buffered data
  bool fin_sent_ = false;
  uint64_t fin_seq_ = 0;       ///< sequence occupied by our FIN
  int syn_retries_ = 0;
  int consecutive_timeouts_ = 0;

  // Loss recovery.
  int dupack_count_ = 0;
  bool in_recovery_ = false;
  uint64_t recovery_point_ = 0;
  uint64_t last_ack_for_dupack_ = 0;

  // SACK scoreboard (RFC 2018 / simplified RFC 6675).
  bool sack_ok_ = false;
  std::map<uint64_t, uint64_t> sacked_;  ///< begin -> end, disjoint
  uint64_t sacked_bytes_ = 0;
  uint64_t high_sacked_ = 0;
  uint64_t rtx_next_hint_ = 0;  ///< next hole to probe during recovery
  uint64_t rtx_out_ = 0;        ///< retransmitted bytes still unaccounted

  // RTT sampling (Karn): one outstanding timed segment.
  bool rtt_sample_pending_ = false;
  uint64_t rtt_sample_end_seq_ = 0;
  SimTime rtt_sample_sent_at_ = 0;

  // Receive side.
  uint64_t irs_ = 0;
  uint64_t rcv_nxt_ = 0;
  uint8_t rcv_wscale_ = 0;  ///< shift peer applies; we advertise >> this
  ReassemblyQueue reassembly_;
  RecvQueue app_rx_;
  size_t rcv_buf_capacity_ = 0;
  bool fin_received_ = false;
  bool fin_delivered_ = false;
  uint64_t peer_fin_seq_ = 0;
  uint64_t last_advertised_window_ = 0;

  // Timestamps (RFC 7323): we echo the peer's latest tsval; receiver-side
  // RTT estimation uses our own echoed tsvals.
  uint32_t ts_recent_ = 0;
  SimTime rcv_rtt_ = 0;

  // Receiver-side delivery-rate estimation for autotuning.
  SimTime rate_window_start_ = 0;
  uint64_t rate_window_bytes_ = 0;
  double delivery_rate_bps_ = 0;

  Stats stats_;
  bool bound_ = false;
  bool closed_notified_ = false;

  // Host-loop-wide aggregate observability (net/stats.h), shared by every
  // connection on the loop and cached as pointers so the hot paths pay a
  // single indirected increment. The per-connection Stats struct above
  // stays the source of per-connection truth.
  Counter* ct_segments_sent_ = nullptr;
  Counter* ct_segments_received_ = nullptr;
  Counter* ct_retransmits_ = nullptr;
  Counter* ct_fast_retransmits_ = nullptr;
  Counter* ct_rto_firings_ = nullptr;
  Counter* ct_persist_probes_ = nullptr;
  Counter* ct_rwnd_stalls_ = nullptr;
  Histogram* hist_cwnd_ = nullptr;      ///< sampled once per RTT measurement
  Histogram* hist_ssthresh_ = nullptr;  ///< sampled on every reduction
};

/// Accepts incoming SYNs on a port and spawns connections via a factory.
class TcpListener : public ListenHandler {
 public:
  /// The factory builds (and owns or registers) a connection for the SYN;
  /// it must call accept_syn() on the new connection.
  using AcceptFactory = std::function<void(const TcpSegment& syn)>;

  TcpListener(Host& host, Port port, AcceptFactory factory)
      : host_(host), port_(port), factory_(std::move(factory)) {
    host_.listen(port_, this);
  }
  ~TcpListener() override { host_.unlisten(port_); }

  void on_syn(const TcpSegment& seg) override { factory_(seg); }

 private:
  Host& host_;
  Port port_;
  AcceptFactory factory_;
};

}  // namespace mptcp
