// Congestion control.
//
// The connection drives the loss-recovery state machine (dupacks, fast
// retransmit, NewReno partial ACKs, timeouts) and informs the controller,
// which owns cwnd/ssthresh. NewReno lives here; the coupled Linked
// Increases controller (LIA, Wischik et al. NSDI'11) subclasses this
// interface in src/core, sharing state across the subflows of one MPTCP
// connection.
//
// Mechanism 4 of the paper -- capping cwnd when the smoothed RTT is double
// the base RTT, to stop autotuning from filling deep 3G buffers -- is
// implemented here as an optional inflight cap, mirroring FreeBSD's
// net.inet.tcp.inflight (section 4.2, Mechanisms 3 & 4).
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>

#include "sim/event_loop.h"

namespace mptcp {

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  virtual void init(uint32_t mss, uint32_t initial_cwnd_segments) = 0;

  /// Cumulative ACK of `bytes_acked` new bytes, outside loss recovery.
  /// `srtt`/`min_rtt` are the connection's current estimates (0 if none).
  virtual void on_ack(uint64_t bytes_acked, SimTime srtt, SimTime min_rtt) = 0;

  /// Third duplicate ACK: entering fast recovery. `flight_size` is the
  /// amount of outstanding data.
  virtual void on_enter_recovery(uint64_t flight_size) = 0;

  /// Further dupack while in recovery (window inflation).
  virtual void on_dupack_in_recovery() = 0;

  /// Partial ACK in recovery (NewReno deflation).
  virtual void on_partial_ack(uint64_t bytes_acked) = 0;

  /// ACK covering the recovery point: recovery complete.
  virtual void on_exit_recovery() = 0;

  /// Retransmission timeout.
  virtual void on_timeout(uint64_t flight_size) = 0;

  virtual uint64_t cwnd() const = 0;
  virtual uint64_t ssthresh() const = 0;
  virtual bool in_slow_start() const { return cwnd() < ssthresh(); }

  /// Mechanism 2 (penalization): halve cwnd and set ssthresh to the
  /// reduced window. The connection enforces the once-per-RTT limit.
  virtual void penalize() = 0;

  /// Times the Mechanism 4 inflight cap actually shrank cwnd
  /// (observability; 0 for controllers without the cap).
  virtual uint64_t cap_activations() const { return 0; }
};

/// Plain NewReno, cwnd in bytes, with optional M4 inflight capping.
class NewRenoCc : public CongestionControl {
 public:
  struct Options {
    bool cap_inflight = false;  ///< Mechanism 4
  };

  NewRenoCc() : opts_{} {}
  explicit NewRenoCc(Options opts) : opts_(opts) {}

  void init(uint32_t mss, uint32_t initial_cwnd_segments) override {
    mss_ = mss;
    cwnd_ = static_cast<double>(mss) * initial_cwnd_segments;
    ssthresh_ = 1e18;
  }

  void on_ack(uint64_t bytes_acked, SimTime srtt, SimTime min_rtt) override {
    if (cwnd_ < ssthresh_) {
      cwnd_ += static_cast<double>(bytes_acked);  // slow start
    } else {
      // One MSS per RTT, byte-counted.
      cwnd_ += static_cast<double>(mss_) * static_cast<double>(bytes_acked) /
               cwnd_;
    }
    apply_cap(srtt, min_rtt);
  }

  void on_enter_recovery(uint64_t flight_size) override {
    ssthresh_ = std::max(static_cast<double>(flight_size) / 2.0,
                         2.0 * static_cast<double>(mss_));
    cwnd_ = ssthresh_ + 3.0 * static_cast<double>(mss_);
  }

  void on_dupack_in_recovery() override {
    cwnd_ += static_cast<double>(mss_);
  }

  void on_partial_ack(uint64_t bytes_acked) override {
    cwnd_ = std::max(static_cast<double>(mss_),
                     cwnd_ - static_cast<double>(bytes_acked) +
                         static_cast<double>(mss_));
  }

  void on_exit_recovery() override { cwnd_ = ssthresh_; }

  void on_timeout(uint64_t flight_size) override {
    ssthresh_ = std::max(static_cast<double>(flight_size) / 2.0,
                         2.0 * static_cast<double>(mss_));
    cwnd_ = static_cast<double>(mss_);
  }

  uint64_t cwnd() const override {
    return static_cast<uint64_t>(
        std::max(cwnd_, static_cast<double>(mss_)));
  }

  uint64_t ssthresh() const override {
    return static_cast<uint64_t>(ssthresh_);
  }

  uint64_t cap_activations() const override { return cap_activations_; }

  void penalize() override {
    // Guard from the reference implementation: a window already at or
    // below ssthresh has just been reduced -- halving again would crush
    // it toward zero and stall loss recovery entirely. (An untouched
    // initial ssthresh means no reduction ever happened; always act.)
    if (ssthresh_ < 1e17 && cwnd_ <= ssthresh_) return;
    cwnd_ = std::max(cwnd_ / 2.0, static_cast<double>(mss_));
    ssthresh_ = std::max(cwnd_, 2.0 * static_cast<double>(mss_));
  }

 protected:
  /// M4: when queueing delay exceeds one base RTT (srtt > 2*rtt_min),
  /// shrink cwnd toward ~2 base-BDPs so deep network buffers are not kept
  /// full (section 4.2, Mechanisms 3 & 4).
  void apply_cap(SimTime srtt, SimTime min_rtt) {
    if (!opts_.cap_inflight || srtt <= 0 || min_rtt <= 0) return;
    if (srtt > 2 * min_rtt) {
      const double cap = cwnd_ * 2.0 * static_cast<double>(min_rtt) /
                         static_cast<double>(srtt);
      if (cap < cwnd_) ++cap_activations_;
      cwnd_ = std::max(std::min(cwnd_, cap), static_cast<double>(mss_));
    }
  }

  Options opts_;
  uint32_t mss_ = 1460;
  double cwnd_ = 0;
  double ssthresh_ = 1e18;
  uint64_t cap_activations_ = 0;
};

}  // namespace mptcp
