#include "core/subflow.h"

#include <cassert>

#include "core/mptcp_connection.h"
#include "core/mptcp_stack.h"
#include "net/sha1.h"

namespace mptcp {

MptcpSubflow::MptcpSubflow(MptcpConnection& meta, size_t id, SubflowKind kind,
                           uint8_t addr_id, Host& host, TcpConfig config,
                           Endpoint local, Endpoint remote,
                           std::unique_ptr<CongestionControl> cc)
    : TcpConnection(host, config, local, remote, std::move(cc)),
      meta_(meta),
      id_(id),
      kind_(kind),
      addr_id_(addr_id),
      fallback_check_timer_(host.loop(),
                            [this] { check_peer_speaks_mptcp(); }) {
  local_nonce_ = rng().next_u32();
  register_stats();
}

MptcpSubflow::~MptcpSubflow() {
  // Sampled callbacks read members that are about to die.
  loop().stats().remove_scope(stats_scope_);
}

void MptcpSubflow::register_stats() {
  StatsRegistry& reg = loop().stats();
  stats_scope_ = meta_.stats_scope() + ".sf" + std::to_string(id_);
  // One registry entry for the whole subflow: views of the per-connection
  // TCP stats struct, read only at export. Subflow churn costs one map
  // insert at birth and one erase at death.
  reg.sampled_group(stats_scope_, [this](SampleSink& out) {
    out.emit("dss_mappings_emitted", static_cast<double>(n_mappings_));
    out.emit("scheduler_picks", static_cast<double>(n_picks_));
    out.emit("bytes_sent", static_cast<double>(stats().bytes_sent));
    out.emit("bytes_acked", static_cast<double>(stats().bytes_acked));
    out.emit("bytes_delivered", static_cast<double>(stats().bytes_delivered));
    out.emit("segments_sent", static_cast<double>(stats().segments_sent));
    out.emit("segments_received",
             static_cast<double>(stats().segments_received));
    out.emit("retransmits", static_cast<double>(stats().retransmits));
    out.emit("rto_firings", static_cast<double>(stats().timeouts));
    out.emit("srtt_us",
             static_cast<double>(srtt()) / 1e3);  // SimTime is nanoseconds
    out.emit("cwnd_bytes", static_cast<double>(cwnd()));
  });
}

// ---------------------------------------------------------------------------
// Meta-facing sending interface.
// ---------------------------------------------------------------------------

void MptcpSubflow::push_mapped(uint64_t dsn, Payload bytes) {
  ++n_mappings_;
  meta_.count_dss_mapping();
  MappingRecord rec;
  rec.ssn_begin = snd_buf_end();
  rec.ssn_rel = static_cast<uint32_t>(rec.ssn_begin - iss());
  rec.dsn = dsn;
  rec.length = static_cast<uint32_t>(bytes.size());
  if (meta_.dss_checksum_enabled()) {
    // The payload sum is computed once per buffer and cached; the TCP wire
    // checksum reuses it when these bytes are segmented (section 3.3.6).
    rec.checksum =
        dss_checksum_from_partial(rec.dsn, rec.ssn_rel,
                                  static_cast<uint16_t>(rec.length),
                                  bytes.folded_sum());
  }
  tx_mappings_.add(rec);
  [[maybe_unused]] const size_t expected = bytes.size();
  [[maybe_unused]] const size_t accepted =
      TcpConnection::write_shared(std::move(bytes));
  assert(accepted == expected &&
         "subflow send buffers are sized by the meta level");
}

void MptcpSubflow::send_data_fin(uint64_t dsn) {
  announce_data_fin_ = dsn;
  if (can_send_data()) send_ack();
}

// ---------------------------------------------------------------------------
// Option construction.
// ---------------------------------------------------------------------------

void MptcpSubflow::build_syn_options(std::vector<TcpOption>& opts) {
  switch (kind_) {
    case SubflowKind::kInitialActive: {
      MpCapableOption mpc;
      mpc.version = 0;
      mpc.checksum_required = meta_.config().dss_checksum;
      mpc.sender_key = meta_.local_key();
      opts.push_back(mpc);
      break;
    }
    case SubflowKind::kJoinActive: {
      MpJoinOption mpj;
      mpj.phase = JoinPhase::kSyn;
      mpj.addr_id = addr_id_;
      mpj.backup = backup_;
      mpj.token = meta_.remote_token();
      mpj.nonce = local_nonce_;
      opts.push_back(mpj);
      break;
    }
    default:
      break;  // passive sides never send a plain SYN
  }
}

void MptcpSubflow::build_synack_options(std::vector<TcpOption>& opts,
                                        const TcpSegment&) {
  if (meta_.mode() == MptcpMode::kFallbackTcp) return;
  switch (kind_) {
    case SubflowKind::kInitialPassive: {
      MpCapableOption mpc;
      mpc.version = 0;
      mpc.checksum_required = meta_.config().dss_checksum;
      mpc.sender_key = meta_.local_key();
      opts.push_back(mpc);
      break;
    }
    case SubflowKind::kJoinPassive: {
      MpJoinOption mpj;
      mpj.phase = JoinPhase::kSynAck;
      mpj.addr_id = addr_id_;
      mpj.nonce = local_nonce_;
      mpj.mac = mptcp_join_mac64(meta_.local_key(), meta_.remote_key(),
                                 local_nonce_, remote_nonce_);
      opts.push_back(mpj);
      break;
    }
    default:
      break;
  }
}

void MptcpSubflow::build_segment_options(std::vector<TcpOption>& opts,
                                         uint64_t payload_seq,
                                         size_t payload_len) {
  if (meta_.mode() == MptcpMode::kFallbackTcp) return;

  // Section 3.1: the third ACK of the handshake can be lost, so the
  // MP_CAPABLE echo rides outgoing pure ACKs until the peer has
  // demonstrably seen it (its first DSS proves that). Data segments carry
  // a DSS instead -- equally conclusive to the peer, and the 40-byte
  // option budget cannot fit both the echo and a mapping.
  if (echo_capable_ && !peer_dss_seen_ && payload_len == 0) {
    MpCapableOption mpc;
    mpc.version = 0;
    mpc.checksum_required = meta_.config().dss_checksum;
    mpc.sender_key = meta_.local_key();
    mpc.receiver_key = meta_.remote_key();
    opts.push_back(mpc);
  }
  if (echo_join_ack_ && !peer_dss_seen_ && payload_len == 0) {
    MpJoinOption mpj;
    mpj.phase = JoinPhase::kAck;
    mpj.mac = mptcp_join_mac64(meta_.local_key(), meta_.remote_key(),
                               local_nonce_, remote_nonce_);
    opts.push_back(mpj);
  }

  if (mptcp_confirmed_) {
    DssOption dss;
    dss.data_ack = meta_.meta_data_ack_value();
    if (payload_len > 0) {
      const MappingRecord* rec = tx_mappings_.find(payload_seq);
      if (rec != nullptr) {
        dss.mapping = DssMapping{
            rec->dsn, rec->ssn_rel, static_cast<uint16_t>(rec->length),
            rec->checksum};
        if (announce_data_fin_ &&
            rec->dsn + rec->length == *announce_data_fin_) {
          dss.data_fin = true;
        }
      }
    } else if (announce_data_fin_) {
      dss.data_fin = true;
      dss.data_fin_dsn = *announce_data_fin_;
    }
    opts.push_back(dss);
  }

  for (auto& opt : pending_control_options_) opts.push_back(std::move(opt));
  pending_control_options_.clear();
}

// ---------------------------------------------------------------------------
// Option processing.
// ---------------------------------------------------------------------------

void MptcpSubflow::process_incoming_options(const TcpSegment& seg) {
  const bool is_synack = seg.syn && seg.ack_flag;

  if (const auto* mpc = find_option<MpCapableOption>(seg.options)) {
    handle_mp_capable(*mpc, seg);
  } else if (is_synack && kind_ == SubflowKind::kInitialActive) {
    // A middlebox stripped MP_CAPABLE from the SYN/ACK (or the server does
    // not speak MPTCP): fall back to regular TCP (section 3.1).
    meta_.sf_no_mptcp_in_handshake();
  }

  if (const auto* mpj = find_option<MpJoinOption>(seg.options)) {
    handle_mp_join(*mpj, seg);
  } else if (is_synack && kind_ == SubflowKind::kJoinActive) {
    // MP_JOIN stripped: this path cannot carry a subflow. Kill it; the
    // connection continues on its other subflows.
    abort();
    return;
  }

  if (const auto* dss = find_option<DssOption>(seg.options)) {
    handle_dss(*dss, seg);
  }

  if (const auto* add = find_option<AddAddrOption>(seg.options)) {
    meta_.sf_add_addr(*add);
  }
  if (const auto* rem = find_option<RemoveAddrOption>(seg.options)) {
    meta_.sf_remove_addr(rem->addr_id);
  }
  if (const auto* prio = find_option<MpPrioOption>(seg.options)) {
    meta_.sf_mp_prio(this, *prio);
  }
  if (find_option<MpFastcloseOption>(seg.options) != nullptr) {
    meta_.sf_fastclose();
    return;
  }

  // Section 3.1 server side: if the first non-SYN packet carries no MPTCP
  // option at all, the MP_CAPABLE echo never made it -- a middlebox is
  // stripping options from data segments; fall back immediately. (The
  // client-side check is timer-based -- see on_established -- because a
  // middlebox may inject genuinely TCP-only ACKs, e.g. pro-active ACKing
  // proxies, racing the server's real DSS-bearing segments.)
  if (kind_ == SubflowKind::kInitialPassive && !seg.syn &&
      !first_non_syn_checked_) {
    first_non_syn_checked_ = true;
    bool any_mptcp = false;
    for (const auto& o : seg.options) any_mptcp |= is_mptcp_option(o);
    if (!any_mptcp) meta_.sf_first_packet_lacks_mptcp();
  }
}

void MptcpSubflow::handle_mp_capable(const MpCapableOption& mpc,
                                     const TcpSegment& seg) {
  if (seg.syn && seg.ack_flag) {
    // SYN/ACK at the client: server's key.
    if (kind_ == SubflowKind::kInitialActive && mpc.sender_key) {
      meta_.sf_capable_synack(*mpc.sender_key, mpc.checksum_required);
      mptcp_confirmed_ = true;
      echo_capable_ = true;
    }
  } else if (seg.syn) {
    // SYN at the server: client's key (recorded by accept()).
  } else {
    // Third ACK (or a later echo) at the server: both keys.
    if (kind_ == SubflowKind::kInitialPassive && mpc.sender_key &&
        mpc.receiver_key && !mptcp_confirmed_) {
      if (*mpc.receiver_key == meta_.local_key()) {
        mptcp_confirmed_ = true;
        meta_.sf_capable_confirmed(*mpc.sender_key, *mpc.receiver_key);
      }
    }
    first_non_syn_checked_ = true;
  }
}

void MptcpSubflow::handle_mp_join(const MpJoinOption& mpj,
                                  const TcpSegment& seg) {
  switch (mpj.phase) {
    case JoinPhase::kSyn:
      // Server side: nonce recorded; the meta already routed by token.
      remote_nonce_ = mpj.nonce;
      peer_addr_id_ = mpj.addr_id;
      break;
    case JoinPhase::kSynAck: {
      if (kind_ != SubflowKind::kJoinActive) break;
      remote_nonce_ = mpj.nonce;
      peer_addr_id_ = mpj.addr_id;
      const uint64_t expected =
          mptcp_join_mac64(meta_.remote_key(), meta_.local_key(),
                           remote_nonce_, local_nonce_);
      if (mpj.mac != expected) {
        // Bad authentication: never join an unverified subflow.
        abort();
        return;
      }
      mptcp_confirmed_ = true;
      echo_join_ack_ = true;
      break;
    }
    case JoinPhase::kAck: {
      if (kind_ != SubflowKind::kJoinPassive || mptcp_confirmed_) break;
      (void)seg;
      const uint64_t expected =
          mptcp_join_mac64(meta_.remote_key(), meta_.local_key(),
                           remote_nonce_, local_nonce_);
      if (mpj.mac != expected) {
        abort();
        return;
      }
      mptcp_confirmed_ = true;
      break;
    }
  }
}

void MptcpSubflow::handle_dss(const DssOption& dss, const TcpSegment& seg) {
  if (!peer_dss_seen_) {
    peer_dss_seen_ = true;
    meta_.sf_peer_dss_seen();
    // A join's passive side is confirmed by the ACK MAC; the active side
    // by the SYN/ACK MAC; the initial passive side by the capable echo.
    // Seeing a DSS from the peer is equally conclusive.
    if (!mptcp_confirmed_ &&
        (kind_ == SubflowKind::kInitialPassive ||
         kind_ == SubflowKind::kInitialActive)) {
      mptcp_confirmed_ = true;
    }
  }

  if (dss.data_ack) {
    const uint64_t window =
        uint64_t{seg.window} << incoming_window_scale();
    meta_.sf_dss_ack(*dss.data_ack, window);
  }

  if (dss.mapping) {
    const DssMapping& m = *dss.mapping;
    const uint64_t ssn_abs =
        seq_unwrap(rcv_nxt(), seq_wrap(irs() + m.ssn_rel));
    MappingRecord rec;
    rec.ssn_begin = ssn_abs;
    rec.ssn_rel = m.ssn_rel;
    rec.dsn = m.dsn;
    rec.length = m.length;
    rec.checksum = m.checksum;
    rx_mappings_.add(rec);
    if (dss.data_fin) meta_.sf_data_fin(m.dsn + m.length);
  } else if (dss.data_fin) {
    meta_.sf_data_fin(dss.data_fin_dsn);
  }
}

// ---------------------------------------------------------------------------
// Data path.
// ---------------------------------------------------------------------------

void MptcpSubflow::deliver_data(uint64_t seq, Payload bytes) {
  if (meta_.mode() == MptcpMode::kFallbackTcp) {
    meta_.sf_fallback_data(std::move(bytes));
    return;
  }
  const uint64_t end = seq + bytes.size();
  auto out = rx_mappings_.feed(seq, bytes, meta_.dss_checksum_enabled());
  for (auto& [dsn, data] : out.deliver) {
    meta_.sf_mapped_data(this, dsn, std::move(data));
  }
  if (!out.checksum_failures.empty()) {
    for (auto& [rec, data] : out.checksum_failures) {
      meta_.sf_checksum_failure(this, rec, std::move(data));
    }
    return;  // the meta may have reset us or disabled verification
  }
  rx_mappings_.release_below(end);
}

void MptcpSubflow::on_bytes_acked(uint64_t new_snd_una) {
  tx_mappings_.release_below(new_snd_una);
  meta_.sf_acked(this);
}

void MptcpSubflow::on_established() {
  meta_.sf_established(this);
  if (kind_ == SubflowKind::kInitialActive &&
      meta_.mode() == MptcpMode::kMptcp) {
    arm_fallback_check();
  }
}

void MptcpSubflow::arm_fallback_check() {
  fallback_check_timer_.arm_in(
      std::max<SimTime>(4 * std::max<SimTime>(srtt(), 10 * kMillisecond),
                        300 * kMillisecond));
}

void MptcpSubflow::check_peer_speaks_mptcp() {
  if (peer_dss_seen_ || meta_.mode() != MptcpMode::kMptcp ||
      !can_send_ack()) {
    return;
  }
  if (snd_una() > iss() + 1) {
    // The peer has acknowledged data yet never produced a single DSS: a
    // middlebox strips MPTCP options from non-SYN segments. Fall back.
    meta_.sf_first_packet_lacks_mptcp();
    return;
  }
  arm_fallback_check();  // idle connection: keep watching
}

void MptcpSubflow::on_peer_fin() { meta_.sf_peer_fin(this); }

void MptcpSubflow::on_connection_closed(bool reset) {
  meta_.sf_closed(this, reset);
}

uint64_t MptcpSubflow::advertised_window_bytes() const {
  return meta_.meta_receive_window();
}

uint64_t MptcpSubflow::flow_control_limit() const {
  // MPTCP interprets the receive window against the data sequence space;
  // subflow-level transmission is not separately flow controlled
  // (section 3.3.1). In fallback mode the subflow *is* the connection.
  if (meta_.mode() == MptcpMode::kFallbackTcp) {
    return TcpConnection::flow_control_limit();
  }
  return UINT64_MAX;
}

SimTime MptcpSubflow::syn_processing_cost() const {
  const MptcpConfig& cfg = meta_.config();
  const SimTime per_tokens =
      static_cast<SimTime>(meta_.stack().tokens().size()) *
      cfg.cost_per_token;
  switch (kind_) {
    case SubflowKind::kInitialPassive:
      return (meta_.mode() == MptcpMode::kFallbackTcp ? cfg.cost_tcp_syn
                                                      : cfg.cost_mpc_syn) +
             per_tokens;
    case SubflowKind::kJoinPassive:
      return cfg.cost_join_syn + per_tokens;
    default:
      return 0;
  }
}

size_t MptcpSubflow::clamp_segment_len(uint64_t seq, size_t len) const {
  if (meta_.mode() == MptcpMode::kFallbackTcp) return len;
  const MappingRecord* rec = tx_mappings_.find(seq);
  if (rec == nullptr) return len;
  return static_cast<size_t>(
      std::min<uint64_t>(len, rec->ssn_end() - seq));
}

}  // namespace mptcp
