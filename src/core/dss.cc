#include "core/dss.h"

namespace mptcp {

uint16_t dss_checksum_from_partial(uint64_t dsn, uint32_t ssn_rel,
                                   uint16_t length, uint16_t payload_sum) {
  ChecksumAccumulator acc;
  acc.add_u64(dsn);
  acc.add_u32(ssn_rel);
  acc.add_word(length);
  acc.add_partial(payload_sum);
  return acc.finish();
}

uint16_t dss_checksum(uint64_t dsn, uint32_t ssn_rel, uint16_t length,
                      std::span<const uint8_t> payload) {
  return dss_checksum_from_partial(dsn, ssn_rel, length,
                                   ones_complement_sum(payload));
}

// ---------------------------------------------------------------------------
// SenderMappings
// ---------------------------------------------------------------------------

const MappingRecord* SenderMappings::find(uint64_t ssn) const {
  auto it = map_.upper_bound(ssn);
  if (it == map_.begin()) return nullptr;
  --it;
  const MappingRecord& rec = it->second;
  return ssn < rec.ssn_end() ? &rec : nullptr;
}

void SenderMappings::release_below(uint64_t ssn) {
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->second.ssn_end() <= ssn) {
      it = map_.erase(it);
    } else {
      break;  // keyed in ssn order; later mappings end later
    }
  }
}

// ---------------------------------------------------------------------------
// ReceiverMappings
// ---------------------------------------------------------------------------

bool ReceiverMappings::add(MappingRecord rec) {
  auto it = map_.find(rec.ssn_begin);
  if (it != map_.end()) {
    const MappingRecord& have = it->second.rec;
    // TSO-split and retransmitted segments legitimately repeat a mapping.
    return have.dsn == rec.dsn && have.length == rec.length;
  }
  Tracked t;
  t.rec = rec;
  map_.emplace(rec.ssn_begin, std::move(t));
  return true;
}

ReceiverMappings::Output ReceiverMappings::feed(uint64_t ssn,
                                                const Payload& bytes,
                                                bool verify_checksums) {
  Output out;
  size_t offset = 0;
  while (offset < bytes.size()) {
    const uint64_t cur = ssn + offset;
    // Find the mapping containing `cur`.
    auto it = map_.upper_bound(cur);
    Tracked* tracked = nullptr;
    if (it != map_.begin()) {
      auto prev = std::prev(it);
      if (cur < prev->second.rec.ssn_end()) tracked = &prev->second;
    }
    if (tracked == nullptr) {
      // No mapping for these bytes (e.g. a coalescing middlebox kept only
      // one of two DSS options, section 3.3.5). They are dropped at the
      // data level up to the next known mapping; the sender's
      // connection-level retransmission recovers the hole.
      uint64_t next_start = it == map_.end() ? ssn + bytes.size()
                                             : it->second.rec.ssn_begin;
      const size_t len = static_cast<size_t>(
          std::min<uint64_t>(next_start, ssn + bytes.size()) - cur);
      unmapped_bytes_ += len;
      offset += len;
      continue;
    }
    const MappingRecord& rec = tracked->rec;
    const size_t len = static_cast<size_t>(
        std::min<uint64_t>(rec.ssn_end(), ssn + bytes.size()) - cur);
    Payload fragment = bytes.subview(offset, len);

    if (verify_checksums && rec.checksum) {
      // Bytes arrive in subflow order, so coverage within a mapping is
      // strictly sequential; hold everything until the mapping completes
      // and its checksum verifies. Fragments are held as shared views;
      // the sum is accumulated per fragment (add_bytes, not the cached
      // folded_sum: a fragment at an odd offset within the mapping needs
      // its bytes summed with the opposite parity).
      if (cur == rec.ssn_begin + tracked->covered) {
        tracked->acc.add_bytes(fragment.span());
        held_bytes_ += fragment.size();
        tracked->held_size += fragment.size();
        tracked->held.push_back(std::move(fragment));
        tracked->covered += len;
        if (tracked->covered == rec.length) {
          const uint16_t computed = dss_checksum_from_partial(
              rec.dsn, rec.ssn_rel, static_cast<uint16_t>(rec.length),
              tracked->acc.fold());
          held_bytes_ -= tracked->held_size;
          // One fragment (the common case) passes through as a shared
          // view; a straddled mapping is gathered once, here.
          Payload assembled = Payload::concat(tracked->held);
          if (computed == *rec.checksum) {
            out.deliver.emplace_back(rec.dsn, std::move(assembled));
          } else {
            out.checksum_failures.emplace_back(rec, std::move(assembled));
          }
          tracked->held.clear();
          tracked->held_size = 0;
        }
      }
      // Out-of-sequence re-feeds (retransmitted subflow data) were already
      // counted; ignore.
    } else {
      // No checksum in use: deliver the shared view immediately.
      out.deliver.emplace_back(rec.dsn_for(cur), std::move(fragment));
    }
    offset += len;
  }
  return out;
}

void ReceiverMappings::release_below(uint64_t ssn) {
  for (auto it = map_.begin(); it != map_.end();) {
    if (it->second.rec.ssn_end() <= ssn) {
      held_bytes_ -= it->second.held_size;
      it = map_.erase(it);
    } else {
      break;
    }
  }
}

}  // namespace mptcp
