// The connection-level out-of-order queue (section 4.3, Fig. 8).
//
// With MPTCP, subflow sequence numbers arrive in order but *data* sequence
// numbers are interleaved across subflows, so the receiver's out-of-order
// queue is long-lived and large; insertion cost dominates receiver CPU.
// Four insertion strategies are implemented, selectable at runtime:
//
//  * kRegular      -- Van Jacobson-style linear scan (what stock TCP does).
//  * kTree         -- balanced-tree index: O(log n) placement.
//  * kShortcuts    -- exploit batching: each subflow carries contiguous
//                     data-sequence runs, so remember where that subflow's
//                     next chunk is expected and insert in O(1); fall back
//                     to a scan when the hint misses.
//  * kAllShortcuts -- on a hint miss, iterate over *batches* (maximal
//                     contiguous runs) instead of individual chunks.
//
// The queue records comparison counts and hit rates so experiments can
// report the work per insert (the paper reports receiver CPU utilization).
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <unordered_map>

#include "core/mptcp_types.h"
#include "net/payload.h"

namespace mptcp {

struct MetaChunk {
  uint64_t dsn = 0;
  Payload bytes;  ///< shared view of the subflow's delivered payload
  size_t subflow_id = 0;

  uint64_t end() const { return dsn + bytes.size(); }
};

class MetaReceiveQueue {
 public:
  struct Stats {
    uint64_t inserts = 0;
    uint64_t comparisons = 0;     ///< ordering comparisons during location
    uint64_t shortcut_hits = 0;
    uint64_t shortcut_misses = 0;
    uint64_t duplicate_bytes = 0; ///< dropped overlap (re-injections)
    double comparisons_per_insert() const {
      return inserts == 0 ? 0.0
                          : static_cast<double>(comparisons) /
                                static_cast<double>(inserts);
    }
  };

  explicit MetaReceiveQueue(RecvAlgo algo) : algo_(algo) {}

  /// Inserts an out-of-order chunk. Anything below `floor` (already
  /// delivered) and any overlap with stored chunks is dropped; trims and
  /// splits are O(1) subviews of the arriving payload, never byte copies.
  void insert(uint64_t dsn, Payload bytes, size_t subflow_id, uint64_t floor);

  /// Pops the chunk at the head if it starts at or below rcv_nxt
  /// (trimmed to start exactly there).
  std::optional<MetaChunk> pop_ready(uint64_t rcv_nxt);

  size_t ooo_bytes() const { return ooo_bytes_; }
  size_t chunk_count() const { return chunks_.size(); }
  bool empty() const { return chunks_.empty(); }
  const Stats& stats() const { return stats_; }
  RecvAlgo algorithm() const { return algo_; }

 private:
  using List = std::list<MetaChunk>;

  /// Returns the first chunk with dsn >= target, counting work according
  /// to the active algorithm. `subflow_id` feeds the shortcut hint.
  List::iterator locate(uint64_t target, size_t subflow_id);

  List::iterator locate_linear(uint64_t target);
  List::iterator locate_tree(uint64_t target);
  List::iterator locate_batches(uint64_t target);

  /// Places a chunk before `pos`, maintaining all indexes.
  List::iterator place(List::iterator pos, MetaChunk chunk);
  /// Erases a chunk, maintaining all indexes.
  List::iterator erase(List::iterator it);
  /// Variant used when the chunk's bytes were already moved out; the true
  /// extent is passed explicitly so index maintenance stays correct.
  List::iterator erase(List::iterator it, uint64_t true_end,
                       size_t true_size);

  void rebuild_batch_heads();

  RecvAlgo algo_;
  List chunks_;  ///< sorted by dsn, pairwise disjoint
  size_t ooo_bytes_ = 0;
  Stats stats_;

  // kTree index.
  std::map<uint64_t, List::iterator> tree_;

  // kShortcuts / kAllShortcuts: last-inserted chunk per subflow.
  std::unordered_map<size_t, List::iterator> hints_;

  // kAllShortcuts: iterators to batch heads (first chunk of each maximal
  // contiguous run), in dsn order.
  std::list<List::iterator> batch_heads_;
  bool batch_heads_valid_ = true;
};

}  // namespace mptcp
