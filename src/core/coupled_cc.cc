#include "core/coupled_cc.h"

#include <algorithm>

namespace mptcp {

std::string_view to_string(CcAlgo a) {
  switch (a) {
    case CcAlgo::kLia: return "lia";
    case CcAlgo::kNewReno: return "new-reno";
  }
  return "?";
}

std::unique_ptr<CongestionControl> make_congestion_control(
    CcAlgo algo, CoupledGroup& group, NewRenoCc::Options opts) {
  switch (algo) {
    case CcAlgo::kNewReno: return std::make_unique<NewRenoCc>(opts);
    case CcAlgo::kLia: break;
  }
  return std::make_unique<LiaCc>(group, opts);
}

double CoupledGroup::alpha() const {
  double best_ratio = 0;   // max cwnd_i / rtt_i^2
  double sum_rate = 0;     // sum cwnd_i / rtt_i
  double total_cwnd = 0;
  for (const LiaCc* m : members_) {
    const double rtt = m->last_srtt() > 0 ? to_seconds(m->last_srtt()) : 0;
    if (rtt <= 0) continue;
    const double w = m->cwnd_bytes();
    best_ratio = std::max(best_ratio, w / (rtt * rtt));
    sum_rate += w / rtt;
    total_cwnd += w;
  }
  if (sum_rate <= 0 || total_cwnd <= 0) return 1.0;
  return total_cwnd * best_ratio / (sum_rate * sum_rate);
}

uint64_t CoupledGroup::total_cwnd() const {
  double total = 0;
  for (const LiaCc* m : members_) total += m->cwnd_bytes();
  return static_cast<uint64_t>(total);
}

void LiaCc::on_ack(uint64_t bytes_acked, SimTime srtt, SimTime min_rtt) {
  last_srtt_ = srtt;
  if (cwnd_ < ssthresh_) {
    // Slow start is uncoupled, as in the reference implementation.
    cwnd_ += static_cast<double>(bytes_acked);
    apply_cap(srtt, min_rtt);
    return;
  }
  const double total = static_cast<double>(group_.total_cwnd());
  const double a = group_.alpha();
  const double b = static_cast<double>(bytes_acked);
  const double mss = static_cast<double>(mss_);
  const double coupled = total > 0 ? a * b * mss / total : b * mss / cwnd_;
  const double uncoupled = b * mss / cwnd_;  // what TCP would add
  cwnd_ += std::min(coupled, uncoupled);
  apply_cap(srtt, min_rtt);
}

}  // namespace mptcp
