// Host-wide MPTCP state: the token table, listeners, and connection
// ownership. One MptcpStack per simulated host.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/keys.h"
#include "core/mptcp_connection.h"
#include "core/mptcp_types.h"
#include "sim/network.h"

namespace mptcp {

class MptcpStack {
 public:
  MptcpStack(Host& host, MptcpConfig config);
  ~MptcpStack();

  MptcpStack(const MptcpStack&) = delete;
  MptcpStack& operator=(const MptcpStack&) = delete;

  Host& host() { return host_; }
  EventLoop& loop() { return host_.loop(); }
  const MptcpConfig& config() const { return config_; }
  MptcpConfig& config() { return config_; }
  TokenTable& tokens() { return tokens_; }
  Rng& rng() { return rng_; }

  /// Active open from `local_addr` (an address of this host) to `remote`.
  /// The stack owns the connection; it is destroyed after close.
  MptcpConnection& connect(IpAddr local_addr, Endpoint remote);

  /// Passive open: accepted connections are handed to the callback.
  using AcceptCallback = std::function<void(MptcpConnection&)>;
  void listen(Port port, AcceptCallback cb);

  /// Deferred destruction (safe to call from connection callbacks).
  void destroy_later(MptcpConnection* conn);

  size_t live_connections() const { return conns_.size(); }
  /// Introspection (tests/tooling): the i-th live connection.
  MptcpConnection* connection(size_t i) {
    return i < conns_.size() ? conns_[i].get() : nullptr;
  }

 private:
  class Listener : public ListenHandler {
   public:
    Listener(MptcpStack& stack, Port port, AcceptCallback cb)
        : stack_(stack), port_(port), cb_(std::move(cb)) {
      stack_.host().listen(port_, this);
    }
    ~Listener() override { stack_.host().unlisten(port_); }
    void on_syn(const TcpSegment& seg) override { stack_.handle_syn(seg, cb_); }

   private:
    MptcpStack& stack_;
    Port port_;
    AcceptCallback cb_;
  };

  void handle_syn(const TcpSegment& seg, const AcceptCallback& cb);

  Host& host_;
  MptcpConfig config_;
  TokenTable tokens_;
  Rng rng_;
  std::vector<std::unique_ptr<Listener>> listeners_;
  std::vector<std::unique_ptr<MptcpConnection>> conns_;
};

}  // namespace mptcp
