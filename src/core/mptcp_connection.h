// The MPTCP connection ("meta socket"): the paper's primary contribution.
//
// Responsibilities, each traceable to a paper section:
//  * MP_CAPABLE negotiation with graceful fallback to TCP when middleboxes
//    strip options anywhere in the handshake or on the first data packet
//    (section 3.1).
//  * MP_JOIN subflow establishment authenticated by HMACs over the
//    connection keys, token-based connection lookup, ADD_ADDR /
//    REMOVE_ADDR path management (section 3.2).
//  * A single connection-level send buffer with explicit DATA_ACKs,
//    data-sequence mappings into per-subflow sequence spaces, and a shared
//    receive window interpreted against the data sequence space
//    (sections 3.3.1-3.3.5) -- the design that avoids both the
//    per-subflow-buffer deadlock and the payload-encoding deadlock.
//  * DSS checksum fallback handling for content-modifying middleboxes
//    (section 3.3.6).
//  * DATA_FIN teardown decoupled from subflow FINs (section 3.4).
//  * The sender-side buffer mechanisms: opportunistic retransmission (M1),
//    penalization of slow subflows (M2), buffer autotuning (M3), and cwnd
//    capping (M4) (section 4.2).
//  * The connection-level out-of-order receive queue with selectable
//    insertion algorithms (section 4.3).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/coupled_cc.h"
#include "core/keys.h"
#include "core/meta_recv.h"
#include "core/mptcp_types.h"
#include "core/path_manager.h"
#include "core/scheduler.h"
#include "core/subflow.h"
#include "tcp/tcp_buffers.h"
#include "tcp/tcp_socket.h"

namespace mptcp {

class MptcpStack;

class MptcpConnection final : public StreamSocket, private SchedulerHost {
 public:
  enum class Role : uint8_t { kClient, kServer };

  /// Client-side constructor; call connect() afterwards.
  MptcpConnection(MptcpStack& stack, Endpoint local, Endpoint remote);
  /// Server-side constructor; call accept(syn) afterwards.
  MptcpConnection(MptcpStack& stack, const TcpSegment& syn);
  ~MptcpConnection() override;

  MptcpConnection(const MptcpConnection&) = delete;
  MptcpConnection& operator=(const MptcpConnection&) = delete;

  void connect();
  void accept(const TcpSegment& syn);
  /// Accepts an MP_JOIN SYN routed to this connection by token.
  void accept_join(const TcpSegment& syn);

  // --- StreamSocket ----------------------------------------------------------
  size_t write(std::span<const uint8_t> bytes) override;
  size_t read(std::span<uint8_t> out) override;
  /// Zero-copy scatter read over the meta receive queue's chunks.
  size_t peek_views(std::span<std::span<const uint8_t>> out) const override {
    return app_rx_.peek_views(out);
  }
  void consume(size_t n) override;
  size_t readable_bytes() const override { return app_rx_.size(); }
  bool at_eof() const override {
    return data_fin_delivered_ && app_rx_.empty();
  }
  void close() override;
  bool established() const override;

  /// Abortive close: MP_FASTCLOSE + RST on all subflows.
  void abort();

  // --- introspection ---------------------------------------------------------
  MptcpMode mode() const { return mode_; }
  Role role() const { return role_; }
  size_t subflow_count() const { return subflows_.size(); }
  size_t usable_subflow_count() const;
  MptcpSubflow* subflow(size_t i) {
    return i < subflows_.size() ? subflows_[i].get() : nullptr;
  }
  uint64_t local_key() const { return local_key_; }
  uint64_t remote_key() const { return remote_key_; }
  uint32_t local_token() const { return local_token_; }
  uint32_t remote_token() const { return remote_token_; }

  uint64_t data_acked() const { return snd_una_d_; }
  uint64_t data_written() const { return meta_snd_end_ - snd_base_d_; }
  uint64_t data_delivered() const { return delivered_bytes_; }
  uint64_t bytes_in_flight_meta() const { return snd_nxt_d_ - snd_una_d_; }

  /// Sender-side memory: connection-level send queue occupancy (Fig. 5).
  size_t sender_memory() const { return meta_snd_.size(); }
  /// Receiver-side memory: connection + subflow reordering queues (Fig. 5).
  size_t receiver_memory() const;
  size_t meta_snd_capacity() const { return meta_snd_capacity_; }
  size_t meta_rcv_capacity() const { return meta_rcv_capacity_; }

  const MetaReceiveQueue::Stats& recv_queue_stats() const {
    return meta_recv_.stats();
  }

  struct MetaStats {
    uint64_t opportunistic_retransmits = 0;  ///< Mechanism 1 firings
    uint64_t penalizations = 0;              ///< Mechanism 2 firings
    uint64_t meta_rtx_timeouts = 0;
    uint64_t reinjected_bytes = 0;
    uint64_t checksum_failures = 0;
    uint64_t subflow_resets = 0;
    uint64_t fallbacks = 0;
    uint64_t rx_duplicate_bytes = 0;  ///< receiver-side: dropped duplicates
  };
  const MetaStats& meta_stats() const { return meta_stats_; }

  /// Scope prefix of this connection in the loop's StatsRegistry
  /// ("mptcp.client", "mptcp.server#2", ...); subflows publish under
  /// "<scope>.sf<id>".
  const std::string& stats_scope() const { return stats_scope_; }
  /// Called by subflows for every DSS mapping they emit.
  void count_dss_mapping() { ++n_dss_mappings_; }

  MptcpStack& stack() { return stack_; }
  const MptcpConfig& config() const { return config_; }

  /// When set, the owning stack frees this connection after it closes
  /// (used by workloads that churn many connections).
  void set_auto_destroy(bool v) { auto_destroy_ = v; }

  // --- path management (core/path_manager.h owns the policy) ------------------
  /// Opens an additional subflow from `local_addr` to `remote`.
  MptcpSubflow* open_subflow(IpAddr local_addr, Endpoint remote);
  /// Signals loss of a local address: aborts its subflows and sends
  /// REMOVE_ADDR on a surviving one (mobility, section 3.4).
  void remove_local_address(IpAddr addr) {
    path_manager_.remove_local_address(addr);
  }
  PathManager& path_manager() { return path_manager_; }

  // --- called by subflows (not application API) -------------------------------
  void sf_capable_synack(uint64_t peer_key, bool csum_required);
  void sf_capable_confirmed(uint64_t key_a, uint64_t key_b);
  void sf_no_mptcp_in_handshake();  ///< option stripped: fall back
  void sf_first_packet_lacks_mptcp();
  void sf_peer_dss_seen();
  void sf_established(MptcpSubflow* sf);
  void sf_closed(MptcpSubflow* sf, bool reset);
  void sf_peer_fin(MptcpSubflow* sf);
  void sf_acked(MptcpSubflow* sf);
  void sf_dss_ack(uint64_t data_ack, uint64_t window_bytes);
  void sf_mapped_data(MptcpSubflow* sf, uint64_t dsn, Payload bytes);
  void sf_fallback_data(Payload bytes);
  void sf_checksum_failure(MptcpSubflow* sf, const MappingRecord& rec,
                           Payload data);
  void sf_data_fin(uint64_t dsn);
  void sf_add_addr(const AddAddrOption& opt);
  void sf_remove_addr(uint8_t addr_id);
  void sf_mp_prio(MptcpSubflow* sf, const MpPrioOption& opt);
  void sf_fastclose();

  /// Asks the peer to treat subflow `i` as backup (sends MP_PRIO) and
  /// mirrors the priority for our own scheduling.
  void set_subflow_backup(size_t i, bool backup) {
    path_manager_.set_subflow_backup(i, backup);
  }

  uint64_t meta_data_ack_value() const;
  uint64_t meta_receive_window() const;
  bool dss_checksum_enabled() const { return checksum_in_use_; }
  uint64_t idsn_local() const { return idsn_local_; }
  uint64_t idsn_remote() const { return idsn_remote_; }

  /// Runs the packet scheduler: one pass of the configured policy over
  /// the buffered data (see core/scheduler.h), then the DATA_FIN rule
  /// and the meta RTO. M1/M2 fire from the policy's window-stall hook.
  void schedule();

  /// The connection's scheduling policy instance (owns rotation/cursor
  /// state; exposes pick/alloc counters and state_entries()).
  Scheduler& scheduler() { return *scheduler_; }
  /// This connection viewed through the scheduler's host interface (for
  /// tests and benches that drive a policy against live send state).
  SchedulerHost& scheduler_host() { return *this; }

 private:
  // --- SchedulerHost (the scheduler's window into this connection) -----------
  std::span<const std::unique_ptr<MptcpSubflow>> sched_subflows() override {
    return subflows_;
  }
  uint64_t sched_batch_bytes() const override {
    return uint64_t{config_.batch_segments} * config_.tcp.mss;
  }
  uint64_t sched_snd_una() const override { return snd_una_d_; }
  uint64_t sched_snd_nxt() const override { return snd_nxt_d_; }
  uint64_t sched_stream_end() const override { return meta_snd_.end_seq(); }
  uint64_t sched_window_edge() const override { return meta_right_edge_; }
  std::deque<std::pair<uint64_t, uint64_t>>& sched_reinject() override {
    return reinject_;
  }
  Payload sched_slice(uint64_t dsn, size_t len) override {
    return meta_snd_.slice_out(dsn, len);
  }
  void sched_record_alloc(uint64_t dsn, uint64_t len,
                          size_t sf_id) override {
    alloc_[dsn] = Alloc{len, sf_id};
    snd_nxt_d_ = dsn + len;
  }
  void sched_count_reinjected(uint64_t bytes) override {
    meta_stats_.reinjected_bytes += bytes;
  }
  void sched_note_pick(MptcpSubflow& sf) override {
    ++n_scheduler_picks_;
    sf.note_scheduler_pick();
  }
  void sched_window_blocked(MptcpSubflow& fast) override {
    window_blocked(&fast);
  }
  void register_stats();
  void init_client_keys();
  void fallback_to_tcp(const char* reason);
  void deliver_in_order(Payload bytes);
  void drain_meta_ooo();
  void check_data_fin_consumption();
  void maybe_finish_teardown();
  void maybe_send_meta_window_update();
  void window_blocked(MptcpSubflow* fast);
  uint64_t total_subflow_flight() const;
  MptcpSubflow* best_usable_subflow();
  void reinject_range(uint64_t dsn, uint64_t len);
  void on_meta_rto();
  void arm_meta_rto();
  void autotune_tick();
  std::unique_ptr<CongestionControl> make_cc();
  MptcpSubflow* create_subflow(SubflowKind kind, uint8_t addr_id,
                               Endpoint local, Endpoint remote);
  Host& host_for_subflows();
  void notify_closed_once();

  MptcpStack& stack_;
  MptcpConfig config_;
  Role role_;
  MptcpMode mode_ = MptcpMode::kNegotiating;
  bool checksum_in_use_ = true;

  uint64_t local_key_ = 0, remote_key_ = 0;
  uint32_t local_token_ = 0, remote_token_ = 0;
  uint64_t idsn_local_ = 0, idsn_remote_ = 0;
  bool token_registered_ = false;

  // The group must outlive the subflows: each subflow's LiaCc deregisters
  // from it on destruction (members destruct in reverse declaration order).
  CoupledGroup cc_group_;
  PathManager path_manager_{*this};
  std::vector<std::unique_ptr<MptcpSubflow>> subflows_;
  size_t next_subflow_id_ = 0;
  Endpoint pending_local_;   ///< endpoints for the initial subflow
  Endpoint pending_remote_;
  bool no_new_subflows_ = false;

  // --- sender state (data sequence space) -----------------------------------
  SendBuffer meta_snd_;
  uint64_t snd_base_d_ = 0;   ///< first data byte's dsn (idsn_local + 1)
  uint64_t meta_snd_end_ = 0; ///< == meta_snd_.end_seq(), tracked for stats
  uint64_t snd_una_d_ = 0;    ///< DATA_ACK received
  uint64_t snd_nxt_d_ = 0;    ///< next dsn to allocate to a subflow
  size_t meta_snd_capacity_ = 0;
  uint64_t meta_right_edge_ = 0;  ///< max(data_ack + window) seen
  struct Alloc {
    uint64_t len;
    size_t subflow_id;
  };
  std::map<uint64_t, Alloc> alloc_;  ///< dsn -> allocation record
  std::deque<std::pair<uint64_t, uint64_t>> reinject_;  ///< (dsn, len)
  uint64_t reinjected_until_ = 0;  ///< M1 high-water mark (monotonic)
  std::unique_ptr<Scheduler> scheduler_;  ///< policy + its private state
  std::map<size_t, SimTime> next_penalty_at_;  ///< per-subflow M2 limiter
  Timer meta_rto_timer_;
  int meta_rto_backoff_ = 1;

  bool data_fin_pending_ = false;   ///< close() called
  bool data_fin_allocated_ = false;
  uint64_t data_fin_dsn_ = 0;
  bool data_fin_acked_ = false;

  // --- receiver state ---------------------------------------------------------
  MetaReceiveQueue meta_recv_;
  uint64_t rcv_nxt_d_ = 0;
  RecvQueue app_rx_;
  size_t meta_rcv_capacity_ = 0;
  uint64_t delivered_bytes_ = 0;
  uint64_t last_advertised_meta_window_ = 0;
  bool remote_data_fin_seen_ = false;
  uint64_t remote_data_fin_dsn_ = 0;
  bool data_fin_delivered_ = false;

  // --- autotuning (M3) --------------------------------------------------------
  Timer autotune_timer_;
  std::map<size_t, uint64_t> last_acked_by_sf_;
  std::map<size_t, uint64_t> last_delivered_by_sf_;
  std::map<size_t, uint64_t> rx_bytes_by_sf_;
  std::map<size_t, double> tx_rate_bps_;  ///< per-subflow EMA
  std::map<size_t, double> rx_rate_bps_;
  SimTime last_autotune_ = 0;

  MetaStats meta_stats_;

  // Observability (net/stats.h): hot paths bump these plain fields; the
  // registry reads them only at export, through ONE sampled_group entry
  // per connection (register_stats()), removed wholesale by the
  // destructor. Connection churn therefore costs one registry insert and
  // one erase, however many values the scope exposes.
  std::string stats_scope_;
  uint64_t n_scheduler_picks_ = 0;
  uint64_t n_dss_mappings_ = 0;
  uint64_t n_data_ack_advances_ = 0;
  uint64_t n_data_acked_bytes_ = 0;
  uint64_t n_window_stalls_ = 0;
  uint64_t n_autotune_resizes_ = 0;

  bool closed_notified_ = false;
  bool connected_notified_ = false;
  bool fastclose_sent_ = false;
  bool auto_destroy_ = false;
};

}  // namespace mptcp
