// An MPTCP subflow: a full TCP connection extended with MPTCP option
// processing, data-sequence mappings, and connection-level ("meta")
// window semantics.
//
// On the wire a subflow is indistinguishable from ordinary TCP apart from
// its options -- that is the deployability core of the design (section 3):
// per-subflow contiguous sequence spaces keep NATs, firewalls and proxies
// happy, while DSS options carry the connection-level metadata.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/dss.h"
#include "core/mptcp_types.h"
#include "tcp/tcp_connection.h"

namespace mptcp {

class MptcpConnection;

enum class SubflowKind : uint8_t {
  kInitialActive,   ///< client side of the MP_CAPABLE handshake
  kInitialPassive,  ///< server side of the MP_CAPABLE handshake
  kJoinActive,      ///< client side of an MP_JOIN handshake
  kJoinPassive,     ///< server side of an MP_JOIN handshake
};

class MptcpSubflow final : public TcpConnection {
 public:
  MptcpSubflow(MptcpConnection& meta, size_t id, SubflowKind kind,
               uint8_t addr_id, Host& host, TcpConfig config, Endpoint local,
               Endpoint remote, std::unique_ptr<CongestionControl> cc);
  ~MptcpSubflow() override;

  size_t id() const { return id_; }
  SubflowKind kind() const { return kind_; }
  uint8_t addr_id() const { return addr_id_; }
  /// The peer's address id for this subflow (from its MP_JOIN), used to
  /// honour REMOVE_ADDR.
  uint8_t peer_addr_id() const { return peer_addr_id_; }
  bool is_initial() const {
    return kind_ == SubflowKind::kInitialActive ||
           kind_ == SubflowKind::kInitialPassive;
  }
  bool backup() const { return backup_; }
  void set_backup(bool b) { backup_ = b; }

  /// True once the subflow may carry MPTCP data (handshake complete and
  /// MPTCP confirmed end to end). A peer's subflow FIN only closes its
  /// direction; we may keep sending (section 3.4).
  bool mptcp_usable() const { return can_send_data() && mptcp_confirmed_; }

  // --- meta-side sending interface -----------------------------------------
  /// Queues `bytes` mapped at data sequence `dsn` for transmission on this
  /// subflow. Creates the mapping record (and DSS checksum, reusing the
  /// payload's cached folded sum) and hands the shared bytes to the TCP
  /// send path without copying.
  void push_mapped(uint64_t dsn, Payload bytes);

  /// Bytes queued but not yet put on the wire.
  uint64_t unsent_bytes() const { return snd_buf_end() - snd_nxt(); }

  /// How many more bytes the congestion window would accept right now,
  /// rounded up to whole segments: like TCP, a subflow with any window
  /// room sends a full MSS (otherwise fractional cwnd growth would shave
  /// allocations into dust-sized mappings and segments).
  uint64_t cwnd_space() const {
    const uint64_t used = flight_size() + unsent_bytes();
    const uint64_t w = cwnd();
    if (used >= w) return 0;
    const uint64_t mss = config().mss;
    return (w - used + mss - 1) / mss * mss;
  }

  /// Announces a DATA_FIN at `dsn` on this subflow: an explicit DSS
  /// carrying only the DATA_FIN is emitted (and re-emitted by the meta
  /// retransmit timer until DATA_ACKed).
  void send_data_fin(uint64_t dsn);

  /// Emits a pure ACK so the peer sees our latest DATA_ACK / window.
  void push_meta_ack() { send_ack(); }

  /// Queues a control option (ADD_ADDR, REMOVE_ADDR, MP_PRIO) to ride on
  /// the next outgoing segment.
  void queue_control_option(TcpOption opt) {
    pending_control_options_.push_back(std::move(opt));
  }
  /// Emits any queued control options immediately on a pure ACK.
  void flush_control_options() {
    if (!pending_control_options_.empty()) send_ack();
  }

  uint64_t snd_buf_end() const { return snd_una() + snd_buf_in_use(); }

  /// MP_JOIN handshake nonces/macs (exposed for tests).
  uint32_t local_nonce() const { return local_nonce_; }

  /// Subflow-level receive stats.
  uint64_t unmapped_dropped_bytes() const {
    return rx_mappings_.unmapped_bytes();
  }

  /// Registry prefix for this subflow ("<meta scope>.sf<id>").
  const std::string& stats_scope() const { return stats_scope_; }

  /// The meta scheduler chose this subflow for a chunk of data.
  void note_scheduler_pick() { ++n_picks_; }

 protected:
  // --- TcpConnection hooks --------------------------------------------------
  void build_syn_options(std::vector<TcpOption>& opts) override;
  void build_synack_options(std::vector<TcpOption>& opts,
                            const TcpSegment& syn) override;
  void build_segment_options(std::vector<TcpOption>& opts,
                             uint64_t payload_seq, size_t payload_len) override;
  void process_incoming_options(const TcpSegment& seg) override;
  void on_established() override;
  void deliver_data(uint64_t seq, Payload bytes) override;
  void on_bytes_acked(uint64_t new_snd_una) override;
  void on_peer_fin() override;
  void on_connection_closed(bool reset) override;
  uint64_t advertised_window_bytes() const override;
  uint64_t flow_control_limit() const override;
  SimTime syn_processing_cost() const override;
  size_t clamp_segment_len(uint64_t seq, size_t len) const override;

 private:
  void register_stats();
  void handle_mp_capable(const MpCapableOption& mpc, const TcpSegment& seg);
  void handle_mp_join(const MpJoinOption& mpj, const TcpSegment& seg);
  void handle_dss(const DssOption& dss, const TcpSegment& seg);
  void arm_fallback_check();
  void check_peer_speaks_mptcp();

  MptcpConnection& meta_;
  size_t id_;
  SubflowKind kind_;
  uint8_t addr_id_;
  uint8_t peer_addr_id_ = 0;
  bool backup_ = false;

  bool mptcp_confirmed_ = false;   ///< MPTCP active end-to-end on this subflow
  bool peer_dss_seen_ = false;     ///< peer demonstrably speaks MPTCP
  bool echo_capable_ = false;      ///< keep attaching MP_CAPABLE(A,B)
  bool echo_join_ack_ = false;     ///< keep attaching MP_JOIN ack MAC
  bool first_non_syn_checked_ = false;

  uint32_t local_nonce_ = 0;
  uint32_t remote_nonce_ = 0;

  SenderMappings tx_mappings_;
  ReceiverMappings rx_mappings_;

  std::optional<uint64_t> announce_data_fin_;
  std::vector<TcpOption> pending_control_options_;
  Timer fallback_check_timer_;

  std::string stats_scope_;
  uint64_t n_mappings_ = 0;  ///< DSS mappings created on this subflow
  uint64_t n_picks_ = 0;     ///< times the scheduler chose us
};

}  // namespace mptcp
