#include "core/keys.h"

namespace mptcp {

TokenTable::KeyToken TokenTable::generate_and_register(
    MptcpConnection* owner) {
  // Fast path: a precomputed key whose token is (still) free.
  while (!pool_.empty()) {
    const KeyToken kt = pool_.front();
    pool_.pop_front();
    if (table_.emplace(kt.token, owner).second) return kt;
  }
  for (;;) {
    const uint64_t key = rng_.next_u64();
    if (key == 0) continue;
    const uint32_t token = mptcp_token_from_key(key);
    if (table_.find(token) != table_.end()) continue;  // collision: retry
    table_.emplace(token, owner);
    return KeyToken{key, token, mptcp_idsn_from_key(key)};
  }
}

bool TokenTable::register_key(uint64_t key, MptcpConnection* owner) {
  const uint32_t token = mptcp_token_from_key(key);
  return table_.emplace(token, owner).second;
}

}  // namespace mptcp
