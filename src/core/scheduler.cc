#include "core/scheduler.h"

namespace mptcp {

std::string_view to_string(SchedulerPolicy p) {
  switch (p) {
    case SchedulerPolicy::kLowestRtt: return "lowest-rtt";
    case SchedulerPolicy::kRoundRobin: return "round-robin";
    case SchedulerPolicy::kRedundant: return "redundant";
  }
  return "?";
}

}  // namespace mptcp
