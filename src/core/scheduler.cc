#include "core/scheduler.h"

#include <algorithm>
#include <map>

#include "core/subflow.h"

namespace mptcp {

std::string_view to_string(SchedulerPolicy p) {
  switch (p) {
    case SchedulerPolicy::kLowestRtt: return "lowest-rtt";
    case SchedulerPolicy::kRoundRobin: return "round-robin";
    case SchedulerPolicy::kRedundant: return "redundant";
    case SchedulerPolicy::kBackupAware: return "backup-aware";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Base strategy: the shared scheduling pass.
// ---------------------------------------------------------------------------

void Scheduler::allocate(uint64_t /*dsn*/, uint64_t /*len*/,
                         MptcpSubflow& /*sf*/) {
  ++allocs_;
}

void Scheduler::on_subflow_closed(size_t /*sf_id*/) {}

size_t Scheduler::state_entries() const { return 0; }

MptcpSubflow* Scheduler::lowest_rtt_pick(SchedulerHost& host,
                                         uint64_t min_space,
                                         bool spill_on_block) {
  MptcpSubflow* best = nullptr;
  MptcpSubflow* best_backup = nullptr;
  bool regular_alive = false;
  for (const auto& sf : host.sched_subflows()) {
    if (!sf->mptcp_usable()) continue;
    if (!sf->backup()) regular_alive = true;
    if (sf->cwnd_space() < min_space) continue;
    MptcpSubflow*& slot = sf->backup() ? best_backup : best;
    if (slot == nullptr || sf->srtt() < slot->srtt()) slot = sf.get();
  }
  if (best != nullptr) return best;
  if (spill_on_block) {
    // Backup-aware relaxation: every primary is congestion-window
    // blocked (or dead), so spill onto the best backup rather than
    // letting the connection idle on spare backup capacity.
    return best_backup;
  }
  // A backup subflow only carries data when no regular subflow is alive
  // (not merely when the primary's window is momentarily full).
  return regular_alive ? nullptr : best_backup;
}

void Scheduler::run(SchedulerHost& h) {
  const uint64_t batch_bytes = h.sched_batch_bytes();

  for (;;) {
    MptcpSubflow* sf = pick(h, 1);
    if (sf == nullptr) break;

    // Re-injections (from dead subflows or the meta RTO) go first.
    auto& reinject = h.sched_reinject();
    if (!reinject.empty()) {
      auto [dsn, len] = reinject.front();
      reinject.pop_front();
      const uint64_t begin = std::max(dsn, h.sched_snd_una());
      const uint64_t end = dsn + len;
      if (end <= begin) continue;
      uint64_t n = std::min<uint64_t>({end - begin, sf->cwnd_space(),
                                       batch_bytes});
      if (n == 0) {
        reinject.push_front({begin, end - begin});
        break;
      }
      Payload bytes = h.sched_slice(begin, static_cast<size_t>(n));
      h.sched_count_reinjected(n);
      ++picks_;
      h.sched_note_pick(*sf);
      allocate(begin, n, *sf);
      sf->push_mapped(begin, std::move(bytes));
      sf->try_send();
      if (begin + n < end) reinject.push_front({begin + n, end - begin - n});
      continue;
    }

    const uint64_t snd_nxt = h.sched_snd_nxt();
    const uint64_t avail = h.sched_stream_end() - snd_nxt;
    const uint64_t window_edge = h.sched_window_edge();
    const uint64_t window_room =
        window_edge > snd_nxt ? window_edge - snd_nxt : 0;

    if (avail == 0 || window_room == 0) {
      // `sf` has congestion window to spare but the connection cannot
      // give it new data: either the shared receive window is full, or
      // the (equally sized) send buffer is fully allocated with its
      // trailing edge unacknowledged -- both are the "window stall" of
      // section 4.2, held up by whichever subflow owns the oldest chunk.
      if (h.sched_snd_una() < snd_nxt) h.sched_window_blocked(*sf);
      break;
    }

    const uint64_t n = std::min<uint64_t>(
        {batch_bytes, avail, window_room, sf->cwnd_space()});
    if (n == 0) break;

    Payload bytes = h.sched_slice(snd_nxt, static_cast<size_t>(n));
    h.sched_record_alloc(snd_nxt, n, sf->id());
    ++picks_;
    h.sched_note_pick(*sf);
    allocate(snd_nxt, n, *sf);
    sf->push_mapped(snd_nxt, std::move(bytes));
    sf->try_send();
  }
}

// ---------------------------------------------------------------------------
// Concrete policies.
// ---------------------------------------------------------------------------

namespace {

/// The paper's scheduler (section 4.2): lowest-srtt subflow with
/// congestion window space; backups only when no primary is alive.
class LowestRttScheduler final : public Scheduler {
 public:
  SchedulerPolicy policy() const override {
    return SchedulerPolicy::kLowestRtt;
  }

  MptcpSubflow* pick(SchedulerHost& h, uint64_t min_space) override {
    return lowest_rtt_pick(h, min_space, /*spill_on_block=*/false);
  }
};

/// Rotate across usable subflows with window space, ignoring RTTs -- the
/// strawman policy, kept for ablation (bench/ablation_scheduler).
class RoundRobinScheduler final : public Scheduler {
 public:
  SchedulerPolicy policy() const override {
    return SchedulerPolicy::kRoundRobin;
  }

  MptcpSubflow* pick(SchedulerHost& h, uint64_t min_space) override {
    const auto subflows = h.sched_subflows();
    const size_t n = subflows.size();
    for (size_t probe = 0; probe < n; ++probe) {
      MptcpSubflow* sf = subflows[(rr_next_ + probe) % n].get();
      if (sf->mptcp_usable() && !sf->backup() &&
          sf->cwnd_space() >= min_space) {
        rr_next_ = (rr_next_ + probe + 1) % n;
        return sf;
      }
    }
    // Fall through to the default policy for the backup-only case.
    return lowest_rtt_pick(h, min_space, /*spill_on_block=*/false);
  }

 private:
  size_t rr_next_ = 0;  ///< rotation cursor over subflow positions
};

/// Every subflow independently carries the whole stream: each keeps its
/// own cursor into the data sequence space and fills its window with
/// (mostly duplicate) copies. Maximum robustness, zero aggregation.
class RedundantScheduler final : public Scheduler {
 public:
  SchedulerPolicy policy() const override {
    return SchedulerPolicy::kRedundant;
  }

  MptcpSubflow* pick(SchedulerHost& h, uint64_t min_space) override {
    // Redundant has no single "next carrier"; for the shared epilogue
    // (DATA_FIN placement goes through best_usable_subflow, not here)
    // and for external probes, fall back to the default selection.
    return lowest_rtt_pick(h, min_space, /*spill_on_block=*/false);
  }

  void allocate(uint64_t dsn, uint64_t len, MptcpSubflow& sf) override {
    Scheduler::allocate(dsn, len, sf);
    cursor_[sf.id()] = dsn + len;
  }

  void run(SchedulerHost& h) override {
    const uint64_t batch_bytes = h.sched_batch_bytes();
    for (const auto& sf : h.sched_subflows()) {
      if (!sf->mptcp_usable()) continue;
      for (;;) {
        // The cursor never runs behind the cumulative DATA_ACK: data
        // below snd_una is already delivered, duplicating it is waste.
        const uint64_t ptr =
            std::max(cursor_[sf->id()], h.sched_snd_una());
        const uint64_t limit =
            std::min(h.sched_stream_end(), h.sched_window_edge());
        if (ptr >= limit) break;
        const uint64_t n = std::min<uint64_t>(
            {batch_bytes, limit - ptr, sf->cwnd_space()});
        if (n == 0) break;
        Payload bytes = h.sched_slice(ptr, static_cast<size_t>(n));
        const uint64_t snd_nxt = h.sched_snd_nxt();
        if (ptr + n > snd_nxt) {
          // First coverage of this range: record the allocation.
          h.sched_record_alloc(snd_nxt, ptr + n - snd_nxt, sf->id());
        } else {
          h.sched_count_reinjected(n);  // a duplicate copy
        }
        ++picks_;
        h.sched_note_pick(*sf);
        allocate(ptr, n, *sf);
        sf->push_mapped(ptr, std::move(bytes));
        sf->try_send();
      }
    }
  }

  void on_subflow_closed(size_t sf_id) override { cursor_.erase(sf_id); }

  size_t state_entries() const override { return cursor_.size(); }

 private:
  /// Per-subflow cursor into the data sequence space. Entries are erased
  /// on subflow teardown (ids are never reused, so a stale entry would
  /// be a leak, never a correctness bug).
  std::map<size_t, uint64_t> cursor_;
};

/// Lowest-RTT over primaries, but spills to the best backup whenever
/// every primary is congestion-window blocked -- MP_PRIO still ranks the
/// paths, it just stops meaning "idle while primaries are stuck".
class BackupAwareScheduler final : public Scheduler {
 public:
  SchedulerPolicy policy() const override {
    return SchedulerPolicy::kBackupAware;
  }

  MptcpSubflow* pick(SchedulerHost& h, uint64_t min_space) override {
    return lowest_rtt_pick(h, min_space, /*spill_on_block=*/true);
  }
};

}  // namespace

std::unique_ptr<Scheduler> Scheduler::make(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>();
    case SchedulerPolicy::kRedundant:
      return std::make_unique<RedundantScheduler>();
    case SchedulerPolicy::kBackupAware:
      return std::make_unique<BackupAwareScheduler>();
    case SchedulerPolicy::kLowestRtt:
      break;
  }
  return std::make_unique<LowestRttScheduler>();
}

}  // namespace mptcp
