#include "core/path_manager.h"

#include "core/mptcp_connection.h"
#include "core/mptcp_stack.h"

namespace mptcp {

uint8_t PathManager::local_addr_id(IpAddr addr) const {
  uint8_t addr_id = 0;
  const auto addrs = conn_.stack().host().addresses();
  for (size_t i = 0; i < addrs.size(); ++i) {
    if (addrs[i] == addr) addr_id = static_cast<uint8_t>(i);
  }
  return addr_id;
}

void PathManager::on_peer_confirmed() {
  // Advertise our additional addresses so a NATted client can open
  // subflows toward them (section 3.2: the explicit path).
  const auto addrs = conn_.stack().host().addresses();
  MptcpSubflow* initial = conn_.subflow(0);
  if (addrs.size() > 1 && initial != nullptr) {
    for (size_t i = 0; i < addrs.size(); ++i) {
      if (addrs[i] == initial->local().addr) continue;
      AddAddrOption add;
      add.addr_id = static_cast<uint8_t>(i);
      add.addr = addrs[i];
      add.port = initial->local().port;
      initial->queue_control_option(add);
    }
    initial->flush_control_options();
  }
}

void PathManager::on_subflow_established(MptcpSubflow* sf) {
  if (sf->is_initial() && conn_.role() == MptcpConnection::Role::kClient &&
      conn_.mode() == MptcpMode::kMptcp && conn_.config().full_mesh) {
    // Open a subflow from every additional local address (section 3.2:
    // the implicit, client-initiated path).
    for (IpAddr addr : conn_.stack().host().addresses()) {
      if (addr == sf->local().addr) continue;
      conn_.open_subflow(addr, sf->remote());
    }
  }
}

void PathManager::on_add_addr(const AddAddrOption& opt) {
  if (conn_.role() != MptcpConnection::Role::kClient ||
      !conn_.config().full_mesh || conn_.mode() != MptcpMode::kMptcp) {
    return;
  }
  // Open a subflow from each local address to the advertised one.
  for (size_t i = 0; i < conn_.subflow_count(); ++i) {
    if (conn_.subflow(i)->remote().addr == opt.addr) {
      return;  // already connected there
    }
  }
  MptcpSubflow* initial = conn_.subflow(0);
  const Port port =
      opt.port ? *opt.port : (initial == nullptr ? Port{0}
                                                 : initial->remote().port);
  for (IpAddr addr : conn_.stack().host().addresses()) {
    conn_.open_subflow(addr, Endpoint{opt.addr, port});
  }
}

void PathManager::on_remove_addr(uint8_t addr_id) {
  // Close subflows whose peer address id matches (section 3.4).
  for (size_t i = 0; i < conn_.subflow_count(); ++i) {
    MptcpSubflow* sf = conn_.subflow(i);
    if (sf->state() == TcpState::kClosed) continue;
    if (sf->peer_addr_id() == addr_id && !sf->is_initial()) sf->abort();
  }
}

void PathManager::on_mp_prio(MptcpSubflow* sf, const MpPrioOption& opt) {
  // The peer asks us to change our *sending* priority: for the subflow
  // carrying the option, or for all subflows toward one of its addresses.
  if (opt.addr_id) {
    for (size_t i = 0; i < conn_.subflow_count(); ++i) {
      MptcpSubflow* s = conn_.subflow(i);
      if (s->peer_addr_id() == *opt.addr_id) s->set_backup(opt.backup);
    }
  } else {
    sf->set_backup(opt.backup);
  }
  conn_.schedule();
}

void PathManager::set_subflow_backup(size_t i, bool backup) {
  MptcpSubflow* sf = conn_.subflow(i);
  if (sf == nullptr) return;
  sf->set_backup(backup);
  if (sf->can_send_ack()) {
    sf->queue_control_option(MpPrioOption{backup, std::nullopt});
    sf->flush_control_options();
  }
}

void PathManager::remove_local_address(IpAddr addr) {
  // Tell the peer on a surviving subflow first, then drop local state.
  const uint8_t addr_id = local_addr_id(addr);
  MptcpSubflow* survivor = nullptr;
  for (size_t i = 0; i < conn_.subflow_count(); ++i) {
    MptcpSubflow* sf = conn_.subflow(i);
    if (sf->state() != TcpState::kClosed && sf->local().addr != addr) {
      survivor = sf;
      break;
    }
  }
  if (survivor != nullptr) {
    survivor->queue_control_option(RemoveAddrOption{addr_id});
    survivor->flush_control_options();
  }
  for (size_t i = 0; i < conn_.subflow_count(); ++i) {
    MptcpSubflow* sf = conn_.subflow(i);
    if (sf->state() != TcpState::kClosed && sf->local().addr == addr) {
      sf->abort();
    }
  }
}

}  // namespace mptcp
