// Coupled congestion control: Linked Increases Algorithm (LIA).
//
// From Wischik, Raiciu, Greenhalgh, Handley, "Design, implementation and
// evaluation of congestion control for multipath TCP", NSDI 2011 -- the
// controller the paper's MPTCP implementation uses (its reference [23]).
//
// Window increase on subflow i per ACK of b bytes:
//     cwnd_i += min( alpha * b * mss / cwnd_total ,  b * mss / cwnd_i )
// with
//     alpha = cwnd_total * max_i(cwnd_i / rtt_i^2) / (sum_i cwnd_i/rtt_i)^2
// computed across the established subflows of one connection. The min()
// guarantees MPTCP is never more aggressive than TCP on any single path;
// alpha couples the increases so the connection as a whole takes one
// fair share and moves traffic away from congested paths. Decrease is
// standard per-subflow halving.
#pragma once

#include <memory>
#include <vector>

#include "core/mptcp_types.h"
#include "tcp/cc.h"

namespace mptcp {

class LiaCc;

/// Shared state across the subflows of one MPTCP connection.
class CoupledGroup {
 public:
  void add(LiaCc* cc) { members_.push_back(cc); }
  void remove(LiaCc* cc) {
    std::erase(members_, cc);
  }

  /// Recomputes alpha from current member cwnds/RTTs.
  double alpha() const;
  uint64_t total_cwnd() const;

 private:
  std::vector<LiaCc*> members_;
};

class LiaCc final : public NewRenoCc {
 public:
  LiaCc(CoupledGroup& group, Options opts) : NewRenoCc(opts), group_(group) {
    group_.add(this);
  }
  ~LiaCc() override { group_.remove(this); }

  void on_ack(uint64_t bytes_acked, SimTime srtt, SimTime min_rtt) override;

  SimTime last_srtt() const { return last_srtt_; }
  double cwnd_bytes() const { return cwnd_; }

 private:
  CoupledGroup& group_;
  SimTime last_srtt_ = 0;
};

/// Builds the configured controller for one subflow. LIA controllers
/// register with `group` (the connection's shared coupling state);
/// NewReno ignores it.
std::unique_ptr<CongestionControl> make_congestion_control(
    CcAlgo algo, CoupledGroup& group, NewRenoCc::Options opts);

}  // namespace mptcp
