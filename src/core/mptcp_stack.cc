#include "core/mptcp_stack.h"

namespace mptcp {

MptcpStack::MptcpStack(Host& host, MptcpConfig config)
    : host_(host),
      config_(config),
      tokens_(config.tcp.seed ^ 0xABCD),
      rng_(config.tcp.seed ^ 0x1234) {}

MptcpStack::~MptcpStack() = default;

MptcpConnection& MptcpStack::connect(IpAddr local_addr, Endpoint remote) {
  auto conn = std::make_unique<MptcpConnection>(
      *this, Endpoint{local_addr, host_.alloc_ephemeral_port()}, remote);
  MptcpConnection& ref = *conn;
  conns_.push_back(std::move(conn));
  ref.connect();
  return ref;
}

void MptcpStack::listen(Port port, AcceptCallback cb) {
  listeners_.push_back(
      std::make_unique<Listener>(*this, port, std::move(cb)));
}

void MptcpStack::handle_syn(const TcpSegment& seg, const AcceptCallback& cb) {
  if (const auto* join = find_option<MpJoinOption>(seg.options)) {
    // MP_JOIN: route to the owning connection by token; unknown tokens are
    // silently ignored (an RST would aid blind probing).
    if (MptcpConnection* conn = tokens_.find(join->token)) {
      conn->accept_join(seg);
    }
    return;
  }
  auto conn = std::make_unique<MptcpConnection>(*this, seg);
  MptcpConnection& ref = *conn;
  conns_.push_back(std::move(conn));
  ref.accept(seg);
  cb(ref);
}

void MptcpStack::destroy_later(MptcpConnection* conn) {
  // Deletion is deferred to a fresh event so it is safe from within the
  // connection's own callbacks.
  loop().schedule_in(0, [this, conn] {
    std::erase_if(conns_, [conn](const std::unique_ptr<MptcpConnection>& c) {
      return c.get() == conn;
    });
  });
}

}  // namespace mptcp
