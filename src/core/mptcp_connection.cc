#include "core/mptcp_connection.h"

#include <algorithm>
#include <cassert>

#include "core/mptcp_stack.h"

namespace mptcp {

namespace {
constexpr size_t kSubflowSendBufCap = size_t{1} << 40;  // meta governs
constexpr SimTime kAutotunePeriod = 50 * kMillisecond;
}  // namespace

MptcpConnection::MptcpConnection(MptcpStack& stack, Endpoint local,
                                 Endpoint remote)
    : stack_(stack),
      config_(stack.config()),
      role_(Role::kClient),
      meta_rto_timer_(stack.loop(), [this] { on_meta_rto(); }),
      meta_recv_(config_.recv_algo),
      autotune_timer_(stack.loop(), [this] { autotune_tick(); }) {
  checksum_in_use_ = config_.dss_checksum;
  meta_snd_capacity_ = config_.meta_autotune
                           ? std::min<size_t>(config_.meta_snd_buf_max,
                                              4 * config_.tcp.buf_initial)
                           : config_.meta_snd_buf_max;
  meta_rcv_capacity_ = config_.meta_autotune
                           ? std::min<size_t>(config_.meta_rcv_buf_max,
                                              4 * config_.tcp.buf_initial)
                           : config_.meta_rcv_buf_max;
  // Prime the subflow creation endpoint; connect() does the rest.
  pending_local_ = local;
  pending_remote_ = remote;
  scheduler_ = Scheduler::make(config_.scheduler);
  register_stats();
}

MptcpConnection::MptcpConnection(MptcpStack& stack, const TcpSegment& syn)
    : stack_(stack),
      config_(stack.config()),
      role_(Role::kServer),
      meta_rto_timer_(stack.loop(), [this] { on_meta_rto(); }),
      meta_recv_(config_.recv_algo),
      autotune_timer_(stack.loop(), [this] { autotune_tick(); }) {
  checksum_in_use_ = config_.dss_checksum;
  meta_snd_capacity_ = config_.meta_autotune
                           ? std::min<size_t>(config_.meta_snd_buf_max,
                                              4 * config_.tcp.buf_initial)
                           : config_.meta_snd_buf_max;
  meta_rcv_capacity_ = config_.meta_autotune
                           ? std::min<size_t>(config_.meta_rcv_buf_max,
                                              4 * config_.tcp.buf_initial)
                           : config_.meta_rcv_buf_max;
  pending_local_ = syn.tuple.dst;
  pending_remote_ = syn.tuple.src;
  scheduler_ = Scheduler::make(config_.scheduler);
  register_stats();
}

MptcpConnection::~MptcpConnection() {
  // Drop this connection's (and its subflows') registry entries before any
  // member destructs: the sampled callbacks read state that dies with us.
  stack_.loop().stats().remove_scope(stats_scope_);
  if (token_registered_) stack_.tokens().unregister(local_token_);
}

void MptcpConnection::register_stats() {
  StatsRegistry& reg = stack_.loop().stats();
  stats_scope_ = reg.unique_scope(
      role_ == Role::kClient ? "mptcp.client" : "mptcp.server");

  // One registry entry for the whole scope: the hot paths keep bumping
  // plain fields, this callback reads them only when someone exports.
  reg.sampled_group(stats_scope_, [this](SampleSink& out) {
    out.emit("scheduler_picks", static_cast<double>(n_scheduler_picks_));
    out.emit("dss_mappings_emitted", static_cast<double>(n_dss_mappings_));
    out.emit("data_ack_advances", static_cast<double>(n_data_ack_advances_));
    out.emit("data_acked_bytes", static_cast<double>(n_data_acked_bytes_));
    out.emit("window_stalls", static_cast<double>(n_window_stalls_));
    out.emit("m3_autotune_resizes", static_cast<double>(n_autotune_resizes_));
    out.emit("m1_opportunistic_rtx",
             static_cast<double>(meta_stats_.opportunistic_retransmits));
    out.emit("m2_penalizations",
             static_cast<double>(meta_stats_.penalizations));
    uint64_t caps = 0;
    for (auto& sf : subflows_)
      caps += sf->congestion_control().cap_activations();
    out.emit("m4_cap_activations", static_cast<double>(caps));
    out.emit("meta_rtx_timeouts",
             static_cast<double>(meta_stats_.meta_rtx_timeouts));
    out.emit("reinjected_bytes",
             static_cast<double>(meta_stats_.reinjected_bytes));
    out.emit("checksum_failures",
             static_cast<double>(meta_stats_.checksum_failures));
    out.emit("subflow_resets",
             static_cast<double>(meta_stats_.subflow_resets));
    out.emit("fallbacks", static_cast<double>(meta_stats_.fallbacks));
    out.emit("rx_duplicate_bytes",
             static_cast<double>(meta_stats_.rx_duplicate_bytes));
    out.emit("delivered_bytes", static_cast<double>(delivered_bytes_));
    out.emit("snd_mem_bytes", static_cast<double>(meta_snd_.size()));
    out.emit("rcv_mem_bytes", static_cast<double>(receiver_memory()));
    out.emit("rx_app_queue_bytes", static_cast<double>(app_rx_.size()));
    out.emit("subflows", static_cast<double>(subflows_.size()));
    out.emit("mode", static_cast<double>(mode_));
  });

  // Per-policy scheduler counters live in their own child scope (removed
  // with the parent by remove_scope). Opt-in: the determinism digests
  // fold the whole registry, so the keys must not appear by default.
  if (config_.sched_stats) {
    const std::string scope = stats_scope_ + ".sched." +
                              std::string(to_string(config_.scheduler));
    reg.sampled_group(scope, [this](SampleSink& out) {
      out.emit("picks", static_cast<double>(scheduler_->picks()));
      out.emit("allocs", static_cast<double>(scheduler_->allocs()));
      out.emit("state_entries",
               static_cast<double>(scheduler_->state_entries()));
    });
  }
}

// ---------------------------------------------------------------------------
// Opening.
// ---------------------------------------------------------------------------

std::unique_ptr<CongestionControl> MptcpConnection::make_cc() {
  NewRenoCc::Options opts;
  opts.cap_inflight = config_.cap_subflow_cwnd;
  return make_congestion_control(config_.cc_algo, cc_group_, opts);
}

MptcpSubflow* MptcpConnection::create_subflow(SubflowKind kind,
                                              uint8_t addr_id, Endpoint local,
                                              Endpoint remote) {
  TcpConfig cfg = config_.tcp;
  // The subflow's own buffers must never be the bottleneck: flow control
  // lives at the connection level. Window scaling is chosen from the meta
  // receive buffer.
  cfg.snd_buf_max = kSubflowSendBufCap;
  cfg.rcv_buf_max = std::max(cfg.rcv_buf_max, config_.meta_rcv_buf_max);
  cfg.autotune = false;
  cfg.seed = config_.tcp.seed ^ (next_subflow_id_ * 0x9e3779b9u) ^
             (role_ == Role::kClient ? 0x5u : 0xAu);
  auto sf = std::make_unique<MptcpSubflow>(*this, next_subflow_id_++, kind,
                                           addr_id, host_for_subflows(),
                                           cfg, local, remote, make_cc());
  MptcpSubflow* raw = sf.get();
  subflows_.push_back(std::move(sf));
  return raw;
}

Host& MptcpConnection::host_for_subflows() { return stack_.host(); }

void MptcpConnection::init_client_keys() {
  auto kt = stack_.tokens().generate_and_register(this);
  token_registered_ = true;
  local_key_ = kt.key;
  local_token_ = kt.token;
  idsn_local_ = kt.idsn;
  snd_base_d_ = idsn_local_ + 1;
  meta_snd_.reset(snd_base_d_);
  meta_snd_end_ = snd_base_d_;
  snd_una_d_ = snd_nxt_d_ = snd_base_d_;
}

void MptcpConnection::connect() {
  assert(role_ == Role::kClient);
  if (config_.enabled) {
    init_client_keys();
    mode_ = MptcpMode::kNegotiating;
  } else {
    mode_ = MptcpMode::kFallbackTcp;
  }
  MptcpSubflow* sf = create_subflow(SubflowKind::kInitialActive, 0,
                                    pending_local_, pending_remote_);
  if (config_.meta_autotune) autotune_timer_.arm_in(kAutotunePeriod);
  sf->connect();
}

void MptcpConnection::accept(const TcpSegment& syn) {
  assert(role_ == Role::kServer);
  const auto* mpc = find_option<MpCapableOption>(syn.options);
  if (mpc != nullptr && mpc->sender_key && config_.enabled) {
    mode_ = MptcpMode::kNegotiating;
    remote_key_ = *mpc->sender_key;
    remote_token_ = mptcp_token_from_key(remote_key_);
    idsn_remote_ = mptcp_idsn_from_key(remote_key_);
    rcv_nxt_d_ = idsn_remote_ + 1;
    checksum_in_use_ = config_.dss_checksum || mpc->checksum_required;

    auto kt = stack_.tokens().generate_and_register(this);
    token_registered_ = true;
    local_key_ = kt.key;
    local_token_ = kt.token;
    idsn_local_ = kt.idsn;
    snd_base_d_ = idsn_local_ + 1;
    meta_snd_.reset(snd_base_d_);
    meta_snd_end_ = snd_base_d_;
    snd_una_d_ = snd_nxt_d_ = snd_base_d_;
  } else {
    // Plain TCP client (or MPTCP disabled here): serve it as TCP.
    mode_ = MptcpMode::kFallbackTcp;
  }
  MptcpSubflow* sf = create_subflow(SubflowKind::kInitialPassive, 0,
                                    pending_local_, pending_remote_);
  if (config_.meta_autotune) autotune_timer_.arm_in(kAutotunePeriod);
  sf->accept_syn(syn);
}

void MptcpConnection::accept_join(const TcpSegment& syn) {
  // A join may race the initial subflow's third ACK on an equal-RTT path:
  // accept while still negotiating (both keys are known from the
  // MP_CAPABLE SYN); if negotiation later falls back, fallback_to_tcp()
  // aborts all non-initial subflows.
  if (mode_ == MptcpMode::kFallbackTcp || no_new_subflows_) return;
  // Refuse duplicate joins for a 4-tuple we already track.
  for (const auto& sf : subflows_) {
    if (sf->local() == syn.tuple.dst && sf->remote() == syn.tuple.src) return;
  }
  MptcpSubflow* sf = create_subflow(SubflowKind::kJoinPassive, 0,
                                    syn.tuple.dst, syn.tuple.src);
  sf->accept_syn(syn);
}

MptcpSubflow* MptcpConnection::open_subflow(IpAddr local_addr,
                                            Endpoint remote) {
  if (mode_ != MptcpMode::kMptcp || no_new_subflows_) return nullptr;
  // Address ids index the local address list.
  const uint8_t addr_id = path_manager_.local_addr_id(local_addr);
  MptcpSubflow* sf = create_subflow(
      SubflowKind::kJoinActive, addr_id,
      Endpoint{local_addr, stack_.host().alloc_ephemeral_port()}, remote);
  sf->connect();
  return sf;
}

// ---------------------------------------------------------------------------
// StreamSocket.
// ---------------------------------------------------------------------------

bool MptcpConnection::established() const {
  if (subflows_.empty()) return false;
  if (mode_ == MptcpMode::kFallbackTcp) return subflows_[0]->established();
  for (const auto& sf : subflows_) {
    if (sf->mptcp_usable()) return true;
  }
  return false;
}

size_t MptcpConnection::usable_subflow_count() const {
  size_t n = 0;
  for (const auto& sf : subflows_) n += sf->mptcp_usable() ? 1 : 0;
  return n;
}

size_t MptcpConnection::write(std::span<const uint8_t> bytes) {
  if (data_fin_pending_ || data_fin_allocated_) return 0;
  if (mode_ == MptcpMode::kFallbackTcp) {
    return subflows_.empty() ? 0 : subflows_[0]->write(bytes);
  }
  const size_t n = meta_snd_.append(bytes, meta_snd_capacity_);
  meta_snd_end_ = meta_snd_.end_seq();
  if (n > 0) schedule();
  return n;
}

size_t MptcpConnection::read(std::span<uint8_t> out) {
  const size_t n = app_rx_.read(out);
  if (n > 0) maybe_send_meta_window_update();
  return n;
}

void MptcpConnection::consume(size_t n) {
  n = std::min(n, app_rx_.size());
  if (n == 0) return;
  app_rx_.consume(n);
  maybe_send_meta_window_update();
}

void MptcpConnection::close() {
  if (mode_ == MptcpMode::kFallbackTcp) {
    if (!subflows_.empty()) subflows_[0]->close();
    return;
  }
  if (data_fin_pending_ || data_fin_allocated_) return;
  data_fin_pending_ = true;
  schedule();
}

void MptcpConnection::abort() {
  if (!fastclose_sent_ && mode_ == MptcpMode::kMptcp) {
    fastclose_sent_ = true;
    if (MptcpSubflow* sf = best_usable_subflow()) {
      sf->queue_control_option(MpFastcloseOption{remote_key_});
      sf->flush_control_options();
    }
  }
  for (auto& sf : subflows_) {
    if (sf->state() != TcpState::kClosed) sf->abort();
  }
  notify_closed_once();
}

// ---------------------------------------------------------------------------
// Subflow event handlers.
// ---------------------------------------------------------------------------

void MptcpConnection::sf_capable_synack(uint64_t peer_key,
                                        bool csum_required) {
  if (role_ != Role::kClient || mode_ != MptcpMode::kNegotiating) return;
  remote_key_ = peer_key;
  remote_token_ = mptcp_token_from_key(peer_key);
  idsn_remote_ = mptcp_idsn_from_key(peer_key);
  rcv_nxt_d_ = idsn_remote_ + 1;
  checksum_in_use_ = config_.dss_checksum || csum_required;
  mode_ = MptcpMode::kMptcp;
}

void MptcpConnection::sf_capable_confirmed(uint64_t key_a, uint64_t key_b) {
  (void)key_a;
  (void)key_b;
  if (role_ != Role::kServer || mode_ != MptcpMode::kNegotiating) return;
  mode_ = MptcpMode::kMptcp;
  path_manager_.on_peer_confirmed();
}

void MptcpConnection::sf_no_mptcp_in_handshake() {
  if (mode_ == MptcpMode::kNegotiating) fallback_to_tcp("synack-stripped");
}

void MptcpConnection::sf_first_packet_lacks_mptcp() {
  if (mode_ == MptcpMode::kNegotiating || mode_ == MptcpMode::kMptcp) {
    fallback_to_tcp("first-data-stripped");
  }
}

void MptcpConnection::sf_peer_dss_seen() {
  if (role_ == Role::kServer && mode_ == MptcpMode::kNegotiating) {
    // A DSS is as conclusive as the MP_CAPABLE echo.
    mode_ = MptcpMode::kMptcp;
  }
}

void MptcpConnection::fallback_to_tcp(const char* reason) {
  (void)reason;
  if (mode_ == MptcpMode::kFallbackTcp) return;
  mode_ = MptcpMode::kFallbackTcp;
  ++meta_stats_.fallbacks;
  no_new_subflows_ = true;
  meta_rto_timer_.cancel();
  // Kill everything except the initial subflow, which carries on as TCP.
  for (size_t i = 1; i < subflows_.size(); ++i) {
    if (subflows_[i]->state() != TcpState::kClosed) subflows_[i]->abort();
  }
  // Drain unallocated connection-level data straight through. Bytes up to
  // snd_nxt_d were already handed to the initial subflow (fallback only
  // happens on the first packets, before any join could carry data) and
  // will be delivered as the plain subflow stream.
  if (!subflows_.empty() && meta_snd_.end_seq() > snd_nxt_d_) {
    Payload pending = meta_snd_.slice_out(
        snd_nxt_d_, static_cast<size_t>(meta_snd_.end_seq() - snd_nxt_d_));
    meta_snd_.free_through(meta_snd_.end_seq());
    subflows_[0]->write_shared(std::move(pending));
  } else {
    meta_snd_.free_through(meta_snd_.end_seq());
  }
  if (data_fin_pending_ && !subflows_.empty()) subflows_[0]->close();
}

void MptcpConnection::sf_established(MptcpSubflow* sf) {
  // Until the first DSS DATA_ACK arrives, the peer's connection-level
  // window is unknown; seed it from the handshake's TCP window so the
  // first flight can leave (it is refined by every DSS thereafter).
  if (mode_ != MptcpMode::kFallbackTcp) {
    const uint64_t seed_window = std::max<uint64_t>(sf->peer_window(), 65535);
    meta_right_edge_ = std::max(meta_right_edge_, snd_una_d_ + seed_window);
  }
  if (!connected_notified_ && sf->is_initial()) {
    connected_notified_ = true;
    if (on_connected) on_connected();
  }
  path_manager_.on_subflow_established(sf);
  // A server's join subflows only learn their usability from the third
  // ACK; in all cases newly usable capacity should be fed.
  schedule();
}

void MptcpConnection::sf_closed(MptcpSubflow* sf, bool reset) {
  (void)reset;
  // Re-inject everything this subflow still owed (section 3.3: data is
  // freed only by DATA_ACK, so it is still in the connection-level buffer).
  for (auto& [dsn, rec] : alloc_) {
    if (rec.subflow_id != sf->id()) continue;
    const uint64_t begin = std::max(dsn, snd_una_d_);
    const uint64_t end = dsn + rec.len;
    if (end > begin) reinject_range(begin, end - begin);
    rec.subflow_id = SIZE_MAX;
  }
  // Drop every per-subflow map entry keyed by the dead subflow's id (ids
  // are never reused, so stale entries would accumulate forever on
  // connections that churn subflows).
  scheduler_->on_subflow_closed(sf->id());
  next_penalty_at_.erase(sf->id());
  last_acked_by_sf_.erase(sf->id());
  last_delivered_by_sf_.erase(sf->id());
  rx_bytes_by_sf_.erase(sf->id());
  tx_rate_bps_.erase(sf->id());
  rx_rate_bps_.erase(sf->id());
  bool any_open = false;
  for (const auto& s : subflows_) {
    if (s->state() != TcpState::kClosed) any_open = true;
  }
  if (!any_open) {
    notify_closed_once();
  } else {
    schedule();
  }
}

void MptcpConnection::sf_peer_fin(MptcpSubflow* sf) {
  (void)sf;
  if (mode_ == MptcpMode::kFallbackTcp && !data_fin_delivered_) {
    // In fallback the subflow FIN *is* the end of the data stream.
    data_fin_delivered_ = true;
    if (on_readable) on_readable();
  }
}

void MptcpConnection::sf_acked(MptcpSubflow* sf) {
  (void)sf;
  schedule();
}

void MptcpConnection::sf_dss_ack(uint64_t data_ack, uint64_t window_bytes) {
  const uint64_t edge = data_ack + window_bytes;
  if (edge > meta_right_edge_) meta_right_edge_ = edge;

  if (data_ack > snd_una_d_ && data_ack <= snd_nxt_d_ + 1) {
    ++n_data_ack_advances_;
    n_data_acked_bytes_ += data_ack - snd_una_d_;
    meta_snd_.free_through(std::min(data_ack, meta_snd_.end_seq()));
    snd_una_d_ = data_ack;
    for (auto it = alloc_.begin(); it != alloc_.end();) {
      if (it->first + it->second.len <= snd_una_d_) {
        it = alloc_.erase(it);
      } else {
        break;
      }
    }
    meta_rto_backoff_ = 1;
    meta_rto_timer_.cancel();  // restart relative to this progress
    arm_meta_rto();
    if (data_fin_allocated_ && !data_fin_acked_ &&
        data_ack > data_fin_dsn_) {
      data_fin_acked_ = true;
      meta_rto_timer_.cancel();
      // Section 3.4: once the DATA_FIN is DATA_ACKed, close each subflow
      // with a regular FIN. A subflow still mid-handshake cannot FIN;
      // abort it so the peer's half does not linger retransmitting.
      for (auto& s : subflows_) {
        if (s->state() == TcpState::kClosed) continue;
        if (s->can_send_data() || s->can_send_ack()) {
          s->close();
        } else {
          s->abort();
        }
      }
    }
    if (on_send_space && meta_snd_.size() < meta_snd_capacity_) {
      on_send_space();
    }
  }
  schedule();
}

void MptcpConnection::sf_mapped_data(MptcpSubflow* sf, uint64_t dsn,
                                     Payload bytes) {
  if (bytes.empty()) return;
  const uint64_t end = dsn + bytes.size();
  if (end <= rcv_nxt_d_) {
    meta_stats_.rx_duplicate_bytes += bytes.size();  // re-injection copy
    return;
  }
  if (dsn < rcv_nxt_d_) {
    meta_stats_.rx_duplicate_bytes += static_cast<size_t>(rcv_nxt_d_ - dsn);
    bytes.remove_prefix(static_cast<size_t>(rcv_nxt_d_ - dsn));
    dsn = rcv_nxt_d_;
  }
  // Connection-level window enforcement: data beyond the advertised
  // window is dropped here even though it was in-window at the subflow
  // level (section 3.3.5).
  const uint64_t max_accept =
      rcv_nxt_d_ + meta_receive_window() + config_.tcp.mss;
  if (dsn >= max_accept) return;
  if (end > max_accept) {
    bytes.truncate(static_cast<size_t>(max_accept - dsn));
  }

  if (dsn == rcv_nxt_d_) {
    rcv_nxt_d_ += bytes.size();
    rx_bytes_by_sf_[sf->id()] += bytes.size();
    deliver_in_order(std::move(bytes));
    drain_meta_ooo();
  } else {
    rx_bytes_by_sf_[sf->id()] += bytes.size();
    meta_recv_.insert(dsn, std::move(bytes), sf->id(), rcv_nxt_d_);
  }
  check_data_fin_consumption();
}

void MptcpConnection::sf_fallback_data(Payload bytes) {
  rcv_nxt_d_ += bytes.size();  // keeps DATA_ACK bookkeeping harmless
  deliver_in_order(std::move(bytes));
}

void MptcpConnection::deliver_in_order(Payload bytes) {
  delivered_bytes_ += bytes.size();
  app_rx_.push(std::move(bytes));
  if (on_readable) on_readable();
}

void MptcpConnection::drain_meta_ooo() {
  while (auto chunk = meta_recv_.pop_ready(rcv_nxt_d_)) {
    rcv_nxt_d_ += chunk->bytes.size();
    deliver_in_order(std::move(chunk->bytes));
  }
}

void MptcpConnection::check_data_fin_consumption() {
  if (remote_data_fin_seen_ && !data_fin_delivered_ &&
      rcv_nxt_d_ == remote_data_fin_dsn_) {
    rcv_nxt_d_ += 1;  // the DATA_FIN occupies one data octet
    data_fin_delivered_ = true;
    // The DATA_FIN may ride a pure ACK, which generates no subflow-level
    // acknowledgment of its own -- emit the DATA_ACK explicitly so the
    // peer can finish its teardown (section 3.4).
    for (auto& sf : subflows_) {
      if (sf->can_send_ack()) {
        sf->push_meta_ack();
        break;
      }
    }
    if (on_readable) on_readable();
  }
}

void MptcpConnection::sf_data_fin(uint64_t dsn) {
  if (mode_ != MptcpMode::kMptcp) return;
  remote_data_fin_seen_ = true;
  remote_data_fin_dsn_ = dsn;
  check_data_fin_consumption();
}

void MptcpConnection::sf_checksum_failure(MptcpSubflow* sf,
                                          const MappingRecord& rec,
                                          Payload data) {
  ++meta_stats_.checksum_failures;
  if (usable_subflow_count() > 1) {
    // Section 3.3.6: reject the modified segment and terminate the
    // subflow; the transfer continues on the others (the data is still
    // held at the connection level and will be re-injected).
    ++meta_stats_.subflow_resets;
    no_new_subflows_ = true;
    sf->abort();
    return;
  }
  // Only one subflow: fall back to TCP-like behaviour for the remainder,
  // letting the middlebox rewrite as it wishes. The modified bytes are
  // delivered and verification is disabled from here on.
  ++meta_stats_.fallbacks;
  checksum_in_use_ = false;
  no_new_subflows_ = true;
  sf_mapped_data(sf, rec.dsn, std::move(data));
}

void MptcpConnection::sf_add_addr(const AddAddrOption& opt) {
  path_manager_.on_add_addr(opt);
}

void MptcpConnection::sf_remove_addr(uint8_t addr_id) {
  path_manager_.on_remove_addr(addr_id);
}

void MptcpConnection::sf_mp_prio(MptcpSubflow* sf, const MpPrioOption& opt) {
  path_manager_.on_mp_prio(sf, opt);
}

void MptcpConnection::sf_fastclose() {
  for (auto& sf : subflows_) {
    if (sf->state() != TcpState::kClosed) sf->abort();
  }
  notify_closed_once();
}

// ---------------------------------------------------------------------------
// Receive window / DATA_ACK.
// ---------------------------------------------------------------------------

uint64_t MptcpConnection::meta_data_ack_value() const { return rcv_nxt_d_; }

uint64_t MptcpConnection::meta_receive_window() const {
  const size_t used = app_rx_.size();
  return meta_rcv_capacity_ > used ? meta_rcv_capacity_ - used : 0;
}

void MptcpConnection::maybe_send_meta_window_update() {
  const uint64_t wnd = meta_receive_window();
  if (wnd > last_advertised_meta_window_ &&
      wnd - last_advertised_meta_window_ >= config_.tcp.mss) {
    last_advertised_meta_window_ = wnd;
    for (auto& sf : subflows_) {
      if (sf->established()) sf->push_meta_ack();
    }
  }
}

size_t MptcpConnection::receiver_memory() const {
  size_t n = meta_recv_.ooo_bytes();
  for (const auto& sf : subflows_) n += sf->rcv_buf_in_use();
  return n;
}

// ---------------------------------------------------------------------------
// Scheduler (sender side). Policies live in core/scheduler.cc; this
// file keeps only the host hooks and the shared epilogue.
// ---------------------------------------------------------------------------

uint64_t MptcpConnection::total_subflow_flight() const {
  uint64_t total = 0;
  for (const auto& sf : subflows_) total += sf->flight_size();
  return total;
}

MptcpSubflow* MptcpConnection::best_usable_subflow() {
  // Prefer subflows that can actually transmit right now: a silently dead
  // path keeps a deceptively low srtt while its window is jammed shut.
  MptcpSubflow* best = nullptr;
  MptcpSubflow* fallback = nullptr;
  for (auto& sf : subflows_) {
    if (!sf->mptcp_usable()) continue;
    if (fallback == nullptr || sf->srtt() < fallback->srtt()) {
      fallback = sf.get();
    }
    if (sf->cwnd_space() == 0) continue;
    if (best == nullptr || sf->srtt() < best->srtt()) best = sf.get();
  }
  return best != nullptr ? best : fallback;
}

void MptcpConnection::schedule() {
  if (mode_ != MptcpMode::kMptcp) return;

  scheduler_->run(*this);

  // DATA_FIN once everything is allocated (section 3.4: it can be sent
  // immediately when the application closes, independent of subflow FINs).
  if (data_fin_pending_ && !data_fin_allocated_ &&
      snd_nxt_d_ == meta_snd_.end_seq()) {
    data_fin_allocated_ = true;
    data_fin_dsn_ = snd_nxt_d_;
    if (MptcpSubflow* sf = best_usable_subflow()) {
      sf->send_data_fin(data_fin_dsn_);
    }
  }

  arm_meta_rto();
}

void MptcpConnection::window_blocked(MptcpSubflow* fast) {
  if (alloc_.empty()) return;
  ++n_window_stalls_;
  const auto& [dsn0, rec0] = *alloc_.begin();

  // Only act when the trailing edge is held by a genuinely *slower*
  // subflow (the reference implementation's guard): the fast path briefly
  // holding its own in-flight data is not a stall.
  MptcpSubflow* slow = nullptr;
  for (auto& sf : subflows_) {
    if (sf->id() == rec0.subflow_id) slow = sf.get();
  }
  if (slow != nullptr && slow->srtt() <= fast->srtt()) return;

  // Mechanism 1 -- opportunistic retransmission: the fast subflow has
  // congestion window to spare but the shared window is full; resend the
  // data holding up the trailing edge on the fast path so the window can
  // advance at the fast path's pace (section 4.2). Ranges are reinjected
  // at most once (reinjected_until_ is monotonic); the fast path's spare
  // window bounds how much head-of-line data each stall rescues.
  if (config_.opportunistic_retransmit && rec0.subflow_id != fast->id()) {
    uint64_t start = std::max(snd_una_d_, reinjected_until_);
    uint64_t budget = fast->cwnd_space();
    bool any = false;
    auto it = alloc_.upper_bound(start);
    if (it != alloc_.begin()) --it;
    while (budget > 0 && it != alloc_.end()) {
      const uint64_t b = std::max(it->first, start);
      const uint64_t e = it->first + it->second.len;
      if (b >= e) {
        ++it;
        continue;
      }
      if (it->second.subflow_id == fast->id()) break;  // fast path's own
      const uint64_t n = std::min(e - b, budget);
      Payload bytes = meta_snd_.slice_out(b, static_cast<size_t>(n));
      fast->push_mapped(b, std::move(bytes));
      meta_stats_.reinjected_bytes += n;
      budget -= n;
      start = b + n;
      any = true;
      if (b + n < e) break;
      ++it;
    }
    if (any) {
      fast->try_send();
      ++meta_stats_.opportunistic_retransmits;
      reinjected_until_ = start;
    }
  }

  // Mechanism 2 -- penalization: halve the cwnd of the subflow that is
  // holding up the window so this does not immediately repeat, at most
  // once per that subflow's RTT (section 4.2).
  if (config_.penalize_slow_subflows && rec0.subflow_id != fast->id() &&
      rec0.subflow_id != SIZE_MAX) {
    for (auto& sf : subflows_) {
      if (sf->id() != rec0.subflow_id || !sf->mptcp_usable()) continue;
      const SimTime now = stack_.loop().now();
      auto it = next_penalty_at_.find(sf->id());
      if (it == next_penalty_at_.end() || now >= it->second) {
        sf->congestion_control().penalize();
        next_penalty_at_[sf->id()] = now + std::max(sf->srtt(), kMillisecond);
        ++meta_stats_.penalizations;
      }
      break;
    }
  }
}

void MptcpConnection::reinject_range(uint64_t dsn, uint64_t len) {
  reinject_.emplace_back(dsn, len);
}

// ---------------------------------------------------------------------------
// Connection-level retransmission timer.
// ---------------------------------------------------------------------------

void MptcpConnection::arm_meta_rto() {
  const bool outstanding =
      snd_una_d_ < snd_nxt_d_ || (data_fin_allocated_ && !data_fin_acked_);
  if (!outstanding || mode_ != MptcpMode::kMptcp) {
    meta_rto_timer_.cancel();
    return;
  }
  // Never push an already-armed deadline into the future: the timer is
  // restarted only on DATA_ACK progress or after firing.
  if (meta_rto_timer_.armed()) return;
  SimTime max_srtt = 0;
  for (const auto& sf : subflows_) max_srtt = std::max(max_srtt, sf->srtt());
  const SimTime base = std::max(config_.meta_rto_min, 4 * max_srtt);
  meta_rto_timer_.arm_at(stack_.loop().now() + base * meta_rto_backoff_);
}

void MptcpConnection::on_meta_rto() {
  if (mode_ != MptcpMode::kMptcp) return;
  ++meta_stats_.meta_rtx_timeouts;
  meta_rto_backoff_ = std::min(meta_rto_backoff_ * 2, 64);

  if (snd_una_d_ < snd_nxt_d_) {
    // No DATA_ACK progress for a full meta-RTO: presume the data is stuck
    // on a dead or dying path and re-inject the outstanding window (up to
    // a burst bound) through whatever subflows can carry it.
    constexpr uint64_t kRtoBurst = 64 * 1024;
    reinject_.clear();  // stale entries are re-derived from snd_una_d
    reinject_range(snd_una_d_,
                   std::min(snd_nxt_d_ - snd_una_d_, kRtoBurst));
    schedule();
  } else if (data_fin_allocated_ && !data_fin_acked_) {
    if (MptcpSubflow* sf = best_usable_subflow()) {
      sf->send_data_fin(data_fin_dsn_);
    }
  }
  arm_meta_rto();
}

// ---------------------------------------------------------------------------
// Autotuning (Mechanism 3).
// ---------------------------------------------------------------------------

void MptcpConnection::autotune_tick() {
  autotune_timer_.arm_in(kAutotunePeriod);
  if (mode_ != MptcpMode::kMptcp) return;
  const SimTime now = stack_.loop().now();
  const SimTime dt = last_autotune_ == 0 ? kAutotunePeriod
                                         : now - last_autotune_;
  last_autotune_ = now;
  if (dt <= 0) return;

  double sum_tx_rate = 0, sum_rx_rate = 0;
  SimTime rtt_max_tx = 0, rtt_max_rx = 0;
  for (const auto& sf : subflows_) {
    if (!sf->mptcp_usable()) continue;
    // Sender-side rate: subflow-acked bytes per second (EMA smoothed).
    const uint64_t acked = sf->stats().bytes_acked;
    const uint64_t d_acked = acked - last_acked_by_sf_[sf->id()];
    last_acked_by_sf_[sf->id()] = acked;
    double& tx = tx_rate_bps_[sf->id()];
    const double inst_tx =
        static_cast<double>(d_acked) * 8.0 * kSecond / static_cast<double>(dt);
    tx = tx == 0 ? inst_tx : 0.75 * tx + 0.25 * inst_tx;
    sum_tx_rate += tx;
    if (tx > 0) rtt_max_tx = std::max(rtt_max_tx, sf->srtt());

    // Receiver-side rate: delivered mapped bytes per second.
    const uint64_t recvd = rx_bytes_by_sf_[sf->id()];
    const uint64_t d_recvd = recvd - last_delivered_by_sf_[sf->id()];
    last_delivered_by_sf_[sf->id()] = recvd;
    double& rx = rx_rate_bps_[sf->id()];
    const double inst_rx =
        static_cast<double>(d_recvd) * 8.0 * kSecond /
        static_cast<double>(dt);
    rx = rx == 0 ? inst_rx : 0.75 * rx + 0.25 * inst_rx;
    sum_rx_rate += rx;
    const SimTime rcv_rtt =
        sf->receiver_rtt() > 0 ? sf->receiver_rtt() : sf->srtt();
    if (rx > 0) rtt_max_rx = std::max(rtt_max_rx, rcv_rtt);
  }

  // The paper's formula: buffer = 2 * sum(x_i) * RTT_max (section 4.2).
  const size_t snd_target = static_cast<size_t>(
      2.0 * sum_tx_rate / 8.0 * to_seconds(rtt_max_tx));
  const size_t rcv_target = static_cast<size_t>(
      2.0 * sum_rx_rate / 8.0 * to_seconds(rtt_max_rx));
  const size_t old_snd = meta_snd_capacity_;
  meta_snd_capacity_ = std::min(
      config_.meta_snd_buf_max, std::max(meta_snd_capacity_, snd_target));
  const size_t old_rcv = meta_rcv_capacity_;
  meta_rcv_capacity_ = std::min(
      config_.meta_rcv_buf_max, std::max(meta_rcv_capacity_, rcv_target));
  if (meta_snd_capacity_ > old_snd || meta_rcv_capacity_ > old_rcv) {
    ++n_autotune_resizes_;
  }
  if (meta_rcv_capacity_ > old_rcv) maybe_send_meta_window_update();
}

// ---------------------------------------------------------------------------
// Teardown.
// ---------------------------------------------------------------------------

void MptcpConnection::notify_closed_once() {
  if (closed_notified_) return;
  closed_notified_ = true;
  meta_rto_timer_.cancel();
  autotune_timer_.cancel();
  // The token names an *established* connection (section 5.2); release
  // it as soon as the connection closes so the table reflects live state.
  if (token_registered_) {
    stack_.tokens().unregister(local_token_);
    token_registered_ = false;
  }
  if (on_closed) on_closed();
  if (auto_destroy_) stack_.destroy_later(this);
}

void MptcpConnection::maybe_finish_teardown() {}

}  // namespace mptcp
