// Data-sequence mapping bookkeeping and the DSS checksum.
//
// Mappings tie a run of *relative* subflow sequence numbers to data
// sequence numbers (section 3.3.4): relative, because 10% of paths rewrite
// initial sequence numbers; with-length, because TSO NICs copy a TCP
// option onto every split segment, so the option must be self-describing
// rather than per-packet.
//
// The DSS checksum (section 3.3.6) is the TCP-style 16-bit ones-complement
// sum over the mapped payload plus an MPTCP pseudo-header (dsn, relative
// ssn, length). It exists to detect content-modifying middleboxes (ALGs);
// on failure the subflow is reset (if others remain) or the connection
// falls back to plain TCP. The payload part of the sum is computed once
// and shared with the TCP checksum in a real stack; the Fig. 3 benchmark
// measures this cost through the same code path.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "net/checksum.h"
#include "net/payload.h"

namespace mptcp {

/// Computes the DSS checksum over a fully assembled mapping.
uint16_t dss_checksum(uint64_t dsn, uint32_t ssn_rel, uint16_t length,
                      std::span<const uint8_t> payload);

/// Same, but from a precomputed folded (non-inverted) payload sum --
/// the "compute the payload sum once" optimization.
uint16_t dss_checksum_from_partial(uint64_t dsn, uint32_t ssn_rel,
                                   uint16_t length, uint16_t payload_sum);

/// One mapping as tracked by either end. Sequence numbers here are
/// *absolute unwrapped subflow* sequence numbers (local bookkeeping);
/// ssn_rel() converts to the wire's ISN-relative form.
struct MappingRecord {
  uint64_t ssn_begin = 0;  ///< absolute subflow seq of first mapped byte
  uint32_t ssn_rel = 0;    ///< the wire's ISN-relative form (checksummed)
  uint64_t dsn = 0;
  uint32_t length = 0;
  std::optional<uint16_t> checksum;

  uint64_t ssn_end() const { return ssn_begin + length; }
  /// Maps an absolute subflow sequence to its data sequence number.
  uint64_t dsn_for(uint64_t ssn) const { return dsn + (ssn - ssn_begin); }
};

/// Sender side: mappings attached to bytes queued on one subflow, indexed
/// so that segment construction can find the mapping covering a range.
class SenderMappings {
 public:
  void add(MappingRecord rec) { map_.emplace(rec.ssn_begin, rec); }

  /// The mapping containing subflow sequence `ssn`, or nullptr.
  const MappingRecord* find(uint64_t ssn) const;

  /// Drops mappings fully below `ssn` (subflow-acked; their data may still
  /// await DATA_ACK at the connection level, but the subflow will never
  /// retransmit them again).
  void release_below(uint64_t ssn);

  size_t size() const { return map_.size(); }

 private:
  std::map<uint64_t, MappingRecord> map_;  ///< keyed by ssn_begin
};

/// Receiver side: mappings learned from DSS options, plus incremental
/// checksum verification as the mapped bytes stream through in subflow
/// order. When checksums are in use, a mapping's bytes are held back
/// until the whole mapping has been verified -- a modified mapping must be
/// *rejected*, not delivered (section 3.3.6).
class ReceiverMappings {
 public:
  /// Records a mapping (duplicates from TSO-split segments are ignored;
  /// a conflicting duplicate is rejected). Returns false on conflict.
  bool add(MappingRecord rec);

  /// Result of feeding in-order subflow bytes.
  struct Output {
    /// Data ready for the connection level: (dsn, bytes). The payloads
    /// are shared views of the fed bytes (zero-copy) except when a
    /// checksummed mapping straddled segments, in which case its held
    /// fragments are concatenated once on completion.
    std::vector<std::pair<uint64_t, Payload>> deliver;
    /// Mappings whose checksum failed, with the (modified) bytes so the
    /// caller can decide between reject-and-reset and fallback-deliver.
    std::vector<std::pair<MappingRecord, Payload>> checksum_failures;
  };

  /// Feeds `bytes` of in-order subflow data starting at absolute subflow
  /// seq `ssn`. Bytes with no covering mapping are dropped and counted
  /// (section 3.3.5: only mapped bytes are acknowledged at the data
  /// level).
  Output feed(uint64_t ssn, const Payload& bytes, bool verify_checksums);

  /// Drops mapping state fully below `ssn` (delivered).
  void release_below(uint64_t ssn);

  size_t size() const { return map_.size(); }
  uint64_t unmapped_bytes() const { return unmapped_bytes_; }
  /// Bytes currently held awaiting checksum completion (memory accounting).
  size_t held_bytes() const { return held_bytes_; }

 private:
  struct Tracked {
    MappingRecord rec;
    ChecksumAccumulator acc;
    /// Buffered fragment views awaiting verification (shared with the
    /// subflow's reassembly payloads; concatenated only on completion,
    /// and zero-copy when the mapping arrived in one fragment).
    std::vector<Payload> held;
    size_t held_size = 0;  ///< total bytes across `held`
    uint64_t covered = 0;  ///< bytes of the mapping fed so far
  };
  std::map<uint64_t, Tracked> map_;  ///< keyed by ssn_begin
  uint64_t unmapped_bytes_ = 0;
  size_t held_bytes_ = 0;
};

}  // namespace mptcp
