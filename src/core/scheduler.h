// Pluggable packet scheduling policies.
//
// The paper's implementation sends "a new packet on the lowest delay link
// that has space in its congestion window" (section 4.2); that is the
// default policy here. Two alternatives are provided for ablation:
// round-robin (what naive striping would do -- the strawman of section 3)
// and redundant (every chunk on every subflow; the robustness-over-
// throughput extreme discussed in the multipath literature the paper
// cites).
#pragma once

#include <cstdint>
#include <string_view>

namespace mptcp {

class MptcpSubflow;

enum class SchedulerPolicy : uint8_t {
  kLowestRtt,   ///< the paper's scheduler (default)
  kRoundRobin,  ///< rotate across subflows with window space
  kRedundant,   ///< duplicate every chunk on every usable subflow
};

std::string_view to_string(SchedulerPolicy p);

}  // namespace mptcp
