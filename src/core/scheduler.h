// Pluggable packet scheduling: the sender-side policy of section 4.2 as a
// strategy hierarchy.
//
// The paper's implementation sends "a new packet on the lowest delay link
// that has space in its congestion window" (section 4.2); that is the
// default policy here. Alternatives exist for ablation -- round-robin
// (what naive striping would do, the strawman of section 3) and redundant
// (every chunk on every subflow; the robustness-over-throughput extreme
// in the multipath literature the paper cites) -- plus one policy the old
// monolithic scheduler could not express: backup-aware, which honours
// MP_PRIO priorities but spills onto backup subflows the moment every
// primary is congestion-window blocked instead of letting the connection
// stall.
//
// Split of responsibilities (mirrors the protocol/sched split Linux MPTCP
// later adopted):
//   * Scheduler  -- WHICH subflow carries WHAT data. Owns all policy
//     state (round-robin cursor, redundant per-subflow stream cursors).
//   * SchedulerHost -- the narrow view of MptcpConnection a policy may
//     touch: the data-sequence send state, the re-injection queue, and
//     the window-stall hook that drives Mechanisms 1/2. Policies cannot
//     reach the receive path, teardown, or path management.
//   * MptcpConnection -- retains the mechanisms themselves (M1-M4), the
//     DATA_FIN rule and the meta RTO; its schedule() is one strategy
//     call plus that epilogue.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string_view>
#include <utility>

#include "net/payload.h"

namespace mptcp {

class MptcpSubflow;

enum class SchedulerPolicy : uint8_t {
  kLowestRtt,    ///< the paper's scheduler (default)
  kRoundRobin,   ///< rotate across subflows with window space
  kRedundant,    ///< duplicate every chunk on every usable subflow
  kBackupAware,  ///< lowest-RTT over primaries, spill to backups on block
};

std::string_view to_string(SchedulerPolicy p);

/// What a scheduling policy may see and do to the connection's send
/// state. Implemented (privately) by MptcpConnection. Data sequence
/// bookkeeping: [una, nxt) is allocated and in flight, [nxt, stream_end)
/// is buffered but unallocated, window_edge is the peer's advertised
/// right edge in data-sequence space.
class SchedulerHost {
 public:
  virtual std::span<const std::unique_ptr<MptcpSubflow>> sched_subflows() = 0;
  /// Allocation batch in bytes (config.batch_segments * mss): contiguous
  /// data-sequence runs handed to one subflow at a time.
  virtual uint64_t sched_batch_bytes() const = 0;
  virtual uint64_t sched_snd_una() const = 0;
  virtual uint64_t sched_snd_nxt() const = 0;
  virtual uint64_t sched_stream_end() const = 0;
  virtual uint64_t sched_window_edge() const = 0;
  /// Pending re-injection ranges (dsn, len), oldest first: data owed by
  /// dead subflows or resurrected by the meta RTO. Re-injections are
  /// served before any fresh allocation.
  virtual std::deque<std::pair<uint64_t, uint64_t>>& sched_reinject() = 0;
  /// Zero-copy view of [dsn, dsn+len) from the connection-level send
  /// buffer (the bytes stay owned by the buffer until DATA_ACKed).
  virtual Payload sched_slice(uint64_t dsn, size_t len) = 0;
  /// Records a fresh allocation [dsn, dsn+len) -> subflow `sf_id` and
  /// advances snd_nxt past it.
  virtual void sched_record_alloc(uint64_t dsn, uint64_t len,
                                  size_t sf_id) = 0;
  /// Accounts `bytes` of duplicate transmission (re-injections, redundant
  /// copies).
  virtual void sched_count_reinjected(uint64_t bytes) = 0;
  /// Per-connection and per-subflow pick accounting (observability).
  virtual void sched_note_pick(MptcpSubflow& sf) = 0;
  /// The shared window is full while `fast` still has congestion window
  /// to spare: the section 4.2 stall that triggers Mechanisms 1/2.
  virtual void sched_window_blocked(MptcpSubflow& fast) = 0;

 protected:
  ~SchedulerHost() = default;
};

/// Strategy interface: pick(subflows) chooses the next carrier, allocate()
/// is the per-chunk policy bookkeeping hook, run() is one full scheduling
/// pass. The base run() implements the shared loop (re-injection first,
/// then batched fresh allocation with window-stall reporting); policies
/// with a different structure (Redundant) override it.
class Scheduler {
 public:
  virtual ~Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  virtual SchedulerPolicy policy() const = 0;

  /// Chooses the subflow to carry the next chunk (at least `min_space`
  /// bytes of congestion window), or nullptr when no subflow can take
  /// data right now. Pure selection: no connection state is modified
  /// (policy-internal cursors may advance).
  virtual MptcpSubflow* pick(SchedulerHost& host, uint64_t min_space) = 0;

  /// Policy bookkeeping for a chunk [dsn, dsn+len) handed to `sf`
  /// (cursor advance for cursor-keeping policies). Counted in allocs().
  virtual void allocate(uint64_t dsn, uint64_t len, MptcpSubflow& sf);

  /// One full scheduling pass over the connection's send state.
  virtual void run(SchedulerHost& host);

  /// Subflow teardown: drop any per-subflow policy state (cursors).
  virtual void on_subflow_closed(size_t sf_id);

  /// Per-subflow policy-state entries currently held. Must return to its
  /// pre-subflow baseline after subflow churn (leak tripwire for tests).
  virtual size_t state_entries() const;

  // --- observability (exported under "<conn>.sched.<policy>" when
  // MptcpConfig::sched_stats is set) -----------------------------------
  uint64_t picks() const { return picks_; }
  uint64_t allocs() const { return allocs_; }

  static std::unique_ptr<Scheduler> make(SchedulerPolicy policy);

 protected:
  Scheduler() = default;

  /// Shared selection core: lowest-srtt usable subflow with space among
  /// primaries; backups carry data only when no primary is alive -- or,
  /// with `spill_on_block`, also when every live primary is
  /// congestion-window blocked (the backup-aware relaxation).
  static MptcpSubflow* lowest_rtt_pick(SchedulerHost& host,
                                       uint64_t min_space,
                                       bool spill_on_block);

  uint64_t picks_ = 0;   ///< successful picks taken by run()
  uint64_t allocs_ = 0;  ///< chunks allocated through allocate()
};

}  // namespace mptcp
