// Key and token management (section 3.2 / 5.2 of the paper).
//
// Each MPTCP endpoint generates a random 64-bit key per connection and
// derives a 32-bit token (truncated SHA-1) that identifies the connection
// in MP_JOIN handshakes. The host-wide token table must be collision-free:
// connection setup verifies uniqueness and regenerates on collision, which
// is exactly the work measured by the Fig. 10 latency experiment.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>

#include "net/rng.h"
#include "net/sha1.h"

namespace mptcp {

class MptcpConnection;

/// Host-wide registry of live connection tokens.
class TokenTable {
 public:
  explicit TokenTable(uint64_t seed = 7) : rng_(seed) {}

  struct KeyToken {
    uint64_t key;
    uint32_t token;
    uint64_t idsn;
  };

  /// Generates a fresh key whose token does not collide with any live
  /// connection, registers it, and returns key+token+IDSN. This is the
  /// server's SYN-processing hot path (Fig. 10).
  KeyToken generate_and_register(MptcpConnection* owner);

  /// Registers an externally chosen key (e.g. deterministic tests).
  /// Returns false on token collision.
  bool register_key(uint64_t key, MptcpConnection* owner);

  void unregister(uint32_t token) { table_.erase(token); }

  /// MP_JOIN routing: find the connection owning a token.
  MptcpConnection* find(uint32_t token) const {
    auto it = table_.find(token);
    return it == table_.end() ? nullptr : it->second;
  }

  size_t size() const { return table_.size(); }
  Rng& rng() { return rng_; }

  /// Section 5.2's proposed optimization: precompute keys (and their
  /// SHA-1 derivations) off the SYN-processing hot path. A pooled key is
  /// still uniqueness-checked at use -- one hash-table lookup -- since
  /// the table may have changed since the pool was filled.
  void prefill_pool(size_t n) {
    while (pool_.size() < n) {
      const uint64_t key = rng_.next_u64();
      if (key == 0) continue;
      pool_.push_back(
          KeyToken{key, mptcp_token_from_key(key), mptcp_idsn_from_key(key)});
    }
  }
  size_t pool_size() const { return pool_.size(); }

 private:
  Rng rng_;
  std::unordered_map<uint32_t, MptcpConnection*> table_;
  std::deque<KeyToken> pool_;
};

}  // namespace mptcp
