#include "core/meta_recv.h"

#include <algorithm>
#include <cmath>

namespace mptcp {

// ---------------------------------------------------------------------------
// Location strategies.
// ---------------------------------------------------------------------------

MetaReceiveQueue::List::iterator MetaReceiveQueue::locate_linear(
    uint64_t target) {
  // Scan from the tail, as stacks optimized for the in-order common case
  // do; with multipath interleaving the scan regularly walks deep into
  // the queue, which is precisely the cost the paper measures.
  auto it = chunks_.end();
  while (it != chunks_.begin()) {
    auto prev = std::prev(it);
    ++stats_.comparisons;
    if (prev->dsn < target) return it;
    it = prev;
  }
  return it;
}

MetaReceiveQueue::List::iterator MetaReceiveQueue::locate_tree(
    uint64_t target) {
  // Count ~log2(n) comparisons for the descent, as a balanced tree pays.
  const size_t n = tree_.size();
  stats_.comparisons +=
      n == 0 ? 1 : static_cast<uint64_t>(std::ceil(std::log2(n + 1)));
  auto it = tree_.lower_bound(target);
  return it == tree_.end() ? chunks_.end() : it->second;
}

MetaReceiveQueue::List::iterator MetaReceiveQueue::locate_batches(
    uint64_t target) {
  if (!batch_heads_valid_) rebuild_batch_heads();
  if (batch_heads_.empty()) return chunks_.end();

  // Find the first batch head with dsn >= target.
  auto head_it = batch_heads_.begin();
  auto prev_head = batch_heads_.end();
  while (head_it != batch_heads_.end()) {
    ++stats_.comparisons;
    if ((*head_it)->dsn >= target) break;
    prev_head = head_it;
    ++head_it;
  }

  const List::iterator upper =
      head_it == batch_heads_.end() ? chunks_.end() : *head_it;
  if (prev_head == batch_heads_.end()) return upper;

  // Does the target fall inside the previous batch (overlap case)?
  const List::iterator batch_tail =
      upper == chunks_.begin() ? chunks_.begin() : std::prev(upper);
  if (batch_tail->dsn < target && batch_tail->end() <= target) {
    return upper;  // strictly past the previous batch: O(batches) total
  }
  // Walk within the previous batch to find the first chunk >= target.
  auto it = *prev_head;
  while (it != upper) {
    ++stats_.comparisons;
    if (it->dsn >= target) return it;
    ++it;
  }
  return upper;
}

MetaReceiveQueue::List::iterator MetaReceiveQueue::locate(
    uint64_t target, size_t subflow_id) {
  const bool use_hints =
      algo_ == RecvAlgo::kShortcuts || algo_ == RecvAlgo::kAllShortcuts;
  if (use_hints) {
    auto h = hints_.find(subflow_id);
    ++stats_.comparisons;
    if (h != hints_.end()) {
      // Positional validity, two O(1) forms: the target goes right after
      // the remembered chunk (the batch-append case), or right before it
      // (the hint advanced over delivered chunks and the subflow is
      // filling in at the head).
      const List::iterator hint = h->second;
      const auto nxt = std::next(hint);
      ++stats_.comparisons;
      if (hint->end() <= target &&
          (nxt == chunks_.end() || nxt->dsn >= target)) {
        ++stats_.shortcut_hits;
        return nxt;
      }
      ++stats_.comparisons;
      if (hint->dsn >= target &&
          (hint == chunks_.begin() || std::prev(hint)->end() <= target)) {
        ++stats_.shortcut_hits;
        return hint;
      }
    }
    ++stats_.shortcut_misses;
  }
  switch (algo_) {
    case RecvAlgo::kRegular:
    case RecvAlgo::kShortcuts:
      return locate_linear(target);
    case RecvAlgo::kTree:
      return locate_tree(target);
    case RecvAlgo::kAllShortcuts:
      return locate_batches(target);
  }
  return chunks_.end();
}

// ---------------------------------------------------------------------------
// Index-maintaining mutations.
// ---------------------------------------------------------------------------

MetaReceiveQueue::List::iterator MetaReceiveQueue::place(List::iterator pos,
                                                         MetaChunk chunk) {
  ooo_bytes_ += chunk.bytes.size();
  const uint64_t dsn = chunk.dsn;
  auto it = chunks_.insert(pos, std::move(chunk));

  if (algo_ == RecvAlgo::kTree) tree_.emplace(dsn, it);

  if (algo_ == RecvAlgo::kAllShortcuts && batch_heads_valid_) {
    const bool contiguous_prev =
        it != chunks_.begin() && std::prev(it)->end() == dsn;
    const bool contiguous_next =
        std::next(it) != chunks_.end() && it->end() == std::next(it)->dsn;
    const bool next_is_head =
        contiguous_next;  // if contiguous, the next chunk can no longer
                          // start a batch regardless of its prior status
    if (next_is_head) {
      // Remove the next chunk from the head list if it was a head.
      for (auto h = batch_heads_.begin(); h != batch_heads_.end(); ++h) {
        if (*h == std::next(it)) {
          batch_heads_.erase(h);
          break;
        }
      }
    }
    if (!contiguous_prev) {
      // This chunk starts a batch: insert in dsn order.
      auto h = batch_heads_.begin();
      while (h != batch_heads_.end() && (*h)->dsn < dsn) ++h;
      batch_heads_.insert(h, it);
    }
  }
  return it;
}

MetaReceiveQueue::List::iterator MetaReceiveQueue::erase(List::iterator it) {
  return erase(it, it->end(), it->bytes.size());
}

MetaReceiveQueue::List::iterator MetaReceiveQueue::erase(List::iterator it,
                                                         uint64_t true_end,
                                                         size_t true_size) {
  ooo_bytes_ -= true_size;
  if (algo_ == RecvAlgo::kTree) tree_.erase(it->dsn);
  // A hint pointing at the erased chunk advances to its successor: the
  // "insert after here" expectation usually remains valid across pops.
  const auto successor = std::next(it);
  for (auto h = hints_.begin(); h != hints_.end();) {
    if (h->second == it) {
      if (successor == chunks_.end()) {
        h = hints_.erase(h);
        continue;
      }
      h->second = successor;
    }
    ++h;
  }
  if (algo_ == RecvAlgo::kAllShortcuts && batch_heads_valid_) {
    bool was_head = false;
    for (auto h = batch_heads_.begin(); h != batch_heads_.end(); ++h) {
      if (*h == it) {
        was_head = true;
        batch_heads_.erase(h);
        break;
      }
    }
    auto next = std::next(it);
    if (was_head && next != chunks_.end() && true_end == next->dsn) {
      // The rest of this batch survives; its first chunk becomes the head.
      auto h = batch_heads_.begin();
      while (h != batch_heads_.end() && (*h)->dsn < next->dsn) ++h;
      batch_heads_.insert(h, next);
    }
  }
  return chunks_.erase(it);
}

void MetaReceiveQueue::rebuild_batch_heads() {
  batch_heads_.clear();
  uint64_t prev_end = 0;
  bool first = true;
  for (auto it = chunks_.begin(); it != chunks_.end(); ++it) {
    if (first || it->dsn != prev_end) batch_heads_.push_back(it);
    prev_end = it->end();
    first = false;
  }
  batch_heads_valid_ = true;
}

// ---------------------------------------------------------------------------
// Public operations.
// ---------------------------------------------------------------------------

void MetaReceiveQueue::insert(uint64_t dsn, Payload bytes, size_t subflow_id,
                              uint64_t floor) {
  ++stats_.inserts;
  if (bytes.empty()) return;
  if (dsn + bytes.size() <= floor) {
    stats_.duplicate_bytes += bytes.size();
    return;
  }
  if (dsn < floor) {
    const size_t cut = static_cast<size_t>(floor - dsn);
    stats_.duplicate_bytes += cut;
    bytes.remove_prefix(cut);
    dsn = floor;
  }

  auto pos = locate(dsn, subflow_id);

  // Trim against the predecessor.
  if (pos != chunks_.begin()) {
    auto prev = std::prev(pos);
    if (prev->end() > dsn) {
      const uint64_t pe = prev->end();
      if (pe >= dsn + bytes.size()) {
        stats_.duplicate_bytes += bytes.size();
        return;
      }
      const size_t cut = static_cast<size_t>(pe - dsn);
      stats_.duplicate_bytes += cut;
      bytes.remove_prefix(cut);
      dsn = pe;
    }
  }

  // Interleave with successors, splitting as needed. Trims and splits are
  // subview operations on the shared payload -- no byte is copied no
  // matter how pathological the overlap pattern.
  List::iterator last_placed = chunks_.end();
  while (!bytes.empty() && pos != chunks_.end() &&
         pos->dsn < dsn + bytes.size()) {
    if (pos->dsn <= dsn) {
      // Existing chunk covers our head.
      const uint64_t pe = pos->end();
      const size_t cut = static_cast<size_t>(
          std::min<uint64_t>(pe - dsn, bytes.size()));
      stats_.duplicate_bytes += cut;
      bytes.remove_prefix(cut);
      dsn = pe;
      ++pos;
    } else {
      // Place our head up to the successor, then skip its coverage.
      const size_t head_len = static_cast<size_t>(pos->dsn - dsn);
      MetaChunk head{dsn, bytes.subview(0, head_len), subflow_id};
      last_placed = place(pos, std::move(head));
      bytes.remove_prefix(head_len);
      dsn += head_len;
    }
  }
  if (!bytes.empty()) {
    last_placed = place(pos, MetaChunk{dsn, std::move(bytes), subflow_id});
  }
  if (last_placed != chunks_.end()) hints_[subflow_id] = last_placed;
}

std::optional<MetaChunk> MetaReceiveQueue::pop_ready(uint64_t rcv_nxt) {
  while (!chunks_.empty()) {
    auto it = chunks_.begin();
    ++stats_.comparisons;
    if (it->dsn > rcv_nxt) return std::nullopt;
    MetaChunk chunk;
    chunk.dsn = it->dsn;
    chunk.subflow_id = it->subflow_id;
    const uint64_t true_end = it->end();
    const size_t true_size = it->bytes.size();
    chunk.bytes = std::move(it->bytes);
    erase(it, true_end, true_size);
    if (chunk.end() <= rcv_nxt) {
      stats_.duplicate_bytes += chunk.bytes.size();
      continue;
    }
    if (chunk.dsn < rcv_nxt) {
      const size_t cut = static_cast<size_t>(rcv_nxt - chunk.dsn);
      stats_.duplicate_bytes += cut;
      chunk.bytes.remove_prefix(cut);
      chunk.dsn = rcv_nxt;
    }
    return chunk;
  }
  return std::nullopt;
}

}  // namespace mptcp
