// Shared MPTCP definitions and configuration.
#pragma once

#include <cstdint>
#include <string_view>

#include "core/scheduler.h"
#include "tcp/tcp_types.h"

namespace mptcp {

/// Congestion controller family for the subflows of one connection.
enum class CcAlgo : uint8_t {
  kLia,      ///< coupled Linked Increases across subflows (NSDI'11)
  kNewReno,  ///< uncoupled per-subflow NewReno (the fairness strawman)
};

std::string_view to_string(CcAlgo a);

/// How the connection-level out-of-order queue locates insertion points
/// (section 4.3 of the paper, evaluated in Fig. 8).
enum class RecvAlgo : uint8_t {
  kRegular,       ///< linear scan of the out-of-order queue
  kTree,          ///< balanced-tree index (log-time insert)
  kShortcuts,     ///< per-subflow next-insert pointer, fall back to scan
  kAllShortcuts,  ///< shortcuts + batch-grouped scan on shortcut miss
};

/// Connection-level operating mode.
enum class MptcpMode : uint8_t {
  kNegotiating,   ///< MP_CAPABLE sent, outcome unknown
  kMptcp,         ///< fully operating MPTCP
  kFallbackTcp,   ///< negotiation failed or checksum fallback: plain TCP
};

struct MptcpConfig {
  TcpConfig tcp;  ///< per-subflow TCP parameters

  /// Local willingness to negotiate MPTCP at all.
  bool enabled = true;

  /// DSS checksum on the data stream (section 3.3.6). Disabled in
  /// controlled environments (e.g. datacenters) for performance (Fig. 3).
  bool dss_checksum = true;

  // The paper's sender-side mechanisms (section 4.2).
  bool opportunistic_retransmit = true;  ///< Mechanism 1
  bool penalize_slow_subflows = true;    ///< Mechanism 2
  bool meta_autotune = false;            ///< Mechanism 3 (with tcp.autotune)
  bool cap_subflow_cwnd = false;         ///< Mechanism 4

  /// Connection-level buffer limits (the "receive/send buffer" knob the
  /// paper sweeps in Figs. 4-6 and 9).
  size_t meta_snd_buf_max = 1024 * 1024;
  size_t meta_rcv_buf_max = 1024 * 1024;

  /// Receiver out-of-order algorithm (Fig. 8).
  RecvAlgo recv_algo = RecvAlgo::kAllShortcuts;

  /// Packet scheduling policy (see core/scheduler.h). The paper's
  /// lowest-RTT-first scheduler is the default; the alternatives exist
  /// for ablation studies.
  SchedulerPolicy scheduler = SchedulerPolicy::kLowestRtt;

  /// Congestion controller for the subflows (see core/coupled_cc.h):
  /// the coupled Linked-Increases controller (Wischik et al., NSDI'11)
  /// by default, plain per-subflow NewReno for ablation.
  CcAlgo cc_algo = CcAlgo::kLia;

  /// Export per-policy scheduler counters under "<conn>.sched.<policy>".
  /// Off by default: the determinism digests fold the full stats export,
  /// so new registry keys must be opted into per run.
  bool sched_stats = false;

  /// Scheduler allocation batch, in segments: contiguous data-sequence
  /// runs handed to one subflow at a time (enables receive shortcuts).
  uint32_t batch_segments = 8;

  /// Automatically open subflows from every additional local address and
  /// every ADD_ADDR-advertised remote address.
  bool full_mesh = true;

  /// Floor for the connection-level retransmission timer.
  SimTime meta_rto_min = 400 * kMillisecond;

  // --- CPU cost model (only charged when the Host has a CPU configured;
  // calibrated against the Fig. 10 microbenchmark) -----------------------
  SimTime cost_tcp_syn = 6 * kMicrosecond;
  SimTime cost_mpc_syn = 11 * kMicrosecond;  ///< key gen + SHA-1 + check
  SimTime cost_join_syn = 15 * kMicrosecond; ///< token lookup + HMAC
  SimTime cost_per_token = 2;                ///< ns per live token (table)
};

}  // namespace mptcp
