// Path management: which subflows exist, over which address pairs, at
// what priority (sections 3.2 and 3.4 of the paper).
//
// Everything about the *set of paths* lives here, pulled out of the
// connection so the data path (scheduling, buffers, DATA_ACK machinery)
// does not interleave with address bookkeeping:
//   * server-side ADD_ADDR advertisement once MPTCP is confirmed (the
//     explicit path of section 3.2, for NATted clients),
//   * client-side full-mesh subflow creation -- from every additional
//     local address when the initial subflow establishes, and toward
//     every ADD_ADDR-advertised remote address,
//   * REMOVE_ADDR handling and the local-address-loss sequence
//     (advertise on a survivor first, then abort the dead subflows --
//     the mobility story of section 3.4),
//   * MP_PRIO priority state, both peer-requested and locally set.
//
// The connection wires its subflow events through to these hooks and is
// otherwise out of the path-management business; PathManager drives the
// connection only through its public API (open_subflow, subflow
// iteration, schedule).
#pragma once

#include <cstdint>

#include "net/ip.h"
#include "net/options.h"

namespace mptcp {

class MptcpConnection;
class MptcpSubflow;

class PathManager {
 public:
  explicit PathManager(MptcpConnection& conn) : conn_(conn) {}

  PathManager(const PathManager&) = delete;
  PathManager& operator=(const PathManager&) = delete;

  // --- application-facing ----------------------------------------------------
  /// Signals loss of a local address: tells the peer on a surviving
  /// subflow (REMOVE_ADDR), then aborts the address's subflows.
  void remove_local_address(IpAddr addr);
  /// Marks subflow `i` as backup (or primary) for our own scheduling and
  /// asks the peer to mirror it (MP_PRIO).
  void set_subflow_backup(size_t i, bool backup);

  // --- wired from subflow events by the connection ---------------------------
  /// Server side, MPTCP just confirmed: advertise our additional
  /// addresses (ADD_ADDR) so a NATted client can open subflows to them.
  void on_peer_confirmed();
  /// A subflow finished its handshake; if it is the client's initial
  /// subflow, open the full mesh from our additional local addresses.
  void on_subflow_established(MptcpSubflow* sf);
  /// Peer advertised an additional address: connect to it from every
  /// local address (client side, full-mesh policy).
  void on_add_addr(const AddAddrOption& opt);
  /// Peer declared an address dead: abort the subflows using it.
  void on_remove_addr(uint8_t addr_id);
  /// Peer asked us to change our sending priority for a subflow (or for
  /// all subflows toward one of its addresses).
  void on_mp_prio(MptcpSubflow* sf, const MpPrioOption& opt);

  /// The id of `addr` in the local address list (ADD_ADDR/REMOVE_ADDR
  /// address ids index that list); 0 when the address is unknown.
  uint8_t local_addr_id(IpAddr addr) const;

 private:
  MptcpConnection& conn_;
};

}  // namespace mptcp
