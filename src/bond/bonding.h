// Round-robin link bonding (the Fig. 11 baseline).
//
// Linux's bonding driver in balance-rr mode stripes packets of a single
// TCP connection across two physical links below L3: the endpoints see
// one interface. Striping at the packet level means packets of one flow
// take different paths -- reordering is possible whenever the links'
// occupancy differs, which is exactly the behaviour the paper contrasts
// with MPTCP's per-path subflows.
#pragma once

#include <vector>

#include "sim/node.h"

namespace mptcp {

class BondDevice : public PacketSink {
 public:
  void add_leg(PacketSink* leg) { legs_.push_back(leg); }

  void deliver(TcpSegment seg) override {
    if (legs_.empty()) return;
    ++count_;
    legs_[count_ % legs_.size()]->deliver(std::move(seg));
  }

  uint64_t packets() const { return count_; }

 private:
  std::vector<PacketSink*> legs_;
  uint64_t count_ = 0;
};

}  // namespace mptcp
