// Determinism digest: a fixed-seed run of the paper's Fig. 6 scenario
// (WiFi + weak lossy 3G, Mechanisms 1+2) with every packet that crosses
// any link folded into one order-sensitive 64-bit hash, together with the
// final stats export.
//
// The simulator is a deterministic discrete-event system: same build +
// same seed must produce byte-identical event streams. CI runs this
// scenario twice and compares digests; any nondeterminism (iteration over
// pointer-keyed containers, uninitialised reads, wall-clock leakage into
// the simulation) shows up as a digest mismatch long before it produces a
// flaky test.
#pragma once

#include <cstdint>
#include <string>

#include "core/scheduler.h"
#include "sim/event_loop.h"

namespace mptcp {

/// Which fixed-seed scenario to hash.
enum class DigestScenario : uint8_t {
  kTwoHost,    ///< Fig. 6 shape: WiFi + weak lossy 3G, one bulk transfer
  kCapacity,   ///< scale-out shape: multi-host workload over shared
               ///< bottlenecks (sim/topology.h + app/workload.h)
  kPingPong,   ///< two hosts, sequential fetches; with shards=2 the link
               ///< crosses a shard boundary and the digest must equal the
               ///< shards=1 reference (epoch-barrier lockstep check)
};

struct DigestConfig {
  uint64_t seed = 1;
  SimTime duration = 5 * kSecond;
  double loss = 0.02;  ///< Bernoulli loss on the weak 3G path (kTwoHost)
  DigestScenario scenario = DigestScenario::kTwoHost;
  /// Packet scheduling policy for every MPTCP connection in the scenario.
  /// The per-policy digests are the refactoring safety net: a send-path
  /// change that claims to be behavior-preserving must reproduce the
  /// recorded digest for each pre-existing policy bit for bit.
  SchedulerPolicy scheduler = SchedulerPolicy::kLowestRtt;
  /// 0 = the single-loop legacy paths (digests pinned bit-for-bit by
  /// tests). >= 1 = the sharded variants driven by ShardedEngine: the
  /// capacity scenario becomes a cell ring with cross-shard traffic
  /// (deterministic for a *fixed* shard count), the ping-pong scenario
  /// produces the same digest for any shard count.
  size_t shards = 0;
};

struct DigestResult {
  uint64_t digest = 0;          ///< FNV-1a 64 over packets + final stats
  uint64_t packets_hashed = 0;  ///< link crossings folded into the digest
  uint64_t bytes_delivered = 0;
  std::string stats_json;       ///< the run's full stats export
};

/// Runs the configured scenario and returns the digest. Deterministic by
/// contract: same build + same config => same digest.
DigestResult run_digest_scenario(const DigestConfig& cfg = {});

/// 16-digit lowercase hex rendering of a digest.
std::string digest_hex(uint64_t digest);

}  // namespace mptcp
