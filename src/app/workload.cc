#include "app/workload.h"

#include <algorithm>

namespace mptcp {

namespace {

/// "Infinite" response size for persistent connections: large enough to
/// outlast any simulated run (2 TB).
constexpr uint64_t kPersistentBytes = 1ULL << 41;

}  // namespace

CapacityTopology build_capacity_topology(const CapacitySpec& spec,
                                         uint64_t seed) {
  CapacityTopology out;
  out.topo = std::make_unique<Topology>(seed);
  Topology& t = *out.topo;

  out.agg_a = t.add_router("agg-a");
  out.agg_b = t.add_router("agg-b");
  out.core = t.add_router("core");

  LinkConfig access;
  access.rate_bps = spec.access_rate_bps;
  access.prop_delay = spec.access_delay;
  access.buffer_bytes = std::max<size_t>(
      LinkConfig::buffer_for_delay(spec.access_rate_bps, 5 * kMillisecond),
      3000);

  LinkConfig bottleneck;
  bottleneck.rate_bps = spec.bottleneck_rate_bps;
  bottleneck.prop_delay = spec.bottleneck_delay;
  bottleneck.buffer_bytes = std::max<size_t>(
      LinkConfig::buffer_for_delay(spec.bottleneck_rate_bps,
                                   spec.bottleneck_buffer_delay),
      3000);

  for (size_t i = 0; i < spec.clients; ++i) {
    const NodeId c = t.add_host("client" + std::to_string(i));
    t.connect(c, out.agg_a, access, access);
    t.connect(c, out.agg_b, access, access);
    out.clients.push_back(c);
  }
  out.bottleneck_a = t.connect(out.agg_a, out.core, bottleneck, bottleneck,
                               "bottleneck-a");
  out.bottleneck_b = t.connect(out.agg_b, out.core, bottleneck, bottleneck,
                               "bottleneck-b");
  for (size_t j = 0; j < spec.servers; ++j) {
    const NodeId s = t.add_host("server" + std::to_string(j));
    t.connect(out.core, s, access, access);
    out.servers.push_back(s);
  }
  t.build_routes();
  return out;
}

WorkloadEngine::WorkloadEngine(Topology& topo, WorkloadConfig cfg)
    : topo_(topo), cfg_(std::move(cfg)) {
#ifndef NDEBUG
  // The engine's timers, flow bookkeeping and stats all live in shard
  // cfg_.shard; a client host in another shard would be driven from the
  // wrong thread.
  for (NodeId c : cfg_.clients) assert(topo_.shard_of(c) == cfg_.shard);
#endif
  StatsRegistry& reg = topo_.stats(cfg_.shard);
  classes_.reserve(cfg_.classes.size());
  for (size_t k = 0; k < cfg_.classes.size(); ++k) {
    ClassState cs;
    cs.spec = cfg_.classes[k];
    cs.scope =
        reg.unique_scope(cfg_.scope_prefix + "workload." + cs.spec.name);
    classes_.push_back(std::move(cs));
  }
  // Register after the vector is final so the lambdas can capture stable
  // element pointers.
  for (ClassState& cs : classes_) {
    ClassState* p = &cs;
    reg.sampled(cs.scope + ".started",
                [p] { return static_cast<double>(p->started); });
    reg.sampled(cs.scope + ".completed",
                [p] { return static_cast<double>(p->completed); });
    reg.sampled(cs.scope + ".errors",
                [p] { return static_cast<double>(p->errors); });
    reg.sampled(cs.scope + ".bytes_received",
                [p] { return static_cast<double>(p->bytes); });
    cs.fct_us = &reg.histogram(cs.scope + ".fct_us");
    Histogram* h = cs.fct_us;
    reg.sampled(cs.scope + ".fct_p50_us",
                [h] { return static_cast<double>(h->approx_percentile(0.5)); });
    reg.sampled(cs.scope + ".fct_p99_us",
                [h] { return static_cast<double>(h->approx_percentile(0.99)); });
  }
  reg.sampled(cfg_.scope_prefix + "workload.concurrent",
              [this] { return static_cast<double>(flows_.size()); });
  reg.sampled(cfg_.scope_prefix + "workload.peak_concurrent",
              [this] { return static_cast<double>(peak_concurrent_); });
}

WorkloadEngine::~WorkloadEngine() {
  for (auto& [ptr, flow] : flows_) {
    if (flow->sock != nullptr) {
      flow->sock->on_connected = nullptr;
      flow->sock->on_readable = nullptr;
      flow->sock->on_send_space = nullptr;
      flow->sock->on_closed = nullptr;
    }
  }
  StatsRegistry& reg = topo_.stats(cfg_.shard);
  for (ClassState& cs : classes_) reg.remove_scope(cs.scope);
  reg.remove(cfg_.scope_prefix + "workload.concurrent");
  reg.remove(cfg_.scope_prefix + "workload.peak_concurrent");
}

void WorkloadEngine::start() {
  if (started_) return;
  started_ = true;

  // Servers: one factory + MPGET service per (server host, class), since
  // the transport of a listening port is a property of the class.
  for (NodeId s : cfg_.servers) {
    for (size_t k = 0; k < classes_.size(); ++k) {
      ServerSlot slot;
      slot.factory = std::make_unique<SocketFactory>(
          topo_.host(s), classes_[k].spec.transport);
      slot.http = std::make_unique<HttpServer>(
          *slot.factory, static_cast<Port>(cfg_.base_port + k));
      servers_.push_back(std::move(slot));
    }
  }

  // Clients: per (host, class) factory, arrival clock and rng stream.
  // Streams and staggers key off the client's *global* id, so a workload
  // partitioned across several engines (sharded cells) draws exactly the
  // streams one engine owning every client would.
  for (size_t ci = 0; ci < cfg_.clients.size(); ++ci) {
    const uint64_t gid =
        ci < cfg_.client_ids.size() ? cfg_.client_ids[ci] : ci;
    for (size_t k = 0; k < classes_.size(); ++k) {
      auto slot = std::make_unique<ClientSlot>();
      slot->eng = this;
      slot->cls = k;
      slot->node = cfg_.clients[ci];
      slot->factory = std::make_unique<SocketFactory>(
          topo_.host(slot->node), classes_[k].spec.transport);
      slot->rng.reseed(cfg_.seed ^ (0x9e3779b97f4a7c15ULL * (gid + 1)) ^
                       (0xd1342543de82ef95ULL * (k + 1)));
      // Stagger round-robin cursors so client i does not start on the
      // same server as client i+1.
      slot->next_server = static_cast<size_t>(gid);
      slot->next_local = static_cast<size_t>(gid);
      slots_.push_back(std::move(slot));
    }
  }

  for (auto& slot : slots_) {
    const FlowClass& spec = classes_[slot->cls].spec;
    // Persistent connections ramp up over the first simulated second in a
    // deterministic stagger, so the handshake burst does not synchronize.
    for (size_t i = 0; i < spec.persistent_per_client; ++i) {
      const SimTime at =
          static_cast<SimTime>(slot->rng.next_below(1000)) * kMillisecond;
      ClientSlot* raw = slot.get();
      topo_.loop(cfg_.shard).schedule_in(at, [this, raw] {
        if (!stopped_) launch(*raw, /*persistent=*/true);
      });
    }
    if (spec.arrival_rate_hz > 0) {
      ClientSlot* raw = slot.get();
      slot->arrival =
          std::make_unique<Timer>(topo_.loop(cfg_.shard), [this, raw] {
        if (stopped_) return;
        launch(*raw, /*persistent=*/false);
        schedule_arrival(*raw);
      });
      schedule_arrival(*slot);
    }
  }
}

void WorkloadEngine::stop() {
  stopped_ = true;
  for (auto& slot : slots_) {
    if (slot->arrival) slot->arrival->cancel();
  }
}

void WorkloadEngine::schedule_arrival(ClientSlot& slot) {
  const FlowClass& spec = classes_[slot.cls].spec;
  const double secs = slot.rng.next_exponential(1.0 / spec.arrival_rate_hz);
  const auto dt = std::max<SimTime>(
      1, static_cast<SimTime>(secs * static_cast<double>(kSecond)));
  slot.arrival->arm_in(dt);
}

uint64_t WorkloadEngine::sample_size(const FlowClass& spec, Rng& rng) {
  switch (spec.size_dist) {
    case FlowClass::SizeDist::kFixed:
      return spec.mean_size;
    case FlowClass::SizeDist::kExponential: {
      const double v =
          rng.next_exponential(static_cast<double>(spec.mean_size));
      return std::clamp(static_cast<uint64_t>(v), spec.min_size,
                        spec.max_size);
    }
  }
  return spec.mean_size;
}

void WorkloadEngine::launch(ClientSlot& slot, bool persistent) {
  ClassState& cls = classes_[slot.cls];
  const FlowClass& spec = cls.spec;

  const NodeId server = cfg_.servers[slot.next_server % cfg_.servers.size()];
  ++slot.next_server;
  const auto& saddrs = topo_.addrs(server);
  const Endpoint remote{saddrs[slot.next_server % saddrs.size()],
                        static_cast<Port>(cfg_.base_port + slot.cls)};

  // First-subflow source address: round-robin over the class's path set.
  const auto& laddrs = topo_.addrs(slot.node);
  IpAddr local;
  if (spec.local_addr_set.empty()) {
    local = laddrs[slot.next_local % laddrs.size()];
  } else {
    local = laddrs[spec.local_addr_set[slot.next_local %
                                       spec.local_addr_set.size()] %
                   laddrs.size()];
  }
  ++slot.next_local;

  auto flow = std::make_unique<Flow>();
  Flow* f = flow.get();
  f->eng = this;
  f->cls = slot.cls;
  f->start = topo_.loop(cfg_.shard).now();
  f->want = persistent ? kPersistentBytes : sample_size(spec, slot.rng);
  f->persistent = persistent;

  StreamSocket& s = slot.factory->connect(local, remote);
  slot.factory->release_when_closed(s);
  f->sock = &s;
  ++cls.started;
  flows_.emplace(f, std::move(flow));
  peak_concurrent_ = std::max(peak_concurrent_, flows_.size());

  s.on_connected = [f] { f->sock->write(make_http_request(f->want)); };
  s.on_readable = [this, f] { drain(*f); };
  s.on_closed = [this, f] {
    if (!f->done) finish(*f, /*ok=*/false);
  };
}

void WorkloadEngine::drain(Flow& f) {
  ClassState& cls = classes_[f.cls];
  // The engine only counts bytes, so consume() releases them with no copy
  // at all. Consumption stays in 16 KiB steps: the cadence of receive
  // window updates (hence the packet trace) depends on how much is
  // released per call, and this matches the historical read-loop quantum.
  for (;;) {
    const size_t n = std::min<size_t>(f.sock->readable_bytes(), 16 * 1024);
    if (n == 0) break;
    f.sock->consume(n);
    f.got += n;
    cls.bytes += n;
  }
  if (!f.done && f.sock->at_eof()) finish(f, /*ok=*/f.got == f.want);
}

void WorkloadEngine::finish(Flow& f, bool ok) {
  ClassState& cls = classes_[f.cls];
  f.done = true;
  if (ok) {
    ++cls.completed;
    if (!f.persistent) {
      cls.fct_us->record(static_cast<uint64_t>(
          (topo_.loop(cfg_.shard).now() - f.start) / 1000));
    }
  } else {
    ++cls.errors;
  }
  f.sock->close();
  detach(f);
}

void WorkloadEngine::detach(Flow& f) {
  // The socket outlives the flow record (it is factory-owned until fully
  // closed), so its callbacks must not dangle into the erased Flow.
  f.sock->on_connected = nullptr;
  f.sock->on_readable = nullptr;
  f.sock->on_send_space = nullptr;
  f.sock->on_closed = nullptr;
  flows_.erase(&f);
}

uint64_t WorkloadEngine::total_completed() const {
  uint64_t total = 0;
  for (const ClassState& cs : classes_) total += cs.completed;
  return total;
}

ShardedCapacity build_sharded_capacity(const ShardedCapacitySpec& spec,
                                       uint64_t seed, size_t shards) {
  if (shards == 0) shards = 1;
  ShardedCapacity out;
  out.topo = std::make_unique<Topology>(seed, shards);
  Topology& t = *out.topo;

  LinkConfig access;
  access.rate_bps = spec.cell.access_rate_bps;
  access.prop_delay = spec.cell.access_delay;
  access.buffer_bytes = std::max<size_t>(
      LinkConfig::buffer_for_delay(spec.cell.access_rate_bps,
                                   5 * kMillisecond),
      3000);

  LinkConfig bottleneck;
  bottleneck.rate_bps = spec.cell.bottleneck_rate_bps;
  bottleneck.prop_delay = spec.cell.bottleneck_delay;
  bottleneck.buffer_bytes = std::max<size_t>(
      LinkConfig::buffer_for_delay(spec.cell.bottleneck_rate_bps,
                                   spec.cell.bottleneck_buffer_delay),
      3000);

  // Construction order (cells, then the ring) fixes every link index and
  // loss seed independently of the shard count: only node->shard pinning
  // changes with `shards`, never the graph.
  for (size_t j = 0; j < spec.cells; ++j) {
    const size_t shard = j % shards;
    const std::string p = "c" + std::to_string(j) + ".";
    ShardedCapacity::Cell cell;
    cell.agg_a = t.add_router(p + "agg-a", shard);
    cell.agg_b = t.add_router(p + "agg-b", shard);
    cell.core = t.add_router(p + "core", shard);
    for (size_t i = 0; i < spec.cell.clients; ++i) {
      const NodeId c = t.add_host(p + "client" + std::to_string(i), shard);
      t.connect(c, cell.agg_a, access, access);
      t.connect(c, cell.agg_b, access, access);
      cell.clients.push_back(c);
    }
    cell.bottleneck_a = t.connect(cell.agg_a, cell.core, bottleneck,
                                  bottleneck, p + "bottleneck-a");
    cell.bottleneck_b = t.connect(cell.agg_b, cell.core, bottleneck,
                                  bottleneck, p + "bottleneck-b");
    for (size_t i = 0; i < spec.cell.servers; ++i) {
      const NodeId s = t.add_host(p + "server" + std::to_string(i), shard);
      t.connect(cell.core, s, access, access);
      cell.servers.push_back(s);
    }
    out.cells.push_back(std::move(cell));
  }

  if (spec.ring && spec.cells > 1) {
    LinkConfig ring;
    ring.rate_bps = spec.ring_rate_bps;
    ring.prop_delay = spec.ring_delay;
    ring.buffer_bytes = std::max<size_t>(
        LinkConfig::buffer_for_delay(spec.ring_rate_bps, 20 * kMillisecond),
        3000);
    for (size_t j = 0; j < spec.cells; ++j) {
      const size_t next = (j + 1) % spec.cells;
      out.ring_links.push_back(t.connect(out.cells[j].core,
                                         out.cells[next].core, ring, ring,
                                         "ring-" + std::to_string(j)));
    }
  }

  t.build_routes();
  return out;
}

ShardedCapacityWorkload::ShardedCapacityWorkload(ShardedCapacity& net,
                                                 const FlowClass& local,
                                                 const FlowClass& cross,
                                                 uint64_t seed) {
  Topology& topo = *net.topo;
  const size_t shards = topo.shard_count();
  const size_t cells = net.cells.size();
  const bool cross_on =
      cross.arrival_rate_hz > 0 || cross.persistent_per_client > 0;
  assert((!cross_on || cells <= 1 || !net.ring_links.empty()) &&
         "cross-cell traffic needs the ring");
  const size_t per_cell = cells == 0 ? 0 : net.cells[0].clients.size();

  for (size_t j = 0; j < cells; ++j) {
    const ShardedCapacity::Cell& cell = net.cells[j];
    std::vector<uint64_t> ids;
    ids.reserve(cell.clients.size());
    for (size_t i = 0; i < cell.clients.size(); ++i) {
      ids.push_back(j * per_cell + i);
    }

    WorkloadConfig wc;
    wc.clients = cell.clients;
    wc.servers = cell.servers;
    wc.classes.push_back(local);
    wc.seed = seed;
    wc.shard = j % shards;
    wc.scope_prefix = "c" + std::to_string(j) + ".";
    wc.client_ids = ids;
    engines_.push_back(std::make_unique<WorkloadEngine>(topo, std::move(wc)));

    if (cross_on && cells > 1) {
      // Clients of cell j fetch from cell j+1's servers over the ring:
      // with cells == shards every byte of this class crosses a shard
      // boundary twice (request out, response back).
      WorkloadConfig xc;
      xc.clients = cell.clients;
      xc.servers = net.cells[(j + 1) % cells].servers;
      xc.classes.push_back(cross);
      xc.base_port = 9000;  // listeners coexist with the local class's
      xc.seed = seed ^ 0x517cc1b727220a95ULL;
      xc.shard = j % shards;
      xc.scope_prefix = "c" + std::to_string(j) + "x.";
      xc.client_ids = ids;
      engines_.push_back(
          std::make_unique<WorkloadEngine>(topo, std::move(xc)));
    }
  }
}

void ShardedCapacityWorkload::start() {
  for (auto& e : engines_) e->start();
}

void ShardedCapacityWorkload::stop() {
  for (auto& e : engines_) e->stop();
}

size_t ShardedCapacityWorkload::concurrent() const {
  size_t n = 0;
  for (const auto& e : engines_) n += e->concurrent();
  return n;
}

size_t ShardedCapacityWorkload::peak_concurrent_sum() const {
  size_t n = 0;
  for (const auto& e : engines_) n += e->peak_concurrent();
  return n;
}

uint64_t ShardedCapacityWorkload::total_completed() const {
  uint64_t n = 0;
  for (const auto& e : engines_) n += e->total_completed();
  return n;
}

uint64_t ShardedCapacityWorkload::total_errors() const {
  uint64_t n = 0;
  for (const auto& e : engines_) {
    for (size_t k = 0; k < e->class_count(); ++k) n += e->errors(k);
  }
  return n;
}

uint64_t ShardedCapacityWorkload::bytes_received() const {
  uint64_t n = 0;
  for (const auto& e : engines_) {
    for (size_t k = 0; k < e->class_count(); ++k) n += e->bytes_received(k);
  }
  return n;
}

}  // namespace mptcp
