#include "app/harness.h"

namespace mptcp {

namespace {

LinkConfig make_link(double rate_bps, SimTime one_way, SimTime buffer_delay,
                     double loss, uint64_t seed) {
  LinkConfig cfg;
  cfg.rate_bps = rate_bps;
  cfg.prop_delay = one_way;
  cfg.buffer_bytes =
      std::max<size_t>(LinkConfig::buffer_for_delay(rate_bps, buffer_delay),
                       3000);  // at least two full-size frames
  cfg.loss_prob = loss;
  cfg.loss_seed = seed;
  return cfg;
}

}  // namespace

PathSpec wifi_path() {
  PathSpec s;
  s.name = "wifi";
  s.up = make_link(8e6, 10 * kMillisecond, 80 * kMillisecond, 0.0, 11);
  s.down = make_link(8e6, 10 * kMillisecond, 80 * kMillisecond, 0.0, 12);
  return s;
}

PathSpec threeg_path() {
  PathSpec s;
  s.name = "3g";
  s.up = make_link(2e6, 75 * kMillisecond, 2 * kSecond, 0.0, 21);
  s.down = make_link(2e6, 75 * kMillisecond, 2 * kSecond, 0.0, 22);
  return s;
}

PathSpec weak_threeg_path(double loss) {
  PathSpec s;
  s.name = "weak-3g";
  s.up = make_link(50e3, 75 * kMillisecond, 2 * kSecond, loss, 31);
  s.down = make_link(50e3, 75 * kMillisecond, 2 * kSecond, loss, 32);
  return s;
}

PathSpec ethernet_path(double rate_bps, SimTime rtt, SimTime buffer_delay) {
  PathSpec s;
  s.name = "eth";
  s.up = make_link(rate_bps, rtt / 2, buffer_delay, 0.0, 41);
  s.down = make_link(rate_bps, rtt / 2, buffer_delay, 0.0, 42);
  return s;
}

PathSpec capped_wifi_path() {
  PathSpec s;
  s.name = "capped-wifi";
  s.up = make_link(2e6, 10 * kMillisecond, 100 * kMillisecond, 0.0, 51);
  s.down = make_link(2e6, 10 * kMillisecond, 100 * kMillisecond, 0.0, 52);
  return s;
}

PathSpec capped_threeg_path(double loss) {
  PathSpec s;
  s.name = "capped-3g";
  s.up = make_link(2e6, 75 * kMillisecond, 2 * kSecond, loss, 61);
  s.down = make_link(2e6, 75 * kMillisecond, 2 * kSecond, loss, 62);
  return s;
}

TwoHostRig::TwoHostRig(uint64_t seed)
    : client_(loop_, "client"), server_(loop_, "server"), seed_(seed) {
  server_.add_interface(server_addr_, &server_out_);
  net_.attach(server_addr_, &server_);
}

size_t TwoHostRig::add_path(const PathSpec& spec) {
  const size_t idx = paths_.size();
  Path p;
  p.client_addr = IpAddr(10, 0, static_cast<uint8_t>(idx), 2);

  LinkConfig up_cfg = spec.up;
  LinkConfig down_cfg = spec.down;
  up_cfg.loss_seed ^= seed_ * 0x9e37;
  down_cfg.loss_seed ^= seed_ * 0x79b9;

  p.up = std::make_unique<Link>(loop_, up_cfg, spec.name + "-up");
  p.down = std::make_unique<Link>(loop_, down_cfg, spec.name + "-down");
  p.up->set_target(&net_);
  p.down->set_target(&net_);

  client_.add_interface(p.client_addr, p.up.get());
  net_.attach(p.client_addr, &client_);
  server_out_.add_route(p.client_addr, p.down.get());

  paths_.push_back(std::move(p));
  return idx;
}

void TwoHostRig::splice_up(size_t i, Middlebox& element) {
  element.set_downstream(paths_[i].up->target());
  paths_[i].up->set_target(&element);
}

void TwoHostRig::splice_down(size_t i, Middlebox& element) {
  element.set_downstream(paths_[i].down->target());
  paths_[i].down->set_target(&element);
}

void TwoHostRig::set_path_up(size_t i, bool up) {
  client_.set_interface_up(paths_[i].client_addr, up);
  paths_[i].up->set_up(up);
  paths_[i].down->set_up(up);
}

std::vector<uint8_t> pattern_bytes(uint64_t offset, size_t n) {
  std::vector<uint8_t> out(n);
  for (size_t i = 0; i < n; ++i) out[i] = pattern_byte(offset + i);
  return out;
}

}  // namespace mptcp
