#include "app/http_app.h"

#include "app/harness.h"

namespace mptcp {

namespace {
constexpr uint8_t kMagic[8] = {'M', 'P', 'G', 'E', 'T', 0, 0, 0};
}  // namespace

std::vector<uint8_t> make_http_request(uint64_t response_size) {
  std::vector<uint8_t> req(kHttpRequestSize, 0);
  std::copy(std::begin(kMagic), std::end(kMagic), req.begin());
  for (int i = 0; i < 8; ++i) {
    req[8 + i] = static_cast<uint8_t>(response_size >> ((7 - i) * 8));
  }
  return req;
}

// ---------------------------------------------------------------------------
// HttpServer
// ---------------------------------------------------------------------------

HttpServer::HttpServer(SocketFactory& factory, Port port)
    : factory_(factory) {
  factory_.listen(port, [this](StreamSocket& c) { accept(c); });
}

void HttpServer::accept(StreamSocket& c) {
  factory_.release_when_closed(c);
  auto conn = std::make_unique<Conn>();
  conn->self = this;
  conn->sock = &c;
  Conn* raw = conn.get();
  conns_.push_back(std::move(conn));
  c.on_readable = [raw] { raw->on_readable(); };
  c.on_send_space = [raw] { raw->pump_response(); };
  c.on_closed = [this, raw] { reap(raw); };
}

void HttpServer::Conn::on_readable() {
  uint8_t buf[256];
  for (;;) {
    const size_t n = sock->read(buf);
    if (n == 0) break;
    request.insert(request.end(), buf, buf + n);
  }
  if (!responding && request.size() >= kHttpRequestSize) {
    responding = true;
    uint64_t size = 0;
    for (int i = 8; i < 16; ++i) size = (size << 8) | request[i];
    response_size = size;
    pump_response();
  }
}

void HttpServer::Conn::pump_response() {
  if (!responding || closed_sent) return;
  while (response_sent < response_size) {
    const size_t chunk = static_cast<size_t>(
        std::min<uint64_t>(16 * 1024, response_size - response_sent));
    const auto bytes = pattern_bytes(response_sent, chunk);
    const size_t n = sock->write(bytes);
    response_sent += n;
    self->bytes_ += n;
    if (n < chunk) return;  // buffer full; resume on send space
  }
  closed_sent = true;
  ++self->served_;
  sock->close();
}

void HttpServer::reap(Conn* conn) {
  std::erase_if(conns_, [conn](const std::unique_ptr<Conn>& c) {
    return c.get() == conn;
  });
}

// ---------------------------------------------------------------------------
// HttpClientPool
// ---------------------------------------------------------------------------

HttpClientPool::HttpClientPool(SocketFactory& factory, IpAddr local_addr,
                               Endpoint server, size_t clients,
                               uint64_t response_size)
    : factory_(factory),
      local_addr_(local_addr),
      server_(server),
      response_size_(response_size) {
  for (size_t i = 0; i < clients; ++i) {
    auto c = std::make_unique<Client>();
    c->self = this;
    clients_.push_back(std::move(c));
  }
}

void HttpClientPool::start() {
  for (auto& c : clients_) start_request(*c);
}

void HttpClientPool::start_request(Client& c) {
  c.received = 0;
  c.done = false;
  // Bind the preferred address if its interface is up, else the first
  // live one (a real resolver/route lookup would do the same).
  IpAddr addr = local_addr_;
  if (!factory_.host().interface_up(addr)) {
    for (IpAddr a : factory_.host().addresses()) {
      if (factory_.host().interface_up(a)) {
        addr = a;
        break;
      }
    }
  }
  StreamSocket& conn = factory_.connect(addr, server_);
  factory_.release_when_closed(conn);
  c.sock = &conn;
  Client* raw = &c;
  conn.on_connected = [this, raw] {
    raw->sock->write(make_http_request(response_size_));
  };
  conn.on_readable = [this, raw] { on_client_readable(*raw); };
  conn.on_closed = [this, raw] {
    if (!raw->done) {
      // Connection died before the full response: count and retry.
      raw->done = true;
      ++errors_;
      raw->sock = nullptr;
      start_request(*raw);
    }
  };
}

void HttpClientPool::on_client_readable(Client& c) {
  // The client discards the response body, so consume() releases it
  // without copying. 16 KiB steps: the window-update cadence (and so the
  // packet trace) follows how much each call releases, and this matches
  // the historical read-loop quantum.
  for (;;) {
    const size_t n = std::min<size_t>(c.sock->readable_bytes(), 16 * 1024);
    if (n == 0) break;
    c.sock->consume(n);
    c.received += n;
  }
  if (!c.done && c.sock->at_eof()) {
    c.done = true;
    if (c.received == response_size_) {
      ++completed_;
    } else {
      ++errors_;
    }
    c.sock->close();
    StreamSocket* old = c.sock;
    c.sock = nullptr;
    old->on_readable = nullptr;
    old->on_closed = nullptr;
    old->on_connected = nullptr;
    start_request(c);
  }
}

}  // namespace mptcp
