#include "app/socket_factory.h"

namespace mptcp {

SocketFactory::SocketFactory(Host& host, TransportConfig config)
    : host_(host), config_(std::move(config)) {
  if (config_.kind == TransportKind::kMptcp) {
    mptcp_ = std::make_unique<MptcpStack>(host_, config_.mptcp);
  }
}

SocketFactory::~SocketFactory() = default;

StreamSocket& SocketFactory::connect(IpAddr local_addr, Endpoint remote) {
  if (mptcp_) return mptcp_->connect(local_addr, remote);
  auto conn = std::make_unique<OwnedTcp>(
      *this, Endpoint{local_addr, host_.alloc_ephemeral_port()}, remote);
  OwnedTcp& ref = *conn;
  tcp_conns_.push_back(std::move(conn));
  ref.connect();
  return ref;
}

void SocketFactory::listen(Port port, AcceptCallback cb) {
  if (mptcp_) {
    mptcp_->listen(port, [cb = std::move(cb)](MptcpConnection& c) { cb(c); });
    return;
  }
  tcp_listeners_.push_back(std::make_unique<TcpListener>(
      host_, port, [this, cb = std::move(cb)](const TcpSegment& syn) {
        auto conn =
            std::make_unique<OwnedTcp>(*this, syn.tuple.dst, syn.tuple.src);
        OwnedTcp& ref = *conn;
        tcp_conns_.push_back(std::move(conn));
        ref.accept_syn(syn);
        cb(ref);
      }));
}

void SocketFactory::release_when_closed(StreamSocket& s) {
  if (auto* m = as_mptcp(s)) {
    m->set_auto_destroy(true);
    return;
  }
  static_cast<OwnedTcp&>(s).release_on_close();
}

void SocketFactory::destroy_tcp_later(OwnedTcp* conn) {
  // Deferred to a fresh event so release is safe from the socket's own
  // callbacks (same discipline as MptcpStack::destroy_later).
  loop().schedule_in(0, [this, conn] {
    std::erase_if(tcp_conns_, [conn](const std::unique_ptr<OwnedTcp>& c) {
      return c.get() == conn;
    });
  });
}

size_t SocketFactory::live_sockets() const {
  return mptcp_ ? mptcp_->live_connections() : tcp_conns_.size();
}

MptcpConnection* SocketFactory::as_mptcp(StreamSocket& s) {
  return dynamic_cast<MptcpConnection*>(&s);
}

TcpConnection* SocketFactory::as_tcp(StreamSocket& s) {
  return dynamic_cast<TcpConnection*>(&s);
}

}  // namespace mptcp
