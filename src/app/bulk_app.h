// Bulk-transfer workload: a sender that keeps the socket full and a
// receiver that drains it, verifying payload integrity against the
// deterministic pattern and metering goodput. Used by most experiments.
#pragma once

#include <cstdint>

#include "app/harness.h"
#include "tcp/tcp_socket.h"

namespace mptcp {

/// Writes the deterministic pattern into a socket as fast as the send
/// buffer accepts, up to an optional total, then (optionally) closes.
class BulkSender {
 public:
  /// total_bytes == 0 means unlimited (runs until the simulation stops).
  BulkSender(StreamSocket& sock, uint64_t total_bytes = 0,
             bool close_when_done = true);
  ~BulkSender() {
    sock_.on_connected = nullptr;
    sock_.on_send_space = nullptr;
  }

  void start() { fill(); }
  uint64_t bytes_written() const { return written_; }
  bool done() const { return total_ != 0 && written_ >= total_; }

 private:
  void fill();

  StreamSocket& sock_;
  uint64_t total_;
  bool close_when_done_;
  uint64_t written_ = 0;
  bool closed_ = false;
};

/// Drains a socket, verifying the pattern and counting delivered bytes.
class BulkReceiver {
 public:
  explicit BulkReceiver(StreamSocket& sock, bool verify = true);
  ~BulkReceiver() { sock_.on_readable = nullptr; }

  uint64_t bytes_received() const { return received_; }
  uint64_t pattern_errors() const { return pattern_errors_; }
  bool pattern_ok() const { return pattern_errors_ == 0; }
  bool saw_eof() const { return saw_eof_; }
  std::function<void()> on_eof;

 private:
  void drain();

  StreamSocket& sock_;
  bool verify_;
  uint64_t received_ = 0;
  uint64_t pattern_errors_ = 0;
  bool saw_eof_ = false;
};

/// Fig. 7's workload: 8 KB blocks, each stamped with its creation time;
/// the receiver reconstructs blocks and records application-level delay.
class BlockSender {
 public:
  static constexpr size_t kBlockSize = 8 * 1024;

  BlockSender(EventLoop& loop, StreamSocket& sock);

  uint64_t blocks_sent() const { return blocks_started_; }
  /// Kick for sockets that were already connected at construction.
  void fill_now() { fill(); }

 private:
  void fill();

  EventLoop& loop_;
  StreamSocket& sock_;
  std::vector<uint8_t> current_;  ///< remainder of the block being written
  size_t current_off_ = 0;
  uint64_t blocks_started_ = 0;
};

class BlockReceiver {
 public:
  BlockReceiver(EventLoop& loop, StreamSocket& sock);

  /// App-level delays (seconds) of completed blocks.
  const Distribution& delays() const { return delays_; }
  uint64_t blocks_completed() const { return blocks_; }

 private:
  static constexpr size_t kHeader = 8;  ///< timestamp bytes per block

  void drain();

  EventLoop& loop_;
  StreamSocket& sock_;
  size_t block_pos_ = 0;     ///< bytes of the current block consumed
  uint8_t header_[kHeader];  ///< the current block's timestamp bytes
  Distribution delays_;
  uint64_t blocks_ = 0;
};

}  // namespace mptcp
