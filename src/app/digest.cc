#include "app/digest.h"

#include <cstdio>
#include <memory>
#include <vector>

#include "app/bulk_app.h"
#include "app/harness.h"
#include "app/http_app.h"
#include "app/workload.h"
#include "core/mptcp_stack.h"
#include "sim/node.h"
#include "sim/shard.h"

namespace mptcp {

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

inline void fnv_byte(uint64_t& h, uint8_t b) {
  h ^= b;
  h *= kFnvPrime;
}

inline void fnv_u64(uint64_t& h, uint64_t v) {
  for (int i = 0; i < 8; ++i) fnv_byte(h, static_cast<uint8_t>(v >> (8 * i)));
}

/// A transparent link tap: hashes every segment it sees in delivery order,
/// then forwards it unmodified to the link's original target.
class HashingTap final : public Middlebox {
 public:
  HashingTap(EventLoop& loop, uint64_t& hash, uint64_t& packets)
      : loop_(loop), hash_(hash), packets_(packets) {}

  void deliver(TcpSegment seg) override {
    ++packets_;
    fnv_u64(hash_, static_cast<uint64_t>(loop_.now()));
    fnv_u64(hash_, uint64_t{seg.tuple.src.addr.value} << 16 |
                       seg.tuple.src.port);
    fnv_u64(hash_, uint64_t{seg.tuple.dst.addr.value} << 16 |
                       seg.tuple.dst.port);
    fnv_u64(hash_, seg.seq);
    fnv_u64(hash_, seg.ack);
    fnv_u64(hash_, seg.window);
    fnv_byte(hash_, static_cast<uint8_t>((seg.syn ? 1 : 0) |
                                         (seg.ack_flag ? 2 : 0) |
                                         (seg.fin ? 4 : 0) |
                                         (seg.rst ? 8 : 0) |
                                         (seg.psh ? 16 : 0)));
    fnv_u64(hash_, seg.options_wire_size());
    fnv_u64(hash_, seg.payload.size());
    for (uint8_t b : seg.payload.span()) fnv_byte(hash_, b);
    emit(std::move(seg));
  }

 private:
  EventLoop& loop_;
  uint64_t& hash_;
  uint64_t& packets_;
};

/// Folds the registry's final flat view into the hash: counters that
/// drifted without changing the packet stream (e.g. event accounting)
/// still break determinism and should be caught.
void fold_stats(uint64_t& hash, StatsRegistry& reg) {
  for (const auto& [name, value] : reg.flatten()) {
    for (char c : name) fnv_byte(hash, static_cast<uint8_t>(c));
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    for (const char* p = buf; *p != '\0'; ++p) {
      fnv_byte(hash, static_cast<uint8_t>(*p));
    }
  }
}

DigestResult run_two_host_digest(const DigestConfig& cfg) {
  DigestResult out;
  uint64_t hash = kFnvOffset;

  TwoHostRig rig(cfg.seed);
  rig.add_path(wifi_path());
  rig.add_path(weak_threeg_path(cfg.loss));

  // Tap all four link directions before any traffic flows.
  std::vector<std::unique_ptr<HashingTap>> taps;
  for (size_t i = 0; i < rig.path_count(); ++i) {
    for (bool up : {true, false}) {
      auto tap = std::make_unique<HashingTap>(rig.loop(), hash,
                                              out.packets_hashed);
      if (up) {
        rig.splice_up(i, *tap);
      } else {
        rig.splice_down(i, *tap);
      }
      taps.push_back(std::move(tap));
    }
  }

  MptcpConfig mc;
  mc.opportunistic_retransmit = true;  // Mechanism 1
  mc.penalize_slow_subflows = true;    // Mechanism 2
  mc.scheduler = cfg.scheduler;
  mc.tcp.seed = cfg.seed;

  MptcpStack client_stack(rig.client(), mc);
  MptcpStack server_stack(rig.server(), mc);

  std::unique_ptr<BulkReceiver> rx;
  server_stack.listen(80, [&](MptcpConnection& c) {
    rx = std::make_unique<BulkReceiver>(c, /*verify=*/false);
  });
  MptcpConnection& client = client_stack.connect(
      rig.client_addr(0), Endpoint{rig.server_addr(), 80});
  BulkSender tx(client, 0);

  rig.loop().run_until(cfg.duration);

  out.bytes_delivered = rx != nullptr ? rx->bytes_received() : 0;
  out.stats_json = rig.dump_stats();
  fold_stats(hash, rig.stats());

  out.digest = hash;
  return out;
}

/// Scale-out digest: a small capacity topology (4 dual-homed clients, 2
/// servers, 2 shared bottlenecks) under a churning MPTCP workload, with
/// every bottleneck crossing hashed in delivery order.
DigestResult run_capacity_digest(const DigestConfig& cfg) {
  DigestResult out;
  uint64_t hash = kFnvOffset;

  CapacitySpec spec;
  spec.clients = 4;
  spec.servers = 2;
  spec.bottleneck_rate_bps = 200e6;
  CapacityTopology cap = build_capacity_topology(spec, cfg.seed);
  Topology& topo = *cap.topo;

  // Tap both directions of both bottlenecks before any traffic flows.
  std::vector<std::unique_ptr<HashingTap>> taps;
  for (size_t l : {cap.bottleneck_a, cap.bottleneck_b}) {
    for (bool ab : {true, false}) {
      auto tap = std::make_unique<HashingTap>(topo.loop(), hash,
                                              out.packets_hashed);
      if (ab) {
        topo.splice_ab(l, *tap);
      } else {
        topo.splice_ba(l, *tap);
      }
      taps.push_back(std::move(tap));
    }
  }

  WorkloadConfig wc;
  wc.clients = cap.clients;
  wc.servers = cap.servers;
  wc.seed = cfg.seed;
  FlowClass churn;
  churn.name = "churn";
  churn.arrival_rate_hz = 20.0;
  churn.size_dist = FlowClass::SizeDist::kExponential;
  churn.mean_size = 30 * 1000;
  churn.max_size = 300 * 1000;
  churn.persistent_per_client = 5;
  churn.transport.mptcp.scheduler = cfg.scheduler;
  churn.transport.mptcp.meta_snd_buf_max = 64 * 1024;
  churn.transport.mptcp.meta_rcv_buf_max = 64 * 1024;
  churn.transport.mptcp.tcp.snd_buf_max = 32 * 1024;
  churn.transport.mptcp.tcp.rcv_buf_max = 32 * 1024;
  churn.transport.mptcp.tcp.seed = cfg.seed;
  wc.classes.push_back(churn);

  WorkloadEngine engine(topo, wc);
  engine.start();
  topo.loop().run_until(cfg.duration);

  out.bytes_delivered = engine.bytes_received(0);
  out.stats_json = topo.dump_stats();
  fold_stats(hash, topo.stats());

  out.digest = hash;
  return out;
}

/// Sharded capacity digest: a ring of capacity cells pinned round-robin
/// onto `cfg.shards` shards, with a local churn class per cell plus a
/// cross-cell class whose every byte traverses the ring -- i.e. the
/// SPSC/epoch-barrier handoff path when shards > 1. Each tap owns its
/// hash (taps on different shards run on different threads); the final
/// digest folds the per-tap hashes in tap creation order, then the
/// deterministic merged stats export. Bit-stable for a fixed shard
/// count; *not* comparable across shard counts (cross-cell arrivals tie-
/// break differently against same-timestamp local events).
DigestResult run_sharded_capacity_digest(const DigestConfig& cfg) {
  DigestResult out;

  ShardedCapacitySpec spec;
  spec.cells = 4;
  spec.cell.clients = 2;
  spec.cell.servers = 1;
  spec.cell.bottleneck_rate_bps = 100e6;
  ShardedCapacity net = build_sharded_capacity(spec, cfg.seed, cfg.shards);
  Topology& topo = *net.topo;

  // One hash per tap, preallocated so addresses stay stable while taps
  // hold references. Order: per cell bottleneck-a {ab, ba} then
  // bottleneck-b {ab, ba}, then each ring link {ab, ba}.
  const size_t tap_count = spec.cells * 4 + net.ring_links.size() * 2;
  std::vector<uint64_t> hashes(tap_count, kFnvOffset);
  std::vector<uint64_t> packets(tap_count, 0);
  std::vector<std::unique_ptr<HashingTap>> taps;
  size_t ti = 0;
  const auto tap_link = [&](size_t l, bool ab) {
    // The tap runs on the delivery side of the link: the shard of the
    // node the direction points at.
    const NodeId dst = ab ? topo.link_node_b(l) : topo.link_node_a(l);
    auto tap = std::make_unique<HashingTap>(topo.loop(topo.shard_of(dst)),
                                            hashes[ti], packets[ti]);
    ++ti;
    if (ab) {
      topo.splice_ab(l, *tap);
    } else {
      topo.splice_ba(l, *tap);
    }
    taps.push_back(std::move(tap));
  };
  for (const ShardedCapacity::Cell& cell : net.cells) {
    for (size_t l : {cell.bottleneck_a, cell.bottleneck_b}) {
      tap_link(l, true);
      tap_link(l, false);
    }
  }
  for (size_t l : net.ring_links) {
    tap_link(l, true);
    tap_link(l, false);
  }

  FlowClass local;
  local.name = "local";
  local.arrival_rate_hz = 10.0;
  local.size_dist = FlowClass::SizeDist::kExponential;
  local.mean_size = 30 * 1000;
  local.max_size = 300 * 1000;
  local.persistent_per_client = 2;
  local.transport.mptcp.scheduler = cfg.scheduler;
  local.transport.mptcp.meta_snd_buf_max = 64 * 1024;
  local.transport.mptcp.meta_rcv_buf_max = 64 * 1024;
  local.transport.mptcp.tcp.snd_buf_max = 32 * 1024;
  local.transport.mptcp.tcp.rcv_buf_max = 32 * 1024;
  local.transport.mptcp.tcp.seed = cfg.seed;

  FlowClass cross = local;
  cross.name = "cross";
  cross.arrival_rate_hz = 5.0;
  cross.persistent_per_client = 1;

  ShardedCapacityWorkload workload(net, local, cross, cfg.seed);
  workload.start();
  ShardedEngine engine(topo);
  engine.run_until(cfg.duration);

  uint64_t hash = kFnvOffset;
  for (size_t i = 0; i < tap_count; ++i) {
    fnv_u64(hash, hashes[i]);
    fnv_u64(hash, packets[i]);
    out.packets_hashed += packets[i];
  }
  const auto merged = StatsRegistry::merged_flatten(topo.shard_stats());
  for (const auto& [name, value] : merged) {
    for (char c : name) fnv_byte(hash, static_cast<uint8_t>(c));
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    for (const char* p = buf; *p != '\0'; ++p) {
      fnv_byte(hash, static_cast<uint8_t>(*p));
    }
  }

  out.bytes_delivered = workload.bytes_received();
  out.stats_json = topo.dump_stats();
  out.digest = hash;
  return out;
}

/// Two hosts, one link pair, a single closed-loop client fetching fixed
/// responses back to back. With shards >= 2 the hosts sit in different
/// shards and every packet rides the handoff path; traffic is strictly
/// sequential, so arrival timestamps -- and therefore the per-tap hashes
/// -- must be identical to the single-shard run. The digest folds only
/// the tap hashes (per-loop bookkeeping like event counts legitimately
/// differs across shard counts), so digest(shards=1) == digest(shards=2)
/// is the epoch-barrier lockstep contract the tests pin.
DigestResult run_pingpong_digest(const DigestConfig& cfg) {
  DigestResult out;
  const size_t shards = cfg.shards == 0 ? 1 : cfg.shards;

  Topology topo(cfg.seed, shards);
  const NodeId ping = topo.add_host("ping", 0);
  const NodeId pong = topo.add_host("pong", shards > 1 ? 1 : 0);
  LinkConfig link;
  link.rate_bps = 10e6;
  link.prop_delay = 10 * kMillisecond;
  link.buffer_bytes = 64 * 1024;
  const size_t l = topo.connect(ping, pong, link, link);
  topo.build_routes();

  uint64_t hash_ab = kFnvOffset;
  uint64_t hash_ba = kFnvOffset;
  uint64_t pkts_ab = 0;
  uint64_t pkts_ba = 0;
  HashingTap tap_ab(topo.loop(topo.shard_of(pong)), hash_ab, pkts_ab);
  HashingTap tap_ba(topo.loop(topo.shard_of(ping)), hash_ba, pkts_ba);
  topo.splice_ab(l, tap_ab);
  topo.splice_ba(l, tap_ba);

  TransportConfig tc;
  tc.mptcp.scheduler = cfg.scheduler;
  tc.mptcp.tcp.seed = cfg.seed;
  SocketFactory server_factory(topo.host(pong), tc);
  SocketFactory client_factory(topo.host(ping), tc);
  HttpServer server(server_factory, 80);
  HttpClientPool client(client_factory, topo.addr(ping),
                        Endpoint{topo.addr(pong), 80}, /*clients=*/1,
                        /*response_size=*/20 * 1024);
  client.start();

  ShardedEngine engine(topo);
  engine.run_until(cfg.duration);

  uint64_t hash = kFnvOffset;
  for (uint64_t h : {hash_ab, hash_ba}) fnv_u64(hash, h);
  for (uint64_t p : {pkts_ab, pkts_ba}) fnv_u64(hash, p);
  out.packets_hashed = pkts_ab + pkts_ba;
  out.bytes_delivered = server.bytes_served();
  out.stats_json = topo.dump_stats();
  out.digest = hash;
  return out;
}

}  // namespace

DigestResult run_digest_scenario(const DigestConfig& cfg) {
  switch (cfg.scenario) {
    case DigestScenario::kCapacity:
      return cfg.shards > 0 ? run_sharded_capacity_digest(cfg)
                            : run_capacity_digest(cfg);
    case DigestScenario::kPingPong:
      return run_pingpong_digest(cfg);
    case DigestScenario::kTwoHost:
      break;
  }
  return run_two_host_digest(cfg);
}

std::string digest_hex(uint64_t digest) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(digest));
  return std::string(buf);
}

}  // namespace mptcp
