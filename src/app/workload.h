// Many-connection workload engine: open-loop traffic over a Topology.
//
// Where the closed-loop HTTP pool (http_app.h) models a fixed client
// count, the WorkloadEngine models *load*: each traffic class opens new
// connections from every client host as a Poisson process (exponential
// inter-arrivals), draws a flow size from a configurable distribution,
// fetches that many bytes from a round-robin-chosen server, and records
// the flow completion time. Classes can additionally pin long-lived
// "persistent" connections open for the whole run, which is how the
// capacity benchmark sustains thousands of concurrent MPTCP connections
// over a shared bottleneck.
//
// Every class carries its own TransportConfig (TCP vs MPTCP, buffer
// sizes, subflow policy) and an optional path set -- the subset of each
// client host's interfaces its flows bind as the first-subflow source
// address -- so classes are steered onto distinct paths of the same
// topology. Everything is written against StreamSocket/SocketFactory;
// the engine never names a transport.
//
// Observability: per-class scopes "workload.<name>" in the loop's
// StatsRegistry -- started/completed/errors/bytes counters, a concurrent
// gauge, peak concurrency, a power-of-two FCT histogram and sampled
// p50/p99 completion times -- all exported by Topology::dump_stats().
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "app/http_app.h"
#include "app/socket_factory.h"
#include "sim/topology.h"

namespace mptcp {

/// One traffic class: arrival process, size distribution, transport.
struct FlowClass {
  std::string name = "default";
  /// Per-class transport selection, including the MPTCP send-path
  /// policies: classes in one workload can run different schedulers and
  /// congestion controllers side by side (e.g. `transport.with_scheduler(
  /// SchedulerPolicy::kBackupAware)` for one class, default lowest-RTT
  /// for another) -- each class gets its own factory per client host.
  TransportConfig transport;

  /// New-flow arrival rate per client host (Poisson; 0 = no churn).
  double arrival_rate_hz = 10.0;

  enum class SizeDist : uint8_t { kFixed, kExponential };
  SizeDist size_dist = SizeDist::kFixed;
  uint64_t mean_size = 100 * 1000;        ///< bytes fetched per flow
  uint64_t min_size = 1000;               ///< clamp for kExponential
  uint64_t max_size = 100 * 1000 * 1000;  ///< clamp for kExponential

  /// Long-lived connections opened per client host at start(); they fetch
  /// an effectively infinite response and stay up for the whole run.
  size_t persistent_per_client = 0;

  /// Indices into each client host's interface list that this class binds
  /// as first-subflow source addresses (round-robin). Empty = all.
  std::vector<size_t> local_addr_set;
};

struct WorkloadConfig {
  std::vector<NodeId> clients;
  std::vector<NodeId> servers;
  std::vector<FlowClass> classes;
  Port base_port = 8000;  ///< class k is served on base_port + k
  uint64_t seed = 1;

  /// Shard whose loop drives this engine's client side (arrival timers,
  /// flow bookkeeping, stats registration). Every client host must live
  /// in this shard; server hosts may live elsewhere -- their listeners
  /// run on their own shard's loop and traffic crosses through the
  /// topology's shard channels.
  size_t shard = 0;
  /// Prepended to every stats scope ("c3." -> "c3.workload.<class>...").
  /// Cell-structured scenarios use this to keep scopes globally unique,
  /// which makes the merged multi-shard export identical to a
  /// single-shard run of the same topology.
  std::string scope_prefix;
  /// Global client identities, parallel to `clients`. RNG streams and
  /// round-robin staggers derive from these instead of local indices, so
  /// a workload split across several engines draws the same per-client
  /// streams as one engine owning all of them. Empty = 0..N-1.
  std::vector<uint64_t> client_ids;
};

/// The canonical scale-out shape shared by the capacity benchmark, the
/// multi-host determinism digest and the topology tests: N dual-homed
/// client hosts fan into two aggregation routers whose uplinks to a core
/// router are the shared bottlenecks; M servers hang off the core.
///
///   client_i --access--> agg_a --bottleneck_a--> core --access--> server_j
///            \-access--> agg_b --bottleneck_b--/
///
/// Every client gets two addresses (one per aggregation side), so each
/// MPTCP connection can run one subflow per bottleneck.
struct CapacitySpec {
  size_t clients = 4;
  size_t servers = 2;
  double access_rate_bps = 1e9;
  SimTime access_delay = 200 * kMicrosecond;
  double bottleneck_rate_bps = 400e6;
  SimTime bottleneck_delay = 2 * kMillisecond;
  SimTime bottleneck_buffer_delay = 20 * kMillisecond;
};

struct CapacityTopology {
  std::unique_ptr<Topology> topo;
  std::vector<NodeId> clients;
  std::vector<NodeId> servers;
  NodeId agg_a = 0, agg_b = 0, core = 0;
  size_t bottleneck_a = 0, bottleneck_b = 0;  ///< link indices
};

/// Builds the topology above (routes already computed).
CapacityTopology build_capacity_topology(const CapacitySpec& spec,
                                         uint64_t seed);

/// Scale-out sharded shape: `cells` disjoint replicas of the capacity
/// cell above, cell j pinned to shard j % shards, optionally wired in a
/// ring through their core routers (the ring links are the cross-shard
/// handoff paths). The topology -- node set, link indices, loss seeds,
/// addresses, routes -- depends only on (spec, seed), never on the shard
/// count, which is what lets a sharded run reproduce the single-shard
/// run's simulated metrics exactly when traffic stays inside cells.
struct ShardedCapacitySpec {
  CapacitySpec cell;
  size_t cells = 4;
  /// Connect core[j] -> core[(j+1) % cells]; required for cross-cell
  /// traffic, and the source of the engine's epoch quantum (ring_delay).
  bool ring = true;
  double ring_rate_bps = 2e9;
  SimTime ring_delay = 5 * kMillisecond;
};

struct ShardedCapacity {
  std::unique_ptr<Topology> topo;
  struct Cell {
    std::vector<NodeId> clients;
    std::vector<NodeId> servers;
    NodeId agg_a = 0, agg_b = 0, core = 0;
    size_t bottleneck_a = 0, bottleneck_b = 0;  ///< link indices
  };
  std::vector<Cell> cells;
  std::vector<size_t> ring_links;  ///< cross-shard when shards > 1
};

ShardedCapacity build_sharded_capacity(const ShardedCapacitySpec& spec,
                                       uint64_t seed, size_t shards);

class WorkloadEngine;

/// Drives one WorkloadEngine per cell (each pinned to its cell's shard,
/// scoped "c<j>.", seeded by global client ids) and, when `cross` has
/// any load, a second engine per cell whose clients fetch from the *next*
/// cell's servers over the ring -- the traffic that exercises cross-shard
/// handoff. Aggregates roll up across cells.
class ShardedCapacityWorkload {
 public:
  ShardedCapacityWorkload(ShardedCapacity& net, const FlowClass& local,
                          const FlowClass& cross, uint64_t seed);

  void start();
  void stop();

  size_t concurrent() const;
  size_t peak_concurrent_sum() const;  ///< sum of per-engine peaks
  uint64_t total_completed() const;
  uint64_t total_errors() const;
  uint64_t bytes_received() const;
  size_t engine_count() const { return engines_.size(); }
  WorkloadEngine& engine(size_t i) { return *engines_[i]; }

 private:
  std::vector<std::unique_ptr<WorkloadEngine>> engines_;
};

class WorkloadEngine {
 public:
  WorkloadEngine(Topology& topo, WorkloadConfig cfg);
  ~WorkloadEngine();

  WorkloadEngine(const WorkloadEngine&) = delete;
  WorkloadEngine& operator=(const WorkloadEngine&) = delete;

  /// Installs the servers, opens persistent connections and starts the
  /// arrival processes.
  void start();
  /// Stops launching new flows; in-flight flows run to completion.
  void stop();

  // --- introspection (also exported through the stats registry) ---------
  uint64_t started(size_t cls) const { return classes_[cls].started; }
  uint64_t completed(size_t cls) const { return classes_[cls].completed; }
  uint64_t errors(size_t cls) const { return classes_[cls].errors; }
  uint64_t bytes_received(size_t cls) const { return classes_[cls].bytes; }
  const Histogram& fct_us(size_t cls) const { return *classes_[cls].fct_us; }
  size_t class_count() const { return classes_.size(); }

  /// Client-side flows currently open, across all classes.
  size_t concurrent() const { return flows_.size(); }
  size_t peak_concurrent() const { return peak_concurrent_; }
  uint64_t total_completed() const;

 private:
  struct ClassState {
    FlowClass spec;
    std::string scope;
    uint64_t started = 0;
    uint64_t completed = 0;
    uint64_t errors = 0;
    uint64_t bytes = 0;
    Histogram* fct_us = nullptr;  ///< completion times, microseconds
  };

  /// One (client host, class) pair: its transport factory, arrival clock
  /// and round-robin cursors.
  struct ClientSlot {
    WorkloadEngine* eng = nullptr;
    size_t cls = 0;
    NodeId node = 0;
    std::unique_ptr<SocketFactory> factory;
    std::unique_ptr<Timer> arrival;
    Rng rng{1};
    size_t next_server = 0;
    size_t next_local = 0;
  };

  /// One open client-side flow.
  struct Flow {
    WorkloadEngine* eng = nullptr;
    size_t cls = 0;
    StreamSocket* sock = nullptr;
    SimTime start = 0;
    uint64_t want = 0;
    uint64_t got = 0;
    bool persistent = false;
    bool done = false;
  };

  void schedule_arrival(ClientSlot& slot);
  void launch(ClientSlot& slot, bool persistent);
  uint64_t sample_size(const FlowClass& spec, Rng& rng);
  void drain(Flow& f);
  void finish(Flow& f, bool ok);
  void detach(Flow& f);  ///< clears socket callbacks and erases the flow

  Topology& topo_;
  WorkloadConfig cfg_;
  std::vector<ClassState> classes_;
  std::vector<std::unique_ptr<ClientSlot>> slots_;
  /// Server side: one factory + MPGET server per (server host, class).
  struct ServerSlot {
    std::unique_ptr<SocketFactory> factory;
    std::unique_ptr<HttpServer> http;
  };
  std::vector<ServerSlot> servers_;
  std::unordered_map<Flow*, std::unique_ptr<Flow>> flows_;
  size_t peak_concurrent_ = 0;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace mptcp
