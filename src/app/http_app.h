// Closed-loop HTTP-like workload (Fig. 11: apachebench against Apache).
//
// N concurrent clients each run request/response transactions in a closed
// loop: open a connection, send a small fixed-size request naming the
// response size, read the response to EOF, open the next connection.
// Requests/second is the figure of merit. The same code drives MPTCP,
// fallback-TCP, and TCP-over-bonding servers, since all expose
// StreamSocket.
#pragma once

#include <memory>
#include <vector>

#include "core/mptcp_stack.h"

namespace mptcp {

/// Wire format of a request: magic + big-endian response size.
inline constexpr size_t kHttpRequestSize = 16;

class HttpServer {
 public:
  HttpServer(MptcpStack& stack, Port port);

  uint64_t requests_served() const { return served_; }
  uint64_t bytes_served() const { return bytes_; }

 private:
  struct Conn {
    HttpServer* self = nullptr;
    MptcpConnection* sock = nullptr;
    std::vector<uint8_t> request;
    uint64_t response_size = 0;
    uint64_t response_sent = 0;
    bool responding = false;
    bool closed_sent = false;

    void on_readable();
    void pump_response();
  };

  void accept(MptcpConnection& c);
  void reap(Conn* conn);

  MptcpStack& stack_;
  std::vector<std::unique_ptr<Conn>> conns_;
  uint64_t served_ = 0;
  uint64_t bytes_ = 0;
};

class HttpClientPool {
 public:
  /// `local_addr`: the address new connections bind (subflows may join
  /// from the host's other addresses automatically when MPTCP is on).
  HttpClientPool(MptcpStack& stack, IpAddr local_addr, Endpoint server,
                 size_t clients, uint64_t response_size);

  void start();
  uint64_t completed() const { return completed_; }
  uint64_t errors() const { return errors_; }

 private:
  struct Client {
    HttpClientPool* self = nullptr;
    MptcpConnection* sock = nullptr;
    uint64_t received = 0;
    bool done = false;
  };

  void start_request(Client& c);
  void on_client_readable(Client& c);

  MptcpStack& stack_;
  IpAddr local_addr_;
  Endpoint server_;
  uint64_t response_size_;
  std::vector<std::unique_ptr<Client>> clients_;
  uint64_t completed_ = 0;
  uint64_t errors_ = 0;
};

}  // namespace mptcp
