// Closed-loop HTTP-like workload (Fig. 11: apachebench against Apache).
//
// N concurrent clients each run request/response transactions in a closed
// loop: open a connection, send a small fixed-size request naming the
// response size, read the response to EOF, open the next connection.
// Requests/second is the figure of merit. The same code drives MPTCP,
// fallback-TCP, plain TCP and TCP-over-bonding servers: both sides are
// written against StreamSocket only and obtain sockets from a
// SocketFactory, which decides the transport.
#pragma once

#include <memory>
#include <vector>

#include "app/socket_factory.h"

namespace mptcp {

/// Wire format of a request: magic + big-endian response size.
inline constexpr size_t kHttpRequestSize = 16;

/// Serves MPGET requests on a port: reads the 16-byte request, streams the
/// named number of pattern bytes back, closes. Connections are released to
/// the factory when they finish, so the server sustains open-ended churn.
class HttpServer {
 public:
  HttpServer(SocketFactory& factory, Port port);

  uint64_t requests_served() const { return served_; }
  uint64_t bytes_served() const { return bytes_; }

 private:
  struct Conn {
    HttpServer* self = nullptr;
    StreamSocket* sock = nullptr;
    std::vector<uint8_t> request;
    uint64_t response_size = 0;
    uint64_t response_sent = 0;
    bool responding = false;
    bool closed_sent = false;

    void on_readable();
    void pump_response();
  };

  void accept(StreamSocket& c);
  void reap(Conn* conn);

  SocketFactory& factory_;
  std::vector<std::unique_ptr<Conn>> conns_;
  uint64_t served_ = 0;
  uint64_t bytes_ = 0;
};

class HttpClientPool {
 public:
  /// `local_addr`: the address new connections bind (subflows may join
  /// from the host's other addresses automatically when MPTCP is on).
  HttpClientPool(SocketFactory& factory, IpAddr local_addr, Endpoint server,
                 size_t clients, uint64_t response_size);

  void start();
  uint64_t completed() const { return completed_; }
  uint64_t errors() const { return errors_; }

 private:
  struct Client {
    HttpClientPool* self = nullptr;
    StreamSocket* sock = nullptr;
    uint64_t received = 0;
    bool done = false;
  };

  void start_request(Client& c);
  void on_client_readable(Client& c);

  SocketFactory& factory_;
  IpAddr local_addr_;
  Endpoint server_;
  uint64_t response_size_;
  std::vector<std::unique_ptr<Client>> clients_;
  uint64_t completed_ = 0;
  uint64_t errors_ = 0;
};

/// Builds the 16-byte MPGET request asking for `response_size` bytes
/// (shared by HttpClientPool and the workload engine).
std::vector<uint8_t> make_http_request(uint64_t response_size);

}  // namespace mptcp
