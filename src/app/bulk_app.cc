#include "app/bulk_app.h"

#include <cstring>

namespace mptcp {

// ---------------------------------------------------------------------------
// BulkSender
// ---------------------------------------------------------------------------

BulkSender::BulkSender(StreamSocket& sock, uint64_t total_bytes,
                       bool close_when_done)
    : sock_(sock), total_(total_bytes), close_when_done_(close_when_done) {
  sock_.on_connected = [this] { fill(); };
  sock_.on_send_space = [this] { fill(); };
}

void BulkSender::fill() {
  constexpr size_t kChunk = 64 * 1024;
  while (!closed_) {
    if (total_ != 0 && written_ >= total_) {
      if (close_when_done_) {
        closed_ = true;
        sock_.close();
      }
      return;
    }
    size_t want = kChunk;
    if (total_ != 0) {
      want = static_cast<size_t>(
          std::min<uint64_t>(want, total_ - written_));
    }
    const auto chunk = pattern_bytes(written_, want);
    const size_t n = sock_.write(chunk);
    written_ += n;
    if (n < want) return;  // buffer full; resume on on_send_space
  }
}

// ---------------------------------------------------------------------------
// BulkReceiver
// ---------------------------------------------------------------------------

BulkReceiver::BulkReceiver(StreamSocket& sock, bool verify)
    : sock_(sock), verify_(verify) {
  sock_.on_readable = [this] { drain(); };
}

void BulkReceiver::drain() {
  // The hot path (verify off, the benchmark/digest configuration) counts
  // and releases bytes with consume(): no copy at all. Verification reads
  // the classic way -- it must touch every byte regardless. Both consume
  // in 16 KiB steps: the cadence of receive window updates (hence the
  // packet trace) depends on how much each call releases, and this
  // matches the historical read-loop quantum.
  if (verify_) {
    uint8_t buf[16 * 1024];
    for (;;) {
      const size_t n = sock_.read(buf);
      if (n == 0) break;
      for (size_t i = 0; i < n; ++i) {
        if (buf[i] != pattern_byte(received_ + i)) ++pattern_errors_;
      }
      received_ += n;
    }
  } else {
    for (;;) {
      const size_t n = std::min<size_t>(sock_.readable_bytes(), 16 * 1024);
      if (n == 0) break;
      sock_.consume(n);
      received_ += n;
    }
  }
  if (sock_.at_eof() && !saw_eof_) {
    saw_eof_ = true;
    if (on_eof) on_eof();
  }
}

// ---------------------------------------------------------------------------
// BlockSender / BlockReceiver
// ---------------------------------------------------------------------------

BlockSender::BlockSender(EventLoop& loop, StreamSocket& sock)
    : loop_(loop), sock_(sock) {
  sock_.on_connected = [this] { fill(); };
  sock_.on_send_space = [this] { fill(); };
}

void BlockSender::fill() {
  for (;;) {
    if (current_off_ == current_.size()) {
      // Start a new block stamped with its creation time.
      current_.assign(kBlockSize, 0);
      const uint64_t ts = static_cast<uint64_t>(loop_.now());
      for (int i = 0; i < 8; ++i) {
        current_[i] = static_cast<uint8_t>(ts >> ((7 - i) * 8));
      }
      current_off_ = 0;
      ++blocks_started_;
    }
    const size_t n = sock_.write(
        std::span<const uint8_t>(current_).subspan(current_off_));
    current_off_ += n;
    if (current_off_ < current_.size()) return;  // blocked; resume later
  }
}

BlockReceiver::BlockReceiver(EventLoop& loop, StreamSocket& sock)
    : loop_(loop), sock_(sock) {
  sock_.on_readable = [this] { drain(); };
}

void BlockReceiver::drain() {
  // Only the 8 timestamp bytes at the head of each block are ever looked
  // at: peek them out of the receive queue's views, then release the body
  // with consume() -- no reassembly buffer, no copy of the 8 KiB payload.
  std::span<const uint8_t> views[16];
  for (;;) {
    const size_t avail = sock_.readable_bytes();
    if (avail == 0) break;
    if (block_pos_ < kHeader) {
      const size_t nviews = sock_.peek_views(views);
      const size_t want = std::min(kHeader - block_pos_, avail);
      size_t got = 0;
      for (size_t i = 0; i < nviews && got < want; ++i) {
        for (uint8_t b : views[i]) {
          if (got == want) break;
          header_[block_pos_ + got] = b;
          ++got;
        }
      }
      sock_.consume(got);
      block_pos_ += got;
      continue;
    }
    const size_t n = std::min(avail, BlockSender::kBlockSize - block_pos_);
    sock_.consume(n);
    block_pos_ += n;
    if (block_pos_ == BlockSender::kBlockSize) {
      uint64_t ts = 0;
      for (size_t i = 0; i < kHeader; ++i) ts = (ts << 8) | header_[i];
      delays_.add(to_seconds(loop_.now() - static_cast<SimTime>(ts)));
      ++blocks_;
      block_pos_ = 0;
    }
  }
}

}  // namespace mptcp
