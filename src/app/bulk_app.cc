#include "app/bulk_app.h"

#include <cstring>

namespace mptcp {

// ---------------------------------------------------------------------------
// BulkSender
// ---------------------------------------------------------------------------

BulkSender::BulkSender(StreamSocket& sock, uint64_t total_bytes,
                       bool close_when_done)
    : sock_(sock), total_(total_bytes), close_when_done_(close_when_done) {
  sock_.on_connected = [this] { fill(); };
  sock_.on_send_space = [this] { fill(); };
}

void BulkSender::fill() {
  constexpr size_t kChunk = 64 * 1024;
  while (!closed_) {
    if (total_ != 0 && written_ >= total_) {
      if (close_when_done_) {
        closed_ = true;
        sock_.close();
      }
      return;
    }
    size_t want = kChunk;
    if (total_ != 0) {
      want = static_cast<size_t>(
          std::min<uint64_t>(want, total_ - written_));
    }
    const auto chunk = pattern_bytes(written_, want);
    const size_t n = sock_.write(chunk);
    written_ += n;
    if (n < want) return;  // buffer full; resume on on_send_space
  }
}

// ---------------------------------------------------------------------------
// BulkReceiver
// ---------------------------------------------------------------------------

BulkReceiver::BulkReceiver(StreamSocket& sock, bool verify)
    : sock_(sock), verify_(verify) {
  sock_.on_readable = [this] { drain(); };
}

void BulkReceiver::drain() {
  uint8_t buf[16 * 1024];
  for (;;) {
    const size_t n = sock_.read(buf);
    if (n == 0) break;
    if (verify_) {
      for (size_t i = 0; i < n; ++i) {
        if (buf[i] != pattern_byte(received_ + i)) ++pattern_errors_;
      }
    }
    received_ += n;
  }
  if (sock_.at_eof() && !saw_eof_) {
    saw_eof_ = true;
    if (on_eof) on_eof();
  }
}

// ---------------------------------------------------------------------------
// BlockSender / BlockReceiver
// ---------------------------------------------------------------------------

BlockSender::BlockSender(EventLoop& loop, StreamSocket& sock)
    : loop_(loop), sock_(sock) {
  sock_.on_connected = [this] { fill(); };
  sock_.on_send_space = [this] { fill(); };
}

void BlockSender::fill() {
  for (;;) {
    if (current_off_ == current_.size()) {
      // Start a new block stamped with its creation time.
      current_.assign(kBlockSize, 0);
      const uint64_t ts = static_cast<uint64_t>(loop_.now());
      for (int i = 0; i < 8; ++i) {
        current_[i] = static_cast<uint8_t>(ts >> ((7 - i) * 8));
      }
      current_off_ = 0;
      ++blocks_started_;
    }
    const size_t n = sock_.write(
        std::span<const uint8_t>(current_).subspan(current_off_));
    current_off_ += n;
    if (current_off_ < current_.size()) return;  // blocked; resume later
  }
}

BlockReceiver::BlockReceiver(EventLoop& loop, StreamSocket& sock)
    : loop_(loop), sock_(sock) {
  sock_.on_readable = [this] { drain(); };
}

void BlockReceiver::drain() {
  uint8_t buf[16 * 1024];
  for (;;) {
    const size_t n = sock_.read(buf);
    if (n == 0) break;
    pending_.insert(pending_.end(), buf, buf + n);
    while (pending_.size() >= BlockSender::kBlockSize) {
      uint64_t ts = 0;
      for (int i = 0; i < 8; ++i) ts = (ts << 8) | pending_[i];
      const SimTime delay = loop_.now() - static_cast<SimTime>(ts);
      delays_.add(to_seconds(delay));
      ++blocks_;
      pending_.erase(pending_.begin(),
                     pending_.begin() + BlockSender::kBlockSize);
    }
  }
}

}  // namespace mptcp
