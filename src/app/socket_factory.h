// The transport switchboard: one object that hands out StreamSockets and
// hides whether they are plain TCP or MPTCP underneath.
//
// This is the deployability story of the paper (section 2) applied to our
// own application layer: workloads (bulk transfers, HTTP, the capacity
// engine) are written against StreamSocket only, and a TransportConfig
// decides per experiment which transport -- and which MPTCP subflow
// policy -- backs them. No app-layer code names TcpConnection or
// MptcpConnection.
//
// Lifetime: the factory owns every socket it creates (client and
// accepted). Long-lived experiment sockets just live until the factory
// dies; churn workloads call release_when_closed() so a socket frees its
// memory and its stats-registry scope as soon as it is fully closed.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/mptcp_stack.h"
#include "tcp/tcp_connection.h"

namespace mptcp {

enum class TransportKind : uint8_t { kTcp, kMptcp };

struct TransportConfig {
  TransportKind kind = TransportKind::kMptcp;
  /// Full transport tuning. `mptcp.tcp` doubles as the TcpConfig for
  /// kTcp sockets, so one struct configures either transport (and the
  /// MPTCP fields -- full_mesh, scheduler, cc_algo, buffers -- are the
  /// per-class subflow policy knobs).
  MptcpConfig mptcp;

  /// Fluent selection of the send-path policies (core/scheduler.h and
  /// core/coupled_cc.h), so experiment code reads as configuration:
  ///   TransportConfig{}.with_scheduler(SchedulerPolicy::kBackupAware)
  ///                    .with_cc(CcAlgo::kNewReno)
  TransportConfig& with_scheduler(SchedulerPolicy policy) {
    mptcp.scheduler = policy;
    return *this;
  }
  TransportConfig& with_cc(CcAlgo algo) {
    mptcp.cc_algo = algo;
    return *this;
  }
};

class SocketFactory {
 public:
  SocketFactory(Host& host, TransportConfig config);
  ~SocketFactory();

  SocketFactory(const SocketFactory&) = delete;
  SocketFactory& operator=(const SocketFactory&) = delete;

  Host& host() { return host_; }
  EventLoop& loop() { return host_.loop(); }
  TransportKind kind() const { return config_.kind; }
  const TransportConfig& config() const { return config_; }

  /// Active open from `local_addr` (an address of this host, chosen by the
  /// caller -- this is what pins MPTCP's first subflow to a path) to
  /// `remote`. The factory owns the socket.
  StreamSocket& connect(IpAddr local_addr, Endpoint remote);

  /// Passive open: every accepted connection is handed to the callback
  /// after its transport-level accept. The factory owns accepted sockets.
  using AcceptCallback = std::function<void(StreamSocket&)>;
  void listen(Port port, AcceptCallback cb);

  /// Marks `s` for destruction once it is fully closed (or immediately if
  /// it already is). Destruction is deferred to a fresh event, so calling
  /// this from the socket's own callbacks is safe. After the socket
  /// closes, every reference to it is dead -- the churn contract.
  void release_when_closed(StreamSocket& s);

  /// Sockets currently owned (released sockets leave on close).
  size_t live_sockets() const;

  /// Typed escape hatches for experiments that read transport internals
  /// (subflow counts, cwnd, ...); null when `s` is not that transport.
  MptcpConnection* as_mptcp(StreamSocket& s);
  TcpConnection* as_tcp(StreamSocket& s);
  /// The backing MPTCP stack (null for kTcp factories).
  MptcpStack* mptcp_stack() { return mptcp_ ? mptcp_.get() : nullptr; }

 private:
  /// A factory-owned plain TCP connection: reuses the base class's
  /// close hook to trigger deferred destruction, mirroring
  /// MptcpConnection::set_auto_destroy().
  class OwnedTcp final : public TcpConnection {
   public:
    OwnedTcp(SocketFactory& factory, Endpoint local, Endpoint remote)
        : TcpConnection(factory.host_, factory.config_.mptcp.tcp, local,
                        remote),
          factory_(factory) {}

    void release_on_close() {
      release_ = true;
      if (closed_) factory_.destroy_tcp_later(this);
    }

   protected:
    void on_connection_closed(bool reset) override {
      TcpConnection::on_connection_closed(reset);
      closed_ = true;
      if (release_) factory_.destroy_tcp_later(this);
    }

   private:
    SocketFactory& factory_;
    bool release_ = false;
    bool closed_ = false;
  };

  void destroy_tcp_later(OwnedTcp* conn);

  Host& host_;
  TransportConfig config_;
  std::unique_ptr<MptcpStack> mptcp_;  ///< set iff kind == kMptcp
  std::vector<std::unique_ptr<OwnedTcp>> tcp_conns_;
  std::vector<std::unique_ptr<TcpListener>> tcp_listeners_;
};

}  // namespace mptcp
