// Canned two-host topologies shared by tests, benchmarks and examples.
//
// A TwoHostRig wires a (possibly multihomed) client to a server through
// one full-duplex path per client address. Middleboxes can be spliced into
// either direction of any path. The concrete path parameters of the
// paper's scenarios (WiFi, 3G, 1G Ethernet, ...) are provided as factory
// functions so every experiment states its setup in the paper's own
// vocabulary.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sim/link.h"
#include "sim/network.h"
#include "sim/trace.h"

namespace mptcp {

/// Full-duplex path description.
struct PathSpec {
  LinkConfig up;    ///< client -> server
  LinkConfig down;  ///< server -> client
  std::string name = "path";
};

// --- The paper's emulated paths (section 4.2) -----------------------------

/// "WiFi": 8 Mbps, 20 ms RTT, 80 ms of buffer.
PathSpec wifi_path();
/// "3G": 2 Mbps, 150 ms RTT, 2 s of buffer (deep provider buffers).
PathSpec threeg_path();
/// Very weak 3G for Fig. 6(a): 50 kbps, 150 ms RTT, 2 s buffer, lossy.
PathSpec weak_threeg_path(double loss = 0.02);
/// LAN-style Ethernet path of the given rate with ~100 us RTT.
PathSpec ethernet_path(double rate_bps, SimTime rtt = 100 * kMicrosecond,
                       SimTime buffer_delay = 2 * kMillisecond);
/// Fig. 9's capped paths: both ~2 Mbps, 3G has the long RTT/deep buffer.
PathSpec capped_wifi_path();
/// Cellular links mask most radio loss with link-layer retransmission;
/// only a residue is visible to TCP.
PathSpec capped_threeg_path(double loss = 0.001);

class TwoHostRig {
 public:
  explicit TwoHostRig(uint64_t seed = 1);

  /// Adds a full-duplex path; the client gains address 10.0.<n>.2 and the
  /// path is routed to/from the single server address 10.99.0.1.
  /// Returns the path index.
  size_t add_path(const PathSpec& spec);

  /// Splices a middlebox into the client->server (up) or server->client
  /// (down) direction of path `i`. The element's downstream is wired to
  /// whatever the link previously delivered to, so repeated splices build
  /// a chain in call order (closest to the link first).
  void splice_up(size_t i, Middlebox& element);
  void splice_down(size_t i, Middlebox& element);

  EventLoop& loop() { return loop_; }
  Host& client() { return client_; }
  Host& server() { return server_; }
  Network& network() { return net_; }

  /// The simulation-wide stats registry (owned by the event loop). Every
  /// component in the rig registers its counters here; see net/stats.h.
  StatsRegistry& stats() { return loop_.stats(); }

  /// Flat sorted-key JSON export of every registered stat. Benches pass
  /// this through to --stats files so runs are machine-comparable.
  std::string dump_stats() { return loop_.stats().to_json(); }

  IpAddr client_addr(size_t i) const { return paths_[i].client_addr; }
  IpAddr server_addr() const { return server_addr_; }
  Link& up_link(size_t i) { return *paths_[i].up; }
  Link& down_link(size_t i) { return *paths_[i].down; }
  size_t path_count() const { return paths_.size(); }

  /// Takes the client interface of path `i` down (mobility scenarios).
  void set_path_up(size_t i, bool up);

  /// Adds a server-side return route: traffic to `addr` leaves via path
  /// `i`'s downlink (needed when a NAT publishes a new address).
  void route_server_to(IpAddr addr, size_t i) {
    server_out_.add_route(addr, paths_[i].down.get());
  }

 private:
  struct Path {
    IpAddr client_addr;
    std::unique_ptr<Link> up;
    std::unique_ptr<Link> down;
  };

  EventLoop loop_;
  Network net_;
  Host client_;
  Host server_;
  Classifier server_out_;
  IpAddr server_addr_{10, 99, 0, 1};
  std::vector<Path> paths_;
  uint64_t seed_;
};

/// Deterministic payload pattern used for end-to-end integrity checks:
/// byte i of a stream is pattern_byte(i).
inline uint8_t pattern_byte(uint64_t i) {
  return static_cast<uint8_t>((i * 0x9e3779b97f4a7c15ULL) >> 56);
}

/// Fills `out` with the pattern for stream offsets [offset, offset+n).
std::vector<uint8_t> pattern_bytes(uint64_t offset, size_t n);

}  // namespace mptcp
