#include "net/segment.h"

#include <sstream>

namespace mptcp {

std::string TcpSegment::brief() const {
  std::ostringstream os;
  os << tuple.str() << " ";
  if (syn) os << "SYN ";
  if (fin) os << "FIN ";
  if (rst) os << "RST ";
  if (ack_flag) os << "ACK ";
  os << "seq=" << seq;
  if (ack_flag) os << " ack=" << ack;
  os << " wnd=" << window << " len=" << payload.size();
  for (const auto& o : options) {
    if (std::holds_alternative<MpCapableOption>(o)) os << " MP_CAPABLE";
    if (std::holds_alternative<MpJoinOption>(o)) os << " MP_JOIN";
    if (const auto* d = std::get_if<DssOption>(&o)) {
      os << " DSS";
      if (d->data_ack) os << "(dack=" << *d->data_ack;
      if (d->mapping) {
        os << (d->data_ack ? "," : "(") << "dsn=" << d->mapping->dsn
           << "+" << d->mapping->length;
      }
      if (d->data_fin) os << ",DFIN";
      os << ")";
    }
    if (std::holds_alternative<AddAddrOption>(o)) os << " ADD_ADDR";
    if (std::holds_alternative<RemoveAddrOption>(o)) os << " REMOVE_ADDR";
  }
  return os.str();
}

}  // namespace mptcp
