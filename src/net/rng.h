// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every stochastic element in the simulator (link loss, key generation,
// workload think times) draws from an explicitly seeded Rng so that
// experiments and tests are bit-for-bit reproducible.
#pragma once

#include <cmath>
#include <cstdint>

namespace mptcp {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  uint32_t next_u32() { return static_cast<uint32_t>(next_u64() >> 32); }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound).
  uint64_t next_below(uint64_t bound) {
    return bound == 0 ? 0 : next_u64() % bound;
  }

  /// Bernoulli trial with probability p.
  bool chance(double p) { return next_double() < p; }

  /// Exponentially distributed value with the given mean.
  double next_exponential(double mean) {
    return -mean * std::log(1.0 - next_double());
  }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace mptcp
