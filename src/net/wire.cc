#include "net/wire.h"

#include <cstring>

#include "net/checksum.h"

namespace mptcp {
namespace {

// Option kinds (RFC 793 / 7323 / 2018 / 6824).
constexpr uint8_t kOptEol = 0;
constexpr uint8_t kOptNop = 1;
constexpr uint8_t kOptMss = 2;
constexpr uint8_t kOptWScale = 3;
constexpr uint8_t kOptSackPerm = 4;
constexpr uint8_t kOptSack = 5;
constexpr uint8_t kOptTimestamp = 8;
constexpr uint8_t kOptMptcp = 30;

// MPTCP subtypes (RFC 6824).
constexpr uint8_t kSubMpCapable = 0;
constexpr uint8_t kSubMpJoin = 1;
constexpr uint8_t kSubDss = 2;
constexpr uint8_t kSubAddAddr = 3;
constexpr uint8_t kSubRemoveAddr = 4;
constexpr uint8_t kSubMpPrio = 5;
constexpr uint8_t kSubMpFastclose = 7;

// DSS flag bits.
constexpr uint8_t kDssFlagDataAck = 0x01;
constexpr uint8_t kDssFlagDataAck8 = 0x02;
constexpr uint8_t kDssFlagMap = 0x04;
constexpr uint8_t kDssFlagMap8 = 0x08;
constexpr uint8_t kDssFlagFin = 0x10;

class Writer {
 public:
  explicit Writer(std::vector<uint8_t>& out) : out_(out) {}
  void u8(uint8_t v) { out_.push_back(v); }
  void u16(uint16_t v) {
    out_.push_back(static_cast<uint8_t>(v >> 8));
    out_.push_back(static_cast<uint8_t>(v));
  }
  void u32(uint32_t v) {
    u16(static_cast<uint16_t>(v >> 16));
    u16(static_cast<uint16_t>(v));
  }
  void u64(uint64_t v) {
    u32(static_cast<uint32_t>(v >> 32));
    u32(static_cast<uint32_t>(v));
  }

 private:
  std::vector<uint8_t>& out_;
};

class Reader {
 public:
  explicit Reader(std::span<const uint8_t> in) : in_(in) {}
  bool ok() const { return ok_; }
  size_t remaining() const { return in_.size() - pos_; }
  uint8_t u8() {
    if (pos_ + 1 > in_.size()) return fail8();
    return in_[pos_++];
  }
  uint16_t u16() {
    uint16_t hi = u8(), lo = u8();
    return static_cast<uint16_t>((hi << 8) | lo);
  }
  uint32_t u32() {
    uint32_t hi = u16(), lo = u16();
    return (hi << 16) | lo;
  }
  uint64_t u64() {
    uint64_t hi = u32(), lo = u32();
    return (hi << 32) | lo;
  }
  void skip(size_t n) {
    if (pos_ + n > in_.size()) {
      ok_ = false;
      pos_ = in_.size();
    } else {
      pos_ += n;
    }
  }

 private:
  uint8_t fail8() {
    ok_ = false;
    return 0;
  }
  std::span<const uint8_t> in_;
  size_t pos_ = 0;
  bool ok_ = true;
};

size_t mp_capable_size(const MpCapableOption& o) {
  return 4 + (o.sender_key ? 8 : 0) + (o.receiver_key ? 8 : 0);
}

size_t mp_join_size(const MpJoinOption& o) {
  switch (o.phase) {
    case JoinPhase::kSyn:
      return 12;  // kind, len, sub/flags, addr_id, token, nonce
    case JoinPhase::kSynAck:
      return 16;  // kind, len, sub/flags, addr_id, mac64, nonce
    case JoinPhase::kAck:
      return 12;  // kind, len, sub, reserved, mac64
  }
  return 12;
}

size_t dss_size(const DssOption& o) {
  size_t n = 4;
  if (o.data_ack) n += 8;
  if (o.mapping || o.data_fin) {
    n += 8 + 4 + 2;  // dsn, ssn_rel, length
    if (o.mapping && o.mapping->checksum) n += 2;
  }
  return n;
}

void write_option(Writer& w, const TcpOption& opt) {
  if (const auto* o = std::get_if<MssOption>(&opt)) {
    w.u8(kOptMss);
    w.u8(4);
    w.u16(o->mss);
  } else if (const auto* o = std::get_if<WindowScaleOption>(&opt)) {
    w.u8(kOptWScale);
    w.u8(3);
    w.u8(o->shift);
  } else if (std::get_if<SackPermittedOption>(&opt)) {
    w.u8(kOptSackPerm);
    w.u8(2);
  } else if (const auto* o = std::get_if<SackOption>(&opt)) {
    w.u8(kOptSack);
    w.u8(static_cast<uint8_t>(2 + 8 * o->blocks.size()));
    for (const auto& b : o->blocks) {
      w.u32(b.begin);
      w.u32(b.end);
    }
  } else if (const auto* o = std::get_if<TimestampOption>(&opt)) {
    w.u8(kOptTimestamp);
    w.u8(10);
    w.u32(o->tsval);
    w.u32(o->tsecr);
  } else if (const auto* o = std::get_if<MpCapableOption>(&opt)) {
    w.u8(kOptMptcp);
    w.u8(static_cast<uint8_t>(mp_capable_size(*o)));
    w.u8(static_cast<uint8_t>((kSubMpCapable << 4) | (o->version & 0x0f)));
    w.u8(o->checksum_required ? 0x80 : 0x00);
    if (o->sender_key) w.u64(*o->sender_key);
    if (o->receiver_key) w.u64(*o->receiver_key);
  } else if (const auto* o = std::get_if<MpJoinOption>(&opt)) {
    w.u8(kOptMptcp);
    w.u8(static_cast<uint8_t>(mp_join_size(*o)));
    switch (o->phase) {
      case JoinPhase::kSyn:
        w.u8((kSubMpJoin << 4) | (o->backup ? 0x1 : 0x0));
        w.u8(o->addr_id);
        w.u32(o->token);
        w.u32(o->nonce);
        break;
      case JoinPhase::kSynAck:
        w.u8((kSubMpJoin << 4) | 0x2 | (o->backup ? 0x1 : 0x0));
        w.u8(o->addr_id);
        w.u64(o->mac);
        w.u32(o->nonce);
        break;
      case JoinPhase::kAck:
        w.u8((kSubMpJoin << 4) | 0x4);
        w.u8(0);
        w.u64(o->mac);
        break;
    }
  } else if (const auto* o = std::get_if<DssOption>(&opt)) {
    w.u8(kOptMptcp);
    w.u8(static_cast<uint8_t>(dss_size(*o)));
    w.u8(kSubDss << 4);
    uint8_t flags = 0;
    if (o->data_ack) flags |= kDssFlagDataAck | kDssFlagDataAck8;
    if (o->mapping || o->data_fin) flags |= kDssFlagMap | kDssFlagMap8;
    if (o->data_fin) flags |= kDssFlagFin;
    w.u8(flags);
    if (o->data_ack) w.u64(*o->data_ack);
    if (o->mapping) {
      // When DATA_FIN rides on a mapping it occupies one extra octet at
      // the end of the mapped range (RFC 6824 section 3.3.3).
      w.u64(o->mapping->dsn);
      w.u32(o->mapping->ssn_rel);
      w.u16(static_cast<uint16_t>(o->mapping->length + (o->data_fin ? 1 : 0)));
      if (o->mapping->checksum) w.u16(*o->mapping->checksum);
    } else if (o->data_fin) {
      // DATA_FIN with no payload: synthetic mapping of length 1 at the
      // DATA_FIN's sequence number, subflow offset 0.
      w.u64(o->data_fin_dsn);
      w.u32(0);
      w.u16(1);
    }
  } else if (const auto* o = std::get_if<AddAddrOption>(&opt)) {
    w.u8(kOptMptcp);
    w.u8(static_cast<uint8_t>(o->port ? 10 : 8));
    w.u8((kSubAddAddr << 4) | 0x4);  // low nibble: IP version 4
    w.u8(o->addr_id);
    w.u32(o->addr.value);
    if (o->port) w.u16(*o->port);
  } else if (const auto* o = std::get_if<RemoveAddrOption>(&opt)) {
    w.u8(kOptMptcp);
    w.u8(4);
    w.u8(kSubRemoveAddr << 4);
    w.u8(o->addr_id);
  } else if (const auto* o = std::get_if<MpPrioOption>(&opt)) {
    w.u8(kOptMptcp);
    w.u8(static_cast<uint8_t>(o->addr_id ? 4 : 3));
    w.u8((kSubMpPrio << 4) | (o->backup ? 0x1 : 0x0));
    if (o->addr_id) w.u8(*o->addr_id);
  } else if (const auto* o = std::get_if<MpFastcloseOption>(&opt)) {
    w.u8(kOptMptcp);
    w.u8(12);
    w.u8(kSubMpFastclose << 4);
    w.u8(0);
    w.u64(o->receiver_key);
  }
}

std::optional<TcpOption> parse_mptcp_option(Reader& r, uint8_t len) {
  if (len < 3) return std::nullopt;
  const uint8_t sub_byte = r.u8();
  const uint8_t subtype = sub_byte >> 4;
  switch (subtype) {
    case kSubMpCapable: {
      MpCapableOption o;
      o.version = sub_byte & 0x0f;
      o.checksum_required = (r.u8() & 0x80) != 0;
      if (len >= 12) o.sender_key = r.u64();
      if (len >= 20) o.receiver_key = r.u64();
      return o;
    }
    case kSubMpJoin: {
      MpJoinOption o;
      if (len == 12 && (sub_byte & 0x4)) {
        o.phase = JoinPhase::kAck;
        r.u8();  // reserved
        o.mac = r.u64();
      } else if (len == 12) {
        o.phase = JoinPhase::kSyn;
        o.backup = (sub_byte & 0x1) != 0;
        o.addr_id = r.u8();
        o.token = r.u32();
        o.nonce = r.u32();
      } else if (len == 16) {
        o.phase = JoinPhase::kSynAck;
        o.backup = (sub_byte & 0x1) != 0;
        o.addr_id = r.u8();
        o.mac = r.u64();
        o.nonce = r.u32();
      } else {
        return std::nullopt;
      }
      return o;
    }
    case kSubDss: {
      DssOption o;
      const uint8_t flags = r.u8();
      if (flags & kDssFlagDataAck) o.data_ack = r.u64();
      if (flags & kDssFlagMap) {
        DssMapping m;
        m.dsn = r.u64();
        m.ssn_rel = r.u32();
        uint16_t wire_len = r.u16();
        const bool fin = (flags & kDssFlagFin) != 0;
        size_t consumed = 4 + (o.data_ack ? 8 : 0) + 14;
        if (len > consumed) m.checksum = r.u16();
        if (fin) {
          o.data_fin = true;
          if (wire_len == 1 && m.ssn_rel == 0 && !m.checksum) {
            o.data_fin_dsn = m.dsn;  // DATA_FIN-only DSS
            return o;
          }
          if (wire_len == 0) return std::nullopt;
          m.length = static_cast<uint16_t>(wire_len - 1);
        } else {
          m.length = wire_len;
        }
        o.mapping = m;
      } else if (flags & kDssFlagFin) {
        o.data_fin = true;
      }
      return o;
    }
    case kSubAddAddr: {
      AddAddrOption o;
      o.addr_id = r.u8();
      o.addr = IpAddr{r.u32()};
      if (len >= 10) o.port = r.u16();
      return o;
    }
    case kSubRemoveAddr: {
      RemoveAddrOption o;
      o.addr_id = r.u8();
      return o;
    }
    case kSubMpPrio: {
      MpPrioOption o;
      o.backup = (sub_byte & 0x1) != 0;
      if (len >= 4) o.addr_id = r.u8();
      return o;
    }
    case kSubMpFastclose: {
      MpFastcloseOption o;
      r.u8();  // reserved
      o.receiver_key = r.u64();
      return o;
    }
    default:
      r.skip(len - 3);
      return std::nullopt;
  }
}

}  // namespace

bool is_mptcp_option(const TcpOption& opt) {
  return std::holds_alternative<MpCapableOption>(opt) ||
         std::holds_alternative<MpJoinOption>(opt) ||
         std::holds_alternative<DssOption>(opt) ||
         std::holds_alternative<AddAddrOption>(opt) ||
         std::holds_alternative<RemoveAddrOption>(opt) ||
         std::holds_alternative<MpFastcloseOption>(opt) ||
         std::holds_alternative<MpPrioOption>(opt);
}

size_t option_wire_size(const TcpOption& opt) {
  if (std::holds_alternative<MssOption>(opt)) return 4;
  if (std::holds_alternative<WindowScaleOption>(opt)) return 3;
  if (std::holds_alternative<SackPermittedOption>(opt)) return 2;
  if (const auto* o = std::get_if<SackOption>(&opt)) {
    return 2 + 8 * o->blocks.size();
  }
  if (std::holds_alternative<TimestampOption>(opt)) return 10;
  if (const auto* o = std::get_if<MpCapableOption>(&opt)) {
    return mp_capable_size(*o);
  }
  if (const auto* o = std::get_if<MpJoinOption>(&opt)) return mp_join_size(*o);
  if (const auto* o = std::get_if<DssOption>(&opt)) return dss_size(*o);
  if (const auto* o = std::get_if<AddAddrOption>(&opt)) {
    return o->port ? 10 : 8;
  }
  if (std::holds_alternative<RemoveAddrOption>(opt)) return 4;
  if (const auto* o = std::get_if<MpPrioOption>(&opt)) {
    return o->addr_id ? 4 : 3;
  }
  if (std::holds_alternative<MpFastcloseOption>(opt)) return 12;
  return 0;
}

std::vector<uint8_t> serialize_options(const std::vector<TcpOption>& opts) {
  std::vector<uint8_t> out;
  Writer w(out);
  for (const auto& o : opts) write_option(w, o);
  while (out.size() % 4 != 0) out.push_back(kOptNop);
  return out;
}

std::vector<TcpOption> parse_options(std::span<const uint8_t> bytes) {
  std::vector<TcpOption> out;
  Reader r(bytes);
  while (r.ok() && r.remaining() > 0) {
    const uint8_t kind = r.u8();
    if (kind == kOptEol) break;
    if (kind == kOptNop) continue;
    if (r.remaining() < 1) break;
    const uint8_t len = r.u8();
    if (len < 2) break;
    switch (kind) {
      case kOptMss: {
        MssOption o;
        o.mss = r.u16();
        out.push_back(o);
        break;
      }
      case kOptWScale: {
        WindowScaleOption o;
        o.shift = r.u8();
        out.push_back(o);
        break;
      }
      case kOptSackPerm:
        out.push_back(SackPermittedOption{});
        break;
      case kOptSack: {
        SackOption o;
        for (int n = (len - 2) / 8; n > 0; --n) {
          SackOption::Block b;
          b.begin = r.u32();
          b.end = r.u32();
          o.blocks.push_back(b);
        }
        out.push_back(std::move(o));
        break;
      }
      case kOptTimestamp: {
        TimestampOption o;
        o.tsval = r.u32();
        o.tsecr = r.u32();
        out.push_back(o);
        break;
      }
      case kOptMptcp: {
        auto o = parse_mptcp_option(r, len);
        if (o) out.push_back(*o);
        break;
      }
      default:
        r.skip(len - 2);  // unknown option: skip, liberal receiver
        break;
    }
  }
  return out;
}

uint16_t tcp_checksum(std::span<const uint8_t> tcp_bytes,
                      const FourTuple& tuple) {
  ChecksumAccumulator acc;
  acc.add_u32(tuple.src.addr.value);
  acc.add_u32(tuple.dst.addr.value);
  acc.add_word(6);  // protocol TCP
  acc.add_word(static_cast<uint16_t>(tcp_bytes.size()));
  acc.add_bytes(tcp_bytes);
  return acc.finish();
}

std::vector<uint8_t> serialize_segment(const TcpSegment& seg) {
  const auto opt_bytes = serialize_options(seg.options);
  const size_t header_len = kTcpHeaderSize + opt_bytes.size();

  std::vector<uint8_t> out;
  out.reserve(header_len + seg.payload.size());
  Writer w(out);
  w.u16(seg.tuple.src.port);
  w.u16(seg.tuple.dst.port);
  w.u32(seg.seq);
  w.u32(seg.ack);
  uint8_t flags = 0;
  if (seg.fin) flags |= 0x01;
  if (seg.syn) flags |= 0x02;
  if (seg.rst) flags |= 0x04;
  if (seg.psh) flags |= 0x08;
  if (seg.ack_flag) flags |= 0x10;
  w.u8(static_cast<uint8_t>((header_len / 4) << 4));
  w.u8(flags);
  w.u16(seg.window);
  w.u16(0);  // checksum placeholder
  w.u16(0);  // urgent pointer
  out.insert(out.end(), opt_bytes.begin(), opt_bytes.end());
  out.insert(out.end(), seg.payload.begin(), seg.payload.end());

  // The paper's shared-checksum trick (section 3.3.6), made structural:
  // the payload's ones-complement sum is cached in the Payload and folded
  // in via add_partial() -- the same cached sum the DSS checksum uses --
  // so the payload bytes are only ever summed once. The header always ends
  // on a 4-byte boundary, so word alignment is preserved and the result is
  // bit-identical to summing the whole frame.
  ChecksumAccumulator acc;
  acc.add_u32(seg.tuple.src.addr.value);
  acc.add_u32(seg.tuple.dst.addr.value);
  acc.add_word(6);  // protocol TCP
  acc.add_word(static_cast<uint16_t>(out.size()));
  acc.add_bytes(std::span<const uint8_t>(out.data(), header_len));
  acc.add_partial(seg.payload.folded_sum());
  const uint16_t csum = acc.finish();
  out[16] = static_cast<uint8_t>(csum >> 8);
  out[17] = static_cast<uint8_t>(csum);
  return out;
}

std::optional<TcpSegment> parse_segment(std::span<const uint8_t> bytes,
                                        const FourTuple& tuple) {
  if (bytes.size() < kTcpHeaderSize) return std::nullopt;
  Reader r(bytes);
  TcpSegment seg;
  seg.tuple = tuple;
  seg.tuple.src.port = r.u16();
  seg.tuple.dst.port = r.u16();
  seg.seq = r.u32();
  seg.ack = r.u32();
  const uint8_t offset_byte = r.u8();
  const size_t header_len = size_t{static_cast<uint8_t>(offset_byte >> 4)} * 4;
  const uint8_t flags = r.u8();
  seg.fin = flags & 0x01;
  seg.syn = flags & 0x02;
  seg.rst = flags & 0x04;
  seg.psh = flags & 0x08;
  seg.ack_flag = flags & 0x10;
  seg.window = r.u16();
  seg.checksum = r.u16();
  r.u16();  // urgent pointer
  if (header_len < kTcpHeaderSize || header_len > bytes.size()) {
    return std::nullopt;
  }
  seg.options =
      parse_options(bytes.subspan(kTcpHeaderSize, header_len - kTcpHeaderSize));
  seg.payload.assign(bytes.subspan(header_len));
  return seg;
}

}  // namespace mptcp
