#include "net/stats.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace mptcp {

uint64_t Histogram::approx_percentile(double p) const {
  if (count_ == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const double target = p * static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (static_cast<double>(seen) >= target && buckets_[i] > 0) {
      return i == 0 ? 0 : uint64_t{1} << i;
    }
  }
  return max_;
}

void Histogram::merge_from(const Histogram& o) {
  if (o.count_ == 0) return;
  for (size_t i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
  if (count_ == 0 || o.min_ < min_) min_ = o.min_;
  if (o.max_ > max_) max_ = o.max_;
  count_ += o.count_;
  sum_ += o.sum_;
}

// The transparent find keeps the lookup-of-existing path allocation-free:
// connection constructors re-resolve loop-global names ("tcp.retransmits")
// without materializing a std::string per call.
StatsRegistry::Entry& StatsRegistry::entry(std::string_view name) {
  auto it = entries_.find(name);
  if (it == entries_.end()) it = entries_.emplace(name, Entry{}).first;
  return it->second;
}

Counter& StatsRegistry::counter(std::string_view name) {
  Entry& e = entry(name);
  if (!e.counter) e = Entry{std::make_unique<Counter>(), nullptr, nullptr, {}, {}};
  return *e.counter;
}

Gauge& StatsRegistry::gauge(std::string_view name) {
  Entry& e = entry(name);
  if (!e.gauge) e = Entry{nullptr, std::make_unique<Gauge>(), nullptr, {}, {}};
  return *e.gauge;
}

Histogram& StatsRegistry::histogram(std::string_view name) {
  Entry& e = entry(name);
  if (!e.hist) e = Entry{nullptr, nullptr, std::make_unique<Histogram>(), {}, {}};
  return *e.hist;
}

void StatsRegistry::sampled(const std::string& name, SampleFn fn) {
  entries_[name] = Entry{nullptr, nullptr, nullptr, std::move(fn), {}};
}

void StatsRegistry::sampled_group(const std::string& scope, GroupFn fn) {
  entries_[scope] = Entry{nullptr, nullptr, nullptr, {}, std::move(fn)};
}

std::string StatsRegistry::unique_scope(const std::string& base) {
  const std::string tagged = base + scope_tag_;
  const int n = ++scope_counts_[tagged];
  if (n == 1) return tagged;
  return tagged + "#" + std::to_string(n);
}

size_t StatsRegistry::remove_scope(std::string_view scope) {
  // '#' sorts before '.', so "scope#2.x" entries (another instance's
  // scope) are interleaved between "scope" and "scope.x": skip them
  // instead of stopping at the first non-match.
  size_t dropped = 0;
  auto it = entries_.lower_bound(scope);
  while (it != entries_.end()) {
    const std::string& name = it->first;
    if (name.compare(0, scope.size(), scope) != 0) break;  // left the prefix
    const bool exact = name.size() == scope.size();
    const bool child = name.size() > scope.size() && name[scope.size()] == '.';
    if (exact || child) {
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

void StatsRegistry::remove(std::string_view name) {
  auto it = entries_.find(name);
  if (it != entries_.end()) entries_.erase(it);
}

bool StatsRegistry::contains(std::string_view name) const {
  return entries_.find(name) != entries_.end();
}

const Counter* StatsRegistry::find_counter(std::string_view name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.counter.get();
}

const Gauge* StatsRegistry::find_gauge(std::string_view name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.gauge.get();
}

const Histogram* StatsRegistry::find_histogram(std::string_view name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : it->second.hist.get();
}

double StatsRegistry::value(std::string_view flat_key) const {
  auto it = entries_.find(flat_key);
  if (it != entries_.end()) {
    const Entry& e = it->second;
    if (e.counter) return static_cast<double>(e.counter->value());
    if (e.gauge) return static_cast<double>(e.gauge->value());
    if (e.fn) return e.fn();
  }
  // Histogram sub-keys: "<name>.<field>".
  const size_t dot = flat_key.rfind('.');
  if (dot == std::string_view::npos) return 0.0;
  if (const Histogram* h = find_histogram(flat_key.substr(0, dot))) {
    const std::string_view field = flat_key.substr(dot + 1);
    if (field == "count") return static_cast<double>(h->count());
    if (field == "sum") return static_cast<double>(h->sum());
    if (field == "min") return static_cast<double>(h->min());
    if (field == "max") return static_cast<double>(h->max());
    if (field == "mean") return h->mean();
    return 0.0;
  }
  // Group sub-keys: try successively shorter "scope" prefixes and ask the
  // group for the remaining suffix. Export path only -- O(depth) lookups.
  class FindSink final : public SampleSink {
   public:
    explicit FindSink(std::string_view want) : want_(want) {}
    void emit(std::string_view name, double value) override {
      if (name == want_) {
        found_ = value;
        hit_ = true;
      }
    }
    bool hit() const { return hit_; }
    double found() const { return found_; }

   private:
    std::string_view want_;
    double found_ = 0.0;
    bool hit_ = false;
  };
  for (size_t pos = dot; pos != std::string_view::npos && pos > 0;
       pos = flat_key.rfind('.', pos - 1)) {
    auto git = entries_.find(flat_key.substr(0, pos));
    if (git == entries_.end() || !git->second.group) continue;
    FindSink sink(flat_key.substr(pos + 1));
    git->second.group(sink);
    return sink.hit() ? sink.found() : 0.0;
  }
  return 0.0;
}

std::map<std::string, double> StatsRegistry::flatten() const {
  std::map<std::string, double> out;
  for (const auto& [name, e] : entries_) {
    if (e.counter) {
      out[name] = static_cast<double>(e.counter->value());
    } else if (e.gauge) {
      out[name] = static_cast<double>(e.gauge->value());
    } else if (e.hist) {
      out[name + ".count"] = static_cast<double>(e.hist->count());
      out[name + ".sum"] = static_cast<double>(e.hist->sum());
      out[name + ".min"] = static_cast<double>(e.hist->min());
      out[name + ".max"] = static_cast<double>(e.hist->max());
      out[name + ".mean"] = e.hist->mean();
    } else if (e.fn) {
      out[name] = e.fn();
    } else if (e.group) {
      class MapSink final : public SampleSink {
       public:
        MapSink(std::map<std::string, double>& out, const std::string& scope)
            : out_(out), scope_(scope) {}
        void emit(std::string_view name, double value) override {
          std::string key;
          key.reserve(scope_.size() + 1 + name.size());
          key += scope_;
          key += '.';
          key += name;
          out_[std::move(key)] = value;
        }

       private:
        std::map<std::string, double>& out_;
        const std::string& scope_;
      };
      MapSink sink(out, name);
      e.group(sink);
    }
  }
  return out;
}

namespace {

std::string flat_to_json(const std::map<std::string, double>& flat) {
  std::string out = "{\n";
  char buf[64];
  size_t i = 0;
  for (const auto& [name, v] : flat) {
    // %.17g round-trips every finite double through strtod.
    std::snprintf(buf, sizeof buf, "%.17g", v);
    out += "  \"";
    out += name;
    out += "\": ";
    out += buf;
    out += ++i < flat.size() ? ",\n" : "\n";
  }
  out += "}\n";
  return out;
}

}  // namespace

std::string StatsRegistry::to_json() const { return flat_to_json(flatten()); }

std::map<std::string, double> StatsRegistry::merged_flatten(
    std::span<const StatsRegistry* const> parts) {
  std::map<std::string, double> out;
  // Histograms accumulate here first so a name present in several
  // partitions expands once, from the union of samples, instead of
  // summing per-partition means/mins.
  std::map<std::string, Histogram> hists;

  class AddSink final : public SampleSink {
   public:
    AddSink(std::map<std::string, double>& out, const std::string& scope)
        : out_(out), scope_(scope) {}
    void emit(std::string_view name, double value) override {
      std::string key;
      key.reserve(scope_.size() + 1 + name.size());
      key += scope_;
      key += '.';
      key += name;
      out_[std::move(key)] += value;
    }

   private:
    std::map<std::string, double>& out_;
    const std::string& scope_;
  };

  for (const StatsRegistry* part : parts) {
    for (const auto& [name, e] : part->entries_) {
      if (e.counter) {
        out[name] += static_cast<double>(e.counter->value());
      } else if (e.gauge) {
        out[name] += static_cast<double>(e.gauge->value());
      } else if (e.hist) {
        hists[name].merge_from(*e.hist);
      } else if (e.fn) {
        out[name] += e.fn();
      } else if (e.group) {
        AddSink sink(out, name);
        e.group(sink);
      }
    }
  }
  for (const auto& [name, h] : hists) {
    out[name + ".count"] = static_cast<double>(h.count());
    out[name + ".sum"] = static_cast<double>(h.sum());
    out[name + ".min"] = static_cast<double>(h.min());
    out[name + ".max"] = static_cast<double>(h.max());
    out[name + ".mean"] = h.mean();
  }
  return out;
}

std::string StatsRegistry::merged_to_json(
    std::span<const StatsRegistry* const> parts) {
  return flat_to_json(merged_flatten(parts));
}

std::map<std::string, double> StatsRegistry::parse_flat_json(
    std::string_view json) {
  std::map<std::string, double> out;
  size_t i = 0;
  const size_t n = json.size();
  while (i < n) {
    // Next key.
    while (i < n && json[i] != '"') ++i;
    if (i >= n) break;
    const size_t key_begin = ++i;
    while (i < n && json[i] != '"') ++i;
    if (i >= n) break;
    const std::string key(json.substr(key_begin, i - key_begin));
    ++i;  // closing quote
    while (i < n && (json[i] == ':' || std::isspace(
                                           static_cast<unsigned char>(json[i]))))
      ++i;
    if (i >= n) break;
    char* end = nullptr;
    const std::string num(json.substr(i, n - i));
    const double v = std::strtod(num.c_str(), &end);
    if (end == num.c_str()) break;  // not a number: malformed, stop
    out[key] = v;
    i += static_cast<size_t>(end - num.c_str());
  }
  return out;
}

}  // namespace mptcp
