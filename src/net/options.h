// TCP option model.
//
// Options are modelled as a variant of typed structs rather than raw bytes:
// the simulator's middleboxes need to inspect, strip and copy options, and
// the MPTCP engine needs to attach and parse its own. A wire codec
// (wire.h) maps these structs to/from the RFC 793 / RFC 6824 byte layout so
// that sizes, alignment and checksums are faithful.
#pragma once

#include <cstdint>
#include <optional>
#include <variant>
#include <vector>

#include "net/ip.h"

namespace mptcp {

// ---------------------------------------------------------------------------
// Standard TCP options.
// ---------------------------------------------------------------------------

/// Maximum Segment Size (kind 2), SYN only.
struct MssOption {
  uint16_t mss = 0;
  friend bool operator==(const MssOption&, const MssOption&) = default;
};

/// Window scale (kind 3), SYN only. The advertised window is shifted left
/// by `shift` bits by the receiver of the option.
struct WindowScaleOption {
  uint8_t shift = 0;
  friend bool operator==(const WindowScaleOption&,
                         const WindowScaleOption&) = default;
};

/// SACK permitted (kind 4), SYN only.
struct SackPermittedOption {
  friend bool operator==(const SackPermittedOption&,
                         const SackPermittedOption&) = default;
};

/// Selective acknowledgment (kind 5, RFC 2018): up to 4 received blocks
/// above the cumulative ACK, most recent first.
struct SackOption {
  struct Block {
    uint32_t begin = 0;  ///< wire (wrapped) sequence numbers
    uint32_t end = 0;
    friend bool operator==(const Block&, const Block&) = default;
  };
  std::vector<Block> blocks;
  friend bool operator==(const SackOption&, const SackOption&) = default;
};

/// Timestamps (kind 8, RFC 7323). Used for RTT estimation at both ends.
struct TimestampOption {
  uint32_t tsval = 0;
  uint32_t tsecr = 0;
  friend bool operator==(const TimestampOption&,
                         const TimestampOption&) = default;
};

// ---------------------------------------------------------------------------
// MPTCP options (kind 30, subtyped per RFC 6824 / the paper's design).
// ---------------------------------------------------------------------------

/// MP_CAPABLE: negotiated on the initial subflow's 3-way handshake.
/// The SYN carries the sender's 64-bit random key; the SYN/ACK carries the
/// receiver's key; the third ACK (and data packets until one is acked,
/// section 3.1) echoes both keys.
struct MpCapableOption {
  uint8_t version = 0;
  bool checksum_required = true;
  std::optional<uint64_t> sender_key;    ///< absent only in degenerate tests
  std::optional<uint64_t> receiver_key;  ///< present on SYN/ACK and 3rd ACK
  friend bool operator==(const MpCapableOption&,
                         const MpCapableOption&) = default;
};

/// Which packet of the 3-way handshake an MP_JOIN option sits on.
enum class JoinPhase : uint8_t { kSyn, kSynAck, kAck };

/// MP_JOIN: adds a subflow to an existing connection. The SYN carries the
/// receiver's token (truncated SHA-1 of its key) so the passive end can
/// locate the connection, plus a random nonce; SYN/ACK and the third ACK
/// carry truncated HMACs over both nonces keyed with both keys, preventing
/// blind subflow hijack (section 3.2).
struct MpJoinOption {
  JoinPhase phase = JoinPhase::kSyn;
  uint8_t addr_id = 0;
  bool backup = false;
  uint32_t token = 0;       ///< SYN only
  uint32_t nonce = 0;       ///< SYN and SYN/ACK
  uint64_t mac = 0;         ///< SYN/ACK (truncated) and ACK
  friend bool operator==(const MpJoinOption&, const MpJoinOption&) = default;
};

/// The data sequence mapping carried in a DSS option: maps `length` subflow
/// bytes beginning at *relative* subflow sequence number `ssn_rel`
/// (relative to the subflow's initial sequence number, so that
/// ISN-rewriting middleboxes cannot corrupt it -- section 3.3.4) onto the
/// data sequence space starting at `dsn`.
struct DssMapping {
  uint64_t dsn = 0;
  uint32_t ssn_rel = 0;
  uint16_t length = 0;
  std::optional<uint16_t> checksum;  ///< DSS checksum (section 3.3.6)
  friend bool operator==(const DssMapping&, const DssMapping&) = default;
};

/// DSS: Data Sequence Signal. Carries the explicit connection-level
/// cumulative acknowledgment (DATA_ACK, section 3.3.2), an optional data
/// sequence mapping, and the DATA_FIN flag (section 3.4).
struct DssOption {
  std::optional<uint64_t> data_ack;
  std::optional<DssMapping> mapping;
  /// DATA_FIN occupies one octet of data sequence space. When set together
  /// with a mapping, the DATA_FIN's sequence number is mapping.dsn +
  /// mapping.length; when set without a mapping, `data_fin_dsn` gives it.
  bool data_fin = false;
  uint64_t data_fin_dsn = 0;  ///< only meaningful when data_fin && !mapping
  friend bool operator==(const DssOption&, const DssOption&) = default;
};

/// ADD_ADDR: advertises an additional address of the sender (used by
/// servers behind NAT-asymmetric paths to invite new client-initiated
/// subflows, section 3.2).
struct AddAddrOption {
  uint8_t addr_id = 0;
  IpAddr addr;
  std::optional<Port> port;
  friend bool operator==(const AddAddrOption&, const AddAddrOption&) = default;
};

/// REMOVE_ADDR: tells the peer that subflows using this address-id are dead
/// (mobility support, section 3.4).
struct RemoveAddrOption {
  uint8_t addr_id = 0;
  friend bool operator==(const RemoveAddrOption&,
                         const RemoveAddrOption&) = default;
};

/// MP_FASTCLOSE: abrupt connection-level close (analogous to RST for the
/// whole connection).
struct MpFastcloseOption {
  uint64_t receiver_key = 0;
  friend bool operator==(const MpFastcloseOption&,
                         const MpFastcloseOption&) = default;
};

/// MP_PRIO: change a subflow's backup priority.
struct MpPrioOption {
  bool backup = false;
  std::optional<uint8_t> addr_id;
  friend bool operator==(const MpPrioOption&, const MpPrioOption&) = default;
};

using TcpOption =
    std::variant<MssOption, WindowScaleOption, SackPermittedOption,
                 SackOption, TimestampOption, MpCapableOption, MpJoinOption,
                 DssOption, AddAddrOption, RemoveAddrOption,
                 MpFastcloseOption, MpPrioOption>;

/// True if the option is an MPTCP (kind 30) option.
bool is_mptcp_option(const TcpOption& opt);

/// Encoded size in bytes of a single option (including kind/length bytes),
/// matching the RFC 793 / RFC 6824 wire format implemented in wire.cc.
size_t option_wire_size(const TcpOption& opt);

/// Finds the first option of type T in a list, or nullptr.
template <typename T>
const T* find_option(const std::vector<TcpOption>& opts) {
  for (const auto& o : opts) {
    if (const T* p = std::get_if<T>(&o)) return p;
  }
  return nullptr;
}

template <typename T>
T* find_option(std::vector<TcpOption>& opts) {
  for (auto& o : opts) {
    if (T* p = std::get_if<T>(&o)) return p;
  }
  return nullptr;
}

/// Removes all options of type T; returns how many were removed.
template <typename T>
size_t remove_options(std::vector<TcpOption>& opts) {
  size_t before = opts.size();
  std::erase_if(opts, [](const TcpOption& o) {
    return std::holds_alternative<T>(o);
  });
  return before - opts.size();
}

}  // namespace mptcp
