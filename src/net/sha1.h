// SHA-1 (RFC 3174) and HMAC-SHA1 (RFC 2104), implemented from scratch.
//
// MPTCP uses SHA-1 to derive connection tokens and initial data sequence
// numbers from the 64-bit keys exchanged in MP_CAPABLE, and HMAC-SHA1 to
// authenticate MP_JOIN handshakes (section 3.2 of the paper, RFC 6824
// section 3.2). SHA-1's cryptographic weaknesses are irrelevant here: the
// protocol only needs preimage-resistance against blind off-path attackers.
#pragma once

#include <array>
#include <cstdint>
#include <span>

namespace mptcp {

/// Incremental SHA-1. Usage: update(...)* then digest().
class Sha1 {
 public:
  static constexpr size_t kDigestSize = 20;
  using Digest = std::array<uint8_t, kDigestSize>;

  Sha1() { reset(); }

  void reset();
  void update(std::span<const uint8_t> data);
  /// Finalizes and returns the digest. The object must be reset() before
  /// further use.
  Digest digest();

  /// One-shot convenience.
  static Digest hash(std::span<const uint8_t> data) {
    Sha1 h;
    h.update(data);
    return h.digest();
  }

 private:
  void process_block(const uint8_t* block);

  std::array<uint32_t, 5> h_;
  std::array<uint8_t, 64> buffer_;
  uint64_t total_bytes_ = 0;
  size_t buffer_len_ = 0;
};

/// HMAC-SHA1 per RFC 2104.
Sha1::Digest hmac_sha1(std::span<const uint8_t> key,
                       std::span<const uint8_t> message);

// ---------------------------------------------------------------------------
// MPTCP key derivations (RFC 6824 section 3.2).
// ---------------------------------------------------------------------------

/// Token = most significant 32 bits of SHA-1(key), key in network order.
uint32_t mptcp_token_from_key(uint64_t key);

/// Initial data sequence number = least significant 64 bits of SHA-1(key).
uint64_t mptcp_idsn_from_key(uint64_t key);

/// MP_JOIN SYN/ACK MAC: truncated (64-bit) HMAC-SHA1 keyed with
/// (local_key || remote_key) over (local_nonce || remote_nonce).
uint64_t mptcp_join_mac64(uint64_t key_local, uint64_t key_remote,
                          uint32_t nonce_local, uint32_t nonce_remote);

}  // namespace mptcp
