// Shared immutable segment payloads.
//
// A Payload is a refcounted view (offset + length) into an immutable byte
// buffer. Copying a Payload bumps a refcount; subview() carves a slice
// without touching the bytes. This is what lets the simulator forward,
// queue, retransmit and TSO-split segments without copying payload bytes:
// the sender's buffer chunk, every in-flight copy of the segment, and the
// receiver's reassembly queue all reference the same allocation.
//
// Sharing rules:
//   - The underlying buffer is immutable. Anything that wants to *modify*
//     payload bytes (a payload-rewriting middlebox, say) must go through
//     mutable_data(), which unshares the view (copy-on-write) before
//     returning a writable pointer.
//   - The refcount is NOT atomic: each simulation shard is single-threaded
//     by design and payloads must not cross threads. A segment handed to
//     another shard is detached first -- ShardChannel::send (sim/shard.h)
//     deep-copies the view into a fresh buffer owned by nobody else.
//
// Each view caches the folded RFC 1071 ones-complement sum of its bytes.
// That makes the paper's shared-checksum trick (section 3.3.6) structural:
// the TCP wire checksum and the DSS checksum both fold the same cached
// payload sum into their pseudo-headers instead of re-reading the bytes.
// mutable_data() invalidates the cache.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <vector>

namespace mptcp {

class Payload {
 public:
  Payload() = default;

  /// Copies `bytes` into a fresh buffer (creation-time copy; all further
  /// sharing is free).
  explicit Payload(std::span<const uint8_t> bytes) { assign(bytes); }
  /// `n` copies of `value` (benchmark/test convenience).
  Payload(size_t n, uint8_t value) { assign(n, value); }
  explicit Payload(const std::vector<uint8_t>& bytes) {
    assign(std::span<const uint8_t>(bytes));
  }
  Payload(std::initializer_list<uint8_t> bytes) {
    assign(std::span<const uint8_t>(bytes.begin(), bytes.size()));
  }

  Payload(const Payload& o)
      : buf_(o.buf_), off_(o.off_), len_(o.len_), sum_(o.sum_),
        sum_valid_(o.sum_valid_) {
    if (buf_ != nullptr) ++buf_->refs;
  }
  Payload(Payload&& o) noexcept
      : buf_(o.buf_), off_(o.off_), len_(o.len_), sum_(o.sum_),
        sum_valid_(o.sum_valid_) {
    o.buf_ = nullptr;
    o.off_ = o.len_ = 0;
    o.sum_valid_ = false;
  }
  Payload& operator=(const Payload& o) {
    if (this != &o) {
      if (o.buf_ != nullptr) ++o.buf_->refs;
      release();
      buf_ = o.buf_;
      off_ = o.off_;
      len_ = o.len_;
      sum_ = o.sum_;
      sum_valid_ = o.sum_valid_;
    }
    return *this;
  }
  Payload& operator=(Payload&& o) noexcept {
    if (this != &o) {
      release();
      buf_ = o.buf_;
      off_ = o.off_;
      len_ = o.len_;
      sum_ = o.sum_;
      sum_valid_ = o.sum_valid_;
      o.buf_ = nullptr;
      o.off_ = o.len_ = 0;
      o.sum_valid_ = false;
    }
    return *this;
  }
  Payload& operator=(std::initializer_list<uint8_t> bytes) {
    assign(std::span<const uint8_t>(bytes.begin(), bytes.size()));
    return *this;
  }
  ~Payload() { release(); }

  size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  const uint8_t* data() const {
    return buf_ != nullptr ? buf_->bytes() + off_ : nullptr;
  }
  std::span<const uint8_t> span() const { return {data(), len_}; }
  uint8_t operator[](size_t i) const { return data()[i]; }
  const uint8_t* begin() const { return data(); }
  const uint8_t* end() const { return data() + len_; }

  /// Replaces the contents with `n` copies of `value`.
  void assign(size_t n, uint8_t value);
  /// Replaces the contents with a copy of `bytes`.
  void assign(std::span<const uint8_t> bytes);
  void clear() {
    release();
    buf_ = nullptr;
    off_ = len_ = 0;
    sum_valid_ = false;
  }

  /// Zero-copy slice [off, off+n) sharing this view's buffer.
  Payload subview(size_t off, size_t n) const;
  /// Drops the first `n` bytes of the view (zero-copy).
  void remove_prefix(size_t n);
  /// Keeps only the first `n` bytes of the view (zero-copy).
  void truncate(size_t n);

  /// Appends bytes, materializing a fresh buffer (the old one may be
  /// shared). Used by coalescing middleboxes; not a hot path.
  void append(std::span<const uint8_t> more);
  void append(const Payload& more) { append(more.span()); }

  /// Concatenates `parts` into one view. A single part is returned as a
  /// shared view (zero-copy, the common case for a one-fragment DSS
  /// mapping); multiple parts are gathered with one allocation and one
  /// copy per byte.
  static Payload concat(std::span<const Payload> parts);

  /// Copy-on-write: returns a writable pointer to this view's bytes,
  /// copying them into a private buffer first if the buffer is shared.
  /// Invalidates the cached checksum.
  uint8_t* mutable_data();

  /// Folded (non-inverted) RFC 1071 ones-complement sum of the view's
  /// bytes, computed on first use and cached. Shared between the TCP wire
  /// checksum and the DSS checksum via ChecksumAccumulator::add_partial().
  uint16_t folded_sum() const;

  // --- introspection (tests, memory accounting) ---------------------------
  bool sum_cached() const { return sum_valid_; }
  bool shares_buffer_with(const Payload& o) const {
    return buf_ != nullptr && buf_ == o.buf_;
  }
  uint32_t buffer_refs() const { return buf_ != nullptr ? buf_->refs : 0; }
  /// Usable capacity of the backing allocation (>= size() + offset; pooled
  /// blocks round up to their size class).
  size_t buffer_capacity() const { return buf_ != nullptr ? buf_->cap : 0; }

  // --- block pool ----------------------------------------------------------
  // alloc_buf() recycles freed blocks of the two hot allocation sizes
  // (MSS-sized carves and app-write/16 KiB chunks) through thread-local
  // free lists, so capacity-scale workloads stop hammering the allocator
  // and shard worker threads never contend. Disabled under
  // AddressSanitizer so lifetime bugs stay visible.
  struct PoolStats {
    uint64_t hits = 0;    ///< allocations served from a free list
    uint64_t misses = 0;  ///< poolable sizes that went to the heap
  };
  static const PoolStats& pool_stats();
  /// Frees the calling thread's pooled blocks and zeroes its stats.
  /// Called by EventLoop construction so each simulation starts from a
  /// cold allocator and exports per-run pool stats deterministically.
  static void pool_reset();

  bool operator==(const Payload& o) const;
  bool operator!=(const Payload& o) const { return !(*this == o); }

 private:
  /// Refcounted header immediately followed by the bytes themselves
  /// (single allocation). Non-atomic: single-threaded simulator.
  struct Buf {
    uint32_t refs;
    uint32_t cap;  ///< usable byte capacity (pool size class or exact size)
    uint8_t* bytes() { return reinterpret_cast<uint8_t*>(this + 1); }
    const uint8_t* bytes() const {
      return reinterpret_cast<const uint8_t*>(this + 1);
    }
  };

  static Buf* alloc_buf(size_t n);
  static void free_buf(Buf* b);
  void release() {
    if (buf_ != nullptr && --buf_->refs == 0) free_buf(buf_);
  }

  Buf* buf_ = nullptr;
  size_t off_ = 0;
  size_t len_ = 0;
  mutable uint16_t sum_ = 0;
  mutable bool sum_valid_ = false;
};

}  // namespace mptcp
