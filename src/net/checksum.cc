#include "net/checksum.h"

namespace mptcp {

void ChecksumAccumulator::add_bytes(std::span<const uint8_t> data) {
  size_t i = 0;
  const size_t n = data.size();
  // Sum aligned 16-bit words; accumulate into 64 bits and fold at the end.
  for (; i + 1 < n; i += 2) {
    sum_ += (uint16_t{data[i]} << 8) | data[i + 1];
  }
  if (i < n) sum_ += uint16_t{data[i]} << 8;
}

uint16_t ChecksumAccumulator::fold() const {
  uint64_t s = sum_;
  while (s >> 16) s = (s & 0xffff) + (s >> 16);
  return static_cast<uint16_t>(s);
}

uint16_t ones_complement_sum(std::span<const uint8_t> data) {
  ChecksumAccumulator acc;
  acc.add_bytes(data);
  return acc.fold();
}

uint16_t internet_checksum(std::span<const uint8_t> data) {
  ChecksumAccumulator acc;
  acc.add_bytes(data);
  return acc.finish();
}

}  // namespace mptcp
