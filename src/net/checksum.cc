#include "net/checksum.h"

#include <bit>
#include <cstring>

namespace mptcp {

namespace {

/// Folds a 64-bit accumulator down to a 16-bit value modulo 0xffff. The
/// result is 0 only if the accumulator is exactly 0 (a non-zero multiple
/// of 0xffff folds to 0xffff), matching the representative the byte-wise
/// fold produces.
inline uint16_t fold64(uint64_t s) {
  while (s >> 16) s = (s & 0xffff) + (s >> 16);
  return static_cast<uint16_t>(s);
}

inline uint16_t byteswap16(uint16_t v) {
  return static_cast<uint16_t>((v << 8) | (v >> 8));
}

}  // namespace

void ChecksumAccumulator::add_bytes(std::span<const uint8_t> data) {
  const uint8_t* p = data.data();
  size_t n = data.size();

  // Word-at-a-time fast path: sum the span as native-endian 32-bit lanes
  // in a 64-bit accumulator (no carry handling needed: each add has 32
  // bits of headroom, good for spans up to ~16 GB), fold to 16 bits, and
  // byte-swap into the wire's big-endian word convention. RFC 1071's
  // byte-order independence makes this bit-identical to the byte-wise
  // loop: byte-swapping a 16-bit word is an 8-bit rotation, i.e. a
  // multiplication by 2^8 modulo 2^16-1, which distributes over the
  // ones-complement sum.
  if (n >= 32) {
    constexpr uint64_t kLaneMask = 0x00000000ffffffffull;
    uint64_t acc0 = 0;
    uint64_t acc1 = 0;
    while (n >= 16) {
      uint64_t w0, w1;
      std::memcpy(&w0, p, 8);
      std::memcpy(&w1, p + 8, 8);
      acc0 += (w0 & kLaneMask) + (w0 >> 32);
      acc1 += (w1 & kLaneMask) + (w1 >> 32);
      p += 16;
      n -= 16;
    }
    if (n >= 8) {
      uint64_t w;
      std::memcpy(&w, p, 8);
      acc0 += (w & kLaneMask) + (w >> 32);
      p += 8;
      n -= 8;
    }
    uint16_t partial = fold64(acc0 + acc1);
    if constexpr (std::endian::native == std::endian::little) {
      partial = byteswap16(partial);
    }
    sum_ += partial;
  }

  // Tail (and short spans): big-endian 16-bit words, odd trailing byte
  // zero-padded, exactly per RFC 1071.
  for (; n >= 2; p += 2, n -= 2) {
    sum_ += static_cast<uint16_t>((uint16_t{p[0]} << 8) | p[1]);
  }
  if (n != 0) sum_ += static_cast<uint16_t>(uint16_t{p[0]} << 8);
}

uint16_t ChecksumAccumulator::fold() const { return fold64(sum_); }

uint16_t ones_complement_sum(std::span<const uint8_t> data) {
  ChecksumAccumulator acc;
  acc.add_bytes(data);
  return acc.fold();
}

uint16_t internet_checksum(std::span<const uint8_t> data) {
  ChecksumAccumulator acc;
  acc.add_bytes(data);
  return acc.finish();
}

}  // namespace mptcp
