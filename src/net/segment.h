// The TCP segment as passed through the simulated network.
//
// Segments are plain values: middleboxes copy, split, coalesce and rewrite
// them, links account their wire size, and endpoints parse their options.
// The payload carries real bytes so that payload-modifying middleboxes and
// end-to-end integrity checks are meaningful -- but the bytes live in a
// shared refcounted buffer (net/payload.h), so copying, splitting and
// queueing segments shares them instead of duplicating them. Middleboxes
// that rewrite payload bytes must use Payload::mutable_data() (explicit
// copy-on-write).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/ip.h"
#include "net/options.h"
#include "net/payload.h"

namespace mptcp {

inline constexpr size_t kTcpHeaderSize = 20;
inline constexpr size_t kIpHeaderSize = 20;
inline constexpr size_t kMaxTcpOptionSpace = 40;

struct TcpSegment {
  FourTuple tuple;

  uint32_t seq = 0;
  uint32_t ack = 0;
  uint16_t window = 0;  ///< raw wire value; receiver applies its send scale

  bool syn = false;
  bool ack_flag = false;
  bool fin = false;
  bool rst = false;
  bool psh = false;

  std::vector<TcpOption> options;
  Payload payload;

  /// Wire checksum over the TCP pseudo-header + header + payload. Filled
  /// by the wire codec / checksum helpers; middleboxes that modify a
  /// segment are expected to fix it up (ours recompute it).
  uint16_t checksum = 0;

  size_t payload_size() const { return payload.size(); }

  /// Bytes of sequence space this segment occupies (SYN and FIN count 1).
  uint32_t seq_space_len() const {
    return static_cast<uint32_t>(payload.size()) + (syn ? 1u : 0u) +
           (fin ? 1u : 0u);
  }

  /// Size of the encoded TCP options, padded to a 4-byte boundary.
  size_t options_wire_size() const {
    size_t n = 0;
    for (const auto& o : options) n += option_wire_size(o);
    return (n + 3) & ~size_t{3};
  }

  /// Total on-the-wire size including the IP header; used by links to
  /// compute serialization delay.
  size_t wire_size() const {
    return kIpHeaderSize + kTcpHeaderSize + options_wire_size() +
           payload.size();
  }

  bool is_pure_ack() const {
    return ack_flag && !syn && !fin && !rst && payload.empty();
  }

  std::string brief() const;
};

}  // namespace mptcp
