#include "net/payload.h"

#include <cassert>
#include <cstring>
#include <new>
#include <vector>

#include "net/checksum.h"

// The pool hides use-after-free from AddressSanitizer (a recycled block is
// live memory), so compile it out under ASan and let every allocation hit
// the instrumented heap.
#if defined(__SANITIZE_ADDRESS__)
#define MPTCP_PAYLOAD_POOL 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define MPTCP_PAYLOAD_POOL 0
#endif
#endif
#ifndef MPTCP_PAYLOAD_POOL
#define MPTCP_PAYLOAD_POOL 1
#endif

namespace mptcp {

namespace {

// The two allocation sizes that dominate capacity-scale runs: MSS-sized
// carves off the send buffer (1460 and change) and the 16 KiB chunks apps
// write. Everything else goes straight to the heap.
constexpr size_t kSmallCap = 2048;
constexpr size_t kLargeCap = 16384;
// Free-list depth limits: enough to absorb steady-state churn without
// letting a transient burst pin memory forever.
constexpr size_t kSmallMax = 8192;
constexpr size_t kLargeMax = 2048;

// One pool per thread: payload refcounts are non-atomic and a buffer must
// never be shared across threads (the sharded engine deep-copies payloads
// at shard boundaries, see sim/shard.h), so each shard worker recycles
// blocks through its own free lists with no synchronization. Blocks drain
// back to the heap when the thread exits.
struct Pool {
  std::vector<void*> free_small;
  std::vector<void*> free_large;
  Payload::PoolStats stats;
  ~Pool() {
    for (void* p : free_small) ::operator delete(p);
    for (void* p : free_large) ::operator delete(p);
  }
};

thread_local Pool g_pool;

}  // namespace

Payload::Buf* Payload::alloc_buf(size_t n) {
  size_t cap = n;
#if MPTCP_PAYLOAD_POOL
  std::vector<void*>* list = nullptr;
  if (n <= kSmallCap) {
    cap = kSmallCap;
    list = &g_pool.free_small;
  } else if (n <= kLargeCap) {
    cap = kLargeCap;
    list = &g_pool.free_large;
  }
  if (list != nullptr) {
    if (!list->empty()) {
      ++g_pool.stats.hits;
      Buf* b = static_cast<Buf*>(list->back());
      list->pop_back();
      b->refs = 1;
      b->cap = static_cast<uint32_t>(cap);
      return b;
    }
    ++g_pool.stats.misses;
  }
#endif
  Buf* b = static_cast<Buf*>(::operator new(sizeof(Buf) + cap));
  b->refs = 1;
  b->cap = static_cast<uint32_t>(cap);
  return b;
}

void Payload::free_buf(Buf* b) {
#if MPTCP_PAYLOAD_POOL
  if (b->cap == kSmallCap && g_pool.free_small.size() < kSmallMax) {
    g_pool.free_small.push_back(b);
    return;
  }
  if (b->cap == kLargeCap && g_pool.free_large.size() < kLargeMax) {
    g_pool.free_large.push_back(b);
    return;
  }
#endif
  ::operator delete(static_cast<void*>(b));
}

const Payload::PoolStats& Payload::pool_stats() { return g_pool.stats; }

void Payload::pool_reset() {
  for (void* p : g_pool.free_small) ::operator delete(p);
  for (void* p : g_pool.free_large) ::operator delete(p);
  g_pool.free_small.clear();
  g_pool.free_large.clear();
  g_pool.stats = PoolStats{};
}

void Payload::assign(size_t n, uint8_t value) {
  release();
  sum_valid_ = false;
  off_ = 0;
  len_ = n;
  if (n == 0) {
    buf_ = nullptr;
    return;
  }
  buf_ = alloc_buf(n);
  std::memset(buf_->bytes(), value, n);
}

void Payload::assign(std::span<const uint8_t> bytes) {
  // The source may alias our own buffer (e.g. assign from a subspan of
  // span()); build the new buffer before releasing the old one.
  Buf* fresh = nullptr;
  if (!bytes.empty()) {
    fresh = alloc_buf(bytes.size());
    std::memcpy(fresh->bytes(), bytes.data(), bytes.size());
  }
  release();
  buf_ = fresh;
  off_ = 0;
  len_ = bytes.size();
  sum_valid_ = false;
}

Payload Payload::subview(size_t off, size_t n) const {
  assert(off <= len_ && n <= len_ - off && "subview out of range");
  Payload out;
  if (n == 0 || buf_ == nullptr) return out;
  out.buf_ = buf_;
  ++buf_->refs;
  out.off_ = off_ + off;
  out.len_ = n;
  if (off == 0 && n == len_) {
    out.sum_ = sum_;
    out.sum_valid_ = sum_valid_;
  }
  return out;
}

void Payload::remove_prefix(size_t n) {
  assert(n <= len_ && "remove_prefix out of range");
  off_ += n;
  len_ -= n;
  sum_valid_ = false;
  if (len_ == 0) clear();
}

void Payload::truncate(size_t n) {
  if (n >= len_) return;
  len_ = n;
  sum_valid_ = false;
  if (len_ == 0) clear();
}

void Payload::append(std::span<const uint8_t> more) {
  if (more.empty()) return;
  Buf* merged = alloc_buf(len_ + more.size());
  if (len_ != 0) std::memcpy(merged->bytes(), data(), len_);
  std::memcpy(merged->bytes() + len_, more.data(), more.size());
  release();
  buf_ = merged;
  off_ = 0;
  len_ += more.size();
  sum_valid_ = false;
}

Payload Payload::concat(std::span<const Payload> parts) {
  if (parts.empty()) return {};
  if (parts.size() == 1) return parts.front();
  size_t total = 0;
  for (const Payload& p : parts) total += p.size();
  Payload out;
  if (total == 0) return out;
  out.buf_ = alloc_buf(total);
  out.len_ = total;
  size_t at = 0;
  for (const Payload& p : parts) {
    if (p.empty()) continue;
    std::memcpy(out.buf_->bytes() + at, p.data(), p.size());
    at += p.size();
  }
  return out;
}

uint8_t* Payload::mutable_data() {
  if (buf_ == nullptr) return nullptr;
  if (buf_->refs != 1) {
    Buf* own = alloc_buf(len_);
    std::memcpy(own->bytes(), data(), len_);
    release();
    buf_ = own;
    off_ = 0;
  }
  sum_valid_ = false;
  return buf_->bytes() + off_;
}

uint16_t Payload::folded_sum() const {
  if (!sum_valid_) {
    sum_ = ones_complement_sum(span());
    sum_valid_ = true;
  }
  return sum_;
}

bool Payload::operator==(const Payload& o) const {
  if (len_ != o.len_) return false;
  if (buf_ == o.buf_ && off_ == o.off_) return true;
  return len_ == 0 || std::memcmp(data(), o.data(), len_) == 0;
}

}  // namespace mptcp
