#include "net/payload.h"

#include <cassert>
#include <cstring>
#include <new>

#include "net/checksum.h"

namespace mptcp {

Payload::Buf* Payload::alloc_buf(size_t n) {
  Buf* b = static_cast<Buf*>(::operator new(sizeof(Buf) + n));
  b->refs = 1;
  return b;
}

void Payload::assign(size_t n, uint8_t value) {
  release();
  sum_valid_ = false;
  off_ = 0;
  len_ = n;
  if (n == 0) {
    buf_ = nullptr;
    return;
  }
  buf_ = alloc_buf(n);
  std::memset(buf_->bytes(), value, n);
}

void Payload::assign(std::span<const uint8_t> bytes) {
  // The source may alias our own buffer (e.g. assign from a subspan of
  // span()); build the new buffer before releasing the old one.
  Buf* fresh = nullptr;
  if (!bytes.empty()) {
    fresh = alloc_buf(bytes.size());
    std::memcpy(fresh->bytes(), bytes.data(), bytes.size());
  }
  release();
  buf_ = fresh;
  off_ = 0;
  len_ = bytes.size();
  sum_valid_ = false;
}

Payload Payload::subview(size_t off, size_t n) const {
  assert(off <= len_ && n <= len_ - off && "subview out of range");
  Payload out;
  if (n == 0 || buf_ == nullptr) return out;
  out.buf_ = buf_;
  ++buf_->refs;
  out.off_ = off_ + off;
  out.len_ = n;
  if (off == 0 && n == len_) {
    out.sum_ = sum_;
    out.sum_valid_ = sum_valid_;
  }
  return out;
}

void Payload::remove_prefix(size_t n) {
  assert(n <= len_ && "remove_prefix out of range");
  off_ += n;
  len_ -= n;
  sum_valid_ = false;
  if (len_ == 0) clear();
}

void Payload::truncate(size_t n) {
  if (n >= len_) return;
  len_ = n;
  sum_valid_ = false;
  if (len_ == 0) clear();
}

void Payload::append(std::span<const uint8_t> more) {
  if (more.empty()) return;
  Buf* merged = alloc_buf(len_ + more.size());
  if (len_ != 0) std::memcpy(merged->bytes(), data(), len_);
  std::memcpy(merged->bytes() + len_, more.data(), more.size());
  release();
  buf_ = merged;
  off_ = 0;
  len_ += more.size();
  sum_valid_ = false;
}

uint8_t* Payload::mutable_data() {
  if (buf_ == nullptr) return nullptr;
  if (buf_->refs != 1) {
    Buf* own = alloc_buf(len_);
    std::memcpy(own->bytes(), data(), len_);
    release();
    buf_ = own;
    off_ = 0;
  }
  sum_valid_ = false;
  return buf_->bytes() + off_;
}

uint16_t Payload::folded_sum() const {
  if (!sum_valid_) {
    sum_ = ones_complement_sum(span());
    sum_valid_ = true;
  }
  return sum_;
}

bool Payload::operator==(const Payload& o) const {
  if (len_ != o.len_) return false;
  if (buf_ == o.buf_ && off_ == o.off_) return true;
  return len_ == 0 || std::memcmp(data(), o.data(), len_) == 0;
}

}  // namespace mptcp
