#include "net/sha1.h"

#include <cstring>

namespace mptcp {
namespace {

constexpr uint32_t rotl(uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

void put_u64_be(uint8_t* out, uint64_t v) {
  for (int i = 7; i >= 0; --i) {
    out[7 - i] = static_cast<uint8_t>(v >> (i * 8));
  }
}

}  // namespace

void Sha1::reset() {
  h_ = {0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u};
  total_bytes_ = 0;
  buffer_len_ = 0;
}

void Sha1::process_block(const uint8_t* block) {
  uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = (uint32_t{block[i * 4]} << 24) | (uint32_t{block[i * 4 + 1]} << 16) |
           (uint32_t{block[i * 4 + 2]} << 8) | uint32_t{block[i * 4 + 3]};
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }

  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    uint32_t tmp = rotl(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

void Sha1::update(std::span<const uint8_t> data) {
  total_bytes_ += data.size();
  size_t pos = 0;
  if (buffer_len_ > 0) {
    size_t take = std::min(data.size(), buffer_.size() - buffer_len_);
    std::memcpy(buffer_.data() + buffer_len_, data.data(), take);
    buffer_len_ += take;
    pos = take;
    if (buffer_len_ == buffer_.size()) {
      process_block(buffer_.data());
      buffer_len_ = 0;
    }
  }
  while (pos + 64 <= data.size()) {
    process_block(data.data() + pos);
    pos += 64;
  }
  if (pos < data.size()) {
    buffer_len_ = data.size() - pos;
    std::memcpy(buffer_.data(), data.data() + pos, buffer_len_);
  }
}

Sha1::Digest Sha1::digest() {
  const uint64_t bit_len = total_bytes_ * 8;
  // Append the 0x80 terminator and zero padding up to 56 mod 64, then the
  // 64-bit big-endian message length.
  const uint8_t terminator = 0x80;
  update({&terminator, 1});
  const uint8_t zero = 0;
  while (buffer_len_ != 56) update({&zero, 1});
  uint8_t len_be[8];
  put_u64_be(len_be, bit_len);
  // Do not let the length bytes count toward a new length.
  std::memcpy(buffer_.data() + 56, len_be, 8);
  process_block(buffer_.data());
  buffer_len_ = 0;

  Digest out;
  for (int i = 0; i < 5; ++i) {
    out[i * 4 + 0] = static_cast<uint8_t>(h_[i] >> 24);
    out[i * 4 + 1] = static_cast<uint8_t>(h_[i] >> 16);
    out[i * 4 + 2] = static_cast<uint8_t>(h_[i] >> 8);
    out[i * 4 + 3] = static_cast<uint8_t>(h_[i]);
  }
  return out;
}

Sha1::Digest hmac_sha1(std::span<const uint8_t> key,
                       std::span<const uint8_t> message) {
  std::array<uint8_t, 64> k{};
  if (key.size() > 64) {
    auto d = Sha1::hash(key);
    std::memcpy(k.data(), d.data(), d.size());
  } else {
    std::memcpy(k.data(), key.data(), key.size());
  }

  std::array<uint8_t, 64> ipad, opad;
  for (size_t i = 0; i < 64; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha1 inner;
  inner.update(ipad);
  inner.update(message);
  auto inner_digest = inner.digest();

  Sha1 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.digest();
}

namespace {

std::array<uint8_t, 8> key_bytes_be(uint64_t key) {
  std::array<uint8_t, 8> b;
  put_u64_be(b.data(), key);
  return b;
}

}  // namespace

uint32_t mptcp_token_from_key(uint64_t key) {
  auto d = Sha1::hash(key_bytes_be(key));
  return (uint32_t{d[0]} << 24) | (uint32_t{d[1]} << 16) |
         (uint32_t{d[2]} << 8) | uint32_t{d[3]};
}

uint64_t mptcp_idsn_from_key(uint64_t key) {
  auto d = Sha1::hash(key_bytes_be(key));
  uint64_t v = 0;
  for (int i = 12; i < 20; ++i) v = (v << 8) | d[i];
  return v;
}

uint64_t mptcp_join_mac64(uint64_t key_local, uint64_t key_remote,
                          uint32_t nonce_local, uint32_t nonce_remote) {
  std::array<uint8_t, 16> key;
  put_u64_be(key.data(), key_local);
  put_u64_be(key.data() + 8, key_remote);
  std::array<uint8_t, 8> msg;
  for (int i = 0; i < 4; ++i) {
    msg[i] = static_cast<uint8_t>(nonce_local >> ((3 - i) * 8));
    msg[4 + i] = static_cast<uint8_t>(nonce_remote >> ((3 - i) * 8));
  }
  auto d = hmac_sha1(key, msg);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | d[i];
  return v;
}

}  // namespace mptcp
