// Basic network-layer identifiers used throughout the library.
//
// The simulator is IPv4-shaped: an address is 32 bits and a flow is
// identified by the classic 4-tuple. Middleboxes (NATs in particular)
// rewrite these fields, which is why connections must never rely on the
// tuple alone for identity -- that is one of the core lessons of the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace mptcp {

/// A 32-bit IPv4-style address. Value 0 means "unspecified".
struct IpAddr {
  uint32_t value = 0;

  constexpr IpAddr() = default;
  constexpr explicit IpAddr(uint32_t v) : value(v) {}
  /// Builds an address from dotted-quad components, e.g. IpAddr(10,0,0,1).
  constexpr IpAddr(uint8_t a, uint8_t b, uint8_t c, uint8_t d)
      : value((uint32_t{a} << 24) | (uint32_t{b} << 16) | (uint32_t{c} << 8) |
              uint32_t{d}) {}

  constexpr bool is_unspecified() const { return value == 0; }

  friend constexpr bool operator==(IpAddr x, IpAddr y) {
    return x.value == y.value;
  }
  friend constexpr bool operator!=(IpAddr x, IpAddr y) {
    return x.value != y.value;
  }
  friend constexpr bool operator<(IpAddr x, IpAddr y) {
    return x.value < y.value;
  }

  std::string str() const {
    return std::to_string((value >> 24) & 0xff) + "." +
           std::to_string((value >> 16) & 0xff) + "." +
           std::to_string((value >> 8) & 0xff) + "." +
           std::to_string(value & 0xff);
  }
};

using Port = uint16_t;

/// An addressed endpoint (address + port).
struct Endpoint {
  IpAddr addr;
  Port port = 0;

  friend constexpr bool operator==(const Endpoint& a, const Endpoint& b) {
    return a.addr == b.addr && a.port == b.port;
  }
  friend constexpr bool operator!=(const Endpoint& a, const Endpoint& b) {
    return !(a == b);
  }
  friend constexpr bool operator<(const Endpoint& a, const Endpoint& b) {
    if (a.addr != b.addr) return a.addr < b.addr;
    return a.port < b.port;
  }

  std::string str() const { return addr.str() + ":" + std::to_string(port); }
};

/// The classic TCP 4-tuple, from the point of view of the segment
/// (src = sender of the segment).
struct FourTuple {
  Endpoint src;
  Endpoint dst;

  /// The same flow seen from the other direction.
  constexpr FourTuple reversed() const { return FourTuple{dst, src}; }

  friend constexpr bool operator==(const FourTuple& a, const FourTuple& b) {
    return a.src == b.src && a.dst == b.dst;
  }
  friend constexpr bool operator!=(const FourTuple& a, const FourTuple& b) {
    return !(a == b);
  }
  friend constexpr bool operator<(const FourTuple& a, const FourTuple& b) {
    if (a.src != b.src) return a.src < b.src;
    return a.dst < b.dst;
  }

  std::string str() const { return src.str() + "->" + dst.str(); }
};

}  // namespace mptcp

namespace std {
template <>
struct hash<mptcp::IpAddr> {
  size_t operator()(mptcp::IpAddr a) const noexcept {
    return hash<uint32_t>{}(a.value);
  }
};
template <>
struct hash<mptcp::Endpoint> {
  size_t operator()(const mptcp::Endpoint& e) const noexcept {
    return hash<uint64_t>{}((uint64_t{e.addr.value} << 16) ^ e.port);
  }
};
template <>
struct hash<mptcp::FourTuple> {
  size_t operator()(const mptcp::FourTuple& t) const noexcept {
    uint64_t a = (uint64_t{t.src.addr.value} << 32) | t.dst.addr.value;
    uint64_t b = (uint64_t{t.src.port} << 16) | t.dst.port;
    // 64-bit mix (splitmix64 finalizer).
    uint64_t x = a ^ (b * 0x9e3779b97f4a7c15ULL);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};
}  // namespace std
