// Cross-layer observability: a lightweight registry of named counters,
// gauges, histograms and lazily-sampled values.
//
// Design rules, in order of importance:
//  * Near-zero overhead when unread. Hot paths touch plain integers --
//    Counter::inc() is one add, Histogram::record() is a bit_width and two
//    adds. Anything that costs more (walking data structures, formatting)
//    happens only at export time, via sampled() callbacks.
//  * Deterministic export. Entries live in an ordered map keyed by name,
//    so two identical runs serialize byte-identical JSON -- the property
//    the determinism digest (app/digest.h) and CI lean on.
//  * Explicit lifetime. Components that register callbacks reading their
//    own state must remove_scope() them before dying; the registry never
//    guesses. Scopes handed out by unique_scope() make per-instance
//    prefixes collision-free ("sim.link.wifi-up", "sim.link.wifi-up#2").
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>

namespace mptcp {

/// Monotonic event count.
class Counter {
 public:
  void inc(uint64_t n = 1) { v_ += n; }
  uint64_t value() const { return v_; }

 private:
  uint64_t v_ = 0;
};

/// Instantaneous signed level (queue depths, occupancy).
class Gauge {
 public:
  void set(int64_t v) { v_ = v; }
  void add(int64_t d) { v_ += d; }
  int64_t value() const { return v_; }

 private:
  int64_t v_ = 0;
};

/// Power-of-two bucketed histogram of non-negative values. Bucket 0 holds
/// zeros; bucket i (i >= 1) holds values in [2^(i-1), 2^i). Recording is
/// O(1) with no allocation, so it is safe on per-packet paths.
class Histogram {
 public:
  static constexpr size_t kBuckets = 65;

  void record(uint64_t v) {
    ++buckets_[std::bit_width(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }
  uint64_t bucket(size_t i) const { return i < kBuckets ? buckets_[i] : 0; }

  /// Upper bound (exclusive, a power of two) of the bucket where the p-th
  /// fraction of samples falls; p in [0, 1].
  uint64_t approx_percentile(double p) const;

  /// Folds another histogram's samples into this one bucket-wise, as if
  /// every sample had been recorded here. min/max handle either side
  /// being empty. This is how per-shard histogram partitions merge into
  /// one distribution at export (StatsRegistry::merged_flatten).
  void merge_from(const Histogram& o);

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

/// Export-time receiver for sampled_group() callbacks: the group emits
/// (name, value) pairs relative to its scope.
class SampleSink {
 public:
  virtual void emit(std::string_view name, double value) = 0;

 protected:
  ~SampleSink() = default;
};

class StatsRegistry {
 public:
  /// Read at export time only; must stay valid until removed.
  using SampleFn = std::function<double()>;
  using GroupFn = std::function<void(SampleSink&)>;

  /// Returns the counter/gauge/histogram registered under `name`, creating
  /// it on first use. References stay valid until the entry is removed.
  /// Looking up an existing name allocates nothing.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Registers a value sampled lazily at export time. Replaces any
  /// previous entry under the same name.
  void sampled(const std::string& name, SampleFn fn);

  /// Registers a whole scope's worth of sampled values behind ONE map
  /// entry: at export the callback emits (suffix, value) pairs which
  /// appear as "<scope>.<suffix>". This is the registration path for
  /// short-lived instances (connections, subflows) -- one insert at
  /// birth, one erase at death, regardless of how many values the scope
  /// exposes. value("<scope>.<suffix>") resolves through the group too.
  void sampled_group(const std::string& scope, GroupFn fn);

  /// Reserves a collision-free scope prefix: the first caller gets `base`,
  /// later callers get "base#2", "base#3", ... (deterministic in
  /// registration order). The '#' separator guarantees that
  /// remove_scope("base") never touches "base#2.*" entries. The
  /// registry's scope tag (if set) is appended to `base` first, so scopes
  /// from different registries can never collide in a merged export.
  std::string unique_scope(const std::string& base);

  /// Tags every subsequent unique_scope() name with `tag` (e.g. "@s1").
  /// Sharded topologies tag each non-zero shard's registry so that
  /// per-instance scopes ("mptcp.client@s1", "mptcp.client@s1#2", ...)
  /// stay distinct across partitions -- otherwise merged_flatten() would
  /// silently sum shard 0's "mptcp.client#2" with shard 1's. Shard 0 is
  /// left untagged, which keeps every single-shard export byte-identical
  /// to the pre-sharding format.
  void set_scope_tag(std::string tag) { scope_tag_ = std::move(tag); }

  /// Removes the entry named `scope` and every entry under "scope.".
  /// Returns how many entries were dropped.
  size_t remove_scope(std::string_view scope);
  void remove(std::string_view name);

  bool contains(std::string_view name) const;
  size_t size() const { return entries_.size(); }

  /// Lookup helpers (mostly for tests); null when absent or of another kind.
  const Counter* find_counter(std::string_view name) const;
  const Gauge* find_gauge(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  /// Current numeric value of a flat key as flatten() would produce it
  /// (histograms contribute "name.count" etc.); 0 when absent.
  double value(std::string_view flat_key) const;

  /// Flat deterministic view: counters/gauges/sampled map to one key each,
  /// histograms expand to name.{count,sum,min,max,mean}, sampled groups
  /// to "<scope>.<suffix>" per emitted pair.
  std::map<std::string, double> flatten() const;

  /// One flat JSON object, keys sorted, doubles printed round-trippably.
  std::string to_json() const;

  /// Deterministic fold of several registry partitions into one flat
  /// view (the export path for per-shard registries). Same-named
  /// counters, gauges and sampled values sum; histograms bucket-merge
  /// *before* expansion, so <name>.{count,sum,min,max} describe the
  /// union of samples and <name>.mean is recomputed from the merged
  /// totals rather than summed. Group entries expand first and their
  /// flat keys sum like scalars. The caller passes partitions in a fixed
  /// order (shard index); the result depends only on each partition's
  /// contents, never on which shard finished last, so two identical runs
  /// fold to byte-identical JSON.
  static std::map<std::string, double> merged_flatten(
      std::span<const StatsRegistry* const> parts);

  /// merged_flatten() serialized exactly like to_json().
  static std::string merged_to_json(std::span<const StatsRegistry* const> parts);

  /// Parses the exact shape to_json() emits (also tolerates the flat JSON
  /// the benchmarks write). Malformed input yields the pairs parsed so far.
  static std::map<std::string, double> parse_flat_json(std::string_view json);

 private:
  struct Entry {
    // Exactly one of these is set. unique_ptr keeps addresses stable
    // across map rebalancing and registry growth.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> hist;
    SampleFn fn;
    GroupFn group;
  };

  Entry& entry(std::string_view name);

  std::map<std::string, Entry, std::less<>> entries_;
  std::map<std::string, int, std::less<>> scope_counts_;
  std::string scope_tag_;
};

}  // namespace mptcp
