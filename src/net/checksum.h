// RFC 1071 16-bit ones-complement checksum.
//
// The same primitive serves three purposes, exactly as in the paper
// (section 3.3.6): the TCP wire checksum, the MPTCP DSS checksum over the
// payload plus an MPTCP pseudo-header, and the trick that lets a software
// implementation compute the payload sum only once and reuse it for both.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace mptcp {

/// Ones-complement accumulator. Sums 16-bit big-endian words; odd trailing
/// bytes are padded with zero, per RFC 1071.
class ChecksumAccumulator {
 public:
  /// Adds a span of raw bytes. May be called repeatedly; byte spans are
  /// treated as if concatenated on 16-bit boundaries (callers must add
  /// even-length spans except for the final one, which is the only pattern
  /// the stack uses).
  void add_bytes(std::span<const uint8_t> data);

  /// Adds one 16-bit word.
  void add_word(uint16_t w) { sum_ += w; }

  /// Adds a 32-bit value as two words.
  void add_u32(uint32_t v) {
    add_word(static_cast<uint16_t>(v >> 16));
    add_word(static_cast<uint16_t>(v & 0xffff));
  }

  /// Adds a 64-bit value as four words.
  void add_u64(uint64_t v) {
    add_u32(static_cast<uint32_t>(v >> 32));
    add_u32(static_cast<uint32_t>(v & 0xffffffff));
  }

  /// Adds an already-folded ones-complement sum of some block (i.e. the
  /// *non-inverted* partial sum). This is how the payload sum is shared
  /// between the TCP and DSS checksums.
  void add_partial(uint16_t folded_sum) { sum_ += folded_sum; }

  /// Folded (carry-wrapped) 16-bit partial sum, not inverted.
  uint16_t fold() const;

  /// Final checksum: ones-complement of the folded sum.
  uint16_t finish() const { return static_cast<uint16_t>(~fold()); }

 private:
  uint64_t sum_ = 0;
};

/// Folded, non-inverted ones-complement sum of a byte span.
uint16_t ones_complement_sum(std::span<const uint8_t> data);

/// Final (inverted) RFC 1071 checksum of a byte span.
uint16_t internet_checksum(std::span<const uint8_t> data);

}  // namespace mptcp
