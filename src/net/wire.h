// Wire codec: maps TcpSegment to/from the RFC 793 + RFC 6824 byte layout.
//
// The simulator passes segments around as structs for speed and clarity,
// but the codec keeps the model honest: option sizes, 4-byte padding, the
// TCP checksum over the pseudo-header, and the MPTCP option subtype
// encodings are all exercised by tests through this code. The Fig. 3
// benchmark also uses it to measure the real per-byte cost of
// checksumming.
//
// Deviations from RFC 6824, kept deliberately small and documented:
//   * MP_JOIN's third-ACK MAC is 64 bits (the RFC uses the full 160-bit
//     HMAC there); the authentication logic is unchanged.
//   * MP_CAPABLE uses version 0 with 64-bit keys, as in the paper.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/segment.h"

namespace mptcp {

/// Serializes a full segment (TCP header + options + payload, no IP
/// header). The checksum field is computed over the IPv4 pseudo-header
/// derived from seg.tuple.
std::vector<uint8_t> serialize_segment(const TcpSegment& seg);

/// Parses bytes produced by serialize_segment back into a segment.
/// `tuple` supplies the pseudo-header fields (addresses are not part of
/// the TCP header). Returns nullopt on malformed input. Unknown options
/// are skipped, matching a liberal TCP receiver.
std::optional<TcpSegment> parse_segment(std::span<const uint8_t> bytes,
                                        const FourTuple& tuple);

/// Computes the TCP checksum for a serialized segment (bytes with the
/// checksum field zeroed) and pseudo-header from `tuple`.
uint16_t tcp_checksum(std::span<const uint8_t> tcp_bytes,
                      const FourTuple& tuple);

/// Serializes just the options block (with padding to 4 bytes).
std::vector<uint8_t> serialize_options(const std::vector<TcpOption>& opts);

/// Parses an options block.
std::vector<TcpOption> parse_options(std::span<const uint8_t> bytes);

}  // namespace mptcp
