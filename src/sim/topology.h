// Declarative multi-host topologies: arbitrary graphs of hosts, routers
// and links built from a spec, with automatic addressing and routing.
//
// TwoHostRig (app/harness.h) hard-wires the paper's client/server shape;
// scale-out experiments need N clients and M servers sharing bottleneck
// links through routers. A Topology owns the event loop and every node:
//
//   Topology topo(seed);
//   NodeId c = topo.add_host("client0");
//   NodeId r = topo.add_router("core");
//   NodeId s = topo.add_host("server0");
//   topo.connect(c, r, access_cfg, access_cfg);   // c gains one address
//   topo.connect(r, s, core_cfg, core_cfg);       // s gains one address
//   topo.build_routes();                          // fills router tables
//
// Addressing: every connect() whose endpoint is a host assigns that host a
// fresh interface address in a per-link /24 (10.<l/256+1>.<l%256>.1 for
// side a, .2 for side b). Multihomed hosts simply connect() several times
// and gain one address per access link -- exactly the shape MPTCP subflow
// path-pinning expects, since hosts route outgoing traffic by source
// address.
//
// Routing: build_routes() computes, for every host address A, a shortest
// path (hop count, deterministic creation-order tie-break) from every
// router to A's access link, and installs per-address next hops in each
// Router. Per-address (not per-host) routing is what keeps a multihomed
// host's subflows on distinct paths end to end. Hosts never forward, so
// paths only traverse routers.
//
// Sharding: Topology(seed, shards) creates one EventLoop (and therefore
// one StatsRegistry partition) per shard; add_host()/add_router() pin
// each node to a shard, and every node's machinery (sockets, timers,
// link egress) lives in its shard's loop. A link whose endpoints sit in
// different shards sends through a ShardChannel (sim/shard.h) instead of
// a local propagation event; ShardedEngine drives the loops in lockstep
// epochs. Cross-shard links must have prop_delay > 0 -- the propagation
// delay is the conservative lookahead that makes barrier-drained handoff
// exact. Routing is shard-safe as-is: build_routes() only ever installs
// a router's own egress links, which live in that router's shard.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/link.h"
#include "sim/network.h"
#include "sim/shard.h"

namespace mptcp {

/// Index of a node (host or router) within one Topology.
using NodeId = size_t;

class Topology {
 public:
  explicit Topology(uint64_t seed = 1, size_t shards = 1);

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  // --- construction ------------------------------------------------------
  NodeId add_host(const std::string& name, size_t shard = 0);
  NodeId add_router(const std::string& name, size_t shard = 0);

  /// Connects `a` and `b` with a full-duplex link pair (`cfg_ab` shapes the
  /// a->b direction). Host endpoints gain a fresh interface address on this
  /// link. Returns the link index. Loss seeds are perturbed by the topology
  /// seed and link index so every link draws an independent stream.
  size_t connect(NodeId a, NodeId b, const LinkConfig& cfg_ab,
                 const LinkConfig& cfg_ba, std::string name = "");

  /// (Re)computes every router's next-hop table; call after the graph is
  /// complete (and again after adding links mid-experiment).
  void build_routes();

  // --- node access -------------------------------------------------------
  size_t node_count() const { return nodes_.size(); }
  bool is_router(NodeId n) const { return nodes_[n].router != nullptr; }
  const std::string& node_name(NodeId n) const { return nodes_[n].name; }
  Host& host(NodeId n) {
    assert(nodes_[n].host != nullptr);
    return *nodes_[n].host;
  }
  Router& router(NodeId n) {
    assert(nodes_[n].router != nullptr);
    return *nodes_[n].router;
  }

  /// The i-th address assigned to host `n`, in connect() order.
  IpAddr addr(NodeId n, size_t i = 0) const {
    return nodes_[n].addrs.at(i);
  }
  const std::vector<IpAddr>& addrs(NodeId n) const { return nodes_[n].addrs; }

  // --- link access -------------------------------------------------------
  size_t link_count() const { return links_.size(); }
  Link& link_ab(size_t l) { return *links_[l].ab; }
  Link& link_ba(size_t l) { return *links_[l].ba; }
  NodeId link_node_a(size_t l) const { return links_[l].a; }
  NodeId link_node_b(size_t l) const { return links_[l].b; }

  /// Splices a middlebox into one direction of link `l` (a->b or b->a).
  /// Repeated splices nest: each new element is inserted directly after
  /// the link, so the most recently spliced element sees packets first.
  void splice_ab(size_t l, Middlebox& element);
  void splice_ba(size_t l, Middlebox& element);

  /// Takes both directions of link `l` up/down, plus any host interface
  /// attached to it (mobility at scale).
  void set_link_up(size_t l, bool up);

  // --- sharding -----------------------------------------------------------
  size_t shard_count() const { return loops_.size(); }
  size_t shard_of(NodeId n) const { return nodes_[n].shard; }
  /// Stable token -> shard pinning (FNV-1a mod shard count), the helper
  /// scenario builders use to spread named entities across shards
  /// without coordinating.
  size_t shard_for_token(std::string_view token) const;
  /// Ring capacity for cross-shard channels created by *subsequent*
  /// connect() calls. Overflow past the ring spills to an unbounded
  /// vector, so this tunes memory/backpressure, not correctness.
  void set_handoff_ring_capacity(size_t cap) { ring_capacity_ = cap; }
  /// Every cross-shard channel, in creation order (ShardedEngine's
  /// deterministic drain order).
  const std::vector<std::unique_ptr<ShardChannel>>& channels() const {
    return channels_;
  }
  /// Smallest propagation delay over all cross-shard link directions (the
  /// conservative epoch-quantum bound); 0 when nothing crosses shards.
  SimTime min_cross_prop() const { return min_cross_prop_; }

  // --- observability ------------------------------------------------------
  EventLoop& loop(size_t shard = 0) { return *loops_[shard]; }
  StatsRegistry& stats(size_t shard = 0) { return loops_[shard]->stats(); }
  /// All shard registry partitions, in shard order.
  std::vector<const StatsRegistry*> shard_stats() const;
  /// Single-shard: the loop's stats JSON, byte-identical to what this
  /// method always produced. Sharded: the deterministic ordered merge of
  /// every shard partition (StatsRegistry::merged_to_json).
  std::string dump_stats();

 private:
  struct Node {
    std::string name;
    std::unique_ptr<Host> host;      ///< exactly one of host/router is set
    std::unique_ptr<Router> router;
    std::vector<IpAddr> addrs;       ///< hosts only, in connect() order
    size_t shard = 0;
  };

  struct LinkRec {
    NodeId a;
    NodeId b;
    std::unique_ptr<Link> ab;  ///< direction a->b
    std::unique_ptr<Link> ba;  ///< direction b->a
    ShardChannel* ab_ch = nullptr;  ///< set when a and b sit in
    ShardChannel* ba_ch = nullptr;  ///< different shards
  };

  PacketSink* sink_of(NodeId n) {
    return is_router(n) ? static_cast<PacketSink*>(nodes_[n].router.get())
                        : static_cast<PacketSink*>(nodes_[n].host.get());
  }

  std::vector<std::unique_ptr<EventLoop>> loops_;  ///< one per shard
  uint64_t seed_;
  size_t ring_capacity_ = 1024;
  SimTime min_cross_prop_ = 0;
  std::vector<Node> nodes_;
  std::vector<LinkRec> links_;
  std::vector<std::unique_ptr<ShardChannel>> channels_;
};

}  // namespace mptcp
