// Declarative multi-host topologies: arbitrary graphs of hosts, routers
// and links built from a spec, with automatic addressing and routing.
//
// TwoHostRig (app/harness.h) hard-wires the paper's client/server shape;
// scale-out experiments need N clients and M servers sharing bottleneck
// links through routers. A Topology owns the event loop and every node:
//
//   Topology topo(seed);
//   NodeId c = topo.add_host("client0");
//   NodeId r = topo.add_router("core");
//   NodeId s = topo.add_host("server0");
//   topo.connect(c, r, access_cfg, access_cfg);   // c gains one address
//   topo.connect(r, s, core_cfg, core_cfg);       // s gains one address
//   topo.build_routes();                          // fills router tables
//
// Addressing: every connect() whose endpoint is a host assigns that host a
// fresh interface address in a per-link /24 (10.<l/256+1>.<l%256>.1 for
// side a, .2 for side b). Multihomed hosts simply connect() several times
// and gain one address per access link -- exactly the shape MPTCP subflow
// path-pinning expects, since hosts route outgoing traffic by source
// address.
//
// Routing: build_routes() computes, for every host address A, a shortest
// path (hop count, deterministic creation-order tie-break) from every
// router to A's access link, and installs per-address next hops in each
// Router. Per-address (not per-host) routing is what keeps a multihomed
// host's subflows on distinct paths end to end. Hosts never forward, so
// paths only traverse routers.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <vector>

#include "sim/link.h"
#include "sim/network.h"

namespace mptcp {

/// Index of a node (host or router) within one Topology.
using NodeId = size_t;

class Topology {
 public:
  explicit Topology(uint64_t seed = 1) : seed_(seed) {}

  Topology(const Topology&) = delete;
  Topology& operator=(const Topology&) = delete;

  // --- construction ------------------------------------------------------
  NodeId add_host(const std::string& name);
  NodeId add_router(const std::string& name);

  /// Connects `a` and `b` with a full-duplex link pair (`cfg_ab` shapes the
  /// a->b direction). Host endpoints gain a fresh interface address on this
  /// link. Returns the link index. Loss seeds are perturbed by the topology
  /// seed and link index so every link draws an independent stream.
  size_t connect(NodeId a, NodeId b, const LinkConfig& cfg_ab,
                 const LinkConfig& cfg_ba, std::string name = "");

  /// (Re)computes every router's next-hop table; call after the graph is
  /// complete (and again after adding links mid-experiment).
  void build_routes();

  // --- node access -------------------------------------------------------
  size_t node_count() const { return nodes_.size(); }
  bool is_router(NodeId n) const { return nodes_[n].router != nullptr; }
  const std::string& node_name(NodeId n) const { return nodes_[n].name; }
  Host& host(NodeId n) {
    assert(nodes_[n].host != nullptr);
    return *nodes_[n].host;
  }
  Router& router(NodeId n) {
    assert(nodes_[n].router != nullptr);
    return *nodes_[n].router;
  }

  /// The i-th address assigned to host `n`, in connect() order.
  IpAddr addr(NodeId n, size_t i = 0) const {
    return nodes_[n].addrs.at(i);
  }
  const std::vector<IpAddr>& addrs(NodeId n) const { return nodes_[n].addrs; }

  // --- link access -------------------------------------------------------
  size_t link_count() const { return links_.size(); }
  Link& link_ab(size_t l) { return *links_[l].ab; }
  Link& link_ba(size_t l) { return *links_[l].ba; }
  NodeId link_node_a(size_t l) const { return links_[l].a; }
  NodeId link_node_b(size_t l) const { return links_[l].b; }

  /// Splices a middlebox into one direction of link `l` (a->b or b->a).
  /// Repeated splices nest: each new element is inserted directly after
  /// the link, so the most recently spliced element sees packets first.
  void splice_ab(size_t l, Middlebox& element);
  void splice_ba(size_t l, Middlebox& element);

  /// Takes both directions of link `l` up/down, plus any host interface
  /// attached to it (mobility at scale).
  void set_link_up(size_t l, bool up);

  // --- observability ------------------------------------------------------
  EventLoop& loop() { return loop_; }
  StatsRegistry& stats() { return loop_.stats(); }
  std::string dump_stats() { return loop_.stats().to_json(); }

 private:
  struct Node {
    std::string name;
    std::unique_ptr<Host> host;      ///< exactly one of host/router is set
    std::unique_ptr<Router> router;
    std::vector<IpAddr> addrs;       ///< hosts only, in connect() order
  };

  struct LinkRec {
    NodeId a;
    NodeId b;
    std::unique_ptr<Link> ab;  ///< direction a->b
    std::unique_ptr<Link> ba;  ///< direction b->a
  };

  PacketSink* sink_of(NodeId n) {
    return is_router(n) ? static_cast<PacketSink*>(nodes_[n].router.get())
                        : static_cast<PacketSink*>(nodes_[n].host.get());
  }

  EventLoop loop_;
  uint64_t seed_;
  std::vector<Node> nodes_;
  std::vector<LinkRec> links_;
};

}  // namespace mptcp
