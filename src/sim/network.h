// Hosts, routing and demultiplexing.
//
// Topology model: each host owns one or more interfaces, each bound to a
// local address and an outgoing PacketSink (usually a Link, possibly with
// middleboxes chained behind it). Hosts route outgoing segments by their
// *source* address -- a segment sent from a given local address always
// leaves through that address's interface, which is how MPTCP subflows pin
// themselves to paths. A Classifier routes by destination address, used on
// the single-homed side of asymmetric topologies, and the Network object
// is the final hop that hands segments to the destination host.
//
// Hosts also carry an optional single-core CPU model (used by the Fig. 11
// HTTP experiment): each delivered segment occupies the CPU for a
// configurable time before the stack sees it, and protocol code can charge
// extra cycles (e.g. MPTCP key hashing) that delay subsequent segments.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/ip.h"
#include "net/rng.h"
#include "sim/event_loop.h"
#include "sim/node.h"

namespace mptcp {

/// A connection endpoint registered with a host's demux.
class SegmentHandler {
 public:
  virtual ~SegmentHandler() = default;
  virtual void on_segment(const TcpSegment& seg) = 0;
};

/// Receives SYNs for which no established connection matches.
class ListenHandler {
 public:
  virtual ~ListenHandler() = default;
  virtual void on_syn(const TcpSegment& seg) = 0;
};

/// Routes by destination address with a default route.
class Classifier : public PacketSink {
 public:
  void add_route(IpAddr dst, PacketSink* next) { routes_[dst] = next; }
  void set_default(PacketSink* next) { default_ = next; }

  void deliver(TcpSegment seg) override {
    auto it = routes_.find(seg.tuple.dst.addr);
    PacketSink* next = it != routes_.end() ? it->second : default_;
    if (next != nullptr) next->deliver(std::move(seg));
  }

 private:
  std::unordered_map<IpAddr, PacketSink*> routes_;
  PacketSink* default_ = nullptr;
};

class Host : public PacketSink {
 public:
  struct CpuConfig {
    SimTime per_segment = 0;  ///< base cost charged per delivered segment
    SimTime per_byte = 0;     ///< payload-proportional cost
  };

  Host(EventLoop& loop, std::string name);

  EventLoop& loop() { return loop_; }
  const std::string& name() const { return name_; }

  // --- interfaces -------------------------------------------------------
  /// Adds an interface with the given local address; outgoing segments
  /// whose source address matches leave via `out`.
  void add_interface(IpAddr addr, PacketSink* out);
  void set_interface_up(IpAddr addr, bool up);
  bool interface_up(IpAddr addr) const;
  std::vector<IpAddr> addresses() const;
  bool owns_address(IpAddr addr) const;

  // --- sending ----------------------------------------------------------
  /// Sends a segment out of the interface owning seg.tuple.src.addr.
  /// Segments from unknown or downed interfaces are dropped (counted).
  void send(TcpSegment seg);
  uint64_t send_drops() const { return send_drops_; }

  // --- receiving / demux -------------------------------------------------
  void deliver(TcpSegment seg) override;

  /// Registers a handler for segments addressed to `local` coming from
  /// `remote` (both exact).
  void bind(const Endpoint& local, const Endpoint& remote,
            SegmentHandler* handler);
  void unbind(const Endpoint& local, const Endpoint& remote);

  /// Registers a listener on a local port (any local address).
  void listen(Port port, ListenHandler* handler);
  void unlisten(Port port);

  Port alloc_ephemeral_port() {
    if (next_ephemeral_ < 1024) next_ephemeral_ = 1024;  // wrapped around
    return next_ephemeral_++;
  }

  // --- CPU model ---------------------------------------------------------
  void set_cpu(CpuConfig cfg) { cpu_ = cfg; }
  /// Charges extra CPU time from within segment processing; extends the
  /// busy period seen by subsequent segments.
  void charge_cpu(SimTime cost) { cpu_free_at_ += cost; }
  SimTime cpu_busy_total() const { return cpu_busy_total_; }

  uint64_t delivered_segments() const { return delivered_segments_; }
  uint64_t demux_misses() const { return demux_misses_; }

 private:
  void process(const TcpSegment& seg);
  void process_queued();

  struct Interface {
    IpAddr addr;
    PacketSink* out = nullptr;
    bool up = true;
  };

  EventLoop& loop_;
  std::string name_;
  std::vector<Interface> ifaces_;
  std::map<std::pair<Endpoint, Endpoint>, SegmentHandler*> conns_;
  std::unordered_map<Port, ListenHandler*> listeners_;
  Port next_ephemeral_ = 40000;

  CpuConfig cpu_;
  SimTime cpu_free_at_ = 0;
  SimTime cpu_busy_total_ = 0;
  /// Segments awaiting the modelled CPU. Completion times are scheduled in
  /// non-decreasing order (cpu_free_at_ is monotonic), so each completion
  /// event processes the front -- the queue keeps segments out of the event
  /// closures, which stay allocation-free.
  std::deque<TcpSegment> cpu_pending_;

  uint64_t send_drops_ = 0;
  uint64_t delivered_segments_ = 0;
  uint64_t demux_misses_ = 0;
};

/// A named store-and-forward node: routes segments by destination address
/// through a next-hop table, with an optional default route. Unlike Host a
/// router keeps no transport state, and unlike the bare Classifier it is
/// an observable node -- forwarded/dropped counts publish to the stats
/// registry under "sim.router.<name>". Topologies (sim/topology.h) build
/// graphs of hosts and routers and fill the tables via build_routes().
class Router : public PacketSink {
 public:
  Router(EventLoop& loop, std::string name);
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  const std::string& name() const { return name_; }
  /// Registry scope ("sim.router.<name>", made collision-free).
  const std::string& stats_scope() const { return scope_; }

  void add_route(IpAddr dst, PacketSink* next) { routes_[dst] = next; }
  void set_default_route(PacketSink* next) { default_ = next; }
  void clear_routes() {
    routes_.clear();
    default_ = nullptr;
  }
  size_t route_count() const { return routes_.size(); }

  /// Forwards by destination address; segments with no matching route and
  /// no default are dropped (counted).
  void deliver(TcpSegment seg) override;

  uint64_t forwarded() const { return forwarded_; }
  uint64_t dropped_no_route() const { return dropped_no_route_; }

 private:
  EventLoop& loop_;
  std::string name_;
  std::string scope_;
  std::unordered_map<IpAddr, PacketSink*> routes_;
  PacketSink* default_ = nullptr;
  uint64_t forwarded_ = 0;
  uint64_t dropped_no_route_ = 0;
};

/// The network core: final hop that routes to destination hosts.
class Network : public PacketSink {
 public:
  void attach(IpAddr addr, PacketSink* ingress) { hosts_[addr] = ingress; }
  void attach_host(Host& host) {
    for (IpAddr a : host.addresses()) attach(a, &host);
  }

  void deliver(TcpSegment seg) override {
    auto it = hosts_.find(seg.tuple.dst.addr);
    if (it != hosts_.end()) it->second->deliver(std::move(seg));
  }

 private:
  std::unordered_map<IpAddr, PacketSink*> hosts_;
};

}  // namespace mptcp
