#include "sim/topology.h"

#include <deque>
#include <utility>

namespace mptcp {

Topology::Topology(uint64_t seed, size_t shards) : seed_(seed) {
  if (shards == 0) shards = 1;
  loops_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    loops_.push_back(std::make_unique<EventLoop>());
    // Tag non-zero shards' per-instance scope names so partitions can
    // never alias in a merged export; shard 0 stays untagged to keep
    // single-shard exports byte-identical to the pre-sharding format.
    if (s > 0) loops_.back()->stats().set_scope_tag("@s" + std::to_string(s));
  }
}

NodeId Topology::add_host(const std::string& name, size_t shard) {
  assert(shard < loops_.size());
  const NodeId id = nodes_.size();
  Node n;
  n.name = name;
  n.host = std::make_unique<Host>(*loops_[shard], name);
  n.shard = shard;
  nodes_.push_back(std::move(n));
  return id;
}

NodeId Topology::add_router(const std::string& name, size_t shard) {
  assert(shard < loops_.size());
  const NodeId id = nodes_.size();
  Node n;
  n.name = name;
  n.router = std::make_unique<Router>(*loops_[shard], name);
  n.shard = shard;
  nodes_.push_back(std::move(n));
  return id;
}

size_t Topology::connect(NodeId a, NodeId b, const LinkConfig& cfg_ab,
                         const LinkConfig& cfg_ba, std::string name) {
  assert(a < nodes_.size() && b < nodes_.size() && a != b);
  const size_t idx = links_.size();
  if (name.empty()) name = nodes_[a].name + "-" + nodes_[b].name;

  LinkConfig ab = cfg_ab;
  LinkConfig ba = cfg_ba;
  ab.loss_seed ^= seed_ * 0x9e37 + idx * 0x632be59bd9b4e019ULL;
  ba.loss_seed ^= seed_ * 0x79b9 + idx * 0xd1342543de82ef95ULL;

  // Each direction's egress machinery (queue, serialization, loss) lives
  // in the *source* node's shard; a cross-shard direction delivers
  // through a ShardChannel whose target chain runs in the destination
  // shard. The channel carries the propagation delay in its arrival
  // timestamps, so prop_delay must be positive -- it is the lookahead
  // that keeps barrier-drained handoff exact.
  const size_t sa = nodes_[a].shard;
  const size_t sb = nodes_[b].shard;
  LinkRec rec;
  rec.a = a;
  rec.b = b;
  rec.ab = std::make_unique<Link>(*loops_[sa], ab, name + "-ab");
  rec.ba = std::make_unique<Link>(*loops_[sb], ba, name + "-ba");
  if (sa == sb) {
    rec.ab->set_target(sink_of(b));
    rec.ba->set_target(sink_of(a));
  } else {
    assert(ab.prop_delay > 0 && ba.prop_delay > 0 &&
           "cross-shard links need positive propagation delay");
    auto ab_ch = std::make_unique<ShardChannel>(sa, sb, *loops_[sb],
                                                ring_capacity_);
    ab_ch->set_target(sink_of(b));
    rec.ab->set_handoff(ab_ch.get());
    rec.ab_ch = ab_ch.get();
    channels_.push_back(std::move(ab_ch));

    auto ba_ch = std::make_unique<ShardChannel>(sb, sa, *loops_[sa],
                                                ring_capacity_);
    ba_ch->set_target(sink_of(a));
    rec.ba->set_handoff(ba_ch.get());
    rec.ba_ch = ba_ch.get();
    channels_.push_back(std::move(ba_ch));

    for (SimTime prop : {ab.prop_delay, ba.prop_delay}) {
      if (min_cross_prop_ == 0 || prop < min_cross_prop_) {
        min_cross_prop_ = prop;
      }
    }
  }

  // Host endpoints gain a fresh address in this link's /24 and send out of
  // it through the matching link direction.
  const auto hi = static_cast<uint8_t>(1 + (idx >> 8));
  const auto lo = static_cast<uint8_t>(idx & 0xff);
  if (!is_router(a)) {
    const IpAddr addr_a(10, hi, lo, 1);
    nodes_[a].host->add_interface(addr_a, rec.ab.get());
    nodes_[a].addrs.push_back(addr_a);
  }
  if (!is_router(b)) {
    const IpAddr addr_b(10, hi, lo, 2);
    nodes_[b].host->add_interface(addr_b, rec.ba.get());
    nodes_[b].addrs.push_back(addr_b);
  }

  links_.push_back(std::move(rec));
  return idx;
}

void Topology::splice_ab(size_t l, Middlebox& element) {
  // On a cross-shard link the delivery chain hangs off the channel (and
  // runs on the destination shard's thread), so that is where middleboxes
  // nest.
  if (links_[l].ab_ch != nullptr) {
    element.set_downstream(links_[l].ab_ch->target());
    links_[l].ab_ch->set_target(&element);
    return;
  }
  element.set_downstream(links_[l].ab->target());
  links_[l].ab->set_target(&element);
}

void Topology::splice_ba(size_t l, Middlebox& element) {
  if (links_[l].ba_ch != nullptr) {
    element.set_downstream(links_[l].ba_ch->target());
    links_[l].ba_ch->set_target(&element);
    return;
  }
  element.set_downstream(links_[l].ba->target());
  links_[l].ba->set_target(&element);
}

void Topology::set_link_up(size_t l, bool up) {
  LinkRec& rec = links_[l];
  rec.ab->set_up(up);
  rec.ba->set_up(up);
  for (NodeId side : {rec.a, rec.b}) {
    if (is_router(side)) continue;
    // The address this host gained from link `l` is the one whose
    // interface sends into it.
    const auto hi = static_cast<uint8_t>(1 + (l >> 8));
    const auto lo = static_cast<uint8_t>(l & 0xff);
    const IpAddr addr(10, hi, lo, side == rec.a ? 1 : 2);
    nodes_[side].host->set_interface_up(addr, up);
  }
}

size_t Topology::shard_for_token(std::string_view token) const {
  uint64_t h = 14695981039346656037ULL;
  for (char c : token) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return static_cast<size_t>(h % loops_.size());
}

std::vector<const StatsRegistry*> Topology::shard_stats() const {
  std::vector<const StatsRegistry*> parts;
  parts.reserve(loops_.size());
  for (const auto& l : loops_) parts.push_back(&l->stats());
  return parts;
}

std::string Topology::dump_stats() {
  if (loops_.size() == 1) return loops_[0]->stats().to_json();
  const auto parts = shard_stats();
  return StatsRegistry::merged_to_json(parts);
}

void Topology::build_routes() {
  for (Node& n : nodes_) {
    if (n.router != nullptr) n.router->clear_routes();
  }

  // Adjacency in creation order; `back` is the reverse direction of the
  // same link (the out-link of `peer` toward this node), which is exactly
  // the next hop a BFS predecessor needs.
  struct Edge {
    NodeId peer;
    Link* out;   ///< direction node -> peer
    Link* back;  ///< direction peer -> node
  };
  std::vector<std::vector<Edge>> adj(nodes_.size());
  for (LinkRec& l : links_) {
    adj[l.a].push_back(Edge{l.b, l.ab.get(), l.ba.get()});
    adj[l.b].push_back(Edge{l.a, l.ba.get(), l.ab.get()});
  }

  // Scratch state for the per-address BFS below, reused across addresses.
  std::vector<int> visited(nodes_.size(), 0);
  std::vector<Link*> via(nodes_.size(), nullptr);  // next hop toward source
  int epoch = 0;

  for (size_t li = 0; li < links_.size(); ++li) {
    LinkRec& lrec = links_[li];
    // Each host endpoint contributes one routable address; seed a BFS at
    // the far end of its access link.
    for (int side = 0; side < 2; ++side) {
      const NodeId h = side == 0 ? lrec.a : lrec.b;
      const NodeId u = side == 0 ? lrec.b : lrec.a;
      if (is_router(h)) continue;
      const IpAddr addr(10, static_cast<uint8_t>(1 + (li >> 8)),
                        static_cast<uint8_t>(li & 0xff), side == 0 ? 1 : 2);
      Link* toward_h = side == 0 ? lrec.ba.get() : lrec.ab.get();

      if (!is_router(u)) continue;  // host-to-host link: direct, no routing
      nodes_[u].router->add_route(addr, toward_h);

      // BFS over the router mesh from `u`; hosts are leaves (they never
      // forward), so only routers are expanded. First-discovered wins on
      // equal hop counts -- deterministic by construction order.
      ++epoch;
      std::deque<NodeId> queue;
      visited[u] = epoch;
      queue.push_back(u);
      while (!queue.empty()) {
        const NodeId n = queue.front();
        queue.pop_front();
        for (const Edge& e : adj[n]) {
          if (visited[e.peer] == epoch) continue;
          visited[e.peer] = epoch;
          via[e.peer] = e.back;
          if (!is_router(e.peer)) continue;
          nodes_[e.peer].router->add_route(addr, via[e.peer]);
          queue.push_back(e.peer);
        }
      }
    }
  }
}

}  // namespace mptcp
