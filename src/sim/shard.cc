#include "sim/shard.h"

#include <barrier>
#include <thread>
#include <utility>

#include "sim/topology.h"

namespace mptcp {

void ShardChannel::send(SimTime arrival, TcpSegment seg) {
  // Detach the payload before it crosses threads: refcounts are
  // non-atomic and the backing block came from the producer thread's
  // pool, so the consumer must never see a buffer anyone else still
  // references.
  if (!seg.payload.empty()) {
    seg.payload = Payload(seg.payload.span());
  }
  ++pushed_;
  HandoffItem item{arrival, std::move(seg)};
  if (!ring_.try_push(std::move(item))) {
    // The ring cannot drain before the next barrier, so blocking here
    // would deadlock the epoch; spill instead. FIFO survives: once the
    // ring is full it stays full for the rest of the epoch, so every
    // later send this epoch spills behind this one.
    ++spilled_;
    overflow_.push_back(std::move(item));
  }
}

size_t ShardChannel::drain() {
  size_t n = 0;
  const auto deliver_at = [this](HandoffItem item) {
    dst_loop_.schedule_at(
        item.arrival, [this, seg = std::move(item.seg)]() mutable {
          if (target_ != nullptr) target_->deliver(std::move(seg));
        });
  };
  HandoffItem item;
  while (ring_.try_pop(item)) {
    deliver_at(std::move(item));
    ++n;
  }
  for (HandoffItem& spilled : overflow_) {
    deliver_at(std::move(spilled));
    ++n;
  }
  overflow_.clear();
  delivered_ += n;
  return n;
}

ShardedEngine::ShardedEngine(Topology& topo, Config cfg) : topo_(topo) {
  inbound_.resize(topo_.shard_count());
  for (const auto& ch : topo_.channels()) {
    inbound_[ch->dst_shard()].push_back(ch.get());
  }
  const SimTime bound = topo_.min_cross_prop();
  quantum_ = cfg.quantum;
  if (bound > 0 && (quantum_ <= 0 || quantum_ > bound)) quantum_ = bound;
  if (bound == 0) quantum_ = 0;  // no cross-shard links: one epoch per run
}

void ShardedEngine::run_until(SimTime t) {
  const size_t shards = topo_.shard_count();
  if (shards <= 1) {
    topo_.loop(0).run_until(t);
    return;
  }
  // All loops sit at the same virtual time between runs (lockstep
  // invariant), so shard 0's clock is everyone's clock.
  const SimTime start = topo_.loop(0).now();
  if (t <= start) return;
  const SimTime q = quantum_ > 0 ? quantum_ : t - start;
  epochs_ += static_cast<uint64_t>((t - start + q - 1) / q);

  std::barrier<> bar(static_cast<ptrdiff_t>(shards));
  std::vector<std::thread> workers;
  workers.reserve(shards - 1);
  for (size_t s = 1; s < shards; ++s) {
    workers.emplace_back(
        [this, s, start, t, q, &bar] { run_epochs(s, start, t, q, &bar); });
  }
  run_epochs(0, start, t, q, &bar);
  for (std::thread& w : workers) w.join();
}

void ShardedEngine::run_epochs(size_t shard, SimTime start, SimTime t_end,
                               SimTime q, void* barrier) {
  auto& bar = *static_cast<std::barrier<>*>(barrier);
  EventLoop& loop = topo_.loop(shard);
  SimTime at = start;
  while (at < t_end) {
    const SimTime next = (t_end - at <= q) ? t_end : at + q;
    loop.run_until(next);
    // First barrier: every producer finished the epoch, so rings and
    // overflow vectors are quiescent and safe to read from this thread.
    bar.arrive_and_wait();
    for (ShardChannel* ch : inbound_[shard]) ch->drain();
    // Second barrier: all drains are done before any shard produces into
    // the rings again next epoch.
    bar.arrive_and_wait();
    at = next;
  }
  // The final drain can schedule arrivals at exactly t_end (depart at
  // t_end - prop in the last epoch); they belong to this run. Anything
  // they send cross-shard arrives at >= t_end + quantum and waits in the
  // rings for the next run's first barrier.
  loop.run_until(t_end);
}

uint64_t ShardedEngine::handoff_packets() const {
  uint64_t n = 0;
  for (const auto& ch : topo_.channels()) n += ch->pushed();
  return n;
}

uint64_t ShardedEngine::handoff_spills() const {
  uint64_t n = 0;
  for (const auto& ch : topo_.channels()) n += ch->spilled();
  return n;
}

}  // namespace mptcp
