// Lightweight measurement utilities: time series, summary statistics,
// histograms and a periodic sampler. Used by tests, benches and examples
// to reproduce the paper's plots as printed tables.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/event_loop.h"

namespace mptcp {

/// A sampled time series of doubles.
class TimeSeries {
 public:
  void record(SimTime t, double v) { samples_.push_back({t, v}); }

  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const {
    if (samples_.empty()) return 0.0;
    double s = 0;
    for (const auto& p : samples_) s += p.value;
    return s / static_cast<double>(samples_.size());
  }

  double max() const {
    double m = 0;
    for (const auto& p : samples_) m = std::max(m, p.value);
    return m;
  }

  double last() const { return samples_.empty() ? 0.0 : samples_.back().value; }

  /// Mean restricted to samples taken at or after `t0` (skips warm-up).
  double mean_after(SimTime t0) const {
    double s = 0;
    size_t n = 0;
    for (const auto& p : samples_) {
      if (p.t >= t0) {
        s += p.value;
        ++n;
      }
    }
    return n == 0 ? 0.0 : s / static_cast<double>(n);
  }

  struct Sample {
    SimTime t;
    double value;
  };
  const std::vector<Sample>& samples() const { return samples_; }

 private:
  std::vector<Sample> samples_;
};

/// Summary statistics over a bag of values (no time dimension).
class Distribution {
 public:
  void add(double v) { values_.push_back(v); }
  size_t count() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double mean() const {
    if (values_.empty()) return 0.0;
    double s = 0;
    for (double v : values_) s += v;
    return s / static_cast<double>(values_.size());
  }

  double min() const {
    return values_.empty()
               ? 0.0
               : *std::min_element(values_.begin(), values_.end());
  }

  double max() const {
    return values_.empty()
               ? 0.0
               : *std::max_element(values_.begin(), values_.end());
  }

  double stddev() const {
    if (values_.size() < 2) return 0.0;
    const double m = mean();
    double s = 0;
    for (double v : values_) s += (v - m) * (v - m);
    return std::sqrt(s / static_cast<double>(values_.size() - 1));
  }

  /// p in [0,1]; nearest-rank percentile.
  double percentile(double p) const {
    if (values_.empty()) return 0.0;
    std::vector<double> sorted = values_;
    std::sort(sorted.begin(), sorted.end());
    const size_t idx = std::min(
        sorted.size() - 1,
        static_cast<size_t>(p * static_cast<double>(sorted.size())));
    return sorted[idx];
  }

  /// Normalized histogram (fractions summing to ~1) with `bins` equal bins
  /// over [lo, hi); out-of-range values are clamped into the edge bins.
  std::vector<double> histogram(double lo, double hi, size_t bins) const {
    std::vector<double> h(bins, 0.0);
    if (values_.empty() || bins == 0 || hi <= lo) return h;
    for (double v : values_) {
      double f = (v - lo) / (hi - lo);
      size_t b = f <= 0.0 ? 0
                 : f >= 1.0
                     ? bins - 1
                     : static_cast<size_t>(f * static_cast<double>(bins));
      h[std::min(b, bins - 1)] += 1.0;
    }
    for (double& x : h) x /= static_cast<double>(values_.size());
    return h;
  }

  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

/// Invokes a callback every `period` until stopped or the loop drains.
class PeriodicSampler {
 public:
  PeriodicSampler(EventLoop& loop, SimTime period,
                  std::function<void(SimTime)> fn)
      : loop_(loop),
        period_(period),
        fn_(std::move(fn)),
        timer_(loop, [this] { tick(); }) {
    timer_.arm_in(period_);
  }

  void stop() { timer_.cancel(); }

 private:
  void tick() {
    fn_(loop_.now());
    timer_.arm_in(period_);
  }

  EventLoop& loop_;
  SimTime period_;
  std::function<void(SimTime)> fn_;
  Timer timer_;
};

}  // namespace mptcp
