#include "sim/link.h"

#include <utility>

#include "sim/shard.h"

namespace mptcp {

Link::Link(EventLoop& loop, LinkConfig config, std::string name)
    : loop_(loop),
      config_(config),
      name_(std::move(name)),
      rng_(config.loss_seed) {
  StatsRegistry& reg = loop_.stats();
  scope_ = reg.unique_scope("sim.link." + name_);
  reg.sampled(scope_ + ".enqueued_pkts",
              [this] { return static_cast<double>(stats_.enqueued_pkts); });
  reg.sampled(scope_ + ".delivered_pkts",
              [this] { return static_cast<double>(stats_.delivered_pkts); });
  reg.sampled(scope_ + ".delivered_bytes",
              [this] { return static_cast<double>(stats_.delivered_bytes); });
  reg.sampled(scope_ + ".dropped_overflow",
              [this] { return static_cast<double>(stats_.dropped_overflow); });
  reg.sampled(scope_ + ".dropped_loss",
              [this] { return static_cast<double>(stats_.dropped_loss); });
  reg.sampled(scope_ + ".dropped_down",
              [this] { return static_cast<double>(stats_.dropped_down); });
  reg.sampled(scope_ + ".queued_bytes",
              [this] { return static_cast<double>(queued_bytes_); });
  occupancy_hist_ = &reg.histogram(scope_ + ".occupancy_bytes");
}

Link::~Link() { loop_.stats().remove_scope(scope_); }

void Link::deliver(TcpSegment seg) {
  if (!up_) {
    ++stats_.dropped_down;
    return;
  }
  // An empty queue always admits one packet even if it exceeds the
  // configured buffer; otherwise a buffer smaller than one MTU would
  // black-hole the link entirely.
  const size_t size = seg.wire_size();
  if (queued_bytes_ + size > config_.buffer_bytes && !queue_.empty()) {
    ++stats_.dropped_overflow;
    return;
  }
  ++stats_.enqueued_pkts;
  queued_bytes_ += size;
  occupancy_hist_->record(queued_bytes_);
  queue_.push_back(std::move(seg));
  if (!transmitting_) start_transmission();
}

void Link::start_transmission() {
  if (queue_.empty()) {
    transmitting_ = false;
    return;
  }
  transmitting_ = true;
  const size_t size = queue_.front().wire_size();
  const double tx_seconds = static_cast<double>(size) * 8.0 / config_.rate_bps;
  const SimTime tx_time =
      static_cast<SimTime>(tx_seconds * static_cast<double>(kSecond));
  loop_.schedule_in(tx_time, [this] { finish_transmission(); });
}

void Link::finish_transmission() {
  TcpSegment seg = std::move(queue_.front());
  queue_.pop_front();
  queued_bytes_ -= seg.wire_size();

  if (!up_) {
    ++stats_.dropped_down;
  } else if (config_.loss_prob > 0.0 && rng_.chance(config_.loss_prob)) {
    ++stats_.dropped_loss;
  } else if (handoff_ != nullptr) {
    ++stats_.delivered_pkts;
    stats_.delivered_bytes += seg.wire_size();
    handoff_->send(loop_.now() + config_.prop_delay, std::move(seg));
  } else if (target_ != nullptr) {
    ++stats_.delivered_pkts;
    stats_.delivered_bytes += seg.wire_size();
    in_flight_.push_back(InFlight{target_, std::move(seg)});
    loop_.schedule_in(config_.prop_delay, [this] { deliver_in_flight(); });
  }
  start_transmission();
}

void Link::deliver_in_flight() {
  InFlight f = std::move(in_flight_.front());
  in_flight_.pop_front();
  f.target->deliver(std::move(f.seg));
}

}  // namespace mptcp
