// Packet capture: dump simulated traffic as a standard pcap file.
//
// A PcapTap is an in-path element (like a middlebox) that records every
// segment it forwards, serialized through the real wire codec with a
// minimal IPv4 header, at the simulation's nanosecond timestamps. The
// resulting file opens in Wireshark/tcpdump, whose TCP and MPTCP
// dissectors then validate our wire format for free -- and make
// simulated experiments debuggable the way real ones are.
#pragma once

#include <cstdio>
#include <string>

#include "sim/event_loop.h"
#include "sim/node.h"

namespace mptcp {

class PcapWriter {
 public:
  /// Opens `path` and writes the pcap global header (nanosecond format,
  /// LINKTYPE_RAW: packets begin with the IPv4 header).
  explicit PcapWriter(const std::string& path);
  ~PcapWriter();

  PcapWriter(const PcapWriter&) = delete;
  PcapWriter& operator=(const PcapWriter&) = delete;

  bool ok() const { return file_ != nullptr; }
  uint64_t packets_written() const { return packets_; }

  /// Serializes the segment (IPv4 + TCP, real wire bytes) at time `t`.
  void record(SimTime t, const TcpSegment& seg);

 private:
  std::FILE* file_ = nullptr;
  uint64_t packets_ = 0;
};

/// In-path tap: records and forwards to its downstream.
class PcapTap : public Middlebox {
 public:
  PcapTap(EventLoop& loop, PcapWriter& writer)
      : loop_(loop), writer_(writer) {}

  void deliver(TcpSegment seg) override {
    writer_.record(loop_.now(), seg);
    emit(std::move(seg));
  }

 private:
  EventLoop& loop_;
  PcapWriter& writer_;
};

}  // namespace mptcp
