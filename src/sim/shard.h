// Sharded multi-core execution of one Topology: conservative parallel
// discrete-event simulation with deterministic cross-shard handoff.
//
// A Topology built with `shards > 1` partitions its nodes across shards;
// each shard owns one EventLoop (and therefore one StatsRegistry
// partition) and is driven by one worker thread. Links whose endpoints
// live in different shards keep their egress machinery (queue,
// serialization, loss) in the source shard and hand finished segments to
// the destination shard through a ShardChannel: a bounded SPSC ring plus
// a producer-owned overflow spill.
//
// Synchronization is epoch-based and conservative. All shards advance
// virtual time in lockstep through a fixed quantum Q chosen no larger
// than the smallest cross-shard propagation delay (the "lookahead").
// During an epoch [kQ, (k+1)Q) every shard runs only its own loop;
// a segment departing at time t arrives at t + prop >= (k+1)Q, i.e.
// never inside the current epoch. At the barrier every shard drains its
// inbound channels -- in fixed channel order, each channel FIFO -- and
// schedules the arrivals into its own loop at their exact virtual
// arrival times. Arrival timestamps are thus bit-identical to a
// single-shard execution; only the tie-break order of *exactly*
// equal-timestamp events on one loop can differ between shard counts.
// For a fixed shard count the whole execution is deterministic, which is
// the contract `sim_digest --shards N` pins in CI.
//
// Thread-safety contract: a shard's loop, nodes, links, sockets and
// registry partition are touched only by that shard's worker thread
// while run_until() is executing (and only by the caller's thread
// before/after). Payload buffers are refcounted *non-atomically*, so
// ShardChannel::send() detaches the payload -- one copy into a fresh
// buffer -- before a segment crosses threads; this is the only byte copy
// the handoff costs.
#pragma once

#include <cstdint>
#include <vector>

#include "net/segment.h"
#include "sim/event_loop.h"
#include "sim/node.h"
#include "sim/spsc.h"

namespace mptcp {

/// One segment in flight between shards: delivery time plus the segment
/// itself (payload already detached from producer-shard buffers).
struct HandoffItem {
  SimTime arrival = 0;
  TcpSegment seg;
};

/// One direction of one cross-shard link. The producer side lives with
/// the link in the source shard; drain() runs on the destination shard's
/// thread at epoch barriers only.
class ShardChannel {
 public:
  ShardChannel(size_t src_shard, size_t dst_shard, EventLoop& dst_loop,
               size_t ring_capacity)
      : src_shard_(src_shard), dst_shard_(dst_shard), dst_loop_(dst_loop),
        ring_(ring_capacity) {}

  ShardChannel(const ShardChannel&) = delete;
  ShardChannel& operator=(const ShardChannel&) = delete;

  size_t src_shard() const { return src_shard_; }
  size_t dst_shard() const { return dst_shard_; }

  /// Head of the destination-side delivery chain. splice() on a
  /// cross-shard link prepends middleboxes here, exactly as it would
  /// retarget an intra-shard link.
  PacketSink* target() const { return target_; }
  void set_target(PacketSink* t) { target_ = t; }

  /// Producer side: hands a segment off for delivery at `arrival`.
  /// Detaches the payload (non-atomic refcounts must not cross threads)
  /// and spills to the overflow vector when the ring is full -- the ring
  /// cannot drain mid-epoch, so blocking here would deadlock the epoch.
  void send(SimTime arrival, TcpSegment seg);

  /// Consumer side, barrier-only: schedules every queued segment into
  /// the destination loop at its arrival time (ring first, then
  /// overflow, preserving producer FIFO order) and returns how many
  /// were drained. The caller must guarantee the producer is quiesced
  /// (the engine's barrier does).
  size_t drain();

  // --- introspection (read at barriers / after the run) -----------------
  uint64_t pushed() const { return pushed_; }
  uint64_t spilled() const { return spilled_; }
  uint64_t delivered() const { return delivered_; }
  size_t ring_capacity() const { return ring_.capacity(); }

 private:
  const size_t src_shard_;
  const size_t dst_shard_;
  EventLoop& dst_loop_;
  PacketSink* target_ = nullptr;

  SpscRing<HandoffItem> ring_;
  /// Backpressure spill, written only by the producer thread mid-epoch
  /// and read/cleared only by the consumer thread at barriers; the
  /// engine's barrier provides the happens-before edges.
  std::vector<HandoffItem> overflow_;

  // Producer-written counters and consumer-written counters on separate
  // cache lines; each is read by other threads only across a barrier.
  alignas(64) uint64_t pushed_ = 0;
  uint64_t spilled_ = 0;
  alignas(64) uint64_t delivered_ = 0;
};

class Topology;

/// Drives every shard of a Topology to a target virtual time in lockstep
/// epochs. With one shard this degenerates to a plain run_until() on the
/// calling thread; with N shards it spawns one worker thread per shard.
class ShardedEngine {
 public:
  struct Config {
    /// Epoch quantum; 0 = auto (the smallest cross-shard propagation
    /// delay, or one single epoch when no link crosses shards). Values
    /// above the auto bound are clamped to it -- a larger quantum would
    /// let a segment arrive in the epoch it was sent in and break the
    /// conservative contract.
    SimTime quantum = 0;
  };

  explicit ShardedEngine(Topology& topo) : ShardedEngine(topo, Config{}) {}
  ShardedEngine(Topology& topo, Config cfg);

  /// Runs every shard to virtual time `t`. Blocks until all shards (and
  /// all cross-shard deliveries scheduled before `t`) are done.
  void run_until(SimTime t);

  SimTime quantum() const { return quantum_; }
  uint64_t epochs() const { return epochs_; }
  /// Segments handed across shards / spilled past a full ring so far.
  uint64_t handoff_packets() const;
  uint64_t handoff_spills() const;

 private:
  void run_epochs(size_t shard, SimTime start, SimTime t_end, SimTime q,
                  void* barrier);

  Topology& topo_;
  SimTime quantum_ = 0;
  uint64_t epochs_ = 0;
  /// Channels grouped by destination shard, in creation (link) order --
  /// the drain order every barrier uses, part of the determinism
  /// contract.
  std::vector<std::vector<ShardChannel*>> inbound_;
};

}  // namespace mptcp
