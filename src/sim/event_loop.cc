#include "sim/event_loop.h"

#include <utility>

namespace mptcp {

EventLoop::EventId EventLoop::schedule_at(SimTime t, Callback cb) {
  if (t < now_) t = now_;
  const EventId id = next_id_++;
  queue_.push(QueueEntry{t, id});
  pending_.emplace(id, std::move(cb));
  return id;
}

bool EventLoop::run_one() {
  while (!queue_.empty()) {
    const QueueEntry e = queue_.top();
    queue_.pop();
    auto it = pending_.find(e.id);
    if (it == pending_.end()) continue;  // cancelled
    Callback cb = std::move(it->second);
    pending_.erase(it);
    now_ = e.t;
    cb();
    return true;
  }
  return false;
}

void EventLoop::run_until(SimTime t) {
  while (!queue_.empty()) {
    const QueueEntry e = queue_.top();
    if (pending_.find(e.id) == pending_.end()) {
      queue_.pop();
      continue;
    }
    if (e.t > t) break;
    run_one();
  }
  if (now_ < t) now_ = t;
}

void EventLoop::run() {
  while (run_one()) {
  }
}

}  // namespace mptcp
