#include "sim/event_loop.h"

#include <utility>

#include "net/payload.h"

namespace mptcp {

EventLoop::EventLoop() {
  // Each simulation starts with a cold payload pool and fresh pool stats,
  // so identical runs in one process export identical stats (determinism
  // tests compare stats JSON across in-process runs).
  Payload::pool_reset();
  stats_.sampled("payload.pool.hits", [] {
    return static_cast<double>(Payload::pool_stats().hits);
  });
  stats_.sampled("payload.pool.misses", [] {
    return static_cast<double>(Payload::pool_stats().misses);
  });
  stats_.sampled("sim.events_scheduled",
                 [this] { return static_cast<double>(ev_scheduled_); });
  stats_.sampled("sim.events_cancelled",
                 [this] { return static_cast<double>(ev_cancelled_); });
  stats_.sampled("sim.events_fired",
                 [this] { return static_cast<double>(ev_fired_); });
  stats_.sampled("sim.heap_compactions",
                 [this] { return static_cast<double>(compactions_); });
  stats_.sampled("sim.events_live",
                 [this] { return static_cast<double>(live_); });
  stats_.sampled("sim.now_ns",
                 [this] { return static_cast<double>(now_); });
}

uint32_t EventLoop::alloc_slot() {
  if (free_head_ != kNilSlot) {
    const uint32_t s = free_head_;
    free_head_ = slots_[s].next_free;
    slots_[s].next_free = kNilSlot;
    return s;
  }
  slots_.emplace_back();
  return static_cast<uint32_t>(slots_.size() - 1);
}

void EventLoop::free_slot(uint32_t s) {
  Slot& sl = slots_[s];
  sl.cb = nullptr;  // release captured state now, not at compaction time
  if (++sl.gen == 0) sl.gen = 1;  // generation 0 stays invalid forever
  sl.next_free = free_head_;
  free_head_ = s;
}

void EventLoop::sift_up(size_t i) {
  HeapEntry e = heap_[i];
  while (i > 0) {
    const size_t parent = (i - 1) / 2;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventLoop::sift_down(size_t i) {
  const size_t n = heap_.size();
  HeapEntry e = heap_[i];
  for (;;) {
    size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
    if (!earlier(heap_[child], e)) break;
    heap_[i] = heap_[child];
    i = child;
  }
  heap_[i] = e;
}

void EventLoop::pop_top() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventLoop::drop_dead_tops() {
  while (!heap_.empty() && !entry_live(heap_.front())) pop_top();
}

void EventLoop::maybe_compact() {
  // Compact when cancelled entries outnumber live ones 3:1. The threshold
  // of 64 avoids churn on tiny heaps; the 4x factor amortizes the O(n)
  // sweep over at least ~n/2 cancellations, keeping scheduling O(log n)
  // amortized while bounding memory at O(live).
  if (heap_.size() < 64 || heap_.size() < 4 * live_) return;
  ++compactions_;
  size_t kept = 0;
  for (size_t i = 0; i < heap_.size(); ++i) {
    if (entry_live(heap_[i])) heap_[kept++] = heap_[i];
  }
  heap_.resize(kept);
  // Floyd heap construction; ordering among survivors is fully determined
  // by the (t, seq) key, so compaction cannot perturb event order.
  for (size_t i = kept / 2; i-- > 0;) sift_down(i);
}

EventLoop::EventId EventLoop::schedule_at(SimTime t, Callback cb) {
  if (t < now_) t = now_;
  const uint32_t s = alloc_slot();
  slots_[s].cb = std::move(cb);
  heap_.push_back(HeapEntry{t, next_seq_++, s, slots_[s].gen});
  sift_up(heap_.size() - 1);
  ++live_;
  ++ev_scheduled_;
  return (static_cast<EventId>(slots_[s].gen) << 32) | s;
}

void EventLoop::cancel(EventId id) {
  const uint32_t s = static_cast<uint32_t>(id);
  const uint32_t gen = static_cast<uint32_t>(id >> 32);
  if (gen == 0 || s >= slots_.size() || slots_[s].gen != gen) return;
  free_slot(s);
  --live_;
  ++ev_cancelled_;
  maybe_compact();
}

bool EventLoop::run_one() {
  for (;;) {
    if (heap_.empty()) return false;
    const HeapEntry e = heap_.front();
    pop_top();
    if (!entry_live(e)) continue;  // lazily-cancelled
    Callback cb = std::move(slots_[e.slot].cb);
    free_slot(e.slot);
    --live_;
    ++ev_fired_;
    now_ = e.t;
    cb();
    return true;
  }
}

void EventLoop::run_until(SimTime t) {
  for (;;) {
    drop_dead_tops();
    if (heap_.empty() || heap_.front().t > t) break;
    run_one();
  }
  if (now_ < t) now_ = t;
}

void EventLoop::run() {
  while (run_one()) {
  }
}

}  // namespace mptcp
