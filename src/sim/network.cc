#include "sim/network.h"

#include <utility>

namespace mptcp {

Host::Host(EventLoop& loop, std::string name)
    : loop_(loop), name_(std::move(name)) {}

void Host::add_interface(IpAddr addr, PacketSink* out) {
  ifaces_.push_back(Interface{addr, out, true});
}

void Host::set_interface_up(IpAddr addr, bool up) {
  for (auto& i : ifaces_) {
    if (i.addr == addr) i.up = up;
  }
}

bool Host::interface_up(IpAddr addr) const {
  for (const auto& i : ifaces_) {
    if (i.addr == addr) return i.up;
  }
  return false;
}

std::vector<IpAddr> Host::addresses() const {
  std::vector<IpAddr> out;
  out.reserve(ifaces_.size());
  for (const auto& i : ifaces_) out.push_back(i.addr);
  return out;
}

bool Host::owns_address(IpAddr addr) const {
  for (const auto& i : ifaces_) {
    if (i.addr == addr) return true;
  }
  return false;
}

void Host::send(TcpSegment seg) {
  for (auto& i : ifaces_) {
    if (i.addr == seg.tuple.src.addr) {
      if (!i.up || i.out == nullptr) {
        ++send_drops_;
        return;
      }
      i.out->deliver(std::move(seg));
      return;
    }
  }
  ++send_drops_;
}

void Host::deliver(TcpSegment seg) {
  ++delivered_segments_;
  const SimTime cost =
      cpu_.per_segment +
      cpu_.per_byte * static_cast<SimTime>(seg.payload_size());
  if (cost == 0) {
    process(seg);
    return;
  }
  // Single-core FIFO CPU: the segment is handled once the core has worked
  // through its backlog plus this segment's own cost.
  const SimTime start = std::max(loop_.now(), cpu_free_at_);
  cpu_free_at_ = start + cost;
  cpu_busy_total_ += cost;
  cpu_pending_.push_back(std::move(seg));
  loop_.schedule_at(cpu_free_at_, [this] { process_queued(); });
}

void Host::process_queued() {
  TcpSegment seg = std::move(cpu_pending_.front());
  cpu_pending_.pop_front();
  process(seg);
}

void Host::process(const TcpSegment& seg) {
  auto it = conns_.find({seg.tuple.dst, seg.tuple.src});
  if (it != conns_.end()) {
    it->second->on_segment(seg);
    return;
  }
  if (seg.syn && !seg.ack_flag) {
    auto lit = listeners_.find(seg.tuple.dst.port);
    if (lit != listeners_.end()) {
      lit->second->on_syn(seg);
      return;
    }
  }
  ++demux_misses_;
}

void Host::bind(const Endpoint& local, const Endpoint& remote,
                SegmentHandler* handler) {
  conns_[{local, remote}] = handler;
}

void Host::unbind(const Endpoint& local, const Endpoint& remote) {
  conns_.erase({local, remote});
}

Router::Router(EventLoop& loop, std::string name)
    : loop_(loop), name_(std::move(name)) {
  StatsRegistry& reg = loop_.stats();
  scope_ = reg.unique_scope("sim.router." + name_);
  reg.sampled(scope_ + ".forwarded",
              [this] { return static_cast<double>(forwarded_); });
  reg.sampled(scope_ + ".dropped_no_route",
              [this] { return static_cast<double>(dropped_no_route_); });
}

Router::~Router() { loop_.stats().remove_scope(scope_); }

void Router::deliver(TcpSegment seg) {
  auto it = routes_.find(seg.tuple.dst.addr);
  PacketSink* next = it != routes_.end() ? it->second : default_;
  if (next == nullptr) {
    ++dropped_no_route_;
    return;
  }
  ++forwarded_;
  next->deliver(std::move(seg));
}

void Host::listen(Port port, ListenHandler* handler) {
  listeners_[port] = handler;
}

void Host::unlisten(Port port) { listeners_.erase(port); }

}  // namespace mptcp
