// Bounded single-producer single-consumer ring for cross-shard handoff.
//
// One thread pushes, one thread pops; the ring itself is wait-free in
// both directions (one acquire load + one release store per operation).
// Capacity is fixed at construction and rounded up to a power of two so
// index masking is a single AND.
//
// The sharded engine (sim/shard.h) drains rings only at epoch barriers,
// which means a full ring cannot empty mid-epoch -- producers must not
// spin on try_push(). The engine's channels therefore treat a false
// return as backpressure and spill to a producer-owned overflow vector
// that the consumer reads after the barrier (the barrier provides the
// happens-before edge for the plain vector).
#pragma once

#include <atomic>
#include <bit>
#include <cstddef>
#include <vector>

namespace mptcp {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(size_t capacity)
      : mask_(std::bit_ceil(capacity < 2 ? size_t{2} : capacity) - 1),
        slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  size_t capacity() const { return mask_ + 1; }

  /// Producer side. Returns false (and leaves `v` untouched) when full.
  bool try_push(T&& v) {
    const size_t tail = tail_.load(std::memory_order_relaxed);
    const size_t head = head_.load(std::memory_order_acquire);
    if (tail - head > mask_) return false;  // full
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when empty.
  bool try_pop(T& out) {
    const size_t head = head_.load(std::memory_order_relaxed);
    const size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;  // empty
    out = std::move(slots_[head & mask_]);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Entries currently queued, as seen from either thread (approximate
  /// while the other side is active; exact at a barrier).
  size_t size() const {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }
  bool empty() const { return size() == 0; }

 private:
  const size_t mask_;
  std::vector<T> slots_;
  // Producer and consumer cursors on separate cache lines so the two
  // threads' stores do not false-share.
  alignas(64) std::atomic<size_t> tail_{0};  ///< next write (producer)
  alignas(64) std::atomic<size_t> head_{0};  ///< next read (consumer)
};

}  // namespace mptcp
