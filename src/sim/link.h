// A unidirectional link: serialization at a fixed rate, a drop-tail buffer
// of bounded byte size, fixed propagation delay, and optional Bernoulli
// loss. Two of these back-to-back model a full-duplex path.
//
// The paper's emulated paths are expressed directly in this vocabulary,
// e.g. "WiFi" = 8 Mbps, 20 ms RTT (10 ms per direction), 80 ms of buffer.
#pragma once

#include <deque>
#include <string>

#include "net/rng.h"
#include "sim/event_loop.h"
#include "sim/node.h"

namespace mptcp {

class ShardChannel;

struct LinkConfig {
  double rate_bps = 10e6;
  SimTime prop_delay = 10 * kMillisecond;  ///< one-way propagation
  size_t buffer_bytes = 64 * 1024;         ///< drop-tail queue capacity
  double loss_prob = 0.0;                  ///< i.i.d. loss, applied at egress
  uint64_t loss_seed = 1;

  /// Convenience: buffer sized to hold `ms` milliseconds at the link rate,
  /// the way the paper specifies buffers ("80ms buffer", "2s buffer").
  static size_t buffer_for_delay(double rate_bps, SimTime buf_delay) {
    return static_cast<size_t>(rate_bps / 8.0 * to_seconds(buf_delay));
  }
};

class Link : public PacketSink {
 public:
  struct Stats {
    uint64_t enqueued_pkts = 0;
    uint64_t delivered_pkts = 0;
    uint64_t delivered_bytes = 0;
    uint64_t dropped_overflow = 0;
    uint64_t dropped_loss = 0;
    uint64_t dropped_down = 0;
  };

  Link(EventLoop& loop, LinkConfig config, std::string name = "link");
  ~Link() override;

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  void set_target(PacketSink* target) { target_ = target; }
  PacketSink* target() const { return target_; }

  /// Cross-shard delivery: when set (by Topology, for links whose
  /// endpoints live in different shards), segments that survive
  /// serialization and loss are handed to the channel stamped with their
  /// arrival time (now + prop_delay) instead of being propagated through
  /// a local event -- the destination shard schedules the arrival in its
  /// own loop at an epoch barrier. Takes precedence over target().
  void set_handoff(ShardChannel* ch) { handoff_ = ch; }
  ShardChannel* handoff() const { return handoff_; }

  /// Enqueues a segment for transmission (or drops it if the buffer is
  /// full or the link is administratively down).
  void deliver(TcpSegment seg) override;

  /// Administrative up/down; a downed link drops everything, modelling
  /// loss of an interface (mobility scenarios).
  void set_up(bool up) { up_ = up; }
  bool is_up() const { return up_; }

  /// Changes the loss probability mid-run (scenario scripting).
  void set_loss_prob(double p) { config_.loss_prob = p; }

  const LinkConfig& config() const { return config_; }
  const Stats& stats() const { return stats_; }
  const std::string& name() const { return name_; }
  size_t queued_bytes() const { return queued_bytes_; }
  /// Registry scope this link publishes under ("sim.link.<name>", made
  /// collision-free by the loop's registry).
  const std::string& stats_scope() const { return scope_; }

 private:
  void start_transmission();
  void finish_transmission();
  void deliver_in_flight();

  EventLoop& loop_;
  LinkConfig config_;
  std::string name_;
  PacketSink* target_ = nullptr;
  ShardChannel* handoff_ = nullptr;
  Rng rng_;

  std::deque<TcpSegment> queue_;
  size_t queued_bytes_ = 0;
  bool transmitting_ = false;
  bool up_ = true;
  Stats stats_;
  std::string scope_;
  Histogram* occupancy_hist_ = nullptr;  ///< queue depth sampled per enqueue

  /// Segments that finished serialization and are propagating. Propagation
  /// delay is constant and departures are serialized, so arrivals are FIFO:
  /// each propagation event pops the front. Keeping segments here (instead
  /// of inside per-event closures) keeps event callbacks small enough for
  /// std::function's inline storage -- no allocation per packet.
  struct InFlight {
    PacketSink* target;  ///< captured at departure, like the old closure
    TcpSegment seg;
  };
  std::deque<InFlight> in_flight_;
};

}  // namespace mptcp
