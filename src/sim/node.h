// The interface every in-path element implements.
#pragma once

#include "net/segment.h"

namespace mptcp {

/// Anything that can accept a segment: links, middleboxes, routers, hosts.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(TcpSegment seg) = 0;
};

/// A sink that silently drops everything (a downed route).
class NullSink : public PacketSink {
 public:
  void deliver(TcpSegment) override { ++dropped_; }
  uint64_t dropped() const { return dropped_; }

 private:
  uint64_t dropped_ = 0;
};

}  // namespace mptcp
