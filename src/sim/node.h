// The interface every in-path element implements.
#pragma once

#include "net/segment.h"

namespace mptcp {

/// Anything that can accept a segment: links, middleboxes, routers, hosts.
class PacketSink {
 public:
  virtual ~PacketSink() = default;
  virtual void deliver(TcpSegment seg) = 0;
};

/// A sink that silently drops everything (a downed route).
class NullSink : public PacketSink {
 public:
  void deliver(TcpSegment) override { ++dropped_; }
  uint64_t dropped() const { return dropped_; }

 private:
  uint64_t dropped_ = 0;
};

/// A self-describing in-path element: a PacketSink that also knows where
/// its output goes. Anything that can be spliced into a path (middleboxes,
/// taps, corrupters) derives from this, which lets harness code insert an
/// element with no per-element wiring callback:
///
///   element.set_downstream(link.target());
///   link.set_target(&element);
class Middlebox : public PacketSink {
 public:
  void set_downstream(PacketSink* next) { downstream_ = next; }
  PacketSink* downstream() const { return downstream_; }

 protected:
  /// Forwards a segment to the downstream sink (drops it if unset).
  void emit(TcpSegment seg) {
    if (downstream_ != nullptr) downstream_->deliver(std::move(seg));
  }

 private:
  PacketSink* downstream_ = nullptr;
};

}  // namespace mptcp
