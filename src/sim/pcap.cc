#include "sim/pcap.h"

#include <vector>

#include "net/checksum.h"
#include "net/wire.h"

namespace mptcp {
namespace {

void put_u16(std::vector<uint8_t>& out, uint16_t v) {
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v));
}

void put_u32_le(std::FILE* f, uint32_t v) {
  const uint8_t b[4] = {static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8),
                        static_cast<uint8_t>(v >> 16),
                        static_cast<uint8_t>(v >> 24)};
  std::fwrite(b, 1, 4, f);
}

/// Builds the IPv4 header for a TCP payload of `tcp_len` bytes.
std::vector<uint8_t> ipv4_header(const FourTuple& t, size_t tcp_len) {
  std::vector<uint8_t> h;
  h.reserve(20);
  h.push_back(0x45);  // version 4, IHL 5
  h.push_back(0);     // DSCP/ECN
  put_u16(h, static_cast<uint16_t>(20 + tcp_len));
  put_u16(h, 0);       // identification
  put_u16(h, 0x4000);  // don't-fragment
  h.push_back(64);     // TTL
  h.push_back(6);      // protocol TCP
  put_u16(h, 0);       // checksum placeholder
  for (int i = 3; i >= 0; --i) {
    h.push_back(static_cast<uint8_t>(t.src.addr.value >> (i * 8)));
  }
  for (int i = 3; i >= 0; --i) {
    h.push_back(static_cast<uint8_t>(t.dst.addr.value >> (i * 8)));
  }
  const uint16_t csum = internet_checksum(h);
  h[10] = static_cast<uint8_t>(csum >> 8);
  h[11] = static_cast<uint8_t>(csum);
  return h;
}

}  // namespace

PcapWriter::PcapWriter(const std::string& path) {
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) return;
  // pcap global header, nanosecond variant (magic 0xa1b23c4d).
  put_u32_le(file_, 0xa1b23c4d);
  put_u32_le(file_, 0x00040002);  // version 2.4
  put_u32_le(file_, 0);           // thiszone
  put_u32_le(file_, 0);           // sigfigs
  put_u32_le(file_, 65535);       // snaplen
  put_u32_le(file_, 101);         // LINKTYPE_RAW (IPv4/IPv6)
}

PcapWriter::~PcapWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

void PcapWriter::record(SimTime t, const TcpSegment& seg) {
  if (file_ == nullptr) return;
  const auto tcp = serialize_segment(seg);
  const auto ip = ipv4_header(seg.tuple, tcp.size());
  const uint32_t len = static_cast<uint32_t>(ip.size() + tcp.size());
  put_u32_le(file_, static_cast<uint32_t>(t / kSecond));
  put_u32_le(file_, static_cast<uint32_t>(t % kSecond));  // nanoseconds
  put_u32_le(file_, len);
  put_u32_le(file_, len);
  std::fwrite(ip.data(), 1, ip.size(), file_);
  std::fwrite(tcp.data(), 1, tcp.size(), file_);
  ++packets_;
}

}  // namespace mptcp
