// Discrete-event simulation core.
//
// Single-threaded, deterministic: events at equal times fire in schedule
// order. Time is a 64-bit count of nanoseconds, which gives ~292 years of
// range -- enough for any experiment while keeping arithmetic exact.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

namespace mptcp {

using SimTime = int64_t;  // nanoseconds

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

/// Converts a SimTime duration to floating-point seconds.
inline double to_seconds(SimTime t) {
  return static_cast<double>(t) / kSecond;
}

class EventLoop {
 public:
  using Callback = std::function<void()>;
  using EventId = uint64_t;

  SimTime now() const { return now_; }

  /// Schedules a callback at absolute time `t` (clamped to now()).
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedules a callback `dt` from now.
  EventId schedule_in(SimTime dt, Callback cb) {
    return schedule_at(now_ + dt, std::move(cb));
  }

  /// Cancels a pending event. Cancelling an already-fired or unknown id is
  /// a harmless no-op.
  void cancel(EventId id) { pending_.erase(id); }

  bool has_pending() const { return !pending_.empty(); }
  size_t pending_count() const { return pending_.size(); }

  /// Runs the earliest pending event; returns false if none remain.
  bool run_one();

  /// Runs events until simulated time `t`; leaves now() == t.
  void run_until(SimTime t);

  /// Runs until no events remain.
  void run();

 private:
  struct QueueEntry {
    SimTime t;
    EventId id;
    bool operator>(const QueueEntry& o) const {
      if (t != o.t) return t > o.t;
      return id > o.id;  // FIFO among same-time events
    }
  };

  SimTime now_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                      std::greater<QueueEntry>>
      queue_;
  std::unordered_map<EventId, Callback> pending_;
};

/// A re-armable one-shot timer bound to an EventLoop.
class Timer {
 public:
  Timer(EventLoop& loop, EventLoop::Callback cb)
      : loop_(loop), cb_(std::move(cb)) {}
  ~Timer() { cancel(); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re-)arms the timer to fire `dt` from now.
  void arm_in(SimTime dt) { arm_at(loop_.now() + dt); }

  void arm_at(SimTime t) {
    cancel();
    expiry_ = t;
    id_ = loop_.schedule_at(t, [this] {
      armed_ = false;
      cb_();
    });
    armed_ = true;
  }

  void cancel() {
    if (armed_) {
      loop_.cancel(id_);
      armed_ = false;
    }
  }

  bool armed() const { return armed_; }
  SimTime expiry() const { return expiry_; }

 private:
  EventLoop& loop_;
  EventLoop::Callback cb_;
  EventLoop::EventId id_ = 0;
  SimTime expiry_ = 0;
  bool armed_ = false;
};

}  // namespace mptcp
