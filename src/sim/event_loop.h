// Discrete-event simulation core.
//
// Single-threaded, deterministic: events at equal times fire in schedule
// order. Time is a 64-bit count of nanoseconds, which gives ~292 years of
// range -- enough for any experiment while keeping arithmetic exact.
//
// The scheduler is built for the hot path: a slot table holds callbacks
// and is recycled through a free list (steady-state scheduling allocates
// nothing once the high-water mark is reached), a binary min-heap of
// 24-byte entries orders (time, schedule-seq) pairs, and cancellation is
// O(1) and lazy -- it bumps the slot's generation counter so the stale
// heap entry is discarded when it surfaces. When stale entries dominate
// the heap (timer-heavy workloads re-arm constantly), the heap is
// compacted in place so it stays proportional to the number of *live*
// events instead of growing without bound.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "net/stats.h"

namespace mptcp {

using SimTime = int64_t;  // nanoseconds

inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1'000;
inline constexpr SimTime kMillisecond = 1'000'000;
inline constexpr SimTime kSecond = 1'000'000'000;

/// Converts a SimTime duration to floating-point seconds.
inline double to_seconds(SimTime t) {
  return static_cast<double>(t) / kSecond;
}

class EventLoop {
 public:
  EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  using Callback = std::function<void()>;
  /// Packed handle: high 32 bits are the slot's generation at schedule
  /// time, low 32 bits the slot index. Generation 0 never occurs, so a
  /// default-constructed id (0) is always invalid.
  using EventId = uint64_t;

  SimTime now() const { return now_; }

  /// Schedules a callback at absolute time `t` (clamped to now()).
  EventId schedule_at(SimTime t, Callback cb);

  /// Schedules a callback `dt` from now.
  EventId schedule_in(SimTime dt, Callback cb) {
    return schedule_at(now_ + dt, std::move(cb));
  }

  /// Cancels a pending event in O(1). Cancelling an already-fired or
  /// unknown id is a harmless no-op. The callback (and anything it
  /// captured) is destroyed immediately; only the 24-byte heap entry
  /// lingers until it surfaces or compaction sweeps it.
  void cancel(EventId id);

  bool has_pending() const { return live_ != 0; }
  /// Number of live (scheduled, not cancelled, not fired) events.
  size_t pending_count() const { return live_; }
  /// Heap entries currently held, including lazily-cancelled ones. Kept
  /// within a constant factor of pending_count() by compaction; exposed
  /// for tests and diagnostics.
  size_t heap_size() const { return heap_.size(); }

  /// Runs the earliest pending event; returns false if none remain.
  bool run_one();

  /// Runs events until simulated time `t`; leaves now() == t.
  void run_until(SimTime t);

  /// Runs until no events remain.
  void run();

  /// The simulation-wide observability registry. Every component with a
  /// reference to the loop publishes its counters here; hot paths only
  /// bump plain integers, and the registry walks them at export time.
  StatsRegistry& stats() { return stats_; }
  const StatsRegistry& stats() const { return stats_; }

  uint64_t events_scheduled() const { return ev_scheduled_; }
  uint64_t events_cancelled() const { return ev_cancelled_; }
  uint64_t events_fired() const { return ev_fired_; }
  uint64_t heap_compactions() const { return compactions_; }

 private:
  static constexpr uint32_t kNilSlot = 0xffffffffu;

  struct Slot {
    Callback cb;
    uint32_t gen = 1;             ///< bumped on fire/cancel; 0 is invalid
    uint32_t next_free = kNilSlot;
  };

  struct HeapEntry {
    SimTime t;
    uint64_t seq;  ///< global schedule order; FIFO among equal times
    uint32_t slot;
    uint32_t gen;
  };

  static bool earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.t < b.t || (a.t == b.t && a.seq < b.seq);
  }
  bool entry_live(const HeapEntry& e) const {
    return slots_[e.slot].gen == e.gen;
  }

  uint32_t alloc_slot();
  void free_slot(uint32_t s);
  void sift_up(size_t i);
  void sift_down(size_t i);
  /// Removes the top heap entry (does not touch the slot table).
  void pop_top();
  /// Discards cancelled entries sitting on top of the heap.
  void drop_dead_tops();
  /// Sweeps cancelled entries and re-heapifies when they dominate.
  void maybe_compact();

  SimTime now_ = 0;
  uint64_t next_seq_ = 1;
  std::vector<Slot> slots_;
  std::vector<HeapEntry> heap_;
  uint32_t free_head_ = kNilSlot;
  size_t live_ = 0;

  // Scheduling counters: plain increments on the hot path, exported via
  // sampled registry entries installed by the constructor.
  uint64_t ev_scheduled_ = 0;
  uint64_t ev_cancelled_ = 0;
  uint64_t ev_fired_ = 0;
  uint64_t compactions_ = 0;
  StatsRegistry stats_;
};

/// A re-armable one-shot timer bound to an EventLoop.
class Timer {
 public:
  Timer(EventLoop& loop, EventLoop::Callback cb)
      : loop_(loop), cb_(std::move(cb)) {}
  ~Timer() { cancel(); }

  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// (Re-)arms the timer to fire `dt` from now.
  void arm_in(SimTime dt) { arm_at(loop_.now() + dt); }

  void arm_at(SimTime t) {
    cancel();
    expiry_ = t;
    id_ = loop_.schedule_at(t, [this] {
      armed_ = false;
      cb_();
    });
    armed_ = true;
  }

  void cancel() {
    if (armed_) {
      loop_.cancel(id_);
      armed_ = false;
    }
  }

  bool armed() const { return armed_; }
  SimTime expiry() const { return expiry_; }

 private:
  EventLoop& loop_;
  EventLoop::Callback cb_;
  EventLoop::EventId id_ = 0;
  SimTime expiry_ = 0;
  bool armed_ = false;
};

}  // namespace mptcp
