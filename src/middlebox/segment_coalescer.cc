#include "middlebox/segment_coalescer.h"

namespace mptcp {

void SegmentCoalescer::flush(const FourTuple& flow) {
  auto it = held_.find(flow);
  if (it == held_.end() || !it->second.valid) return;
  loop_.cancel(it->second.flush_event);
  TcpSegment out = std::move(it->second.seg);
  held_.erase(it);
  emit(std::move(out));
}

void SegmentCoalescer::process(TcpSegment seg) {
  // Control segments pass through (and flush any held data first).
  if (seg.syn || seg.rst || seg.fin || seg.payload.empty()) {
    flush(seg.tuple);
    emit(std::move(seg));
    return;
  }

  auto it = held_.find(seg.tuple);
  if (it != held_.end() && it->second.valid) {
    Held& h = it->second;
    const uint32_t expected = h.seg.seq +
                              static_cast<uint32_t>(h.seg.payload.size());
    if (seg.seq == expected && h.merged < max_merge_) {
      // Merge: payload concatenated, the *first* segment's options kept
      // (there is no room for a second DSS mapping).
      h.seg.payload.append(seg.payload);
      h.seg.ack = seg.ack;  // most recent cumulative ack
      h.merged += 1;
      ++coalesced_;
      if (h.merged >= max_merge_) flush(seg.tuple);
      return;
    }
    flush(seg.tuple);
  }

  // Hold this segment awaiting a contiguous successor.
  Held h;
  h.seg = std::move(seg);
  h.valid = true;
  const FourTuple flow = h.seg.tuple;
  h.flush_event = loop_.schedule_in(hold_time_, [this, flow] { flush(flow); });
  held_[flow] = std::move(h);
}

}  // namespace mptcp
