// Traffic-normalizer-style segment coalescing.
//
// A coalescing middlebox merges consecutive in-order segments into one.
// TCP's option space only fits one data-sequence mapping, so the merged
// segment keeps the *first* segment's options and the second mapping is
// lost: the receiver sees bytes with no mapping, acknowledges them only
// at the subflow level, and the sender's connection-level retransmission
// repairs the stream (section 3.3.5 / 4.1 -- the paper notes this costs
// performance but preserves correctness).
#pragma once

#include <unordered_map>

#include "middlebox/middlebox.h"

namespace mptcp {

class SegmentCoalescer final : public SimpleMiddlebox {
 public:
  /// Holds a segment up to `hold_time` waiting for its in-order successor;
  /// merges at most `max_merge` payloads into one segment.
  SegmentCoalescer(EventLoop& loop, SimTime hold_time = 500 * kMicrosecond,
                   size_t max_merge = 2)
      : loop_(loop), hold_time_(hold_time), max_merge_(max_merge) {}

  uint64_t coalesced() const { return coalesced_; }

 protected:
  void process(TcpSegment seg) override;

 private:
  struct Held {
    TcpSegment seg;
    size_t merged = 1;
    EventLoop::EventId flush_event = 0;
    bool valid = false;
  };

  void flush(const FourTuple& flow);

  EventLoop& loop_;
  SimTime hold_time_;
  size_t max_merge_;
  std::unordered_map<FourTuple, Held> held_;
  uint64_t coalesced_ = 0;
};

}  // namespace mptcp
