#include "middlebox/nat.h"

namespace mptcp {

void Nat::on_forward(TcpSegment seg) {
  auto it = out_map_.find(seg.tuple.src);
  if (it == out_map_.end()) {
    const Endpoint pub{public_addr_, next_port_++};
    it = out_map_.emplace(seg.tuple.src, pub).first;
    in_map_.emplace(pub, seg.tuple.src);
  }
  seg.tuple.src = it->second;
  emit_forward(std::move(seg));
}

void Nat::on_reverse(TcpSegment seg) {
  auto it = in_map_.find(seg.tuple.dst);
  if (it == in_map_.end()) return;  // no mapping: drop (real NAT behaviour)
  seg.tuple.dst = it->second;
  emit_reverse(std::move(seg));
}

}  // namespace mptcp
