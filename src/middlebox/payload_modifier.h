// Content-modifying middlebox (application-level gateway).
//
// ALGs such as FTP NAT helpers rewrite payload bytes in flight
// (section 3.3.6). Length-preserving rewrites corrupt the data stream
// without disturbing sequence numbers -- undetectable by anything except
// the DSS checksum, which is exactly why the checksum exists. On
// detection MPTCP resets the subflow (if others remain) or falls back to
// TCP semantics, letting the middlebox rewrite as it wishes.
//
// This element performs a length-preserving rewrite of payload bytes.
// (Length-changing ALGs additionally fix up sequence numbers; they break
// every mapping scheme the paper considered and are likewise detected by
// the checksum -- see DESIGN.md for the modelling note.)
#pragma once

#include <unordered_map>

#include "middlebox/middlebox.h"

namespace mptcp {

class PayloadModifier final : public SimpleMiddlebox {
 public:
  /// Rewrites one byte of payload in every `interval`-th data segment.
  explicit PayloadModifier(uint64_t interval = 1) : interval_(interval) {}

  uint64_t segments_modified() const { return modified_; }

 protected:
  void process(TcpSegment seg) override {
    if (!seg.payload.empty() && ++data_count_ % interval_ == 0) {
      // Flip bits mid-payload, as an ALG replacing an address would.
      // mutable_data() copies-on-write: the sender's retransmit buffer
      // shares these bytes and must keep the original content.
      seg.payload.mutable_data()[seg.payload.size() / 2] ^= 0xA5;
      ++modified_;
    }
    emit(std::move(seg));
  }

 private:
  uint64_t interval_;
  uint64_t data_count_ = 0;
  uint64_t modified_ = 0;
};

/// Drops segments that would leave a sequence hole, modelling proxies
/// that "do not pass on data after a hole" (5% of paths, 11% on port 80,
/// section 3.3). Striping one sequence space across two paths would stall
/// behind such a box; per-subflow spaces never present holes to it.
class HoleDropper final : public SimpleMiddlebox {
 public:
  uint64_t holes_dropped() const { return dropped_; }

 protected:
  void process(TcpSegment seg) override;

 private:
  std::unordered_map<FourTuple, uint32_t> expected_;
  uint64_t dropped_ = 0;
};

}  // namespace mptcp
