#include "middlebox/payload_modifier.h"

#include "tcp/tcp_types.h"

namespace mptcp {

void HoleDropper::process(TcpSegment seg) {
  if (seg.syn) {
    expected_[seg.tuple] = seg.seq + 1;
    emit(std::move(seg));
    return;
  }
  auto it = expected_.find(seg.tuple);
  if (it == expected_.end() || seg.payload.empty()) {
    emit(std::move(seg));
    return;
  }
  if (seq32_lt(it->second, seg.seq)) {
    // Data after a hole: refuse to forward until the gap is filled.
    ++dropped_;
    return;
  }
  const uint32_t end = seg.seq + static_cast<uint32_t>(seg.payload.size()) +
                       (seg.fin ? 1 : 0);
  if (seq32_lt(it->second, end)) it->second = end;
  emit(std::move(seg));
}

}  // namespace mptcp
