// Sequence-number rewriting firewall.
//
// 10% of paths (18% on port 80) rewrite TCP initial sequence numbers to
// add randomization (section 3.3). Crucially, such boxes rewrite the
// *absolute* sequence numbers consistently for a flow -- the relative
// offsets survive, which is exactly why the DSS mapping carries
// ISN-relative subflow sequence numbers.
//
// The forward direction shifts seq by a per-flow random delta; the
// reverse direction shifts ack (and SACK blocks) back.
#pragma once

#include <unordered_map>

#include "middlebox/middlebox.h"
#include "net/rng.h"

namespace mptcp {

class SeqRewriter final : public DuplexMiddlebox {
 public:
  explicit SeqRewriter(uint64_t seed = 99) : rng_(seed) {}

  size_t flows_tracked() const { return deltas_.size(); }

 protected:
  void on_forward(TcpSegment seg) override;
  void on_reverse(TcpSegment seg) override;

 private:
  Rng rng_;
  std::unordered_map<FourTuple, uint32_t> deltas_;  ///< keyed forward tuple
};

}  // namespace mptcp
