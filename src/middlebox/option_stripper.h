// Removes TCP options in flight, modelling firewalls and proxies that
// discard options they do not understand. The paper's study found 6% of
// paths (14% on port 80) remove unknown options from SYNs; most of those
// also remove them from data segments (section 3.1).
#pragma once

#include "middlebox/middlebox.h"

namespace mptcp {

class OptionStripper final : public SimpleMiddlebox {
 public:
  enum class Scope {
    kSynOnly,       ///< strips only from SYN/SYN-ACK segments
    kNonSynOnly,    ///< strips only from non-SYN segments (nastier case)
    kAllSegments,
  };
  enum class What {
    kAllMptcp,      ///< every MPTCP (kind 30) option
    kMpCapable,     ///< only MP_CAPABLE (kills negotiation)
    kMpJoin,        ///< only MP_JOIN (kills subflow establishment)
    kDss,           ///< only DSS (triggers data-level fallback)
    kAllUnknown,    ///< everything beyond MSS/WS/TS/SACK (worst case)
  };

  OptionStripper(Scope scope, What what) : scope_(scope), what_(what) {}

  uint64_t options_removed() const { return removed_; }

 protected:
  void process(TcpSegment seg) override;

 private:
  bool in_scope(const TcpSegment& seg) const {
    switch (scope_) {
      case Scope::kSynOnly: return seg.syn;
      case Scope::kNonSynOnly: return !seg.syn;
      case Scope::kAllSegments: return true;
    }
    return true;
  }

  Scope scope_;
  What what_;
  uint64_t removed_ = 0;
};

}  // namespace mptcp
