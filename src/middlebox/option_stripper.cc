#include "middlebox/option_stripper.h"

namespace mptcp {

void OptionStripper::process(TcpSegment seg) {
  if (in_scope(seg)) {
    const size_t before = seg.options.size();
    switch (what_) {
      case What::kAllMptcp:
        std::erase_if(seg.options,
                      [](const TcpOption& o) { return is_mptcp_option(o); });
        break;
      case What::kMpCapable:
        remove_options<MpCapableOption>(seg.options);
        break;
      case What::kMpJoin:
        remove_options<MpJoinOption>(seg.options);
        break;
      case What::kDss:
        remove_options<DssOption>(seg.options);
        break;
      case What::kAllUnknown:
        std::erase_if(seg.options, [](const TcpOption& o) {
          return !(std::holds_alternative<MssOption>(o) ||
                   std::holds_alternative<WindowScaleOption>(o) ||
                   std::holds_alternative<TimestampOption>(o) ||
                   std::holds_alternative<SackPermittedOption>(o) ||
                   std::holds_alternative<SackOption>(o));
        });
        break;
    }
    removed_ += before - seg.options.size();
  }
  emit(std::move(seg));
}

}  // namespace mptcp
