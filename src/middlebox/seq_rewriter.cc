#include "middlebox/seq_rewriter.h"

namespace mptcp {

void SeqRewriter::on_forward(TcpSegment seg) {
  auto it = deltas_.find(seg.tuple);
  if (it == deltas_.end()) {
    if (!seg.syn) {
      // Unknown mid-flow segment: pass through untouched.
      emit_forward(std::move(seg));
      return;
    }
    it = deltas_.emplace(seg.tuple, rng_.next_u32()).first;
  }
  seg.seq += it->second;
  emit_forward(std::move(seg));
}

void SeqRewriter::on_reverse(TcpSegment seg) {
  auto it = deltas_.find(seg.tuple.reversed());
  if (it == deltas_.end()) {
    emit_reverse(std::move(seg));
    return;
  }
  const uint32_t delta = it->second;
  if (seg.ack_flag) seg.ack -= delta;
  for (auto& opt : seg.options) {
    if (auto* sack = std::get_if<SackOption>(&opt)) {
      for (auto& b : sack->blocks) {
        b.begin -= delta;
        b.end -= delta;
      }
    }
  }
  emit_reverse(std::move(seg));
}

}  // namespace mptcp
