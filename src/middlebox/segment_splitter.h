// TSO-style segment splitting.
//
// TCP Segmentation Offload hardware resegments large frames and -- as the
// paper measured across 12 NICs from four vendors -- copies any TCP
// option onto every resulting segment (section 3.3.4). This is the reason
// the DSS mapping must be self-describing (relative offset + length)
// rather than a per-packet tag: duplicate copies of the same mapping are
// harmless, per-packet tags would be wrong on all but one part.
#pragma once

#include "middlebox/middlebox.h"

namespace mptcp {

class SegmentSplitter final : public SimpleMiddlebox {
 public:
  /// Splits any segment with payload larger than `mtu_payload`.
  explicit SegmentSplitter(size_t mtu_payload) : mtu_(mtu_payload) {}

  uint64_t splits() const { return splits_; }

 protected:
  void process(TcpSegment seg) override;

 private:
  size_t mtu_;
  uint64_t splits_ = 0;
};

}  // namespace mptcp
