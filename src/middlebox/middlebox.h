// Middlebox modelling framework (section 4.1 of the paper).
//
// The paper validates MPTCP's design against Click elements modelling the
// middlebox behaviours its measurement study found in the wild: NATs,
// sequence-number rewriters, option strippers, segment splitters (TSO),
// segment coalescers (traffic normalizers), pro-active ACKers (proxies)
// and payload modifiers (application-level gateways). The same catalogue
// is implemented here as in-path elements for the simulator.
//
// Unidirectional elements derive from SimpleMiddlebox and are spliced into
// one direction of a path. Stateful elements that must observe both
// directions (NAT, sequence rewriting, proxies) derive from
// DuplexMiddlebox and expose separate forward/reverse sinks.
#pragma once

#include <functional>

#include "sim/event_loop.h"
#include "sim/node.h"

namespace mptcp {

/// One-directional in-path element.
class SimpleMiddlebox : public PacketSink {
 public:
  void set_target(PacketSink* t) { target_ = t; }
  PacketSink* target() const { return target_; }

  void deliver(TcpSegment seg) final {
    ++seen_;
    process(std::move(seg));
  }

  uint64_t segments_seen() const { return seen_; }

 protected:
  virtual void process(TcpSegment seg) = 0;
  void emit(TcpSegment seg) {
    if (target_ != nullptr) target_->deliver(std::move(seg));
  }

 private:
  PacketSink* target_ = nullptr;
  uint64_t seen_ = 0;
};

/// Two-directional element: owns a forward sink (toward the server) and a
/// reverse sink (toward the client) that share state.
class DuplexMiddlebox {
 public:
  virtual ~DuplexMiddlebox() = default;

  PacketSink& forward_sink() { return fwd_; }
  PacketSink& reverse_sink() { return rev_; }
  void set_forward_target(PacketSink* t) { fwd_target_ = t; }
  void set_reverse_target(PacketSink* t) { rev_target_ = t; }

 protected:
  virtual void on_forward(TcpSegment seg) = 0;
  virtual void on_reverse(TcpSegment seg) = 0;
  void emit_forward(TcpSegment seg) {
    if (fwd_target_ != nullptr) fwd_target_->deliver(std::move(seg));
  }
  void emit_reverse(TcpSegment seg) {
    if (rev_target_ != nullptr) rev_target_->deliver(std::move(seg));
  }

 private:
  struct Adapter : PacketSink {
    explicit Adapter(std::function<void(TcpSegment)> fn)
        : fn_(std::move(fn)) {}
    void deliver(TcpSegment seg) override { fn_(std::move(seg)); }
    std::function<void(TcpSegment)> fn_;
  };

  Adapter fwd_{[this](TcpSegment s) { on_forward(std::move(s)); }};
  Adapter rev_{[this](TcpSegment s) { on_reverse(std::move(s)); }};
  PacketSink* fwd_target_ = nullptr;
  PacketSink* rev_target_ = nullptr;
};

}  // namespace mptcp
