// Middlebox modelling framework (section 4.1 of the paper).
//
// The paper validates MPTCP's design against Click elements modelling the
// middlebox behaviours its measurement study found in the wild: NATs,
// sequence-number rewriters, option strippers, segment splitters (TSO),
// segment coalescers (traffic normalizers), pro-active ACKers (proxies)
// and payload modifiers (application-level gateways). The same catalogue
// is implemented here as in-path elements for the simulator.
//
// Unidirectional elements derive from SimpleMiddlebox and are spliced into
// one direction of a path. Stateful elements that must observe both
// directions (NAT, sequence rewriting, proxies) derive from
// DuplexMiddlebox and expose separate forward/reverse sinks. Both build on
// the self-describing Middlebox base (sim/node.h): every spliceable
// element carries its own downstream pointer, so harness code chains
// elements uniformly with set_downstream()/downstream().
#pragma once

#include <functional>

#include "sim/event_loop.h"
#include "sim/node.h"

namespace mptcp {

/// One-directional in-path element.
class SimpleMiddlebox : public Middlebox {
 public:
  void deliver(TcpSegment seg) final {
    ++seen_;
    process(std::move(seg));
  }

  uint64_t segments_seen() const { return seen_; }

 protected:
  virtual void process(TcpSegment seg) = 0;

 private:
  uint64_t seen_ = 0;
};

/// Two-directional element: owns a forward sink (toward the server) and a
/// reverse sink (toward the client) that share state. Each sink is itself
/// a Middlebox, so either direction splices like any one-directional
/// element: forward_sink().set_downstream(...) wires its output.
class DuplexMiddlebox {
 public:
  virtual ~DuplexMiddlebox() = default;

  Middlebox& forward_sink() { return fwd_; }
  Middlebox& reverse_sink() { return rev_; }

 protected:
  virtual void on_forward(TcpSegment seg) = 0;
  virtual void on_reverse(TcpSegment seg) = 0;
  void emit_forward(TcpSegment seg) { fwd_.forward(std::move(seg)); }
  void emit_reverse(TcpSegment seg) { rev_.forward(std::move(seg)); }

 private:
  struct Adapter final : Middlebox {
    explicit Adapter(std::function<void(TcpSegment)> fn)
        : fn_(std::move(fn)) {}
    void deliver(TcpSegment seg) override { fn_(std::move(seg)); }
    void forward(TcpSegment seg) { emit(std::move(seg)); }
    std::function<void(TcpSegment)> fn_;
  };

  Adapter fwd_{[this](TcpSegment s) { on_forward(std::move(s)); }};
  Adapter rev_{[this](TcpSegment s) { on_reverse(std::move(s)); }};
};

}  // namespace mptcp
