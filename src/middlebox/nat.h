// Network address (and port) translation.
//
// The canonical reason the classical 5-tuple cannot identify an MPTCP
// connection (section 3.2): each subflow may be rewritten differently, so
// MPTCP matches subflows to connections by token, never by address. The
// NAT here rewrites the client's source endpoint to a public address with
// a per-flow port, and reverses the mapping for return traffic.
#pragma once

#include <unordered_map>

#include "middlebox/middlebox.h"

namespace mptcp {

class Nat final : public DuplexMiddlebox {
 public:
  /// Traffic leaving through the NAT gets `public_addr` and a fresh port.
  explicit Nat(IpAddr public_addr, Port first_port = 20000)
      : public_addr_(public_addr), next_port_(first_port) {}

  IpAddr public_addr() const { return public_addr_; }
  size_t mappings() const { return out_map_.size(); }

 protected:
  void on_forward(TcpSegment seg) override;
  void on_reverse(TcpSegment seg) override;

 private:
  IpAddr public_addr_;
  Port next_port_;
  std::unordered_map<Endpoint, Endpoint> out_map_;  ///< private -> public
  std::unordered_map<Endpoint, Endpoint> in_map_;   ///< public -> private
};

}  // namespace mptcp
