#include "middlebox/proactive_acker.h"

#include "tcp/tcp_types.h"

namespace mptcp {

void ProactiveAcker::on_forward(TcpSegment seg) {
  FlowState& st = flows_[seg.tuple];
  if (seg.syn) {
    st.synced = true;
    st.highest_end = seg.seq + 1;
  } else if (st.synced && !seg.payload.empty()) {
    // Only contiguous data is acknowledged (a real PEP tracks holes; an
    // out-of-order arrival produces a duplicate of the previous ACK,
    // which correctly triggers the sender's fast retransmit).
    const uint32_t end = seg.seq + static_cast<uint32_t>(seg.payload.size());
    if (seq32_leq(seg.seq, st.highest_end) &&
        seq32_lt(st.highest_end, end)) {
      st.highest_end = end;
    }
    // Forge an immediate ACK back toward the sender. A middlebox does not
    // understand MPTCP, so the forged ACK carries no MPTCP options: the
    // sender sees a subflow-level ACK with no DATA_ACK, exactly the
    // hazard the explicit DATA_ACK design defends against.
    TcpSegment ack;
    ack.tuple = seg.tuple.reversed();
    ack.seq = seg.ack;  // plausible; the box mirrors what it saw
    ack.ack = st.highest_end;
    ack.ack_flag = true;
    ack.window = st.last_window != 0 ? st.last_window : seg.window;
    ++forged_;
    emit_reverse(std::move(ack));
  }
  emit_forward(std::move(seg));
}

void ProactiveAcker::on_reverse(TcpSegment seg) {
  auto it = flows_.find(seg.tuple.reversed());
  if (it != flows_.end()) {
    FlowState& st = it->second;
    st.last_window = seg.window;
    if (seg.ack_flag && st.synced && policy_ != AckPolicy::kPassThrough &&
        seq32_lt(st.highest_end, seg.ack)) {
      if (policy_ == AckPolicy::kDropUnseen) {
        ++suppressed_;
        return;
      }
      seg.ack = st.highest_end;  // kCorrectUnseen
      ++suppressed_;
    }
  }
  emit_reverse(std::move(seg));
}

}  // namespace mptcp
