#include "middlebox/segment_splitter.h"

namespace mptcp {

void SegmentSplitter::process(TcpSegment seg) {
  if (seg.payload.size() <= mtu_) {
    emit(std::move(seg));
    return;
  }
  ++splits_;
  const bool fin = seg.fin;
  size_t offset = 0;
  while (offset < seg.payload.size()) {
    const size_t n = std::min(mtu_, seg.payload.size() - offset);
    TcpSegment part = seg;  // copies flags and *all options*, like TSO
    part.seq = seg.seq + static_cast<uint32_t>(offset);
    part.payload = seg.payload.subview(offset, n);  // zero-copy, like TSO
    part.fin = fin && offset + n == seg.payload.size();
    offset += n;
    emit(std::move(part));
  }
}

}  // namespace mptcp
