// Section 4.1 interoperability matrix: one row per middlebox behaviour,
// reporting the connection's final operating mode and whether the
// transfer completed intact. The "never break where TCP works" claim,
// demonstrated end to end.
#include <cstdio>
#include <functional>
#include <memory>

#include "bench_util.h"
#include "middlebox/nat.h"
#include "middlebox/option_stripper.h"
#include "middlebox/payload_modifier.h"
#include "middlebox/proactive_acker.h"
#include "middlebox/segment_coalescer.h"
#include "middlebox/segment_splitter.h"
#include "middlebox/seq_rewriter.h"

using namespace mptcp;
using namespace mptcp::bench;

namespace {

constexpr uint64_t kTransfer = 300 * 1000;

struct Outcome {
  MptcpMode client_mode = MptcpMode::kNegotiating;
  uint64_t received = 0;
  bool intact = false;
  bool eof = false;
  uint64_t checksum_failures = 0;
  uint64_t subflow_resets = 0;
};

/// Runs the standard WiFi+3G transfer with `splice` installing the
/// middlebox into the rig before traffic starts.
Outcome run_case(size_t n_paths,
                 const std::function<void(TwoHostRig&)>& splice) {
  TwoHostRig rig;
  rig.add_path(wifi_path());
  if (n_paths > 1) rig.add_path(threeg_path());
  splice(rig);

  MptcpConfig cfg;
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 512 * 1024;
  MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
  MptcpConnection* sconn = nullptr;
  std::unique_ptr<BulkReceiver> rx;
  ss.listen(80, [&](MptcpConnection& c) {
    if (sconn == nullptr) {
      sconn = &c;
      rx = std::make_unique<BulkReceiver>(c);
    }
  });
  MptcpConnection& cc =
      cs.connect(rig.client_addr(0), Endpoint{rig.server_addr(), 80});
  BulkSender tx(cc, kTransfer);
  rig.loop().run_until(60 * kSecond);

  Outcome out;
  out.client_mode = cc.mode();
  out.received = rx ? rx->bytes_received() : 0;
  out.intact = rx && rx->pattern_ok();
  out.eof = rx && rx->saw_eof();
  if (sconn != nullptr) {
    out.checksum_failures = sconn->meta_stats().checksum_failures;
    out.subflow_resets = sconn->meta_stats().subflow_resets;
  }
  return out;
}

const char* mode_str(MptcpMode m) {
  switch (m) {
    case MptcpMode::kMptcp: return "MPTCP";
    case MptcpMode::kFallbackTcp: return "fallback-TCP";
    case MptcpMode::kNegotiating: return "negotiating";
  }
  return "?";
}

void report(const char* name, const Outcome& o) {
  std::printf("%-34s %-14s %10llu/%llu  intact=%-3s eof=%-3s csumfail=%llu "
              "sf_resets=%llu\n",
              name, mode_str(o.client_mode),
              static_cast<unsigned long long>(o.received),
              static_cast<unsigned long long>(kTransfer),
              o.intact ? "yes" : "NO", o.eof ? "yes" : "NO",
              static_cast<unsigned long long>(o.checksum_failures),
              static_cast<unsigned long long>(o.subflow_resets));
}

}  // namespace

int main() {
  std::printf("# Section 4.1 middlebox interop matrix (300KB transfer, "
              "WiFi+3G)\n");

  {
    Outcome o = run_case(2, [](TwoHostRig&) {});
    report("(none)", o);
  }
  {
    static OptionStripper strip(OptionStripper::Scope::kSynOnly,
                                OptionStripper::What::kMpCapable);
    Outcome o = run_case(2, [](TwoHostRig& rig) {
      rig.splice_up(0, strip);
    });
    report("strip MP_CAPABLE from SYN", o);
  }
  {
    static OptionStripper strip(OptionStripper::Scope::kNonSynOnly,
                                OptionStripper::What::kAllMptcp);
    static OptionStripper strip2(OptionStripper::Scope::kNonSynOnly,
                                 OptionStripper::What::kAllMptcp);
    Outcome o = run_case(1, [](TwoHostRig& rig) {
      rig.splice_up(0, strip);
      rig.splice_down(0, strip2);
    });
    report("strip options from data pkts", o);
  }
  {
    static OptionStripper strip(OptionStripper::Scope::kSynOnly,
                                OptionStripper::What::kMpJoin);
    Outcome o = run_case(2, [](TwoHostRig& rig) {
      rig.splice_up(1, strip);
    });
    report("strip MP_JOIN (join path)", o);
  }
  {
    static SeqRewriter rw;
    Outcome o = run_case(2, [](TwoHostRig& rig) {
      rig.splice_up(0, rw.forward_sink());
      rig.splice_down(0, rw.reverse_sink());
    });
    report("ISN rewriting firewall", o);
  }
  {
    static Nat nat(IpAddr(192, 0, 2, 1));
    Outcome o = run_case(2, [](TwoHostRig& rig) {
      rig.splice_up(1, nat.forward_sink());
      rig.route_server_to(nat.public_addr(), 1);
      rig.network().attach(nat.public_addr(), &nat.reverse_sink());
      nat.reverse_sink().set_downstream(&rig.network());
    });
    report("NAT on join path", o);
  }
  {
    static SegmentSplitter split(536);
    Outcome o = run_case(2, [](TwoHostRig& rig) {
      rig.splice_up(0, split);
    });
    report("TSO-style segment splitting", o);
  }
  {
    static std::unique_ptr<SegmentCoalescer> coalesce;
    Outcome o = run_case(2, [](TwoHostRig& rig) {
      coalesce = std::make_unique<SegmentCoalescer>(rig.loop(),
                                                    5 * kMillisecond);
      rig.splice_up(0, *coalesce);
    });
    report("coalescing traffic normalizer", o);
  }
  {
    static ProactiveAcker proxy;
    Outcome o = run_case(2, [](TwoHostRig& rig) {
      rig.splice_up(0, proxy.forward_sink());
      proxy.reverse_sink().set_downstream(&rig.network());
    });
    report("pro-active ACKing proxy", o);
  }
  {
    static PayloadModifier alg(3);
    Outcome o = run_case(2, [](TwoHostRig& rig) {
      rig.splice_up(1, alg);
    });
    report("payload-modifying ALG (1 of 2)", o);
  }
  {
    static PayloadModifier alg(5);
    Outcome o = run_case(1, [](TwoHostRig& rig) {
      rig.splice_up(0, alg);
    });
    report("payload-modifying ALG (only path)", o);
  }
  {
    static HoleDropper dropper;
    Outcome o = run_case(2, [](TwoHostRig& rig) {
      rig.splice_up(0, dropper);
    });
    report("data-after-hole dropper", o);
  }
  return 0;
}
