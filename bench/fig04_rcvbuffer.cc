// Figure 4: "Receive buffer impact on throughput".
//
// Emulated WiFi (8 Mbps, 20 ms RTT, 80 ms buffer) + 3G (2 Mbps, 150 ms
// RTT, 2 s buffer). Sweeps the connection-level send/receive buffer and
// reports, as in the paper's three panels:
//   (a) regular MPTCP vs TCP-over-WiFi vs TCP-over-3G
//   (b) MPTCP+M1 (opportunistic retransmission): goodput and throughput
//       (the gap is the capacity wasted on duplicate transmissions)
//   (c) MPTCP+M1,2 (plus penalization) goodput
//
// Expected shape: regular MPTCP dips *below* TCP-over-WiFi for buffers
// under ~400 KB; +M1 matches or beats TCP-over-WiFi everywhere; +M1,2
// additionally wastes less capacity.
#include <cstdio>

#include "bench_util.h"

using namespace mptcp;
using namespace mptcp::bench;

int main() {
  std::printf(
      "# Fig 4: goodput vs receive/send buffer, WiFi(8M/20ms) + "
      "3G(2M/150ms)\n");
  std::printf(
      "%-10s %14s %14s %14s %14s %14s %14s\n", "buf_KB", "TCP/WiFi",
      "TCP/3G", "regMPTCP", "M1_goodput", "M1_thruput", "M12_goodput");

  for (size_t kb : {50, 100, 150, 200, 250, 300, 400, 500, 600, 800, 1000}) {
    RunConfig cfg;
    cfg.paths = {wifi_path(), threeg_path()};
    cfg.buffer_bytes = kb * 1000;
    cfg.warmup = 5 * kSecond;
    cfg.duration = 25 * kSecond;

    cfg.variant = regular_mptcp();
    const RunResult tcp_wifi = run_tcp(cfg, 0);
    const RunResult tcp_3g = run_tcp(cfg, 1);
    const RunResult reg = run_mptcp(cfg);

    cfg.variant = mptcp_m1();
    const RunResult m1 = run_mptcp(cfg);

    cfg.variant = mptcp_m12();
    const RunResult m12 = run_mptcp(cfg);

    std::printf("%-10zu %14.2f %14.2f %14.2f %14.2f %14.2f %14.2f\n", kb,
                tcp_wifi.goodput_bps / 1e6, tcp_3g.goodput_bps / 1e6,
                reg.goodput_bps / 1e6, m1.goodput_bps / 1e6,
                m1.throughput_bps / 1e6, m12.goodput_bps / 1e6);
    std::fflush(stdout);
  }
  return 0;
}
