// Figure 7: "Application level latency for 3G/WiFi case".
//
// An application sends timestamped 8 KB blocks over a connection with
// 200 KB send/receive buffers; the receiver reports the distribution of
// block delays. Expected shape: regular MPTCP has a fat tail (blocks
// stuck behind 3G); MPTCP+M1,2 concentrates mass at low delay;
// counter-intuitively TCP-over-WiFi sits *above* MPTCP+M1,2 because
// 200 KB is more send buffer than a 8 Mbps/20 ms path needs, so blocks
// wait in the sender's queue.
#include <cstdio>

#include "bench_util.h"

using namespace mptcp;
using namespace mptcp::bench;

namespace {

RunResult run_variant(Variant v) {
  RunConfig cfg;
  cfg.paths = {wifi_path(), threeg_path()};
  cfg.buffer_bytes = 200 * 1000;
  cfg.warmup = 5 * kSecond;
  cfg.duration = 60 * kSecond;
  cfg.measure_block_delay = true;
  cfg.variant = v;
  return run_mptcp(cfg);
}

RunResult run_tcp_path(size_t idx) {
  RunConfig cfg;
  cfg.paths = {wifi_path(), threeg_path()};
  cfg.buffer_bytes = 200 * 1000;
  cfg.warmup = 5 * kSecond;
  cfg.duration = 60 * kSecond;
  cfg.measure_block_delay = true;
  return run_tcp(cfg, idx);
}

void print_pdf(const char* name, const Distribution& d) {
  // 30 bins of 15 ms over [0, 450 ms], as in the paper's x-axis.
  const auto h = d.histogram(0.0, 0.450, 30);
  std::printf("%-16s n=%zu mean=%.0fms p50=%.0fms p95=%.0fms max=%.0fms\n",
              name, d.count(), d.mean() * 1e3, d.percentile(0.5) * 1e3,
              d.percentile(0.95) * 1e3, d.max() * 1e3);
  std::printf("  pdf%%:");
  for (double f : h) std::printf(" %4.1f", f * 100.0);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "# Fig 7: app-level delay PDF of 8KB blocks, 200KB buffers, "
      "WiFi+3G (bins of 15 ms over 0..450 ms)\n");
  print_pdf("MPTCP+M1,2", run_variant(mptcp_m12()).app_delays);
  print_pdf("regular MPTCP", run_variant(regular_mptcp()).app_delays);
  print_pdf("TCP over WiFi", run_tcp_path(0).app_delays);
  print_pdf("TCP over 3G", run_tcp_path(1).app_delays);
  return 0;
}
