// Prints the determinism digest of a fixed-seed scenario (see
// src/app/digest.h). CI runs this twice and diffs the output; a mismatch
// means the simulation is no longer a pure function of its seed.
//
// Usage: sim_digest [--scenario two-host|capacity|pingpong] [--seed N]
//                   [--duration-ms M] [--stats FILE] [--shards N]
//                   [--scheduler lowest-rtt|round-robin|redundant|backup-aware]
//
// --shards N (N >= 1) switches capacity to the sharded cell-ring variant
// driven by the multi-threaded ShardedEngine: bit-stable for a fixed N
// (CI runs each N twice and diffs), not comparable across N. The
// pingpong scenario's digest IS comparable across shard counts: CI diffs
// --shards 1 against --shards 2 to pin epoch-barrier lockstep.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "app/digest.h"

int main(int argc, char** argv) {
  mptcp::DigestConfig cfg;
  std::string stats_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      cfg.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--duration-ms") == 0 && i + 1 < argc) {
      cfg.duration = std::strtoull(argv[++i], nullptr, 10) *
                     mptcp::kMillisecond;
    } else if (std::strcmp(argv[i], "--stats") == 0 && i + 1 < argc) {
      stats_path = argv[++i];
    } else if (std::strcmp(argv[i], "--scheduler") == 0 && i + 1 < argc) {
      const char* name = argv[++i];
      bool known = false;
      for (mptcp::SchedulerPolicy p :
           {mptcp::SchedulerPolicy::kLowestRtt,
            mptcp::SchedulerPolicy::kRoundRobin,
            mptcp::SchedulerPolicy::kRedundant,
            mptcp::SchedulerPolicy::kBackupAware}) {
        if (mptcp::to_string(p) == name) {
          cfg.scheduler = p;
          known = true;
        }
      }
      if (!known) {
        std::fprintf(stderr, "unknown scheduler '%s'\n", name);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--scenario") == 0 && i + 1 < argc) {
      const char* name = argv[++i];
      if (std::strcmp(name, "two-host") == 0) {
        cfg.scenario = mptcp::DigestScenario::kTwoHost;
      } else if (std::strcmp(name, "capacity") == 0) {
        cfg.scenario = mptcp::DigestScenario::kCapacity;
      } else if (std::strcmp(name, "pingpong") == 0) {
        cfg.scenario = mptcp::DigestScenario::kPingPong;
      } else {
        std::fprintf(stderr, "unknown scenario '%s'\n", name);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      cfg.shards = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--scenario two-host|capacity|pingpong] "
                   "[--seed N] [--duration-ms M] [--stats FILE] "
                   "[--shards N]\n",
                   argv[0]);
      return 2;
    }
  }

  const mptcp::DigestResult r = mptcp::run_digest_scenario(cfg);
  std::printf("digest %s\n", mptcp::digest_hex(r.digest).c_str());
  std::printf("packets_hashed %llu\n",
              static_cast<unsigned long long>(r.packets_hashed));
  std::printf("bytes_delivered %llu\n",
              static_cast<unsigned long long>(r.bytes_delivered));

  if (!stats_path.empty()) {
    std::FILE* f = std::fopen(stats_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", stats_path.c_str());
      return 1;
    }
    std::fputs(r.stats_json.c_str(), f);
    std::fclose(f);
  }

  // A run that moved no data hashed only handshake traffic -- almost
  // certainly a harness regression rather than a real scenario.
  return r.bytes_delivered > 0 ? 0 : 1;
}
