// Figure 8, companion measurement: the out-of-order algorithms driven by
// a *real* MPTCP transfer (not a synthetic trace): a client downloads
// over N near-symmetric 1 Gbps paths for two simulated seconds per
// algorithm, and the receiver's connection-level queue reports its
// workload.
//
// Read together with fig08 (the synthetic-trace benchmark): the paper's
// shortcut optimization presupposes that each subflow carries multi-
// segment batches of contiguous data sequence numbers. In this simulator
// the scheduler allocates per ACK arrival, and with delayed ACKs each
// allocation is ~2 segments, so per-subflow runs are short and shortcut
// hit rates sit far below the paper's 80% at 8 subflows. On the paper's
// hardware, interrupt coalescing (NAPI) batched ACK processing and thus
// allocation -- a substrate effect, not a protocol one. The ranking of
// the *scan* costs (Regular worst, batches/tree best) still shows.
#include <cstdio>
#include <memory>

#include "bench_util.h"

using namespace mptcp;
using namespace mptcp::bench;

namespace {

void run(size_t n_paths) {
  std::printf("# %zu subflows over %zu x 1 Gbps\n", n_paths, n_paths);
  std::printf("%-14s %14s %14s %14s %12s\n", "algorithm", "inserts",
              "cmp/insert", "hit_rate", "goodput");
  for (RecvAlgo algo : {RecvAlgo::kRegular, RecvAlgo::kTree,
                        RecvAlgo::kShortcuts, RecvAlgo::kAllShortcuts}) {
    TwoHostRig rig;
    for (size_t i = 0; i < n_paths; ++i) {
      // Nominally symmetric gigabit paths with realistic +-10% RTT skew.
      rig.add_path(ethernet_path(
          1e9, 400 * kMicrosecond + static_cast<SimTime>(i) * 40 *
                                        kMicrosecond,
          10 * kMillisecond));  // ample buffering: the testbed was loss-free
    }
    MptcpConfig cfg;
    cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 8 * 1000 * 1000;
    cfg.recv_algo = algo;
    cfg.batch_segments = 32;  // the paper's batches are cwnd-sized
    MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
    MptcpConnection* sconn = nullptr;
    std::unique_ptr<BulkReceiver> rx;
    ss.listen(80, [&](MptcpConnection& c) {
      sconn = &c;
      rx = std::make_unique<BulkReceiver>(c, false);
    });
    MptcpConnection& cc =
        cs.connect(rig.client_addr(0), {rig.server_addr(), 80});
    BulkSender tx(cc, 0);
    rig.loop().run_until(2 * kSecond);

    const auto& st = sconn->recv_queue_stats();
    const double hits =
        st.shortcut_hits + st.shortcut_misses == 0
            ? 0.0
            : static_cast<double>(st.shortcut_hits) /
                  static_cast<double>(st.shortcut_hits +
                                      st.shortcut_misses);
    std::printf("%-14s %14llu %14.2f %13.1f%% %9.2f Gb\n",
                algo == RecvAlgo::kRegular      ? "Regular"
                : algo == RecvAlgo::kTree       ? "Tree"
                : algo == RecvAlgo::kShortcuts  ? "Shortcuts"
                                                : "AllShortcuts",
                static_cast<unsigned long long>(st.inserts),
                st.comparisons_per_insert(), hits * 100.0,
                static_cast<double>(rx->bytes_received()) * 8 / 1e9);
  }
}

}  // namespace

int main() {
  std::printf("# Fig 8 companion: receive-queue workload during live "
              "multipath transfers\n");
  run(2);
  run(8);
  return 0;
}
