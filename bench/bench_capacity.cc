// Scale-out capacity benchmark: how many concurrent MPTCP connections the
// stack sustains over a shared-bottleneck multi-host topology, and what
// flow completion times the churn traffic sees while it does.
//
// Scenario (app/workload.h): N dual-homed client hosts fan into two
// aggregation routers whose uplinks to a core router are the shared
// bottlenecks; M servers hang off the core. Two traffic classes:
//
//   * "bulk": persistent connections (P per client host) that stay open
//     for the whole run, each fetching an effectively infinite response --
//     these are the sustained-concurrency load;
//   * "churn": Poisson arrivals per client host with exponentially
//     distributed sizes -- these measure completion times under that load.
//
// The full-scale run (50 clients x 100 persistent = 5000+ concurrent
// MPTCP connections, each with a subflow per bottleneck) self-checks the
// concurrency floor and writes BENCH_capacity.json. A --smoke run
// executes only the reduced scale whose smoke_* keys the CI gate compares
// against the tracked baseline (bench/check_bench.py; *_us keys are
// informational). The whole run is deterministic: CI also digests the
// same topology twice via `sim_digest --scenario capacity`.
//
// Usage: bench_capacity [--smoke] [OUTPUT.json]
#include <cstdio>
#include <cstring>

#include "app/workload.h"
#include "bench_util.h"

using namespace mptcp;
using namespace mptcp::bench;

namespace {

struct ScaleSpec {
  const char* name;
  size_t clients;
  size_t servers;
  size_t persistent_per_client;
  double churn_hz;            ///< churn arrivals per client host
  double bottleneck_bps;      ///< per bottleneck link (there are two)
  SimTime duration;
};

constexpr ScaleSpec kFull = {"full", 50, 4, 100, 10.0, 2e9, 3 * kSecond};
constexpr ScaleSpec kSmoke = {"smoke", 8, 2, 40, 10.0, 500e6,
                              2500 * kMillisecond};

struct ScaleResult {
  double peak_concurrent = 0;
  double churn_completed = 0;
  double goodput_mbps = 0;
  double fct_p50_us = 0;
  double fct_p99_us = 0;
  double errors = 0;
};

TransportConfig capacity_transport(size_t meta_buf, size_t tcp_buf,
                                   uint64_t seed) {
  TransportConfig tc;
  tc.mptcp.meta_snd_buf_max = tc.mptcp.meta_rcv_buf_max = meta_buf;
  tc.mptcp.tcp.snd_buf_max = tc.mptcp.tcp.rcv_buf_max = tcp_buf;
  // Controlled-environment setting (paper Fig. 3): no DSS checksums.
  tc.mptcp.dss_checksum = false;
  tc.mptcp.tcp.seed = seed;
  return tc;
}

ScaleResult run_scale(const ScaleSpec& spec, uint64_t seed) {
  CapacitySpec top;
  top.clients = spec.clients;
  top.servers = spec.servers;
  top.bottleneck_rate_bps = spec.bottleneck_bps;
  CapacityTopology cap = build_capacity_topology(top, seed);
  Topology& topo = *cap.topo;

  WorkloadConfig wc;
  wc.clients = cap.clients;
  wc.servers = cap.servers;
  wc.seed = seed;

  // Class 0: the persistent concurrency load. Small buffers: with
  // thousands of connections sharing one bottleneck, each gets a sliver
  // of bandwidth and big buffers would only burn memory.
  FlowClass bulk;
  bulk.name = "bulk";
  bulk.arrival_rate_hz = 0;
  bulk.persistent_per_client = spec.persistent_per_client;
  bulk.transport = capacity_transport(16 * 1024, 8 * 1024, seed);
  wc.classes.push_back(bulk);

  // Class 1: the churn whose completion times we measure.
  FlowClass churn;
  churn.name = "churn";
  churn.arrival_rate_hz = spec.churn_hz;
  churn.size_dist = FlowClass::SizeDist::kExponential;
  churn.mean_size = 20 * 1000;
  churn.min_size = 1000;
  churn.max_size = 1000 * 1000;
  churn.transport = capacity_transport(64 * 1024, 32 * 1024, seed ^ 0x5bd1);
  wc.classes.push_back(churn);

  WorkloadEngine engine(topo, wc);
  engine.start();
  topo.loop().run_until(spec.duration);

  ScaleResult out;
  out.peak_concurrent = static_cast<double>(engine.peak_concurrent());
  out.churn_completed = static_cast<double>(engine.completed(1));
  const double total_bytes = static_cast<double>(engine.bytes_received(0) +
                                                 engine.bytes_received(1));
  out.goodput_mbps =
      total_bytes * 8.0 / to_seconds(spec.duration) / 1e6;
  out.fct_p50_us = topo.stats().value("workload.churn.fct_p50_us");
  out.fct_p99_us = topo.stats().value("workload.churn.fct_p99_us");
  out.errors = static_cast<double>(engine.errors(0) + engine.errors(1));

  std::printf("# %s: %zu clients x %zu persistent + %.0f/s churn, "
              "2 x %.0f Mbps bottlenecks, %.1f s\n",
              spec.name, spec.clients, spec.persistent_per_client,
              spec.churn_hz * static_cast<double>(spec.clients),
              spec.bottleneck_bps / 1e6, to_seconds(spec.duration));
  std::printf("%-24s %12.0f\n", "peak_concurrent", out.peak_concurrent);
  std::printf("%-24s %12.0f\n", "churn_completed", out.churn_completed);
  std::printf("%-24s %12.1f\n", "goodput_mbps", out.goodput_mbps);
  std::printf("%-24s %12.0f\n", "fct_p50_us", out.fct_p50_us);
  std::printf("%-24s %12.0f\n", "fct_p99_us", out.fct_p99_us);
  std::printf("%-24s %12.0f\n\n", "errors", out.errors);
  return out;
}

void append_fields(std::vector<std::pair<std::string, double>>& fields,
                   const std::string& prefix, const ScaleResult& r) {
  fields.emplace_back(prefix + "peak_concurrent", r.peak_concurrent);
  fields.emplace_back(prefix + "churn_completed", r.churn_completed);
  fields.emplace_back(prefix + "goodput_mbps", r.goodput_mbps);
  fields.emplace_back(prefix + "fct_p50_us", r.fct_p50_us);
  fields.emplace_back(prefix + "fct_p99_us", r.fct_p99_us);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke_only = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke_only = true;
    } else {
      out_path = argv[i];
    }
  }

  WallTimer wall;
  std::vector<std::pair<std::string, double>> fields;

  const ScaleResult smoke = run_scale(kSmoke, /*seed=*/1);
  append_fields(fields, "smoke_", smoke);

  bool ok = true;
  if (!smoke_only) {
    const ScaleResult full = run_scale(kFull, /*seed=*/1);
    append_fields(fields, "capacity_", full);
    // The acceptance floor: a full-scale run must sustain >= 5000
    // concurrent connections.
    if (full.peak_concurrent < 5000) {
      std::fprintf(stderr,
                   "FAIL: peak_concurrent %.0f < 5000 at full scale\n",
                   full.peak_concurrent);
      ok = false;
    }
  }
  fields.emplace_back("wall_seconds_total", wall.seconds());

  if (!out_path.empty()) {
    if (!write_json(out_path, fields)) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 2;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return ok ? 0 : 1;
}
