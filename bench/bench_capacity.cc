// Scale-out capacity benchmark: how many concurrent MPTCP connections the
// stack sustains over a shared-bottleneck multi-host topology, and what
// flow completion times the churn traffic sees while it does.
//
// Scenario (app/workload.h): N dual-homed client hosts fan into two
// aggregation routers whose uplinks to a core router are the shared
// bottlenecks; M servers hang off the core. Two traffic classes:
//
//   * "bulk": persistent connections (P per client host) that stay open
//     for the whole run, each fetching an effectively infinite response --
//     these are the sustained-concurrency load;
//   * "churn": Poisson arrivals per client host with exponentially
//     distributed sizes -- these measure completion times under that load.
//
// The full-scale run (50 clients x 100 persistent = 5000+ concurrent
// MPTCP connections, each with a subflow per bottleneck) self-checks the
// concurrency floor and writes BENCH_capacity.json. A --smoke run
// executes only the reduced scale whose smoke_* keys the CI gate compares
// against the tracked baseline (bench/check_bench.py; *_us keys are
// informational). The whole run is deterministic: CI also digests the
// same topology twice via `sim_digest --scenario capacity`.
//
// --shards N adds the sharded engine runs (see run_sharded_scale below):
// the same cell-ring topology executed single-shard and with N worker
// shards, self-checking that the merged simulated metrics are identical
// and that the sharded run sustains >= 50,000 concurrent connections,
// plus a smaller cross-cell phase that pushes traffic through the SPSC
// handoff channels. `--smoke --shards N` runs only the reduced-scale
// sharded phase (the ThreadSanitizer CI job's workload).
//
// Usage: bench_capacity [--smoke] [--shards N] [OUTPUT.json]
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>

#include "app/workload.h"
#include "bench_util.h"
#include "sim/shard.h"

using namespace mptcp;
using namespace mptcp::bench;

namespace {

struct ScaleSpec {
  const char* name;
  size_t clients;
  size_t servers;
  size_t persistent_per_client;
  double churn_hz;            ///< churn arrivals per client host
  double bottleneck_bps;      ///< per bottleneck link (there are two)
  SimTime duration;
};

constexpr ScaleSpec kFull = {"full", 50, 4, 100, 10.0, 2e9, 3 * kSecond};
constexpr ScaleSpec kSmoke = {"smoke", 8, 2, 40, 10.0, 500e6,
                              2500 * kMillisecond};

struct ScaleResult {
  double peak_concurrent = 0;
  double churn_completed = 0;
  double goodput_mbps = 0;
  double fct_p50_us = 0;
  double fct_p99_us = 0;
  double errors = 0;
};

TransportConfig capacity_transport(size_t meta_buf, size_t tcp_buf,
                                   uint64_t seed) {
  TransportConfig tc;
  tc.mptcp.meta_snd_buf_max = tc.mptcp.meta_rcv_buf_max = meta_buf;
  tc.mptcp.tcp.snd_buf_max = tc.mptcp.tcp.rcv_buf_max = tcp_buf;
  // Controlled-environment setting (paper Fig. 3): no DSS checksums.
  tc.mptcp.dss_checksum = false;
  tc.mptcp.tcp.seed = seed;
  return tc;
}

ScaleResult run_scale(const ScaleSpec& spec, uint64_t seed) {
  CapacitySpec top;
  top.clients = spec.clients;
  top.servers = spec.servers;
  top.bottleneck_rate_bps = spec.bottleneck_bps;
  CapacityTopology cap = build_capacity_topology(top, seed);
  Topology& topo = *cap.topo;

  WorkloadConfig wc;
  wc.clients = cap.clients;
  wc.servers = cap.servers;
  wc.seed = seed;

  // Class 0: the persistent concurrency load. Small buffers: with
  // thousands of connections sharing one bottleneck, each gets a sliver
  // of bandwidth and big buffers would only burn memory.
  FlowClass bulk;
  bulk.name = "bulk";
  bulk.arrival_rate_hz = 0;
  bulk.persistent_per_client = spec.persistent_per_client;
  bulk.transport = capacity_transport(16 * 1024, 8 * 1024, seed);
  wc.classes.push_back(bulk);

  // Class 1: the churn whose completion times we measure.
  FlowClass churn;
  churn.name = "churn";
  churn.arrival_rate_hz = spec.churn_hz;
  churn.size_dist = FlowClass::SizeDist::kExponential;
  churn.mean_size = 20 * 1000;
  churn.min_size = 1000;
  churn.max_size = 1000 * 1000;
  churn.transport = capacity_transport(64 * 1024, 32 * 1024, seed ^ 0x5bd1);
  wc.classes.push_back(churn);

  WorkloadEngine engine(topo, wc);
  engine.start();
  topo.loop().run_until(spec.duration);

  ScaleResult out;
  out.peak_concurrent = static_cast<double>(engine.peak_concurrent());
  out.churn_completed = static_cast<double>(engine.completed(1));
  const double total_bytes = static_cast<double>(engine.bytes_received(0) +
                                                 engine.bytes_received(1));
  out.goodput_mbps =
      total_bytes * 8.0 / to_seconds(spec.duration) / 1e6;
  out.fct_p50_us = topo.stats().value("workload.churn.fct_p50_us");
  out.fct_p99_us = topo.stats().value("workload.churn.fct_p99_us");
  out.errors = static_cast<double>(engine.errors(0) + engine.errors(1));

  std::printf("# %s: %zu clients x %zu persistent + %.0f/s churn, "
              "2 x %.0f Mbps bottlenecks, %.1f s\n",
              spec.name, spec.clients, spec.persistent_per_client,
              spec.churn_hz * static_cast<double>(spec.clients),
              spec.bottleneck_bps / 1e6, to_seconds(spec.duration));
  std::printf("%-24s %12.0f\n", "peak_concurrent", out.peak_concurrent);
  std::printf("%-24s %12.0f\n", "churn_completed", out.churn_completed);
  std::printf("%-24s %12.1f\n", "goodput_mbps", out.goodput_mbps);
  std::printf("%-24s %12.0f\n", "fct_p50_us", out.fct_p50_us);
  std::printf("%-24s %12.0f\n", "fct_p99_us", out.fct_p99_us);
  std::printf("%-24s %12.0f\n\n", "errors", out.errors);
  return out;
}

void append_fields(std::vector<std::pair<std::string, double>>& fields,
                   const std::string& prefix, const ScaleResult& r) {
  fields.emplace_back(prefix + "peak_concurrent", r.peak_concurrent);
  fields.emplace_back(prefix + "churn_completed", r.churn_completed);
  fields.emplace_back(prefix + "goodput_mbps", r.goodput_mbps);
  fields.emplace_back(prefix + "fct_p50_us", r.fct_p50_us);
  fields.emplace_back(prefix + "fct_p99_us", r.fct_p99_us);
}

// ---------------------------------------------------------------------------
// Sharded runs.

struct ShardedRunResult {
  double concurrent_end = 0;  ///< connections open when the run stopped
  double peak_concurrent = 0;
  double completed = 0;
  double errors = 0;
  double goodput_mbps = 0;
  double handoff_packets = 0;
  double handoff_spills = 0;
  double wall_seconds = 0;
  std::map<std::string, double> merged;  ///< merged per-shard stats export
};

/// Shard-count-invariant view of a merged export, for the 1-shard vs
/// N-shard equality self-check. Execution-dependent keys (thread-local
/// allocator pools, per-loop scheduler bookkeeping under sim.* minus
/// links/routers) are dropped; per-connection live scopes
/// (mptcp.client#N / mptcp.server#N, whose #N instance suffix is
/// allocated per registry and so depends on the shard split) are
/// compared as sorted value multisets with the suffix stripped; every
/// other key (link/router counters, workload metrics, FCT histograms,
/// summed tcp.* counters) must match exactly.
struct Canonical {
  std::map<std::string, double> exact;
  std::map<std::string, std::vector<double>> per_conn;
};

Canonical canonicalize(const std::map<std::string, double>& merged) {
  Canonical c;
  for (const auto& [raw_key, value] : merged) {
    if (raw_key.rfind("payload.pool.", 0) == 0) continue;
    if (raw_key.rfind("sim.", 0) == 0 &&
        raw_key.rfind("sim.link.", 0) != 0 &&
        raw_key.rfind("sim.router.", 0) != 0) {
      continue;
    }
    // Strip the per-shard scope tag ("@s<k>", possibly fused with a
    // "#<n>" instance counter): merged exports shard-qualify scope
    // names, but the quantities are shard-count-invariant.
    std::string key = raw_key;
    const size_t at = key.find('@');
    if (at != std::string::npos) {
      const size_t dot = key.find('.', at);
      key.erase(at, (dot == std::string::npos ? key.size() : dot) - at);
    }
    if (key.rfind("mptcp.client", 0) == 0 ||
        key.rfind("mptcp.server", 0) == 0) {
      // Per-connection scopes: also drop the "#<n>" instance counter
      // (allocated per registry, so it depends on the shard split) and
      // compare as value multisets.
      const size_t hash = key.find('#');
      if (hash != std::string::npos) {
        const size_t dot = key.find('.', hash);
        key.erase(hash, (dot == std::string::npos ? key.size() : dot) - hash);
      }
      c.per_conn[key].push_back(value);
      continue;
    }
    c.exact[key] = value;
  }
  for (auto& [key, values] : c.per_conn) {
    std::sort(values.begin(), values.end());
  }
  return c;
}

ShardedRunResult run_sharded(const ShardedCapacitySpec& spec,
                             const FlowClass& local, const FlowClass& cross,
                             size_t shards, uint64_t seed, SimTime duration) {
  WallTimer wall;
  ShardedCapacity net = build_sharded_capacity(spec, seed, shards);
  Topology& topo = *net.topo;

  ShardedCapacityWorkload workload(net, local, cross, seed);
  workload.start();
  ShardedEngine engine(topo);
  engine.run_until(duration);

  ShardedRunResult out;
  out.wall_seconds = wall.seconds();
  out.concurrent_end = static_cast<double>(workload.concurrent());
  out.peak_concurrent = static_cast<double>(workload.peak_concurrent_sum());
  out.completed = static_cast<double>(workload.total_completed());
  out.errors = static_cast<double>(workload.total_errors());
  out.goodput_mbps = static_cast<double>(workload.bytes_received()) * 8.0 /
                     to_seconds(duration) / 1e6;
  out.handoff_packets = static_cast<double>(engine.handoff_packets());
  out.handoff_spills = static_cast<double>(engine.handoff_spills());
  out.merged = StatsRegistry::merged_flatten(topo.shard_stats());
  return out;
}

/// Compares two runs' canonicalized merged exports. Returns the number
/// of mismatched keys (0 = the sharded run reproduced the single-shard
/// simulation bit for bit).
size_t compare_merged(const std::map<std::string, double>& ref_raw,
                      const std::map<std::string, double>& got_raw) {
  const Canonical ref = canonicalize(ref_raw);
  const Canonical got = canonicalize(got_raw);
  size_t bad = 0;
  auto report = [&bad](const std::string& key, const char* what) {
    if (++bad <= 8) std::fprintf(stderr, "MISMATCH: %s %s\n",
                                 key.c_str(), what);
  };
  for (const auto& [key, value] : ref.exact) {
    const auto it = got.exact.find(key);
    if (it == got.exact.end()) {
      report(key, "missing");
    } else if (it->second != value) {
      report(key, "differs");
    }
  }
  for (const auto& [key, value] : got.exact) {
    if (ref.exact.find(key) == ref.exact.end()) report(key, "extra");
  }
  for (const auto& [key, values] : ref.per_conn) {
    const auto it = got.per_conn.find(key);
    if (it == got.per_conn.end()) {
      report(key, "missing (per-conn)");
    } else if (it->second != values) {
      report(key, "differs (per-conn multiset)");
    }
  }
  for (const auto& [key, values] : got.per_conn) {
    if (ref.per_conn.find(key) == ref.per_conn.end()) {
      report(key, "extra (per-conn)");
    }
  }
  return bad;
}

FlowClass sharded_local_class(size_t persistent, double churn_hz,
                              uint64_t seed) {
  FlowClass local;
  local.name = "bulk";
  local.persistent_per_client = persistent;
  local.arrival_rate_hz = churn_hz;
  local.size_dist = FlowClass::SizeDist::kExponential;
  local.mean_size = 20 * 1000;
  local.min_size = 1000;
  local.max_size = 1000 * 1000;
  local.transport = capacity_transport(16 * 1024, 8 * 1024, seed);
  return local;
}

FlowClass disabled_class() {
  FlowClass off;
  off.name = "off";
  off.arrival_rate_hz = 0;
  off.persistent_per_client = 0;
  return off;
}

/// The >= 50k-connection sharded scale run: 4 cells x 25 clients x 500
/// persistent connections = 50,000 sustained, plus light churn for FCT
/// signal. Traffic stays inside each cell (the ring is wired but idle),
/// which is what makes the single-shard reference and the N-shard run
/// provably identical in simulated metrics -- the self-check below
/// compares every non-execution-dependent merged stat exactly.
bool run_sharded_full(size_t shards, uint64_t seed,
                      std::vector<std::pair<std::string, double>>& fields) {
  ShardedCapacitySpec spec;
  spec.cells = 4;
  spec.cell.clients = 25;
  spec.cell.servers = 2;
  spec.cell.bottleneck_rate_bps = 2e9;
  const SimTime duration = 2 * kSecond;
  const FlowClass local = sharded_local_class(500, 2.0, seed);
  const FlowClass off = disabled_class();

  std::printf("# sharded: %zu cells x %zu clients x %zu persistent, "
              "1-shard reference vs %zu shards\n",
              spec.cells, spec.cell.clients, local.persistent_per_client,
              shards);
  const ShardedRunResult ref =
      run_sharded(spec, local, off, 1, seed, duration);
  const ShardedRunResult run =
      run_sharded(spec, local, off, shards, seed, duration);

  bool ok = true;
  const size_t mismatches = compare_merged(ref.merged, run.merged);
  if (mismatches != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu merged-stat mismatches between 1-shard and "
                 "%zu-shard runs\n",
                 mismatches, shards);
    ok = false;
  }
  if (run.concurrent_end < 50000) {
    std::fprintf(stderr, "FAIL: sharded concurrent_end %.0f < 50000\n",
                 run.concurrent_end);
    ok = false;
  }

  const double speedup =
      run.wall_seconds > 0 ? ref.wall_seconds / run.wall_seconds : 0;
  std::printf("%-32s %12.0f\n", "sharded_concurrent_end", run.concurrent_end);
  std::printf("%-32s %12.0f\n", "sharded_peak_concurrent",
              run.peak_concurrent);
  std::printf("%-32s %12.0f\n", "sharded_completed", run.completed);
  std::printf("%-32s %12.0f\n", "sharded_errors", run.errors);
  std::printf("%-32s %12.1f\n", "sharded_goodput_mbps", run.goodput_mbps);
  std::printf("%-32s %12.2f\n", "sharded_wall_seconds_1shard",
              ref.wall_seconds);
  std::printf("%-32s %12.2f\n", "sharded_wall_seconds_nshard",
              run.wall_seconds);
  std::printf("%-32s %12.2f\n", "sharded_speedup", speedup);
  std::printf("%-32s %12s\n\n", "metrics_vs_1shard",
              mismatches == 0 ? "identical" : "DIVERGED");

  fields.emplace_back("sharded_shards", static_cast<double>(shards));
  fields.emplace_back("sharded_concurrent_end", run.concurrent_end);
  fields.emplace_back("sharded_peak_concurrent", run.peak_concurrent);
  fields.emplace_back("sharded_completed", run.completed);
  fields.emplace_back("sharded_goodput_mbps", run.goodput_mbps);
  fields.emplace_back("sharded_wall_seconds_1shard", ref.wall_seconds);
  fields.emplace_back("sharded_wall_seconds_nshard", run.wall_seconds);
  return ok;
}

/// Reduced-scale sharded run with cross-cell traffic enabled: every byte
/// of the cross class rides the SPSC handoff channels through the ring.
/// This is the phase the ThreadSanitizer CI job runs (--smoke --shards N)
/// and the source of the handoff counters in the JSON.
bool run_sharded_cross(size_t shards, uint64_t seed, const char* prefix,
                       std::vector<std::pair<std::string, double>>& fields) {
  ShardedCapacitySpec spec;
  spec.cells = 4;
  spec.cell.clients = 4;
  spec.cell.servers = 1;
  spec.cell.bottleneck_rate_bps = 200e6;
  const SimTime duration = 1500 * kMillisecond;
  const FlowClass local = sharded_local_class(10, 5.0, seed);
  FlowClass cross = sharded_local_class(5, 5.0, seed ^ 0x2545f4914f6cdd1dULL);
  cross.name = "cross";

  std::printf("# %scross-cell handoff: %zu cells over %zu shards\n", prefix,
              spec.cells, shards);
  const ShardedRunResult run =
      run_sharded(spec, local, cross, shards, seed, duration);

  std::printf("%-32s %12.0f\n", "concurrent_end", run.concurrent_end);
  std::printf("%-32s %12.0f\n", "completed", run.completed);
  std::printf("%-32s %12.0f\n", "handoff_packets", run.handoff_packets);
  std::printf("%-32s %12.0f\n\n", "handoff_spills", run.handoff_spills);

  const std::string p = prefix;
  fields.emplace_back(p + "cross_concurrent_end", run.concurrent_end);
  fields.emplace_back(p + "cross_completed", run.completed);
  fields.emplace_back(p + "cross_handoff_packets", run.handoff_packets);

  if (shards > 1 && run.handoff_packets <= 0) {
    std::fprintf(stderr, "FAIL: no packets crossed shards\n");
    return false;
  }
  if (run.completed <= 0) {
    std::fprintf(stderr, "FAIL: no cross-cell flows completed\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke_only = false;
  size_t shards = 0;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke_only = true;
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards = std::strtoull(argv[++i], nullptr, 10);
    } else {
      out_path = argv[i];
    }
  }

  WallTimer wall;
  std::vector<std::pair<std::string, double>> fields;
  bool ok = true;

  if (smoke_only && shards > 0) {
    // The ThreadSanitizer CI workload: only the reduced-scale sharded
    // phase, with cross-cell traffic keeping the handoff channels hot.
    if (!run_sharded_cross(shards, /*seed=*/1, "smoke_", fields)) ok = false;
    fields.emplace_back("wall_seconds_total", wall.seconds());
    if (!out_path.empty() && !write_json(out_path, fields)) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 2;
    }
    return ok ? 0 : 1;
  }

  const ScaleResult smoke = run_scale(kSmoke, /*seed=*/1);
  append_fields(fields, "smoke_", smoke);

  if (!smoke_only) {
    const ScaleResult full = run_scale(kFull, /*seed=*/1);
    append_fields(fields, "capacity_", full);
    // The acceptance floor: a full-scale run must sustain >= 5000
    // concurrent connections.
    if (full.peak_concurrent < 5000) {
      std::fprintf(stderr,
                   "FAIL: peak_concurrent %.0f < 5000 at full scale\n",
                   full.peak_concurrent);
      ok = false;
    }
    if (shards > 0) {
      if (!run_sharded_full(shards, /*seed=*/1, fields)) ok = false;
      if (!run_sharded_cross(shards, /*seed=*/1, "sharded_", fields)) {
        ok = false;
      }
    }
  }
  fields.emplace_back("wall_seconds_total", wall.seconds());

  if (!out_path.empty()) {
    if (!write_json(out_path, fields)) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 2;
    }
    std::printf("wrote %s\n", out_path.c_str());
  }
  return ok ? 0 : 1;
}
