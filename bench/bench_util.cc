#include "bench_util.h"

namespace mptcp {
namespace bench {

namespace {

MptcpConfig make_config(const RunConfig& cfg) {
  MptcpConfig m;
  m.meta_snd_buf_max = cfg.buffer_bytes;
  m.meta_rcv_buf_max = cfg.buffer_bytes;
  m.opportunistic_retransmit = cfg.variant.m1_opportunistic;
  m.penalize_slow_subflows = cfg.variant.m2_penalize;
  m.meta_autotune = cfg.variant.m3_autotune;
  m.cap_subflow_cwnd = cfg.variant.m4_cap;
  m.tcp.autotune = cfg.variant.m3_autotune;
  m.tcp.seed = cfg.seed;
  return m;
}

}  // namespace

RunResult run_mptcp(const RunConfig& cfg) {
  TwoHostRig rig(cfg.seed);
  for (const auto& p : cfg.paths) rig.add_path(p);

  MptcpStack client_stack(rig.client(), make_config(cfg));
  MptcpStack server_stack(rig.server(), make_config(cfg));

  MptcpConnection* server_conn = nullptr;
  std::unique_ptr<BulkReceiver> bulk_rx;
  std::unique_ptr<BlockReceiver> block_rx;
  server_stack.listen(80, [&](MptcpConnection& c) {
    server_conn = &c;
    if (cfg.measure_block_delay) {
      block_rx = std::make_unique<BlockReceiver>(rig.loop(), c);
    } else {
      bulk_rx = std::make_unique<BulkReceiver>(c, /*verify=*/false);
    }
  });

  MptcpConnection& client = client_stack.connect(
      rig.client_addr(0), Endpoint{rig.server_addr(), 80});
  std::unique_ptr<BulkSender> bulk_tx;
  std::unique_ptr<BlockSender> block_tx;
  if (cfg.measure_block_delay) {
    block_tx = std::make_unique<BlockSender>(rig.loop(), client);
  } else {
    bulk_tx = std::make_unique<BulkSender>(client, 0);
  }

  rig.loop().run_until(cfg.warmup);
  const uint64_t rx0 = cfg.measure_block_delay
                           ? block_rx->blocks_completed() * 8192
                           : bulk_rx->bytes_received();
  uint64_t tx0 = 0;
  for (size_t i = 0; i < client.subflow_count(); ++i) {
    tx0 += client.subflow(i)->stats().bytes_sent;
  }

  TimeSeries snd_mem, rcv_mem;
  PeriodicSampler sampler(rig.loop(), 10 * kMillisecond, [&](SimTime t) {
    snd_mem.record(t, static_cast<double>(client.sender_memory()));
    if (server_conn != nullptr) {
      rcv_mem.record(t, static_cast<double>(server_conn->receiver_memory()));
    }
  });

  rig.loop().run_until(cfg.warmup + cfg.duration);

  RunResult out;
  const double secs = to_seconds(cfg.duration);
  const uint64_t rx1 = cfg.measure_block_delay
                           ? block_rx->blocks_completed() * 8192
                           : bulk_rx->bytes_received();
  uint64_t tx1 = 0;
  for (size_t i = 0; i < client.subflow_count(); ++i) {
    tx1 += client.subflow(i)->stats().bytes_sent;
  }
  out.goodput_bps = static_cast<double>(rx1 - rx0) * 8.0 / secs;
  out.throughput_bps = static_cast<double>(tx1 - tx0) * 8.0 / secs;
  out.snd_mem_mean = snd_mem.mean();
  out.rcv_mem_mean = rcv_mem.mean();
  out.m1_count = client.meta_stats().opportunistic_retransmits;
  out.m2_count = client.meta_stats().penalizations;
  if (cfg.measure_block_delay) out.app_delays = block_rx->delays();
  if (!cfg.stats_out.empty()) {
    if (std::FILE* f = std::fopen(cfg.stats_out.c_str(), "w")) {
      std::fputs(rig.dump_stats().c_str(), f);
      std::fclose(f);
    }
  }
  return out;
}

RunResult run_tcp(const RunConfig& cfg, size_t path_index) {
  TwoHostRig rig(cfg.seed);
  for (const auto& p : cfg.paths) rig.add_path(p);

  TransportConfig tc;
  tc.kind = TransportKind::kTcp;
  tc.mptcp.tcp.snd_buf_max = cfg.buffer_bytes;
  tc.mptcp.tcp.rcv_buf_max = cfg.buffer_bytes;
  tc.mptcp.tcp.autotune = cfg.variant.m3_autotune;
  tc.mptcp.tcp.seed = cfg.seed;
  SocketFactory client_factory(rig.client(), tc);
  SocketFactory server_factory(rig.server(), tc);

  TcpConnection* server_conn = nullptr;
  std::unique_ptr<BulkReceiver> bulk_rx;
  std::unique_ptr<BlockReceiver> block_rx;
  server_factory.listen(80, [&](StreamSocket& s) {
    server_conn = server_factory.as_tcp(s);
    if (cfg.measure_block_delay) {
      block_rx = std::make_unique<BlockReceiver>(rig.loop(), s);
    } else {
      bulk_rx = std::make_unique<BulkReceiver>(s, false);
    }
  });

  StreamSocket& client_sock = client_factory.connect(
      rig.client_addr(path_index), Endpoint{rig.server_addr(), 80});
  TcpConnection& client = *client_factory.as_tcp(client_sock);
  std::unique_ptr<BulkSender> bulk_tx;
  std::unique_ptr<BlockSender> block_tx;
  if (cfg.measure_block_delay) {
    block_tx = std::make_unique<BlockSender>(rig.loop(), client_sock);
  } else {
    bulk_tx = std::make_unique<BulkSender>(client_sock, 0);
  }

  rig.loop().run_until(cfg.warmup);
  const uint64_t rx0 = cfg.measure_block_delay
                           ? block_rx->blocks_completed() * 8192
                           : bulk_rx->bytes_received();
  const uint64_t tx0 = client.stats().bytes_sent;

  TimeSeries snd_mem, rcv_mem;
  PeriodicSampler sampler(rig.loop(), 10 * kMillisecond, [&](SimTime t) {
    snd_mem.record(t, static_cast<double>(client.snd_buf_in_use()));
    if (server_conn) {
      rcv_mem.record(t, static_cast<double>(server_conn->rcv_buf_in_use()));
    }
  });

  rig.loop().run_until(cfg.warmup + cfg.duration);

  RunResult out;
  const double secs = to_seconds(cfg.duration);
  const uint64_t rx1 = cfg.measure_block_delay
                           ? block_rx->blocks_completed() * 8192
                           : bulk_rx->bytes_received();
  out.goodput_bps = static_cast<double>(rx1 - rx0) * 8.0 / secs;
  out.throughput_bps =
      static_cast<double>(client.stats().bytes_sent - tx0) * 8.0 / secs;
  out.snd_mem_mean = snd_mem.mean();
  out.rcv_mem_mean = rcv_mem.mean();
  if (cfg.measure_block_delay) out.app_delays = block_rx->delays();
  return out;
}

bool write_json(const std::string& path,
                const std::vector<std::pair<std::string, double>>& fields) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "{\n");
  for (size_t i = 0; i < fields.size(); ++i) {
    std::fprintf(f, "  \"%s\": %.6g%s\n", fields[i].first.c_str(),
                 fields[i].second, i + 1 < fields.size() ? "," : "");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

void print_header(const std::string& xlabel,
                  const std::vector<std::string>& series) {
  std::printf("%-14s", xlabel.c_str());
  for (const auto& s : series) std::printf("%22s", s.c_str());
  std::printf("\n");
}

void print_row(const std::string& label, const std::vector<double>& mbps) {
  std::printf("%-14s", label.c_str());
  for (double v : mbps) std::printf("%22.3f", v);
  std::printf("\n");
}

}  // namespace bench
}  // namespace mptcp
