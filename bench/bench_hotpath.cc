// Hot-path microbenchmarks: the three code paths every experiment in this
// repo funnels through, measured in host wall-clock terms so the numbers
// track real CI capacity rather than simulated goodput.
//
//   1. EventLoop scheduling  -- self-rescheduling callback chains
//      (steady-state schedule/fire) and Timer re-arm churn
//      (schedule/cancel, the RTO pattern: almost every timer armed by a
//      TCP connection is cancelled before it fires).
//   2. Segment forwarding    -- a ring of links moving full-MSS segments,
//      i.e. the deliver() path between every element of the simulator,
//      plus a TSO-style splitter whose cost is dominated by payload
//      handling.
//   3. RFC 1071 checksumming -- the primitive shared by the TCP wire
//      checksum and the MPTCP DSS checksum (paper section 3.3.6).
//
// Writes machine-readable results (BENCH_hotpath.json by default, or the
// path given as argv[1]) so future changes can be compared against the
// recorded trajectory. Iteration counts are fixed, not time-targeted, so
// two builds of the same source do strictly comparable work.
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/meta_recv.h"
#include "core/scheduler.h"
#include "middlebox/segment_splitter.h"
#include "net/checksum.h"
#include "net/payload.h"
#include "sim/event_loop.h"
#include "sim/link.h"
#include "tcp/tcp_buffers.h"

namespace mptcp {
namespace bench {
namespace {

constexpr size_t kMss = 1460;

TcpSegment make_data_segment() {
  TcpSegment seg;
  seg.tuple.src = {IpAddr{0x0a000001}, 40000};
  seg.tuple.dst = {IpAddr{0x0a000002}, 80};
  seg.seq = 1;
  seg.ack = 1;
  seg.ack_flag = true;
  seg.payload.assign(kMss, 0xAB);
  return seg;
}

// --- 1a. steady-state scheduling -----------------------------------------

struct ChainState {
  EventLoop* loop;
  uint64_t fired = 0;
  uint64_t target = 0;
};

void chain_fire(ChainState* c, int lane) {
  if (c->fired >= c->target) return;
  ++c->fired;
  // Mixed horizons so events interleave in the heap instead of degenerating
  // into a FIFO.
  static constexpr SimTime kDts[] = {1 * kMicrosecond, 3 * kMicrosecond,
                                     10 * kMicrosecond};
  const SimTime dt = kDts[(lane + static_cast<int>(c->fired)) % 3];
  c->loop->schedule_in(dt, [c, lane] { chain_fire(c, lane); });
}

double bench_events_per_sec(uint64_t target) {
  EventLoop loop;
  ChainState chain{&loop, 0, target};
  constexpr int kLanes = 256;
  WallTimer w;
  for (int lane = 0; lane < kLanes; ++lane) chain_fire(&chain, lane);
  loop.run();
  return static_cast<double>(chain.fired) / w.seconds();
}

// --- 1b. timer re-arm churn ----------------------------------------------

double bench_timer_churn_per_sec(uint64_t arms) {
  EventLoop loop;
  uint64_t fires = 0;
  Timer rto(loop, [&fires] { ++fires; });
  WallTimer w;
  for (uint64_t i = 0; i < arms; ++i) {
    // Every arm cancels the previous schedule, the pattern of an RTO timer
    // pushed back by each arriving ACK.
    rto.arm_in(kMillisecond + static_cast<SimTime>(i % 16) * kMicrosecond);
  }
  loop.run();
  const double secs = w.seconds();
  if (fires != 1) std::fprintf(stderr, "timer churn: expected 1 fire\n");
  return static_cast<double>(arms) / secs;
}

// --- 2a. link-chain forwarding -------------------------------------------

/// Terminates the ring: counts a completed lap and re-injects the segment
/// until `target_laps` laps have been driven.
class RingPump : public PacketSink {
 public:
  void deliver(TcpSegment seg) override {
    ++laps_;
    if (laps_ < target_laps_) head_->deliver(std::move(seg));
  }
  uint64_t laps_ = 0;
  uint64_t target_laps_ = 0;
  PacketSink* head_ = nullptr;
};

double bench_forward_segments_per_sec(uint64_t target_laps, size_t hops) {
  EventLoop loop;
  LinkConfig cfg;
  cfg.rate_bps = 10e9;
  cfg.prop_delay = 1 * kMicrosecond;
  cfg.buffer_bytes = 1 << 20;
  std::vector<std::unique_ptr<Link>> links;
  for (size_t i = 0; i < hops; ++i) {
    links.push_back(std::make_unique<Link>(loop, cfg, "hop"));
  }
  RingPump pump;
  pump.target_laps_ = target_laps;
  pump.head_ = links.front().get();
  for (size_t i = 0; i + 1 < hops; ++i) {
    links[i]->set_target(links[i + 1].get());
  }
  links.back()->set_target(&pump);

  constexpr int kWindow = 16;  // segments circulating concurrently
  WallTimer w;
  for (int i = 0; i < kWindow; ++i) pump.head_->deliver(make_data_segment());
  loop.run();
  const double secs = w.seconds();
  uint64_t forwarded = 0;
  for (const auto& l : links) forwarded += l->stats().delivered_pkts;
  return static_cast<double>(forwarded) / secs;
}

// --- 2b. TSO-style splitting (payload-copy heavy) ------------------------

class CountingSink : public PacketSink {
 public:
  void deliver(TcpSegment seg) override {
    ++count_;
    bytes_ += seg.payload_size();
  }
  uint64_t count_ = 0;
  uint64_t bytes_ = 0;
};

double bench_split_segments_per_sec(uint64_t inputs) {
  SegmentSplitter splitter(/*mtu_payload=*/512);
  CountingSink sink;
  splitter.set_downstream(&sink);
  const TcpSegment proto = make_data_segment();
  WallTimer w;
  for (uint64_t i = 0; i < inputs; ++i) {
    TcpSegment seg = proto;  // the copy a fan-out/retransmit path would make
    seg.seq = static_cast<uint32_t>(i * kMss);
    splitter.deliver(std::move(seg));
  }
  const double secs = w.seconds();
  if (sink.bytes_ != inputs * kMss) {
    std::fprintf(stderr, "splitter: byte count mismatch\n");
  }
  return static_cast<double>(sink.count_) / secs;
}

// --- 3. checksum kernel ---------------------------------------------------

double bench_checksum_gbps(size_t block, uint64_t iters) {
  std::vector<uint8_t> buf(block);
  for (size_t i = 0; i < block; ++i) buf[i] = static_cast<uint8_t>(i * 31);
  // Fold every round's sum into a running value the optimizer cannot drop,
  // and vary the first byte so no two rounds sum identical data.
  uint32_t guard = 0;
  WallTimer w;
  for (uint64_t i = 0; i < iters; ++i) {
    buf[0] = static_cast<uint8_t>(i);
    guard += ones_complement_sum(buf);
  }
  const double secs = w.seconds();
  if (guard == 0xdeadbeef) std::fprintf(stderr, "(unreachable)\n");
  return static_cast<double>(block) * static_cast<double>(iters) / secs / 1e9;
}

// --- 4. meta out-of-order insert (per algorithm) --------------------------

// The paper's receiver-CPU scenario: several subflows each deliver
// contiguous data-sequence runs, but the runs interleave in DSN space, so
// the connection-level queue stays long-lived. Chunks arrive round-robin
// across subflows (each subflow's next chunk is adjacent to its previous
// one -- the shortcut-friendly pattern), and the queue is only drained once
// it reaches kQueueCap chunks, keeping the scan distance realistic.
double bench_meta_insert_per_sec(RecvAlgo algo, uint64_t target_inserts) {
  constexpr size_t kSubflows = 4;
  constexpr size_t kRun = 16;        // chunks per contiguous per-subflow run
  constexpr size_t kQueueCap = 1024; // drain threshold (chunks)
  MetaReceiveQueue q(algo);
  const Payload proto(kMss, 0xCD);
  uint64_t inserted = 0;
  uint64_t dsn_base = 0;
  uint64_t rcv_nxt = 0;
  WallTimer w;
  while (inserted < target_inserts) {
    for (size_t c = 0; c < kRun; ++c) {
      for (size_t sf = 0; sf < kSubflows; ++sf) {
        const uint64_t dsn = dsn_base + (sf * kRun + c) * kMss;
        q.insert(dsn, proto, sf, rcv_nxt);
        ++inserted;
      }
    }
    dsn_base += kSubflows * kRun * kMss;
    if (q.chunk_count() >= kQueueCap) {
      while (auto chunk = q.pop_ready(rcv_nxt)) {
        rcv_nxt = chunk->dsn + chunk->bytes.size();
      }
    }
  }
  return static_cast<double>(inserted) / w.seconds();
}

// --- 5. end-to-end delivery bandwidth -------------------------------------

// The full receive funnel past reassembly: meta OOO insert, in-order pop,
// app-queue push, and 16 KiB consume steps -- the path every delivered byte
// takes. Reported in GB/s like the checksum kernel.
double bench_deliver_gbps(uint64_t total_bytes) {
  constexpr size_t kBurst = 32;  // chunks landing before each drain
  MetaReceiveQueue q(RecvAlgo::kShortcuts);
  RecvQueue rx;
  const Payload proto(kMss, 0x5A);
  uint64_t rcv_nxt = 0;
  uint64_t delivered = 0;
  WallTimer w;
  while (delivered < total_bytes) {
    // Even chunks of the burst land first, then the odd ones: every other
    // insert fills a gap, exercising placement rather than pure append.
    for (size_t c = 0; c < kBurst; c += 2) {
      q.insert(rcv_nxt + c * kMss, proto, c % 2, rcv_nxt);
    }
    for (size_t c = 1; c < kBurst; c += 2) {
      q.insert(rcv_nxt + c * kMss, proto, c % 2, rcv_nxt);
    }
    while (auto chunk = q.pop_ready(rcv_nxt)) {
      rcv_nxt = chunk->dsn + chunk->bytes.size();
      rx.push(std::move(chunk->bytes));
    }
    while (!rx.empty()) {
      const size_t n = std::min<size_t>(rx.size(), 16 * 1024);
      rx.consume(n);
      delivered += n;
    }
  }
  return static_cast<double>(delivered) / w.seconds() / 1e9;
}

// --- 6. scheduler pick/alloc (the per-chunk send-path decisions) -----------

// Every chunk an MPTCP sender moves goes through Scheduler::pick (choose
// the carrier subflow) and Scheduler::allocate (policy bookkeeping).
// Measured against a live two-subflow connection so pick() scans real
// subflow state (srtt, cwnd space, backup flags), not a synthetic stub.
struct SchedBenchResult {
  double picks_per_sec = 0;
  double allocs_per_sec = 0;
};

SchedBenchResult bench_scheduler(uint64_t picks, uint64_t allocs) {
  SchedBenchResult out;
  TwoHostRig rig;
  rig.add_path(wifi_path());
  rig.add_path(threeg_path());
  MptcpConfig cfg;
  MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
  std::unique_ptr<BulkReceiver> rx;
  ss.listen(80, [&](MptcpConnection& c) {
    rx = std::make_unique<BulkReceiver>(c, /*verify=*/false);
  });
  MptcpConnection& conn =
      cs.connect(rig.client_addr(0), Endpoint{rig.server_addr(), 80});
  // A finite transfer that completes within the warm-up: both subflows
  // carry real RTT and congestion-window state into the selection scan,
  // but their windows have drained by measurement time, so pick() takes
  // the successful path (returns the lowest-RTT subflow) rather than
  // scanning to nullptr.
  BulkSender tx(conn, 1'000'000, /*close_when_done=*/false);
  rig.loop().run_until(2 * kSecond);

  SchedulerHost& host = conn.scheduler_host();
  auto lowest = Scheduler::make(SchedulerPolicy::kLowestRtt);
  uint64_t guard = 0;
  WallTimer w;
  for (uint64_t i = 0; i < picks; ++i) {
    guard += lowest->pick(host, 1 + (i & 1)) != nullptr;
  }
  out.picks_per_sec = static_cast<double>(picks) / w.seconds();
  if (guard == 0) std::fprintf(stderr, "sched pick: nothing picked\n");

  // allocate(): the redundant policy's per-subflow cursor update is the
  // most expensive bookkeeping any policy does per chunk.
  auto redundant = Scheduler::make(SchedulerPolicy::kRedundant);
  MptcpSubflow& sf = *conn.subflow(0);
  WallTimer w2;
  for (uint64_t i = 0; i < allocs; ++i) {
    redundant->allocate(i * kMss, kMss, sf);
  }
  out.allocs_per_sec = static_cast<double>(allocs) / w2.seconds();
  if (redundant->allocs() != allocs) {
    std::fprintf(stderr, "sched alloc: count mismatch\n");
  }
  return out;
}

// --- 7. app-queue read vs backlog (O(bytes read) tripwire) ----------------

// Small reads from a deep receive queue. With the chunked queue a 256-byte
// read costs O(256) no matter how much is buffered behind it; the old flat
// buffer's front-erase made it O(backlog). The small/large pair must stay
// within noise of each other -- a gap reintroduces the O(n) front-erase.
double bench_recv_queue_read_per_sec(size_t backlog_bytes, uint64_t reads) {
  RecvQueue q;
  const Payload chunk(kMss, 0x42);
  while (q.size() < backlog_bytes) q.push(chunk);
  uint8_t buf[256];
  uint64_t guard = 0;
  WallTimer w;
  for (uint64_t i = 0; i < reads; ++i) {
    guard += q.read(buf);
    while (q.size() < backlog_bytes) q.push(chunk);
  }
  const double secs = w.seconds();
  if (guard == 0) std::fprintf(stderr, "recv queue read: no bytes\n");
  return static_cast<double>(reads) / secs;
}

}  // namespace
}  // namespace bench
}  // namespace mptcp

int main(int argc, char** argv) {
  using namespace mptcp;
  using namespace mptcp::bench;

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_hotpath.json";

  WallTimer total;
  const double events_per_sec = bench_events_per_sec(2'000'000);
  std::printf("events_per_sec            %14.0f\n", events_per_sec);
  const double timer_churn = bench_timer_churn_per_sec(1'000'000);
  std::printf("timer_rearms_per_sec      %14.0f\n", timer_churn);
  const double fwd = bench_forward_segments_per_sec(100'000, /*hops=*/8);
  std::printf("forward_segments_per_sec  %14.0f\n", fwd);
  const double split = bench_split_segments_per_sec(300'000);
  std::printf("split_segments_per_sec    %14.0f\n", split);
  const double gbps64k = bench_checksum_gbps(64 * 1024, 20'000);
  std::printf("checksum_gbps (64KiB)     %14.3f\n", gbps64k);
  const double gbps_mss = bench_checksum_gbps(kMss, 400'000);
  std::printf("checksum_gbps (1460B)     %14.3f\n", gbps_mss);

  constexpr uint64_t kMetaInserts = 200'000;
  const double meta_regular =
      bench_meta_insert_per_sec(RecvAlgo::kRegular, kMetaInserts);
  std::printf("meta_insert_regular       %14.0f\n", meta_regular);
  const double meta_tree =
      bench_meta_insert_per_sec(RecvAlgo::kTree, kMetaInserts);
  std::printf("meta_insert_tree          %14.0f\n", meta_tree);
  const double meta_shortcuts =
      bench_meta_insert_per_sec(RecvAlgo::kShortcuts, kMetaInserts);
  std::printf("meta_insert_shortcuts     %14.0f\n", meta_shortcuts);
  const double meta_allshortcuts =
      bench_meta_insert_per_sec(RecvAlgo::kAllShortcuts, kMetaInserts);
  std::printf("meta_insert_allshortcuts  %14.0f\n", meta_allshortcuts);
  const double deliver = bench_deliver_gbps(uint64_t{2} << 30);
  std::printf("deliver_gbps              %14.3f\n", deliver);
  const SchedBenchResult sched = bench_scheduler(2'000'000, 2'000'000);
  std::printf("sched_pick_per_sec        %14.0f\n", sched.picks_per_sec);
  std::printf("sched_alloc_per_sec       %14.0f\n", sched.allocs_per_sec);
  const double read_small =
      bench_recv_queue_read_per_sec(size_t{1} << 20, 500'000);
  std::printf("read_small_backlog        %14.0f\n", read_small);
  const double read_large =
      bench_recv_queue_read_per_sec(size_t{64} << 20, 500'000);
  std::printf("read_large_backlog        %14.0f\n", read_large);

  const bool ok = write_json(
      out_path, {{"events_per_sec", events_per_sec},
                 {"timer_rearms_per_sec", timer_churn},
                 {"forward_segments_per_sec", fwd},
                 {"split_segments_per_sec", split},
                 {"checksum_gbps", gbps64k},
                 {"checksum_mss_gbps", gbps_mss},
                 {"meta_insert_regular_per_sec", meta_regular},
                 {"meta_insert_tree_per_sec", meta_tree},
                 {"meta_insert_shortcuts_per_sec", meta_shortcuts},
                 {"meta_insert_allshortcuts_per_sec", meta_allshortcuts},
                 {"deliver_gbps", deliver},
                 {"sched_pick_per_sec", sched.picks_per_sec},
                 {"sched_alloc_per_sec", sched.allocs_per_sec},
                 {"meta_read_small_backlog_per_sec", read_small},
                 {"meta_read_large_backlog_per_sec", read_large},
                 {"wall_seconds_total", total.seconds()}});
  if (!ok) {
    std::fprintf(stderr, "failed to write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
