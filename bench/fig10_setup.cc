// Figure 10: "Connection establishment latency" -- the delay between
// receiving a SYN and sending the SYN/ACK at the server.
//
// For regular TCP this is ISN generation plus segment construction. For
// MPTCP it additionally includes hashing the client's key (token + IDSN
// derivation), generating the server key, and verifying that its token is
// unique among all established connections -- which is why the cost grows
// when the server already holds 100 or 1000 MPTCP connections.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/keys.h"
#include "net/rng.h"
#include "net/sha1.h"

namespace mptcp {
namespace {

/// Regular TCP SYN processing: ISN generation + header field setup.
void BM_TcpSynProcessing(benchmark::State& state) {
  Rng rng(123);
  for (auto _ : state) {
    const uint32_t isn = rng.next_u32();
    // SYN/ACK construction is a handful of field writes.
    volatile uint32_t fields[4] = {isn, isn + 1, 65535, 1460};
    benchmark::DoNotOptimize(&fields);
  }
  state.SetItemsProcessed(state.iterations());
}

/// MPTCP MP_CAPABLE SYN processing with `range(0)` established
/// connections already holding tokens: hash the client key, generate a
/// server key, verify token uniqueness, derive the IDSN.
void BM_MptcpSynProcessing(benchmark::State& state) {
  const size_t established = static_cast<size_t>(state.range(0));
  TokenTable table(7);
  for (size_t i = 0; i < established; ++i) {
    table.generate_and_register(nullptr);
  }
  Rng rng(123);
  for (auto _ : state) {
    // Hash the client's key (token + IDSN of the remote side)...
    const uint64_t client_key = rng.next_u64();
    benchmark::DoNotOptimize(mptcp_token_from_key(client_key));
    benchmark::DoNotOptimize(mptcp_idsn_from_key(client_key));
    // ...generate our own key and register a unique token...
    auto kt = table.generate_and_register(nullptr);
    benchmark::DoNotOptimize(kt);
    // ...and release it again so the table size stays fixed.
    table.unregister(kt.token);
  }
  state.SetItemsProcessed(state.iterations());
}

/// Section 5.2's suggested optimization, implemented: a pool of
/// precomputed keys moves the SHA-1 work off the SYN path, leaving the
/// client-key hashing plus one table lookup.
void BM_MptcpSynProcessingPooled(benchmark::State& state) {
  const size_t established = static_cast<size_t>(state.range(0));
  TokenTable table(7);
  for (size_t i = 0; i < established; ++i) {
    table.generate_and_register(nullptr);
  }
  Rng rng(123);
  for (auto _ : state) {
    if (table.pool_size() == 0) {
      state.PauseTiming();
      table.prefill_pool(4096);  // refilled off the hot path
      state.ResumeTiming();
    }
    const uint64_t client_key = rng.next_u64();
    benchmark::DoNotOptimize(mptcp_token_from_key(client_key));
    benchmark::DoNotOptimize(mptcp_idsn_from_key(client_key));
    auto kt = table.generate_and_register(nullptr);
    benchmark::DoNotOptimize(kt);
    table.unregister(kt.token);
  }
  state.SetItemsProcessed(state.iterations());
}

/// MP_JOIN SYN processing: token lookup + HMAC-SHA1 authentication.
void BM_MptcpJoinProcessing(benchmark::State& state) {
  const size_t established = static_cast<size_t>(state.range(0));
  TokenTable table(7);
  std::vector<uint32_t> tokens;
  for (size_t i = 0; i < established; ++i) {
    tokens.push_back(table.generate_and_register(nullptr).token);
  }
  Rng rng(123);
  const uint64_t key_a = rng.next_u64(), key_b = rng.next_u64();
  size_t i = 0;
  for (auto _ : state) {
    const uint32_t token = tokens[i++ % tokens.size()];
    benchmark::DoNotOptimize(table.find(token));
    benchmark::DoNotOptimize(
        mptcp_join_mac64(key_b, key_a, rng.next_u32(), rng.next_u32()));
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_TcpSynProcessing);
BENCHMARK(BM_MptcpSynProcessing)->Arg(0)->Arg(100)->Arg(1000);
BENCHMARK(BM_MptcpSynProcessingPooled)->Arg(0)->Arg(1000);
BENCHMARK(BM_MptcpJoinProcessing)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace mptcp

BENCHMARK_MAIN();
