#!/usr/bin/env python3
"""Compare a fresh benchmark JSON against a tracked baseline.

Both files are flat {"metric": number} objects (the shape bench_hotpath
and bench_capacity write). Every metric is treated as higher-is-better; a
metric that fell below baseline * (1 - tolerance) is a regression and
fails the check. Metrics measuring cost rather than rate
(wall_seconds_total, latency metrics ending in _us) are reported but not
gated, as are metrics present in only one file.

Usage: check_bench.py BASELINE NEW [--tolerance 0.30]
Exit status: 0 ok, 1 regression, 2 usage/IO error.
"""

import argparse
import json
import sys

SKIP = {"wall_seconds_total"}
# Lower-is-better latency metrics: tracked for visibility, never gated
# (completion times shift with workload tuning; goodput/concurrency are
# the gated signals).
SKIP_SUFFIXES = ("_us",)


def gated(key: str) -> bool:
    return key not in SKIP and not key.endswith(SKIP_SUFFIXES)


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional drop below baseline "
                         "(default 0.30 = 30%%)")
    args = ap.parse_args()

    try:
        with open(args.baseline) as f:
            base = json.load(f)
        with open(args.new) as f:
            new = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: {e}", file=sys.stderr)
        return 2

    shared = sorted(
        k for k in base
        if k in new and gated(k)
        and isinstance(base[k], (int, float))
        and isinstance(new[k], (int, float))
    )
    if not shared:
        print("check_bench: no comparable metrics", file=sys.stderr)
        return 2

    failed = False
    for k in shared:
        floor = base[k] * (1.0 - args.tolerance)
        ratio = new[k] / base[k] if base[k] else float("inf")
        status = "ok" if new[k] >= floor else "REGRESSION"
        failed |= status != "ok"
        print(f"{status:>10}  {k:<28} base={base[k]:<12.6g} "
              f"new={new[k]:<12.6g} ({ratio:.2%} of baseline)")

    only = sorted((set(base) | set(new)) - set(shared) - SKIP)
    for k in only:
        if k in base and k in new:
            note = "tracked, not gated"
            print(f"{'skipped':>10}  {k:<28} base={base[k]:<12.6g} "
                  f"new={new[k]:<12.6g} ({note})")
        elif k in new:
            # A metric the benchmark gained since the baseline was
            # recorded: it becomes gated once the baseline is refreshed.
            print(f"{'baselined':>10}  {k:<28} new={new[k]:<12.6g} "
                  f"(new metric; baseline on next refresh)")
        else:
            print(f"{'skipped':>10}  {k:<28} (dropped from benchmark)")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
