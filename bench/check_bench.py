#!/usr/bin/env python3
"""Compare a fresh benchmark JSON against a tracked baseline.

Both files are flat {"metric": number} objects (the shape bench_hotpath
and bench_capacity write). Gating is direction-aware:

  * default metrics (rates, counts, concurrency) are higher-is-better --
    falling below baseline * (1 - tolerance) fails the check;
  * wall-clock metrics (wall_seconds_total and any key containing
    "_seconds") are lower-is-better -- rising above
    baseline * (1 + seconds-tolerance) fails the check. Wall time is
    noisy across CI hosts, so its tolerance is wider by default;
  * latency metrics ending in _us are reported but never gated
    (completion times shift with workload tuning; goodput/concurrency
    are the gated signals), as are metrics present in only one file.

Usage: check_bench.py BASELINE NEW [--tolerance 0.30]
                      [--seconds-tolerance 0.75]
Exit status: 0 ok, 1 regression, 2 usage/IO error.
"""

import argparse
import json
import sys

# Lower-is-better latency metrics: tracked for visibility, never gated.
SKIP_SUFFIXES = ("_us",)


def is_seconds(key: str) -> bool:
    """Wall-clock cost metrics: gated in the lower-is-better direction."""
    return "_seconds" in key


def gated(key: str) -> bool:
    return not key.endswith(SKIP_SUFFIXES)


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional drop below baseline for "
                         "higher-is-better metrics (default 0.30 = 30%%)")
    ap.add_argument("--seconds-tolerance", type=float, default=0.75,
                    help="allowed fractional rise above baseline for "
                         "*_seconds* metrics (default 0.75 = 75%%; wall "
                         "time is noisy across hosts)")
    args = ap.parse_args()

    try:
        with open(args.baseline) as f:
            base = json.load(f)
        with open(args.new) as f:
            new = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench: {e}", file=sys.stderr)
        return 2

    shared = sorted(
        k for k in base
        if k in new and gated(k)
        and isinstance(base[k], (int, float))
        and isinstance(new[k], (int, float))
    )
    if not shared:
        print("check_bench: no comparable metrics", file=sys.stderr)
        return 2

    failed = False
    for k in shared:
        ratio = new[k] / base[k] if base[k] else float("inf")
        if is_seconds(k):
            ceiling = base[k] * (1.0 + args.seconds_tolerance)
            status = "ok" if new[k] <= ceiling else "REGRESSION"
            direction = "lower-better"
        else:
            floor = base[k] * (1.0 - args.tolerance)
            status = "ok" if new[k] >= floor else "REGRESSION"
            direction = "higher-better"
        failed |= status != "ok"
        print(f"{status:>10}  {k:<28} base={base[k]:<12.6g} "
              f"new={new[k]:<12.6g} ({ratio:.2%} of baseline, "
              f"{direction})")

    only = sorted((set(base) | set(new)) - set(shared))
    for k in only:
        if k in base and k in new:
            note = "tracked, not gated"
            print(f"{'skipped':>10}  {k:<28} base={base[k]:<12.6g} "
                  f"new={new[k]:<12.6g} ({note})")
        elif k in new:
            # A metric the benchmark gained since the baseline was
            # recorded: it becomes gated once the baseline is refreshed.
            print(f"{'baselined':>10}  {k:<28} new={new[k]:<12.6g} "
                  f"(new metric; baseline on next refresh)")
        else:
            print(f"{'skipped':>10}  {k:<28} (dropped from benchmark)")

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
