// Figure 3: "Impact of enabling or disabling DSM checksums in 10G
// environments" -- goodput as a function of MSS.
//
// The paper's testbed is Xeon servers with 10 GbE NICs: with checksums
// off, TCP checksumming is offloaded to the NIC and throughput is bounded
// by fixed per-packet costs (so it rises with MSS); with DSS checksums
// on, sender and receiver must touch every payload byte in software, and
// at jumbo-frame sizes this costs ~30%.
//
// This benchmark drives the *real* datapath primitives per segment:
//   checksum off: option build/parse + segment assembly only (payload
//                 checksumming offloaded);
//   checksum on:  a single pass of the RFC 1071 payload sum (shared
//                 between the TCP and DSS checksums, exactly as in
//                 section 3.3.6) at the sender, plus verification at the
//                 receiver.
// Reported bytes/second is the software goodput bound for each MSS.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/dss.h"
#include "net/checksum.h"
#include "net/wire.h"

namespace mptcp {
namespace {

/// Models the per-segment datapath cost. A "wire" buffer is produced so
/// the compiler cannot elide the per-byte work.
void run_datapath(benchmark::State& state, bool dss_checksum) {
  const size_t mss = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> payload(mss);
  for (size_t i = 0; i < mss; ++i) payload[i] = static_cast<uint8_t>(i);
  std::vector<uint8_t> frame(mss + 64);  // segment assembly target
  uint64_t dsn = 1'000'000;
  uint32_t ssn = 1;
  uint64_t bytes = 0;

  for (auto _ : state) {
    // Segment assembly: one payload copy, paid in both configurations
    // (with checksum offload the NIC does the summing but the stack still
    // builds the frame).
    std::copy(payload.begin(), payload.end(), frame.begin() + 64);
    benchmark::DoNotOptimize(frame.data());
    // --- sender side -----------------------------------------------------
    DssOption dss;
    dss.data_ack = dsn;
    uint16_t payload_sum = 0;
    if (dss_checksum) {
      // One ones-complement pass over the payload, shared by the DSS
      // checksum and (in a real stack) the TCP checksum.
      payload_sum = ones_complement_sum(payload);
      dss.mapping = DssMapping{
          dsn, ssn, static_cast<uint16_t>(mss),
          dss_checksum_from_partial(dsn, ssn, static_cast<uint16_t>(mss),
                                    payload_sum)};
    } else {
      dss.mapping = DssMapping{dsn, ssn, static_cast<uint16_t>(mss),
                               std::nullopt};
    }
    const auto opts = serialize_options({TcpOption{dss}});
    benchmark::DoNotOptimize(opts.data());

    // --- receiver side ----------------------------------------------------
    const auto parsed = parse_options(opts);
    benchmark::DoNotOptimize(parsed.data());
    if (dss_checksum) {
      const uint16_t check = dss_checksum_from_partial(
          dsn, ssn, static_cast<uint16_t>(mss),
          ones_complement_sum(payload));
      benchmark::DoNotOptimize(check);
    }
    benchmark::DoNotOptimize(payload.data());

    dsn += mss;
    ssn += static_cast<uint32_t>(mss);
    bytes += mss;
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
  state.counters["goodput_Gbps"] = benchmark::Counter(
      static_cast<double>(bytes) * 8.0 / 1e9, benchmark::Counter::kIsRate);
}

void BM_MptcpNoChecksum(benchmark::State& state) {
  run_datapath(state, false);
}
void BM_MptcpChecksum(benchmark::State& state) { run_datapath(state, true); }

BENCHMARK(BM_MptcpNoChecksum)
    ->Arg(536)->Arg(1460)->Arg(2920)->Arg(4344)->Arg(5840)->Arg(7240)
    ->Arg(8936);
BENCHMARK(BM_MptcpChecksum)
    ->Arg(536)->Arg(1460)->Arg(2920)->Arg(4344)->Arg(5840)->Arg(7240)
    ->Arg(8936);

}  // namespace
}  // namespace mptcp

BENCHMARK_MAIN();
