// Figure 6: "The receive-buffer optimizations significantly improve
// goodput with small buffers" -- three scenarios:
//   (a) WiFi (8 Mbps/20 ms) + a very weak, lossy 3G (50 kbps/150 ms/2 s
//       buffer): the paper reports a ~10x gain from M1+M2 around 200 KB.
//   (b) 1 Gbps + 100 Mbps (inter-datacenter asymmetry): M1,2 fills both
//       with ~250 KB while regular MPTCP needs megabytes.
//   (c) three symmetric 1 Gbps links: no difference between variants
//       (when underbuffered, using the fastest path is already optimal).
#include <cstdio>

#include "bench_util.h"

using namespace mptcp;
using namespace mptcp::bench;

namespace {

void run_scenario(const char* title, const std::vector<PathSpec>& paths,
                  const std::vector<size_t>& buffers_kb,
                  const std::vector<size_t>& tcp_baselines,
                  SimTime duration, const std::string& stats_out = "") {
  std::printf("\n# %s\n", title);
  std::printf("%-10s %16s %16s", "buf_KB", "regMPTCP", "MPTCP+M1,2");
  for (size_t b : tcp_baselines) std::printf("        TCP/path%zu", b);
  std::printf("   (Mbps)\n");

  bool stats_pending = !stats_out.empty();
  for (size_t kb : buffers_kb) {
    RunConfig cfg;
    cfg.paths = paths;
    cfg.buffer_bytes = kb * 1000;
    cfg.warmup = 3 * kSecond;
    cfg.duration = duration;

    cfg.variant = regular_mptcp();
    const RunResult reg = run_mptcp(cfg);
    cfg.variant = mptcp_m12();
    // Export the full stats registry from the first M1,2 data point.
    if (stats_pending) {
      cfg.stats_out = stats_out;
      stats_pending = false;
    }
    const RunResult m12 = run_mptcp(cfg);
    cfg.stats_out.clear();

    std::printf("%-10zu %16.2f %16.2f", kb, reg.goodput_bps / 1e6,
                m12.goodput_bps / 1e6);
    for (size_t b : tcp_baselines) {
      const RunResult t = run_tcp(cfg, b);
      std::printf(" %16.2f", t.goodput_bps / 1e6);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string stats_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--stats" && i + 1 < argc) {
      stats_out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--stats FILE]\n", argv[0]);
      return 2;
    }
  }

  run_scenario("Fig 6(a): WiFi + very weak lossy 3G (50 kbps, 2% loss)",
               {wifi_path(), weak_threeg_path(0.02)},
               {50, 100, 200, 400, 600, 1000, 2000},
               {0, 1}, quick ? 10 * kSecond : 30 * kSecond, stats_out);

  run_scenario(
      "Fig 6(b): 1 Gbps + 100 Mbps",
      {ethernet_path(1e9, 400 * kMicrosecond, 1 * kMillisecond),
       ethernet_path(100e6, 400 * kMicrosecond, 4 * kMillisecond)},
      {64, 128, 250, 500, 1000, 2000, 4000, 8000, 16000},
      {0, 1}, quick ? 2 * kSecond : 4 * kSecond);

  run_scenario(
      "Fig 6(c): three symmetric 1 Gbps links",
      {ethernet_path(1e9, 400 * kMicrosecond, 1 * kMillisecond),
       ethernet_path(1e9, 400 * kMicrosecond, 1 * kMillisecond),
       ethernet_path(1e9, 400 * kMicrosecond, 1 * kMillisecond)},
      {250, 500, 1000, 2000, 4000, 8000, 16000},
      {0}, quick ? 2 * kSecond : 4 * kSecond);
  return 0;
}
