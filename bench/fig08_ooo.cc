// Figure 8: "Effect of ofo receive algorithms on load".
//
// The paper measures receiver CPU utilization during a 2 Gbps download
// (2 x 1 GbE) with 2 and 8 subflows, for the four out-of-order insertion
// algorithms. Here the same algorithms process a synthetic arrival trace
// that reproduces multipath interleaving: each subflow delivers batches
// of contiguous data sequence numbers (the scheduler's allocation
// granularity), with subflows' deliveries skewed by their RTT difference
// so data-level arrivals interleave. Reported: ns/insert (real CPU) and
// ordering comparisons per insert (the algorithmic work the paper's CPU
// graph reflects).
//
// Expected ordering: Regular >> Tree > Shortcuts > AllShortcuts, with the
// gap widening at 8 subflows.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/meta_recv.h"
#include "net/rng.h"

namespace mptcp {
namespace {

struct Arrival {
  uint64_t dsn;
  size_t subflow;
  size_t len;
};

/// Builds a multipath arrival trace: data is allocated to subflows in
/// round-robin batches of contiguous segments; each subflow's deliveries
/// are shifted by a per-subflow RTT skew, so arrivals interleave at the
/// data level exactly as a multipath receiver sees them.
std::vector<Arrival> make_trace(size_t subflows, size_t batch_segments,
                                size_t segments_total) {
  constexpr size_t kMss = 1460;
  struct Timed {
    double t;
    Arrival a;
  };
  std::vector<Timed> items;
  items.reserve(segments_total);
  uint64_t dsn = 0;
  size_t batch = 0;
  while (items.size() < segments_total) {
    const size_t sf = batch % subflows;
    // RTT skew per subflow, in batch-time units; non-integral so arrival
    // patterns do not accidentally synchronize.
    const double skew = static_cast<double>(sf) * 2.7;
    for (size_t i = 0; i < batch_segments && items.size() < segments_total;
         ++i) {
      items.push_back(
          {static_cast<double>(batch) + skew + 0.1 * static_cast<double>(i),
           Arrival{dsn, sf, kMss}});
      dsn += kMss;
    }
    ++batch;
  }
  std::stable_sort(items.begin(), items.end(),
                   [](const Timed& x, const Timed& y) { return x.t < y.t; });
  std::vector<Arrival> out;
  out.reserve(items.size());
  for (const auto& it : items) out.push_back(it.a);
  return out;
}

void run_algo(benchmark::State& state, RecvAlgo algo) {
  const size_t subflows = static_cast<size_t>(state.range(0));
  const auto trace = make_trace(subflows, 8, 4096);

  uint64_t inserts = 0;
  double comparisons = 0;
  for (auto _ : state) {
    MetaReceiveQueue q(algo);
    uint64_t rcv_nxt = 0;
    for (const auto& a : trace) {
      if (a.dsn == rcv_nxt) {
        // Fast path: in-order data never touches the ooo queue.
        rcv_nxt += a.len;
      } else {
        q.insert(a.dsn, Payload(a.len, 0), a.subflow, rcv_nxt);
      }
      // Drain whatever is now in order, as the real receiver does.
      while (auto c = q.pop_ready(rcv_nxt)) rcv_nxt += c->bytes.size();
    }
    while (auto c = q.pop_ready(rcv_nxt)) rcv_nxt += c->bytes.size();
    inserts += q.stats().inserts;
    comparisons += static_cast<double>(q.stats().comparisons);
    benchmark::DoNotOptimize(rcv_nxt);
  }
  state.SetItemsProcessed(static_cast<int64_t>(inserts));
  state.counters["cmp_per_insert"] =
      comparisons / static_cast<double>(inserts);
  if (algo == RecvAlgo::kShortcuts || algo == RecvAlgo::kAllShortcuts) {
    MetaReceiveQueue probe(algo);
    uint64_t rcv_nxt = 0;
    for (const auto& a : trace) {
      if (a.dsn == rcv_nxt) {
        rcv_nxt += a.len;
      } else {
        probe.insert(a.dsn, Payload(a.len, 0), a.subflow, rcv_nxt);
      }
      while (auto c = probe.pop_ready(rcv_nxt)) rcv_nxt += c->bytes.size();
    }
    const auto& st = probe.stats();
    state.counters["hit_rate"] =
        static_cast<double>(st.shortcut_hits) /
        static_cast<double>(st.shortcut_hits + st.shortcut_misses);
  }
}

void BM_Regular(benchmark::State& s) { run_algo(s, RecvAlgo::kRegular); }
void BM_Tree(benchmark::State& s) { run_algo(s, RecvAlgo::kTree); }
void BM_Shortcuts(benchmark::State& s) { run_algo(s, RecvAlgo::kShortcuts); }
void BM_AllShortcuts(benchmark::State& s) {
  run_algo(s, RecvAlgo::kAllShortcuts);
}

BENCHMARK(BM_Regular)->Arg(2)->Arg(8);
BENCHMARK(BM_Tree)->Arg(2)->Arg(8);
BENCHMARK(BM_Shortcuts)->Arg(2)->Arg(8);
BENCHMARK(BM_AllShortcuts)->Arg(2)->Arg(8);

}  // namespace
}  // namespace mptcp

BENCHMARK_MAIN();
