// Figure 5: "Receive buffer impact on memory use".
//
// Same WiFi+3G scenario, buffers autotuned (Mechanism 3) up to the
// configured maximum; reports mean sender- and receiver-side memory with
// and without cwnd capping (Mechanism 4), against single-path TCP
// baselines. Expected shape: TCP/WiFi lowest; TCP/3G higher; MPTCP
// plateaus around several hundred KB; capping roughly halves MPTCP's
// sender memory at large configured buffers.
#include <cstdio>

#include "bench_util.h"

using namespace mptcp;
using namespace mptcp::bench;

int main() {
  std::printf(
      "# Fig 5: mean memory (KB) vs configured max buffer, WiFi+3G, "
      "autotuning on\n");
  std::printf("%-8s %12s %12s %12s %12s %12s %12s | %12s %12s %12s %12s\n",
              "buf_KB", "snd_M123", "snd_M1234", "snd_M3", "snd_M34",
              "snd_TCPwifi", "snd_TCP3g", "rcv_M123", "rcv_M1234", "rcv_M3",
              "rcv_M34");

  for (size_t kb : {50, 100, 200, 300, 400, 500, 600, 800, 1000}) {
    RunConfig cfg;
    cfg.paths = {wifi_path(), threeg_path()};
    cfg.buffer_bytes = kb * 1000;
    cfg.warmup = 5 * kSecond;
    cfg.duration = 25 * kSecond;

    cfg.variant = mptcp_m123();
    const RunResult m123 = run_mptcp(cfg);
    const RunResult tcp_wifi = run_tcp(cfg, 0);
    const RunResult tcp_3g = run_tcp(cfg, 1);

    cfg.variant = mptcp_m1234();
    const RunResult m1234 = run_mptcp(cfg);
    // Isolated M3 vs M3+M4 pair: shows capping's effect without the
    // penalization mechanism also bounding the 3G queue (see
    // EXPERIMENTS.md for the discussion).
    cfg.variant = mptcp_m3();
    const RunResult m3 = run_mptcp(cfg);
    cfg.variant = mptcp_m34();
    const RunResult m34 = run_mptcp(cfg);

    std::printf(
        "%-8zu %12.1f %12.1f %12.1f %12.1f %12.1f %12.1f | %12.1f %12.1f "
        "%12.1f %12.1f\n",
        kb, m123.snd_mem_mean / 1e3, m1234.snd_mem_mean / 1e3,
        m3.snd_mem_mean / 1e3, m34.snd_mem_mean / 1e3,
        tcp_wifi.snd_mem_mean / 1e3, tcp_3g.snd_mem_mean / 1e3,
        m123.rcv_mem_mean / 1e3, m1234.rcv_mem_mean / 1e3,
        m3.rcv_mem_mean / 1e3, m34.rcv_mem_mean / 1e3);
    std::fflush(stdout);
  }
  return 0;
}
