// Figure 9: "MPTCP used over real 3G and WiFi".
//
// The paper's field experiment used a commercial Belgian 3G network
// (TCP tops out at ~2 Mbps) and a WiFi access point capped at 2 Mbps.
// We emulate both: 3G = 2 Mbps / 150 ms RTT / deep (2 s) buffer with a
// trickle of random loss; WiFi = 2 Mbps / 20 ms RTT / 100 ms buffer.
// Expected shape: TCP gets ~2 Mbps on either path (3G lags at tiny
// buffers because of its RTT); MPTCP matches the best path by 100-200 KB
// and approaches the 4 Mbps sum at 500 KB -- "never underperforms TCP".
#include <cstdio>

#include "bench_util.h"

using namespace mptcp;
using namespace mptcp::bench;

int main() {
  std::printf("# Fig 9: goodput vs buffer, capped WiFi (2M/20ms) + 3G "
              "(2M/150ms), Mbps\n");
  std::printf("%-10s %14s %14s %14s\n", "buf_KB", "MPTCP", "TCP/WiFi",
              "TCP/3G");
  for (size_t kb : {50, 100, 200, 500}) {
    RunConfig cfg;
    cfg.paths = {capped_wifi_path(), capped_threeg_path()};
    cfg.buffer_bytes = kb * 1000;
    cfg.warmup = 5 * kSecond;
    cfg.duration = 30 * kSecond;
    cfg.variant = mptcp_m12();

    const RunResult mp = run_mptcp(cfg);
    const RunResult wifi = run_tcp(cfg, 0);
    const RunResult tg = run_tcp(cfg, 1);
    std::printf("%-10zu %14.2f %14.2f %14.2f\n", kb, mp.goodput_bps / 1e6,
                wifi.goodput_bps / 1e6, tg.goodput_bps / 1e6);
    std::fflush(stdout);
  }
  return 0;
}
