// Ablation: packet scheduling policy and coupled congestion control.
//
// Two design choices DESIGN.md calls out, isolated:
//
//  1. Scheduler policy (section 4.2's lowest-RTT-first vs naive
//     round-robin vs fully redundant) over asymmetric WiFi+3G paths.
//     Expected: lowest-RTT wins goodput; round-robin suffers from
//     head-of-line blocking behind the slow path; redundant matches the
//     best single path but burns the 3G capacity on duplicates.
//
//  2. Coupled (LIA) vs uncoupled congestion control sharing a bottleneck
//     with a regular TCP flow (the section 2 fairness requirement: "at
//     least as well as TCP, but without starving TCP"). Two MPTCP
//     subflows and one TCP flow share one 8 Mbps link: uncoupled MPTCP
//     takes ~2/3; coupled MPTCP takes about half.
#include <cstdio>
#include <memory>

#include "bench_util.h"

using namespace mptcp;
using namespace mptcp::bench;

namespace {

void scheduler_ablation(bool with_mechanisms) {
  std::printf("# Ablation 1%s: scheduler policy, WiFi+3G, 300 KB buffers, "
              "M1/M2 %s (Mbps)\n",
              with_mechanisms ? "a" : "b", with_mechanisms ? "on" : "off");
  std::printf("%-14s %12s %12s %14s\n", "policy", "goodput", "throughput",
              "wasted");
  for (SchedulerPolicy policy :
       {SchedulerPolicy::kLowestRtt, SchedulerPolicy::kRoundRobin,
        SchedulerPolicy::kRedundant}) {
    TwoHostRig rig;
    rig.add_path(wifi_path());
    rig.add_path(threeg_path());
    MptcpConfig cfg;
    cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 300 * 1000;
    cfg.scheduler = policy;
    cfg.opportunistic_retransmit = with_mechanisms;
    cfg.penalize_slow_subflows = with_mechanisms;
    MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
    std::unique_ptr<BulkReceiver> rx;
    ss.listen(80, [&](MptcpConnection& c) {
      rx = std::make_unique<BulkReceiver>(c, false);
    });
    MptcpConnection& cc =
        cs.connect(rig.client_addr(0), Endpoint{rig.server_addr(), 80});
    BulkSender tx(cc, 0);
    rig.loop().run_until(5 * kSecond);
    const uint64_t r0 = rx->bytes_received();
    uint64_t t0 = 0;
    for (size_t i = 0; i < cc.subflow_count(); ++i) {
      t0 += cc.subflow(i)->stats().bytes_sent;
    }
    rig.loop().run_until(25 * kSecond);
    uint64_t t1 = 0;
    for (size_t i = 0; i < cc.subflow_count(); ++i) {
      t1 += cc.subflow(i)->stats().bytes_sent;
    }
    const double good = (rx->bytes_received() - r0) * 8.0 / 20.0;
    const double thru = static_cast<double>(t1 - t0) * 8.0 / 20.0;
    std::printf("%-14s %12.2f %12.2f %13.1f%%\n",
                std::string(to_string(policy)).c_str(), good / 1e6,
                thru / 1e6, 100.0 * (thru - good) / std::max(thru, 1.0));
  }
}

void fairness_ablation() {
  std::printf("\n# Ablation 2: coupled (LIA) vs uncoupled CC sharing an "
              "8 Mbps bottleneck with 1 TCP flow\n");
  std::printf("%-12s %14s %14s %18s\n", "cc", "MPTCP Mbps", "TCP Mbps",
              "MPTCP share");
  for (bool coupled : {true, false}) {
    // One bottleneck path; the MPTCP connection opens two subflows over
    // it from the client's two addresses, competing with a TCP flow.
    TwoHostRig rig;
    PathSpec bottleneck = wifi_path();
    rig.add_path(bottleneck);
    // Second client address routed over the *same* physical path: model
    // by an identical path whose links share nothing -- instead, to truly
    // share a bottleneck, both subflows and the TCP flow use path 0 and a
    // second address is NOT added. Subflows toward different server
    // ports: the client's single address and the full-mesh logic would
    // not open a second subflow, so we open it explicitly below.
    MptcpConfig cfg;
    cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 512 * 1024;
    cfg.cc_algo = coupled ? CcAlgo::kLia : CcAlgo::kNewReno;
    cfg.full_mesh = false;
    MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
    std::unique_ptr<BulkReceiver> mp_rx;
    ss.listen(80, [&](MptcpConnection& c) {
      mp_rx = std::make_unique<BulkReceiver>(c, false);
    });
    MptcpConnection& mp =
        cs.connect(rig.client_addr(0), Endpoint{rig.server_addr(), 80});
    BulkSender mp_tx(mp, 0);
    // Second subflow over the same path once established.
    rig.loop().schedule_in(200 * kMillisecond, [&] {
      mp.open_subflow(rig.client_addr(0), Endpoint{rig.server_addr(), 80});
    });

    // Competing plain TCP flow, via a kTcp factory pair.
    TransportConfig ttc;
    ttc.kind = TransportKind::kTcp;
    ttc.mptcp.tcp.snd_buf_max = ttc.mptcp.tcp.rcv_buf_max = 512 * 1024;
    SocketFactory tcp_cf(rig.client(), ttc), tcp_sf(rig.server(), ttc);
    std::unique_ptr<BulkReceiver> tcp_rx;
    tcp_sf.listen(81, [&](StreamSocket& s) {
      tcp_rx = std::make_unique<BulkReceiver>(s, false);
    });
    StreamSocket& tcp_cli =
        tcp_cf.connect(rig.client_addr(0), Endpoint{rig.server_addr(), 81});
    BulkSender tcp_tx(tcp_cli, 0);

    rig.loop().run_until(5 * kSecond);
    const uint64_t m0 = mp_rx->bytes_received(), t0 = tcp_rx->bytes_received();
    rig.loop().run_until(45 * kSecond);
    const double m = (mp_rx->bytes_received() - m0) * 8.0 / 40.0;
    const double t = (tcp_rx->bytes_received() - t0) * 8.0 / 40.0;
    std::printf("%-12s %14.2f %14.2f %17.1f%%\n",
                coupled ? "coupled" : "uncoupled", m / 1e6, t / 1e6,
                100.0 * m / (m + t));
  }
  std::printf("(coupled should sit near or below 50%%: one fair share for "
              "the whole connection;\n uncoupled above it -- toward 67%% in "
              "the fluid limit -- because each subflow\n claims its own "
              "share; drop-tail loss synchronization damps the gap.)\n");
}

void backup_ablation() {
  std::printf("\n# Ablation 3: backup subflow policy, WiFi primary + 3G "
              "demoted to backup via MP_PRIO (Mbps)\n");
  std::printf("%-14s %12s %14s\n", "policy", "goodput", "3G share");
  for (SchedulerPolicy policy :
       {SchedulerPolicy::kLowestRtt, SchedulerPolicy::kBackupAware}) {
    TwoHostRig rig;
    rig.add_path(wifi_path());
    rig.add_path(threeg_path());
    MptcpConfig cfg;
    // Buffers well above the WiFi BDP (~20 KB) keep the connection
    // cwnd-limited rather than receive-window-limited -- the regime
    // where the primary is congestion-blocked at pick time and spilling
    // to the backup pays. (Undersized buffers make the meta window the
    // binding constraint instead, and the spill branch never triggers.)
    cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 300 * 1024;
    cfg.scheduler = policy;
    MptcpStack cs(rig.client(), cfg), ss(rig.server(), cfg);
    std::unique_ptr<BulkReceiver> rx;
    ss.listen(80, [&](MptcpConnection& c) {
      rx = std::make_unique<BulkReceiver>(c, false);
    });
    MptcpConnection& cc =
        cs.connect(rig.client_addr(0), Endpoint{rig.server_addr(), 80});
    BulkSender tx(cc, 0);
    // Demote every 3G subflow once the mesh is up.
    rig.loop().schedule_in(500 * kMillisecond, [&] {
      for (size_t i = 0; i < cc.subflow_count(); ++i) {
        if (cc.subflow(i)->local().addr == rig.client_addr(1)) {
          cc.set_subflow_backup(i, true);
        }
      }
    });
    rig.loop().run_until(5 * kSecond);
    const uint64_t r0 = rx->bytes_received();
    rig.loop().run_until(25 * kSecond);
    uint64_t total = 0, backup = 0;
    for (size_t i = 0; i < cc.subflow_count(); ++i) {
      total += cc.subflow(i)->stats().bytes_sent;
      if (cc.subflow(i)->backup()) backup += cc.subflow(i)->stats().bytes_sent;
    }
    const double good = (rx->bytes_received() - r0) * 8.0 / 20.0;
    std::printf("%-14s %12.2f %13.1f%%\n",
                std::string(to_string(policy)).c_str(), good / 1e6,
                100.0 * static_cast<double>(backup) /
                    static_cast<double>(std::max<uint64_t>(total, 1)));
  }
  std::printf("(lowest-rtt idles the backup entirely; backup-aware spills "
              "onto it only while\n every primary is window-blocked, so its "
              "3G share should be small but nonzero.)\n");
}

}  // namespace

int main() {
  scheduler_ablation(/*with_mechanisms=*/true);
  std::printf("\n");
  scheduler_ablation(/*with_mechanisms=*/false);
  fairness_ablation();
  backup_ablation();
  return 0;
}
