// Figure 2 / section 3.3.3: why DATA_ACKs cannot live in the payload.
//
// The paper's central protocol argument: if connection-level
// acknowledgments are encoded as chunks *inside* the TCP payload, they
// become subject to flow control, and a pipelining workload deadlocks:
//
//   1. Client C pipelines requests; server S is busy sending a large
//      response, so S's application is not reading -> S's receive buffer
//      fills with C's queued requests.
//   2. S's advertised window to C closes.
//   3. C receives response data and must send a DATA_ACK -- but the
//      DATA_ACK is payload, and S's closed window forbids sending it.
//   4. S cannot free its send buffer without the DATA_ACK; its
//      application blocks on write; it never drains its receive buffer;
//      the window never opens. Deadlock.
//
// This binary demonstrates the cycle with a minimal executable model of
// both encodings and prints whether each run completes. It is a model of
// the *encoding semantics* (windows, buffers, acknowledgment placement),
// not a packet simulation -- the deadlock is a property of the semantics.
#include <cstdio>
#include <cstdint>
#include <deque>

namespace {

/// One endpoint of the model. Buffers are in abstract "units".
struct Endpoint {
  const char* name;
  // Send side: data the app has written, not yet freed by a DATA_ACK.
  uint64_t send_buffered = 0;
  uint64_t send_capacity = 4;
  uint64_t sent_unacked = 0;  // delivered to peer, awaiting DATA_ACK
  // Receive side: delivered units the app has not read.
  uint64_t recv_buffered = 0;
  uint64_t recv_capacity = 4;
  // Units the app still wants to write / expects to read.
  uint64_t app_to_write = 0;
  uint64_t app_to_read = 0;
  bool app_reads_only_after_writing = false;  // S's busy-sending behaviour

  uint64_t window() const { return recv_capacity - recv_buffered; }
  bool app_may_read() const {
    return !app_reads_only_after_writing || app_to_write == 0;
  }
};

/// Runs the exchange with the chosen DATA_ACK encoding; returns true if
/// both applications finish, false if no step is possible (deadlock).
bool run(bool acks_in_payload, bool verbose) {
  Endpoint c{"C"}, s{"S"};
  // C pipelines 6 units of requests; S answers with 8 units and only
  // reads requests once its response is fully written (Fig. 2's setup).
  c.app_to_write = 6;
  s.app_to_read = 6;
  s.app_to_write = 8;
  c.app_to_read = 8;
  s.app_reads_only_after_writing = true;

  // Pending connection-level acknowledgments each side owes the other.
  uint64_t c_owes_ack = 0, s_owes_ack = 0;

  auto step = [&](Endpoint& from, Endpoint& to, uint64_t& from_owes_ack,
                  uint64_t& to_owes_ack) -> bool {
    bool progressed = false;
    // App writes into the send buffer.
    if (from.app_to_write > 0 && from.send_buffered < from.send_capacity) {
      from.app_to_write -= 1;
      from.send_buffered += 1;
      progressed = true;
    }
    // Transmit one unit of data if the peer's window admits it.
    if (from.send_buffered > from.sent_unacked && to.window() > 0) {
      from.sent_unacked += 1;
      to.recv_buffered += 1;
      to_owes_ack += 1;
      progressed = true;
    }
    // Deliver a pending DATA_ACK.
    if (from_owes_ack > 0) {
      bool can_send_ack = true;
      if (acks_in_payload) {
        // A payload-encoded DATA_ACK is data: it needs window at the
        // peer (and occupies a slot there until the TLV is parsed, which
        // we generously make free).
        can_send_ack = to.window() > 0;
      }
      if (can_send_ack) {
        from_owes_ack -= 1;
        // Acknowledgment frees one unit of the peer's send buffer.
        if (to.sent_unacked > 0) {
          to.sent_unacked -= 1;
          to.send_buffered -= 1;
        }
        progressed = true;
      }
    }
    // App reads from the receive buffer.
    if (from.recv_buffered > 0 && from.app_to_read > 0 &&
        from.app_may_read()) {
      from.recv_buffered -= 1;
      from.app_to_read -= 1;
      progressed = true;
    }
    return progressed;
  };

  for (int round = 0; round < 1000; ++round) {
    const bool p1 = step(c, s, c_owes_ack, s_owes_ack);
    const bool p2 = step(s, c, s_owes_ack, c_owes_ack);
    const bool done = c.app_to_write == 0 && s.app_to_write == 0 &&
                      c.app_to_read == 0 && s.app_to_read == 0 &&
                      c.send_buffered == 0 && s.send_buffered == 0;
    if (done) {
      if (verbose) std::printf("    completed in %d rounds\n", round + 1);
      return true;
    }
    if (!p1 && !p2) {
      if (verbose) {
        std::printf("    DEADLOCK at round %d:\n", round + 1);
        std::printf("      S: send_buffered=%llu (app blocked on write), "
                    "recv_buffered=%llu/%llu (app not reading)\n",
                    static_cast<unsigned long long>(s.send_buffered),
                    static_cast<unsigned long long>(s.recv_buffered),
                    static_cast<unsigned long long>(s.recv_capacity));
        std::printf("      C: owes %llu DATA_ACKs it cannot send "
                    "(S's window is closed)\n",
                    static_cast<unsigned long long>(c_owes_ack));
      }
      return false;
    }
  }
  return false;
}

}  // namespace

int main() {
  std::printf("# Fig 2 / section 3.3.3: DATA_ACK encoding and the "
              "flow-control deadlock\n\n");
  std::printf("  DATA_ACKs as payload chunks (subject to flow control):\n");
  const bool payload_ok = run(/*acks_in_payload=*/true, true);
  std::printf("\n  DATA_ACKs as TCP options (exempt from flow control):\n");
  const bool option_ok = run(/*acks_in_payload=*/false, true);
  std::printf("\nresult: payload encoding %s, option encoding %s\n",
              payload_ok ? "completed (unexpected!)" : "deadlocks",
              option_ok ? "completes" : "deadlocks (unexpected!)");
  std::printf("=> \"there was only one viable choice\" (section 1).\n");
  return payload_ok || !option_ok ? 1 : 0;
}
