// Figure 11: "Apache-benchmark with 100 clients" -- requests/second as a
// function of transfer size for MPTCP, round-robin link bonding, and
// regular TCP, over two gigabit links.
//
// The server runs a single-core CPU model (per-segment cost plus the
// per-connection handshake costs measured in the Fig. 10 benchmark), so
// small transfers are CPU/handshake bound and large transfers are link
// bound -- the regimes whose interaction produces the paper's crossovers:
//   * below ~30 KB MPTCP serves *fewer* requests than TCP (it pays an
//     extra subflow handshake per connection that short flows never
//     amortize);
//   * bonding is strongest at small sizes (packet-level striping needs no
//     per-connection setup to use both links);
//   * beyond ~100 KB MPTCP roughly doubles TCP and edges out bonding.
#include <cstdio>
#include <memory>

#include "app/http_app.h"
#include "bench_util.h"
#include "bond/bonding.h"

using namespace mptcp;
using namespace mptcp::bench;

namespace {

constexpr SimTime kWarmup = 500 * kMillisecond;
constexpr SimTime kMeasure = 2 * kSecond;
constexpr size_t kClients = 100;
constexpr double kLinkRate = 1e9;

Host::CpuConfig server_cpu() {
  Host::CpuConfig cpu;
  cpu.per_segment = 8 * kMicrosecond;
  return cpu;
}

TransportConfig http_config(bool mptcp_enabled) {
  TransportConfig cfg;
  cfg.kind = mptcp_enabled ? TransportKind::kMptcp : TransportKind::kTcp;
  cfg.mptcp.meta_snd_buf_max = cfg.mptcp.meta_rcv_buf_max = 128 * 1024;
  cfg.mptcp.tcp.time_wait = 10 * kMillisecond;  // busy-server tuning
  return cfg;
}

double run_two_path(bool mptcp_enabled, uint64_t size) {
  TwoHostRig rig;
  rig.add_path(ethernet_path(kLinkRate, 100 * kMicrosecond,
                             2 * kMillisecond));
  rig.add_path(ethernet_path(kLinkRate, 100 * kMicrosecond,
                             2 * kMillisecond));
  rig.server().set_cpu(server_cpu());

  SocketFactory cs(rig.client(), http_config(mptcp_enabled));
  SocketFactory ss(rig.server(), http_config(mptcp_enabled));
  HttpServer server(ss, 80);
  HttpClientPool pool(cs, rig.client_addr(0), Endpoint{rig.server_addr(), 80},
                      kClients, size);
  pool.start();
  rig.loop().run_until(kWarmup);
  const uint64_t c0 = pool.completed();
  rig.loop().run_until(kWarmup + kMeasure);
  return static_cast<double>(pool.completed() - c0) / to_seconds(kMeasure);
}

double run_bonding(uint64_t size) {
  EventLoop loop;
  Network net;
  Host client(loop, "client"), server(loop, "server");
  const IpAddr caddr(10, 0, 0, 2), saddr(10, 99, 0, 1);

  LinkConfig leg;
  leg.rate_bps = kLinkRate;
  leg.prop_delay = 50 * kMicrosecond;
  leg.buffer_bytes = LinkConfig::buffer_for_delay(kLinkRate,
                                                  2 * kMillisecond);
  Link up1(loop, leg, "up1"), up2(loop, leg, "up2");
  Link down1(loop, leg, "down1"), down2(loop, leg, "down2");
  up1.set_target(&net);
  up2.set_target(&net);
  down1.set_target(&net);
  down2.set_target(&net);

  BondDevice cbond, sbond;
  cbond.add_leg(&up1);
  cbond.add_leg(&up2);
  sbond.add_leg(&down1);
  sbond.add_leg(&down2);
  client.add_interface(caddr, &cbond);
  server.add_interface(saddr, &sbond);
  net.attach(caddr, &client);
  net.attach(saddr, &server);
  server.set_cpu(server_cpu());

  SocketFactory cs(client, http_config(false));
  SocketFactory ss(server, http_config(false));
  HttpServer http(ss, 80);
  HttpClientPool pool(cs, caddr, Endpoint{saddr, 80}, kClients, size);
  pool.start();
  loop.run_until(kWarmup);
  const uint64_t c0 = pool.completed();
  loop.run_until(kWarmup + kMeasure);
  return static_cast<double>(pool.completed() - c0) / to_seconds(kMeasure);
}

}  // namespace

int main() {
  std::printf("# Fig 11: requests/sec vs transfer size, 100 closed-loop "
              "clients, 2 x 1 Gbps\n");
  std::printf("%-12s %14s %14s %14s\n", "size_KB", "MPTCP", "bonding",
              "regularTCP");
  for (uint64_t kb : {4, 10, 20, 30, 50, 100, 150, 200, 300}) {
    const double mptcp_rps = run_two_path(true, kb * 1000);
    const double bond_rps = run_bonding(kb * 1000);
    const double tcp_rps = run_two_path(false, kb * 1000);
    std::printf("%-12llu %14.0f %14.0f %14.0f\n",
                static_cast<unsigned long long>(kb), mptcp_rps, bond_rps,
                tcp_rps);
    std::fflush(stdout);
  }
  return 0;
}
