// The middlebox gauntlet: one MPTCP connection, five middleboxes at once.
//
// The deployability thesis of the paper in a single run: a connection
// that simultaneously traverses a NAT, an ISN-rewriting firewall, a
// TSO-style splitter, a pro-active ACKing proxy and (on its second path)
// a payload-modifying ALG must still deliver the stream intact -- the ALG
// path is detected by the DSS checksum and reset, everything else is
// absorbed by the protocol design.
//
// Build & run:  ./build/examples/middlebox_gauntlet
#include <cstdio>

#include "app/bulk_app.h"
#include "app/harness.h"
#include "core/mptcp_stack.h"
#include "middlebox/nat.h"
#include "middlebox/payload_modifier.h"
#include "middlebox/proactive_acker.h"
#include "middlebox/segment_splitter.h"
#include "middlebox/seq_rewriter.h"

using namespace mptcp;

int main() {
  std::printf("Middlebox gauntlet: NAT + ISN rewriter + TSO splitter + "
              "PEP proxy on path 0,\n"
              "payload-modifying ALG on path 1. One 2 MB MPTCP transfer.\n\n");

  TwoHostRig rig;
  rig.add_path(wifi_path());
  rig.add_path(threeg_path());

  // Path 0 forward chain: splitter -> rewriter -> proxy -> network.
  SegmentSplitter splitter(536);
  SeqRewriter rewriter;
  ProactiveAcker proxy;
  rig.splice_up(0, splitter);
  rig.splice_up(0, rewriter.forward_sink());
  rig.splice_up(0, proxy.forward_sink());
  proxy.reverse_sink().set_downstream(&rig.network());
  // Reverse chain on path 0 undoes the rewriting for ACKs.
  rig.splice_down(0, rewriter.reverse_sink());

  // Path 1: NAT (with return routing) and a content-modifying ALG.
  Nat nat(IpAddr(192, 0, 2, 1));
  PayloadModifier alg(/*every Nth data segment=*/4);
  rig.splice_up(1, nat.forward_sink());
  rig.splice_up(1, alg);
  rig.route_server_to(nat.public_addr(), 1);
  rig.network().attach(nat.public_addr(), &nat.reverse_sink());
  nat.reverse_sink().set_downstream(&rig.network());

  MptcpConfig cfg;
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 512 * 1024;
  MptcpStack client_stack(rig.client(), cfg);
  MptcpStack server_stack(rig.server(), cfg);

  MptcpConnection* server_conn = nullptr;
  std::unique_ptr<BulkReceiver> receiver;
  server_stack.listen(80, [&](MptcpConnection& conn) {
    if (server_conn == nullptr) {
      server_conn = &conn;
      receiver = std::make_unique<BulkReceiver>(conn);
    }
  });
  MptcpConnection& client = client_stack.connect(
      rig.client_addr(0), Endpoint{rig.server_addr(), 80});
  BulkSender sender(client, 2 * 1000 * 1000);

  rig.loop().run_until(60 * kSecond);

  std::printf("outcome:\n");
  std::printf("  transfer          : %llu/2000000 bytes, integrity %s, "
              "eof %s\n",
              static_cast<unsigned long long>(receiver->bytes_received()),
              receiver->pattern_ok() ? "OK" : "BROKEN",
              receiver->saw_eof() ? "yes" : "no");
  std::printf("  mode              : %s\n",
              client.mode() == MptcpMode::kMptcp ? "MPTCP" : "fallback TCP");
  std::printf("  splitter splits   : %llu\n",
              static_cast<unsigned long long>(splitter.splits()));
  std::printf("  rewritten flows   : %zu\n", rewriter.flows_tracked());
  std::printf("  NAT mappings      : %zu\n", nat.mappings());
  std::printf("  forged proxy ACKs : %llu\n",
              static_cast<unsigned long long>(proxy.forged_acks()));
  std::printf("  ALG modifications : %llu\n",
              static_cast<unsigned long long>(alg.segments_modified()));
  if (server_conn != nullptr) {
    std::printf("  checksum failures : %llu (subflow resets: %llu)\n",
                static_cast<unsigned long long>(
                    server_conn->meta_stats().checksum_failures),
                static_cast<unsigned long long>(
                    server_conn->meta_stats().subflow_resets));
  }
  std::printf("\nThe ALG-riddled path was detected and abandoned; the "
              "stream arrived intact\nthrough four other middleboxes.\n");
  return 0;
}
