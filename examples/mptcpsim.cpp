// mptcpsim: a command-line scenario runner for the library.
//
// Runs a configurable bulk transfer and prints a summary; optionally
// writes a pcap of the first path for inspection in Wireshark.
//
//   mptcpsim [options]
//     --paths wifi,3g          comma list: wifi | 3g | weak3g | eth1g |
//                              eth100m | capped-wifi | capped-3g
//     --buffer KB              connection-level snd/rcv buffer (default 512)
//     --seconds N              simulated duration (default 20)
//     --scheduler P            lowest-rtt | round-robin | redundant
//     --no-m1 --no-m2          disable opportunistic rtx / penalization
//     --autotune               enable buffer autotuning (M3)
//     --cap                    enable cwnd capping (M4)
//     --no-checksum            disable DSS checksums
//     --tcp                    plain TCP on the first path instead of MPTCP
//     --pcap FILE              capture path 0 (both directions)
//
// Example:
//   ./build/examples/mptcpsim --paths wifi,3g --buffer 200 --pcap out.pcap
#include <cstdio>
#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "app/bulk_app.h"
#include "app/harness.h"
#include "core/mptcp_stack.h"
#include "sim/pcap.h"
#include "tcp/tcp_connection.h"

using namespace mptcp;

namespace {

PathSpec path_by_name(const std::string& name) {
  if (name == "wifi") return wifi_path();
  if (name == "3g") return threeg_path();
  if (name == "weak3g") return weak_threeg_path();
  if (name == "eth1g") return ethernet_path(1e9);
  if (name == "eth100m") return ethernet_path(100e6);
  if (name == "capped-wifi") return capped_wifi_path();
  if (name == "capped-3g") return capped_threeg_path();
  std::fprintf(stderr, "unknown path '%s'\n", name.c_str());
  std::exit(2);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::stringstream ss(s);
  std::string item;
  while (std::getline(ss, item, sep)) out.push_back(item);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> path_names = {"wifi", "3g"};
  size_t buffer_kb = 512;
  int seconds = 20;
  MptcpConfig cfg;
  bool plain_tcp = false;
  std::string pcap_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--paths") {
      path_names = split(next(), ',');
    } else if (arg == "--buffer") {
      buffer_kb = std::stoul(next());
    } else if (arg == "--seconds") {
      seconds = std::stoi(next());
    } else if (arg == "--scheduler") {
      const std::string p = next();
      cfg.scheduler = p == "round-robin" ? SchedulerPolicy::kRoundRobin
                      : p == "redundant" ? SchedulerPolicy::kRedundant
                                         : SchedulerPolicy::kLowestRtt;
    } else if (arg == "--no-m1") {
      cfg.opportunistic_retransmit = false;
    } else if (arg == "--no-m2") {
      cfg.penalize_slow_subflows = false;
    } else if (arg == "--autotune") {
      cfg.meta_autotune = true;
      cfg.tcp.autotune = true;
    } else if (arg == "--cap") {
      cfg.cap_subflow_cwnd = true;
    } else if (arg == "--no-checksum") {
      cfg.dss_checksum = false;
    } else if (arg == "--tcp") {
      plain_tcp = true;
    } else if (arg == "--pcap") {
      pcap_path = next();
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    }
  }
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = buffer_kb * 1000;
  cfg.enabled = !plain_tcp;

  TwoHostRig rig;
  for (const auto& name : path_names) rig.add_path(path_by_name(name));

  std::unique_ptr<PcapWriter> pcap;
  std::unique_ptr<PcapTap> tap_up, tap_down;
  if (!pcap_path.empty()) {
    pcap = std::make_unique<PcapWriter>(pcap_path);
    if (!pcap->ok()) {
      std::fprintf(stderr, "cannot open %s\n", pcap_path.c_str());
      return 1;
    }
    tap_up = std::make_unique<PcapTap>(rig.loop(), *pcap);
    tap_down = std::make_unique<PcapTap>(rig.loop(), *pcap);
    rig.splice_up(0, *tap_up);
    rig.splice_down(0, *tap_down);
  }

  MptcpStack client_stack(rig.client(), cfg);
  MptcpStack server_stack(rig.server(), cfg);
  std::unique_ptr<BulkReceiver> rx;
  MptcpConnection* server_conn = nullptr;
  server_stack.listen(80, [&](MptcpConnection& c) {
    server_conn = &c;
    rx = std::make_unique<BulkReceiver>(c);
  });
  MptcpConnection& conn =
      client_stack.connect(rig.client_addr(0), {rig.server_addr(), 80});
  BulkSender tx(conn, 0);

  const SimTime warmup = 2 * kSecond;
  rig.loop().run_until(warmup);
  const uint64_t rx0 = rx ? rx->bytes_received() : 0;
  rig.loop().run_until(warmup + static_cast<SimTime>(seconds) * kSecond);

  std::printf("scenario : %s, buffer %zu KB, %s, %d s\n",
              [&] {
                std::string s;
                for (const auto& n : path_names) {
                  s += (s.empty() ? "" : "+") + n;
                }
                return s;
              }()
                  .c_str(),
              buffer_kb,
              plain_tcp ? "plain TCP"
                        : std::string(to_string(cfg.scheduler)).c_str(),
              seconds);
  std::printf("mode     : %s\n", conn.mode() == MptcpMode::kMptcp
                                     ? "MPTCP"
                                     : "fallback TCP");
  const double goodput =
      static_cast<double>(rx->bytes_received() - rx0) * 8.0 / seconds;
  std::printf("goodput  : %.3f Mbps\n", goodput / 1e6);
  std::printf("integrity: %s\n", rx->pattern_ok() ? "OK" : "BROKEN");
  for (size_t i = 0; i < conn.subflow_count(); ++i) {
    const MptcpSubflow* sf = conn.subflow(i);
    std::printf("subflow %zu: via %-10s sent %9.1f KB  rtx %llu  srtt "
                "%6.1f ms\n",
                i, sf->local().addr.str().c_str(),
                static_cast<double>(sf->stats().bytes_sent) / 1e3,
                static_cast<unsigned long long>(sf->stats().retransmits),
                static_cast<double>(sf->srtt()) / 1e6);
  }
  std::printf("M1 opportunistic rtx: %llu, M2 penalizations: %llu\n",
              static_cast<unsigned long long>(
                  conn.meta_stats().opportunistic_retransmits),
              static_cast<unsigned long long>(
                  conn.meta_stats().penalizations));
  if (pcap) {
    std::printf("pcap     : %llu packets -> %s\n",
                static_cast<unsigned long long>(pcap->packets_written()),
                pcap_path.c_str());
  }
  return 0;
}
