// Web serving over redundant datacenter paths (the Fig. 11 scenario at
// example scale): 40 closed-loop clients fetch files from a server
// reachable over two 1 Gbps links, comparing MPTCP against single-path
// TCP for a small and a large file size.
//
// Build & run:  ./build/examples/datacenter_http
#include <cstdio>

#include "app/harness.h"
#include "app/http_app.h"
#include "app/socket_factory.h"

using namespace mptcp;

namespace {

double run(bool use_mptcp, uint64_t file_size) {
  TwoHostRig rig;
  rig.add_path(ethernet_path(1e9, 100 * kMicrosecond, 2 * kMillisecond));
  rig.add_path(ethernet_path(1e9, 100 * kMicrosecond, 2 * kMillisecond));
  Host::CpuConfig cpu;
  cpu.per_segment = 8 * kMicrosecond;  // single-core server model
  rig.server().set_cpu(cpu);

  TransportConfig cfg;
  cfg.kind = use_mptcp ? TransportKind::kMptcp : TransportKind::kTcp;
  cfg.mptcp.meta_snd_buf_max = cfg.mptcp.meta_rcv_buf_max = 128 * 1024;
  cfg.mptcp.tcp.time_wait = 10 * kMillisecond;
  SocketFactory client_stack(rig.client(), cfg);
  SocketFactory server_stack(rig.server(), cfg);

  HttpServer server(server_stack, 80);
  HttpClientPool clients(client_stack, rig.client_addr(0),
                         Endpoint{rig.server_addr(), 80}, /*clients=*/40,
                         file_size);
  clients.start();

  rig.loop().run_until(500 * kMillisecond);
  const uint64_t c0 = clients.completed();
  rig.loop().run_until(2500 * kMillisecond);
  return static_cast<double>(clients.completed() - c0) / 2.0;
}

}  // namespace

int main() {
  std::printf("Datacenter web serving: 40 closed-loop clients, server on "
              "2 x 1 Gbps\n\n");
  std::printf("%-14s %16s %16s %12s\n", "file size", "TCP req/s",
              "MPTCP req/s", "MPTCP/TCP");
  for (uint64_t kb : {8, 300}) {
    const double tcp = run(false, kb * 1000);
    const double mptcp = run(true, kb * 1000);
    std::printf("%8llu KB   %16.0f %16.0f %11.2fx\n",
                static_cast<unsigned long long>(kb), tcp, mptcp, mptcp / tcp);
  }
  std::printf(
      "\nShort flows pay MPTCP's extra handshake; long flows enjoy both "
      "links\n(the trade-off quantified in the paper's Fig. 11).\n");
  return 0;
}
