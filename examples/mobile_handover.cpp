// Mobile handover: a phone walks out of WiFi range mid-download.
//
// The paper's robustness story (sections 3.2 / 3.4): when an interface
// disappears, the connection survives on the remaining subflow. Two
// variants are shown:
//   1. Graceful: the host notices the interface loss and announces it
//      with REMOVE_ADDR so the peer tears matching subflows down cleanly.
//   2. Silent: the path just dies; the subflow times out repeatedly and
//      the connection-level retransmission shifts its data to 3G.
//
// Build & run:  ./build/examples/mobile_handover
#include <cstdio>

#include "app/bulk_app.h"
#include "app/harness.h"
#include "core/mptcp_stack.h"

using namespace mptcp;

namespace {

void run_variant(bool graceful) {
  std::printf("\n=== %s handover ===\n",
              graceful ? "graceful (REMOVE_ADDR)" : "silent (path death)");
  TwoHostRig rig;
  rig.add_path(wifi_path());
  rig.add_path(threeg_path());

  MptcpConfig cfg;
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 512 * 1024;
  MptcpStack client_stack(rig.client(), cfg);
  MptcpStack server_stack(rig.server(), cfg);

  std::unique_ptr<BulkReceiver> receiver;
  server_stack.listen(80, [&](MptcpConnection& conn) {
    receiver = std::make_unique<BulkReceiver>(conn);
  });
  MptcpConnection& client = client_stack.connect(
      rig.client_addr(0), Endpoint{rig.server_addr(), 80});
  BulkSender sender(client, 4 * 1000 * 1000);  // a 4 MB download

  // At t=2s the WiFi radio goes away.
  rig.loop().schedule_in(2 * kSecond, [&] {
    rig.set_path_up(0, false);
    if (graceful) client.remove_local_address(rig.client_addr(0));
    std::printf("  t=2.0s  WiFi gone (%s)\n",
                graceful ? "REMOVE_ADDR sent on 3G" : "silent");
  });

  uint64_t last = 0;
  for (int t = 1; t <= 22; ++t) {
    rig.loop().run_until(static_cast<SimTime>(t) * kSecond);
    if (t % 2 == 0) {
      const uint64_t now_bytes = receiver->bytes_received();
      std::printf("  t=%2ds   %7.1f KB delivered (%+6.1f KB/s)%s\n", t,
                  static_cast<double>(now_bytes) / 1e3,
                  static_cast<double>(now_bytes - last) / 2e3,
                  receiver->saw_eof() ? "  [complete]" : "");
      last = now_bytes;
      if (receiver->saw_eof()) break;
    }
  }
  std::printf("  result: %llu/%u bytes, integrity %s\n",
              static_cast<unsigned long long>(receiver->bytes_received()),
              4000000, receiver->pattern_ok() ? "OK" : "BROKEN");
}

}  // namespace

int main() {
  std::printf("Mobile handover demo: 4 MB download, WiFi dies at t=2s,\n"
              "the MPTCP connection carries on over 3G.\n");
  run_variant(/*graceful=*/true);
  run_variant(/*graceful=*/false);
  return 0;
}
