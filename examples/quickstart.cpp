// Quickstart: an MPTCP connection over emulated WiFi + 3G.
//
// Builds the paper's canonical two-path scenario, runs a 30-second bulk
// transfer over MPTCP and over single-path TCP, and prints the goodput
// and per-subflow breakdown. Shows the core public API:
//
//   TwoHostRig      -- canned client/server topology
//   MptcpStack      -- per-host MPTCP state (connect / listen)
//   MptcpConnection -- the StreamSocket the application reads/writes
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "app/bulk_app.h"
#include "app/harness.h"
#include "core/mptcp_stack.h"

using namespace mptcp;

int main() {
  std::printf("MPTCP quickstart: WiFi (8 Mbps, 20 ms) + 3G (2 Mbps, 150 ms)\n");

  // --- topology -----------------------------------------------------------
  TwoHostRig rig;
  rig.add_path(wifi_path());    // client address 10.0.0.2
  rig.add_path(threeg_path());  // client address 10.0.1.2

  // --- stacks ---------------------------------------------------------------
  MptcpConfig cfg;
  cfg.meta_snd_buf_max = cfg.meta_rcv_buf_max = 512 * 1024;
  MptcpStack client_stack(rig.client(), cfg);
  MptcpStack server_stack(rig.server(), cfg);

  // --- server: accept and drain --------------------------------------------
  MptcpConnection* server_conn = nullptr;
  std::unique_ptr<BulkReceiver> receiver;
  server_stack.listen(80, [&](MptcpConnection& conn) {
    server_conn = &conn;
    receiver = std::make_unique<BulkReceiver>(conn);
  });

  // --- client: connect and send as fast as the socket accepts ---------------
  MptcpConnection& client = client_stack.connect(
      rig.client_addr(0), Endpoint{rig.server_addr(), 80});
  BulkSender sender(client, /*total_bytes=*/0);

  // --- run -------------------------------------------------------------------
  rig.loop().run_until(2 * kSecond);  // warm-up: handshakes + slow start
  const uint64_t at2s = receiver->bytes_received();
  rig.loop().run_until(32 * kSecond);
  const double goodput =
      static_cast<double>(receiver->bytes_received() - at2s) * 8.0 / 30.0;

  std::printf("\nafter 32s simulated:\n");
  std::printf("  mode            : %s\n",
              client.mode() == MptcpMode::kMptcp ? "MPTCP" : "fallback TCP");
  std::printf("  subflows        : %zu\n", client.subflow_count());
  for (size_t i = 0; i < client.subflow_count(); ++i) {
    const MptcpSubflow* sf = client.subflow(i);
    std::printf("    subflow %zu via %-12s sent %8.1f KB  srtt %6.1f ms\n", i,
                sf->local().addr.str().c_str(),
                static_cast<double>(sf->stats().bytes_sent) / 1e3,
                static_cast<double>(sf->srtt()) / 1e6);
  }
  std::printf("  delivered       : %.1f MB, integrity %s\n",
              static_cast<double>(receiver->bytes_received()) / 1e6,
              receiver->pattern_ok() ? "OK" : "BROKEN");
  std::printf("  goodput         : %.2f Mbps (WiFi alone ~7.7, 3G alone "
              "~1.9)\n",
              goodput / 1e6);
  return 0;
}
